package core

import "fmt"

// LockTab is the server's write-lock table. Under Callback Locking the
// server tracks only exclusive (write) locks: a cached copy at a client
// *is* read permission, and the callback mechanism revokes it. Locks exist
// at page granularity (PS, PS-AA) and object granularity (all but PS).
//
// LockTab is pure bookkeeping: conflict *policy* (what blocks, what
// de-escalates) lives in ServerEngine. All mutating operations panic on
// protocol-invariant violations (granting over a conflicting lock), which
// turns driver bugs into immediate failures instead of corrupt histories.
type LockTab struct {
	pages map[PageID]*PageLocks
	txns  map[TxnID]*TxnLocks

	// Ops counts grant/release lock-table operations for CPU costing
	// (LockInst is charged per lock/unlock pair, i.e. once per grant).
	Ops int64
}

// PageLocks is the lock state of one page.
type PageLocks struct {
	PageX TxnID            // page-level exclusive holder, NoTxn if none
	ObjX  map[uint16]TxnID // object-level exclusive holders by slot
}

// TxnLocks indexes the locks held by one transaction.
type TxnLocks struct {
	Client ClientID
	PageX  map[PageID]bool
	ObjX   map[ObjID]bool
}

// NewLockTab returns an empty lock table.
func NewLockTab() *LockTab {
	return &LockTab{pages: make(map[PageID]*PageLocks), txns: make(map[TxnID]*TxnLocks)}
}

func (lt *LockTab) page(p PageID) *PageLocks {
	pl := lt.pages[p]
	if pl == nil {
		pl = &PageLocks{PageX: NoTxn, ObjX: make(map[uint16]TxnID)}
		lt.pages[p] = pl
	}
	return pl
}

func (lt *LockTab) txn(t TxnID, c ClientID) *TxnLocks {
	tl := lt.txns[t]
	if tl == nil {
		tl = &TxnLocks{Client: c, PageX: make(map[PageID]bool), ObjX: make(map[ObjID]bool)}
		lt.txns[t] = tl
	}
	return tl
}

// PageXHolder returns the page-level X holder of p, or NoTxn.
func (lt *LockTab) PageXHolder(p PageID) TxnID {
	if pl := lt.pages[p]; pl != nil {
		return pl.PageX
	}
	return NoTxn
}

// ObjXHolder returns the object-level X holder of o, or NoTxn.
func (lt *LockTab) ObjXHolder(o ObjID) TxnID {
	if pl := lt.pages[o.Page]; pl != nil {
		return pl.ObjX[o.Slot]
	}
	return NoTxn
}

// ObjXCount returns how many object-level locks exist on page p held by
// transactions other than except.
func (lt *LockTab) ObjXCount(p PageID, except TxnID) int {
	pl := lt.pages[p]
	if pl == nil {
		return 0
	}
	n := 0
	for _, t := range pl.ObjX {
		if t != except {
			n++
		}
	}
	return n
}

// ObjXSlots returns the slots of page p object-locked by transactions
// other than except, in ascending slot order (deterministic).
func (lt *LockTab) ObjXSlots(p PageID, except TxnID) []uint16 {
	pl := lt.pages[p]
	if pl == nil || len(pl.ObjX) == 0 {
		return nil
	}
	var slots []uint16
	for s, t := range pl.ObjX {
		if t != except {
			slots = append(slots, s)
		}
	}
	sortSlots(slots)
	return slots
}

func sortSlots(s []uint16) {
	// Insertion sort: slot lists are tiny (bounded by objects per page).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// GrantPageX grants a page-level X lock to txn t at client c.
func (lt *LockTab) GrantPageX(t TxnID, c ClientID, p PageID) {
	pl := lt.page(p)
	if pl.PageX != NoTxn && pl.PageX != t {
		panic(fmt.Sprintf("core: page X conflict on %d: held by %d, granting to %d", p, pl.PageX, t))
	}
	for s, holder := range pl.ObjX {
		if holder != t {
			panic(fmt.Sprintf("core: page X over foreign obj lock %d.%d (held by %d)", p, s, holder))
		}
	}
	// Escalation: absorb the txn's own object locks on this page.
	for s := range pl.ObjX {
		delete(pl.ObjX, s)
		delete(lt.txn(t, c).ObjX, ObjID{Page: p, Slot: s})
		lt.Ops++
	}
	pl.PageX = t
	lt.txn(t, c).PageX[p] = true
	lt.Ops++
}

// GrantObjX grants an object-level X lock to txn t at client c.
func (lt *LockTab) GrantObjX(t TxnID, c ClientID, o ObjID) {
	pl := lt.page(o.Page)
	if pl.PageX != NoTxn && pl.PageX != t {
		panic(fmt.Sprintf("core: obj X on %v conflicts with page X held by %d", o, pl.PageX))
	}
	if holder, ok := pl.ObjX[o.Slot]; ok && holder != t {
		panic(fmt.Sprintf("core: obj X conflict on %v: held by %d, granting to %d", o, holder, t))
	}
	pl.ObjX[o.Slot] = t
	lt.txn(t, c).ObjX[o] = true
	lt.Ops++
}

// Deescalate converts txn t's page-level X on p into object-level X locks
// on the given objects (the ones t has actually updated). It panics if t
// does not hold the page lock.
func (lt *LockTab) Deescalate(t TxnID, p PageID, objs []ObjID) {
	pl := lt.pages[p]
	if pl == nil || pl.PageX != t {
		panic(fmt.Sprintf("core: de-escalate of page %d not X-held by %d", p, t))
	}
	tl := lt.txns[t]
	pl.PageX = NoTxn
	delete(tl.PageX, p)
	lt.Ops++
	for _, o := range objs {
		if o.Page != p {
			panic("core: de-escalation object on wrong page")
		}
		pl.ObjX[o.Slot] = t
		tl.ObjX[o] = true
		lt.Ops++
	}
}

// HoldsPageX reports whether txn t holds the page-level X lock on p.
func (lt *LockTab) HoldsPageX(t TxnID, p PageID) bool {
	tl := lt.txns[t]
	return tl != nil && tl.PageX[p]
}

// HoldsObjX reports whether txn t holds an object-level X lock on o.
func (lt *LockTab) HoldsObjX(t TxnID, o ObjID) bool {
	tl := lt.txns[t]
	return tl != nil && tl.ObjX[o]
}

// TxnPages returns all pages on which txn t holds any lock, in ascending
// order (deterministic).
func (lt *LockTab) TxnPages(t TxnID) []PageID {
	tl := lt.txns[t]
	if tl == nil {
		return nil
	}
	seen := make(map[PageID]bool)
	var pages []PageID
	for p := range tl.PageX {
		if !seen[p] {
			seen[p] = true
			pages = append(pages, p)
		}
	}
	for o := range tl.ObjX {
		if !seen[o.Page] {
			seen[o.Page] = true
			pages = append(pages, o.Page)
		}
	}
	sortPages(pages)
	return pages
}

func sortPages(p []PageID) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j] < p[j-1]; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// PageXPages returns the pages on which txn t holds page-level X locks
// (ascending).
func (lt *LockTab) PageXPages(t TxnID) []PageID {
	tl := lt.txns[t]
	if tl == nil {
		return nil
	}
	var pages []PageID
	for p := range tl.PageX {
		pages = append(pages, p)
	}
	sortPages(pages)
	return pages
}

// ObjXObjs returns the objects on which txn t holds object-level X locks,
// grouped in no particular page order but with deterministic total order.
func (lt *LockTab) ObjXObjs(t TxnID) []ObjID {
	tl := lt.txns[t]
	if tl == nil {
		return nil
	}
	objs := make([]ObjID, 0, len(tl.ObjX))
	for o := range tl.ObjX {
		objs = append(objs, o)
	}
	// Deterministic sort by (page, slot).
	for i := 1; i < len(objs); i++ {
		for j := i; j > 0 && objLess(objs[j], objs[j-1]); j-- {
			objs[j], objs[j-1] = objs[j-1], objs[j]
		}
	}
	return objs
}

func objLess(a, b ObjID) bool {
	if a.Page != b.Page {
		return a.Page < b.Page
	}
	return a.Slot < b.Slot
}

// ObjXCountOnPage returns how many object locks txn t holds on page p.
func (lt *LockTab) ObjXCountOnPage(t TxnID, p PageID) int {
	tl := lt.txns[t]
	if tl == nil {
		return 0
	}
	n := 0
	for o := range tl.ObjX {
		if o.Page == p {
			n++
		}
	}
	return n
}

// ReleaseAll releases every lock held by txn t and returns the affected
// pages (ascending) so the caller can retry queued requests.
func (lt *LockTab) ReleaseAll(t TxnID) []PageID {
	tl := lt.txns[t]
	if tl == nil {
		return nil
	}
	pages := lt.TxnPages(t)
	for p := range tl.PageX {
		pl := lt.pages[p]
		if pl.PageX != t {
			panic("core: lock index inconsistency (page)")
		}
		pl.PageX = NoTxn
		lt.maybeFree(p, pl)
	}
	for o := range tl.ObjX {
		pl := lt.pages[o.Page]
		if pl.ObjX[o.Slot] != t {
			panic("core: lock index inconsistency (object)")
		}
		delete(pl.ObjX, o.Slot)
		lt.maybeFree(o.Page, pl)
	}
	delete(lt.txns, t)
	return pages
}

func (lt *LockTab) maybeFree(p PageID, pl *PageLocks) {
	if pl.PageX == NoTxn && len(pl.ObjX) == 0 {
		delete(lt.pages, p)
	}
}

// LockCount returns the number of locks txn t currently holds.
func (lt *LockTab) LockCount(t TxnID) int {
	tl := lt.txns[t]
	if tl == nil {
		return 0
	}
	return len(tl.PageX) + len(tl.ObjX)
}

// LockedPages returns the number of pages with tracked lock state
// (diagnostics: lock-table size for /statusz and gauges).
func (lt *LockTab) LockedPages() int { return len(lt.pages) }

// LockingTxns returns the number of transactions currently holding locks.
func (lt *LockTab) LockingTxns() int { return len(lt.txns) }

// Empty reports whether no locks are held at all (quiescence checks).
func (lt *LockTab) Empty() bool { return len(lt.pages) == 0 }

// TakeOps returns the op count accumulated since the last call and resets
// it.
func (lt *LockTab) TakeOps() int64 {
	n := lt.Ops
	lt.Ops = 0
	return n
}
