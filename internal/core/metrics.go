package core

import "repro/internal/obs"

// RegisterMetrics exposes the engine's protocol counters and table sizes
// on reg under the canonical oodb_engine_* names. Both the live server
// and the simulator register through this one function, so a Prometheus
// scrape of a live server and a simulation run's registry dump count the
// same quantities under the same names — the apples-to-apples comparison
// the paper's evaluation methodology depends on.
func (se *ServerEngine) RegisterMetrics(reg *obs.Registry) {
	c := &se.Stats
	reg.FuncCounter("oodb_engine_read_requests_total",
		"read (fetch) requests handled by the protocol engine", c.ReadReqs.Load)
	reg.FuncCounter("oodb_engine_write_requests_total",
		"write-permission requests handled", c.WriteReqs.Load)
	reg.FuncCounter("oodb_engine_commits_total",
		"transactions committed", c.Commits.Load)
	reg.FuncCounter("oodb_engine_aborts_total",
		"transactions aborted (victims, voluntary, disconnects)", c.Aborts.Load)
	reg.FuncCounter("oodb_engine_blocks_total",
		"requests that blocked at least once", c.Blocks.Load)
	reg.FuncCounter("oodb_engine_deadlocks_total",
		"waits-for cycles resolved (victims chosen)", c.Deadlocks.Load)
	reg.FuncCounter("oodb_engine_callback_rounds_total",
		"callback rounds started (paper: consistency actions per write)", c.Rounds.Load)
	reg.FuncCounter("oodb_engine_callbacks_total",
		"individual callback messages sent (paper: callback message count)", c.Callbacks.Load)
	reg.FuncCounter("oodb_engine_busy_replies_total",
		"busy replies deferring a callback to commit time", c.BusyReplies.Load)
	reg.FuncCounter("oodb_engine_deescalations_total",
		"PS-AA de-escalation requests issued", c.Deescalations.Load)
	reg.FuncCounter("oodb_engine_page_grants_total",
		"page-level write locks granted", c.PageGrants.Load)
	reg.FuncCounter("oodb_engine_obj_grants_total",
		"object-level write locks granted", c.ObjGrants.Load)
	reg.FuncCounter("oodb_engine_token_waits_total",
		"PS-WT writes blocked on the page write token", c.TokenWaits.Load)
}
