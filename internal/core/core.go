package core
