package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheInstallReadableUnavailable(t *testing.T) {
	c := NewClientCache(false, 4)
	c.InstallPage(1, []uint16{3, 5})
	if !c.HasPage(1) {
		t.Fatal("page missing")
	}
	if !c.Readable(ObjID{Page: 1, Slot: 0}) {
		t.Fatal("slot 0 should be readable")
	}
	if c.Readable(ObjID{Page: 1, Slot: 3}) || c.Readable(ObjID{Page: 1, Slot: 5}) {
		t.Fatal("unavailable slots readable")
	}
	if c.Readable(ObjID{Page: 2, Slot: 0}) {
		t.Fatal("non-resident page readable")
	}
}

func TestCacheRefreshReplacesUnavailable(t *testing.T) {
	c := NewClientCache(false, 4)
	c.InstallPage(1, []uint16{3})
	// Re-fetch: the writer of slot 3 committed, a new writer holds slot 7.
	c.InstallPage(1, []uint16{7})
	if !c.Readable(ObjID{Page: 1, Slot: 3}) {
		t.Fatal("slot 3 should be readable after refresh")
	}
	if c.Readable(ObjID{Page: 1, Slot: 7}) {
		t.Fatal("slot 7 should be unavailable")
	}
}

func TestCacheMergePreservesDirty(t *testing.T) {
	c := NewClientCache(false, 4)
	c.InstallPage(1, nil)
	c.MarkDirty(ObjID{Page: 1, Slot: 2})
	c.MarkDirty(ObjID{Page: 1, Slot: 4})
	merged := c.InstallPage(1, []uint16{9})
	if merged != 2 {
		t.Fatalf("merged = %d, want 2", merged)
	}
	if c.DirtyObjCount(1) != 2 {
		t.Fatal("dirty slots lost in merge")
	}
	if c.Readable(ObjID{Page: 1, Slot: 9}) {
		t.Fatal("slot 9 should be unavailable")
	}
}

func TestCacheMergeOwnDirtyMarkedUnavailablePanics(t *testing.T) {
	c := NewClientCache(false, 4)
	c.InstallPage(1, nil)
	c.MarkDirty(ObjID{Page: 1, Slot: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.InstallPage(1, []uint16{2})
}

func TestCacheLRUEvictionAndNotices(t *testing.T) {
	c := NewClientCache(false, 3)
	c.InstallPage(1, nil)
	c.InstallPage(2, nil)
	c.InstallPage(3, nil)
	c.InstallPage(4, nil) // evicts page 1 (LRU)
	if c.HasPage(1) {
		t.Fatal("page 1 should be evicted")
	}
	pages, objs := c.TakeDropped()
	if len(pages) != 1 || pages[0] != 1 || objs != nil {
		t.Fatalf("dropped = %v/%v", pages, objs)
	}
	if p, o := c.TakeDropped(); p != nil || o != nil {
		t.Fatal("TakeDropped not cleared")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
}

func TestCacheLRUOrderRespectsTouch(t *testing.T) {
	c := NewClientCache(false, 3)
	c.InstallPage(1, nil)
	c.InstallPage(2, nil)
	c.InstallPage(3, nil)
	c.TouchPage(1)
	c.CleanAll() // unpin
	c.InstallPage(4, nil)
	if c.HasPage(1) == false {
		t.Fatal("recently touched page evicted")
	}
	if c.HasPage(2) {
		t.Fatal("page 2 should have been the LRU victim")
	}
}

func TestCachePinnedAndDirtyNeverEvicted(t *testing.T) {
	c := NewClientCache(false, 2)
	c.InstallPage(1, nil)
	c.MarkDirty(ObjID{Page: 1, Slot: 0}) // dirty + pinned
	c.InstallPage(2, nil)
	c.TouchPage(2) // pinned
	c.InstallPage(3, nil)
	// Everything pinned: cache overflows rather than evicting.
	if !c.HasPage(1) || !c.HasPage(2) || !c.HasPage(3) {
		t.Fatal("pinned/dirty page evicted")
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	// After unpinning, the next install evicts down to capacity.
	c.CleanAll()
	c.InstallPage(4, nil)
	if c.Len() > 2 {
		t.Fatalf("len = %d after unpinned install, want <= 2", c.Len())
	}
}

func TestCacheAbortPurgesDirtyPages(t *testing.T) {
	c := NewClientCache(false, 8)
	c.InstallPage(1, nil)
	c.InstallPage(2, nil)
	c.InstallPage(3, nil)
	c.MarkDirty(ObjID{Page: 1, Slot: 0})
	c.MarkDirty(ObjID{Page: 3, Slot: 5})
	pages, objs := c.PurgeUpdatesForAbort()
	if len(pages) != 2 || pages[0] != 1 || pages[1] != 3 || objs != nil {
		t.Fatalf("purged = %v/%v", pages, objs)
	}
	if c.HasPage(1) || c.HasPage(3) {
		t.Fatal("dirty pages survived abort")
	}
	if !c.HasPage(2) {
		t.Fatal("clean page purged on abort")
	}
}

func TestCacheCommitCleansDirty(t *testing.T) {
	c := NewClientCache(false, 8)
	c.InstallPage(1, nil)
	c.MarkDirty(ObjID{Page: 1, Slot: 0})
	if d := c.DirtyPages(); len(d) != 1 {
		t.Fatalf("dirty pages = %v", d)
	}
	c.CleanAll()
	if d := c.DirtyPages(); d != nil {
		t.Fatalf("dirty pages after commit = %v", d)
	}
	if !c.HasPage(1) {
		t.Fatal("page lost at commit")
	}
}

func TestCacheObjectMode(t *testing.T) {
	c := NewClientCache(true, 3)
	o1 := ObjID{Page: 1, Slot: 0}
	o2 := ObjID{Page: 1, Slot: 1}
	o3 := ObjID{Page: 2, Slot: 0}
	o4 := ObjID{Page: 2, Slot: 1}
	c.InstallObj(o1)
	c.InstallObj(o2)
	c.InstallObj(o3)
	c.InstallObj(o4) // evicts o1
	if c.HasObj(o1) {
		t.Fatal("o1 should be evicted")
	}
	pages, objs := c.TakeDropped()
	if pages != nil || len(objs) != 1 || objs[0] != o1 {
		t.Fatalf("dropped = %v/%v", pages, objs)
	}
	c.MarkObjDirty(o3)
	if d := c.DirtyObjs(); len(d) != 1 || d[0] != o3 {
		t.Fatalf("dirty objs = %v", d)
	}
	_, purged := c.PurgeUpdatesForAbort()
	if len(purged) != 1 || purged[0] != o3 {
		t.Fatalf("purged objs = %v", purged)
	}
	if c.HasObj(o3) {
		t.Fatal("dirty obj survived abort")
	}
}

func TestCachePurgeIsIdempotent(t *testing.T) {
	c := NewClientCache(false, 4)
	c.InstallPage(1, nil)
	c.PurgePage(1)
	c.PurgePage(1)
	c.MarkUnavailable(ObjID{Page: 1, Slot: 0}) // non-resident: no-op
	if c.Len() != 0 {
		t.Fatal("cache not empty")
	}
}

// Property: after any sequence of installs/touches/purges, the LRU list
// and the page map agree, size never exceeds capacity unless pinned, and
// unavailable implies resident.
func TestCacheConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewClientCache(false, 5)
		for _, op := range ops {
			p := PageID(op % 8)
			switch (op / 8) % 5 {
			case 0:
				c.InstallPage(p, nil)
			case 1:
				if c.HasPage(p) {
					c.TouchPage(p)
				}
			case 2:
				if c.HasPage(p) && len(c.Page(p).Dirty) == 0 {
					// Only mark slots on non-dirty pages to keep this
					// simple sequence valid.
					c.MarkUnavailable(ObjID{Page: p, Slot: uint16(op % 20)})
				}
			case 3:
				c.PurgePage(p)
			case 4:
				c.CleanAll()
			}
			// Invariants.
			if len(c.ResidentPages()) != c.Len() {
				return false
			}
			for _, rp := range c.ResidentPages() {
				if c.Page(rp) == nil {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
