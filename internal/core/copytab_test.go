package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCopyTabPageBasics(t *testing.T) {
	ct := NewCopyTab(false)
	ct.RegisterPage(3, 10)
	ct.RegisterPage(1, 10)
	ct.RegisterPage(2, 10)
	ct.RegisterPage(1, 10) // duplicate: no-op
	if !ct.HasPageCopy(1, 10) || ct.HasPageCopy(4, 10) {
		t.Fatal("HasPageCopy wrong")
	}
	h := ct.PageHolders(10, 2)
	if len(h) != 2 || h[0] != 1 || h[1] != 3 {
		t.Fatalf("holders = %v, want [1 3]", h)
	}
	ct.UnregisterPage(1, 10, NoEpoch)
	ct.UnregisterPage(1, 10, NoEpoch) // idempotent
	h = ct.PageHolders(10, NoClient)
	if len(h) != 2 || h[0] != 2 || h[1] != 3 {
		t.Fatalf("holders = %v, want [2 3]", h)
	}
	if ct.CopyCount() != 2 {
		t.Fatalf("count = %d", ct.CopyCount())
	}
	// Ops: 4 registers (the duplicate re-registers, bumping its epoch) +
	// 1 unregister.
	if ops := ct.TakeOps(); ops != 5 {
		t.Fatalf("ops = %d, want 5", ops)
	}
}

func TestCopyTabObjBasics(t *testing.T) {
	ct := NewCopyTab(true)
	o := ObjID{Page: 5, Slot: 7}
	ct.RegisterObj(9, o)
	ct.RegisterObj(4, o)
	if h := ct.ObjHolders(o, 9); len(h) != 1 || h[0] != 4 {
		t.Fatalf("holders = %v", h)
	}
	ct.UnregisterObj(9, o, NoEpoch)
	ct.UnregisterObj(4, o, NoEpoch)
	if ct.CopyCount() != 0 {
		t.Fatal("copies remain")
	}
	if h := ct.ObjHolders(o, NoClient); h != nil {
		t.Fatalf("holders after removal = %v", h)
	}
}

func TestCopyTabGranularityPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	pageTab := NewCopyTab(false)
	objTab := NewCopyTab(true)
	expectPanic("RegisterObj on page tab", func() { pageTab.RegisterObj(1, ObjID{}) })
	expectPanic("RegisterPage on obj tab", func() { objTab.RegisterPage(1, 0) })
	expectPanic("ObjHolders on page tab", func() { pageTab.ObjHolders(ObjID{}, 0) })
	expectPanic("PageHolders on obj tab", func() { objTab.PageHolders(0, 0) })
}

// Property: a clientSet built by random add/remove always stays sorted and
// duplicate-free, and membership matches a reference map.
func TestCopyTabClientSetProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var s clientSet
		var epoch int64
		ref := make(map[ClientID]bool)
		for _, op := range ops {
			c := ClientID(op % 16)
			if op&0x80 != 0 {
				epoch++
				s = s.add(c, epoch)
				ref[c] = true
			} else {
				s, _ = s.remove(c, NoEpoch)
				delete(ref, c)
			}
		}
		if len(s) != len(ref) {
			return false
		}
		for i, e := range s {
			if !ref[e.c] {
				return false
			}
			if i > 0 && s[i-1].c >= e.c {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
