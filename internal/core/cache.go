package core

import (
	"container/list"
	"fmt"
)

// ClientCache is the client buffer pool state machine. In page mode
// (everything but OS) it is an LRU cache of pages where individual objects
// can be marked "unavailable" (called back) and "dirty" (updated by the
// active transaction). In object mode (OS) it is an LRU cache of objects.
//
// Pages/objects touched by the active transaction are pinned and never
// evicted; evictions accumulate as drop notices that the driver piggybacks
// on the next message to the server so the copy table stays accurate.
type ClientCache struct {
	ObjMode  bool
	Capacity int // pages (page mode) or objects (object mode)

	pages map[PageID]*CachedPage
	objs  map[ObjID]*cachedObj
	lru   *list.List // front = most recent; elements hold PageID or ObjID

	droppedPages []PageID
	droppedObjs  []ObjID

	// Evictions counts total LRU evictions (stats).
	Evictions int64
}

// CachedPage is the client-side state of one cached page.
type CachedPage struct {
	elem    *list.Element
	Unavail map[uint16]bool // objects called back / marked unavailable
	Dirty   map[uint16]bool // uncommitted local updates
	Pinned  bool            // touched by the active transaction
}

type cachedObj struct {
	elem   *list.Element
	Dirty  bool
	Pinned bool
}

// NewClientCache creates a cache. objMode selects the OS object cache.
func NewClientCache(objMode bool, capacity int) *ClientCache {
	if capacity <= 0 {
		panic("core: cache capacity must be positive")
	}
	c := &ClientCache{ObjMode: objMode, Capacity: capacity, lru: list.New()}
	if objMode {
		c.objs = make(map[ObjID]*cachedObj)
	} else {
		c.pages = make(map[PageID]*CachedPage)
	}
	return c
}

// ---- Page mode ----

// HasPage reports whether page p is resident.
func (c *ClientCache) HasPage(p PageID) bool { return c.pages[p] != nil }

// Page returns the cached page state, or nil.
func (c *ClientCache) Page(p PageID) *CachedPage { return c.pages[p] }

// Readable reports whether object o can be read locally: its page is
// resident and the object is not marked unavailable.
func (c *ClientCache) Readable(o ObjID) bool {
	cp := c.pages[o.Page]
	return cp != nil && !cp.Unavail[o.Slot]
}

// InstallPage installs (or refreshes) page p with the server's current
// unavailable-slot list. If a copy with uncommitted updates is already
// resident, the local dirty objects are preserved (a copy merge); the
// return value is the number of dirty objects merged, for CopyMergeInst
// costing. Installing may evict the LRU unpinned page.
func (c *ClientCache) InstallPage(p PageID, unavail []uint16) (merged int) {
	cp := c.pages[p]
	if cp == nil {
		c.evictFor(1)
		cp = &CachedPage{Unavail: make(map[uint16]bool), Dirty: make(map[uint16]bool)}
		cp.elem = c.lru.PushFront(p)
		c.pages[p] = cp
	} else {
		c.lru.MoveToFront(cp.elem)
		merged = len(cp.Dirty)
		// The incoming copy reflects the server's current lock state;
		// its unavailable set replaces ours entirely (committed writers
		// have released; new writers appear in the new list).
		for s := range cp.Unavail {
			delete(cp.Unavail, s)
		}
	}
	for _, s := range unavail {
		if cp.Dirty[s] {
			panic(fmt.Sprintf("core: server marked our own dirty slot %d.%d unavailable", p, s))
		}
		cp.Unavail[s] = true
	}
	return merged
}

// TouchPage bumps page p in the LRU and pins it for the active txn.
func (c *ClientCache) TouchPage(p PageID) {
	cp := c.pages[p]
	if cp == nil {
		panic(fmt.Sprintf("core: touch of non-resident page %d", p))
	}
	c.lru.MoveToFront(cp.elem)
	cp.Pinned = true
}

// MarkUnavailable marks object o unavailable (object-level callback).
func (c *ClientCache) MarkUnavailable(o ObjID) {
	cp := c.pages[o.Page]
	if cp == nil {
		return // already evicted: nothing to do
	}
	if cp.Dirty[o.Slot] {
		panic(fmt.Sprintf("core: callback for our own dirty object %v", o))
	}
	cp.Unavail[o.Slot] = true
}

// MarkDirty records an uncommitted local update to object o.
func (c *ClientCache) MarkDirty(o ObjID) {
	cp := c.pages[o.Page]
	if cp == nil {
		panic(fmt.Sprintf("core: dirty mark on non-resident page %d", o.Page))
	}
	delete(cp.Unavail, o.Slot)
	cp.Dirty[o.Slot] = true
	cp.Pinned = true
}

// PurgePage removes page p (callback purge or abort). Pending drop notice
// is NOT queued: the server learns via the ack/abort message itself.
func (c *ClientCache) PurgePage(p PageID) {
	cp := c.pages[p]
	if cp == nil {
		return
	}
	c.lru.Remove(cp.elem)
	delete(c.pages, p)
}

// DirtyPages returns the resident pages with uncommitted updates
// (ascending), for building commit/abort messages.
func (c *ClientCache) DirtyPages() []PageID {
	var out []PageID
	for p, cp := range c.pages {
		if len(cp.Dirty) > 0 {
			out = append(out, p)
		}
	}
	sortPages(out)
	return out
}

// DirtyObjCount returns the number of dirty objects on page p.
func (c *ClientCache) DirtyObjCount(p PageID) int {
	cp := c.pages[p]
	if cp == nil {
		return 0
	}
	return len(cp.Dirty)
}

// CleanAll clears dirty marks after a successful commit (pages stay
// cached and readable) and unpins everything.
func (c *ClientCache) CleanAll() {
	if c.ObjMode {
		for _, co := range c.objs {
			co.Dirty = false
			co.Pinned = false
		}
		return
	}
	for _, cp := range c.pages {
		for s := range cp.Dirty {
			delete(cp.Dirty, s)
		}
		cp.Pinned = false
	}
}

// PurgeUpdatesForAbort purges all dirty state for an abort: in page mode,
// pages with dirty objects are purged entirely (the paper's
// purge-at-client abort handling); in object mode dirty objects are
// purged. It unpins everything and returns what was purged so the abort
// message can tell the server to deregister the copies.
func (c *ClientCache) PurgeUpdatesForAbort() (pages []PageID, objs []ObjID) {
	if c.ObjMode {
		for o, co := range c.objs {
			co.Pinned = false
			if co.Dirty {
				objs = append(objs, o)
			}
		}
		for i := 1; i < len(objs); i++ {
			for j := i; j > 0 && objLess(objs[j], objs[j-1]); j-- {
				objs[j], objs[j-1] = objs[j-1], objs[j]
			}
		}
		for _, o := range objs {
			c.PurgeObj(o)
		}
		return nil, objs
	}
	pages = c.DirtyPages()
	for _, p := range pages {
		c.PurgePage(p)
	}
	for _, cp := range c.pages {
		cp.Pinned = false
	}
	return pages, nil
}

// ---- Object mode (OS) ----

// HasObj reports whether object o is resident.
func (c *ClientCache) HasObj(o ObjID) bool { return c.objs[o] != nil }

// InstallObj installs object o, evicting if necessary.
func (c *ClientCache) InstallObj(o ObjID) {
	co := c.objs[o]
	if co == nil {
		c.evictFor(1)
		co = &cachedObj{}
		co.elem = c.lru.PushFront(o)
		c.objs[o] = co
	} else {
		c.lru.MoveToFront(co.elem)
	}
}

// TouchObj bumps and pins object o.
func (c *ClientCache) TouchObj(o ObjID) {
	co := c.objs[o]
	if co == nil {
		panic(fmt.Sprintf("core: touch of non-resident object %v", o))
	}
	c.lru.MoveToFront(co.elem)
	co.Pinned = true
}

// MarkObjDirty records an uncommitted update to object o.
func (c *ClientCache) MarkObjDirty(o ObjID) {
	co := c.objs[o]
	if co == nil {
		panic(fmt.Sprintf("core: dirty mark on non-resident object %v", o))
	}
	co.Dirty = true
	co.Pinned = true
}

// PurgeObj removes object o.
func (c *ClientCache) PurgeObj(o ObjID) {
	co := c.objs[o]
	if co == nil {
		return
	}
	c.lru.Remove(co.elem)
	delete(c.objs, o)
}

// DirtyObjs returns the resident dirty objects (deterministic order).
func (c *ClientCache) DirtyObjs() []ObjID {
	var out []ObjID
	for o, co := range c.objs {
		if co.Dirty {
			out = append(out, o)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && objLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---- Shared ----

// evictFor makes room for n new entries by evicting LRU unpinned, clean
// entries. If everything is pinned the cache is allowed to exceed
// capacity (transaction footprints are assumed to fit, as in the paper).
func (c *ClientCache) evictFor(n int) {
	size := c.lru.Len()
	for size+n > c.Capacity {
		victim := c.oldestEvictable()
		if victim == nil {
			return // all pinned: overflow rather than break the txn
		}
		switch id := victim.Value.(type) {
		case PageID:
			delete(c.pages, id)
			c.droppedPages = append(c.droppedPages, id)
		case ObjID:
			delete(c.objs, id)
			c.droppedObjs = append(c.droppedObjs, id)
		}
		c.lru.Remove(victim)
		c.Evictions++
		size--
	}
}

func (c *ClientCache) oldestEvictable() *list.Element {
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		switch id := e.Value.(type) {
		case PageID:
			cp := c.pages[id]
			if !cp.Pinned && len(cp.Dirty) == 0 {
				return e
			}
		case ObjID:
			co := c.objs[id]
			if !co.Pinned && !co.Dirty {
				return e
			}
		}
	}
	return nil
}

// TakeDropped returns and clears the pending eviction notices.
func (c *ClientCache) TakeDropped() (pages []PageID, objs []ObjID) {
	pages, objs = c.droppedPages, c.droppedObjs
	c.droppedPages, c.droppedObjs = nil, nil
	return pages, objs
}

// Len returns the number of resident entries.
func (c *ClientCache) Len() int { return c.lru.Len() }

// ResidentPages returns all resident page ids (ascending); diagnostics.
func (c *ClientCache) ResidentPages() []PageID {
	var out []PageID
	for p := range c.pages {
		out = append(out, p)
	}
	sortPages(out)
	return out
}

// ResidentObjs returns all resident object ids (deterministic order).
func (c *ClientCache) ResidentObjs() []ObjID {
	var out []ObjID
	for o := range c.objs {
		out = append(out, o)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && objLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
