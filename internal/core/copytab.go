package core

// CopyTab tracks where cached copies of data items reside, at either page
// granularity (PS, PS-OA, PS-AA) or object granularity (OS, PS-OO). The
// server consults it to direct callbacks; RegisterCopyInst is charged per
// register/unregister operation.
//
// Every registration carries an epoch (a global monotonic counter, bumped
// on every register, including re-registrations). Callbacks quote the
// epoch of the registration they revoke and deregistration is skipped for
// superseded epochs. This closes a fundamental race: a client may
// truthfully ack "purged" for an old copy while a newer grant for the same
// item is already in flight to it — without epochs that late ack would
// wipe the fresh registration and the next writer would skip a required
// callback (a stale-read serializability violation).
type CopyTab struct {
	objGran   bool
	pages     map[PageID]clientSet
	objs      map[ObjID]clientSet
	nextEpoch int64

	// Ops counts register/unregister operations for CPU costing.
	Ops int64
}

// copyEntry is one registration.
type copyEntry struct {
	c     ClientID
	epoch int64
}

// clientSet is a small slice of registrations sorted by client id; sorted
// order keeps callback fan-out deterministic.
type clientSet []copyEntry

func (s clientSet) find(c ClientID) int {
	for i, x := range s {
		if x.c == c {
			return i
		}
	}
	return -1
}

func (s clientSet) has(c ClientID) bool { return s.find(c) >= 0 }

func (s clientSet) add(c ClientID, epoch int64) clientSet {
	if i := s.find(c); i >= 0 {
		s[i].epoch = epoch
		return s
	}
	i := 0
	for i < len(s) && s[i].c < c {
		i++
	}
	s = append(s, copyEntry{})
	copy(s[i+1:], s[i:])
	s[i] = copyEntry{c: c, epoch: epoch}
	return s
}

// remove deletes c's registration if its epoch is not newer than the ack's
// epoch (epoch < 0 forces removal).
func (s clientSet) remove(c ClientID, epoch int64) (clientSet, bool) {
	i := s.find(c)
	if i < 0 {
		return s, false
	}
	if epoch >= 0 && s[i].epoch > epoch {
		return s, false // superseded by a newer registration
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1], true
}

// NewCopyTab creates a copy table; objGran selects object granularity.
func NewCopyTab(objGran bool) *CopyTab {
	ct := &CopyTab{objGran: objGran}
	if objGran {
		ct.objs = make(map[ObjID]clientSet)
	} else {
		ct.pages = make(map[PageID]clientSet)
	}
	return ct
}

// ObjGranularity reports whether copies are tracked per object.
func (ct *CopyTab) ObjGranularity() bool { return ct.objGran }

// RegisterPage records that client c caches page p (page granularity).
// Re-registration bumps the epoch so in-flight acks against the previous
// copy cannot cancel this one.
func (ct *CopyTab) RegisterPage(c ClientID, p PageID) {
	if ct.objGran {
		panic("core: RegisterPage on object-granularity copy table")
	}
	ct.nextEpoch++
	ct.pages[p] = ct.pages[p].add(c, ct.nextEpoch)
	ct.Ops++
}

// UnregisterPage removes client c's copy of page p if the registration is
// not newer than ackEpoch. Pass NoEpoch for unconditional removal (abort
// purges and drop notices, which are FIFO-ordered with registrations).
func (ct *CopyTab) UnregisterPage(c ClientID, p PageID, ackEpoch int64) {
	if ct.objGran {
		panic("core: UnregisterPage on object-granularity copy table")
	}
	s, ok := ct.pages[p].remove(c, ackEpoch)
	if !ok {
		return
	}
	ct.Ops++
	if len(s) == 0 {
		delete(ct.pages, p)
	} else {
		ct.pages[p] = s
	}
}

// RegisterObj records that client c caches object o (object granularity).
func (ct *CopyTab) RegisterObj(c ClientID, o ObjID) {
	if !ct.objGran {
		panic("core: RegisterObj on page-granularity copy table")
	}
	ct.nextEpoch++
	ct.objs[o] = ct.objs[o].add(c, ct.nextEpoch)
	ct.Ops++
}

// UnregisterObj removes client c's copy of object o if the registration is
// not newer than ackEpoch (NoEpoch = unconditional).
func (ct *CopyTab) UnregisterObj(c ClientID, o ObjID, ackEpoch int64) {
	if !ct.objGran {
		panic("core: UnregisterObj on page-granularity copy table")
	}
	s, ok := ct.objs[o].remove(c, ackEpoch)
	if !ok {
		return
	}
	ct.Ops++
	if len(s) == 0 {
		delete(ct.objs, o)
	} else {
		ct.objs[o] = s
	}
}

// NoEpoch requests unconditional deregistration.
const NoEpoch int64 = -1

// PageEpoch returns the epoch of client c's registration for page p (0 if
// none).
func (ct *CopyTab) PageEpoch(c ClientID, p PageID) int64 {
	if i := ct.pages[p].find(c); i >= 0 {
		return ct.pages[p][i].epoch
	}
	return 0
}

// ObjEpoch returns the epoch of client c's registration for object o (0 if
// none).
func (ct *CopyTab) ObjEpoch(c ClientID, o ObjID) int64 {
	if i := ct.objs[o].find(c); i >= 0 {
		return ct.objs[o][i].epoch
	}
	return 0
}

// PageHolders returns the clients caching page p, excluding except, in
// ascending order. Page granularity only.
func (ct *CopyTab) PageHolders(p PageID, except ClientID) []ClientID {
	if ct.objGran {
		panic("core: PageHolders on object-granularity copy table")
	}
	return holdersExcept(ct.pages[p], except)
}

// ObjHolders returns the clients caching object o, excluding except, in
// ascending order. Object granularity only.
func (ct *CopyTab) ObjHolders(o ObjID, except ClientID) []ClientID {
	if !ct.objGran {
		panic("core: ObjHolders on page-granularity copy table")
	}
	return holdersExcept(ct.objs[o], except)
}

func holdersExcept(s clientSet, except ClientID) []ClientID {
	if len(s) == 0 {
		return nil
	}
	out := make([]ClientID, 0, len(s))
	for _, e := range s {
		if e.c != except {
			out = append(out, e.c)
		}
	}
	return out
}

// HasPageCopy reports whether client c is recorded as caching page p.
func (ct *CopyTab) HasPageCopy(c ClientID, p PageID) bool {
	return !ct.objGran && ct.pages[p].has(c)
}

// HasObjCopy reports whether client c is recorded as caching object o.
func (ct *CopyTab) HasObjCopy(c ClientID, o ObjID) bool {
	return ct.objGran && ct.objs[o].has(c)
}

// CopyCount returns the total number of recorded copies (diagnostics).
func (ct *CopyTab) CopyCount() int {
	n := 0
	if ct.objGran {
		for _, s := range ct.objs {
			n += len(s)
		}
	} else {
		for _, s := range ct.pages {
			n += len(s)
		}
	}
	return n
}

// DropClient removes every copy recorded for client c (live-system client
// disconnect).
func (ct *CopyTab) DropClient(c ClientID) {
	if ct.objGran {
		for o, s := range ct.objs {
			if s2, ok := s.remove(c, NoEpoch); ok {
				ct.Ops++
				if len(s2) == 0 {
					delete(ct.objs, o)
				} else {
					ct.objs[o] = s2
				}
			}
		}
		return
	}
	for p, s := range ct.pages {
		if s2, ok := s.remove(c, NoEpoch); ok {
			ct.Ops++
			if len(s2) == 0 {
				delete(ct.pages, p)
			} else {
				ct.pages[p] = s2
			}
		}
	}
}

// TakeOps returns the op count accumulated since the last call and resets
// it.
func (ct *CopyTab) TakeOps() int64 {
	n := ct.Ops
	ct.Ops = 0
	return n
}
