package core

import "testing"

// Disconnect cleanup tests: a vanished client must not strand locks,
// rounds, or copies (live-system hygiene; see ServerEngine.Disconnect).

func TestDisconnectReleasesLocksAndUnblocks(t *testing.T) {
	h := newHarness(t, PS, 2, 10, 20, 8)
	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(1, h.write(1, o(0, 0))) // client 1 holds page X

	h.begin(2)
	if st := h.read(2, o(0, 5)); st != opBlocked {
		t.Fatalf("read should block on page X, got %v", st)
	}

	// Client 1 vanishes; its transaction aborts server-side and client 2's
	// read is granted by the cleanup.
	outs := h.se.Disconnect(1)
	for _, m := range outs {
		m := m
		h.msgs[m.Kind]++
		h.queue = append(h.queue, m)
	}
	h.pump()
	if !h.hasReply(2) {
		t.Fatal("disconnect did not unblock the waiting read")
	}
	h.mustDone(2, h.resume(2))
	h.commit(2)
	if !h.se.Quiesced() {
		t.Fatalf("state leaked after disconnect:\n%s", h.se.DumpState())
	}
}

func TestDisconnectAnswersPendingCallbacks(t *testing.T) {
	h := newHarness(t, PS, 3, 10, 20, 8)
	// Client 3 caches page 0 and stays idle-but-connected with an unsent
	// ack: simulate by making its transaction busy.
	h.begin(3)
	h.mustDone(3, h.read(3, o(0, 7)))

	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	if st := h.write(1, o(0, 0)); st != opBlocked {
		t.Fatal("write should wait for client 3's busy callback")
	}

	// Client 3's machine dies without ever answering.
	outs := h.se.Disconnect(3)
	for _, m := range outs {
		m := m
		h.msgs[m.Kind]++
		h.queue = append(h.queue, m)
	}
	h.pump()
	if !h.hasReply(1) {
		t.Fatal("disconnect did not complete the callback round")
	}
	h.mustDone(1, h.resume(1))
	h.commit(1)
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

func TestDisconnectDropsCopies(t *testing.T) {
	for _, proto := range []Protocol{PS, PSOO, OS} {
		t.Run(proto.String(), func(t *testing.T) {
			cap := 8
			if proto == OS {
				cap = 160
			}
			h := newHarness(t, proto, 2, 10, 20, cap)
			h.begin(2)
			h.mustDone(2, h.read(2, o(0, 1)))
			h.commit(2)
			if h.se.Copies.CopyCount() == 0 {
				t.Fatal("no copies registered")
			}
			h.se.Disconnect(2)
			if h.se.Copies.CopyCount() != 0 {
				t.Fatalf("%d copies leaked after disconnect", h.se.Copies.CopyCount())
			}
			// A write by the surviving client needs no callbacks now.
			h.begin(1)
			h.mustDone(1, h.write(1, o(0, 1)))
			if h.msgs[MCallback] != 0 {
				t.Fatalf("callback sent to a disconnected client")
			}
			h.commit(1)
		})
	}
}
