package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// ServerEngine is the server DBMS protocol state machine for all five
// granularity alternatives. It is a pure event->messages transducer:
// Handle consumes one incoming client message and returns the messages the
// server sends in response (data replies, grants, callbacks, de-escalation
// requests, abort notifications). Blocked requests are queued internally
// and their replies are emitted from the later Handle call that unblocks
// them.
//
// Time, transport, buffering, and disks belong to the driver; CPU-relevant
// work is accounted in Locks.Ops, Copies.Ops, and TakeMergeObjs.
type ServerEngine struct {
	Proto  Protocol
	Layout *Layout
	Locks  *LockTab
	Copies *CopyTab

	txns      map[TxnID]*stxn
	rounds    map[int64]*round
	pageRound map[PageID][]*round
	queues    map[PageID][]*blockedReq
	deesc     map[PageID]bool
	tokens    map[PageID]*stxn // PS-WT: per-page write token holder
	nextRound int64
	// roundStride is the round-id increment (default 1). Hosts that run
	// several engines side by side (the live server's page-range shards)
	// stripe the id space so round ids stay globally unique — they key
	// callback-deadline maps and client acks across engine boundaries.
	roundStride int64

	out []Msg

	mergeObjs int64 // CopyMergeInst accumulator (commit installs)

	// system marks clients whose transactions are infrastructure, not
	// workload — the live server's reclustering migrations. Their commits
	// and aborts are excluded from Stats (user-facing throughput must not
	// be inflated by the system's own housekeeping); locking, callbacks,
	// and traces are unaffected.
	system map[ClientID]bool

	Stats ServerCounters

	// Trace, when set, observes protocol events (transaction lifecycle,
	// blocking, grants, callback rounds) as they happen. The live server
	// uses it to feed its tracer and lock-wait histograms; nil (the
	// simulator's default) costs one predictable branch per event.
	Trace func(kind obs.EventKind, txn TxnID, client ClientID, obj ObjID, extra int64)

	// DebugCheckLog, when set (tests only), observes every deadlock
	// check: start txn, its direct waits, chosen victim (0 if none).
	DebugCheckLog func(start TxnID, waits []TxnID, victim TxnID)
}

// ServerCounters counts protocol-level events of interest. The fields are
// atomics because the engine increments them on its driver's goroutine
// while monitors (live Stats() callers, the admin endpoint, periodic
// summaries) read them concurrently; use Snapshot for a plain-struct
// view.
type ServerCounters struct {
	Deadlocks     atomic.Int64 // cycles resolved (victims chosen)
	Rounds        atomic.Int64 // callback rounds started
	Callbacks     atomic.Int64 // individual callback messages sent
	BusyReplies   atomic.Int64
	Deescalations atomic.Int64 // de-escalation requests issued
	PageGrants    atomic.Int64 // page-level write locks granted
	ObjGrants     atomic.Int64 // object-level write locks granted
	Blocks        atomic.Int64 // requests that blocked at least once
	TokenWaits    atomic.Int64 // PS-WT: writes blocked on the page write token
	ReadReqs      atomic.Int64
	WriteReqs     atomic.Int64
	Commits       atomic.Int64
	Aborts        atomic.Int64
}

// ServerStats is a point-in-time snapshot of ServerCounters.
type ServerStats struct {
	Deadlocks     int64
	Rounds        int64
	Callbacks     int64
	BusyReplies   int64
	Deescalations int64
	PageGrants    int64
	ObjGrants     int64
	Blocks        int64
	TokenWaits    int64
	ReadReqs      int64
	WriteReqs     int64
	Commits       int64
	Aborts        int64
}

// Snapshot reads the counters into a plain struct.
func (c *ServerCounters) Snapshot() ServerStats {
	return ServerStats{
		Deadlocks:     c.Deadlocks.Load(),
		Rounds:        c.Rounds.Load(),
		Callbacks:     c.Callbacks.Load(),
		BusyReplies:   c.BusyReplies.Load(),
		Deescalations: c.Deescalations.Load(),
		PageGrants:    c.PageGrants.Load(),
		ObjGrants:     c.ObjGrants.Load(),
		Blocks:        c.Blocks.Load(),
		TokenWaits:    c.TokenWaits.Load(),
		ReadReqs:      c.ReadReqs.Load(),
		WriteReqs:     c.WriteReqs.Load(),
		Commits:       c.Commits.Load(),
		Aborts:        c.Aborts.Load(),
	}
}

// Add accumulates another snapshot into s (summing across engine
// shards).
func (s *ServerStats) Add(o ServerStats) {
	s.Deadlocks += o.Deadlocks
	s.Rounds += o.Rounds
	s.Callbacks += o.Callbacks
	s.BusyReplies += o.BusyReplies
	s.Deescalations += o.Deescalations
	s.PageGrants += o.PageGrants
	s.ObjGrants += o.ObjGrants
	s.Blocks += o.Blocks
	s.TokenWaits += o.TokenWaits
	s.ReadReqs += o.ReadReqs
	s.WriteReqs += o.WriteReqs
	s.Commits += o.Commits
	s.Aborts += o.Aborts
}

// trace emits a protocol event to the Trace hook, if any.
func (se *ServerEngine) trace(kind obs.EventKind, txn TxnID, client ClientID, obj ObjID, extra int64) {
	if se.Trace != nil {
		se.Trace(kind, txn, client, obj, extra)
	}
}

// stxn is the server's view of an active transaction.
type stxn struct {
	id       TxnID
	client   ClientID
	blocked  *blockedReq // outstanding queued request, if any
	round    *round      // outstanding callback round, if any
	aborting bool        // chosen as deadlock victim, abort in flight
	tokens   []PageID    // PS-WT: write tokens held
}

// blockedReq is a queued client request.
type blockedReq struct {
	msg         Msg
	txn         *stxn
	isWrite     bool
	blockedOnce bool
}

// round is one callback round: a write request whose grant awaits acks.
type round struct {
	id      int64
	req     Msg
	txn     *stxn
	page    PageID
	obj     ObjID
	kind    CallbackKind
	pending map[ClientID]bool  // clients whose final ack is outstanding
	busy    map[ClientID]TxnID // clients that replied busy (still pending)
	anyKept bool               // some client kept its page (adaptive rounds)
}

// NewServerEngine creates the engine for the given protocol and layout.
func NewServerEngine(proto Protocol, layout *Layout) *ServerEngine {
	return &ServerEngine{
		Proto:     proto,
		Layout:    layout,
		Locks:     NewLockTab(),
		Copies:    NewCopyTab(proto.ObjectCopies()),
		txns:      make(map[TxnID]*stxn),
		rounds:    make(map[int64]*round),
		pageRound: make(map[PageID][]*round),
		queues:    make(map[PageID][]*blockedReq),
		deesc:     make(map[PageID]bool),
		tokens:    make(map[PageID]*stxn),

		roundStride: 1,
	}
}

// SetSystemClient marks (or unmarks) c as a system client: its commits
// and aborts stop counting in Stats. The host must call this on every
// engine shard the client can reach, before the client issues requests.
func (se *ServerEngine) SetSystemClient(c ClientID, on bool) {
	if se.system == nil {
		se.system = make(map[ClientID]bool)
	}
	if on {
		se.system[c] = true
	} else {
		delete(se.system, c)
	}
}

// IsSystemClient reports whether c is marked as a system client.
func (se *ServerEngine) IsSystemClient(c ClientID) bool { return se.system[c] }

// Handle processes one incoming client message and returns the outgoing
// server messages. The returned slice is reused across calls; the caller
// must consume it before the next Handle.
func (se *ServerEngine) Handle(m *Msg) []Msg {
	se.out = se.out[:0]
	se.processDropped(m)
	switch m.Kind {
	case MReadReq:
		se.Stats.ReadReqs.Add(1)
		se.handleRequest(m, false)
	case MWriteReq:
		se.Stats.WriteReqs.Add(1)
		se.handleRequest(m, true)
	case MCommitReq:
		se.handleCommit(m)
	case MAbortReq:
		se.handleAbort(m)
	case MCallbackAck:
		se.handleAck(m)
	case MDeescReply:
		se.handleDeescReply(m)
	default:
		panic(fmt.Sprintf("core: server received %v", m.Kind))
	}
	return se.out
}

// TakeMergeObjs returns and resets the number of objects merged/installed
// at the server since the last call (for CopyMergeInst costing).
func (se *ServerEngine) TakeMergeObjs() int64 {
	n := se.mergeObjs
	se.mergeObjs = 0
	return n
}

// ConfigureRoundIDs stripes the callback-round id space: the engine's
// rounds get ids first, first+stride, first+2*stride, ... Hosts running
// several engines side by side (page-range shards) give shard i
// (first=i+1, stride=n) so round ids stay globally unique — clients key
// callback deadlines and acks by round id with no notion of shards.
// Must be called before the first Handle. The default is (1, 1).
func (se *ServerEngine) ConfigureRoundIDs(first, stride int64) {
	if first < 1 || stride < 1 {
		panic("core: ConfigureRoundIDs wants first >= 1, stride >= 1")
	}
	if len(se.rounds) > 0 || se.nextRound != 0 {
		panic("core: ConfigureRoundIDs after rounds started")
	}
	se.nextRound = first - stride
	se.roundStride = stride
}

// ActiveTxns returns the number of transactions the server is tracking.
func (se *ServerEngine) ActiveTxns() int { return len(se.txns) }

// BlockedRequests returns the number of queued requests (diagnostics).
func (se *ServerEngine) BlockedRequests() int {
	n := 0
	for _, q := range se.queues {
		n += len(q)
	}
	return n
}

// OpenRounds returns the number of callback rounds in flight.
func (se *ServerEngine) OpenRounds() int { return len(se.rounds) }

// RoundLive reports whether callback round id is still open (not yet
// completed or cancelled). Hosts use it to decide whether a busy reply
// renews the answering client's callback deadline: a busy ack against a
// cancelled round defers nothing — the client owes no final answer.
func (se *ServerEngine) RoundLive(id int64) bool {
	_, ok := se.rounds[id]
	return ok
}

// Quiesced reports whether the server holds no locks, rounds, queues, or
// transactions (integration-test invariant at end of run).
func (se *ServerEngine) Quiesced() bool {
	return len(se.txns) == 0 && len(se.rounds) == 0 && se.BlockedRequests() == 0 &&
		se.Locks.Empty() && len(se.tokens) == 0
}

func (se *ServerEngine) getTxn(t TxnID, c ClientID) *stxn {
	if t == NoTxn {
		panic("core: request with no transaction id")
	}
	st := se.txns[t]
	if st == nil {
		st = &stxn{id: t, client: c}
		se.txns[t] = st
		se.trace(obs.EvBegin, t, c, ObjID{}, 0)
	}
	return st
}

// processDropped applies piggybacked cache eviction notices.
func (se *ServerEngine) processDropped(m *Msg) {
	se.ApplyDropped(m.From, m.DroppedPages, m.DroppedObjs)
}

// ApplyDropped applies cache eviction notices from client c: the client
// no longer caches the listed pages/objects, so the copy table forgets
// them. Sharded hosts call this directly, routing each page to the
// engine that owns it, before dispatching the stripped message.
func (se *ServerEngine) ApplyDropped(c ClientID, pages []PageID, objs []ObjID) {
	if se.Copies.ObjGranularity() {
		for _, o := range objs {
			se.Copies.UnregisterObj(c, o, NoEpoch)
		}
		// PS-OO evicts whole pages client-side but registers per object.
		for _, p := range pages {
			for s := 0; s < se.Layout.ObjsPerPage; s++ {
				se.Copies.UnregisterObj(c, ObjID{Page: p, Slot: uint16(s)}, NoEpoch)
			}
		}
		return
	}
	for _, p := range pages {
		se.Copies.UnregisterPage(c, p, NoEpoch)
	}
}

// send buffers an outgoing message.
func (se *ServerEngine) send(m Msg) { se.out = append(se.out, m) }

// reply buffers a reply to request m.
func (se *ServerEngine) replyMsg(req *Msg, kind MsgKind, grant GrantLevel, unavail []uint16) {
	se.send(Msg{Kind: kind, To: req.From, Txn: req.Txn, Req: req.Req,
		Page: req.Page, Obj: req.Obj, Grant: grant, Unavail: unavail})
}

// unavailSlots computes the slots of page p that must be marked
// unavailable in a page shipped to txn t's client: objects write-locked by
// other transactions plus objects targeted by open callback rounds.
func (se *ServerEngine) unavailSlots(p PageID, t TxnID) []uint16 {
	slots := se.Locks.ObjXSlots(p, t)
	for _, rd := range se.pageRound[p] {
		if rd.txn.id == t {
			continue
		}
		found := false
		for _, s := range slots {
			if s == rd.obj.Slot {
				found = true
				break
			}
		}
		if !found {
			slots = append(slots, rd.obj.Slot)
		}
	}
	sortSlots(slots)
	return slots
}

// roundOnObj returns an open round targeting object o, or nil.
func (se *ServerEngine) roundOnObj(o ObjID) *round {
	for _, rd := range se.pageRound[o.Page] {
		if rd.obj == o {
			return rd
		}
	}
	return nil
}

// roundsOnPage returns the open rounds for page p.
func (se *ServerEngine) roundsOnPage(p PageID) []*round { return se.pageRound[p] }
