// Package core implements the paper's primary contribution: the five
// granularity protocols for fine-grained sharing in a data-shipping OODBMS
// (PS, OS, PS-OO, PS-OA, PS-AA), expressed as pure, driver-agnostic state
// machines.
//
// The package contains:
//
//   - identifiers and the physical database layout (ids.go),
//   - the client/server message vocabulary with wire sizes (msg.go),
//   - the server-side lock table with page- and object-granularity X
//     locks, de-escalation, and FIFO queueing (locktab.go),
//   - the cached-copy (replica location) table (copytab.go),
//   - the client cache state machine: page/object residence, availability
//     marks, LRU replacement, merge bookkeeping (cache.go),
//   - the waits-for deadlock detector (deadlock.go),
//   - the server protocol engine (server.go) and the client protocol
//     logic (client.go).
//
// None of the code here knows about time, goroutines, the network, or
// disks: events go in, actions (plus accounting of the CPU-relevant
// operations performed) come out. The simulator (internal/model) and the
// live system (internal/live) are alternative drivers of this logic.
package core

import "fmt"

// PageID identifies a physical database page (the unit of disk transfer
// and, for page servers, of client-server transfer).
type PageID int32

// InvalidPage is the zero PageID sentinel; valid pages are numbered >= 0
// and InvalidPage is -1.
const InvalidPage PageID = -1

// ObjID identifies an object by its home page and slot within the page.
// Objects are assumed smaller than a page (the paper handles large objects
// page-at-a-time, outside the scope of the granularity protocols).
type ObjID struct {
	Page PageID
	Slot uint16
}

func (o ObjID) String() string { return fmt.Sprintf("%d.%d", o.Page, o.Slot) }

// ClientID identifies a client workstation (1-based; 0 is reserved).
type ClientID int32

// NoClient is the absent-client sentinel.
const NoClient ClientID = 0

// TxnID identifies one transaction *execution* (a restarted transaction
// gets a fresh TxnID). IDs increase monotonically with start order, which
// the deadlock detector uses for its youngest-victim policy.
type TxnID int64

// NoTxn is the absent-transaction sentinel.
const NoTxn TxnID = 0

// Layout describes the physical database layout: how logical object
// numbers map onto pages. The default layout is sequential; the
// Interleaved PRIVATE workload (Section 5.5 of the paper) installs a remap
// that interleaves the hot objects of client pairs onto shared pages.
type Layout struct {
	NumPages    int
	ObjsPerPage int
	// remap, if non-nil, translates a "logical" object index into its
	// physical object id; len(remap) == NumPages*ObjsPerPage.
	remap []ObjID
}

// NewLayout builds a sequential layout.
func NewLayout(numPages, objsPerPage int) *Layout {
	if numPages <= 0 || objsPerPage <= 0 {
		panic("core: layout dimensions must be positive")
	}
	return &Layout{NumPages: numPages, ObjsPerPage: objsPerPage}
}

// NumObjects returns the total number of objects in the database.
func (l *Layout) NumObjects() int { return l.NumPages * l.ObjsPerPage }

// Obj maps a logical object index in [0, NumObjects) to its ObjID.
func (l *Layout) Obj(index int) ObjID {
	if index < 0 || index >= l.NumObjects() {
		panic(fmt.Sprintf("core: object index %d out of range", index))
	}
	if l.remap != nil {
		return l.remap[index]
	}
	return ObjID{Page: PageID(index / l.ObjsPerPage), Slot: uint16(index % l.ObjsPerPage)}
}

// PageObjects returns the logical indexes that live on page p under the
// identity mapping (before any remap); used by workload generators that
// pick a page and then objects within it.
func (l *Layout) PageObjects(p PageID) (first, count int) {
	return int(p) * l.ObjsPerPage, l.ObjsPerPage
}

// SetRemap installs a remap table; len(remap) must equal NumObjects.
func (l *Layout) SetRemap(remap []ObjID) {
	if len(remap) != l.NumObjects() {
		panic("core: remap length mismatch")
	}
	l.remap = remap
}

// InterleavePairs builds the Interleaved PRIVATE remap described in
// Section 5.5: for each pair of clients (1,2), (3,4), ..., the hot objects
// of the pair are redistributed over their combined hot pages so that the
// first client's objects occupy the top half of every page and the second
// client's the bottom half. hotStart(c) gives the first page of client c's
// hot region and hotPages its length; clients are 1-based, numClients must
// be even for full pairing (a trailing unpaired client keeps its layout).
func InterleavePairs(l *Layout, numClients int, hotStart func(c int) PageID, hotPages int) {
	remap := make([]ObjID, l.NumObjects())
	for i := range remap {
		remap[i] = ObjID{Page: PageID(i / l.ObjsPerPage), Slot: uint16(i % l.ObjsPerPage)}
	}
	half := l.ObjsPerPage / 2
	for c := 1; c+1 <= numClients; c += 2 {
		aStart, bStart := hotStart(c), hotStart(c+1)
		// The combined region is the union of both hot regions (2*hotPages
		// pages). Client c's hotPages*ObjsPerPage objects spread across all
		// combined pages' top halves; client c+1's across bottom halves.
		combined := make([]PageID, 0, 2*hotPages)
		for i := 0; i < hotPages; i++ {
			combined = append(combined, aStart+PageID(i))
		}
		for i := 0; i < hotPages; i++ {
			combined = append(combined, bStart+PageID(i))
		}
		place := func(start PageID, topHalf bool) {
			k := 0
			for i := 0; i < hotPages; i++ {
				for s := 0; s < l.ObjsPerPage; s++ {
					logical := int(start+PageID(i))*l.ObjsPerPage + s
					pg := combined[k/half]
					slot := k % half
					if !topHalf {
						slot += half
					}
					remap[logical] = ObjID{Page: pg, Slot: uint16(slot)}
					k++
				}
			}
		}
		place(aStart, true)
		place(bStart, false)
	}
	l.SetRemap(remap)
}
