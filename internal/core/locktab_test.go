package core

import "testing"

func TestLockTabGrantRelease(t *testing.T) {
	lt := NewLockTab()
	o := ObjID{Page: 3, Slot: 2}
	lt.GrantObjX(1, 10, o)
	if lt.ObjXHolder(o) != 1 {
		t.Fatal("obj X not recorded")
	}
	if !lt.HoldsObjX(1, o) {
		t.Fatal("HoldsObjX false")
	}
	lt.GrantPageX(1, 10, 5)
	if lt.PageXHolder(5) != 1 {
		t.Fatal("page X not recorded")
	}
	pages := lt.ReleaseAll(1)
	if len(pages) != 2 || pages[0] != 3 || pages[1] != 5 {
		t.Fatalf("affected pages = %v", pages)
	}
	if !lt.Empty() {
		t.Fatal("table not empty after release")
	}
}

func TestLockTabConflictPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	lt := NewLockTab()
	lt.GrantPageX(1, 10, 5)
	expectPanic("pageX over pageX", func() { lt.GrantPageX(2, 11, 5) })
	expectPanic("objX under foreign pageX", func() { lt.GrantObjX(2, 11, ObjID{Page: 5, Slot: 0}) })

	lt2 := NewLockTab()
	lt2.GrantObjX(1, 10, ObjID{Page: 7, Slot: 3})
	expectPanic("objX over objX", func() { lt2.GrantObjX(2, 11, ObjID{Page: 7, Slot: 3}) })
	expectPanic("pageX over foreign objX", func() { lt2.GrantPageX(2, 11, 7) })
}

func TestLockTabEscalationAbsorbsOwnObjLocks(t *testing.T) {
	lt := NewLockTab()
	o1 := ObjID{Page: 4, Slot: 0}
	o2 := ObjID{Page: 4, Slot: 9}
	lt.GrantObjX(1, 10, o1)
	lt.GrantObjX(1, 10, o2)
	lt.GrantPageX(1, 10, 4) // re-escalation: same txn
	if !lt.HoldsPageX(1, 4) {
		t.Fatal("page X missing after escalation")
	}
	if lt.HoldsObjX(1, o1) || lt.HoldsObjX(1, o2) {
		t.Fatal("object locks should be absorbed")
	}
	if lt.LockCount(1) != 1 {
		t.Fatalf("lock count = %d, want 1", lt.LockCount(1))
	}
}

func TestLockTabDeescalate(t *testing.T) {
	lt := NewLockTab()
	lt.GrantPageX(7, 2, 9)
	objs := []ObjID{{Page: 9, Slot: 1}, {Page: 9, Slot: 5}}
	lt.Deescalate(7, 9, objs)
	if lt.PageXHolder(9) != NoTxn {
		t.Fatal("page X survived de-escalation")
	}
	for _, o := range objs {
		if lt.ObjXHolder(o) != 7 {
			t.Fatalf("obj %v not locked after de-escalation", o)
		}
	}
	// Another txn can now lock a different object on the page.
	lt.GrantObjX(8, 3, ObjID{Page: 9, Slot: 7})
	if n := lt.ObjXCount(9, 7); n != 1 {
		t.Fatalf("foreign obj lock count = %d, want 1", n)
	}
	slots := lt.ObjXSlots(9, 8)
	if len(slots) != 2 || slots[0] != 1 || slots[1] != 5 {
		t.Fatalf("foreign slots for txn 8 = %v", slots)
	}
}

func TestLockTabDeescalateWrongHolderPanics(t *testing.T) {
	lt := NewLockTab()
	lt.GrantPageX(7, 2, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lt.Deescalate(8, 9, nil)
}

func TestLockTabTxnPagesSorted(t *testing.T) {
	lt := NewLockTab()
	lt.GrantObjX(1, 5, ObjID{Page: 30, Slot: 0})
	lt.GrantObjX(1, 5, ObjID{Page: 10, Slot: 0})
	lt.GrantPageX(1, 5, 20)
	pages := lt.TxnPages(1)
	if len(pages) != 3 || pages[0] != 10 || pages[1] != 20 || pages[2] != 30 {
		t.Fatalf("pages = %v", pages)
	}
	objs := lt.ObjXObjs(1)
	if len(objs) != 2 || objs[0].Page != 10 || objs[1].Page != 30 {
		t.Fatalf("objs = %v", objs)
	}
}

func TestLockTabOpsCounting(t *testing.T) {
	lt := NewLockTab()
	lt.GrantObjX(1, 5, ObjID{Page: 1, Slot: 0})
	lt.GrantPageX(1, 5, 2)
	if ops := lt.TakeOps(); ops != 2 {
		t.Fatalf("ops = %d, want 2", ops)
	}
	if ops := lt.TakeOps(); ops != 0 {
		t.Fatalf("ops after take = %d, want 0", ops)
	}
}

func TestLockTabReleaseUnknownTxn(t *testing.T) {
	lt := NewLockTab()
	if pages := lt.ReleaseAll(42); pages != nil {
		t.Fatalf("release of unknown txn returned %v", pages)
	}
}
