package core

import "fmt"

// ClientState is the client DBMS protocol state machine: the cache plus
// the active transaction's local lock state and deferred callback
// obligations. It is pure logic — the simulated and live drivers both
// drive it and perform the actual waiting/transport around it.
type ClientState struct {
	ID    ClientID
	Proto Protocol
	Cache *ClientCache

	// Active transaction state (zeroed between transactions).
	Txn          TxnID
	readSet      map[ObjID]bool
	writeSet     map[ObjID]bool
	pagesTouched map[PageID]bool
	pageX        map[PageID]bool
	objX         map[ObjID]bool

	// committing is set once the commit request has been built/sent and
	// cleared when the transaction ends. In this window the server may
	// already have processed the commit (releasing locks) and started
	// callback rounds against our still-registered copies; exposed for
	// drivers/diagnostics.
	committing bool

	// pendingWrite is the object of a write grant whose RecordWrite has
	// not happened yet (e.g. the driver is re-fetching a stale page before
	// applying the update). A de-escalation arriving in that window must
	// preserve the intent as an object lock.
	pendingWrite    ObjID
	hasPendingWrite bool

	// pending holds callback requests that could not be answered with a
	// final ack because the active transaction is using the item; they are
	// resolved when the transaction ends.
	pending []Msg
}

// NewClientState creates the protocol state for one client.
func NewClientState(id ClientID, proto Protocol, cacheCapacity int) *ClientState {
	return &ClientState{
		ID:    id,
		Proto: proto,
		Cache: NewClientCache(proto == OS, cacheCapacity),
	}
}

// Begin starts a transaction with the given id.
func (cs *ClientState) Begin(t TxnID) {
	if cs.Txn != NoTxn {
		panic("core: Begin with transaction already active")
	}
	cs.Txn = t
	cs.readSet = make(map[ObjID]bool)
	cs.writeSet = make(map[ObjID]bool)
	cs.pagesTouched = make(map[PageID]bool)
	cs.pageX = make(map[PageID]bool)
	cs.objX = make(map[ObjID]bool)
}

// Active reports whether a transaction is in progress.
func (cs *ClientState) Active() bool { return cs.Txn != NoTxn }

// ---- References ----

// NeedForRead returns nil if object o is locally readable, else the
// request message to send to the server.
func (cs *ClientState) NeedForRead(o ObjID) *Msg {
	if cs.Proto == OS {
		if cs.Cache.HasObj(o) {
			return nil
		}
		return &Msg{Kind: MReadReq, From: cs.ID, Txn: cs.Txn, Obj: o, Page: o.Page}
	}
	if cs.Cache.Readable(o) {
		return nil
	}
	return &Msg{Kind: MReadReq, From: cs.ID, Txn: cs.Txn, Obj: o, Page: o.Page}
}

// RecordRead registers a completed read of o in the transaction's local
// state (local read lock + LRU touch + pin).
func (cs *ClientState) RecordRead(o ObjID) {
	if cs.Txn == NoTxn {
		panic("core: RecordRead with no transaction")
	}
	cs.readSet[o] = true
	if cs.Proto == OS {
		cs.Cache.TouchObj(o)
	} else {
		cs.pagesTouched[o.Page] = true
		cs.Cache.TouchPage(o.Page)
	}
}

// NeedForWrite returns nil if the transaction already has write permission
// covering o, else the write request to send.
func (cs *ClientState) NeedForWrite(o ObjID) *Msg {
	switch cs.Proto {
	case PS:
		if cs.pageX[o.Page] {
			return nil
		}
		return &Msg{Kind: MWriteReq, From: cs.ID, Txn: cs.Txn, Obj: o, Page: o.Page,
			WantData: !cs.Cache.HasPage(o.Page)}
	case OS:
		if cs.objX[o] {
			return nil
		}
		return &Msg{Kind: MWriteReq, From: cs.ID, Txn: cs.Txn, Obj: o, Page: o.Page,
			WantData: !cs.Cache.HasObj(o)}
	case PSOO, PSOA, PSWT:
		if cs.objX[o] {
			return nil
		}
		return &Msg{Kind: MWriteReq, From: cs.ID, Txn: cs.Txn, Obj: o, Page: o.Page,
			WantData: !cs.Cache.Readable(o)}
	case PSAA:
		if cs.pageX[o.Page] || cs.objX[o] {
			return nil
		}
		return &Msg{Kind: MWriteReq, From: cs.ID, Txn: cs.Txn, Obj: o, Page: o.Page,
			WantData: !cs.Cache.Readable(o)}
	}
	panic("core: unknown protocol")
}

// StartWrite declares the intent to update o before permission checks and
// any driver yields (server round trips, stale-page refetches). If a
// de-escalation request arrives mid-update — in particular during the
// refetch of a stale object already covered by our page lock — the intent
// converts to an object lock rather than being silently dropped. Cleared
// by RecordWrite.
func (cs *ClientState) StartWrite(o ObjID) {
	if cs.Txn == NoTxn {
		panic("core: StartWrite with no transaction")
	}
	cs.pendingWrite = o
	cs.hasPendingWrite = true
}

// RecordWrite registers a completed update of o (write permission must
// already be held).
func (cs *ClientState) RecordWrite(o ObjID) {
	if cs.Txn == NoTxn {
		panic("core: RecordWrite with no transaction")
	}
	if cs.hasPendingWrite && cs.pendingWrite == o {
		cs.hasPendingWrite = false
	}
	cs.readSet[o] = true
	cs.writeSet[o] = true
	if cs.Proto == OS {
		cs.Cache.TouchObj(o)
		cs.Cache.MarkObjDirty(o)
	} else {
		cs.pagesTouched[o.Page] = true
		cs.Cache.TouchPage(o.Page)
		cs.Cache.MarkDirty(o)
	}
}

// OnReply applies a server reply (data and/or grant) to local state and
// returns the number of objects merged (for CopyMergeInst costing).
func (cs *ClientState) OnReply(m *Msg) (merged int) {
	switch m.Kind {
	case MPageData:
		merged = cs.Cache.InstallPage(m.Page, m.Unavail)
		cs.applyGrant(m)
	case MObjData:
		cs.Cache.InstallObj(m.Obj)
		cs.applyGrant(m)
	case MGrant:
		// A data-less grant is only legal if we really still cache the
		// item; the server verified this against its copy table.
		if cs.Proto == OS {
			if !cs.Cache.HasObj(m.Obj) {
				panic(fmt.Sprintf("core: data-less grant for missing object %v", m.Obj))
			}
		} else if m.Grant == GrantPage {
			if !cs.Cache.HasPage(m.Page) {
				panic(fmt.Sprintf("core: data-less page grant for missing page %d", m.Page))
			}
		} else if !cs.Cache.Readable(m.Obj) {
			// Under page-granularity copy tracking (PS-OA, PS-AA) the
			// server cannot see that our copy of the object was marked
			// unavailable by an adaptive callback after we sent the write
			// request, so a data-less grant can arrive for a stale object.
			// The caller must detect this (NeedsRefetch) and fetch the
			// page before writing. Object-granularity protocols track
			// exactly this, so there it is a protocol violation.
			if cs.Proto == PSOO || cs.Proto == PSWT {
				panic(fmt.Sprintf("core: data-less grant for unavailable object %v", m.Obj))
			}
		}
		cs.applyGrant(m)
	default:
		panic(fmt.Sprintf("core: OnReply with %v", m.Kind))
	}
	return merged
}

func (cs *ClientState) applyGrant(m *Msg) {
	if m.Grant != GrantNone {
		cs.pendingWrite = m.Obj
		cs.hasPendingWrite = true
	}
	switch m.Grant {
	case GrantNone:
	case GrantPage:
		if !cs.Proto.PageLocks() {
			panic("core: page grant under object-lock protocol")
		}
		cs.pageX[m.Page] = true
		// A page grant absorbs object locks we held on the page.
		for o := range cs.objX {
			if o.Page == m.Page {
				delete(cs.objX, o)
			}
		}
	case GrantObject:
		cs.objX[m.Obj] = true
	}
}

// Wrote reports whether the active transaction has updated o.
func (cs *ClientState) Wrote(o ObjID) bool { return cs.writeSet[o] }

// WriteSetObjs returns the active transaction's updated objects
// (deterministic order).
func (cs *ClientState) WriteSetObjs() []ObjID {
	out := make([]ObjID, 0, len(cs.writeSet))
	for o := range cs.writeSet {
		out = append(out, o)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && objLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NeedsRefetch reports whether object o, though write permission is held,
// is locally stale (marked unavailable) and must be re-fetched before the
// update can proceed. This arises only under page-granularity copy
// tracking; see OnReply.
func (cs *ClientState) NeedsRefetch(o ObjID) bool {
	return cs.Proto != OS && !cs.Cache.Readable(o)
}

// HoldsPageX reports local page-level write permission (tests/invariants).
func (cs *ClientState) HoldsPageX(p PageID) bool { return cs.pageX[p] }

// HoldsObjX reports local object-level write permission.
func (cs *ClientState) HoldsObjX(o ObjID) bool { return cs.objX[o] }

// WroteOn returns the objects of page p updated so far by the active
// transaction (deterministic order).
func (cs *ClientState) WroteOn(p PageID) []ObjID {
	var out []ObjID
	for o := range cs.writeSet {
		if o.Page == p {
			out = append(out, o)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && objLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---- Callbacks ----

// HandleCallback processes an incoming callback request. It returns the
// immediate reply (a final ack, or a busy notification) and whether the
// final ack is deferred until the end of the active transaction.
func (cs *ClientState) HandleCallback(m *Msg) (reply *Msg, deferred bool) {
	ack := func(purged bool) *Msg {
		return &Msg{Kind: MCallbackAck, From: cs.ID, Req: m.Req, Page: m.Page, Obj: m.Obj,
			CB: m.CB, Purged: purged, Epoch: m.Epoch}
	}
	busy := func() *Msg {
		cs.pending = append(cs.pending, *m)
		return &Msg{Kind: MCallbackAck, From: cs.ID, Req: m.Req, Page: m.Page, Obj: m.Obj,
			CB: m.CB, Busy: true, BusyTxn: cs.Txn, Epoch: m.Epoch}
	}
	// A callback can legitimately target an item this transaction has
	// write-locked: the round was started (or even cancelled by a deadlock
	// abort) before our own grant, and its callback was still in flight.
	// Such callbacks — like any in-use conflict — get a busy reply and a
	// truthful deferred ack at transaction end.
	switch m.CB {
	case CBPage:
		if cs.Active() && cs.pagesTouched[m.Page] {
			return busy(), true
		}
		cs.Cache.PurgePage(m.Page)
		return ack(true), false
	case CBObject:
		if cs.Active() && (cs.readSet[m.Obj] || cs.writeSet[m.Obj]) {
			return busy(), true
		}
		if cs.Proto == OS {
			cs.Cache.PurgeObj(m.Obj)
		} else {
			cs.Cache.MarkUnavailable(m.Obj)
		}
		return ack(true), false
	case CBAdaptive:
		if cs.Active() && cs.pagesTouched[m.Page] {
			if cs.readSet[m.Obj] || cs.writeSet[m.Obj] {
				return busy(), true
			}
			cs.Cache.MarkUnavailable(m.Obj)
			return ack(false), false // kept the page
		}
		cs.Cache.PurgePage(m.Page)
		return ack(true), false
	}
	panic("core: unknown callback kind")
}

// HandleDeescReq processes a PS-AA de-escalation request: the client
// reports which objects of the page its transaction has updated and
// downgrades its local page permission to those objects.
func (cs *ClientState) HandleDeescReq(m *Msg) *Msg {
	reply := &Msg{Kind: MDeescReply, From: cs.ID, Txn: cs.Txn, Page: m.Page}
	if !cs.Active() || !cs.pageX[m.Page] {
		return reply // no longer held; server will see the release instead
	}
	objs := cs.WroteOn(m.Page)
	// A write grant may be awaiting its RecordWrite (the driver is
	// re-fetching a stale page); preserve that intent as an object lock.
	if cs.hasPendingWrite && cs.pendingWrite.Page == m.Page {
		found := false
		for _, o := range objs {
			if o == cs.pendingWrite {
				found = true
				break
			}
		}
		if !found {
			objs = append(objs, cs.pendingWrite)
		}
	}
	if len(objs) == 0 {
		panic("core: page X held with no local updates at de-escalation")
	}
	delete(cs.pageX, m.Page)
	for _, o := range objs {
		cs.objX[o] = true
	}
	reply.DeescObjs = objs
	return reply
}

// ---- Transaction end ----

// BuildCommit constructs the commit message carrying the updated pages
// (page modes) or objects (OS).
func (cs *ClientState) BuildCommit() *Msg {
	if cs.Txn == NoTxn {
		panic("core: BuildCommit with no transaction")
	}
	cs.committing = true
	m := &Msg{Kind: MCommitReq, From: cs.ID, Txn: cs.Txn}
	if cs.Proto == OS {
		m.Objs = cs.Cache.DirtyObjs()
	} else {
		m.Pages = cs.Cache.DirtyPages()
	}
	return m
}

// OnCommitAck finalizes a committed transaction: dirty state becomes
// clean, local locks are dropped, and deferred callback obligations are
// discharged. It returns the final callback acks to send.
func (cs *ClientState) OnCommitAck() []Msg {
	if cs.Txn == NoTxn {
		panic("core: OnCommitAck with no transaction")
	}
	cs.Cache.CleanAll()
	cs.endTxn()
	return cs.resolvePending()
}

// Abort aborts the active transaction (deadlock victim): uncommitted
// updates are purged from the cache, deferred callbacks discharged, and
// the abort notification for the server built. The returned messages are
// the abort request followed by any final callback acks.
func (cs *ClientState) Abort() []Msg {
	if cs.Txn == NoTxn {
		panic("core: Abort with no transaction")
	}
	m := Msg{Kind: MAbortReq, From: cs.ID, Txn: cs.Txn}
	m.PurgedPages, m.PurgedObjs = cs.Cache.PurgeUpdatesForAbort()
	cs.endTxn()
	return append([]Msg{m}, cs.resolvePending()...)
}

func (cs *ClientState) endTxn() {
	cs.Txn = NoTxn
	cs.committing = false
	cs.hasPendingWrite = false
	cs.readSet = nil
	cs.writeSet = nil
	cs.pagesTouched = nil
	cs.pageX = nil
	cs.objX = nil
}

// resolvePending discharges deferred callbacks now that no transaction is
// active, returning the final acks.
func (cs *ClientState) resolvePending() []Msg {
	if len(cs.pending) == 0 {
		return nil
	}
	acks := make([]Msg, 0, len(cs.pending))
	for i := range cs.pending {
		m := &cs.pending[i]
		purged := true
		switch m.CB {
		case CBPage, CBAdaptive:
			cs.Cache.PurgePage(m.Page)
		case CBObject:
			if cs.Proto == OS {
				cs.Cache.PurgeObj(m.Obj)
			} else {
				cs.Cache.MarkUnavailable(m.Obj)
			}
		}
		acks = append(acks, Msg{Kind: MCallbackAck, From: cs.ID, Req: m.Req, Page: m.Page,
			Obj: m.Obj, CB: m.CB, Purged: purged, Epoch: m.Epoch})
	}
	cs.pending = nil
	return acks
}

// PendingCallbacks returns the number of deferred callback obligations.
func (cs *ClientState) PendingCallbacks() int { return len(cs.pending) }
