package core

import "testing"

// ---- PS-WT (write-token variant, Section 6.1) ----

func TestPSWTSerializesPageUpdaters(t *testing.T) {
	h := newHarness(t, PSWT, 2, 10, 20, 8)
	h.begin(1)
	h.begin(2)
	h.mustDone(1, h.write(1, o(0, 0)))
	// A different object on the same page: logically compatible, but the
	// write token serializes the updaters.
	if st := h.write(2, o(0, 1)); st != opBlocked {
		t.Fatalf("second updater should wait for the token, got %v", st)
	}
	if h.se.Stats.TokenWaits.Load() == 0 {
		t.Fatal("token wait not counted")
	}
	h.commit(1)
	if !h.hasReply(2) {
		t.Fatal("token not passed on commit")
	}
	h.mustDone(2, h.resume(2))
	h.commit(2)
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

func TestPSWTReadersUnaffectedByToken(t *testing.T) {
	h := newHarness(t, PSWT, 2, 10, 20, 8)
	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 0))) // client 1 holds the token for page 0
	h.begin(2)
	// Readers of other objects on the page proceed (fine-grained sharing).
	h.mustDone(2, h.read(2, o(0, 5)))
	if !h.cs(2).Cache.Readable(o(0, 5)) {
		t.Fatal("reader blocked by write token")
	}
	// The token holder's locked object is unavailable, as under PS-OO.
	if h.cs(2).Cache.Readable(o(0, 0)) {
		t.Fatal("locked object should be unavailable")
	}
	h.commit(1)
	h.commit(2)
}

func TestPSWTNoMergeAtServer(t *testing.T) {
	h := newHarness(t, PSWT, 2, 10, 20, 8)
	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 0)))
	h.mustDone(1, h.write(1, o(0, 1)))
	h.commit(1)
	if n := h.se.TakeMergeObjs(); n != 0 {
		t.Fatalf("PS-WT merged %d objects; the token should make merging unnecessary", n)
	}
	// Sequential updater from the other client: still no merge.
	h.begin(2)
	h.mustDone(2, h.write(2, o(0, 2)))
	h.commit(2)
	if n := h.se.TakeMergeObjs(); n != 0 {
		t.Fatalf("PS-WT merged %d objects", n)
	}
}

func TestPSWTTokenReleasedOnAbort(t *testing.T) {
	h := newHarness(t, PSWT, 2, 10, 20, 8)
	t1 := h.begin(1)
	h.begin(2)
	h.mustDone(1, h.read(1, o(1, 0)))
	h.mustDone(1, h.write(1, o(0, 0))) // token for page 0
	h.mustDone(2, h.read(2, o(0, 5)))  // client 2 active reader on page 0
	// Deadlock: client 2 wants the token (write 0.6), client 1 wants to
	// write 1.1 which client 2... build a simpler cycle instead: client 2
	// writes 0.0 (blocked on objX+token), client 1 writes an object client
	// 2 has read.
	if st := h.write(2, o(0, 0)); st != opBlocked {
		t.Fatalf("conflicting write should block, got %v", st)
	}
	st := h.write(1, o(0, 5)) // 0.5 is in client 2's read set -> busy -> cycle
	if st == opBlocked {
		// Client 1 (older, txn t1) survives; client 2 (youngest) aborts
		// and must process the abort before client 1's round completes.
		if !h.hasReply(2) {
			t.Fatal("cycle unresolved: no victim chosen")
		}
		if got := h.resume(2); got != opAborted {
			t.Fatalf("victim status = %v", got)
		}
		if !h.hasReply(1) {
			t.Fatal("survivor not unblocked by victim abort")
		}
		st = h.resume(1)
	}
	h.mustDone(1, st)
	_ = t1
	h.commit(1)
	// Client 2's transaction aborted; token must belong to client 1 or be
	// free after its commit.
	h.begin(2)
	h.mustDone(2, h.write(2, o(0, 3)))
	h.commit(2)
	if !h.se.Quiesced() {
		t.Fatal("token leaked")
	}
}

func TestPSWTObjectCallbacksStillFineGrained(t *testing.T) {
	h := newHarness(t, PSWT, 2, 10, 20, 8)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 1)))
	h.commit(2) // idle copy

	h.begin(1)
	// Client 2's page fetch registered copies for every available object,
	// so each write calls back just that object.
	h.mustDone(1, h.write(1, o(0, 0)))
	if h.msgs[MCallback] != 1 {
		t.Fatalf("callbacks = %d, want 1", h.msgs[MCallback])
	}
	h.mustDone(1, h.write(1, o(0, 1)))
	if h.msgs[MCallback] != 2 {
		t.Fatalf("callbacks = %d, want 2", h.msgs[MCallback])
	}
	if !h.cs(2).Cache.HasPage(0) {
		t.Fatal("page should be retained through object callback")
	}
	h.commit(1)
}

func TestPSWTSerialUseAndVisibility(t *testing.T) {
	h := newHarness(t, PSWT, 3, 10, 20, 8)
	for round := 0; round < 3; round++ {
		for c := ClientID(1); c <= 3; c++ {
			h.begin(c)
			h.mustDone(c, h.read(c, o(PageID(round), uint16(c))))
			h.mustDone(c, h.write(c, o(PageID(int(c)), uint16(round))))
			h.commit(c)
		}
	}
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}
