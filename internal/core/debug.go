package core

import (
	"fmt"
	"sort"
	"strings"
)

// DumpState renders the engine's wait state for diagnostics: every tracked
// transaction with its blocked request, open round, lock holdings, and
// computed waits-for edges.
func (se *ServerEngine) DumpState() string {
	var b strings.Builder
	var ids []TxnID
	for t := range se.txns {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t := se.txns[id]
		fmt.Fprintf(&b, "txn %d (client %d, aborting=%v): locks=%d", t.id, t.client, t.aborting, se.Locks.LockCount(t.id))
		if t.blocked != nil {
			fmt.Fprintf(&b, " BLOCKED %v on obj %v (write=%v)", t.blocked.msg.Kind, t.blocked.msg.Obj, t.blocked.isWrite)
		}
		if t.round != nil {
			fmt.Fprintf(&b, " ROUND %d page %d obj %v kind %v pending=%v busy=%v",
				t.round.id, t.round.page, t.round.obj, t.round.kind, keysOf(t.round.pending), t.round.busy)
		}
		fmt.Fprintf(&b, " waitsFor=%v\n", se.waitsFor(t))
	}
	for p, q := range se.queues {
		fmt.Fprintf(&b, "queue page %d: %d reqs\n", p, len(q))
	}
	return b.String()
}

// RecheckDeadlock runs the production incremental detector from the given
// transaction (diagnostics only). It reports whether a victim was chosen.
func (se *ServerEngine) RecheckDeadlock(t TxnID) bool {
	st := se.txns[t]
	if st == nil {
		return false
	}
	before := se.Stats.Deadlocks.Load()
	se.deadlockCheck(st)
	return se.Stats.Deadlocks.Load() > before
}

// TraceDeadlock runs the incremental detector's exact logic from t,
// logging every traversal step (diagnostics only).
func (se *ServerEngine) TraceDeadlock(t TxnID, logf func(string, ...any)) {
	st := se.txns[t]
	if st == nil {
		logf("txn %d unknown", t)
		return
	}
	var dfs func(cur *stxn, path []*stxn, onPath map[TxnID]bool, depth int) *stxn
	dfs = func(cur *stxn, path []*stxn, onPath map[TxnID]bool, depth int) *stxn {
		deps := se.waitsFor(cur)
		logf("%*sdfs cur=%d deps=%v", depth*2, "", cur.id, deps)
		for _, next := range deps {
			nt := se.txns[next]
			if nt == nil {
				logf("%*s next=%d: unknown", depth*2, "", next)
				continue
			}
			if nt.aborting {
				logf("%*s next=%d: aborting", depth*2, "", next)
				continue
			}
			if nt == st {
				logf("%*s next=%d == start: CYCLE", depth*2, "", next)
				return nt
			}
			if onPath[nt.id] {
				logf("%*s next=%d: on path", depth*2, "", next)
				continue
			}
			onPath[nt.id] = true
			if v := dfs(nt, append(path, nt), onPath, depth+1); v != nil {
				return v
			}
			delete(onPath, nt.id)
		}
		return nil
	}
	dfs(st, []*stxn{st}, map[TxnID]bool{t: true}, 0)
}

// FindAnyCycle sweeps the whole waits-for graph and returns the ids of
// one cycle containing no aborting transaction, or nil. Incremental
// detection should prevent such cycles from persisting; this is a
// validation/diagnostic tool.
func (se *ServerEngine) FindAnyCycle() []TxnID {
	var ids []TxnID
	for t := range se.txns {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		t := se.txns[id]
		if t.aborting {
			continue
		}
		if cyc := se.sweepFrom(t, []TxnID{t.id}, map[TxnID]bool{t.id: true}); cyc != nil {
			return cyc
		}
	}
	return nil
}

func (se *ServerEngine) sweepFrom(cur *stxn, path []TxnID, onPath map[TxnID]bool) []TxnID {
	for _, next := range se.waitsFor(cur) {
		nt := se.txns[next]
		if nt == nil || nt.aborting {
			continue
		}
		if next == path[0] {
			return append([]TxnID(nil), path...)
		}
		if onPath[next] {
			continue
		}
		onPath[next] = true
		if cyc := se.sweepFrom(nt, append(path, next), onPath); cyc != nil {
			return cyc
		}
		delete(onPath, next)
	}
	return nil
}

func keysOf(m map[ClientID]bool) []ClientID {
	var out []ClientID
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
