package core

import "testing"

func TestLayoutSequentialMapping(t *testing.T) {
	l := NewLayout(10, 4)
	if l.NumObjects() != 40 {
		t.Fatalf("NumObjects = %d", l.NumObjects())
	}
	if got := l.Obj(0); got != (ObjID{Page: 0, Slot: 0}) {
		t.Fatalf("Obj(0) = %v", got)
	}
	if got := l.Obj(7); got != (ObjID{Page: 1, Slot: 3}) {
		t.Fatalf("Obj(7) = %v", got)
	}
	if got := l.Obj(39); got != (ObjID{Page: 9, Slot: 3}) {
		t.Fatalf("Obj(39) = %v", got)
	}
}

func TestLayoutBounds(t *testing.T) {
	l := NewLayout(10, 4)
	for _, idx := range []int{-1, 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Obj(%d) should panic", idx)
				}
			}()
			l.Obj(idx)
		}()
	}
}

func TestInterleavePairsIsPermutation(t *testing.T) {
	const (
		numClients = 4
		hotPages   = 5
		objsPP     = 20
		dbPages    = 40
	)
	l := NewLayout(dbPages, objsPP)
	InterleavePairs(l, numClients, func(c int) PageID {
		return PageID((c - 1) * hotPages)
	}, hotPages)

	seen := make(map[ObjID]int)
	for i := 0; i < l.NumObjects(); i++ {
		o := l.Obj(i)
		if prev, dup := seen[o]; dup {
			t.Fatalf("indices %d and %d map to the same object %v", prev, i, o)
		}
		seen[o] = i
	}
	if len(seen) != l.NumObjects() {
		t.Fatalf("remap is not a permutation: %d targets", len(seen))
	}
}

func TestInterleavePairsHalves(t *testing.T) {
	const (
		hotPages = 5
		objsPP   = 20
	)
	l := NewLayout(40, objsPP)
	InterleavePairs(l, 2, func(c int) PageID { return PageID((c - 1) * hotPages) }, hotPages)

	half := uint16(objsPP / 2)
	// Client 1's logical hot objects are indices of pages [0,5); client 2's
	// of pages [5,10). After interleaving, client 1's land in top halves of
	// the combined region, client 2's in bottom halves.
	for i := 0; i < hotPages*objsPP; i++ {
		o := l.Obj(i)
		if o.Slot >= half {
			t.Fatalf("client 1 object %d mapped to bottom half: %v", i, o)
		}
		if o.Page < 0 || o.Page >= 2*hotPages {
			t.Fatalf("client 1 object %d outside combined region: %v", i, o)
		}
	}
	for i := hotPages * objsPP; i < 2*hotPages*objsPP; i++ {
		o := l.Obj(i)
		if o.Slot < half {
			t.Fatalf("client 2 object %d mapped to top half: %v", i, o)
		}
	}
	// Pages outside the paired regions keep the identity mapping.
	outside := 2 * hotPages * objsPP
	if got := l.Obj(outside); got != (ObjID{Page: PageID(2 * hotPages), Slot: 0}) {
		t.Fatalf("outside object remapped: %v", got)
	}
}

func TestProtocolFacets(t *testing.T) {
	cases := []struct {
		p                                                                 Protocol
		transferObj, pageLocks, objLocks, adaptive, objCopies, adaptiveCB bool
	}{
		{PS, false, true, false, false, false, false},
		{OS, true, false, true, false, true, false},
		{PSOO, false, false, true, false, true, false},
		{PSOA, false, false, true, false, false, true},
		{PSAA, false, true, true, true, false, true},
		{PSWT, false, false, true, false, true, false},
	}
	for _, c := range cases {
		if c.p.TransferObjects() != c.transferObj || c.p.PageLocks() != c.pageLocks ||
			c.p.ObjectLocks() != c.objLocks || c.p.AdaptiveLocks() != c.adaptive ||
			c.p.ObjectCopies() != c.objCopies || c.p.AdaptiveCallbacks() != c.adaptiveCB {
			t.Fatalf("facets wrong for %v", c.p)
		}
	}
}

func TestParseProtocol(t *testing.T) {
	for _, p := range Protocols {
		got, ok := ParseProtocol(p.String())
		if !ok || got != p {
			t.Fatalf("ParseProtocol(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParseProtocol("nonsense"); ok {
		t.Fatal("nonsense parsed")
	}
}

func TestMsgSizeBytes(t *testing.T) {
	const (
		ctrl = 256
		page = 4096
		obj  = 204
	)
	cases := []struct {
		m    Msg
		want int
	}{
		{Msg{Kind: MReadReq}, ctrl},
		{Msg{Kind: MGrant}, ctrl},
		{Msg{Kind: MPageData}, ctrl + page},
		{Msg{Kind: MObjData}, ctrl + obj},
		{Msg{Kind: MCommitReq, Pages: []PageID{1, 2, 3}}, ctrl + 3*page},
		{Msg{Kind: MCommitReq, Objs: []ObjID{{}, {}}}, ctrl + 2*obj},
		{Msg{Kind: MCallback}, ctrl},
	}
	for _, c := range cases {
		if got := c.m.SizeBytes(ctrl, page, obj); got != c.want {
			t.Fatalf("%v size = %d, want %d", c.m.Kind, got, c.want)
		}
	}
}
