package core

import (
	"fmt"
	"testing"
)

// harness wires ClientStates to a ServerEngine through synchronous message
// queues, mimicking what the simulation and live drivers do but without
// time. It is both a test rig and executable documentation of the driver
// contract.
type harness struct {
	t       *testing.T
	se      *ServerEngine
	clients map[ClientID]*ClientState

	queue   []Msg // in-flight messages, FIFO (both directions)
	replies map[ClientID]*Msg
	op      map[ClientID]*pendingOp
	merged  map[ClientID]int // objects merged client-side (cost tracking)

	nextTxn TxnID
	nextReq int64
	msgs    map[MsgKind]int // message counts by kind
}

type pendingOp struct {
	obj     ObjID
	isWrite bool
}

type opStatus int

const (
	opDone opStatus = iota
	opBlocked
	opAborted
)

func newHarness(t *testing.T, proto Protocol, numClients, numPages, objsPerPage, cacheCap int) *harness {
	layout := NewLayout(numPages, objsPerPage)
	h := &harness{
		t:       t,
		se:      NewServerEngine(proto, layout),
		clients: make(map[ClientID]*ClientState),
		replies: make(map[ClientID]*Msg),
		op:      make(map[ClientID]*pendingOp),
		merged:  make(map[ClientID]int),
		msgs:    make(map[MsgKind]int),
	}
	for c := 1; c <= numClients; c++ {
		h.clients[ClientID(c)] = NewClientState(ClientID(c), proto, cacheCap)
	}
	return h
}

func (h *harness) cs(c ClientID) *ClientState { return h.clients[c] }

// sendToServer attaches drop notices and queues a client->server message.
func (h *harness) sendToServer(cs *ClientState, m *Msg) {
	m.DroppedPages, m.DroppedObjs = cs.Cache.TakeDropped()
	h.msgs[m.Kind]++
	h.queue = append(h.queue, *m)
}

// pump drains the message queue, routing messages to the server engine or
// to client callback handling. Replies park in h.replies.
func (h *harness) pump() {
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		if m.To == NoClient { // to server
			outs := h.se.Handle(&m)
			for _, om := range outs {
				h.msgs[om.Kind]++
				h.queue = append(h.queue, om)
			}
			continue
		}
		// To a client.
		cs := h.clients[m.To]
		switch m.Kind {
		case MCallback:
			reply, _ := cs.HandleCallback(&m)
			h.sendToServer(cs, reply)
		case MDeescReq:
			h.sendToServer(cs, cs.HandleDeescReq(&m))
		default:
			if !m.Kind.IsReply() {
				h.t.Fatalf("client %d received unexpected %v", m.To, m.Kind)
			}
			if h.replies[m.To] != nil {
				h.t.Fatalf("client %d got a second reply", m.To)
			}
			mm := m
			h.replies[m.To] = &mm
		}
	}
}

func (h *harness) begin(c ClientID) TxnID {
	h.nextTxn++
	h.cs(c).Begin(h.nextTxn)
	return h.nextTxn
}

// applyReply consumes a parked reply for client c's pending operation and
// finishes the op. Returns the resulting status.
func (h *harness) applyReply(c ClientID) opStatus {
	cs := h.cs(c)
	m := h.replies[c]
	h.replies[c] = nil
	op := h.op[c]
	h.op[c] = nil
	if m.Kind == MAbortYou {
		for _, am := range cs.Abort() {
			am := am
			h.sendToServer(cs, &am)
		}
		h.pump()
		return opAborted
	}
	h.merged[c] += cs.OnReply(m)
	if op.isWrite {
		if cs.NeedsRefetch(op.obj) {
			// Stale object under a data-less grant: fetch the page first.
			rm := cs.NeedForRead(op.obj)
			h.nextReq++
			rm.Req = h.nextReq
			h.op[c] = &pendingOp{obj: op.obj, isWrite: true}
			h.sendToServer(cs, rm)
			h.pump()
			if h.replies[c] == nil {
				return opBlocked
			}
			return h.applyReply(c)
		}
		cs.RecordWrite(op.obj)
	} else {
		cs.RecordRead(op.obj)
	}
	return opDone
}

// access performs a read or write reference for client c's transaction.
func (h *harness) access(c ClientID, o ObjID, isWrite bool) opStatus {
	cs := h.cs(c)
	if h.op[c] != nil {
		h.t.Fatalf("client %d already has an op in flight", c)
	}
	var m *Msg
	if isWrite {
		cs.StartWrite(o)
		m = cs.NeedForWrite(o)
		if m == nil {
			// May still need the data locally even with permission held.
			if rm := cs.NeedForRead(o); rm != nil {
				h.t.Fatalf("client %d holds write permission but lacks data for %v", c, o)
			}
			cs.RecordWrite(o)
			return opDone
		}
	} else {
		m = cs.NeedForRead(o)
		if m == nil {
			cs.RecordRead(o)
			return opDone
		}
	}
	h.nextReq++
	m.Req = h.nextReq
	h.op[c] = &pendingOp{obj: o, isWrite: isWrite}
	h.sendToServer(cs, m)
	h.pump()
	if h.replies[c] == nil {
		return opBlocked
	}
	return h.applyReply(c)
}

func (h *harness) read(c ClientID, o ObjID) opStatus  { return h.access(c, o, false) }
func (h *harness) write(c ClientID, o ObjID) opStatus { return h.access(c, o, true) }

// resume completes a previously blocked operation whose reply has since
// arrived.
func (h *harness) resume(c ClientID) opStatus {
	if h.replies[c] == nil {
		h.t.Fatalf("client %d has no parked reply", c)
	}
	return h.applyReply(c)
}

// hasReply reports whether a blocked op's reply has arrived.
func (h *harness) hasReply(c ClientID) bool { return h.replies[c] != nil }

// commit commits client c's transaction (read-only commits are local).
func (h *harness) commit(c ClientID) {
	cs := h.cs(c)
	if h.op[c] != nil {
		h.t.Fatalf("client %d committing with op in flight", c)
	}
	needServer := len(cs.Cache.DirtyPages()) > 0 || len(cs.Cache.DirtyObjs()) > 0
	if needServer {
		m := cs.BuildCommit()
		h.nextReq++
		m.Req = h.nextReq
		h.sendToServer(cs, m)
		h.pump()
		if h.replies[c] == nil || h.replies[c].Kind != MCommitAck {
			h.t.Fatalf("client %d: no commit ack", c)
		}
		h.replies[c] = nil
	}
	for _, am := range cs.OnCommitAck() {
		am := am
		h.sendToServer(cs, &am)
	}
	h.pump()
}

func (h *harness) mustDone(c ClientID, s opStatus) {
	h.t.Helper()
	if s != opDone {
		h.t.Fatalf("client %d: status %d, want done", c, s)
	}
}

func o(p PageID, s uint16) ObjID { return ObjID{Page: p, Slot: s} }

// ---- PS (basic page server) ----

func TestPSCachedReadsAreLocal(t *testing.T) {
	h := newHarness(t, PS, 2, 10, 20, 8)
	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	before := h.msgs[MReadReq]
	h.mustDone(1, h.read(1, o(0, 5))) // same page: no message
	h.mustDone(1, h.read(1, o(0, 0)))
	if h.msgs[MReadReq] != before {
		t.Fatal("cached read sent a message")
	}
	h.commit(1) // read-only: local
	if h.msgs[MCommitReq] != 0 {
		t.Fatal("read-only txn sent a commit message")
	}
	// Next txn still reads from cache (intertransaction caching).
	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 3)))
	if h.msgs[MReadReq] != before {
		t.Fatal("intertransaction caching failed")
	}
	h.commit(1)
}

func TestPSWriteCallsBackIdleCopies(t *testing.T) {
	h := newHarness(t, PS, 2, 10, 20, 8)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 7)))
	h.commit(2) // page 0 cached at client 2, idle

	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(1, h.write(1, o(0, 0)))
	if h.msgs[MCallback] != 1 {
		t.Fatalf("callbacks = %d, want 1", h.msgs[MCallback])
	}
	if h.cs(2).Cache.HasPage(0) {
		t.Fatal("client 2 retained called-back page")
	}
	if !h.cs(1).HoldsPageX(0) {
		t.Fatal("client 1 lacks page X")
	}
	// Further writes on the page are local under PS.
	before := h.msgs[MWriteReq]
	h.mustDone(1, h.write(1, o(0, 9)))
	if h.msgs[MWriteReq] != before {
		t.Fatal("second write on X-locked page sent a message")
	}
	h.commit(1)
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

func TestPSBusyCallbackWaitsForReader(t *testing.T) {
	h := newHarness(t, PS, 2, 10, 20, 8)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 7))) // active reader of page 0

	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	st := h.write(1, o(0, 0))
	if st != opBlocked {
		t.Fatalf("write should block on busy reader, got %d", st)
	}
	if h.se.Stats.BusyReplies.Load() != 1 {
		t.Fatalf("busy replies = %d", h.se.Stats.BusyReplies.Load())
	}
	h.commit(2) // reader commits -> deferred ack -> grant
	if !h.hasReply(1) {
		t.Fatal("grant did not arrive after reader commit")
	}
	h.mustDone(1, h.resume(1))
	h.commit(1)
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

func TestPSFalseSharingBlocksDistinctObjects(t *testing.T) {
	h := newHarness(t, PS, 2, 10, 20, 8)
	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(1, h.write(1, o(0, 0)))
	h.begin(2)
	// A *different* object on the same page: PS still blocks (false
	// sharing) because the whole page is X-locked.
	if st := h.read(2, o(0, 19)); st != opBlocked {
		t.Fatalf("status = %d, want blocked", st)
	}
	h.commit(1)
	if !h.hasReply(2) {
		t.Fatal("read not unblocked by commit")
	}
	h.mustDone(2, h.resume(2))
	h.commit(2)
}

func TestPSDeadlockAbortsYoungest(t *testing.T) {
	h := newHarness(t, PS, 2, 10, 20, 8)
	t1 := h.begin(1)
	t2 := h.begin(2)
	if t2 <= t1 {
		t.Fatal("txn ids not monotonic")
	}
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(2, h.read(2, o(1, 0)))
	// c1 wants to write page 1 (c2 reading it), c2 wants page 0.
	if st := h.write(1, o(1, 5)); st != opBlocked {
		t.Fatalf("c1 write: %d", st)
	}
	st := h.write(2, o(0, 5)) // completes the cycle
	if st != opAborted {
		t.Fatalf("c2 (youngest) should abort, got %d", st)
	}
	if h.se.Stats.Deadlocks.Load() != 1 {
		t.Fatalf("deadlocks = %d", h.se.Stats.Deadlocks.Load())
	}
	// c1's write proceeds once c2's abort releases its busy hold.
	if !h.hasReply(1) {
		t.Fatal("victim abort did not unblock c1")
	}
	h.mustDone(1, h.resume(1))
	h.commit(1)
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

// ---- OS (basic object server) ----

func TestOSObjectAtATimeTransfer(t *testing.T) {
	h := newHarness(t, OS, 2, 10, 20, 8*20)
	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(1, h.read(1, o(0, 1))) // same page, separate fetch
	if h.msgs[MReadReq] != 2 || h.msgs[MObjData] != 2 {
		t.Fatalf("reads=%d objdata=%d, want 2/2", h.msgs[MReadReq], h.msgs[MObjData])
	}
	h.commit(1)
}

func TestOSObjectCallbacksDoNotAffectNeighbors(t *testing.T) {
	h := newHarness(t, OS, 2, 10, 20, 8*20)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 0)))
	h.mustDone(2, h.read(2, o(0, 1)))
	h.commit(2)

	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 0))) // calls back only object 0.0
	if h.msgs[MCallback] != 1 {
		t.Fatalf("callbacks = %d", h.msgs[MCallback])
	}
	if h.cs(2).Cache.HasObj(o(0, 0)) {
		t.Fatal("called-back object still cached")
	}
	if !h.cs(2).Cache.HasObj(o(0, 1)) {
		t.Fatal("neighbor object was purged")
	}
	h.commit(1)
}

func TestOSConcurrentWritersOnSamePage(t *testing.T) {
	h := newHarness(t, OS, 2, 10, 20, 8*20)
	h.begin(1)
	h.begin(2)
	h.mustDone(1, h.write(1, o(0, 0)))
	h.mustDone(2, h.write(2, o(0, 1))) // no false sharing in OS
	h.commit(1)
	h.commit(2)
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

// ---- PS-OO ----

func TestPSOOPageRetainedThroughObjectCallback(t *testing.T) {
	h := newHarness(t, PSOO, 2, 10, 20, 8)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 1)))
	h.commit(2)

	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 0))) // object callback for 0.0 to c2
	if h.msgs[MCallback] != 1 {
		t.Fatalf("callbacks = %d", h.msgs[MCallback])
	}
	if !h.cs(2).Cache.HasPage(0) {
		t.Fatal("page purged by object callback")
	}
	if h.cs(2).Cache.Readable(o(0, 0)) {
		t.Fatal("called-back object still readable")
	}
	// c2 reads other objects on the page without messages.
	h.begin(2)
	before := h.msgs[MReadReq]
	h.mustDone(2, h.read(2, o(0, 5)))
	if h.msgs[MReadReq] != before {
		t.Fatal("read of retained object sent a message")
	}
	// But the called-back object must block until c1 commits.
	if st := h.read(2, o(0, 0)); st != opBlocked {
		t.Fatalf("read of locked object: %v", st)
	}
	h.commit(1)
	h.mustDone(2, h.resume(2))
	h.commit(2)
}

func TestPSOOConcurrentPageUpdatesMergeAtServer(t *testing.T) {
	h := newHarness(t, PSOO, 2, 10, 20, 8)
	h.begin(1)
	h.begin(2)
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(2, h.read(2, o(0, 1)))
	h.mustDone(1, h.write(1, o(0, 0)))
	h.mustDone(2, h.write(2, o(0, 1)))
	h.commit(1)
	if n := h.se.TakeMergeObjs(); n != 1 {
		t.Fatalf("server merged %d objects for c1 commit, want 1", n)
	}
	h.commit(2)
	if n := h.se.TakeMergeObjs(); n != 1 {
		t.Fatalf("server merged %d objects for c2 commit, want 1", n)
	}
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

func TestPSOOClientMergePreservesOwnUpdates(t *testing.T) {
	h := newHarness(t, PSOO, 2, 10, 20, 8)
	h.begin(1)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 1)))
	h.mustDone(1, h.write(1, o(0, 0)))
	h.commit(1)
	// c2 updates its object, then re-fetches the page to read 0.0 (which
	// was called back): the incoming page must merge with c2's dirty 0.1.
	h.mustDone(2, h.write(2, o(0, 1)))
	h.mustDone(2, h.read(2, o(0, 0)))
	if h.merged[2] != 1 {
		t.Fatalf("client 2 merged %d objects, want 1", h.merged[2])
	}
	if h.cs(2).Cache.DirtyObjCount(0) != 1 {
		t.Fatal("client 2 lost its dirty object in the merge")
	}
	h.commit(2)
}

// ---- PS-OA ----

func TestPSOAAdaptiveCallbackPurgesIdlePage(t *testing.T) {
	h := newHarness(t, PSOA, 2, 10, 20, 8)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 1)))
	h.commit(2) // idle copy of page 0 at c2

	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 0)))
	if h.msgs[MCallback] != 1 {
		t.Fatalf("callbacks = %d", h.msgs[MCallback])
	}
	if h.cs(2).Cache.HasPage(0) {
		t.Fatal("idle page should be purged entirely (de-escalating callback)")
	}
	// Writing another object on the same page needs a fresh lock message
	// (PS-OA locks objects) but no callback (copy gone).
	cbBefore := h.msgs[MCallback]
	h.mustDone(1, h.write(1, o(0, 5)))
	if h.msgs[MCallback] != cbBefore {
		t.Fatal("second write caused a callback despite purged copy")
	}
	if h.se.Stats.ObjGrants.Load() != 2 || h.se.Stats.PageGrants.Load() != 0 {
		t.Fatalf("grants: obj=%d page=%d", h.se.Stats.ObjGrants.Load(), h.se.Stats.PageGrants.Load())
	}
	h.commit(1)
}

func TestPSOAAdaptiveCallbackKeepsBusyPage(t *testing.T) {
	h := newHarness(t, PSOA, 2, 10, 20, 8)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 1))) // page 0 in use at c2

	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 0))) // c2 keeps page, marks 0.0
	if !h.cs(2).Cache.HasPage(0) {
		t.Fatal("in-use page was purged")
	}
	if h.cs(2).Cache.Readable(o(0, 0)) {
		t.Fatal("target object still readable at c2")
	}
	if !h.cs(2).Cache.Readable(o(0, 1)) {
		t.Fatal("other objects should remain readable")
	}
	h.commit(1)
	h.commit(2)
}

// ---- PS-AA ----

func TestPSAAPageGrantWhenNoContention(t *testing.T) {
	h := newHarness(t, PSAA, 2, 10, 20, 8)
	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(1, h.write(1, o(0, 0)))
	if h.se.Stats.PageGrants.Load() != 1 {
		t.Fatalf("page grants = %d, want 1", h.se.Stats.PageGrants.Load())
	}
	// Subsequent writes anywhere on the page are local.
	before := h.msgs[MWriteReq]
	h.mustDone(1, h.write(1, o(0, 7)))
	h.mustDone(1, h.write(1, o(0, 13)))
	if h.msgs[MWriteReq] != before {
		t.Fatal("writes under page X sent messages")
	}
	h.commit(1)
}

func TestPSAAObjectGrantWhenPageKept(t *testing.T) {
	h := newHarness(t, PSAA, 2, 10, 20, 8)
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 1))) // c2 active on page 0

	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 0)))
	if h.se.Stats.ObjGrants.Load() != 1 || h.se.Stats.PageGrants.Load() != 0 {
		t.Fatalf("grants: obj=%d page=%d", h.se.Stats.ObjGrants.Load(), h.se.Stats.PageGrants.Load())
	}
	// A second write on the page needs another object lock (message).
	h.mustDone(1, h.write(1, o(0, 5)))
	if h.se.Stats.ObjGrants.Load() != 2 {
		t.Fatalf("obj grants = %d", h.se.Stats.ObjGrants.Load())
	}
	h.commit(1)
	h.commit(2)
}

func TestPSAADeescalation(t *testing.T) {
	h := newHarness(t, PSAA, 2, 10, 20, 8)
	h.begin(1)
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(1, h.write(1, o(0, 0))) // page X (no other copies)
	if !h.cs(1).HoldsPageX(0) {
		t.Fatal("expected page X at client 1")
	}

	h.begin(2)
	st := h.read(2, o(0, 5)) // triggers de-escalation of c1's page lock
	if h.se.Stats.Deescalations.Load() != 1 {
		t.Fatalf("deescalations = %d", h.se.Stats.Deescalations.Load())
	}
	// After de-escalation the read proceeds (slot 0 unavailable).
	if st == opBlocked {
		if !h.hasReply(2) {
			t.Fatal("read still blocked after de-escalation")
		}
		st = h.resume(2)
	}
	h.mustDone(2, st)
	if h.cs(1).HoldsPageX(0) {
		t.Fatal("client 1 should have de-escalated")
	}
	if !h.cs(1).HoldsObjX(o(0, 0)) {
		t.Fatal("client 1 should hold object X after de-escalation")
	}
	if h.cs(2).Cache.Readable(o(0, 0)) {
		t.Fatal("written object should be unavailable at client 2")
	}
	if !h.cs(2).Cache.Readable(o(0, 5)) {
		t.Fatal("requested object should be readable at client 2")
	}
	// c1 writing a *new* object on the page now needs a server message.
	wrBefore := h.msgs[MWriteReq]
	h.mustDone(1, h.write(1, o(0, 9)))
	if h.msgs[MWriteReq] != wrBefore+1 {
		t.Fatal("post-de-escalation write should need a lock message")
	}
	h.commit(1)
	h.commit(2)
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

func TestPSAAReescalationAfterContentionPasses(t *testing.T) {
	h := newHarness(t, PSAA, 2, 10, 20, 8)
	// Round 1: contention forces object grant.
	h.begin(2)
	h.mustDone(2, h.read(2, o(0, 1)))
	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 0)))
	if h.se.Stats.ObjGrants.Load() != 1 {
		t.Fatalf("obj grants = %d", h.se.Stats.ObjGrants.Load())
	}
	h.commit(1)
	h.commit(2)
	// c2's copy was kept (marked); purge it via a fresh write round in a
	// new c1 txn: c2 idle now, so the adaptive callback purges the page
	// and c1 re-escalates to a page grant.
	h.begin(1)
	h.mustDone(1, h.write(1, o(0, 3)))
	if h.se.Stats.PageGrants.Load() != 1 {
		t.Fatalf("page grants = %d, want 1 (re-escalation)", h.se.Stats.PageGrants.Load())
	}
	h.commit(1)
}

func TestPSAAUpgradeDeadlock(t *testing.T) {
	h := newHarness(t, PSAA, 2, 10, 20, 8)
	h.begin(1)
	h.begin(2)
	h.mustDone(1, h.read(1, o(0, 0)))
	h.mustDone(2, h.read(2, o(0, 0)))
	// Both upgrade the same object: classic conversion deadlock.
	st1 := h.write(1, o(0, 0))
	if st1 != opBlocked {
		t.Fatalf("c1 upgrade should block on c2's read, got %d", st1)
	}
	st2 := h.write(2, o(0, 0))
	if st2 != opAborted {
		t.Fatalf("c2 (youngest) should abort, got %d", st2)
	}
	if !h.hasReply(1) {
		t.Fatal("c1 not unblocked by victim abort")
	}
	h.mustDone(1, h.resume(1))
	h.commit(1)
	if !h.se.Quiesced() {
		t.Fatal("server not quiesced")
	}
}

// ---- Cross-protocol sweeps ----

// TestAllProtocolsSerialUse runs a few serial transactions through every
// protocol, checking quiescence and cache retention invariants.
func TestAllProtocolsSerialUse(t *testing.T) {
	for _, proto := range AllProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			cap := 8
			if proto == OS {
				cap = 8 * 20
			}
			h := newHarness(t, proto, 3, 10, 20, cap)
			for round := 0; round < 3; round++ {
				for c := ClientID(1); c <= 3; c++ {
					h.begin(c)
					for i := 0; i < 5; i++ {
						h.mustDone(c, h.read(c, o(PageID(i), uint16(i+int(c)))))
					}
					h.mustDone(c, h.write(c, o(PageID(int(c)), 0)))
					h.commit(c)
				}
			}
			if !h.se.Quiesced() {
				t.Fatal("server not quiesced")
			}
		})
	}
}

// TestAllProtocolsWriteVisibility checks that a committed update makes the
// object fetchable again by other clients under every protocol.
func TestAllProtocolsWriteVisibility(t *testing.T) {
	for _, proto := range AllProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			cap := 8
			if proto == OS {
				cap = 8 * 20
			}
			h := newHarness(t, proto, 2, 10, 20, cap)
			h.begin(1)
			h.mustDone(1, h.write(1, o(0, 0)))
			h.commit(1)
			h.begin(2)
			h.mustDone(2, h.read(2, o(0, 0)))
			h.commit(2)
			if !h.se.Quiesced() {
				t.Fatal("server not quiesced")
			}
		})
	}
}

func ExampleProtocol_String() {
	fmt.Println(PS, OS, PSOO, PSOA, PSAA)
	// Output: PS OS PS-OO PS-OA PS-AA
}
