package core

// Protocol selects one of the five granularity alternatives studied in the
// paper (Section 3).
type Protocol int

const (
	// PS is the basic page server: page transfer, page locking, page
	// callbacks, page-granularity copy tracking (Section 3.2.1).
	PS Protocol = iota
	// OS is the basic object server: everything at object granularity
	// (Section 3.2.2).
	OS
	// PSOO is the page server with static object locking and object
	// callbacks; copies tracked per object (Section 3.3.1).
	PSOO
	// PSOA is the page server with object locking and adaptive
	// (de-escalating) callbacks; copies tracked per page (Section 3.3.2).
	PSOA
	// PSAA is the page server with adaptive locking and adaptive
	// callbacks; copies tracked per page (Section 3.3.3).
	PSAA
	// PSWT is the write-token alternative the paper defers to future work
	// (Section 6.1, after [Moha91]): object-level locking and callbacks as
	// in PS-OO, but concurrent updates to one page are disallowed — a
	// single per-page write token serializes updaters, so copies never
	// diverge and no merging is needed anywhere. Readers are unaffected.
	PSWT
)

var protocolNames = [...]string{"PS", "OS", "PS-OO", "PS-OA", "PS-AA", "PS-WT"}

func (p Protocol) String() string {
	if p < 0 || int(p) >= len(protocolNames) {
		return "Protocol(?)"
	}
	return protocolNames[p]
}

// Protocols lists the paper's five alternatives in presentation order (the
// evaluation's comparison set).
var Protocols = []Protocol{PS, OS, PSOO, PSOA, PSAA}

// AllProtocols additionally includes the Section 6.1 write-token variant.
var AllProtocols = []Protocol{PS, OS, PSOO, PSOA, PSAA, PSWT}

// ParseProtocol converts a name like "PS-AA" (case-sensitive, as printed)
// to a Protocol; ok is false for unknown names.
func ParseProtocol(s string) (Protocol, bool) {
	for i, n := range protocolNames {
		if n == s {
			return Protocol(i), true
		}
	}
	return 0, false
}

// TransferObjects reports whether client-server data transfer is at object
// granularity (true only for OS).
func (p Protocol) TransferObjects() bool { return p == OS }

// LockGranularity facets.

// PageLocks reports whether page-level write locks exist in this protocol.
func (p Protocol) PageLocks() bool { return p == PS || p == PSAA }

// ObjectLocks reports whether object-level write locks exist.
func (p Protocol) ObjectLocks() bool { return p != PS }

// AdaptiveLocks reports whether lock granularity is chosen dynamically.
func (p Protocol) AdaptiveLocks() bool { return p == PSAA }

// WriteToken reports whether per-page write tokens serialize updaters.
func (p Protocol) WriteToken() bool { return p == PSWT }

// ObjectCopies reports whether the server tracks cached copies at object
// granularity (OS, PS-OO, PS-WT) rather than page granularity.
func (p Protocol) ObjectCopies() bool { return p == OS || p == PSOO || p == PSWT }

// AdaptiveCallbacks reports whether callbacks de-escalate adaptively
// (purge the page if unused, else call back just the object).
func (p Protocol) AdaptiveCallbacks() bool { return p == PSOA || p == PSAA }

// MsgKind enumerates the client/server message vocabulary.
type MsgKind int

const (
	// Client -> server requests.
	MReadReq     MsgKind = iota // fetch the page holding Obj (or the object, for OS)
	MWriteReq                   // obtain write permission on Obj (page-level for PS)
	MCommitReq                  // commit: carries updated pages/objects
	MAbortReq                   // client-initiated/deadlock abort completion: release locks, purge notices
	MCallbackAck                // reply to a callback: purged/kept, or busy
	MDeescReply                 // reply to a de-escalation request (PS-AA)

	// Server -> client responses and requests.
	MPageData  // page contents (+ optional write grant): read reply or write grant with data
	MObjData   // object contents (OS)
	MGrant     // write grant without data (control-sized)
	MCommitAck // commit done
	MAbortYou  // your transaction was chosen as a deadlock victim
	MCallback  // callback request (page, object, or adaptive)
	MDeescReq  // de-escalate your page-level write lock (PS-AA)
	MHello     // live-system handshake: assigned client id + geometry
	// MRelocated: the requested object has been migrated by the online
	// reclusterer. Obj echoes the requested (old) address; Objs[0], when
	// present, is the new address the client should retry against. An empty
	// Objs means the object is mid-migration (fenced) — retry the original
	// address shortly.
	MRelocated
)

var msgKindNames = [...]string{
	"ReadReq", "WriteReq", "CommitReq", "AbortReq", "CallbackAck", "DeescReply",
	"PageData", "ObjData", "Grant", "CommitAck", "AbortYou", "Callback", "DeescReq",
	"Hello", "Relocated",
}

func (k MsgKind) String() string {
	if k < 0 || int(k) >= len(msgKindNames) {
		return "MsgKind(?)"
	}
	return msgKindNames[k]
}

// GrantLevel describes the granularity of a write grant.
type GrantLevel int

const (
	GrantNone GrantLevel = iota
	GrantObject
	GrantPage
)

func (g GrantLevel) String() string {
	switch g {
	case GrantObject:
		return "object"
	case GrantPage:
		return "page"
	default:
		return "none"
	}
}

// CallbackKind describes what a callback asks the client to do.
type CallbackKind int

const (
	// CBPage: purge the whole page (basic PS).
	CBPage CallbackKind = iota
	// CBObject: mark/purge just the object (OS, PS-OO).
	CBObject
	// CBAdaptive: purge the whole page if it is not in use; otherwise keep
	// the page and mark just Obj unavailable (PS-OA, PS-AA).
	CBAdaptive
)

func (k CallbackKind) String() string {
	switch k {
	case CBPage:
		return "page"
	case CBObject:
		return "object"
	default:
		return "adaptive"
	}
}

// Msg is the single wire format for all client/server interactions. A fat
// struct keeps both drivers (simulated and live) simple; unused fields are
// zero.
type Msg struct {
	Kind MsgKind
	From ClientID // sender client (0 when from server)
	To   ClientID // destination client (0 when to server)
	Txn  TxnID    // requesting/affected transaction
	Req  int64    // request id for reply matching / round id for callbacks

	Page PageID
	Obj  ObjID

	// WantData, on MWriteReq: the client lacks the data item and wants it
	// delivered with the grant.
	WantData bool

	// Unavail lists slots marked unavailable in a delivered page.
	Unavail []uint16

	// Grant carries the granted lock level on MPageData/MObjData/MGrant.
	Grant GrantLevel

	// Callback fields.
	CB      CallbackKind
	Purged  bool // on MCallbackAck: whole page (or the object, for object CBs) was purged
	Busy    bool // on MCallbackAck: cannot comply yet; BusyTxn is using the item
	BusyTxn TxnID
	// Epoch identifies the copy-table registration a callback revokes;
	// acks echo it so a late ack cannot deregister a newer registration.
	Epoch int64

	// Commit payloads: updated pages shipped back (page-server modes) or
	// updated objects (OS). The server derives lock-release and merge
	// bookkeeping from its own lock table, so no extra metadata travels.
	Pages       []PageID
	Objs        []ObjID
	PurgedPages []PageID // MAbortReq: pages purged by the aborting client
	PurgedObjs  []ObjID  // MAbortReq (OS): objects purged

	// DeescObjs: on MDeescReply, the objects of Page the holder updated.
	DeescObjs []ObjID

	// Dropped* piggyback cache eviction notices on any client->server
	// message so the server's copy table stays accurate.
	DroppedPages []PageID
	DroppedObjs  []ObjID

	// Data carries real bytes in the live system (nil in simulation): the
	// full page for MPageData, the object for MObjData.
	Data []byte
	// Updates carries per-object afterimages on a live MCommitReq.
	Updates map[ObjID][]byte

	// Live-system handshake payload (MHello).
	HelloID       ClientID
	HelloPages    int32
	HelloObjsPP   int32
	HelloObjSize  int32
	HelloProto    Protocol
	HelloVariable bool

	// Relocs, on an MCommitReq from the reclusterer's in-process system
	// client, lists the old->new placements this commit installs. It never
	// crosses the wire codec: the live server accepts it only from its
	// internal session (in-process transport, pointer-passing) and strips
	// it from everything else.
	Relocs []RelocEntry
}

// RelocEntry records one object migration: reads and writes addressed to
// From are served at To once the installing commit is durable.
type RelocEntry struct {
	From ObjID
	To   ObjID
}

// SizeBytes computes the wire size of the message per the paper's cost
// model: control messages are ControlMsgSize bytes; data messages add the
// page size (or object size) per carried item.
func (m *Msg) SizeBytes(controlSize, pageSize, objSize int) int {
	n := controlSize
	switch m.Kind {
	case MPageData:
		n += pageSize
	case MObjData:
		n += objSize
	case MCommitReq:
		n += len(m.Pages)*pageSize + len(m.Objs)*objSize
	}
	// Piggybacked notices and slot lists are small enough to live inside
	// the control allowance.
	return n
}

// IsReply reports whether the message kind is a server reply that
// completes a client's outstanding request.
func (k MsgKind) IsReply() bool {
	switch k {
	case MPageData, MObjData, MGrant, MCommitAck, MAbortYou:
		return true
	}
	return false
}
