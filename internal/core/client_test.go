package core

import "testing"

func newCS(proto Protocol) *ClientState {
	cap := 16
	if proto == OS {
		cap = 16 * 20
	}
	return NewClientState(1, proto, cap)
}

func TestClientNeedForReadPerProtocol(t *testing.T) {
	obj := ObjID{Page: 2, Slot: 3}
	for _, proto := range Protocols {
		cs := newCS(proto)
		cs.Begin(1)
		if cs.NeedForRead(obj) == nil {
			t.Fatalf("%v: cold cache should need a read", proto)
		}
		if proto == OS {
			cs.Cache.InstallObj(obj)
		} else {
			cs.Cache.InstallPage(obj.Page, nil)
		}
		if cs.NeedForRead(obj) != nil {
			t.Fatalf("%v: cached object should be local", proto)
		}
		if proto != OS {
			cs.Cache.MarkUnavailable(obj)
			if cs.NeedForRead(obj) == nil {
				t.Fatalf("%v: unavailable object should need a read", proto)
			}
		}
	}
}

func TestClientWriteRequestShape(t *testing.T) {
	obj := ObjID{Page: 2, Slot: 3}
	for _, proto := range Protocols {
		cs := newCS(proto)
		cs.Begin(1)
		m := cs.NeedForWrite(obj)
		if m == nil || m.Kind != MWriteReq || !m.WantData {
			t.Fatalf("%v: cold write should request data: %+v", proto, m)
		}
		// With the data present, WantData should drop.
		if proto == OS {
			cs.Cache.InstallObj(obj)
		} else {
			cs.Cache.InstallPage(obj.Page, nil)
		}
		m = cs.NeedForWrite(obj)
		if m == nil || m.WantData {
			t.Fatalf("%v: warm write should not request data: %+v", proto, m)
		}
	}
}

func TestClientLocalWritePermission(t *testing.T) {
	obj := ObjID{Page: 2, Slot: 3}
	other := ObjID{Page: 2, Slot: 9}

	// PS: page grant covers every object on the page.
	cs := newCS(PS)
	cs.Begin(1)
	cs.Cache.InstallPage(2, nil)
	cs.OnReply(&Msg{Kind: MGrant, Grant: GrantPage, Page: 2, Obj: obj})
	if cs.NeedForWrite(obj) != nil || cs.NeedForWrite(other) != nil {
		t.Fatal("PS: page X should cover the whole page")
	}

	// PS-OO: object grant covers only that object.
	cs = newCS(PSOO)
	cs.Begin(1)
	cs.Cache.InstallPage(2, nil)
	cs.OnReply(&Msg{Kind: MGrant, Grant: GrantObject, Page: 2, Obj: obj})
	if cs.NeedForWrite(obj) != nil {
		t.Fatal("PS-OO: object X not recorded")
	}
	if cs.NeedForWrite(other) == nil {
		t.Fatal("PS-OO: object X must not cover neighbors")
	}

	// PS-AA: either level works.
	cs = newCS(PSAA)
	cs.Begin(1)
	cs.Cache.InstallPage(2, nil)
	cs.OnReply(&Msg{Kind: MGrant, Grant: GrantObject, Page: 2, Obj: obj})
	if cs.NeedForWrite(obj) != nil {
		t.Fatal("PS-AA: object X not recorded")
	}
	cs.OnReply(&Msg{Kind: MGrant, Grant: GrantPage, Page: 2, Obj: other})
	if cs.NeedForWrite(other) != nil || !cs.HoldsPageX(2) {
		t.Fatal("PS-AA: page grant not recorded")
	}
	if cs.HoldsObjX(obj) {
		t.Fatal("PS-AA: page grant should absorb own object locks")
	}
}

func TestClientDeescalationPreservesPendingWrite(t *testing.T) {
	obj := ObjID{Page: 2, Slot: 3}
	cs := newCS(PSAA)
	cs.Begin(1)
	cs.Cache.InstallPage(2, []uint16{3}) // 2.3 unavailable (stale)
	cs.OnReply(&Msg{Kind: MGrant, Grant: GrantPage, Page: 2, Obj: ObjID{Page: 2, Slot: 0}})
	cs.RecordWrite(ObjID{Page: 2, Slot: 0})
	// Intent to write the stale object; the driver would now refetch.
	cs.StartWrite(obj)
	if !cs.NeedsRefetch(obj) {
		t.Fatal("stale object should need a refetch")
	}
	reply := cs.HandleDeescReq(&Msg{Kind: MDeescReq, Page: 2})
	found := false
	for _, o := range reply.DeescObjs {
		if o == obj {
			found = true
		}
	}
	if !found {
		t.Fatalf("de-escalation dropped the pending write: %v", reply.DeescObjs)
	}
	if cs.HoldsPageX(2) {
		t.Fatal("page X should be released by de-escalation")
	}
	if !cs.HoldsObjX(obj) || !cs.HoldsObjX(ObjID{Page: 2, Slot: 0}) {
		t.Fatal("object locks missing after de-escalation")
	}
	// The write completes under the converted object lock.
	if cs.NeedForWrite(obj) != nil {
		t.Fatal("write should be local after conversion")
	}
}

func TestClientDeescWhenNotHeld(t *testing.T) {
	cs := newCS(PSAA)
	reply := cs.HandleDeescReq(&Msg{Kind: MDeescReq, Page: 7})
	if len(reply.DeescObjs) != 0 {
		t.Fatal("inactive client should reply empty")
	}
}

func TestClientCommitLifecycle(t *testing.T) {
	obj := ObjID{Page: 2, Slot: 3}
	cs := newCS(PSAA)
	cs.Begin(5)
	cs.Cache.InstallPage(2, nil)
	cs.OnReply(&Msg{Kind: MGrant, Grant: GrantPage, Page: 2, Obj: obj})
	cs.RecordWrite(obj)
	m := cs.BuildCommit()
	if len(m.Pages) != 1 || m.Pages[0] != 2 {
		t.Fatalf("commit pages = %v", m.Pages)
	}
	acks := cs.OnCommitAck()
	if len(acks) != 0 {
		t.Fatalf("unexpected deferred acks: %v", acks)
	}
	if cs.Active() {
		t.Fatal("transaction should be over")
	}
	if cs.Cache.DirtyObjCount(2) != 0 {
		t.Fatal("dirty state survived commit")
	}
	if !cs.Cache.HasPage(2) {
		t.Fatal("cache lost at commit")
	}
}

func TestClientAbortPurgesAndAcks(t *testing.T) {
	obj := ObjID{Page: 2, Slot: 3}
	readPage := PageID(4)
	cs := newCS(PSAA)
	cs.Begin(5)
	cs.Cache.InstallPage(2, nil)
	cs.Cache.InstallPage(readPage, nil)
	cs.RecordRead(ObjID{Page: readPage, Slot: 0})
	cs.OnReply(&Msg{Kind: MGrant, Grant: GrantObject, Page: 2, Obj: obj})
	cs.RecordWrite(obj)
	// A callback against the read page defers (in use).
	reply, deferred := cs.HandleCallback(&Msg{Kind: MCallback, CB: CBAdaptive,
		Page: readPage, Obj: ObjID{Page: readPage, Slot: 0}, Req: 99, Epoch: 7})
	if !deferred || !reply.Busy {
		t.Fatalf("callback should defer busy: %+v", reply)
	}
	msgs := cs.Abort()
	if msgs[0].Kind != MAbortReq {
		t.Fatalf("first abort msg = %v", msgs[0].Kind)
	}
	if len(msgs[0].PurgedPages) != 1 || msgs[0].PurgedPages[0] != 2 {
		t.Fatalf("purged pages = %v", msgs[0].PurgedPages)
	}
	if len(msgs) != 2 || msgs[1].Kind != MCallbackAck || !msgs[1].Purged || msgs[1].Epoch != 7 {
		t.Fatalf("deferred ack wrong: %+v", msgs[1:])
	}
	if cs.Cache.HasPage(2) {
		t.Fatal("dirty page survived abort")
	}
	if cs.Cache.HasPage(readPage) {
		t.Fatal("deferred page callback not honored at abort")
	}
}

func TestClientCallbackEchoesEpoch(t *testing.T) {
	cs := newCS(PS)
	cs.Cache.InstallPage(3, nil)
	reply, deferred := cs.HandleCallback(&Msg{Kind: MCallback, CB: CBPage, Page: 3, Req: 7, Epoch: 42})
	if deferred || !reply.Purged || reply.Epoch != 42 {
		t.Fatalf("ack = %+v (deferred=%v)", reply, deferred)
	}
}

func TestClientCallbackAgainstOwnLockDefers(t *testing.T) {
	// A callback can race a grant (cancelled round): it must defer, not
	// panic, and resolve truthfully at transaction end.
	obj := ObjID{Page: 2, Slot: 3}
	cs := newCS(PSAA)
	cs.Begin(5)
	cs.Cache.InstallPage(2, nil)
	cs.OnReply(&Msg{Kind: MGrant, Grant: GrantObject, Page: 2, Obj: obj})
	cs.RecordWrite(obj)
	reply, deferred := cs.HandleCallback(&Msg{Kind: MCallback, CB: CBAdaptive, Page: 2, Obj: obj, Req: 8})
	if !deferred || !reply.Busy || reply.BusyTxn != 5 {
		t.Fatalf("stale-round callback should defer busy: %+v", reply)
	}
	cs.Cache.CleanAll()
	acks := cs.OnCommitAck()
	if len(acks) != 1 || !acks[0].Purged {
		t.Fatalf("deferred resolution wrong: %+v", acks)
	}
	if cs.Cache.HasPage(2) {
		t.Fatal("page should be purged by the deferred adaptive callback")
	}
}

func TestClientWriteSetHelpers(t *testing.T) {
	cs := newCS(PSOO)
	cs.Begin(9)
	objs := []ObjID{{Page: 3, Slot: 1}, {Page: 1, Slot: 2}, {Page: 3, Slot: 0}}
	for _, o := range objs {
		cs.Cache.InstallPage(o.Page, nil)
		cs.OnReply(&Msg{Kind: MGrant, Grant: GrantObject, Page: o.Page, Obj: o})
		cs.RecordWrite(o)
	}
	if !cs.Wrote(objs[0]) || cs.Wrote(ObjID{Page: 9, Slot: 9}) {
		t.Fatal("Wrote wrong")
	}
	ws := cs.WriteSetObjs()
	if len(ws) != 3 || ws[0] != (ObjID{Page: 1, Slot: 2}) || ws[1] != (ObjID{Page: 3, Slot: 0}) {
		t.Fatalf("WriteSetObjs = %v", ws)
	}
	wo := cs.WroteOn(3)
	if len(wo) != 2 || wo[0].Slot != 0 || wo[1].Slot != 1 {
		t.Fatalf("WroteOn = %v", wo)
	}
}
