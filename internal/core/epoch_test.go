package core

import "testing"

// TestStaleAckCannotCancelFreshRegistration is the regression test for the
// registration-epoch fix (DESIGN.md §8.4): a client truthfully acks a
// callback for a purged copy, but before the ack reaches the server the
// client is granted a *fresh* copy of the same page. The stale ack must
// not deregister the new copy, or the next writer would skip a required
// callback and the client could serve stale reads forever.
func TestStaleAckCannotCancelFreshRegistration(t *testing.T) {
	layout := NewLayout(10, 20)
	se := NewServerEngine(PSOA, layout)
	clientA := NewClientState(1, PSOA, 8)
	clientB := NewClientState(2, PSOA, 8)

	// A reads page 0 (registration epoch e1).
	clientA.Begin(1)
	outs := se.Handle(clientA.NeedForRead(o(0, 2)))
	if len(outs) != 1 || outs[0].Kind != MPageData {
		t.Fatalf("read reply: %v", outs)
	}
	clientA.OnReply(&outs[0])
	clientA.RecordRead(o(0, 2))
	clientA.OnCommitAck() // read-only commit; copy retained

	// B's write to 0.5 starts an adaptive round; the callback reaches A,
	// which purged... is idle, so it purges the page and acks.
	clientB.Begin(2)
	clientB.StartWrite(o(0, 5))
	outs = se.Handle(clientB.NeedForWrite(o(0, 5)))
	if len(outs) != 1 || outs[0].Kind != MCallback || outs[0].To != 1 {
		t.Fatalf("expected a callback to client 1, got %v", outs)
	}
	cb := outs[0]
	ack, deferred := clientA.HandleCallback(&cb)
	if deferred || !ack.Purged {
		t.Fatalf("idle client should purge: %+v (deferred=%v)", ack, deferred)
	}

	// BEFORE the ack arrives, A re-reads the page: the server grants and
	// re-registers A's copy with a newer epoch (0.5 unavailable).
	clientA.Begin(3)
	readReq := clientA.NeedForRead(o(0, 2))
	outs = se.Handle(readReq)
	if len(outs) != 1 || outs[0].Kind != MPageData {
		t.Fatalf("re-read reply: %v", outs)
	}
	clientA.OnReply(&outs[0])
	clientA.RecordRead(o(0, 2))
	if !se.Copies.HasPageCopy(1, 0) {
		t.Fatal("fresh registration missing")
	}

	// NOW the stale ack lands. Without epochs this deregistered the fresh
	// copy; with epochs it must be a no-op on the copy table (while still
	// completing B's round).
	outs = se.Handle(ack)
	if !se.Copies.HasPageCopy(1, 0) {
		t.Fatal("stale ack cancelled the fresh registration")
	}
	// B's round completed: object grant emitted.
	if len(outs) != 1 || outs[0].Grant != GrantObject || outs[0].To != 2 {
		t.Fatalf("round completion: %v", outs)
	}
	clientB.OnReply(&outs[0])
	clientB.RecordWrite(o(0, 5))

	// B commits; a later write by B to another object on page 0 must still
	// call back client A (its copy is registered and real).
	commit := clientB.BuildCommit()
	outs = se.Handle(commit)
	if len(outs) != 1 || outs[0].Kind != MCommitAck {
		t.Fatalf("commit ack: %v", outs)
	}
	clientB.OnCommitAck()

	clientB.Begin(4)
	clientB.StartWrite(o(0, 7))
	outs = se.Handle(clientB.NeedForWrite(o(0, 7)))
	foundCallback := false
	for _, m := range outs {
		if m.Kind == MCallback && m.To == 1 {
			foundCallback = true
		}
	}
	if !foundCallback {
		t.Fatalf("writer skipped the callback to the re-registered client: %v", outs)
	}
}

// TestAckWithCurrentEpochStillDeregisters checks the converse: an ack for
// the registration the callback actually targeted must deregister it.
func TestAckWithCurrentEpochStillDeregisters(t *testing.T) {
	layout := NewLayout(10, 20)
	se := NewServerEngine(PSOA, layout)
	clientA := NewClientState(1, PSOA, 8)
	clientB := NewClientState(2, PSOA, 8)

	clientA.Begin(1)
	outs := se.Handle(clientA.NeedForRead(o(0, 2)))
	clientA.OnReply(&outs[0])
	clientA.RecordRead(o(0, 2))
	clientA.OnCommitAck()

	clientB.Begin(2)
	clientB.StartWrite(o(0, 5))
	outs = se.Handle(clientB.NeedForWrite(o(0, 5)))
	cb := outs[0]
	ack, _ := clientA.HandleCallback(&cb)
	se.Handle(ack)
	if se.Copies.HasPageCopy(1, 0) {
		t.Fatal("legitimate purge ack did not deregister the copy")
	}
}
