package core

import (
	"fmt"

	"repro/internal/obs"
)

// handleRequest processes a read or write request: try it, and queue it if
// it blocks.
func (se *ServerEngine) handleRequest(m *Msg, isWrite bool) {
	t := se.getTxn(m.Txn, m.From)
	if t.blocked != nil || t.round != nil {
		panic(fmt.Sprintf("core: txn %d issued a request while one is outstanding", m.Txn))
	}
	var isW int64
	if isWrite {
		isW = 1
	}
	se.trace(obs.EvLockReq, m.Txn, m.From, m.Obj, isW)
	r := &blockedReq{msg: *m, txn: t, isWrite: isWrite}
	if se.tryRequest(r) {
		se.maybeForget(t)
		return
	}
	se.enqueue(r)
}

// maybeForget drops the server's record of a transaction that holds no
// locks and has nothing outstanding. Read-only transactions commit purely
// locally at the client, so this is the only way their records get
// cleaned up.
func (se *ServerEngine) maybeForget(t *stxn) {
	if t.blocked == nil && t.round == nil && !t.aborting && se.Locks.LockCount(t.id) == 0 {
		delete(se.txns, t.id)
	}
}

func (se *ServerEngine) enqueue(r *blockedReq) {
	p := r.msg.Obj.Page
	se.queues[p] = append(se.queues[p], r)
	r.txn.blocked = r
	if !r.blockedOnce {
		r.blockedOnce = true
		se.Stats.Blocks.Add(1)
		se.trace(obs.EvBlock, r.msg.Txn, r.msg.From, r.msg.Obj, 0)
	}
	se.deadlockCheck(r.txn)
}

// tryRequest attempts a queued or fresh request. It returns true when the
// request has been fully dispatched (granted, replied, or converted into a
// callback round) and false when it must (re)block.
func (se *ServerEngine) tryRequest(r *blockedReq) bool {
	if r.isWrite {
		return se.tryWrite(r)
	}
	return se.tryRead(r)
}

// ---- Reads ----

func (se *ServerEngine) tryRead(r *blockedReq) bool {
	m := &r.msg
	o, p := m.Obj, m.Obj.Page
	switch se.Proto {
	case PS:
		if h := se.Locks.PageXHolder(p); h != NoTxn && h != m.Txn {
			return false
		}
		if len(se.pageRound[p]) > 0 {
			return false
		}
		se.Copies.RegisterPage(m.From, p)
		se.replyMsg(m, MPageData, GrantNone, nil)
		return true

	case OS:
		if h := se.Locks.ObjXHolder(o); h != NoTxn && h != m.Txn {
			return false
		}
		if rd := se.roundOnObj(o); rd != nil && rd.txn.id != m.Txn {
			return false
		}
		se.Copies.RegisterObj(m.From, o)
		se.replyMsg(m, MObjData, GrantNone, nil)
		return true

	case PSOO, PSOA, PSWT:
		// The write token (PS-WT) never blocks readers: fine-grained read
		// sharing is the point of the scheme.
		if h := se.Locks.ObjXHolder(o); h != NoTxn && h != m.Txn {
			return false
		}
		if rd := se.roundOnObj(o); rd != nil && rd.txn.id != m.Txn {
			return false
		}
		unavail := se.unavailSlots(p, m.Txn)
		se.registerPageCopies(m.From, p, unavail)
		se.replyMsg(m, MPageData, GrantNone, unavail)
		return true

	case PSAA:
		if h := se.Locks.PageXHolder(p); h != NoTxn && h != m.Txn {
			se.ensureDeesc(p, h)
			return false
		}
		if h := se.Locks.ObjXHolder(o); h != NoTxn && h != m.Txn {
			return false
		}
		if len(se.pageRound[p]) > 0 {
			return false
		}
		unavail := se.unavailSlots(p, m.Txn)
		se.Copies.RegisterPage(m.From, p)
		se.replyMsg(m, MPageData, GrantNone, unavail)
		return true
	}
	panic("core: unknown protocol")
}

// registerPageCopies records the copies created by shipping page p to
// client c: per-object registration for PS-OO (each available object), a
// single page registration for PS-OA.
func (se *ServerEngine) registerPageCopies(c ClientID, p PageID, unavail []uint16) {
	if !se.Copies.ObjGranularity() {
		se.Copies.RegisterPage(c, p)
		return
	}
	isUnavail := make(map[uint16]bool, len(unavail))
	for _, s := range unavail {
		isUnavail[s] = true
	}
	for s := 0; s < se.Layout.ObjsPerPage; s++ {
		if !isUnavail[uint16(s)] {
			se.Copies.RegisterObj(c, ObjID{Page: p, Slot: uint16(s)})
		}
	}
}

// ---- Writes ----

func (se *ServerEngine) tryWrite(r *blockedReq) bool {
	m := &r.msg
	o, p := m.Obj, m.Obj.Page
	switch se.Proto {
	case PS:
		if h := se.Locks.PageXHolder(p); h != NoTxn {
			if h == m.Txn {
				panic("core: write request while already holding page X")
			}
			return false
		}
		if len(se.pageRound[p]) > 0 {
			return false
		}
		holders := se.Copies.PageHolders(p, m.From)
		if len(holders) == 0 {
			se.grantPageX(m)
			return true
		}
		se.startRound(r, CBPage, holders)
		return true

	case OS, PSOO:
		if h := se.Locks.ObjXHolder(o); h != NoTxn {
			if h == m.Txn {
				panic("core: write request while already holding object X")
			}
			return false
		}
		if rd := se.roundOnObj(o); rd != nil {
			return false
		}
		holders := se.Copies.ObjHolders(o, m.From)
		if len(holders) == 0 {
			se.grantObjX(m)
			return true
		}
		se.startRound(r, CBObject, holders)
		return true

	case PSOA:
		if h := se.Locks.ObjXHolder(o); h != NoTxn {
			if h == m.Txn {
				panic("core: write request while already holding object X")
			}
			return false
		}
		if rd := se.roundOnObj(o); rd != nil {
			return false
		}
		holders := se.Copies.PageHolders(p, m.From)
		if len(holders) == 0 {
			se.grantObjX(m)
			return true
		}
		se.startRound(r, CBAdaptive, holders)
		return true

	case PSWT:
		if h := se.Locks.ObjXHolder(o); h != NoTxn {
			if h == m.Txn {
				panic("core: write request while already holding object X")
			}
			return false
		}
		if rd := se.roundOnObj(o); rd != nil {
			return false
		}
		// One updater per page at a time: the write token.
		if tok := se.tokens[p]; tok != nil && tok.id != m.Txn {
			se.Stats.TokenWaits.Add(1)
			return false
		}
		holders := se.Copies.ObjHolders(o, m.From)
		if len(holders) == 0 {
			se.grantObjX(m)
			return true
		}
		se.startRound(r, CBObject, holders)
		return true

	case PSAA:
		if h := se.Locks.PageXHolder(p); h != NoTxn && h != m.Txn {
			se.ensureDeesc(p, h)
			return false
		}
		if se.Locks.HoldsPageX(m.Txn, p) {
			panic("core: write request while already holding page X")
		}
		if h := se.Locks.ObjXHolder(o); h != NoTxn {
			if h == m.Txn {
				panic("core: write request while already holding object X")
			}
			return false
		}
		if len(se.pageRound[p]) > 0 {
			return false
		}
		holders := se.Copies.PageHolders(p, m.From)
		if len(holders) == 0 {
			if se.Locks.ObjXCount(p, m.Txn) == 0 {
				se.grantPageX(m)
			} else {
				se.grantObjX(m)
			}
			return true
		}
		se.startRound(r, CBAdaptive, holders)
		return true
	}
	panic("core: unknown protocol")
}

// needData decides whether a grant must carry the data item. The client
// asks for data when it knows it lacks the item (WantData); the server
// additionally ships data when its copy table shows the client's copy was
// revoked after the request was sent (callback races).
func (se *ServerEngine) needData(m *Msg) bool {
	if m.WantData {
		return true
	}
	if se.Copies.ObjGranularity() {
		return !se.Copies.HasObjCopy(m.From, m.Obj)
	}
	return !se.Copies.HasPageCopy(m.From, m.Page)
}

// grantPageX grants a page-level write lock and replies (with data if
// needed).
func (se *ServerEngine) grantPageX(m *Msg) {
	se.Locks.GrantPageX(m.Txn, m.From, m.Page)
	se.Stats.PageGrants.Add(1)
	se.trace(obs.EvGrant, m.Txn, m.From, m.Obj, int64(GrantPage))
	if se.needData(m) {
		// Under a page grant no other transaction holds locks on the page,
		// so nothing is unavailable.
		if se.Copies.ObjGranularity() {
			se.registerPageCopies(m.From, m.Page, nil)
		} else {
			se.Copies.RegisterPage(m.From, m.Page)
		}
		se.replyMsg(m, MPageData, GrantPage, nil)
		return
	}
	se.replyMsg(m, MGrant, GrantPage, nil)
}

// grantObjX grants an object-level write lock and replies (with data if
// needed). Under PS-WT the grant also takes the page's write token.
func (se *ServerEngine) grantObjX(m *Msg) {
	se.Locks.GrantObjX(m.Txn, m.From, m.Obj)
	se.Stats.ObjGrants.Add(1)
	se.trace(obs.EvGrant, m.Txn, m.From, m.Obj, int64(GrantObject))
	if se.Proto == PSWT {
		if tok := se.tokens[m.Page]; tok == nil {
			t := se.getTxn(m.Txn, m.From)
			se.tokens[m.Page] = t
			t.tokens = append(t.tokens, m.Page)
		} else if tok.id != m.Txn {
			panic("core: object grant over a foreign write token")
		}
	}
	if se.needData(m) {
		if se.Proto == OS {
			se.Copies.RegisterObj(m.From, m.Obj)
			se.replyMsg(m, MObjData, GrantObject, nil)
			return
		}
		unavail := se.unavailSlots(m.Page, m.Txn)
		se.registerPageCopies(m.From, m.Page, unavail)
		se.replyMsg(m, MPageData, GrantObject, unavail)
		return
	}
	se.replyMsg(m, MGrant, GrantObject, nil)
}

// ---- Callback rounds ----

func (se *ServerEngine) startRound(r *blockedReq, kind CallbackKind, holders []ClientID) {
	se.nextRound += se.roundStride
	rd := &round{
		id:      se.nextRound,
		req:     r.msg,
		txn:     r.txn,
		page:    r.msg.Obj.Page,
		obj:     r.msg.Obj,
		kind:    kind,
		pending: make(map[ClientID]bool, len(holders)),
		busy:    make(map[ClientID]TxnID),
	}
	se.rounds[rd.id] = rd
	se.pageRound[rd.page] = append(se.pageRound[rd.page], rd)
	r.txn.round = rd
	se.Stats.Rounds.Add(1)
	se.trace(obs.EvRound, rd.txn.id, r.msg.From, rd.obj, int64(len(holders)))
	for _, c := range holders {
		rd.pending[c] = true
		se.Stats.Callbacks.Add(1)
		se.trace(obs.EvCallback, rd.txn.id, c, rd.obj, int64(kind))
		// Quote the registration epoch this callback revokes.
		var epoch int64
		if kind == CBObject {
			epoch = se.Copies.ObjEpoch(c, rd.obj)
		} else {
			epoch = se.Copies.PageEpoch(c, rd.page)
		}
		se.send(Msg{Kind: MCallback, To: c, Txn: rd.txn.id, Req: rd.id,
			Page: rd.page, Obj: rd.obj, CB: kind, Epoch: epoch})
	}
}

// handleAck processes a callback reply: copy-table effects apply
// unconditionally (the client really did purge/keep), round bookkeeping
// only if the round is still live (it may have been cancelled by an
// abort).
func (se *ServerEngine) handleAck(m *Msg) {
	if !m.Busy {
		// Epoch-guarded: an ack for a copy that has since been re-granted
		// (newer registration epoch) must not cancel the new registration.
		switch m.CB {
		case CBPage:
			se.Copies.UnregisterPage(m.From, m.Page, m.Epoch)
		case CBObject:
			se.Copies.UnregisterObj(m.From, m.Obj, m.Epoch)
		case CBAdaptive:
			if m.Purged {
				se.Copies.UnregisterPage(m.From, m.Page, m.Epoch)
			}
		}
	}
	rd := se.rounds[m.Req]
	if rd == nil {
		return // round cancelled (victim aborted); effects already applied
	}
	var busy int64
	if m.Busy {
		busy = 1
	}
	se.trace(obs.EvCallbackAck, rd.txn.id, m.From, rd.obj, busy)
	if m.Busy {
		se.Stats.BusyReplies.Add(1)
		rd.busy[m.From] = m.BusyTxn
		se.deadlockCheck(rd.txn)
		return
	}
	if !rd.pending[m.From] {
		panic(fmt.Sprintf("core: unexpected ack from client %d for round %d", m.From, rd.id))
	}
	delete(rd.pending, m.From)
	delete(rd.busy, m.From)
	if !m.Purged {
		rd.anyKept = true
	}
	if len(rd.pending) == 0 {
		se.completeRound(rd)
	}
}

// completeRound finishes a callback round and grants the deferred write
// request at the appropriate granularity.
func (se *ServerEngine) completeRound(rd *round) {
	se.dropRound(rd)
	m := &rd.req
	switch se.Proto {
	case PS:
		se.grantPageX(m)
	case OS, PSOO, PSOA:
		se.grantObjX(m)
	case PSWT:
		// The token may have been taken by a direct grant while our
		// callbacks were in flight; if so, re-queue behind the holder.
		if tok := se.tokens[rd.page]; tok != nil && tok.id != m.Txn {
			se.Stats.TokenWaits.Add(1)
			se.enqueue(&blockedReq{msg: rd.req, txn: rd.txn, isWrite: true, blockedOnce: true})
			se.retryQueue(rd.page)
			return
		}
		se.grantObjX(m)
	case PSAA:
		// Page-level grant is possible only if every copy was purged and
		// no other transaction retains object locks on the page.
		if !rd.anyKept &&
			se.Locks.ObjXCount(rd.page, m.Txn) == 0 &&
			se.Locks.PageXHolder(rd.page) == NoTxn &&
			len(se.Copies.PageHolders(rd.page, m.From)) == 0 {
			se.grantPageX(m)
		} else {
			se.grantObjX(m)
		}
	}
	se.retryQueue(rd.page)
}

// dropRound removes a round from the indexes. Recipients whose answer is
// still outstanding (a cancellation: victim abort, requester disconnect)
// are announced via EvRoundCancel so the host can retire any callback
// deadline it armed for them — they owe nothing to a dead round, and a
// stale deadline would let a watchdog depose a healthy client. Normal
// completion emits nothing: pending is empty by then.
func (se *ServerEngine) dropRound(rd *round) {
	for c := range rd.pending {
		se.trace(obs.EvRoundCancel, rd.txn.id, c, rd.obj, rd.id)
	}
	delete(se.rounds, rd.id)
	prs := se.pageRound[rd.page]
	for i, x := range prs {
		if x == rd {
			prs = append(prs[:i], prs[i+1:]...)
			break
		}
	}
	if len(prs) == 0 {
		delete(se.pageRound, rd.page)
	} else {
		se.pageRound[rd.page] = prs
	}
	rd.txn.round = nil
}

// ---- De-escalation (PS-AA) ----

// ensureDeesc asks the page-X holder to de-escalate, once per page at a
// time.
func (se *ServerEngine) ensureDeesc(p PageID, holder TxnID) {
	if se.deesc[p] {
		return
	}
	ht := se.txns[holder]
	if ht == nil {
		panic(fmt.Sprintf("core: page X held by unknown txn %d", holder))
	}
	se.deesc[p] = true
	se.Stats.Deescalations.Add(1)
	se.trace(obs.EvDeesc, holder, ht.client, ObjID{Page: p}, 0)
	se.send(Msg{Kind: MDeescReq, To: ht.client, Txn: holder, Page: p})
}

// handleDeescReply converts the holder's page lock into object locks on
// the objects it reports, then retries the page's queue.
func (se *ServerEngine) handleDeescReply(m *Msg) {
	p := m.Page
	delete(se.deesc, p)
	holder := se.Locks.PageXHolder(p)
	if holder != NoTxn && holder == m.Txn && len(m.DeescObjs) > 0 {
		se.Locks.Deescalate(holder, p, m.DeescObjs)
	}
	// If the holder committed/aborted in the meantime the lock is already
	// gone and the queue was retried then; retry again regardless (cheap,
	// and required in the normal case).
	se.retryQueue(p)
}

// ---- Commit / abort ----

func (se *ServerEngine) handleCommit(m *Msg) { se.commitShard(m, true) }

// commitShard is handleCommit parameterized for sharded hosts: each
// engine owning part of the write set releases its locks and does its
// merge accounting, but exactly one shard — the owner — counts the
// commit, traces it, and emits the MCommitAck (so the client sees one
// ack and monitors count one commit). owner=true is the whole-engine
// case.
func (se *ServerEngine) commitShard(m *Msg, owner bool) {
	if owner {
		if !se.system[m.From] {
			se.Stats.Commits.Add(1)
		}
		se.trace(obs.EvCommit, m.Txn, m.From, ObjID{}, int64(len(m.Objs)))
	}
	t := se.txns[m.Txn]
	if t != nil && (t.blocked != nil || t.round != nil) {
		panic("core: commit from a blocked transaction")
	}
	// Install/merge accounting: pages committed under object-level locks
	// must be merged object-by-object; pages under a page lock install
	// wholesale. OS installs per object.
	switch {
	case se.Proto == OS:
		se.mergeObjs += int64(len(m.Objs))
	case se.Proto == PSWT:
		// The write token serialized all updaters of each page: committed
		// pages install wholesale, no merge — the scheme's selling point.
	default:
		for _, p := range m.Pages {
			if !se.Locks.HoldsPageX(m.Txn, p) {
				se.mergeObjs += int64(se.Locks.ObjXCountOnPage(m.Txn, p))
			}
		}
	}
	se.finishTxn(m.Txn)
	if owner {
		se.send(Msg{Kind: MCommitAck, To: m.From, Txn: m.Txn, Req: m.Req})
	}
}

func (se *ServerEngine) handleAbort(m *Msg) { se.abortShard(m, true) }

// abortShard is handleAbort parameterized for sharded hosts; see
// commitShard. The caller subsets PurgedPages/PurgedObjs to this
// engine's pages; only the owner counts and traces the abort.
func (se *ServerEngine) abortShard(m *Msg, owner bool) {
	if owner {
		if !se.system[m.From] {
			se.Stats.Aborts.Add(1)
		}
		se.trace(obs.EvAbort, m.Txn, m.From, ObjID{}, 0)
	}
	t := se.txns[m.Txn]
	roundPage := InvalidPage
	if t != nil {
		if t.blocked != nil {
			se.removeFromQueue(t.blocked)
			t.blocked = nil
		}
		if t.round != nil {
			roundPage = t.round.page
			se.dropRound(t.round)
		}
	}
	// Deregister the copies the client purged while aborting.
	se.ApplyDropped(m.From, m.PurgedPages, m.PurgedObjs)
	se.finishTxn(m.Txn)
	// The cancelled round may have been blocking requests on its page
	// (which the victim held no locks on, so finishTxn did not retry it).
	if roundPage != InvalidPage {
		se.retryQueue(roundPage)
	}
}

// finishTxn releases a transaction's locks (and write tokens), forgets it,
// and retries the queues of every page it touched.
func (se *ServerEngine) finishTxn(t TxnID) {
	var tokenPages []PageID
	if st := se.txns[t]; st != nil {
		for _, p := range st.tokens {
			if se.tokens[p] == st {
				delete(se.tokens, p)
				tokenPages = append(tokenPages, p)
			}
		}
	}
	pages := se.Locks.ReleaseAll(t)
	delete(se.txns, t)
	for _, p := range pages {
		se.retryQueue(p)
	}
	// Token pages are normally a subset of the locked pages, but retry
	// them explicitly for safety.
	for _, p := range tokenPages {
		se.retryQueue(p)
	}
}

// removeFromQueue deletes a blocked request from its page queue.
func (se *ServerEngine) removeFromQueue(r *blockedReq) {
	p := r.msg.Obj.Page
	q := se.queues[p]
	for i, x := range q {
		if x == r {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(se.queues, p)
	} else {
		se.queues[p] = q
	}
}

// retryQueue re-evaluates the blocked requests of page p in FIFO order.
// Requests that now succeed leave the queue; the rest stay blocked. A
// request that stays blocked may now be waiting on *different*
// transactions than when it first blocked (its old blocker released, a
// new round owns the page, ...), which can close a waits-for cycle, so
// each still-blocked request gets a fresh deadlock check.
func (se *ServerEngine) retryQueue(p PageID) {
	q := se.queues[p]
	if len(q) == 0 {
		return
	}
	var remaining []*blockedReq
	for i := 0; i < len(q); i++ {
		r := q[i]
		if r.txn.aborting {
			remaining = append(remaining, r)
			continue
		}
		// Temporarily detach so tryRequest sees a clean state.
		r.txn.blocked = nil
		if se.tryRequest(r) {
			se.maybeForget(r.txn)
			continue
		}
		r.txn.blocked = r
		remaining = append(remaining, r)
	}
	if len(remaining) == 0 {
		delete(se.queues, p)
	} else {
		se.queues[p] = remaining
	}
	for _, r := range remaining {
		if r.txn.blocked == r && !r.txn.aborting {
			se.deadlockCheck(r.txn)
		}
	}
}

// ---- Sharded hosts (live system) ----

// HandleCommitShard processes a commit on one engine of a sharded host.
// The caller routes the message to every shard owning part of the write
// set (with Objs subset to this shard's pages; Pages may be passed whole
// — foreign pages hold no locks here and contribute nothing) and marks
// exactly one shard as owner; see commitShard. The returned slice is
// reused across calls, like Handle's.
func (se *ServerEngine) HandleCommitShard(m *Msg, owner bool) []Msg {
	se.out = se.out[:0]
	se.commitShard(m, owner)
	return se.out
}

// HandleAbortShard is HandleCommitShard's abort counterpart; the caller
// subsets PurgedPages/PurgedObjs to this shard's pages.
func (se *ServerEngine) HandleAbortShard(m *Msg, owner bool) []Msg {
	se.out = se.out[:0]
	se.abortShard(m, owner)
	return se.out
}

// ---- Client disconnect (live system) ----

// Disconnect cleans up after a departed client: its transactions are
// aborted (locks released, queued requests and rounds cancelled), rounds
// awaiting its callback acks are completed as if it purged everything (its
// cache is gone), and all its registered copies are dropped. The returned
// messages (grants unblocked by the cleanup) must be dispatched.
func (se *ServerEngine) Disconnect(c ClientID) []Msg {
	return se.DisconnectDedup(c, nil)
}

// DisconnectDedup is Disconnect for sharded hosts sweeping every shard:
// seen (shared across the sweep) records transactions already counted so
// a transaction holding locks on several shards is counted and traced as
// one abort, not one per shard. seen == nil counts every transaction.
func (se *ServerEngine) DisconnectDedup(c ClientID, seen map[TxnID]bool) []Msg {
	se.out = se.out[:0]

	var mine []*stxn
	for _, t := range se.txns {
		if t.client == c {
			mine = append(mine, t)
		}
	}
	for i := 1; i < len(mine); i++ {
		for j := i; j > 0 && mine[j].id < mine[j-1].id; j-- {
			mine[j], mine[j-1] = mine[j-1], mine[j]
		}
	}
	for _, t := range mine {
		if t.blocked != nil {
			se.removeFromQueue(t.blocked)
			t.blocked = nil
		}
		roundPage := InvalidPage
		if t.round != nil {
			roundPage = t.round.page
			se.dropRound(t.round)
		}
		t.aborting = true // suppress victim selection against a ghost
		if seen == nil || !seen[t.id] {
			if seen != nil {
				seen[t.id] = true
			}
			if !se.system[c] {
				se.Stats.Aborts.Add(1)
			}
			se.trace(obs.EvAbort, t.id, c, ObjID{}, 1)
		}
		se.finishTxn(t.id)
		if roundPage != InvalidPage {
			se.retryQueue(roundPage)
		}
	}

	// Answer outstanding callbacks on the ghost's behalf: everything it
	// cached is gone, so every pending ack becomes "purged".
	var open []*round
	for _, rd := range se.rounds {
		if rd.pending[c] {
			open = append(open, rd)
		}
	}
	for i := 1; i < len(open); i++ {
		for j := i; j > 0 && open[j].id < open[j-1].id; j-- {
			open[j], open[j-1] = open[j-1], open[j]
		}
	}
	for _, rd := range open {
		var epoch int64
		if rd.kind == CBObject {
			epoch = se.Copies.ObjEpoch(c, rd.obj)
		} else if !se.Copies.ObjGranularity() {
			epoch = se.Copies.PageEpoch(c, rd.page)
		}
		ack := Msg{Kind: MCallbackAck, From: c, Req: rd.id, Page: rd.page, Obj: rd.obj,
			CB: rd.kind, Purged: true, Epoch: epoch}
		se.handleAck(&ack)
	}

	se.Copies.DropClient(c)
	return se.out
}

// ---- Deadlock detection ----

// deadlockCheck searches the waits-for graph for cycles through t,
// aborting the youngest member of each cycle found. A single trigger can
// close several distinct cycles at once (e.g. a busy reply from one client
// completing two alternative paths), so the search repeats until no cycle
// through t remains; aborting victims leave the graph for subsequent
// passes.
func (se *ServerEngine) deadlockCheck(t *stxn) {
	for !t.aborting {
		path := []*stxn{t}
		onPath := map[TxnID]bool{t.id: true}
		victim := se.findCycle(t, t, path, onPath)
		if se.DebugCheckLog != nil {
			v := TxnID(0)
			if victim != nil {
				v = victim.id
			}
			se.DebugCheckLog(t.id, se.waitsFor(t), v)
		}
		if victim == nil {
			return
		}
		se.Stats.Deadlocks.Add(1)
		se.abortVictim(victim)
	}
}

// findCycle DFSes from cur looking for start; on finding a cycle it
// returns the youngest (highest-id) non-aborting member.
func (se *ServerEngine) findCycle(start, cur *stxn, path []*stxn, onPath map[TxnID]bool) *stxn {
	for _, next := range se.waitsFor(cur) {
		nt := se.txns[next]
		if nt == nil || nt.aborting {
			continue
		}
		if nt == start {
			// Cycle: pick the youngest on the path.
			victim := path[0]
			for _, s := range path[1:] {
				if s.id > victim.id {
					victim = s
				}
			}
			return victim
		}
		if onPath[nt.id] {
			continue // cycle not through start; its own trigger will catch it
		}
		onPath[nt.id] = true
		if v := se.findCycle(start, nt, append(path, nt), onPath); v != nil {
			return v
		}
		delete(onPath, nt.id)
	}
	return nil
}

// waitsFor enumerates the transactions t is directly waiting on, in
// deterministic order.
func (se *ServerEngine) waitsFor(t *stxn) []TxnID {
	var deps []TxnID
	add := func(x TxnID) {
		if x == NoTxn || x == t.id {
			return
		}
		for _, d := range deps {
			if d == x {
				return
			}
		}
		deps = append(deps, x)
	}
	if r := t.blocked; r != nil {
		o, p := r.msg.Obj, r.msg.Obj.Page
		switch se.Proto {
		case PS:
			add(se.Locks.PageXHolder(p))
			for _, rd := range se.pageRound[p] {
				add(rd.txn.id)
			}
		case OS, PSOO, PSOA:
			add(se.Locks.ObjXHolder(o))
			if rd := se.roundOnObj(o); rd != nil {
				add(rd.txn.id)
			}
		case PSWT:
			add(se.Locks.ObjXHolder(o))
			if rd := se.roundOnObj(o); rd != nil {
				add(rd.txn.id)
			}
			if r.isWrite {
				if tok := se.tokens[p]; tok != nil {
					add(tok.id)
				}
			}
		case PSAA:
			add(se.Locks.PageXHolder(p))
			add(se.Locks.ObjXHolder(o))
			for _, rd := range se.pageRound[p] {
				add(rd.txn.id)
			}
		}
	}
	if rd := t.round; rd != nil {
		// Busy repliers block the round; enumerate in client order for
		// determinism.
		var clients []ClientID
		for c := range rd.busy {
			clients = append(clients, c)
		}
		for i := 1; i < len(clients); i++ {
			for j := i; j > 0 && clients[j] < clients[j-1]; j-- {
				clients[j], clients[j-1] = clients[j-1], clients[j]
			}
		}
		for _, c := range clients {
			add(rd.busy[c])
		}
	}
	return deps
}

// abortVictim initiates a deadlock abort: cancel the victim's outstanding
// request and tell its client. Locks are released when the client's
// MAbortReq arrives.
func (se *ServerEngine) abortVictim(v *stxn) {
	v.aborting = true
	se.trace(obs.EvDeadlock, v.id, v.client, ObjID{}, 0)
	var reqID int64
	roundPage := InvalidPage
	if v.blocked != nil {
		reqID = v.blocked.msg.Req
		se.removeFromQueue(v.blocked)
		v.blocked = nil
	}
	if v.round != nil {
		reqID = v.round.req.Req
		roundPage = v.round.page
		se.dropRound(v.round)
	}
	se.send(Msg{Kind: MAbortYou, To: v.client, Txn: v.id, Req: reqID})
	// Requests blocked on the cancelled round can proceed now.
	if roundPage != InvalidPage {
		se.retryQueue(roundPage)
	}
}

// ---- Cross-shard deadlock support (sharded hosts) ----

// WaitGraph visits this engine's local waits-for edges: for each
// non-aborting transaction with outstanding dependencies, its direct
// waits in deterministic order. A sharded host merges the per-shard
// graphs (a transaction may wait here while holding locks on another
// shard) and hunts cycles the per-shard detector cannot see.
func (se *ServerEngine) WaitGraph(visit func(t TxnID, deps []TxnID)) {
	ids := make([]TxnID, 0, len(se.txns))
	for id := range se.txns {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		t := se.txns[id]
		if t.aborting {
			continue
		}
		if deps := se.waitsFor(t); len(deps) > 0 {
			visit(id, deps)
		}
	}
}

// AbortDeadlockVictim aborts transaction t as the victim of a cycle a
// cross-shard detector found in the merged wait graph. It reports false
// (no messages, no counter) if t no longer exists here or is already
// aborting — merged-graph cycles are detected without locks held across
// shards, so a victim may have resolved in the meantime. The returned
// messages must be dispatched, like Handle's.
func (se *ServerEngine) AbortDeadlockVictim(t TxnID) ([]Msg, bool) {
	v := se.txns[t]
	if v == nil || v.aborting {
		return nil, false
	}
	se.out = se.out[:0]
	se.Stats.Deadlocks.Add(1)
	se.abortVictim(v)
	return se.out, true
}
