package sim

import (
	"math"
	"math/rand"
	"testing"
)

// TestCPUWorkConservation submits random mixes of system and user jobs and
// checks the processor-sharing CPU is work-conserving: total completion
// time equals total instructions divided by speed whenever the CPU never
// idles, and every job completes.
func TestCPUWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		cpu := NewCPU(e, 1) // 1e6 instr/sec
		totalInstr := 0.0
		done := 0
		end := 0.0
		jobs := 3 + rng.Intn(12)
		for j := 0; j < jobs; j++ {
			instr := float64(1000 + rng.Intn(500000))
			totalInstr += instr
			fin := func() { done++; end = e.Now() }
			if rng.Intn(2) == 0 {
				cpu.UseSystem(instr, fin)
			} else {
				cpu.UseUser(instr, fin)
			}
		}
		e.Run(1e9)
		if done != jobs {
			t.Fatalf("trial %d: %d/%d jobs completed", trial, done, jobs)
		}
		want := totalInstr / 1e6
		if math.Abs(end-want) > 1e-6*want+1e-9 {
			t.Fatalf("trial %d: makespan %v, want %v (work conservation)", trial, end, want)
		}
	}
}

// TestCPUWorkConservationWithArrivals staggers arrivals; the CPU may idle
// between bursts, so the check becomes: busy time equals total work.
func TestCPUWorkConservationWithArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 30; trial++ {
		e := NewEngine()
		cpu := NewCPU(e, 2)
		totalInstr := 0.0
		done := 0
		jobs := 3 + rng.Intn(10)
		for j := 0; j < jobs; j++ {
			instr := float64(1000 + rng.Intn(300000))
			totalInstr += instr
			at := rng.Float64() * 0.2
			sys := rng.Intn(2) == 0
			e.At(at, func() {
				if sys {
					cpu.UseSystem(instr, func() { done++ })
				} else {
					cpu.UseUser(instr, func() { done++ })
				}
			})
		}
		e.Run(1e9)
		if done != jobs {
			t.Fatalf("trial %d: %d/%d jobs completed", trial, done, jobs)
		}
		busy := cpu.SysBusy + cpu.UserBusy
		want := totalInstr / 2e6
		if math.Abs(busy-want) > 1e-6*want+1e-9 {
			t.Fatalf("trial %d: busy %v, want %v", trial, busy, want)
		}
	}
}

// TestUserJobsFinishInWorkOrder checks that among user jobs started
// together, completion order follows remaining work (processor sharing is
// fair).
func TestUserJobsFinishInWorkOrder(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var order []int
	sizes := []float64{5e5, 1e5, 3e5, 2e5, 4e5}
	for i, instr := range sizes {
		i := i
		cpu.UseUser(instr, func() { order = append(order, i) })
	}
	e.Run(1e9)
	want := []int{1, 3, 2, 4, 0} // ascending by size
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}
