package sim

// CPU models a processor with the two-level priority scheme described in
// the paper's system model (Section 4.1):
//
//   - "System" CPU requests (lock operations, message handling, I/O
//     initiation) have priority over user-level requests and are scheduled
//     FIFO, one at a time.
//   - "User" requests share the processor (processor sharing) using
//     whatever capacity is left; while any system request is executing,
//     user requests make no progress.
//
// Costs are expressed in instructions; the CPU speed is expressed in MIPS.
type CPU struct {
	e   *Engine
	ips float64 // instructions per second

	sysQ      []cpuJob
	sysActive bool
	sysFireFn func() // cached completion closure for the head system job

	userJobs   []userJob
	lastUser   float64 // virtual time at which user remaining was last advanced
	userTimer  Timer   // pending user completion event (stopped when superseded)
	userFireFn func()  // cached user completion closure

	// Stats.
	SysBusy  float64 // cumulative seconds spent on system requests
	UserBusy float64 // cumulative seconds of user progress (capacity-weighted)
	sysStart float64
}

type cpuJob struct {
	instr float64
	done  func()
}

type userJob struct {
	remaining float64
	done      func()
}

// completion slack, in instructions, to absorb float drift.
const userEps = 1e-6

// NewCPU creates a CPU executing mips million instructions per second.
func NewCPU(e *Engine, mips float64) *CPU {
	if mips <= 0 {
		panic("sim: CPU speed must be positive")
	}
	c := &CPU{e: e, ips: mips * 1e6, lastUser: e.Now()}
	c.sysFireFn = c.sysFire
	c.userFireFn = c.userFire
	return c
}

// MIPS returns the configured speed in millions of instructions/second.
func (c *CPU) MIPS() float64 { return c.ips / 1e6 }

// UseSystem schedules a high-priority FIFO request of the given number of
// instructions; done runs when it completes.
func (c *CPU) UseSystem(instr float64, done func()) {
	if instr < 0 {
		panic("sim: negative instruction count")
	}
	c.sysQ = append(c.sysQ, cpuJob{instr: instr, done: done})
	if !c.sysActive {
		c.advanceUsers()
		c.sysActive = true
		c.sysStart = c.e.Now()
		c.startNextSys()
		c.scheduleUser() // freezes user progress (cancels pending completion)
	}
}

// startNextSys schedules the completion of the head system job. Exactly
// one system completion event is outstanding at a time, so the head of
// sysQ at fire time is the job that was scheduled.
func (c *CPU) startNextSys() {
	c.e.At(c.sysQ[0].instr/c.ips, c.sysFireFn)
}

func (c *CPU) sysFire() {
	// Pop the completed job.
	job := c.sysQ[0]
	copy(c.sysQ, c.sysQ[1:])
	c.sysQ[len(c.sysQ)-1] = cpuJob{}
	c.sysQ = c.sysQ[:len(c.sysQ)-1]
	if len(c.sysQ) > 0 {
		if job.done != nil {
			job.done()
		}
		// done() may have appended more system work; the queue is
		// non-empty either way.
		c.startNextSys()
		return
	}
	// Queue drained: resume user progress before running done, since
	// done may enqueue new work.
	c.sysActive = false
	c.SysBusy += c.e.Now() - c.sysStart
	c.lastUser = c.e.Now()
	c.scheduleUser()
	if job.done != nil {
		job.done()
	}
}

// UseUser schedules a processor-shared user request of the given number of
// instructions; done runs when it completes.
func (c *CPU) UseUser(instr float64, done func()) {
	if instr < 0 {
		panic("sim: negative instruction count")
	}
	c.advanceUsers()
	c.userJobs = append(c.userJobs, userJob{remaining: instr, done: done})
	c.scheduleUser()
}

// UseSystemP is UseSystem but blocks the calling process until completion.
func (c *CPU) UseSystemP(p *Proc, instr float64) {
	c.UseSystem(instr, p.unparkFn)
	p.Park()
}

// UseUserP is UseUser but blocks the calling process until completion.
func (c *CPU) UseUserP(p *Proc, instr float64) {
	c.UseUser(instr, p.unparkFn)
	p.Park()
}

// advanceUsers accrues progress on user jobs since lastUser at the current
// sharing rate. It must be called before any state change that affects the
// rate (system activity toggles, user job arrivals/departures).
func (c *CPU) advanceUsers() {
	now := c.e.Now()
	dt := now - c.lastUser
	c.lastUser = now
	if dt <= 0 || c.sysActive || len(c.userJobs) == 0 {
		return
	}
	rate := c.ips / float64(len(c.userJobs))
	for i := range c.userJobs {
		c.userJobs[i].remaining -= rate * dt
	}
	c.UserBusy += dt
}

// scheduleUser (re)schedules the next user-job completion event, stopping
// any previously-scheduled one.
func (c *CPU) scheduleUser() {
	c.userTimer.Stop()
	c.userTimer = Timer{}
	if c.sysActive || len(c.userJobs) == 0 {
		return
	}
	minRem := c.userJobs[0].remaining
	for i := 1; i < len(c.userJobs); i++ {
		if c.userJobs[i].remaining < minRem {
			minRem = c.userJobs[i].remaining
		}
	}
	if minRem < 0 {
		minRem = 0
	}
	d := minRem * float64(len(c.userJobs)) / c.ips
	c.userTimer = c.e.At(d, c.userFireFn)
}

func (c *CPU) userFire() {
	c.userTimer = Timer{}
	c.advanceUsers()
	// Complete all jobs that have (within tolerance) finished, FIFO.
	var doneJobs []func()
	kept := c.userJobs[:0]
	for _, j := range c.userJobs {
		if j.remaining <= userEps {
			if j.done != nil {
				doneJobs = append(doneJobs, j.done)
			}
		} else {
			kept = append(kept, j)
		}
	}
	c.userJobs = kept
	c.scheduleUser()
	for _, fn := range doneJobs {
		fn()
	}
}

// Busy reports whether any request (system or user) is in progress.
func (c *CPU) Busy() bool { return c.sysActive || len(c.userJobs) > 0 }

// QueueLen returns the number of pending system requests plus active user
// jobs (diagnostics).
func (c *CPU) QueueLen() int { return len(c.sysQ) + len(c.userJobs) }

// Utilization returns the fraction of the elapsed time the CPU has spent
// busy, given the total elapsed virtual time.
func (c *CPU) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	busy := c.SysBusy + c.UserBusy
	if c.sysActive {
		busy += c.e.Now() - c.sysStart
	}
	return busy / elapsed
}
