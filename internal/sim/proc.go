package sim

import "fmt"

// Proc is a simulation process: a goroutine whose execution is interleaved
// deterministically with the event loop. At any moment at most one
// goroutine (the scheduler or exactly one process) is running.
//
// A process interacts with virtual time only through its blocking
// primitives (Hold, Park, Cond.Wait, Mailbox.Recv, and the resource
// methods that take a Proc).
type Proc struct {
	e      *Engine
	name   string
	resume   chan struct{}
	runFn    func() // cached p.run closure, reused by every Hold/Unpark
	unparkFn func() // cached p.Unpark closure for blocking resource calls
	parked   bool
	done     bool
}

// Go spawns a new process executing fn. The process starts at the current
// virtual time (via a zero-delay event).
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	p.runFn = p.run
	p.unparkFn = p.Unpark
	e.procs++
	go func() {
		<-p.resume // wait for first scheduling
		fn(p)
		p.done = true
		e.procs--
		e.yield <- struct{}{} // return control to scheduler
	}()
	e.At(0, p.runFn)
	return p
}

// run transfers control from the scheduler to the process until it blocks
// again or finishes.
func (p *Proc) run() {
	if p.done {
		panic("sim: resuming finished proc " + p.name)
	}
	p.parked = false
	p.resume <- struct{}{}
	<-p.e.yield
}

// block suspends the calling process and returns control to the event
// loop. It resumes when some event calls p.run().
func (p *Proc) block() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// Name returns the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.e.now }

// Hold advances virtual time by d seconds for this process.
func (p *Proc) Hold(d float64) {
	p.e.At(d, p.runFn)
	p.block()
}

// Park suspends the process until Unpark is called on it.
func (p *Proc) Park() {
	if p.parked {
		panic("sim: double park of " + p.name)
	}
	p.parked = true
	p.block()
}

// Unpark schedules a parked process to resume at the current virtual time.
// It must be called from an event callback or another process, never from
// the parked process itself.
func (p *Proc) Unpark() {
	if !p.parked {
		panic("sim: unpark of non-parked proc " + p.name)
	}
	p.parked = false
	p.e.At(0, p.runFn)
}

// Parked reports whether the process is currently parked.
func (p *Proc) Parked() bool { return p.parked }

// Cond is a virtual-time condition variable: a FIFO queue of parked
// processes.
type Cond struct {
	waiters []*Proc
}

// Wait parks the calling process on the condition.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.parked = true
	p.block()
}

// Signal wakes the longest-waiting process, if any. It reports whether a
// process was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	p.Unpark()
	return true
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		p.Unpark()
	}
}

// Len returns the number of waiting processes.
func (c *Cond) Len() int { return len(c.waiters) }

// initialMailboxCap pre-sizes a mailbox's queue on first send.
const initialMailboxCap = 16

// Mailbox is an unbounded FIFO message queue that a single consumer
// process can block on. Multiple producers (events or other processes) may
// send. Dequeues advance a head index instead of shifting, so a busy
// mailbox settles into a reused backing array.
type Mailbox[T any] struct {
	queue  []T
	head   int
	waiter *Proc
}

// Send enqueues a value and wakes the receiver if it is blocked.
func (m *Mailbox[T]) Send(v T) {
	if m.queue == nil {
		m.queue = make([]T, 0, initialMailboxCap)
	} else if m.head > 0 && len(m.queue) == cap(m.queue) {
		// Compact consumed slots instead of growing.
		n := copy(m.queue, m.queue[m.head:])
		var zero T
		for i := n; i < len(m.queue); i++ {
			m.queue[i] = zero
		}
		m.queue = m.queue[:n]
		m.head = 0
	}
	m.queue = append(m.queue, v)
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		w.Unpark()
	}
}

func (m *Mailbox[T]) pop() T {
	v := m.queue[m.head]
	var zero T
	m.queue[m.head] = zero
	m.head++
	if m.head == len(m.queue) {
		m.queue = m.queue[:0]
		m.head = 0
	}
	return v
}

// Recv blocks the calling process until a value is available, then
// dequeues and returns it.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for m.Len() == 0 {
		if m.waiter != nil {
			panic(fmt.Sprintf("sim: mailbox already has waiter %s", m.waiter.name))
		}
		m.waiter = p
		p.parked = true
		p.block()
	}
	return m.pop()
}

// TryRecv dequeues a value without blocking; ok is false if empty.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if m.Len() == 0 {
		return v, false
	}
	return m.pop(), true
}

// Len returns the number of queued values.
func (m *Mailbox[T]) Len() int { return len(m.queue) - m.head }
