package sim

import "fmt"

// Proc is a simulation process: a goroutine whose execution is interleaved
// deterministically with the event loop. At any moment at most one
// goroutine (the scheduler or exactly one process) is running.
//
// A process interacts with virtual time only through its blocking
// primitives (Hold, Park, Cond.Wait, Mailbox.Recv, and the resource
// methods that take a Proc).
type Proc struct {
	e      *Engine
	name   string
	resume chan struct{}
	parked bool
	done   bool
}

// Go spawns a new process executing fn. The process starts at the current
// virtual time (via a zero-delay event).
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.procs++
	go func() {
		<-p.resume // wait for first scheduling
		fn(p)
		p.done = true
		e.procs--
		e.yield <- struct{}{} // return control to scheduler
	}()
	e.At(0, func() { p.run() })
	return p
}

// run transfers control from the scheduler to the process until it blocks
// again or finishes.
func (p *Proc) run() {
	if p.done {
		panic("sim: resuming finished proc " + p.name)
	}
	p.parked = false
	p.resume <- struct{}{}
	<-p.e.yield
}

// block suspends the calling process and returns control to the event
// loop. It resumes when some event calls p.run().
func (p *Proc) block() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// Name returns the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.e.now }

// Hold advances virtual time by d seconds for this process.
func (p *Proc) Hold(d float64) {
	p.e.At(d, func() { p.run() })
	p.block()
}

// Park suspends the process until Unpark is called on it.
func (p *Proc) Park() {
	if p.parked {
		panic("sim: double park of " + p.name)
	}
	p.parked = true
	p.block()
}

// Unpark schedules a parked process to resume at the current virtual time.
// It must be called from an event callback or another process, never from
// the parked process itself.
func (p *Proc) Unpark() {
	if !p.parked {
		panic("sim: unpark of non-parked proc " + p.name)
	}
	p.parked = false
	p.e.At(0, func() { p.run() })
}

// Parked reports whether the process is currently parked.
func (p *Proc) Parked() bool { return p.parked }

// Cond is a virtual-time condition variable: a FIFO queue of parked
// processes.
type Cond struct {
	waiters []*Proc
}

// Wait parks the calling process on the condition.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.parked = true
	p.block()
}

// Signal wakes the longest-waiting process, if any. It reports whether a
// process was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	p.Unpark()
	return true
}

// Broadcast wakes all waiting processes in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		p.Unpark()
	}
}

// Len returns the number of waiting processes.
func (c *Cond) Len() int { return len(c.waiters) }

// Mailbox is an unbounded FIFO message queue that a single consumer
// process can block on. Multiple producers (events or other processes) may
// send.
type Mailbox[T any] struct {
	queue  []T
	waiter *Proc
}

// Send enqueues a value and wakes the receiver if it is blocked.
func (m *Mailbox[T]) Send(v T) {
	m.queue = append(m.queue, v)
	if m.waiter != nil {
		w := m.waiter
		m.waiter = nil
		w.Unpark()
	}
}

// Recv blocks the calling process until a value is available, then
// dequeues and returns it.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for len(m.queue) == 0 {
		if m.waiter != nil {
			panic(fmt.Sprintf("sim: mailbox already has waiter %s", m.waiter.name))
		}
		m.waiter = p
		p.parked = true
		p.block()
	}
	v := m.queue[0]
	copy(m.queue, m.queue[1:])
	var zero T
	m.queue[len(m.queue)-1] = zero
	m.queue = m.queue[:len(m.queue)-1]
	return v
}

// TryRecv dequeues a value without blocking; ok is false if empty.
func (m *Mailbox[T]) TryRecv() (v T, ok bool) {
	if len(m.queue) == 0 {
		return v, false
	}
	v = m.queue[0]
	copy(m.queue, m.queue[1:])
	var zero T
	m.queue[len(m.queue)-1] = zero
	m.queue = m.queue[:len(m.queue)-1]
	return v, true
}

// Len returns the number of queued values.
func (m *Mailbox[T]) Len() int { return len(m.queue) }
