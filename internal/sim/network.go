package sim

// Network models a local area network as a single FIFO server with a fixed
// bandwidth, as in the paper: "The simulator's Network Manager component
// is very simple, consisting of a FIFO server with a specified bandwidth,
// as protocol processing (i.e., CPU overhead) dominates the on-the-wire
// time for messages in modern local area networks."
//
// CPU costs for sending/receiving are NOT modelled here; callers charge
// them to the sender's and receiver's CPUs.
type Network struct {
	e           *Engine
	bytesPerSec float64
	busy        bool
	queue       []netMsg
	curSvc      float64 // service time of the message in service
	fireFn      func()  // cached completion closure

	// Stats.
	Msgs     int64
	Bytes    int64
	BusyTime float64
}

type netMsg struct {
	bytes int
	done  func()
}

// NewNetwork creates a network with the given bandwidth in megabits per
// second.
func NewNetwork(e *Engine, mbps float64) *Network {
	if mbps <= 0 {
		panic("sim: network bandwidth must be positive")
	}
	n := &Network{e: e, bytesPerSec: mbps * 1e6 / 8}
	n.fireFn = n.fire
	return n
}

// Transmit enqueues a message of the given size; done runs when the
// message has fully crossed the wire.
func (n *Network) Transmit(bytes int, done func()) {
	if bytes < 0 {
		panic("sim: negative message size")
	}
	n.queue = append(n.queue, netMsg{bytes: bytes, done: done})
	if !n.busy {
		n.busy = true
		n.serveNext()
	}
}

// serveNext schedules completion of the head message. Exactly one network
// completion event is outstanding at a time (FIFO single server).
func (n *Network) serveNext() {
	n.curSvc = float64(n.queue[0].bytes) / n.bytesPerSec
	n.e.At(n.curSvc, n.fireFn)
}

func (n *Network) fire() {
	m := n.queue[0]
	n.Msgs++
	n.Bytes += int64(m.bytes)
	n.BusyTime += n.curSvc
	copy(n.queue, n.queue[1:])
	n.queue[len(n.queue)-1] = netMsg{}
	n.queue = n.queue[:len(n.queue)-1]
	if len(n.queue) > 0 {
		n.serveNext()
	} else {
		n.busy = false
	}
	if m.done != nil {
		m.done()
	}
}

// QueueLen returns the number of messages pending or in service.
func (n *Network) QueueLen() int { return len(n.queue) }

// Utilization returns the busy fraction over the elapsed virtual time.
func (n *Network) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return n.BusyTime / elapsed
}
