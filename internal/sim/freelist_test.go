package sim

import (
	"math/rand"
	"testing"
)

// TestStaleTimerStopAfterRecycle: once an event fires it is recycled onto
// the free list; a later At reuses the same event struct. The stale Timer
// from the first schedule must be a no-op and must not kill the new event.
func TestStaleTimerStopAfterRecycle(t *testing.T) {
	e := NewEngine()
	firedA, firedB := false, false
	tmA := e.At(1, func() { firedA = true })
	e.Run(2)
	if !firedA {
		t.Fatal("first event did not fire")
	}
	// The free list now holds A's event struct; B reuses it.
	tmB := e.At(1, func() { firedB = true })
	if tmB.ev != tmA.ev {
		t.Fatal("expected event struct reuse from the free list")
	}
	if tmA.Stop() {
		t.Fatal("stale Stop reported a pending event")
	}
	e.Run(5)
	if !firedB {
		t.Fatal("stale Stop killed the recycled event")
	}
	if tmA.Stop() || tmB.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

// TestStaleTimerStopAfterCancelAndReuse covers the cancel path: a stopped
// event is recycled when popped; a stale handle to it must stay inert.
func TestStaleTimerStopAfterCancelAndReuse(t *testing.T) {
	e := NewEngine()
	tmA := e.At(1, func() { t.Fatal("cancelled event fired") })
	if !tmA.Stop() {
		t.Fatal("Stop should report pending")
	}
	e.Run(2) // pops + recycles the dead event
	fired := false
	tmB := e.At(1, func() { fired = true })
	if tmB.ev != tmA.ev {
		t.Fatal("expected event struct reuse from the free list")
	}
	if tmA.Stop() {
		t.Fatal("stale Stop on cancelled+recycled event reported pending")
	}
	e.Run(5)
	if !fired {
		t.Fatal("reused event did not fire")
	}
}

// TestPendingCounterExact checks the O(1) Pending counter against every
// transition: schedule, cancel, double-cancel, fire, and reuse.
func TestPendingCounterExact(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatalf("fresh engine Pending = %d", e.Pending())
	}
	t1 := e.At(1, func() {})
	t2 := e.At(2, func() {})
	e.At(3, func() {})
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	t2.Stop()
	if e.Pending() != 2 {
		t.Fatalf("Pending after cancel = %d, want 2", e.Pending())
	}
	t2.Stop() // double cancel must not decrement again
	if e.Pending() != 2 {
		t.Fatalf("Pending after double cancel = %d, want 2", e.Pending())
	}
	e.Run(1) // fires t1
	if e.Pending() != 1 {
		t.Fatalf("Pending after fire = %d, want 1", e.Pending())
	}
	t1.Stop() // stale: t1 already fired
	if e.Pending() != 1 {
		t.Fatalf("Pending after stale stop = %d, want 1", e.Pending())
	}
	e.At(0.5, func() {}) // reuses a recycled event
	if e.Pending() != 2 {
		t.Fatalf("Pending after reuse = %d, want 2", e.Pending())
	}
	e.Run(10)
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
}

// TestPendingCounterRandomized cross-checks the counter against a
// brute-force count over thousands of random schedule/cancel/step
// operations with event reuse in play.
func TestPendingCounterRandomized(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(11))
	var timers []Timer
	for i := 0; i < 5000; i++ {
		switch rng.Intn(3) {
		case 0:
			timers = append(timers, e.At(rng.Float64(), func() {}))
		case 1:
			if len(timers) > 0 {
				timers[rng.Intn(len(timers))].Stop()
			}
		case 2:
			e.Step()
		}
		// Brute-force ground truth over the live heap.
		n := 0
		for _, ev := range e.events {
			if !ev.dead {
				n++
			}
		}
		if e.Pending() != n {
			t.Fatalf("op %d: Pending = %d, heap holds %d live events", i, e.Pending(), n)
		}
	}
}

// TestStepRecyclesEvents ensures Step participates in the free list like
// Run does.
func TestStepRecyclesEvents(t *testing.T) {
	e := NewEngine()
	tm := e.At(1, func() {})
	if !e.Step() {
		t.Fatal("Step found no event")
	}
	if len(e.free) != 1 {
		t.Fatalf("free list has %d events, want 1", len(e.free))
	}
	if tm.Stop() {
		t.Fatal("Stop after Step-fire reported pending")
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported an event")
	}
}

// TestFreeListReuseKeepsOrdering runs a scenario hot enough to cycle
// events through the free list many times and checks FIFO-at-equal-time
// ordering still holds (seq keeps increasing across reuses).
func TestFreeListReuseKeepsOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	n := 0
	var chain func()
	chain = func() {
		if n >= 100 {
			return
		}
		n++
		k := n
		e.At(0, func() { order = append(order, k*2) })
		e.At(0, func() { order = append(order, k*2+1); chain() })
	}
	chain()
	e.Run(1)
	if len(order) != 200 {
		t.Fatalf("fired %d events, want 200", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("scheduling order violated at %d: %d then %d", i, order[i-1], order[i])
		}
	}
}
