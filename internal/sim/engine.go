// Package sim is a small process-oriented discrete-event simulation
// engine. It plays the role that the DeNet simulation language played for
// the original paper: it provides a virtual clock, schedulable events,
// coroutine-style processes, and simulated resources (CPUs with two-level
// priority scheduling, FIFO disks, and a FIFO network).
//
// The engine is strictly deterministic: exactly one goroutine runs at a
// time (either the scheduler or the currently-resumed process), events at
// equal timestamps fire in scheduling order, and all randomness must be
// drawn from rand.Rand streams owned by the caller.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a scheduled closure.
type event struct {
	at   float64
	seq  int64
	fn   func()
	dead bool // cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; all interaction must happen from process goroutines it
// manages or from event callbacks it invokes.
type Engine struct {
	now    float64
	seq    int64
	events eventHeap

	yield   chan struct{} // process -> scheduler handoff
	running bool
	procs   int // live process count (diagnostics)
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run after delay d (seconds). It returns a handle that
// can cancel the event before it fires.
func (e *Engine) At(d float64, fn func()) *Timer {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", d))
	}
	e.seq++
	ev := &event{at: e.now + d, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// Timer is a handle to a scheduled event.
type Timer struct{ ev *event }

// Stop cancels the event if it has not fired yet. It reports whether the
// event was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	return true
}

// Run executes events until the virtual clock would pass `until`, or until
// no events remain. It returns the time at which it stopped.
func (e *Engine) Run(until float64) float64 {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.events)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// Step executes the single next pending event, returning false if none
// remain. Intended for tests.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Pending reports the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Procs reports the number of live processes (spawned and not finished).
func (e *Engine) Procs() int { return e.procs }
