// Package sim is a small process-oriented discrete-event simulation
// engine. It plays the role that the DeNet simulation language played for
// the original paper: it provides a virtual clock, schedulable events,
// coroutine-style processes, and simulated resources (CPUs with two-level
// priority scheduling, FIFO disks, and a FIFO network).
//
// The engine is strictly deterministic: exactly one goroutine runs at a
// time (either the scheduler or the currently-resumed process), events at
// equal timestamps fire in scheduling order, and all randomness must be
// drawn from rand.Rand streams owned by the caller.
package sim

import (
	"fmt"
	"math"
)

// event is a scheduled closure. Fired and cancelled events are recycled
// through the engine's free list; gen distinguishes a live incarnation
// from a stale Timer handle that outlived a recycle.
type event struct {
	e    *Engine
	at   float64
	seq  int64
	gen  uint64 // bumped on recycle; Timer handles remember the gen they saw
	fn   func()
	dead bool // cancelled
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// initialHeapCap pre-sizes the event heap and free list so steady-state
// simulations never grow them.
const initialHeapCap = 256

// Engine is a discrete-event simulation engine. It is not safe for
// concurrent use; all interaction must happen from process goroutines it
// manages or from event callbacks it invokes.
type Engine struct {
	now     float64
	seq     int64
	events  []*event // binary min-heap ordered by (at, seq)
	free    []*event // recycled events awaiting reuse
	pending int      // scheduled non-cancelled events (O(1) Pending)

	yield   chan struct{} // process -> scheduler handoff
	running bool
	procs   int // live process count (diagnostics)
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{
		events: make([]*event, 0, initialHeapCap),
		free:   make([]*event, 0, initialHeapCap),
		yield:  make(chan struct{}),
	}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run after delay d (seconds). It returns a handle that
// can cancel the event before it fires.
func (e *Engine) At(d float64, fn func()) Timer {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", d))
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{e: e}
	}
	ev.at, ev.seq, ev.fn, ev.dead = e.now+d, e.seq, fn, false
	e.pushEvent(ev)
	e.pending++
	return Timer{ev: ev, gen: ev.gen}
}

// recycle returns a popped event to the free list. Bumping gen invalidates
// every Timer handle pointing at this incarnation.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.dead = false
	ev.gen++
	e.free = append(e.free, ev)
}

// pushEvent inserts ev into the heap (sift-up).
func (e *Engine) pushEvent(ev *event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.events = h
}

// popEvent removes and returns the earliest event (sift-down).
func (e *Engine) popEvent() *event {
	h := e.events
	n := len(h) - 1
	min := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.events = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			c = r
		}
		if !eventLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return min
}

// Timer is a handle to a scheduled event. The zero Timer is valid and
// Stop on it reports false.
type Timer struct {
	ev  *event
	gen uint64
}

// Stop cancels the event if it has not fired yet. It reports whether the
// event was still pending. Stop on a handle whose event already fired (and
// was possibly recycled for a later event) is a no-op.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.dead {
		return false
	}
	ev.dead = true
	ev.fn = nil
	ev.e.pending--
	return true
}

// Run executes events until the virtual clock would pass `until`, or until
// no events remain. It returns the time at which it stopped.
func (e *Engine) Run(until float64) float64 {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.at > until {
			break
		}
		e.popEvent()
		if ev.dead {
			e.recycle(ev)
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		fn := ev.fn
		e.pending--
		e.recycle(ev)
		fn()
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// Step executes the single next pending event, returning false if none
// remain. Intended for tests.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.popEvent()
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		fn := ev.fn
		e.pending--
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Pending reports the number of scheduled (non-cancelled) events in O(1).
func (e *Engine) Pending() int { return e.pending }

// Procs reports the number of live processes (spawned and not finished).
func (e *Engine) Procs() int { return e.procs }
