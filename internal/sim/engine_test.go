package sim

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(2, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(1, func() { order = append(order, 10) }) // same time: scheduling order
	e.At(0.5, func() { order = append(order, 0) })
	e.Run(10)
	want := []int{0, 1, 10, 2}
	if len(order) != len(want) {
		t.Fatalf("got %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v want %v", order, want)
		}
	}
	if !almostEq(e.Now(), 10) {
		t.Fatalf("clock should land on until: %v", e.Now())
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(1, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop should report pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report not pending")
	}
	e.Run(5)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(5, func() { fired = true })
	e.Run(3)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if !almostEq(e.Now(), 3) {
		t.Fatalf("now = %v, want 3", e.Now())
	}
	e.Run(10)
	if !fired {
		t.Fatal("event not fired on second Run")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.At(1, func() {
		times = append(times, e.Now())
		e.At(1, func() { times = append(times, e.Now()) })
	})
	e.Run(10)
	if len(times) != 2 || !almostEq(times[0], 1) || !almostEq(times[1], 2) {
		t.Fatalf("times = %v", times)
	}
}

func TestProcHold(t *testing.T) {
	e := NewEngine()
	var marks []float64
	e.Go("p", func(p *Proc) {
		p.Hold(1)
		marks = append(marks, p.Now())
		p.Hold(2.5)
		marks = append(marks, p.Now())
	})
	e.Run(10)
	if len(marks) != 2 || !almostEq(marks[0], 1) || !almostEq(marks[1], 3.5) {
		t.Fatalf("marks = %v", marks)
	}
	if e.Procs() != 0 {
		t.Fatalf("live procs = %d", e.Procs())
	}
}

func TestParkUnpark(t *testing.T) {
	e := NewEngine()
	var got float64
	var p1 *Proc
	p1 = e.Go("sleeper", func(p *Proc) {
		p.Park()
		got = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Hold(4)
		p1.Unpark()
	})
	e.Run(10)
	if !almostEq(got, 4) {
		t.Fatalf("woke at %v, want 4", got)
	}
}

func TestCondFIFO(t *testing.T) {
	e := NewEngine()
	var c Cond
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		e.Go(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Hold(1)
		c.Signal()
		p.Hold(1)
		c.Broadcast()
	})
	e.Run(10)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestMailbox(t *testing.T) {
	e := NewEngine()
	var mb Mailbox[int]
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	e.Go("producer", func(p *Proc) {
		mb.Send(1)
		p.Hold(1)
		mb.Send(2)
		mb.Send(3)
	})
	e.Run(10)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v", got)
	}
	if v, ok := mb.TryRecv(); ok {
		t.Fatalf("TryRecv on empty returned %v", v)
	}
}

func TestCPUSystemFIFO(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1) // 1 MIPS => 1e6 instr/sec
	var done []float64
	cpu.UseSystem(1e6, func() { done = append(done, e.Now()) })  // 1s
	cpu.UseSystem(5e5, func() { done = append(done, e.Now()) })  // +0.5s
	cpu.UseSystem(25e4, func() { done = append(done, e.Now()) }) // +0.25s
	e.Run(10)
	want := []float64{1, 1.5, 1.75}
	for i, w := range want {
		if !almostEq(done[i], w) {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestCPUUserProcessorSharing(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var t1, t2 float64
	// Two equal user jobs started together: each takes twice as long.
	cpu.UseUser(1e6, func() { t1 = e.Now() })
	cpu.UseUser(1e6, func() { t2 = e.Now() })
	e.Run(10)
	if !almostEq(t1, 2) || !almostEq(t2, 2) {
		t.Fatalf("t1=%v t2=%v, want 2,2", t1, t2)
	}
}

func TestCPUUserUnequalSharing(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var tShort, tLong float64
	cpu.UseUser(1e6, func() { tShort = e.Now() }) // 1M instr
	cpu.UseUser(3e6, func() { tLong = e.Now() })  // 3M instr
	// Shared until the short one finishes at t=2 (each got 1M). The long
	// one then has 2M left alone: finishes at t=4.
	e.Run(10)
	if !almostEq(tShort, 2) || !almostEq(tLong, 4) {
		t.Fatalf("tShort=%v tLong=%v, want 2,4", tShort, tLong)
	}
}

func TestCPUSystemPreemptsUser(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var tUser, tSys float64
	cpu.UseUser(1e6, func() { tUser = e.Now() })
	// At t=0.5, a system request of 1s arrives; user job freezes.
	e.At(0.5, func() { cpu.UseSystem(1e6, func() { tSys = e.Now() }) })
	e.Run(10)
	if !almostEq(tSys, 1.5) {
		t.Fatalf("tSys = %v, want 1.5", tSys)
	}
	// User had 0.5s progress, freezes 1s, finishes remaining 0.5 at 2.0.
	if !almostEq(tUser, 2.0) {
		t.Fatalf("tUser = %v, want 2.0", tUser)
	}
}

func TestCPULateUserArrival(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var tA, tB float64
	cpu.UseUser(2e6, func() { tA = e.Now() })
	e.At(1, func() { cpu.UseUser(1e6, func() { tB = e.Now() }) })
	// A runs alone [0,1): 1M done, 1M left. Then shared: each gets 0.5M/s.
	// B (1M) finishes at t=3; A's remaining 1M also finishes at t=3.
	e.Run(10)
	if !almostEq(tA, 3) || !almostEq(tB, 3) {
		t.Fatalf("tA=%v tB=%v, want 3,3", tA, tB)
	}
}

func TestCPUZeroInstr(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 10)
	fired := 0
	cpu.UseSystem(0, func() { fired++ })
	cpu.UseUser(0, func() { fired++ })
	e.Run(1)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestCPUProcVariants(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	var tDone float64
	e.Go("worker", func(p *Proc) {
		cpu.UseSystemP(p, 5e5)
		cpu.UseUserP(p, 5e5)
		tDone = p.Now()
	})
	e.Run(10)
	if !almostEq(tDone, 1) {
		t.Fatalf("tDone = %v, want 1", tDone)
	}
}

func TestCPUUtilization(t *testing.T) {
	e := NewEngine()
	cpu := NewCPU(e, 1)
	cpu.UseSystem(1e6, nil)
	e.Run(4)
	u := cpu.Utilization(4)
	if !almostEq(u, 0.25) {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestDiskFIFOAndRange(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(7))
	d := NewDisk(e, rng, 0.010, 0.030)
	var done []float64
	for i := 0; i < 50; i++ {
		d.IO(func() { done = append(done, e.Now()) })
	}
	e.Run(100)
	if len(done) != 50 {
		t.Fatalf("completed %d IOs", len(done))
	}
	if d.IOs != 50 {
		t.Fatalf("IOs stat = %d", d.IOs)
	}
	prev := 0.0
	for i, tm := range done {
		svc := tm - prev
		if svc < 0.010-1e-12 || svc > 0.030+1e-12 {
			t.Fatalf("IO %d service time %v out of range", i, svc)
		}
		prev = tm
	}
}

func TestDiskProcVariant(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(1))
	d := NewDisk(e, rng, 0.02, 0.02)
	var tDone float64
	e.Go("io", func(p *Proc) {
		d.IOP(p)
		d.IOP(p)
		tDone = p.Now()
	})
	e.Run(10)
	if !almostEq(tDone, 0.04) {
		t.Fatalf("tDone = %v, want 0.04", tDone)
	}
}

func TestNetworkFIFO(t *testing.T) {
	e := NewEngine()
	n := NewNetwork(e, 80) // 80 Mbps = 1e7 B/s
	var done []float64
	n.Transmit(1e7, func() { done = append(done, e.Now()) }) // 1s
	n.Transmit(5e6, func() { done = append(done, e.Now()) }) // +0.5s
	e.Run(10)
	if len(done) != 2 || !almostEq(done[0], 1) || !almostEq(done[1], 1.5) {
		t.Fatalf("done = %v", done)
	}
	if n.Msgs != 2 || n.Bytes != 15e6 {
		t.Fatalf("stats: msgs=%d bytes=%d", n.Msgs, n.Bytes)
	}
}

func TestNetworkZeroBytes(t *testing.T) {
	e := NewEngine()
	n := NewNetwork(e, 80)
	fired := false
	n.Transmit(0, func() { fired = true })
	e.Run(1)
	if !fired {
		t.Fatal("zero-byte message never delivered")
	}
}

// TestDeterminism runs an identical mixed scenario twice and requires
// bit-identical completion traces.
func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []float64 {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		cpu := NewCPU(e, 2)
		d := NewDisk(e, rng, 0.01, 0.03)
		n := NewNetwork(e, 80)
		var out []float64
		for i := 0; i < 5; i++ {
			i := i
			e.Go("w", func(p *Proc) {
				for j := 0; j < 20; j++ {
					cpu.UseUserP(p, float64(1000*(i+1)))
					d.IOP(p)
					done := make(chan struct{}, 1)
					_ = done
					nDone := false
					n.Transmit(512*(i+1), func() { nDone = true })
					_ = nDone
					cpu.UseSystemP(p, 2000)
					out = append(out, p.Now())
				}
			})
		}
		e.Run(1000)
		return out
	}
	a := trace(42)
	b := trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClockNeverDecreasesUnderRandomLoad(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(99))
	last := -1.0
	spawned := 0
	var spawn func()
	spawn = func() {
		if spawned >= 5000 {
			return
		}
		spawned++
		e.At(rng.Float64(), func() {
			if e.Now() < last {
				t.Fatalf("clock decreased: %v -> %v", last, e.Now())
			}
			last = e.Now()
			spawn()
			if rng.Intn(3) == 0 {
				spawn()
			}
		})
	}
	spawn()
	e.Run(1e9)
}
