package sim

import "math/rand"

// Disk models a single disk with a FIFO queue of I/O requests and access
// times drawn uniformly from [MinTime, MaxTime], matching the paper's
// server disk model.
type Disk struct {
	e       *Engine
	rng     *rand.Rand
	minTime float64
	maxTime float64

	busy   bool
	queue  []func() // completion callbacks of queued requests
	curSvc float64  // service time of the request in service
	fireFn func()   // cached completion closure

	// Stats.
	IOs      int64
	BusyTime float64
}

// NewDisk creates a disk with uniform access times in [minTime, maxTime]
// seconds, drawing from rng.
func NewDisk(e *Engine, rng *rand.Rand, minTime, maxTime float64) *Disk {
	if minTime < 0 || maxTime < minTime {
		panic("sim: invalid disk time range")
	}
	d := &Disk{e: e, rng: rng, minTime: minTime, maxTime: maxTime}
	d.fireFn = d.fire
	return d
}

// IO enqueues an I/O request; done runs when the access completes.
func (d *Disk) IO(done func()) {
	d.queue = append(d.queue, done)
	if !d.busy {
		d.busy = true
		d.serveNext()
	}
}

// IOP is IO but blocks the calling process until the access completes.
func (d *Disk) IOP(p *Proc) {
	d.IO(p.unparkFn)
	p.Park()
}

// serveNext schedules completion of the head request. Exactly one disk
// completion event is outstanding at a time (FIFO single server).
func (d *Disk) serveNext() {
	d.curSvc = d.minTime + d.rng.Float64()*(d.maxTime-d.minTime)
	d.e.At(d.curSvc, d.fireFn)
}

func (d *Disk) fire() {
	d.IOs++
	d.BusyTime += d.curSvc
	done := d.queue[0]
	copy(d.queue, d.queue[1:])
	d.queue[len(d.queue)-1] = nil
	d.queue = d.queue[:len(d.queue)-1]
	if len(d.queue) > 0 {
		d.serveNext()
	} else {
		d.busy = false
	}
	if done != nil {
		done()
	}
}

// QueueLen returns the number of requests pending or in service.
func (d *Disk) QueueLen() int { return len(d.queue) }

// Utilization returns the busy fraction over the elapsed virtual time.
func (d *Disk) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return d.BusyTime / elapsed
}
