package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// trimmedCatalogue returns every catalogue sweep with its x-axis cut to
// two points, so determinism is checked across every workload family and
// protocol set without hour-long test runs. Under the race detector the
// catalogue is additionally strided down to a sample of sweeps — the
// detector's ~10× slowdown would push the full set past go test's default
// timeout, and the pool's concurrency is identical for any sweep mix.
func trimmedCatalogue() []*Sweep {
	sweeps := Catalogue()
	for _, s := range sweeps {
		if len(s.WriteProbs) > 2 {
			s.WriteProbs = []float64{s.WriteProbs[0], s.WriteProbs[len(s.WriteProbs)-1]}
		}
	}
	if raceEnabled {
		var sampled []*Sweep
		for i := 0; i < len(sweeps); i += 4 {
			sampled = append(sampled, sweeps[i])
		}
		sweeps = sampled
	}
	return sweeps
}

// TestParallelMatchesSerialEveryCatalogueSweep is the harness's core
// guarantee: for every catalogue sweep under QuickOpts, the parallel
// runner at Jobs=4 renders byte-identically to the serial path, and two
// parallel runs with the same seed are identical to each other.
func TestParallelMatchesSerialEveryCatalogueSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full (trimmed) catalogue three times")
	}
	serialSweeps := trimmedCatalogue()
	opts := QuickOpts()

	serialRender := make(map[string]string)
	serialCSV := make(map[string]string)
	for _, s := range serialSweeps {
		res := s.Run(opts, nil)
		serialRender[s.ID] = res.Render()
		serialCSV[s.ID] = res.CSV()
	}

	par := opts
	par.Jobs = 4
	for round := 0; round < 2; round++ {
		rep := RunSweeps(trimmedCatalogue(), par, Hooks{})
		if len(rep.Errors) != 0 {
			t.Fatalf("round %d: cell errors: %v", round, rep.Errors[0])
		}
		for _, res := range rep.Results {
			id := res.Sweep.ID
			if got := res.Render(); got != serialRender[id] {
				t.Errorf("round %d: %s Render differs from serial:\nparallel:\n%s\nserial:\n%s",
					round, id, got, serialRender[id])
			}
			if got := res.CSV(); got != serialCSV[id] {
				t.Errorf("round %d: %s CSV differs from serial", round, id)
			}
		}
	}
}

// TestRunSweepsProgressAndTimings checks the thread-safe progress
// callback sees every cell exactly once with monotonically-increasing
// done counts, and per-sweep timings cover every cell.
func TestRunSweepsProgressAndTimings(t *testing.T) {
	sweeps := []*Sweep{Find("fig3"), Find("x-wtoken")}
	sweeps[0].WriteProbs = []float64{0.1}
	sweeps[1].WriteProbs = []float64{0.1}
	wantCells := len(core.Protocols) + len(sweeps[1].Protocols)

	var mu sync.Mutex
	var dones []int
	var sweepDone []string
	opts := Opts{Seed: 3, Warmup: 1, Measure: 4, Batches: 2, Jobs: 4}
	rep := RunSweeps(sweeps, opts, Hooks{
		Cell: func(done, total int, msg string) {
			mu.Lock()
			defer mu.Unlock()
			if total != wantCells {
				t.Errorf("total = %d, want %d", total, wantCells)
			}
			dones = append(dones, done)
		},
		SweepDone: func(tm SweepTiming) {
			mu.Lock()
			defer mu.Unlock()
			sweepDone = append(sweepDone, tm.ID)
			if tm.Wall <= 0 {
				t.Errorf("%s: non-positive wall %v", tm.ID, tm.Wall)
			}
		},
	})
	if len(rep.Errors) != 0 {
		t.Fatalf("errors: %v", rep.Errors[0])
	}
	if len(dones) != wantCells {
		t.Fatalf("progress fired %d times, want %d", len(dones), wantCells)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done counts not monotonic: %v", dones)
		}
	}
	if len(sweepDone) != 2 {
		t.Fatalf("sweepDone fired for %v", sweepDone)
	}
	if rep.Cells != wantCells || rep.Jobs != 4 {
		t.Fatalf("report cells=%d jobs=%d", rep.Cells, rep.Jobs)
	}
	total := 0
	for _, tm := range rep.Timings {
		total += tm.Cells
	}
	if total != wantCells {
		t.Fatalf("timings cover %d cells, want %d", total, wantCells)
	}
}

// TestParallelPanicCapture injects a sweep whose PS-OO cell panics in
// model.Run and checks: the error names the cell, every other cell
// completes, and Render/CSV emit NaN for the missing entry instead of
// panicking.
func TestParallelPanicCapture(t *testing.T) {
	s := Find("fig3")
	s.WriteProbs = []float64{0.1}
	s.Protocols = []core.Protocol{core.PS, core.PSOO, core.PSAA}
	s.Configure = func(cfg *model.Config) {
		if cfg.Proto == core.PSOO {
			cfg.Batches = 0 // model.Run panics: need at least 2 batches
		}
	}
	res, errs := s.RunParallel(Opts{Seed: 3, Warmup: 1, Measure: 4, Batches: 2, Jobs: 2}, nil)
	if len(errs) != 1 {
		t.Fatalf("errors = %d, want 1", len(errs))
	}
	ce := errs[0]
	if ce.Cell.ID() != "fig3/PS-OO/wp=0.1" {
		t.Fatalf("cell id = %q", ce.Cell.ID())
	}
	if !strings.Contains(ce.Error(), "fig3/PS-OO") || len(ce.Stack) == 0 {
		t.Fatalf("error lacks cell id or stack: %v", ce)
	}
	row := res.Rows[0]
	if row.Res[core.PSOO] != nil {
		t.Fatal("panicked cell produced a result")
	}
	if row.Res[core.PS] == nil || row.Res[core.PSAA] == nil {
		t.Fatal("surviving cells missing")
	}
	if v := res.value(row, core.PSOO); !math.IsNaN(v) {
		t.Fatalf("missing cell value = %v, want NaN", v)
	}
	txt := res.Render()
	if !strings.Contains(txt, "NaN") {
		t.Fatalf("Render lacks NaN for the failed cell:\n%s", txt)
	}
	csv := res.CSV()
	if !strings.Contains(csv, "NaN,NaN") {
		t.Fatalf("CSV lacks NaN,NaN for the failed cell:\n%s", csv)
	}
	if d := res.Detail(); !strings.Contains(d, "missing") {
		t.Fatalf("Detail lacks the missing marker:\n%s", d)
	}
}

// TestValueNaNOnMissingProtocol covers the satellite guard directly:
// a row without a protocol entry must render NaN, including the
// normalized case where the PS-AA base itself is missing.
func TestValueNaNOnMissingProtocol(t *testing.T) {
	s := &Sweep{ID: "synthetic", Protocols: []core.Protocol{core.PS, core.PSAA}}
	r := &Result{Sweep: s, Protocols: s.Protocols}
	row := Row{WriteProb: 0.1, Res: map[core.Protocol]*model.Results{
		core.PS: {Throughput: 5},
	}}
	r.Rows = []Row{row}
	if v := r.value(row, core.PSAA); !math.IsNaN(v) {
		t.Fatalf("missing entry = %v, want NaN", v)
	}
	if v := r.value(row, core.PS); v != 5 {
		t.Fatalf("present entry = %v, want 5", v)
	}
	s.Normalize = true
	if v := r.value(row, core.PS); !math.IsNaN(v) {
		t.Fatalf("normalized with missing base = %v, want NaN", v)
	}
	if out := r.CSV(); !strings.Contains(out, "NaN") {
		t.Fatalf("CSV lacks NaN: %s", out)
	}
	if out := r.Render(); !strings.Contains(out, "NaN") {
		t.Fatalf("Render lacks NaN: %s", out)
	}
}

// TestJobsResolution pins the Opts.Jobs default behavior.
func TestJobsResolution(t *testing.T) {
	if (Opts{Jobs: 3}).jobs() != 3 {
		t.Fatal("explicit Jobs not honored")
	}
	if (Opts{}).jobs() < 1 {
		t.Fatal("default jobs must be at least 1")
	}
}
