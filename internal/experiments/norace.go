//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in; tests use
// it to shrink simulation volume (race overhead is ~10×) while keeping the
// worker pool itself fully exercised.
const raceEnabled = false
