// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation (Section 5) and the harness that runs
// the sweeps and renders the resulting series.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// Sweep is one experiment: a workload family swept over per-object write
// probability for a set of protocols.
type Sweep struct {
	ID    string // e.g. "fig3"
	Title string // paper caption
	// Spec builds the workload for one write probability.
	Spec func(writeProb float64) workload.Spec
	// WriteProbs is the x-axis.
	WriteProbs []float64
	// Protocols under comparison (defaults to all five).
	Protocols []core.Protocol
	// Configure optionally post-processes the model config (e.g. slow
	// network, client scaling).
	Configure func(*model.Config)
	// Normalize plots each protocol's throughput as a fraction of PS-AA's
	// (the paper's Figures 12-14).
	Normalize bool
}

// Opts controls simulation effort.
type Opts struct {
	Seed    int64
	Warmup  float64
	Measure float64
	Batches int
	// Jobs is the worker count for the parallel runner (RunSweeps /
	// RunParallel): 0 or negative means runtime.GOMAXPROCS(0). The
	// serial Sweep.Run ignores it. Worker count never affects results.
	Jobs int
}

// DefaultOpts returns the durations used for the recorded experiments.
func DefaultOpts() Opts { return Opts{Seed: 42, Warmup: 30, Measure: 120, Batches: 8} }

// QuickOpts returns shorter runs for smoke benchmarks.
func QuickOpts() Opts { return Opts{Seed: 42, Warmup: 5, Measure: 20, Batches: 4} }

// Result is one sweep's output grid.
type Result struct {
	Sweep     *Sweep
	Protocols []core.Protocol
	Rows      []Row
}

// Row is one x-axis point.
type Row struct {
	WriteProb float64
	Res       map[core.Protocol]*model.Results
}

// Run executes the sweep serially on the calling goroutine. It is the
// reference path the parallel runner (RunParallel / RunSweeps) must match
// byte for byte.
func (s *Sweep) Run(o Opts, progress func(msg string)) *Result {
	protos := s.Protocols
	if protos == nil {
		protos = core.Protocols
	}
	out := &Result{Sweep: s, Protocols: protos}
	for _, wp := range s.WriteProbs {
		row := Row{WriteProb: wp, Res: make(map[core.Protocol]*model.Results)}
		for _, proto := range protos {
			cfg := s.cellConfig(wp, proto, o)
			if progress != nil {
				progress(fmt.Sprintf("%s: %s wp=%.2f", s.ID, proto, wp))
			}
			row.Res[proto] = model.Run(cfg)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// value extracts the plotted metric for a protocol at a row. A missing
// entry (skipped protocol or failed cell) renders as NaN rather than
// panicking.
func (r *Result) value(row Row, p core.Protocol) float64 {
	res := row.Res[p]
	if res == nil {
		return math.NaN()
	}
	v := res.Throughput
	if r.Sweep.Normalize {
		base := row.Res[core.PSAA]
		if base == nil || base.Throughput == 0 {
			return math.NaN()
		}
		return v / base.Throughput
	}
	return v
}

// Render returns the sweep as an aligned text table (the analogue of the
// paper's throughput figures).
func (r *Result) Render() string {
	var b strings.Builder
	metric := "throughput (txn/sec)"
	if r.Sweep.Normalize {
		metric = "throughput normalized to PS-AA"
	}
	fmt.Fprintf(&b, "%s — %s\n%s\n", r.Sweep.ID, r.Sweep.Title, metric)
	fmt.Fprintf(&b, "%-10s", "writeProb")
	for _, p := range r.Protocols {
		fmt.Fprintf(&b, "%10s", p.String())
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10.3f", row.WriteProb)
		for _, p := range r.Protocols {
			fmt.Fprintf(&b, "%10.2f", r.value(row, p))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV returns the sweep in CSV form (one column per protocol, plus 90% CI
// half-width columns).
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("write_prob")
	for _, p := range r.Protocols {
		name := strings.ReplaceAll(p.String(), "-", "")
		fmt.Fprintf(&b, ",%s,%s_ci", name, name)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%g", row.WriteProb)
		for _, p := range r.Protocols {
			v := r.value(row, p)
			ci := math.NaN()
			if res := row.Res[p]; res != nil {
				ci = res.ThroughputCI
				if r.Sweep.Normalize {
					if base := row.Res[core.PSAA]; base != nil && base.Throughput > 0 {
						ci = ci / base.Throughput
					}
				}
			}
			fmt.Fprintf(&b, ",%.4f,%.4f", v, ci)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Detail renders auxiliary metrics (messages/commit, aborts, utilizations)
// for analysis, mirroring the paper's discussion points.
func (r *Result) Detail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — detail\n", r.Sweep.ID)
	for _, row := range r.Rows {
		for _, p := range r.Protocols {
			res := row.Res[p]
			if res == nil {
				fmt.Fprintf(&b, "wp=%.3f %-6s (missing: cell skipped or failed)\n",
					row.WriteProb, p.String())
				continue
			}
			fmt.Fprintf(&b,
				"wp=%.3f %-6s tput=%7.2f ±%5.2f msgs/c=%6.1f aborts=%5d dl=%4d cb=%6d busy=%5d deesc=%5d pgX=%6d objX=%6d srvCPU=%.2f disk=%.2f net=%.2f\n",
				row.WriteProb, p.String(), res.Throughput, res.ThroughputCI,
				res.MsgsPerCommit, res.Aborts, res.Deadlocks, res.Callbacks,
				res.BusyReplies, res.Deescalations, res.PageGrants, res.ObjGrants,
				res.ServerCPUUtil, res.DiskUtil, res.NetUtil)
		}
	}
	return b.String()
}

// ---- Figure 5 (analytic) ----

// PageWriteProb returns the probability that a page is updated given the
// per-object write probability p and L objects accessed on the page:
// 1 - (1-p)^L. This is Figure 5's relationship.
func PageWriteProb(p float64, objsAccessed int) float64 {
	return 1 - math.Pow(1-p, float64(objsAccessed))
}

// Fig5Localities are the per-page access counts plotted in Figure 5.
var Fig5Localities = []int{1, 4, 12}

// RenderFig5 renders the analytic Figure 5 table.
func RenderFig5(writeProbs []float64) string {
	var b strings.Builder
	b.WriteString("fig5 — Per-page update probability vs. per-object write probability\n")
	fmt.Fprintf(&b, "%-10s", "writeProb")
	for _, l := range Fig5Localities {
		fmt.Fprintf(&b, "  locality=%-2d", l)
	}
	b.WriteString("\n")
	for _, wp := range writeProbs {
		fmt.Fprintf(&b, "%-10.3f", wp)
		for _, l := range Fig5Localities {
			fmt.Fprintf(&b, "  %-11.4f", PageWriteProb(wp, l))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig5CSV renders Figure 5 as CSV.
func Fig5CSV(writeProbs []float64) string {
	var b strings.Builder
	b.WriteString("write_prob")
	for _, l := range Fig5Localities {
		fmt.Fprintf(&b, ",L%d", l)
	}
	b.WriteString("\n")
	for _, wp := range writeProbs {
		fmt.Fprintf(&b, "%g", wp)
		for _, l := range Fig5Localities {
			fmt.Fprintf(&b, ",%.5f", PageWriteProb(wp, l))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ---- The experiment catalogue ----

// StdWriteProbs is the x-axis used for the recorded figures.
var StdWriteProbs = []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50}

// QuickWriteProbs is a reduced x-axis for smoke benchmarks.
var QuickWriteProbs = []float64{0, 0.05, 0.15, 0.30}

// Catalogue returns every simulated sweep, keyed in DESIGN.md's
// per-experiment index. (fig5 is analytic; see RenderFig5.)
func Catalogue() []*Sweep {
	scaled := func(spec func(float64) workload.Spec) func(float64) workload.Spec {
		return func(wp float64) workload.Spec {
			return workload.Scale(spec(wp), 9, 3)
		}
	}
	hotColdLow := func(wp float64) workload.Spec { return workload.HotColdSpec(workload.LowLocality, wp) }
	uniformLow := func(wp float64) workload.Spec { return workload.UniformSpec(workload.LowLocality, wp) }
	hiconLow := func(wp float64) workload.Spec { return workload.HiConSpec(workload.LowLocality, wp) }

	return []*Sweep{
		{
			ID: "fig3", Title: "HOTCOLD workload, low page locality (30 pages/txn, 1-7 objects/page)",
			Spec: hotColdLow, WriteProbs: StdWriteProbs,
		},
		{
			ID: "fig4", Title: "HOTCOLD workload, high page locality (10 pages/txn, 8-16 objects/page)",
			Spec:       func(wp float64) workload.Spec { return workload.HotColdSpec(workload.HighLocality, wp) },
			WriteProbs: StdWriteProbs,
		},
		{
			ID: "fig6", Title: "UNIFORM workload, low page locality",
			Spec: uniformLow, WriteProbs: StdWriteProbs,
		},
		{
			ID: "fig7", Title: "UNIFORM workload, high page locality",
			Spec:       func(wp float64) workload.Spec { return workload.UniformSpec(workload.HighLocality, wp) },
			WriteProbs: StdWriteProbs,
		},
		{
			ID: "fig8", Title: "HICON workload, low page locality",
			Spec: hiconLow, WriteProbs: StdWriteProbs,
		},
		{
			ID: "fig9", Title: "HICON workload, high page locality",
			Spec:       func(wp float64) workload.Spec { return workload.HiConSpec(workload.HighLocality, wp) },
			WriteProbs: StdWriteProbs,
		},
		{
			ID: "fig10", Title: "PRIVATE workload, high page locality",
			Spec:       func(wp float64) workload.Spec { return workload.PrivateSpec(workload.HighLocality, wp) },
			WriteProbs: StdWriteProbs,
		},
		{
			ID: "fig11", Title: "Interleaved PRIVATE workload (extreme false sharing)",
			Spec:       func(wp float64) workload.Spec { return workload.InterleavedPrivateSpec(wp) },
			WriteProbs: StdWriteProbs,
		},
		{
			ID: "fig12", Title: "HOTCOLD scaled up 9x (txns 3x), low locality, normalized to PS-AA",
			Spec: scaled(hotColdLow), WriteProbs: StdWriteProbs, Normalize: true,
		},
		{
			ID: "fig13", Title: "UNIFORM scaled up 9x (txns 3x), low locality, normalized to PS-AA",
			Spec: scaled(uniformLow), WriteProbs: StdWriteProbs, Normalize: true,
		},
		{
			ID: "fig14", Title: "HICON scaled up 9x (txns 3x), low locality, normalized to PS-AA",
			Spec: scaled(hiconLow), WriteProbs: StdWriteProbs, Normalize: true,
		},
		// Section 5.6.2 parameter-space checks.
		{
			ID: "x-locality1", Title: "Extreme page locality of one (30 pages/txn, 1 object/page)",
			Spec: func(wp float64) workload.Spec {
				w := workload.HotColdSpec(workload.LowLocality, wp)
				w.LocMin, w.LocMax = 1, 1
				return w
			},
			WriteProbs: StdWriteProbs,
		},
		{
			ID: "x-slownet", Title: "HOTCOLD low locality with network bandwidth divided by 10 (8 Mbps)",
			Spec: hotColdLow, WriteProbs: QuickWriteProbs,
			Configure: func(cfg *model.Config) { cfg.NetworkMbps = 8 },
		},
		{
			ID: "x-clustered", Title: "HOTCOLD low locality with clustered object access",
			Spec: func(wp float64) workload.Spec {
				w := workload.HotColdSpec(workload.LowLocality, wp)
				w.Clustered = true
				return w
			},
			WriteProbs: QuickWriteProbs,
		},
		// Section 6.1 ablation: merging concurrent page updates (PS-OO)
		// vs. disallowing them with a write token (PS-WT), under the
		// workload built to stress exactly this (Interleaved PRIVATE), with
		// PS and PS-AA as reference points.
		{
			ID: "x-wtoken", Title: "Merge (PS-OO) vs write token (PS-WT) on Interleaved PRIVATE",
			Spec:       func(wp float64) workload.Spec { return workload.InterleavedPrivateSpec(wp) },
			WriteProbs: StdWriteProbs,
			Protocols:  []core.Protocol{core.PS, core.PSOO, core.PSWT, core.PSAA},
		},
		{
			ID: "x-wtoken-hotcold", Title: "Merge vs write token on HOTCOLD low locality",
			Spec:       func(wp float64) workload.Spec { return workload.HotColdSpec(workload.LowLocality, wp) },
			WriteProbs: QuickWriteProbs,
			Protocols:  []core.Protocol{core.PS, core.PSOO, core.PSWT, core.PSAA},
		},
	}
}

// ClientScalingSweep builds the Section 5.6.2 client-scaling experiment:
// throughput vs. number of clients at a fixed write probability.
func ClientScalingSweep(writeProb float64, clients []int) []*Sweep {
	var sweeps []*Sweep
	for _, n := range clients {
		n := n
		sweeps = append(sweeps, &Sweep{
			ID:    fmt.Sprintf("x-clients-%d", n),
			Title: fmt.Sprintf("HOTCOLD low locality with %d clients, wp=%.2f", n, writeProb),
			Spec: func(wp float64) workload.Spec {
				w := workload.HotColdSpec(workload.LowLocality, wp)
				w.NumClients = n
				return w
			},
			WriteProbs: []float64{writeProb},
		})
	}
	return sweeps
}

// Find returns the sweep with the given id, or nil.
func Find(id string) *Sweep {
	for _, s := range Catalogue() {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// IDs returns the catalogue ids in order.
func IDs() []string {
	var ids []string
	for _, s := range Catalogue() {
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	return ids
}
