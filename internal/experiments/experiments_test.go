package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestCatalogueIsComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "x-locality1", "x-slownet", "x-clustered",
		"x-wtoken", "x-wtoken-hotcold",
	}
	for _, id := range want {
		if Find(id) == nil {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if len(Catalogue()) != len(want) {
		t.Fatalf("catalogue has %d entries, want %d", len(Catalogue()), len(want))
	}
}

func TestSpecsValidateAcrossAxis(t *testing.T) {
	for _, s := range Catalogue() {
		for _, wp := range s.WriteProbs {
			w := s.Spec(wp) // Spec construction validates internally on use
			w.Validate()
			if got := w.AvgObjectsPerTxn(); s.ID != "x-locality1" && s.ID != "fig11" &&
				!strings.HasPrefix(s.ID, "fig1") && math.Abs(got-120) > 1e-9 {
				t.Fatalf("%s: avg objects per txn = %v, want 120", s.ID, got)
			}
		}
	}
}

func TestPageWriteProb(t *testing.T) {
	if PageWriteProb(0, 12) != 0 {
		t.Fatal("p=0 should give 0")
	}
	if math.Abs(PageWriteProb(0.2, 12)-0.9313) > 0.001 {
		t.Fatalf("PageWriteProb(0.2,12) = %v", PageWriteProb(0.2, 12))
	}
	if math.Abs(PageWriteProb(0.2, 1)-0.2) > 1e-12 {
		t.Fatal("L=1 should be identity")
	}
	// Monotone in both arguments.
	if !(PageWriteProb(0.1, 4) < PageWriteProb(0.2, 4)) ||
		!(PageWriteProb(0.1, 4) < PageWriteProb(0.1, 12)) {
		t.Fatal("monotonicity violated")
	}
}

func TestQuickSweepRunsAndRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := Find("fig3")
	s.WriteProbs = []float64{0, 0.1}
	res := s.Run(QuickOpts(), nil)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, p := range core.Protocols {
			if row.Res[p].Throughput <= 0 {
				t.Fatalf("wp=%v %v: throughput %v", row.WriteProb, p, row.Res[p].Throughput)
			}
		}
	}
	txt := res.Render()
	for _, p := range core.Protocols {
		if !strings.Contains(txt, p.String()) {
			t.Fatalf("render missing %v:\n%s", p, txt)
		}
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "write_prob,PS,PS_ci,OS,OS_ci") {
		t.Fatalf("csv header: %s", strings.SplitN(csv, "\n", 2)[0])
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Fatalf("csv lines = %d", lines)
	}
	if d := res.Detail(); !strings.Contains(d, "msgs/c") {
		t.Fatal("detail missing metrics")
	}
}

func TestNormalizedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := Find("fig12")
	s.WriteProbs = []float64{0.1}
	res := s.Run(Opts{Seed: 1, Warmup: 3, Measure: 9, Batches: 3}, nil)
	v := res.value(res.Rows[0], core.PSAA)
	if math.Abs(v-1.0) > 1e-12 {
		t.Fatalf("PS-AA normalized to itself = %v, want 1", v)
	}
}

func TestFig5Rendering(t *testing.T) {
	txt := RenderFig5([]float64{0, 0.1, 0.2})
	if !strings.Contains(txt, "locality=12") {
		t.Fatalf("fig5 render:\n%s", txt)
	}
	csv := Fig5CSV([]float64{0, 0.1})
	if !strings.HasPrefix(csv, "write_prob,L1,L4,L12") {
		t.Fatalf("fig5 csv: %s", csv)
	}
}

func TestClientScalingSweepShape(t *testing.T) {
	sweeps := ClientScalingSweep(0.1, []int{1, 5, 10})
	if len(sweeps) != 3 {
		t.Fatalf("sweeps = %d", len(sweeps))
	}
	for i, n := range []int{1, 5, 10} {
		w := sweeps[i].Spec(0.1)
		if w.NumClients != n {
			t.Fatalf("sweep %d clients = %d", i, w.NumClients)
		}
		w.Validate()
	}
}
