package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// This file is the parallel sweep runner. Every (sweep, writeProb,
// protocol) cell is an independent, deterministic, single-goroutine
// simulation, so a sweep — or a whole catalogue of sweeps — fans out over
// a worker pool and reassembles into exactly the grid the serial path
// produces. Cell configs are built up-front on the calling goroutine (so
// Spec/Configure closures never run concurrently), results land in a
// pre-sized slice grid indexed by cell (never a shared map), and the Res
// maps are assembled after the pool drains.

// Cell identifies one simulation of a sweep run.
type Cell struct {
	SweepID   string
	WriteProb float64
	Proto     core.Protocol
}

// ID renders the cell as "fig3/PS-AA/wp=0.15".
func (c Cell) ID() string {
	return fmt.Sprintf("%s/%s/wp=%g", c.SweepID, c.Proto, c.WriteProb)
}

// CellError reports a simulation cell whose run panicked. The cell's slot
// in the result grid stays empty (rendered as NaN) while every other cell
// completes normally.
type CellError struct {
	Cell  Cell
	Panic any
	Stack []byte
}

func (e CellError) Error() string {
	return fmt.Sprintf("experiments: cell %s panicked: %v", e.Cell.ID(), e.Panic)
}

// SweepTiming records one sweep's share of a parallel run: cell count and
// the wall-clock from its first cell starting to its last cell completing
// (cells of other sweeps may interleave within that window).
type SweepTiming struct {
	ID    string
	Cells int
	Wall  time.Duration
}

// Hooks carries the optional observation callbacks of a parallel run.
// Both are serialized by the runner's mutex; neither needs its own
// locking, but implementations must not call back into the runner.
type Hooks struct {
	// Cell fires after every cell completes (or panics), with the number
	// of finished cells, the total, and the finished cell's label.
	Cell func(done, total int, msg string)
	// SweepDone fires when the last cell of a sweep completes.
	SweepDone func(t SweepTiming)
}

// Report is the outcome of RunSweeps.
type Report struct {
	Results []*Result     // one per input sweep, in input order
	Errors  []CellError   // cells that panicked, in completion order
	Timings []SweepTiming // one per input sweep, in input order
	Wall    time.Duration // total wall-clock of the pool
	Cells   int           // total cells executed
	Jobs    int           // worker count actually used
}

// jobs resolves the worker count: Opts.Jobs if positive, else GOMAXPROCS.
func (o Opts) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// cellWork is one prepared unit: a fully-built config plus its grid slot.
type cellWork struct {
	cell     Cell
	cfg      model.Config
	sweepIdx int
	rowIdx   int
	protoIdx int
}

// RunSweeps executes every cell of every sweep on a pool of o.Jobs
// workers (default runtime.GOMAXPROCS(0)). Results are deterministic and
// identical to Sweep.Run regardless of worker count: the same per-cell
// configs (seed included) are built in the same order, and each result
// lands in its own pre-assigned grid slot.
func RunSweeps(sweeps []*Sweep, o Opts, hooks Hooks) *Report {
	start := time.Now()

	// Build every cell config serially, in the serial path's order.
	var cells []cellWork
	protosOf := make([][]core.Protocol, len(sweeps))
	cellsLeft := make([]int, len(sweeps)) // per-sweep unfinished count
	for si, s := range sweeps {
		protos := s.Protocols
		if protos == nil {
			protos = core.Protocols
		}
		protosOf[si] = protos
		for ri, wp := range s.WriteProbs {
			for pi, proto := range protos {
				cells = append(cells, cellWork{
					cell:     Cell{SweepID: s.ID, WriteProb: wp, Proto: proto},
					cfg:      s.cellConfig(wp, proto, o),
					sweepIdx: si,
					rowIdx:   ri,
					protoIdx: pi,
				})
			}
		}
		cellsLeft[si] = len(s.WriteProbs) * len(protos)
	}

	// grid[sweep][row][proto]; each worker writes only its own slot.
	grid := make([][][]*model.Results, len(sweeps))
	for si, s := range sweeps {
		grid[si] = make([][]*model.Results, len(s.WriteProbs))
		for ri := range grid[si] {
			grid[si][ri] = make([]*model.Results, len(protosOf[si]))
		}
	}

	report := &Report{
		Timings: make([]SweepTiming, len(sweeps)),
		Cells:   len(cells),
		Jobs:    o.jobs(),
	}
	for si, s := range sweeps {
		report.Timings[si] = SweepTiming{ID: s.ID, Cells: cellsLeft[si]}
	}

	var (
		mu      sync.Mutex
		next    atomic.Int64
		done    int
		wg      sync.WaitGroup
		startAt = make([]time.Time, len(sweeps)) // first-cell start per sweep
	)
	workers := report.Jobs
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(cells) {
					return
				}
				c := &cells[i]
				mu.Lock()
				if startAt[c.sweepIdx].IsZero() {
					startAt[c.sweepIdx] = time.Now()
				}
				mu.Unlock()
				res, cellErr := runCell(c)
				grid[c.sweepIdx][c.rowIdx][c.protoIdx] = res

				mu.Lock()
				done++
				if cellErr != nil {
					report.Errors = append(report.Errors, *cellErr)
				}
				cellsLeft[c.sweepIdx]--
				if cellsLeft[c.sweepIdx] == 0 {
					report.Timings[c.sweepIdx].Wall = time.Since(startAt[c.sweepIdx])
					if hooks.SweepDone != nil {
						hooks.SweepDone(report.Timings[c.sweepIdx])
					}
				}
				if hooks.Cell != nil {
					hooks.Cell(done, len(cells), c.cell.ID())
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	report.Wall = time.Since(start)

	// Assemble the per-sweep Results exactly as the serial path does.
	report.Results = make([]*Result, len(sweeps))
	for si, s := range sweeps {
		out := &Result{Sweep: s, Protocols: protosOf[si]}
		for ri, wp := range s.WriteProbs {
			row := Row{WriteProb: wp, Res: make(map[core.Protocol]*model.Results)}
			for pi, proto := range protosOf[si] {
				if r := grid[si][ri][pi]; r != nil {
					row.Res[proto] = r
				}
			}
			out.Rows = append(out.Rows, row)
		}
		report.Results[si] = out
	}
	return report
}

// runCell executes one simulation, converting a panic into a CellError.
func runCell(c *cellWork) (res *model.Results, err *CellError) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &CellError{Cell: c.cell, Panic: r, Stack: debug.Stack()}
		}
	}()
	return model.Run(c.cfg), nil
}

// cellConfig builds the config for one cell — shared verbatim by the
// serial and parallel paths so both simulate identical systems.
func (s *Sweep) cellConfig(wp float64, proto core.Protocol, o Opts) model.Config {
	w := s.Spec(wp)
	cfg := model.DefaultConfig(proto, w)
	cfg.Seed = o.Seed
	cfg.Warmup = o.Warmup
	cfg.Measure = o.Measure
	cfg.Batches = o.Batches
	if s.Configure != nil {
		s.Configure(&cfg)
	}
	return cfg
}

// RunParallel executes the sweep on a worker pool and returns its result
// plus any per-cell panics. progress may be nil.
func (s *Sweep) RunParallel(o Opts, progress func(done, total int, msg string)) (*Result, []CellError) {
	rep := RunSweeps([]*Sweep{s}, o, Hooks{Cell: progress})
	return rep.Results[0], rep.Errors
}
