package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlightRecorderDump(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(dir, 4)

	tr := NewTracer(16)
	tr.SetEnabled(true)
	tr.Emit(EvCommit, 7, 1, 3, 0, 0)
	heat := NewHeat(HeatOptions{})
	heat.SetEnabled(true)
	heat.RecordAccess(1, 3, 0, true)
	sp := NewSpans(nil)
	sp.Observe(StageAck, 55, 7)
	reg := NewRegistry()
	reg.Counter("bb_total", "test").Add(9)

	path, err := f.Dump("test reason: injected", tr, heat, sp, reg)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump landed in %s", path)
	}

	// Every line must parse; the four sections plus header must appear.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	var header struct {
		Type   string `json:"type"`
		Format int    `json:"format"`
		Reason string `json:"reason"`
		UnixNs int64  `json:"unix_ns"`
	}
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		typ, _ := line["type"].(string)
		if types[typ]++; typ == "header" {
			if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, want := range []string{"header", "trace", "heat", "spans", "metrics"} {
		if types[want] == 0 {
			t.Errorf("blackbox missing %q section (got %v)", want, types)
		}
	}
	if header.Format != 1 || header.Reason != "test reason: injected" || header.UnixNs == 0 {
		t.Fatalf("header = %+v", header)
	}
	if !strings.Contains(string(data), "bb_total 9") {
		t.Error("metrics section lost the exposition text")
	}

	// No tmp files left behind.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("tmp files left: %v", tmps)
	}
}

func TestFlightRecorderNilSectionsAndNilRecorder(t *testing.T) {
	var f *FlightRecorder
	if path, err := f.Dump("x", nil, nil, nil, nil); err != nil || path != "" {
		t.Fatalf("nil recorder dump = %q, %v", path, err)
	}
	if f.Dir() != "" {
		t.Fatal("nil Dir")
	}
	if NewFlightRecorder("", 3) != nil {
		t.Fatal("empty dir must return nil recorder")
	}

	dir := t.TempDir()
	fr := NewFlightRecorder(dir, 2)
	path, err := fr.Dump("all sections nil", nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("want header-only dump, got %d lines", len(lines))
	}
	var hdr map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderPrune(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(dir, 3)
	var last string
	for i := 0; i < 7; i++ {
		p, err := f.Dump("prune test", nil, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = p
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "blackbox-*.jsonl"))
	if len(matches) != 3 {
		t.Fatalf("retained %d dumps, want 3: %v", len(matches), matches)
	}
	// The newest dump survives pruning.
	found := false
	for _, m := range matches {
		if m == last {
			found = true
		}
	}
	if !found {
		t.Fatalf("newest dump %s was pruned; kept %v", last, matches)
	}
}
