package obs

import "sort"

// This file is the pure reclustering planner: it turns a HeatSnapshot's
// false-sharing suspects into a bounded, deterministic list of object
// migrations. It knows nothing about the live server — the live planner
// goroutine (internal/live) maps each MoveGroup to concrete destination
// addresses and drives the moves as system transactions; the simulator
// applies the same groups as a layout remap. Keeping the policy here
// makes it unit-testable and byte-for-byte reproducible from a snapshot.

// MoveGroup is one planned migration batch: the slots a single writer
// (client) should vacate from a false-sharing suspect page so that the
// page's remaining residents all belong to other writers. Slots are
// ascending and are exclusively written by Writer in the snapshot's
// evidence window (slots two writers both touched are never moved — that
// is true sharing, not false sharing).
type MoveGroup struct {
	Page   int32    `json:"page"`
	Writer int32    `json:"writer"`
	Slots  []uint16 `json:"slots"`
	Score  float64  `json:"score"`
}

// PlanOptions bounds a planning round. Zero values select defaults.
type PlanOptions struct {
	// Threshold is the minimum decayed false-sharing score for a page to
	// be planned (0: use the snapshot's own suspect threshold).
	Threshold float64
	// MaxMoves caps the total objects moved per round (default 64) — the
	// pacing knob that keeps migration traffic a background trickle.
	MaxMoves int
	// UserPages, when positive, excludes pages at or above it from being
	// sources: those are spare (destination) pages owned by the
	// reclusterer itself, and re-splitting them would thrash.
	UserPages int32
	// ObjsPerPage is the page capacity. Slot identities above 63 collapse
	// to bit 63 in the heat evidence, so when ObjsPerPage > 64 any page
	// whose evidence uses bit 63 is skipped as ambiguous rather than
	// risking a move of the wrong object.
	ObjsPerPage int
	// Exclude, when set, drops individual slots from planned groups before
	// MaxMoves is charged. The live planner passes its relocation-table
	// lookup here: heat evidence outlives a migration, so without the
	// filter stale already-moved slots eat the whole budget and paced
	// rounds stop making progress before the page is fully split.
	Exclude func(page int32, slot uint16) bool
}

func (o *PlanOptions) defaults(sn *HeatSnapshot) {
	if o.Threshold <= 0 {
		o.Threshold = sn.Threshold
	}
	if o.MaxMoves <= 0 {
		o.MaxMoves = 64
	}
}

// PlanMoves derives migration groups from a snapshot's false-sharing
// suspects. Policy, per suspect page at or above the threshold with
// concrete writer evidence:
//
//   - the writer with the most exclusively-written slots keeps the page
//     (moving the majority resident would maximize migration cost for the
//     same contention win; ties break toward the lower writer id so plans
//     are deterministic),
//   - every other writer gets one MoveGroup with the slots only it wrote,
//   - slots written by two or more writers stay put (true sharing), and
//   - the round stops when MaxMoves total slots are planned.
//
// The result is ordered by descending score (then ascending page, then
// ascending writer), so the hottest pages are split first when the cap
// truncates a round.
func PlanMoves(sn *HeatSnapshot, opts PlanOptions) []MoveGroup {
	if sn == nil {
		return nil
	}
	opts.defaults(sn)

	suspects := make([]FSSuspect, 0, len(sn.FalseSharing))
	for _, s := range sn.FalseSharing {
		if s.Score < opts.Threshold || len(s.WriterSlots) < 2 {
			continue
		}
		if opts.UserPages > 0 && s.Page >= opts.UserPages {
			continue
		}
		if opts.ObjsPerPage > 64 && bit63Used(s.WriterSlots) {
			continue
		}
		suspects = append(suspects, s)
	}
	sort.Slice(suspects, func(i, j int) bool {
		if suspects[i].Score != suspects[j].Score {
			return suspects[i].Score > suspects[j].Score
		}
		return suspects[i].Page < suspects[j].Page
	})

	var out []MoveGroup
	budget := opts.MaxMoves
	for _, s := range suspects {
		if budget <= 0 {
			break
		}
		groups := splitPage(s)
		for _, g := range groups {
			if budget <= 0 {
				break
			}
			if opts.Exclude != nil {
				kept := make([]uint16, 0, len(g.Slots))
				for _, slot := range g.Slots {
					if !opts.Exclude(g.Page, slot) {
						kept = append(kept, slot)
					}
				}
				g.Slots = kept
			}
			if len(g.Slots) == 0 {
				continue
			}
			if len(g.Slots) > budget {
				g.Slots = g.Slots[:budget]
			}
			budget -= len(g.Slots)
			out = append(out, g)
		}
	}
	return out
}

// PlannedObjects returns the total slots across groups (the round's move
// count).
func PlannedObjects(groups []MoveGroup) int {
	n := 0
	for _, g := range groups {
		n += len(g.Slots)
	}
	return n
}

func bit63Used(writers map[int32]uint64) bool {
	for _, m := range writers {
		if m&(1<<63) != 0 {
			return true
		}
	}
	return false
}

// splitPage builds the per-writer move groups for one suspect: exclusive
// masks per writer, keeper = largest exclusive set (ties to lower id),
// everyone else moves out, ordered by ascending writer id.
func splitPage(s FSSuspect) []MoveGroup {
	writers := make([]int32, 0, len(s.WriterSlots))
	for w := range s.WriterSlots {
		writers = append(writers, w)
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })

	exclusive := make(map[int32]uint64, len(writers))
	for _, w := range writers {
		mask := s.WriterSlots[w]
		for _, other := range writers {
			if other != w {
				mask &^= s.WriterSlots[other]
			}
		}
		exclusive[w] = mask
	}

	keeper := writers[0]
	for _, w := range writers[1:] {
		if popcount(exclusive[w]) > popcount(exclusive[keeper]) {
			keeper = w
		}
	}

	var out []MoveGroup
	for _, w := range writers {
		if w == keeper {
			continue
		}
		slots := maskSlots(exclusive[w])
		if len(slots) == 0 {
			continue
		}
		out = append(out, MoveGroup{Page: s.Page, Writer: w, Slots: slots, Score: s.Score})
	}
	return out
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

func maskSlots(m uint64) []uint16 {
	var out []uint16
	for b := 0; b < 64; b++ {
		if m&(1<<uint(b)) != 0 {
			out = append(out, uint16(b))
		}
	}
	return out
}
