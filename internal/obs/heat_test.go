package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestHeatDisabledRecordsNothing(t *testing.T) {
	h := NewHeat(HeatOptions{})
	h.RecordAccess(1, 10, 2, true)
	h.RecordBlock(10)
	sn := h.Snapshot()
	if sn.Reads+sn.Writes+sn.Blocks != 0 || len(sn.TopPages) != 0 {
		t.Fatalf("disabled collector recorded samples: %+v", sn)
	}
	var nilHeat *Heat
	nilHeat.RecordAccess(1, 10, 2, true) // nil-safe
	nilHeat.Rotate()
	if s := nilHeat.Snapshot(); s == nil || s.Enabled {
		t.Fatal("nil snapshot")
	}
}

func TestHeatTopKOrdering(t *testing.T) {
	h := NewHeat(HeatOptions{TopK: 4})
	h.SetEnabled(true)
	// Page 7 hottest, page 3 second, read/write split preserved.
	for i := 0; i < 100; i++ {
		h.RecordAccess(1, 7, int32(i%8), i%2 == 0)
	}
	for i := 0; i < 50; i++ {
		h.RecordAccess(1, 3, 0, false)
	}
	h.RecordAccess(1, 9, 1, true)
	sn := h.Snapshot()
	if len(sn.TopPages) == 0 || sn.TopPages[0].Page != 7 {
		t.Fatalf("top page = %+v, want page 7 first", sn.TopPages)
	}
	if sn.TopPages[0].Reads != 50 || sn.TopPages[0].Writes != 50 {
		t.Fatalf("page 7 split = %d/%d, want 50/50", sn.TopPages[0].Reads, sn.TopPages[0].Writes)
	}
	if sn.TopPages[1].Page != 3 || sn.TopPages[1].Reads != 50 || sn.TopPages[1].Writes != 0 {
		t.Fatalf("second page = %+v, want page 3 reads=50", sn.TopPages[1])
	}
	if sn.Reads != 100 || sn.Writes != 51 {
		t.Fatalf("totals = %d/%d", sn.Reads, sn.Writes)
	}
}

func TestSketchEvictionBound(t *testing.T) {
	s := newSketch(4)
	// Heavy hitter plus a stream of singletons churning the other slots.
	for i := 0; i < 100; i++ {
		s.observe(42, true)
		s.observe(int64(1000+i), false)
	}
	e, ok := s.idx[42]
	if !ok {
		t.Fatal("heavy hitter evicted")
	}
	ent := &s.ents[e]
	if ent.writes != 100 {
		t.Fatalf("heavy hitter writes = %d (err %d), want 100 exact", ent.writes, ent.errc)
	}
	// Space-saving invariant: estimated count never below the true count.
	if ent.total() < 100 {
		t.Fatalf("estimate %d below true count", ent.total())
	}
	if len(s.ents) != 4 || len(s.idx) != 4 {
		t.Fatalf("capacity violated: %d entries, %d index", len(s.ents), len(s.idx))
	}
}

func TestHeatEpochDecay(t *testing.T) {
	h := NewHeat(HeatOptions{TopK: 8})
	h.SetEnabled(true)
	for i := 0; i < 64; i++ {
		h.RecordAccess(1, 5, 0, false)
	}
	for rot := 0; rot < 6; rot++ {
		h.Rotate()
	}
	// 64 halved six times = 1; entry still tracked.
	sn := h.Snapshot()
	if len(sn.TopPages) != 1 || sn.TopPages[0].Count != 1 {
		t.Fatalf("after 6 decays: %+v", sn.TopPages)
	}
	h.Rotate()
	if sn := h.Snapshot(); len(sn.TopPages) != 0 {
		t.Fatalf("entry not evicted at zero: %+v", sn.TopPages)
	}
	if h.Epochs() != 7 {
		t.Fatalf("epochs = %d", h.Epochs())
	}
}

func TestFalseSharingScoring(t *testing.T) {
	h := NewHeat(HeatOptions{})
	h.SetEnabled(true)
	// Page 10: clients 1 and 2 write disjoint slots — pure false sharing.
	// Page 20: clients 1 and 2 both write slot 0 — true sharing.
	// Page 30: only client 1 writes — no evidence.
	for i := 0; i < 10; i++ {
		h.RecordAccess(1, 10, 0, true)
		h.RecordAccess(2, 10, 1, true)
		h.RecordAccess(1, 20, 0, true)
		h.RecordAccess(2, 20, 0, true)
		h.RecordAccess(1, 30, int32(i%4), true)
	}

	// The live (pre-rotation) epoch already scores.
	sn := h.Snapshot()
	if got := sn.Score(10); got != 1.0 {
		t.Fatalf("live epoch score(10) = %v, want 1.0", got)
	}
	if got := sn.Score(20); got != 0 {
		t.Fatalf("live epoch score(20) = %v, want 0", got)
	}

	h.Rotate() // decayed = 0/2 + 1.0/2 = 0.5
	sn = h.Snapshot()
	if got := sn.Score(10); got != 0.5 {
		t.Fatalf("decayed score(10) = %v, want 0.5", got)
	}
	if got := sn.Score(30); got != 0 {
		t.Fatalf("single-writer page scored: %v", got)
	}
	sus := sn.Suspects()
	if len(sus) != 1 || sus[0].Page != 10 || sus[0].Writers != 2 {
		t.Fatalf("suspects = %+v, want page 10 with 2 writers", sus)
	}

	// A second interleaved epoch raises the score toward 1; idle epochs
	// then halve it until the page drops off.
	for i := 0; i < 4; i++ {
		h.RecordAccess(1, 10, 0, true)
		h.RecordAccess(2, 10, 1, true)
	}
	h.Rotate()
	if got := h.Snapshot().Score(10); got != 0.75 {
		t.Fatalf("two-epoch score = %v, want 0.75", got)
	}
	for i := 0; i < 8; i++ {
		h.Rotate()
	}
	if got := h.Snapshot().Score(10); got != 0 {
		t.Fatalf("idle decay left score %v", got)
	}
}

func TestFalseSharingClientKeying(t *testing.T) {
	// One client writing disjoint slots across "transactions" must NOT
	// score: writer identity is the client, so a private working set
	// never implicates its own pages.
	h := NewHeat(HeatOptions{})
	h.SetEnabled(true)
	for slot := int32(0); slot < 8; slot++ {
		h.RecordAccess(7, 100, slot, true)
	}
	h.Rotate()
	if got := h.Snapshot().Score(100); got != 0 {
		t.Fatalf("single client scored %v on its private page", got)
	}
}

func TestHeatConcurrentRecording(t *testing.T) {
	h := NewHeat(HeatOptions{TopK: 16})
	h.SetEnabled(true)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.RecordAccess(int32(g), int32(i%64), int32(i%20), i%3 == 0)
				if i%16 == 0 {
					h.RecordBlock(int32(i % 64))
				}
				if i%500 == 0 {
					h.Rotate()
				}
			}
		}(g)
	}
	wg.Wait()
	sn := h.Snapshot()
	recorded := sn.Reads + sn.Writes
	if recorded != 16000 {
		t.Fatalf("recorded %d accesses, want 16000", recorded)
	}
	// Dropped samples are allowed (TryLock discipline) but must be the
	// complement of what the sketches saw, not silently lost.
	t.Logf("dropped=%d blocks=%d", sn.Dropped, sn.Blocks)
}

func TestHeatMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	h := NewHeat(HeatOptions{})
	h.RegisterMetrics(reg)
	h.SetEnabled(true)
	// Two samples per object so the rotation's halving decay leaves the
	// sketch entries alive for the tracked-* gauges.
	for i := 0; i < 2; i++ {
		h.RecordAccess(1, 2, 3, true)
		h.RecordAccess(1, 2, 4, false)
	}
	h.RecordBlock(2)
	h.Rotate()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`oodb_heat_accesses_total{op="read"} 2`,
		`oodb_heat_accesses_total{op="write"} 2`,
		"oodb_heat_blocks_total 1",
		"oodb_heat_epochs_total 1",
		"oodb_heat_enabled 1",
		"oodb_heat_tracked_pages 1",
		"oodb_heat_tracked_objects 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestHeatWriteForms(t *testing.T) {
	h := NewHeat(HeatOptions{})
	h.SetEnabled(true)
	h.RecordAccess(1, 10, 0, true)
	h.RecordAccess(2, 10, 1, true)
	var human, js strings.Builder
	if err := h.WriteHuman(&human); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(human.String(), "top pages") || !strings.Contains(human.String(), "false-sharing") {
		t.Fatalf("human form:\n%s", human.String())
	}
	if !strings.Contains(js.String(), `"top_pages"`) {
		t.Fatalf("json form:\n%s", js.String())
	}
}
