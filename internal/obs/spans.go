package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
)

// CommitStage names one stage of the live commit path. The stages tile a
// commit's server-side life: queue (receive to commit processing), WAL
// encode (off-lock), lock wait (shard locks + installMu), WAL append,
// install (payload copies into the store), fsync wait (group-commit
// durability), and ack (post-durability engine finish).
type CommitStage uint8

const (
	StageQueue CommitStage = iota
	StageEncode
	StageLockWait
	StageAppend
	StageInstall
	StageSyncWait
	StageAck
	NumCommitStages
)

var commitStageNames = [NumCommitStages]string{
	"queue", "encode", "lock-wait", "append", "install", "fsync-wait", "ack",
}

func (st CommitStage) String() string {
	if st >= NumCommitStages {
		return "CommitStage(?)"
	}
	return commitStageNames[st]
}

// Spans records per-stage commit latencies into one histogram per stage
// (`oodb_commit_stage_ns{stage="..."}` when built on a registry), with a
// per-bucket exemplar transaction id: the last transaction that landed in
// a latency class names itself, so a p99 bucket links straight to a
// `/trace?txn=` lookup. Recording is two atomic adds plus one atomic
// store; there is no enable switch because the stages are timed by the
// commit path anyway.
type Spans struct {
	hists     [NumCommitStages]*Histogram
	exemplars [NumCommitStages][HistBuckets]atomic.Int64
}

// NewSpans returns a Spans recording into reg's
// oodb_commit_stage_ns{stage=...} histograms (private histograms when reg
// is nil).
func NewSpans(reg *Registry) *Spans {
	sp := &Spans{}
	for st := CommitStage(0); st < NumCommitStages; st++ {
		if reg != nil {
			sp.hists[st] = reg.Histogram(
				Labeled("oodb_commit_stage_ns", "stage", commitStageNames[st]),
				"commit latency by pipeline stage, ns")
		} else {
			sp.hists[st] = &Histogram{}
		}
	}
	return sp
}

// Observe records one stage latency with txn as the bucket's exemplar.
func (sp *Spans) Observe(st CommitStage, ns int64, txn int64) {
	if sp == nil || st >= NumCommitStages {
		return
	}
	sp.hists[st].Observe(ns)
	sp.exemplars[st][bucketIndex(ns)].Store(txn)
}

// StageSpan is one stage's aggregate view.
type StageSpan struct {
	Stage       string  `json:"stage"`
	Count       int64   `json:"count"`
	MeanNs      float64 `json:"mean_ns"`
	P50Ns       int64   `json:"p50_ns"`
	P90Ns       int64   `json:"p90_ns"`
	P99Ns       int64   `json:"p99_ns"`
	MaxNs       int64   `json:"max_ns"`
	ExemplarTxn int64   `json:"p99_exemplar_txn"` // a txn from the p99 latency class (0: none)
}

// SpansSnapshot is the full per-stage view.
type SpansSnapshot struct {
	Stages []StageSpan `json:"stages"`
}

// Snapshot reads every stage. The exemplar is taken from the bucket where
// the cumulative count crosses p99 (walking down to the nearest populated
// bucket), so it names a real slow transaction, not an average one.
func (sp *Spans) Snapshot() *SpansSnapshot {
	out := &SpansSnapshot{}
	if sp == nil {
		return out
	}
	for st := CommitStage(0); st < NumCommitStages; st++ {
		s := sp.hists[st].Snapshot()
		span := StageSpan{
			Stage: commitStageNames[st], Count: s.Count, MeanNs: s.Mean(),
			P50Ns: s.Quantile(0.50), P90Ns: s.Quantile(0.90), P99Ns: s.Quantile(0.99),
			MaxNs: s.Max,
		}
		if s.Count > 0 {
			target := int64(0.99 * float64(s.Count))
			if target < 1 {
				target = 1
			}
			var cum int64
			p99b := 0
			for i := 0; i < HistBuckets; i++ {
				cum += s.Counts[i]
				if cum >= target {
					p99b = i
					break
				}
			}
			for i := p99b; i >= 0; i-- {
				if txn := sp.exemplars[st][i].Load(); txn != 0 {
					span.ExemplarTxn = txn
					break
				}
			}
		}
		out.Stages = append(out.Stages, span)
	}
	return out
}

// WriteJSON writes the snapshot as one JSON object.
func (sp *Spans) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sp.Snapshot())
}

// WriteHuman writes the snapshot as a per-stage table.
func (sp *Spans) WriteHuman(w io.Writer) error {
	sn := sp.Snapshot()
	if _, err := fmt.Fprintf(w, "%-12s %10s %12s %10s %10s %10s %12s %14s\n",
		"stage", "count", "mean-ns", "p50-ns", "p90-ns", "p99-ns", "max-ns", "p99-txn"); err != nil {
		return err
	}
	for _, s := range sn.Stages {
		if _, err := fmt.Fprintf(w, "%-12s %10d %12.0f %10d %10d %10d %12d %14d\n",
			s.Stage, s.Count, s.MeanNs, s.P50Ns, s.P90Ns, s.P99Ns, s.MaxNs, s.ExemplarTxn); err != nil {
			return err
		}
	}
	return nil
}
