package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Heat is the access-heat and contention collector: per-shard space-saving
// top-K sketches over page and object accesses (read/write split), a
// sketch of contended (block-producing) pages, and a windowed
// false-sharing detector scoring pages whose distinct writers touch
// disjoint resident objects.
//
// Record-path discipline mirrors the Tracer's: disabled, RecordAccess is
// one atomic load; enabled, it hashes the page to a collector shard and
// TryLocks it — on contention the sample is dropped and counted, never
// blocking the data plane. Epoch rotation (Rotate) halves every sketch
// count and folds the epoch's false-sharing scores into a decayed score,
// so hotspots and suspects age out instead of accumulating forever.
type Heat struct {
	enabled atomic.Bool
	reads   atomic.Int64
	writes  atomic.Int64
	blocks  atomic.Int64
	dropped atomic.Int64 // samples lost to record-path contention
	skipped atomic.Int64 // writer sets not tracked (per-epoch page cap)
	epochs  atomic.Int64

	opts   HeatOptions
	shards []*heatShard
	mask   uint32
}

// HeatOptions sizes the collector. Zero values select defaults.
type HeatOptions struct {
	// Shards is the number of independently locked collector shards
	// (rounded down to a power of two; default 8).
	Shards int
	// TopK is how many entries Snapshot reports per category. Each shard's
	// sketch keeps 4*TopK candidates, so a key is guaranteed to be
	// retained once its count exceeds N/(4*TopK) of its shard's stream
	// (the space-saving bound). Default 32.
	TopK int
	// FSPages caps the pages per shard whose writer sets are tracked
	// within one epoch (default 128); pages beyond the cap are counted in
	// oodb_heat_fs_skipped_total rather than silently ignored.
	FSPages int
	// FSThreshold is the decayed false-sharing score at or above which a
	// page is reported as a suspect (default 0.5).
	FSThreshold float64
}

func (o *HeatOptions) defaults() {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	for o.Shards&(o.Shards-1) != 0 {
		o.Shards &= o.Shards - 1
	}
	if o.TopK <= 0 {
		o.TopK = 32
	}
	if o.FSPages <= 0 {
		o.FSPages = 128
	}
	if o.FSThreshold <= 0 {
		o.FSThreshold = 0.5
	}
}

// heatShard is one collector partition: sketches and the false-sharing
// window for the pages that hash to it, under one mutex taken with
// TryLock on the record path and Lock on the (rare) rotate/snapshot path.
type heatShard struct {
	mu      sync.Mutex
	pages   sketch
	objs    sketch
	blocked sketch
	// fs maps page -> writer -> bitmask of slots written this epoch
	// (slot >= 63 collapses to bit 63, which can only under-report
	// disjointness, never invent it).
	fs map[int32]map[int32]uint64
	// prevFS is the previous epoch's writer sets, retained one epoch so a
	// snapshot taken just after a rotation still carries concrete
	// writer->slot evidence for the reclustering planner.
	prevFS map[int32]map[int32]uint64
	// fsScore maps page -> decayed false-sharing state across epochs.
	fsScore map[int32]*fsState
}

// fsState is a page's decayed false-sharing score: each Rotate folds the
// finished epoch's score in at half weight (score = old/2 + epoch/2, with
// 0 for epochs the page drew no multi-writer traffic), so a page must
// keep exhibiting disjoint writers to stay a suspect.
type fsState struct {
	score   float64
	writers int // writers seen in the most recent scored epoch
	epochs  int // epochs in which the page scored
}

// sketchEntry is one space-saving counter. reads/writes are exact since
// admission; errc is the admission overestimate (the evicted minimum), so
// the true count is in [reads+writes, reads+writes+errc].
type sketchEntry struct {
	key    int64
	reads  int64
	writes int64
	errc   int64
}

func (e *sketchEntry) total() int64 { return e.reads + e.writes + e.errc }

// sketch is a space-saving (Metwally et al.) top-K sketch: at most cap
// keys; a new key arriving at capacity evicts the minimum-count entry and
// inherits its count as error bound.
type sketch struct {
	idx  map[int64]int32
	ents []sketchEntry
}

func newSketch(capacity int) sketch {
	return sketch{idx: make(map[int64]int32, capacity), ents: make([]sketchEntry, 0, capacity)}
}

func (s *sketch) observe(key int64, write bool) {
	if i, ok := s.idx[key]; ok {
		if write {
			s.ents[i].writes++
		} else {
			s.ents[i].reads++
		}
		return
	}
	e := sketchEntry{key: key}
	if write {
		e.writes = 1
	} else {
		e.reads = 1
	}
	if len(s.ents) < cap(s.ents) {
		s.idx[key] = int32(len(s.ents))
		s.ents = append(s.ents, e)
		return
	}
	// At capacity: replace the minimum-count entry, inheriting its count
	// as this key's overestimation error.
	min := 0
	for i := 1; i < len(s.ents); i++ {
		if s.ents[i].total() < s.ents[min].total() {
			min = i
		}
	}
	e.errc = s.ents[min].total()
	delete(s.idx, s.ents[min].key)
	s.ents[min] = e
	s.idx[key] = int32(min)
}

// decay halves every count and evicts entries that reach zero.
func (s *sketch) decay() {
	kept := s.ents[:0]
	for i := range s.ents {
		e := &s.ents[i]
		e.reads >>= 1
		e.writes >>= 1
		e.errc >>= 1
		if e.total() > 0 {
			kept = append(kept, *e)
		} else {
			delete(s.idx, e.key)
		}
	}
	s.ents = kept
	for i := range s.ents {
		s.idx[s.ents[i].key] = int32(i)
	}
}

// NewHeat returns a disabled collector.
func NewHeat(opts HeatOptions) *Heat {
	opts.defaults()
	h := &Heat{opts: opts, mask: uint32(opts.Shards - 1)}
	h.shards = make([]*heatShard, opts.Shards)
	scap := 4 * opts.TopK
	for i := range h.shards {
		h.shards[i] = &heatShard{
			pages:   newSketch(scap),
			objs:    newSketch(scap),
			blocked: newSketch(scap),
			fs:      make(map[int32]map[int32]uint64),
			fsScore: make(map[int32]*fsState),
		}
	}
	return h
}

// SetEnabled switches collection on or off at runtime (nil-safe).
func (h *Heat) SetEnabled(on bool) {
	if h != nil {
		h.enabled.Store(on)
	}
}

// Enabled reports whether samples are being recorded.
func (h *Heat) Enabled() bool { return h != nil && h.enabled.Load() }

// Dropped returns the samples lost to record-path contention.
func (h *Heat) Dropped() int64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// Epochs returns the number of completed Rotate calls.
func (h *Heat) Epochs() int64 {
	if h == nil {
		return 0
	}
	return h.epochs.Load()
}

func (h *Heat) shardOf(page int32) *heatShard {
	return h.shards[(uint32(page)*2654435761>>16)&h.mask]
}

func objKey(page, slot int32) int64 {
	return int64(page)<<16 | int64(uint16(slot))
}

// RecordAccess samples one object access: writer identity is the CLIENT,
// not the transaction — under a private working set one client's
// successive transactions legitimately write disjoint slot subsets of its
// own pages, and txn-keyed scoring would flag every private page; the
// paper's Section 5 pathology is distinct *workstations* co-resident on a
// page (see DESIGN.md §15).
func (h *Heat) RecordAccess(client, page, slot int32, write bool) {
	if h == nil || !h.enabled.Load() {
		return
	}
	if write {
		h.writes.Add(1)
	} else {
		h.reads.Add(1)
	}
	sh := h.shardOf(page)
	if !sh.mu.TryLock() {
		h.dropped.Add(1)
		return
	}
	sh.pages.observe(int64(page), write)
	sh.objs.observe(objKey(page, slot), write)
	if write {
		wm := sh.fs[page]
		if wm == nil {
			if len(sh.fs) >= h.opts.FSPages {
				h.skipped.Add(1)
				sh.mu.Unlock()
				return
			}
			wm = make(map[int32]uint64, 2)
			sh.fs[page] = wm
		}
		bit := uint(slot)
		if bit > 63 {
			bit = 63
		}
		wm[client] |= 1 << bit
	}
	sh.mu.Unlock()
}

// RecordBlock samples one lock conflict (an engine EvBlock) on page.
func (h *Heat) RecordBlock(page int32) {
	if h == nil || !h.enabled.Load() {
		return
	}
	h.blocks.Add(1)
	sh := h.shardOf(page)
	if !sh.mu.TryLock() {
		h.dropped.Add(1)
		return
	}
	sh.blocked.observe(int64(page), true)
	sh.mu.Unlock()
}

// fsEpochScore scores one epoch's writer set: the fraction of writer
// pairs whose written-slot masks are disjoint (1.0 = every pair of
// writers touched non-overlapping objects — pure false sharing). Pages
// with fewer than two writers return -1 (no evidence either way).
func fsEpochScore(writers map[int32]uint64) float64 {
	if len(writers) < 2 {
		return -1
	}
	masks := make([]uint64, 0, len(writers))
	for _, m := range writers {
		masks = append(masks, m)
	}
	disjoint, total := 0, 0
	for i := 0; i < len(masks); i++ {
		for j := i + 1; j < len(masks); j++ {
			total++
			if masks[i]&masks[j] == 0 {
				disjoint++
			}
		}
	}
	return float64(disjoint) / float64(total)
}

// Rotate closes the current epoch: every sketch count halves (entries
// reaching zero are evicted), each page's epoch false-sharing score folds
// into its decayed score at half weight, and the per-epoch writer sets
// reset. Call it periodically (the live server runs a ticker) or at
// deterministic boundaries (the simulator rotates at measurement start
// and end). Nil-safe.
func (h *Heat) Rotate() {
	if h == nil {
		return
	}
	for _, sh := range h.shards {
		sh.mu.Lock()
		sh.pages.decay()
		sh.objs.decay()
		sh.blocked.decay()
		for page, writers := range sh.fs {
			score := fsEpochScore(writers)
			if score < 0 {
				continue
			}
			st := sh.fsScore[page]
			if st == nil {
				st = &fsState{}
				sh.fsScore[page] = st
			}
			st.score = st.score/2 + score/2
			st.writers = len(writers)
			st.epochs++
		}
		for page, st := range sh.fsScore {
			if _, scored := sh.fs[page]; !scored {
				st.score /= 2
			}
			if st.score < 0.01 {
				delete(sh.fsScore, page)
			}
		}
		sh.prevFS = sh.fs
		sh.fs = make(map[int32]map[int32]uint64)
		sh.mu.Unlock()
	}
	h.epochs.Add(1)
}

// HeatEntry is one sketched key in a snapshot. Count is the space-saving
// estimate (Reads+Writes exact since admission, plus at most Err inherited
// from the entry evicted at admission).
type HeatEntry struct {
	Page   int32 `json:"page"`
	Slot   int32 `json:"slot"` // -1 for page-grain entries
	Reads  int64 `json:"reads"`
	Writes int64 `json:"writes"`
	Count  int64 `json:"count"`
	Err    int64 `json:"err"`
}

// FSSuspect is one page's decayed false-sharing score. WriterSlots is the
// concrete evidence behind the score: for each writer (client) seen in the
// current or previous epoch, the bitmask of slots it wrote (slot >= 63
// collapses to bit 63). The reclustering planner consumes it to decide
// which writer's objects to migrate where.
type FSSuspect struct {
	Page        int32            `json:"page"`
	Score       float64          `json:"score"`
	Writers     int              `json:"writers"`
	Epochs      int              `json:"epochs"`
	WriterSlots map[int32]uint64 `json:"writer_slots,omitempty"`
}

// HeatSnapshot is a merged view across collector shards: the global top-K
// per category plus every page with a live false-sharing score.
type HeatSnapshot struct {
	Enabled      bool        `json:"enabled"`
	Epochs       int64       `json:"epochs"`
	Reads        int64       `json:"reads"`
	Writes       int64       `json:"writes"`
	Blocks       int64       `json:"blocks"`
	Dropped      int64       `json:"dropped"`
	FSSkipped    int64       `json:"fs_skipped"`
	Threshold    float64     `json:"threshold"`
	TopPages     []HeatEntry `json:"top_pages"`
	TopObjects   []HeatEntry `json:"top_objects"`
	Contended    []HeatEntry `json:"contended_pages"`
	FalseSharing []FSSuspect `json:"false_sharing"`
}

// Suspects returns the snapshot's pages at or above the suspect threshold.
func (sn *HeatSnapshot) Suspects() []FSSuspect {
	var out []FSSuspect
	for _, s := range sn.FalseSharing {
		if s.Score >= sn.Threshold {
			out = append(out, s)
		}
	}
	return out
}

// Score returns the decayed false-sharing score of page in the snapshot
// (0 if untracked).
func (sn *HeatSnapshot) Score(page int32) float64 {
	for _, s := range sn.FalseSharing {
		if s.Page == page {
			return s.Score
		}
	}
	return 0
}

func topEntries(all []HeatEntry, k int) []HeatEntry {
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		if all[i].Page != all[j].Page {
			return all[i].Page < all[j].Page
		}
		return all[i].Slot < all[j].Slot
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Snapshot merges the shards (locking one at a time) into a sorted view.
// Nil-safe: a nil collector yields a zero snapshot.
func (h *Heat) Snapshot() *HeatSnapshot {
	sn := &HeatSnapshot{}
	if h == nil {
		return sn
	}
	sn.Enabled = h.enabled.Load()
	sn.Epochs = h.epochs.Load()
	sn.Reads = h.reads.Load()
	sn.Writes = h.writes.Load()
	sn.Blocks = h.blocks.Load()
	sn.Dropped = h.dropped.Load()
	sn.FSSkipped = h.skipped.Load()
	sn.Threshold = h.opts.FSThreshold
	var pages, objs, blocked []HeatEntry
	for _, sh := range h.shards {
		sh.mu.Lock()
		for i := range sh.pages.ents {
			e := &sh.pages.ents[i]
			pages = append(pages, HeatEntry{Page: int32(e.key), Slot: -1,
				Reads: e.reads, Writes: e.writes, Count: e.total(), Err: e.errc})
		}
		for i := range sh.objs.ents {
			e := &sh.objs.ents[i]
			objs = append(objs, HeatEntry{Page: int32(e.key >> 16), Slot: int32(uint16(e.key)),
				Reads: e.reads, Writes: e.writes, Count: e.total(), Err: e.errc})
		}
		for i := range sh.blocked.ents {
			e := &sh.blocked.ents[i]
			blocked = append(blocked, HeatEntry{Page: int32(e.key), Slot: -1,
				Writes: e.writes, Count: e.total(), Err: e.errc})
		}
		// writerEvidence merges a page's writer->slot masks from the live
		// epoch and the retained previous epoch (nil when neither saw
		// multi-writer traffic), so suspects carry actionable evidence no
		// matter where in the epoch the snapshot lands.
		writerEvidence := func(page int32) map[int32]uint64 {
			var out map[int32]uint64
			for _, src := range []map[int32]map[int32]uint64{sh.prevFS, sh.fs} {
				for w, mask := range src[page] {
					if out == nil {
						out = make(map[int32]uint64, len(src[page]))
					}
					out[w] |= mask
				}
			}
			return out
		}
		for page, st := range sh.fsScore {
			sn.FalseSharing = append(sn.FalseSharing, FSSuspect{
				Page: page, Score: st.score, Writers: st.writers, Epochs: st.epochs,
				WriterSlots: writerEvidence(page)})
		}
		// The live epoch's writer sets count too: a snapshot taken before
		// the first rotation should already implicate pages under attack.
		for page, writers := range sh.fs {
			if score := fsEpochScore(writers); score >= 0 {
				found := false
				for i := range sn.FalseSharing {
					if sn.FalseSharing[i].Page == page {
						s := &sn.FalseSharing[i]
						if score > s.Score {
							s.Score = score
							s.Writers = len(writers)
						}
						found = true
						break
					}
				}
				if !found {
					sn.FalseSharing = append(sn.FalseSharing, FSSuspect{
						Page: page, Score: score, Writers: len(writers),
						WriterSlots: writerEvidence(page)})
				}
			}
		}
		sh.mu.Unlock()
	}
	sn.TopPages = topEntries(pages, h.opts.TopK)
	sn.TopObjects = topEntries(objs, h.opts.TopK)
	sn.Contended = topEntries(blocked, h.opts.TopK)
	sort.Slice(sn.FalseSharing, func(i, j int) bool {
		if sn.FalseSharing[i].Score != sn.FalseSharing[j].Score {
			return sn.FalseSharing[i].Score > sn.FalseSharing[j].Score
		}
		return sn.FalseSharing[i].Page < sn.FalseSharing[j].Page
	})
	return sn
}

// suspectCount counts pages at or above the suspect threshold (decayed
// scores only — the cheap gauge path skips the live epoch).
func (h *Heat) suspectCount() int64 {
	var n int64
	for _, sh := range h.shards {
		sh.mu.Lock()
		for _, st := range sh.fsScore {
			if st.score >= h.opts.FSThreshold {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// trackedCounts returns (pages, objects) currently retained in sketches.
func (h *Heat) trackedCounts() (pages, objects int64) {
	for _, sh := range h.shards {
		sh.mu.Lock()
		pages += int64(len(sh.pages.ents))
		objects += int64(len(sh.objs.ents))
		sh.mu.Unlock()
	}
	return
}

// RegisterMetrics publishes the collector on reg under the oodb_heat_*
// names — identical from the live server and the simulator.
func (h *Heat) RegisterMetrics(reg *Registry) {
	reg.FuncCounter(`oodb_heat_accesses_total{op="read"}`,
		"object accesses sampled by the heat collector, by operation", h.reads.Load)
	reg.FuncCounter(`oodb_heat_accesses_total{op="write"}`, "", h.writes.Load)
	reg.FuncCounter("oodb_heat_blocks_total",
		"lock conflicts (engine blocks) sampled by the heat collector", h.blocks.Load)
	reg.FuncCounter("oodb_heat_dropped_total",
		"heat samples dropped by record-path contention (TryLock miss)", h.dropped.Load)
	reg.FuncCounter("oodb_heat_fs_skipped_total",
		"writes whose false-sharing writer set was not tracked (per-epoch page cap)", h.skipped.Load)
	reg.FuncCounter("oodb_heat_epochs_total",
		"heat epoch rotations (sketch decay + false-sharing score fold)", h.epochs.Load)
	reg.FuncGauge("oodb_heat_enabled", "1 when the heat collector is recording",
		func() int64 {
			if h.enabled.Load() {
				return 1
			}
			return 0
		})
	reg.FuncGauge("oodb_heat_tracked_pages", "pages retained in the heat sketches",
		func() int64 { p, _ := h.trackedCounts(); return p })
	reg.FuncGauge("oodb_heat_tracked_objects", "objects retained in the heat sketches",
		func() int64 { _, o := h.trackedCounts(); return o })
	reg.FuncGauge("oodb_heat_false_sharing_suspects",
		"pages whose decayed false-sharing score is at or above the suspect threshold",
		h.suspectCount)
}

// WriteJSON writes the current snapshot as one JSON object.
func (h *Heat) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h.Snapshot())
}

// WriteHuman writes the snapshot as a readable report.
func (h *Heat) WriteHuman(w io.Writer) error {
	sn := h.Snapshot()
	if _, err := fmt.Fprintf(w, "heat: enabled=%v epochs=%d reads=%d writes=%d blocks=%d dropped=%d fs-skipped=%d\n",
		sn.Enabled, sn.Epochs, sn.Reads, sn.Writes, sn.Blocks, sn.Dropped, sn.FSSkipped); err != nil {
		return err
	}
	if len(sn.TopPages) > 0 {
		fmt.Fprintf(w, "\ntop pages (count ~ reads+writes, +err overestimate):\n")
		for _, e := range sn.TopPages {
			fmt.Fprintf(w, "  page %-8d count=%-8d reads=%-8d writes=%-8d err=%d\n",
				e.Page, e.Count, e.Reads, e.Writes, e.Err)
		}
	}
	if len(sn.TopObjects) > 0 {
		fmt.Fprintf(w, "\ntop objects:\n")
		for _, e := range sn.TopObjects {
			fmt.Fprintf(w, "  obj %d/%-5d count=%-8d reads=%-8d writes=%-8d err=%d\n",
				e.Page, e.Slot, e.Count, e.Reads, e.Writes, e.Err)
		}
	}
	if len(sn.Contended) > 0 {
		fmt.Fprintf(w, "\ncontended pages (lock conflicts):\n")
		for _, e := range sn.Contended {
			fmt.Fprintf(w, "  page %-8d blocks=%d\n", e.Page, e.Count)
		}
	}
	if len(sn.FalseSharing) > 0 {
		fmt.Fprintf(w, "\nfalse-sharing scores (suspect >= %.2f):\n", sn.Threshold)
		for _, s := range sn.FalseSharing {
			mark := " "
			if s.Score >= sn.Threshold {
				mark = "*"
			}
			fmt.Fprintf(w, "%s page %-8d score=%.2f writers=%d epochs=%d\n",
				mark, s.Page, s.Score, s.Writers, s.Epochs)
		}
	}
	return nil
}
