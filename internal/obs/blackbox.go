package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FlightRecorder writes crash blackboxes: on a server panic, fail-stop,
// or audit failure, Dump atomically persists the trace ring, heat
// snapshot, commit-stage spans, and a metrics snapshot as one timestamped
// JSONL file, pruning the oldest dumps beyond a bounded count. A nil
// recorder (no directory configured) is a no-op, so callers never guard.
//
// File format (one JSON object per line):
//
//	{"type":"header","format":1,"reason":...,"unix_ns":...,...}
//	{"type":"trace","event":{...}}    one line per retained trace event
//	{"type":"heat","snapshot":{...}}
//	{"type":"spans","snapshot":{...}}
//	{"type":"metrics","prometheus":"..."}   the full text exposition
type FlightRecorder struct {
	mu  sync.Mutex
	dir string
	max int
	seq int
}

// DefaultBlackboxMax is the default bound on retained dumps.
const DefaultBlackboxMax = 8

// NewFlightRecorder returns a recorder writing into dir, keeping at most
// max dumps (DefaultBlackboxMax if max <= 0). Empty dir returns nil.
func NewFlightRecorder(dir string, max int) *FlightRecorder {
	if dir == "" {
		return nil
	}
	if max <= 0 {
		max = DefaultBlackboxMax
	}
	return &FlightRecorder{dir: dir, max: max}
}

// Dir returns the blackbox directory ("" for a nil recorder).
func (f *FlightRecorder) Dir() string {
	if f == nil {
		return ""
	}
	return f.dir
}

// Dump writes one blackbox file and returns its path. Any of tr, heat,
// spans, reg may be nil (their sections are omitted). The write is
// tmp+fsync+rename so a crash mid-dump never leaves a torn blackbox, and
// dumps beyond the retention bound are pruned oldest-first.
func (f *FlightRecorder) Dump(reason string, tr *Tracer, heat *Heat, spans *Spans, reg *Registry) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++

	var buf bytes.Buffer
	now := time.Now()
	reasonJSON, _ := json.Marshal(reason)
	fmt.Fprintf(&buf, `{"type":"header","format":1,"reason":%s,"unix_ns":%d`,
		reasonJSON, now.UnixNano())
	if tr != nil {
		fmt.Fprintf(&buf, `,"trace_enabled":%v,"trace_dropped":%d`, tr.Enabled(), tr.Dropped())
	}
	if heat != nil {
		fmt.Fprintf(&buf, `,"heat_enabled":%v,"heat_epochs":%d`, heat.Enabled(), heat.Epochs())
	}
	buf.WriteString("}\n")
	if tr != nil {
		var eb []byte
		for _, e := range tr.Last(0) {
			buf.WriteString(`{"type":"trace","event":`)
			eb = e.appendJSON(eb[:0])
			buf.Write(eb)
			buf.WriteString("}\n")
		}
	}
	if heat != nil {
		hs, err := json.Marshal(heat.Snapshot())
		if err != nil {
			return "", err
		}
		buf.WriteString(`{"type":"heat","snapshot":`)
		buf.Write(hs)
		buf.WriteString("}\n")
	}
	if spans != nil {
		ss, err := json.Marshal(spans.Snapshot())
		if err != nil {
			return "", err
		}
		buf.WriteString(`{"type":"spans","snapshot":`)
		buf.Write(ss)
		buf.WriteString("}\n")
	}
	if reg != nil {
		var mb bytes.Buffer
		if err := reg.WritePrometheus(&mb); err != nil {
			return "", err
		}
		ms, err := json.Marshal(mb.String())
		if err != nil {
			return "", err
		}
		buf.WriteString(`{"type":"metrics","prometheus":`)
		buf.Write(ms)
		buf.WriteString("}\n")
	}

	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("blackbox-%s-%03d.jsonl",
		now.UTC().Format("20060102T150405.000000000"), f.seq)
	path := filepath.Join(f.dir, name)
	tmp := path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	if _, err := file.Write(buf.Bytes()); err == nil {
		err = file.Sync()
	}
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	f.pruneLocked()
	return path, nil
}

// pruneLocked deletes the oldest dumps beyond the retention bound. The
// timestamped names sort chronologically, so lexical order is age order.
func (f *FlightRecorder) pruneLocked() {
	matches, err := filepath.Glob(filepath.Join(f.dir, "blackbox-*.jsonl"))
	if err != nil || len(matches) <= f.max {
		return
	}
	sort.Strings(matches)
	for _, old := range matches[:len(matches)-f.max] {
		os.Remove(old)
	}
}
