package obs

import (
	"strings"
	"testing"
)

func TestSpansStageNames(t *testing.T) {
	want := []string{"queue", "encode", "lock-wait", "append", "install", "fsync-wait", "ack"}
	if int(NumCommitStages) != len(want) {
		t.Fatalf("NumCommitStages = %d, want %d", NumCommitStages, len(want))
	}
	for i, name := range want {
		if got := CommitStage(i).String(); got != name {
			t.Errorf("stage %d = %q, want %q", i, got, name)
		}
	}
	if got := NumCommitStages.String(); got != "CommitStage(?)" {
		t.Errorf("out-of-range stage name = %q", got)
	}
}

func TestSpansExemplarNamesSlowTxn(t *testing.T) {
	sp := NewSpans(nil)
	// 90 fast commits from boring transactions, 10 slow ones ending with
	// txn 777. The p99 class is the slow bucket, so the exemplar must name
	// a slow txn — specifically the last one to land there.
	for i := 0; i < 90; i++ {
		sp.Observe(StageSyncWait, 100, int64(i+1))
	}
	for i := 0; i < 9; i++ {
		sp.Observe(StageSyncWait, 5_000_000, int64(500+i))
	}
	sp.Observe(StageSyncWait, 5_000_000, 777)
	sn := sp.Snapshot()
	var fsync *StageSpan
	for i := range sn.Stages {
		if sn.Stages[i].Stage == "fsync-wait" {
			fsync = &sn.Stages[i]
		}
	}
	if fsync == nil || fsync.Count != 100 {
		t.Fatalf("fsync-wait span = %+v", fsync)
	}
	if fsync.ExemplarTxn != 777 {
		t.Fatalf("p99 exemplar = %d, want 777", fsync.ExemplarTxn)
	}
	if fsync.MaxNs != 5_000_000 {
		t.Fatalf("max = %d", fsync.MaxNs)
	}

	// Unobserved stages carry no exemplar.
	for _, s := range sn.Stages {
		if s.Stage != "fsync-wait" && (s.Count != 0 || s.ExemplarTxn != 0) {
			t.Fatalf("idle stage %q has data: %+v", s.Stage, s)
		}
	}
}

func TestSpansRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	sp := NewSpans(reg)
	sp.Observe(StageAppend, 1000, 42)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `oodb_commit_stage_ns_count{stage="append"} 1`) {
		t.Fatalf("missing labeled stage histogram:\n%s", sb.String())
	}

	var nilSpans *Spans
	nilSpans.Observe(StageQueue, 1, 1) // nil-safe
	if sn := nilSpans.Snapshot(); sn == nil || len(sn.Stages) != 0 {
		t.Fatal("nil snapshot")
	}
}

func TestSpansWriteForms(t *testing.T) {
	sp := NewSpans(nil)
	sp.Observe(StageQueue, 123, 9)
	var human, js strings.Builder
	if err := sp.WriteHuman(&human); err != nil {
		t.Fatal(err)
	}
	if err := sp.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(human.String(), "queue") || !strings.Contains(human.String(), "p99-txn") {
		t.Fatalf("human form:\n%s", human.String())
	}
	if !strings.Contains(js.String(), `"p99_exemplar_txn"`) {
		t.Fatalf("json form:\n%s", js.String())
	}
}
