package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the log2 bucket layout: bucket i
// covers [2^(i-1), 2^i - 1], bucket 0 covers v <= 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 20, 21}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose bounds contain it.
	for _, v := range []int64{1, 3, 9, 100, 4096, 1 << 40} {
		i := bucketIndex(v)
		if v > BucketUpper(i) {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("value %d not above bucket %d upper bound %d", v, i-1, BucketUpper(i-1))
		}
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(8) != 255 {
		t.Fatalf("BucketUpper layout changed: %d %d %d", BucketUpper(0), BucketUpper(1), BucketUpper(8))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations (value 100 -> bucket 7, upper 127) and 10 slow
	// (value 10000 -> bucket 14, upper 16383).
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10000)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 90*100+10*10000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if s.Max != 10000 {
		t.Fatalf("max=%d", s.Max)
	}
	if q := s.Quantile(0.50); q != 127 {
		t.Errorf("p50 = %d, want 127 (upper bound of the fast bucket)", q)
	}
	if q := s.Quantile(0.90); q != 127 {
		t.Errorf("p90 = %d, want 127", q)
	}
	// p99 falls in the slow bucket; the estimate clamps to the observed max.
	if q := s.Quantile(0.99); q != 10000 {
		t.Errorf("p99 = %d, want 10000 (clamped to max)", q)
	}
	if q := s.Quantile(1.0); q != 10000 {
		t.Errorf("p100 = %d, want 10000", q)
	}

	var empty Histogram
	if q := empty.Snapshot().Quantile(0.99); q != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", q)
	}
}

// TestConcurrentRecording hammers one counter and one histogram from many
// goroutines (meaningful under -race) and checks nothing is lost.
func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "test counter")
	h := reg.Histogram("h_ns", "test histogram")
	g := reg.Gauge("g", "test gauge")

	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(w*1000 + i))
				g.Set(int64(i))
				if i%512 == 0 {
					// Concurrent collection must be safe too.
					var b bytes.Buffer
					reg.WritePrometheus(&b)
				}
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: %d != %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("histogram lost updates: %d != %d", s.Count, workers*perWorker)
	}
	var wantSum int64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			wantSum += int64(w*1000 + i)
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("histogram sum %d != %d", s.Sum, wantSum)
	}
}

// TestRegistryLookupIdempotent: registering a name twice returns the same
// metric (the sharing mechanism for clients on one registry).
func TestRegistryLookupIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x")
	b := reg.Counter("x_total", "")
	if a != b {
		t.Fatal("Counter not idempotent")
	}
	h1 := reg.Histogram(`h{kind="a"}`, "h")
	h2 := reg.Histogram(`h{kind="a"}`, "h")
	if h1 != h2 {
		t.Fatal("Histogram not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-kind re-registration did not panic")
		}
	}()
	reg.Histogram("x_total", "now a histogram")
}

// promLine matches a Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?\d+)$`)

// TestPrometheusOutputParsesAndIsStable checks /metrics output line by
// line against the exposition grammar and verifies stable ordering.
func TestPrometheusOutputParsesAndIsStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`oodb_server_requests_total{kind="read"}`, "requests by kind").Add(7)
	reg.Counter(`oodb_server_requests_total{kind="write"}`, "").Add(3)
	reg.FuncCounter("oodb_engine_commits_total", "commits", func() int64 { return 42 })
	reg.FuncGauge("oodb_server_sessions", "sessions", func() int64 { return 5 })
	h := reg.Histogram(`oodb_wal_fsync_ns`, "fsync latency")
	h.Observe(900)
	h.Observe(1100)
	hl := reg.Histogram(`oodb_server_handle_ns{kind="read"}`, "handle latency")
	hl.Observe(50)

	var out1, out2 bytes.Buffer
	if err := reg.WritePrometheus(&out1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("output not stable:\n--- first\n%s--- second\n%s", out1.String(), out2.String())
	}

	types := map[string]string{}
	var lastSample string
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(out1.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("family %s has two TYPE lines", f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			// Histogram +Inf buckets are the only non-integer-label lines.
			if !strings.Contains(line, `le="+Inf"`) {
				t.Fatalf("unparseable line %q", line)
			}
			continue
		}
		samples++
		// Histogram bucket series order by numeric le (+Inf last), not
		// lexically; exempt them from the lexical-order check.
		if !strings.Contains(m[1], "_bucket") {
			if lastSample != "" && line < lastSample && family(m[1]) == family(lastSample) {
				t.Errorf("series out of order within family: %q after %q", line, lastSample)
			}
			lastSample = line
		}
	}
	if samples == 0 {
		t.Fatal("no samples emitted")
	}
	// Spot-check: histogram bucket counts are cumulative and end at _count.
	text := out1.String()
	if !strings.Contains(text, `oodb_wal_fsync_ns_bucket{le="+Inf"} 2`) {
		t.Errorf("missing +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, "oodb_wal_fsync_ns_sum 2000") {
		t.Errorf("missing histogram sum:\n%s", text)
	}
	if !strings.Contains(text, "oodb_wal_fsync_ns_count 2") {
		t.Errorf("missing histogram count:\n%s", text)
	}
	if !strings.Contains(text, `oodb_server_handle_ns_bucket{kind="read",le="+Inf"} 1`) {
		t.Errorf("labelled histogram bucket splice wrong:\n%s", text)
	}
	if !strings.Contains(text, `oodb_server_handle_ns_sum{kind="read"} 50`) {
		t.Errorf("labelled histogram sum wrong:\n%s", text)
	}
	// Cumulative check for the two-bucket fsync histogram: 900 -> le 1023,
	// 1100 -> le 2047; cumulative 1 then 2.
	if !strings.Contains(text, `oodb_wal_fsync_ns_bucket{le="1023"} 1`) ||
		!strings.Contains(text, `oodb_wal_fsync_ns_bucket{le="2047"} 2`) {
		t.Errorf("cumulative buckets wrong:\n%s", text)
	}
}

// TestLabeledFamiliesRoundTrip registers the same labeled families (the
// per-shard, per-op, and per-stage series the live server publishes) into
// two registries in different orders and checks the expositions are
// byte-identical and every line parses — scrape output must not depend on
// registration order.
func TestLabeledFamiliesRoundTrip(t *testing.T) {
	type series struct {
		name string
		v    int64
	}
	var all []series
	for shard := 0; shard < 4; shard++ {
		all = append(all, series{Labeled("oodb_live_shard_lock_wait_ns", "shard", strconv.Itoa(shard)), int64(100 * (shard + 1))})
	}
	for _, op := range []string{"read", "write"} {
		all = append(all, series{Labeled("oodb_heat_accesses_total", "op", op), 7})
	}
	for st := CommitStage(0); st < NumCommitStages; st++ {
		all = append(all, series{Labeled("oodb_commit_stage_ns", "stage", st.String()), int64(st) + 1})
	}

	build := func(order []int) string {
		reg := NewRegistry()
		for _, i := range order {
			reg.Histogram(all[i].name, "labeled family").Observe(all[i].v)
		}
		var b bytes.Buffer
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	fwd := make([]int, len(all))
	rev := make([]int, len(all))
	for i := range all {
		fwd[i] = i
		rev[i] = len(all) - 1 - i
	}
	a, b := build(fwd), build(rev)
	if a != b {
		t.Fatalf("exposition depends on registration order:\n--- forward\n%s--- reverse\n%s", a, b)
	}

	// Every non-comment line must parse, and each family's label values
	// must appear in sorted order within the family.
	var lastSeries string
	for _, line := range strings.Split(strings.TrimRight(a, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if m := promLine.FindStringSubmatch(line); m == nil && !strings.Contains(line, `le="+Inf"`) {
			t.Fatalf("unparseable line %q", line)
		}
		if strings.HasSuffix(fieldName(line), "_count") {
			if lastSeries != "" && family(line) == family(lastSeries) && line < lastSeries {
				t.Errorf("series out of order: %q after %q", line, lastSeries)
			}
			lastSeries = line
		}
	}
	for _, want := range []string{
		`oodb_live_shard_lock_wait_ns_count{shard="0"} 1`,
		`oodb_live_shard_lock_wait_ns_count{shard="3"} 1`,
		`oodb_heat_accesses_total_count{op="read"} 1`,
		`oodb_commit_stage_ns_count{stage="fsync-wait"} 1`,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("exposition missing %q:\n%s", want, a)
		}
	}
}

// fieldName returns the metric name (with labels stripped) of a sample line.
func fieldName(line string) string {
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		return line[:i]
	}
	return line
}

func TestCounterValueAndHuman(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "a").Add(5)
	reg.FuncCounter("b_total", "b", func() int64 { return 2 })
	reg.FuncCounter("b_total", "b", func() int64 { return 3 })
	if v := reg.CounterValue("a_total"); v != 5 {
		t.Fatalf("a_total = %d", v)
	}
	if v := reg.CounterValue("b_total"); v != 5 {
		t.Fatalf("b_total (summed funcs) = %d", v)
	}
	if v := reg.CounterValue("missing"); v != 0 {
		t.Fatalf("missing = %d", v)
	}
	h := reg.Histogram("lat_ns", "latency")
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i))
	}
	var b bytes.Buffer
	if err := reg.WriteHuman(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"a_total", "b_total", "lat_ns", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf("human output missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramMeanLargeValues guards the sum arithmetic for big
// nanosecond values.
func TestHistogramMeanLargeValues(t *testing.T) {
	var h Histogram
	const v = int64(3e12)
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Mean(); got != float64(v) {
		t.Fatalf("mean = %v, want %v", got, float64(v))
	}
	if s.Quantile(0.5) != v {
		t.Fatalf("p50 = %d (max clamp failed)", s.Quantile(0.5))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	_ = c.Value()
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		v := int64(17)
		for pb.Next() {
			h.Observe(v)
			v = v*31 + 7
		}
	})
}

func BenchmarkTracerDisabled(b *testing.B) {
	tr := NewTracer(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(EvGrant, int64(i), 1, 2, 3, 0)
	}
}

func ExampleRegistry_WritePrometheus() {
	reg := NewRegistry()
	reg.Counter("example_total", "an example").Add(1)
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP example_total an example
	// # TYPE example_total counter
	// example_total 1
}
