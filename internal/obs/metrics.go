// Package obs is the observability core shared by the live system and the
// simulator: a dependency-free (stdlib-only), allocation-conscious metrics
// registry plus a lossy ring-buffered event tracer.
//
// Design constraints, in order:
//
//   - The record path takes no locks. Counters and histogram buckets are
//     plain atomics; a histogram observation touches one bucket pair (its
//     latency class), so concurrent recorders shard naturally across
//     buckets instead of piling onto one hot word. Each bucket pair is
//     padded to its own cache line.
//   - Registration is rare and may lock. Registering the same name twice
//     returns the same metric, so independent components (many clients
//     sharing one registry, a reopened server) can look handles up by
//     name without coordination.
//   - Exposition is hand-rolled Prometheus text format (plus a human
//     format with quantiles) with stable, sorted ordering.
//
// Metric names follow Prometheus conventions (`oodb_..._total` for
// counters, unit suffix `_ns`/`_bytes` where applicable) and may carry a
// fixed label block, e.g. `oodb_server_requests_total{kind="read"}`; the
// text before `{` is the metric family, and all series of one family are
// emitted under a single TYPE header.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The padding keeps
// hot counters registered back-to-back off each other's cache lines.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of log2 latency classes a histogram tracks.
// Bucket i holds observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i); bucket 0 holds v <= 0. int64 observations never exceed
// bucket 63.
const HistBuckets = 64

// histBucket is one latency class: observation count and value sum,
// padded to a cache line so concurrent recorders in different classes
// never share a line.
type histBucket struct {
	count atomic.Int64
	sum   atomic.Int64
	_     [48]byte
}

// Histogram is a lock-free log2-bucketed histogram. Recording is one
// bucket-index computation and two atomic adds on the bucket (plus a
// rarely-taken CAS to advance the max); there is no global count or sum
// word, so contended recording shards across latency classes.
type Histogram struct {
	buckets [HistBuckets]histBucket
	max     atomic.Int64
}

// bucketIndex returns the latency class of v.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the inclusive upper bound of bucket i (2^i - 1; the
// lowest bucket is "<= 0").
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	b := &h.buckets[bucketIndex(v)]
	b.count.Add(1)
	b.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m {
			return
		}
		if h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// HistSnapshot is a consistent-enough read of a histogram (each word is
// read atomically; the set is not a single atomic cut, which is fine for
// monitoring).
type HistSnapshot struct {
	Count  int64
	Sum    int64
	Max    int64
	Counts [HistBuckets]int64
}

// Snapshot reads the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		c := h.buckets[i].count.Load()
		s.Counts[i] = c
		s.Count += c
		s.Sum += h.buckets[i].sum.Load()
	}
	s.Max = h.max.Load()
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts:
// it returns the upper bound of the bucket where the cumulative count
// crosses q*Count, clamped to the observed max. Zero observations yield 0.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Counts[i]
		if cum >= target {
			u := BucketUpper(i)
			if s.Max > 0 && u > s.Max {
				u = s.Max
			}
			return u
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// metricKind discriminates the registry's name space.
type metricKind int

const (
	kindCounter metricKind = iota
	kindFuncCounter
	kindGauge
	kindFuncGauge
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindFuncCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge"
}

// Registry holds named metrics. All methods are safe for concurrent use;
// the registry lock covers registration and collection only, never the
// record path.
type Registry struct {
	mu           sync.Mutex
	kinds        map[string]metricKind // full series name -> kind
	counters     map[string]*Counter
	funcCounters map[string][]func() int64 // summed at collection
	gauges       map[string]*Gauge
	funcGauges   map[string]func() int64
	hists        map[string]*Histogram
	help         map[string]string // family -> help text (first registration wins)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:        make(map[string]metricKind),
		counters:     make(map[string]*Counter),
		funcCounters: make(map[string][]func() int64),
		gauges:       make(map[string]*Gauge),
		funcGauges:   make(map[string]func() int64),
		hists:        make(map[string]*Histogram),
		help:         make(map[string]string),
	}
}

// Labeled builds a single-label series name: Labeled("x_total", "shard",
// "3") is `x_total{shard="3"}`. Series of one family share help text and
// type; FuncCounters registered under the same full series name sum at
// collection time.
func Labeled(name, key, value string) string {
	return name + `{` + key + `="` + value + `"}`
}

// family returns the metric family of a series name (the part before any
// label block).
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) register(name, help string, kind metricKind) {
	if k, ok := r.kinds[name]; ok {
		if k != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
	} else {
		r.kinds[name] = kind
	}
	fam := family(name)
	if _, ok := r.help[fam]; !ok && help != "" {
		r.help[fam] = help
	}
}

// Counter registers (or looks up) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindCounter)
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// FuncCounter registers a counter whose value is read from fn at
// collection time — the bridge for components that already keep their own
// atomic counts (e.g. the protocol engine). Registering several functions
// under one name sums them.
func (r *Registry) FuncCounter(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindFuncCounter)
	r.funcCounters[name] = append(r.funcCounters[name], fn)
}

// Gauge registers (or looks up) a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindGauge)
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FuncGauge registers a gauge whose value is read from fn at collection
// time. Re-registration replaces the function (a reopened server takes
// over its gauges).
func (r *Registry) FuncGauge(name, help string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindFuncGauge)
	r.funcGauges[name] = fn
}

// Histogram registers (or looks up) a histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, help, kindHistogram)
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the current value of a counter series (owned or
// func-backed), or 0 if the name is unknown.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	c := r.counters[name]
	fns := r.funcCounters[name]
	r.mu.Unlock()
	var v int64
	if c != nil {
		v += c.Value()
	}
	for _, fn := range fns {
		v += fn()
	}
	return v
}

// HistogramSnapshot returns a snapshot of a histogram series (zero-valued
// if the name is unknown).
func (r *Registry) HistogramSnapshot(name string) HistSnapshot {
	r.mu.Lock()
	h := r.hists[name]
	r.mu.Unlock()
	if h == nil {
		return HistSnapshot{}
	}
	return h.Snapshot()
}

// sortedNames returns all registered series names, sorted.
func (r *Registry) sortedNames() []string {
	names := make([]string, 0, len(r.kinds))
	for n := range r.kinds {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// spliceLabel inserts `extra` (e.g. `le="255"`) into the label block of a
// series name built from base+suffix: name{a="b"} -> base_suffix{a="b",extra}.
func spliceLabel(name, suffix, extra string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + "{" + name[i+1:len(name)-1] + "," + extra + "}"
	}
	return name + suffix + "{" + extra + "}"
}

// seriesName appends a suffix to the family part of a series name,
// preserving its label block.
func seriesName(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// WritePrometheus writes every metric in Prometheus text exposition
// format. Families are sorted by name, series within a family by full
// name; the ordering is stable across calls. Histograms emit cumulative
// `_bucket` series (only classes that hold observations, plus +Inf),
// `_sum`, and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lastFam string
	for _, name := range r.sortedNames() {
		kind := r.kinds[name]
		fam := family(name)
		if fam != lastFam {
			lastFam = fam
			if help := r.help[fam]; help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind.promType()); err != nil {
				return err
			}
		}
		switch kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value()); err != nil {
				return err
			}
		case kindFuncCounter:
			var v int64
			for _, fn := range r.funcCounters[name] {
				v += fn()
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, v); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, r.gauges[name].Value()); err != nil {
				return err
			}
		case kindFuncGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, r.funcGauges[name]()); err != nil {
				return err
			}
		case kindHistogram:
			s := r.hists[name].Snapshot()
			var cum int64
			for i := 0; i < HistBuckets; i++ {
				if s.Counts[i] == 0 {
					continue
				}
				cum += s.Counts[i]
				le := fmt.Sprintf(`le="%d"`, BucketUpper(i))
				if _, err := fmt.Fprintf(w, "%s %d\n", spliceLabel(name, "_bucket", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", spliceLabel(name, "_bucket", `le="+Inf"`), s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name, "_sum"), s.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name, "_count"), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteHuman writes a human-readable snapshot: counters and gauges one
// per line, histograms with count/mean/p50/p90/p99/max. Zero-valued
// series are skipped so small runs stay readable.
func (r *Registry) WriteHuman(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.sortedNames() {
		switch r.kinds[name] {
		case kindCounter:
			if v := r.counters[name].Value(); v != 0 {
				if _, err := fmt.Fprintf(w, "%-58s %d\n", name, v); err != nil {
					return err
				}
			}
		case kindFuncCounter:
			var v int64
			for _, fn := range r.funcCounters[name] {
				v += fn()
			}
			if v != 0 {
				if _, err := fmt.Fprintf(w, "%-58s %d\n", name, v); err != nil {
					return err
				}
			}
		case kindGauge:
			if v := r.gauges[name].Value(); v != 0 {
				if _, err := fmt.Fprintf(w, "%-58s %d\n", name, v); err != nil {
					return err
				}
			}
		case kindFuncGauge:
			if v := r.funcGauges[name](); v != 0 {
				if _, err := fmt.Fprintf(w, "%-58s %d\n", name, v); err != nil {
					return err
				}
			}
		case kindHistogram:
			s := r.hists[name].Snapshot()
			if s.Count == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-58s count=%d mean=%.0f p50=%d p90=%d p99=%d max=%d\n",
				name, s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Max); err != nil {
				return err
			}
		}
	}
	return nil
}
