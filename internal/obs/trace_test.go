package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(EvBegin, 1, 1, 0, 0, 0)
	if got := tr.Last(0); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(got))
	}
	if tr.Seq() != 0 {
		t.Fatalf("seq = %d", tr.Seq())
	}
}

func TestTracerRingAndFilters(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(true)
	for i := 0; i < 20; i++ {
		tr.Emit(EvCommit, int64(100+i%3), int32(i), int32(i%4), 0, 0)
	}
	all := tr.Last(0)
	if len(all) != 8 {
		t.Fatalf("retained %d events, want ring size 8", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("events out of order: %d then %d", all[i-1].Seq, all[i].Seq)
		}
	}
	if all[len(all)-1].Seq != 19 {
		t.Fatalf("newest seq = %d, want 19", all[len(all)-1].Seq)
	}
	if got := tr.Last(3); len(got) != 3 || got[2].Seq != 19 {
		t.Fatalf("Last(3) wrong: %+v", got)
	}
	for _, e := range tr.ForTxn(101, 0) {
		if e.Txn != 101 {
			t.Fatalf("ForTxn leaked txn %d", e.Txn)
		}
	}
	for _, e := range tr.ForPage(2, 0) {
		if e.Page != 2 {
			t.Fatalf("ForPage leaked page %d", e.Page)
		}
	}
}

// TestTracerJSONL checks each line is valid JSON with the expected keys.
func TestTracerJSONL(t *testing.T) {
	tr := NewTracer(32)
	tr.SetEnabled(true)
	tr.Emit(EvLockReq, 7, 2, 5, 1, 1)
	tr.Emit(EvGrant, 7, 2, 5, 1, 2)
	tr.Emit(EvCommit, 8, 3, 0, 0, 0)

	var b bytes.Buffer
	if err := tr.WriteJSONL(&b, 0, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		for _, key := range []string{"seq", "at_ns", "kind", "txn", "client", "page", "slot", "extra"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("line %q missing key %q", line, key)
			}
		}
	}
	// Txn filter.
	b.Reset()
	if err := tr.WriteJSONL(&b, 0, 7); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != 2 {
		t.Fatalf("txn filter kept %d lines, want 2", got)
	}
	if strings.Contains(b.String(), `"txn":8`) {
		t.Fatal("txn filter leaked txn 8")
	}
}

// TestTracerConcurrent drives the tracer from many goroutines under
// -race; every event is either recorded or counted as dropped.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(1024)
	tr.SetEnabled(true)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Emit(EvCallback, int64(w), int32(i), 0, 0, 0)
				if i%1000 == 0 {
					tr.Last(4)
				}
			}
		}()
	}
	wg.Wait()
	if got := int64(tr.Seq()) + tr.Dropped(); got != workers*perWorker {
		t.Fatalf("recorded %d + dropped %d != emitted %d", tr.Seq(), tr.Dropped(), workers*perWorker)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvNone; k <= EvRoundCancel; k++ {
		if s := k.String(); s == "EventKind(?)" || s == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
