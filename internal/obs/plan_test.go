package obs

import (
	"reflect"
	"testing"
)

func snapWith(suspects ...FSSuspect) *HeatSnapshot {
	return &HeatSnapshot{Threshold: 0.5, FalseSharing: suspects}
}

func TestPlanMovesKeepsLargestWriter(t *testing.T) {
	sn := snapWith(FSSuspect{
		Page: 7, Score: 1.0,
		WriterSlots: map[int32]uint64{
			1: 0b0000_1111, // 4 slots — keeper
			2: 0b0011_0000, // 2 slots — moves
		},
	})
	got := PlanMoves(sn, PlanOptions{})
	want := []MoveGroup{{Page: 7, Writer: 2, Slots: []uint16{4, 5}, Score: 1.0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlanMoves = %+v, want %+v", got, want)
	}
}

func TestPlanMovesSharedSlotsStay(t *testing.T) {
	// Slot 3 is written by both — true sharing — so it must not appear in
	// any group even though writer 2 loses the page.
	sn := snapWith(FSSuspect{
		Page: 2, Score: 0.9,
		WriterSlots: map[int32]uint64{
			1: 0b0000_1111,
			2: 0b0011_1000, // slot 3 shared with writer 1
		},
	})
	got := PlanMoves(sn, PlanOptions{})
	want := []MoveGroup{{Page: 2, Writer: 2, Slots: []uint16{4, 5}, Score: 0.9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlanMoves = %+v, want %+v", got, want)
	}
}

func TestPlanMovesThreeWriters(t *testing.T) {
	sn := snapWith(FSSuspect{
		Page: 5, Score: 1.0,
		WriterSlots: map[int32]uint64{
			3: 0b111 << 0, // 3 slots — keeper
			4: 0b11 << 3,
			5: 0b11 << 5,
		},
	})
	got := PlanMoves(sn, PlanOptions{})
	want := []MoveGroup{
		{Page: 5, Writer: 4, Slots: []uint16{3, 4}, Score: 1.0},
		{Page: 5, Writer: 5, Slots: []uint16{5, 6}, Score: 1.0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlanMoves = %+v, want %+v", got, want)
	}
}

func TestPlanMovesFiltersAndCaps(t *testing.T) {
	sn := snapWith(
		FSSuspect{Page: 1, Score: 0.4, // below threshold
			WriterSlots: map[int32]uint64{1: 1, 2: 2}},
		FSSuspect{Page: 90, Score: 1.0, // spare page (>= UserPages)
			WriterSlots: map[int32]uint64{1: 1, 2: 2}},
		FSSuspect{Page: 3, Score: 0.8, // hotter — planned first
			WriterSlots: map[int32]uint64{1: 0b1111, 2: 0b1111_0000}},
		FSSuspect{Page: 4, Score: 0.6,
			WriterSlots: map[int32]uint64{1: 0b11, 2: 0b1100}},
	)
	got := PlanMoves(sn, PlanOptions{UserPages: 80, MaxMoves: 5})
	want := []MoveGroup{
		{Page: 3, Writer: 2, Slots: []uint16{4, 5, 6, 7}, Score: 0.8},
		{Page: 4, Writer: 2, Slots: []uint16{2}, Score: 0.6}, // truncated by the cap
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlanMoves = %+v, want %+v", got, want)
	}
	if n := PlannedObjects(got); n != 5 {
		t.Fatalf("PlannedObjects = %d, want 5", n)
	}
}

// TestPlanMovesExcludeFreesBudget models the round after a partial split:
// heat evidence still lists the migrated slots, but they must neither be
// replanned nor charged against MaxMoves, or successive paced rounds stall
// on stale evidence and never finish splitting the page.
func TestPlanMovesExcludeFreesBudget(t *testing.T) {
	sn := snapWith(
		FSSuspect{Page: 3, Score: 0.8, // hotter: planned first
			WriterSlots: map[int32]uint64{1: 0b1111, 2: 0b1111_0000}},
		FSSuspect{Page: 4, Score: 0.6,
			WriterSlots: map[int32]uint64{1: 0b11, 2: 0b1100}},
	)
	// Page 3's movers (slots 4..7) already migrated in an earlier round.
	migrated := func(page int32, slot uint16) bool { return page == 3 && slot >= 4 }
	got := PlanMoves(sn, PlanOptions{MaxMoves: 4, Exclude: migrated})
	want := []MoveGroup{{Page: 4, Writer: 2, Slots: []uint16{2, 3}, Score: 0.6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlanMoves = %+v, want %+v", got, want)
	}
}

func TestPlanMovesSkipsBit63Ambiguity(t *testing.T) {
	s := FSSuspect{Page: 6, Score: 1.0,
		WriterSlots: map[int32]uint64{1: 1 << 63, 2: 0b11}}
	// 100 objects per page: bit 63 could be any of slots 63..99 — skip.
	if got := PlanMoves(snapWith(s), PlanOptions{ObjsPerPage: 100}); len(got) != 0 {
		t.Fatalf("ambiguous page planned: %+v", got)
	}
	// 64 objects per page: bit 63 IS slot 63 — plan it. Writer 2 holds
	// more slots and keeps the page; writer 1's slot 63 moves.
	got := PlanMoves(snapWith(s), PlanOptions{ObjsPerPage: 64})
	want := []MoveGroup{{Page: 6, Writer: 1, Slots: []uint16{63}, Score: 1.0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PlanMoves = %+v, want %+v", got, want)
	}
}

// TestSnapshotWriterSlots proves the heat collector carries concrete
// writer evidence across a rotation: the planner must be able to act on a
// snapshot taken right after Rotate cleared the live epoch.
func TestSnapshotWriterSlots(t *testing.T) {
	h := NewHeat(HeatOptions{})
	h.SetEnabled(true)
	for i := 0; i < 8; i++ {
		h.RecordAccess(1, 9, int32(i), true)
		h.RecordAccess(2, 9, int32(10+i), true)
	}
	h.Rotate() // evidence now lives only in prevFS

	sn := h.Snapshot()
	var suspect *FSSuspect
	for i := range sn.FalseSharing {
		if sn.FalseSharing[i].Page == 9 {
			suspect = &sn.FalseSharing[i]
		}
	}
	if suspect == nil {
		t.Fatal("page 9 not reported as a suspect after rotation")
	}
	if suspect.WriterSlots[1] != 0xFF || suspect.WriterSlots[2] != 0xFF<<10 {
		t.Fatalf("writer evidence lost across rotation: %+v", suspect.WriterSlots)
	}
	groups := PlanMoves(sn, PlanOptions{})
	if len(groups) != 1 || groups[0].Page != 9 {
		t.Fatalf("planner could not act on post-rotation snapshot: %+v", groups)
	}
}
