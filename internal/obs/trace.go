package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies one transaction-lifecycle trace event. The values
// cover the paper's protocol vocabulary: lock requests, blocking, grants,
// callback rounds, and transaction outcomes.
type EventKind uint8

const (
	EvNone        EventKind = iota
	EvBegin                 // server first sees the transaction
	EvLockReq               // read/write request arrived (Extra: 1 = write)
	EvBlock                 // request queued behind a conflict
	EvGrant                 // write permission granted (Extra: grant level, 1 obj / 2 page)
	EvRound                 // callback round started (Extra: fan-out)
	EvCallback              // one callback message sent to Client
	EvCallbackAck           // callback answered (Extra: 1 = busy reply)
	EvCommit                // transaction committed
	EvAbort                 // transaction aborted (Extra: 1 = disconnect cleanup)
	EvDeadlock              // chosen as deadlock victim
	EvDeesc                 // de-escalation requested from the page-X holder
	EvLeaseExpiry           // client deposed for an overdue callback answer
	EvRoundCancel           // round cancelled with Client's answer outstanding (Extra: round id)
	EvCommitStage           // commit pipeline stage finished (Slot: CommitStage, Extra: duration ns)
)

var eventKindNames = [...]string{
	"none", "begin", "lock-request", "block", "grant", "round", "callback-sent",
	"callback-acked", "commit", "abort", "deadlock-victim", "deesc-request",
	"lease-expiry", "round-cancel", "commit-stage",
}

func (k EventKind) String() string {
	if int(k) >= len(eventKindNames) {
		return "EventKind(?)"
	}
	return eventKindNames[k]
}

// Event is one trace record. IDs are widened to plain integers so the
// package stays dependency-free; AtNs is monotonic nanoseconds since the
// tracer was created.
type Event struct {
	Seq    uint64
	AtNs   int64
	Kind   EventKind
	Txn    int64
	Client int32
	Page   int32
	Slot   int32
	Extra  int64
}

// appendJSON renders the event as one JSON object (no trailing newline).
func (e Event) appendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = appendInt(b, int64(e.Seq))
	b = append(b, `,"at_ns":`...)
	b = appendInt(b, e.AtNs)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","txn":`...)
	b = appendInt(b, e.Txn)
	b = append(b, `,"client":`...)
	b = appendInt(b, int64(e.Client))
	b = append(b, `,"page":`...)
	b = appendInt(b, int64(e.Page))
	b = append(b, `,"slot":`...)
	b = appendInt(b, int64(e.Slot))
	b = append(b, `,"extra":`...)
	b = appendInt(b, e.Extra)
	b = append(b, '}')
	return b
}

func appendInt(b []byte, v int64) []byte {
	return fmt.Appendf(b, "%d", v)
}

// String renders the event as its JSONL line.
func (e Event) String() string { return string(e.appendJSON(nil)) }

// Tracer is a runtime-switchable, ring-buffered event log. It is lossy by
// design: when the ring wraps, old events are overwritten, and when a
// writer cannot take the buffer lock immediately the event is dropped and
// counted rather than ever stalling the hot path. Disabled, Emit is one
// atomic load.
type Tracer struct {
	enabled atomic.Bool
	dropped atomic.Int64
	start   time.Time

	mu   sync.Mutex
	buf  []Event
	next uint64 // total events written; buf[(next-1) % len] is newest
}

// DefaultTraceBuf is the default ring capacity.
const DefaultTraceBuf = 4096

// NewTracer returns a disabled tracer with the given ring capacity
// (DefaultTraceBuf if size <= 0).
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultTraceBuf
	}
	return &Tracer{start: time.Now(), buf: make([]Event, size)}
}

// SetEnabled switches tracing on or off at runtime.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Dropped returns the number of events lost to record-path contention.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Seq returns the total number of events recorded since creation.
func (t *Tracer) Seq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Emit records one event if tracing is enabled.
func (t *Tracer) Emit(k EventKind, txn int64, client, page, slot int32, extra int64) {
	if !t.enabled.Load() {
		return
	}
	at := time.Since(t.start).Nanoseconds()
	if !t.mu.TryLock() {
		t.dropped.Add(1)
		return
	}
	t.buf[t.next%uint64(len(t.buf))] = Event{
		Seq: t.next, AtNs: at, Kind: k, Txn: txn, Client: client,
		Page: page, Slot: slot, Extra: extra,
	}
	t.next++
	t.mu.Unlock()
}

// last returns up to n retained events, oldest first, filtered (keep when
// filter is nil or returns true). n <= 0 means all retained events.
func (t *Tracer) last(n int, filter func(*Event) bool) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := uint64(len(t.buf))
	count := t.next
	if count > size {
		count = size
	}
	var out []Event
	for i := t.next - count; i < t.next; i++ {
		e := &t.buf[i%size]
		if filter == nil || filter(e) {
			out = append(out, *e)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Last returns the last n retained events, oldest first.
func (t *Tracer) Last(n int) []Event { return t.last(n, nil) }

// ForTxn returns the last n retained events involving transaction txn.
func (t *Tracer) ForTxn(txn int64, n int) []Event {
	return t.last(n, func(e *Event) bool { return e.Txn == txn })
}

// ForPage returns the last n retained events touching page p — the net to
// cast when a failed audit implicates an object but not a transaction:
// the page's history names every transaction that touched it.
func (t *Tracer) ForPage(p int32, n int) []Event {
	return t.last(n, func(e *Event) bool { return e.Page == p })
}

// WriteJSONL writes the last n retained events (all if n <= 0), filtered
// to transaction txn if txn != 0, as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer, n int, txn int64) error {
	var filter func(*Event) bool
	if txn != 0 {
		filter = func(e *Event) bool { return e.Txn == txn }
	}
	return t.WriteJSONLFiltered(w, n, filter)
}

// WriteJSONLFiltered writes the last n retained events (all if n <= 0)
// matching filter (nil: all) as JSON lines — the building block for the
// admin endpoint's txn/page query combinations.
func (t *Tracer) WriteJSONLFiltered(w io.Writer, n int, filter func(*Event) bool) error {
	var b []byte
	for _, e := range t.last(n, filter) {
		b = e.appendJSON(b[:0])
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// FormatEvents renders events as an indented multi-line block for test
// failure logs.
func FormatEvents(evs []Event) string {
	var sb strings.Builder
	for _, e := range evs {
		sb.WriteString("  ")
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
