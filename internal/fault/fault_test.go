package fault

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestCrashPointFiresOnKthHit(t *testing.T) {
	p := Register("test.kth-hit")
	defer p.Disarm()
	p.Arm(3)
	for i := 1; i <= 5; i++ {
		err := p.Check()
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
		if i == 3 {
			var c *Crash
			if !errors.As(err, &c) || c.Point != "test.kth-hit" || c.Hit != 3 {
				t.Fatalf("crash payload %+v", err)
			}
			if !IsCrash(err) {
				t.Fatal("IsCrash false for a *Crash")
			}
		}
	}
}

func TestCrashPointDisarmedIsSilent(t *testing.T) {
	p := Register("test.disarmed")
	for i := 0; i < 100; i++ {
		if err := p.Check(); err != nil {
			t.Fatalf("disarmed point fired: %v", err)
		}
	}
}

func TestCrashPointPanicMode(t *testing.T) {
	p := Register("test.panic")
	defer p.Disarm()
	p.ArmPanic(1)
	defer func() {
		r := recover()
		if _, ok := r.(*Crash); !ok {
			t.Fatalf("recovered %v, want *Crash", r)
		}
	}()
	p.Check()
	t.Fatal("armed panic point did not panic")
}

func TestRegistryEnumerationAndDisarmAll(t *testing.T) {
	a := Register("test.enum-a")
	b := Register("test.enum-b")
	if Register("test.enum-a") != a {
		t.Fatal("Register not idempotent")
	}
	if Get("test.enum-b") != b {
		t.Fatal("Get missed a registered point")
	}
	seen := map[string]bool{}
	for _, n := range Points() {
		seen[n] = true
	}
	if !seen["test.enum-a"] || !seen["test.enum-b"] {
		t.Fatalf("Points() missing entries: %v", Points())
	}
	a.Arm(1)
	b.Arm(1)
	DisarmAll()
	if a.Check() != nil || b.Check() != nil {
		t.Fatal("DisarmAll left a point armed")
	}
}

func TestIsCrashWrapped(t *testing.T) {
	if IsCrash(errors.New("plain")) {
		t.Fatal("plain error reported as crash")
	}
	p := Register("test.wrap")
	defer p.Disarm()
	p.Arm(1)
	err := p.Check()
	if !IsCrash(wrapErr{err}) {
		t.Fatal("wrapped crash not detected")
	}
}

type wrapErr struct{ inner error }

func (w wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w wrapErr) Unwrap() error { return w.inner }

// pipeConn is a minimal in-memory Conn for exercising FaultConn.
type pipeConn struct {
	in, out chan *core.Msg
	once    *sync.Once
	done    chan struct{}
}

func pipePair() (*pipeConn, *pipeConn) {
	a2b := make(chan *core.Msg, 64)
	b2a := make(chan *core.Msg, 64)
	done := make(chan struct{})
	once := new(sync.Once)
	return &pipeConn{in: b2a, out: a2b, once: once, done: done},
		&pipeConn{in: a2b, out: b2a, once: once, done: done}
}

func (c *pipeConn) Send(m *core.Msg) error {
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return errors.New("closed")
	}
}

func (c *pipeConn) Recv() (*core.Msg, error) {
	// Drain buffered messages before reporting closure, mirroring the
	// live transports: a close must not discard messages sent before it.
	select {
	case m := <-c.in:
		return m, nil
	default:
	}
	select {
	case m := <-c.in:
		return m, nil
	case <-c.done:
		return nil, errors.New("closed")
	}
}

func (c *pipeConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func TestFaultConnKillAfterSends(t *testing.T) {
	a, b := pipePair()
	fc := WrapConn(a, ConnPlan{KillAfterSends: 3})
	for i := 0; i < 2; i++ {
		if err := fc.Send(&core.Msg{}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := fc.Send(&core.Msg{}); !errors.Is(err, ErrKilled) {
		t.Fatalf("3rd send err = %v, want ErrKilled", err)
	}
	if !fc.Killed() {
		t.Fatal("conn not marked killed")
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal("pre-kill message lost")
	}
	// The peer sees closure.
	if _, err := b.Recv(); err == nil {
		if _, err := b.Recv(); err == nil {
			t.Fatal("peer still receiving after kill")
		}
	}
}

func TestFaultConnByteBudget(t *testing.T) {
	a, _ := pipePair()
	fc := WrapConn(a, ConnPlan{KillAfterBytes: 100})
	if err := fc.Send(&core.Msg{Data: make([]byte, 90)}); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := fc.Send(&core.Msg{Data: make([]byte, 90)}); !errors.Is(err, ErrKilled) {
		t.Fatalf("over budget err = %v, want ErrKilled", err)
	}
}

func TestFaultConnPartitionDropsBothWays(t *testing.T) {
	a, b := pipePair()
	fc := WrapConn(a, ConnPlan{})
	fc.Partition(true)
	if err := fc.Send(&core.Msg{Req: 1}); err != nil {
		t.Fatalf("partitioned send errored: %v", err)
	}
	select {
	case <-b.in:
		t.Fatal("partitioned message delivered")
	default:
	}
	// Inbound messages are eaten too: Recv must not return the message
	// sent while partitioned, but must return one sent after healing.
	b.Send(&core.Msg{Req: 2})
	got := make(chan *core.Msg, 1)
	go func() {
		m, err := fc.Recv()
		if err == nil {
			got <- m
		}
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Partition(false)
	b.Send(&core.Msg{Req: 3})
	select {
	case m := <-got:
		if m.Req != 3 {
			t.Fatalf("received Req=%d, want 3 (the post-heal message)", m.Req)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("healed conn never delivered")
	}
}

func TestFaultConnLatencyDelays(t *testing.T) {
	a, _ := pipePair()
	fc := WrapConn(a, ConnPlan{Seed: 7, SendLatency: Latency{Base: 20 * time.Millisecond}})
	start := time.Now()
	if err := fc.Send(&core.Msg{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("send took %v, want >= ~20ms", d)
	}
}

func TestFaultConnSeededKillDeterministic(t *testing.T) {
	run := func() int {
		a, _ := pipePair()
		fc := WrapConn(a, ConnPlan{Seed: 42, KillProb: 0.05})
		n := 0
		for i := 0; i < 10000; i++ {
			if err := fc.Send(&core.Msg{}); err != nil {
				break
			}
			n++
		}
		return n
	}
	n1, n2 := run(), run()
	if n1 != n2 {
		t.Fatalf("same seed, different kill points: %d vs %d", n1, n2)
	}
	if n1 == 10000 {
		t.Fatal("KillProb=0.05 never killed in 10k messages")
	}
}
