// Package fault provides deterministic fault injection for the live
// system: a process-wide registry of named crash points that code under
// test traverses (zero-cost when disarmed), and a connection wrapper that
// injects seeded latency, kills, and partitions at the transport layer.
//
// Crash points model fail-stop process death at a precise instruction
// boundary ("between the WAL write and the fsync"). Production code marks
// the boundary with a registered *CrashPoint and calls Check on it; tests
// arm a point to fire on its k-th traversal, either by returning an
// injected *Crash error (which the live server turns into a simulated
// fail-stop) or by panicking.
package fault

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Crash is the injected failure delivered when an armed crash point
// fires. It implements error; panic-mode points panic with a *Crash.
type Crash struct {
	Point string // crash point name
	Hit   int64  // traversal count at which it fired (1-based)
}

func (c *Crash) Error() string {
	return fmt.Sprintf("fault: injected crash at %q (hit %d)", c.Point, c.Hit)
}

// IsCrash reports whether err is (or wraps) an injected crash.
func IsCrash(err error) bool {
	var c *Crash
	return errorsAs(err, &c)
}

// errorsAs is errors.As without the reflection-heavy general case: the
// only chains we build are *Crash and fmt.Errorf wrappers.
func errorsAs(err error, target **Crash) bool {
	for err != nil {
		if c, ok := err.(*Crash); ok {
			*target = c
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// arming is one Arm call's state; swapping the whole struct keeps Check
// race-free without locks.
type arming struct {
	k      int64 // fire on the k-th traversal (1-based)
	panics bool
	count  atomic.Int64
}

// CrashPoint is one named crash site. The zero of cost when disarmed is a
// single atomic pointer load.
type CrashPoint struct {
	name string
	arm  atomic.Pointer[arming]
}

// Name returns the point's registered name.
func (p *CrashPoint) Name() string { return p.name }

// Arm makes the point return a *Crash error on its k-th traversal
// (1-based) after this call. Re-arming resets the traversal count.
func (p *CrashPoint) Arm(k int64) {
	if k < 1 {
		k = 1
	}
	p.arm.Store(&arming{k: k})
}

// ArmPanic is Arm, but the point panics with a *Crash instead of
// returning it — for call sites that cannot propagate errors.
func (p *CrashPoint) ArmPanic(k int64) {
	if k < 1 {
		k = 1
	}
	p.arm.Store(&arming{k: k, panics: true})
}

// Disarm deactivates the point.
func (p *CrashPoint) Disarm() { p.arm.Store(nil) }

// Check is called by production code at the crash site. Disarmed (the
// normal state) it is a nil pointer load. Armed, it counts the traversal
// and fires on exactly the k-th one.
func (p *CrashPoint) Check() error {
	a := p.arm.Load()
	if a == nil {
		return nil
	}
	if a.count.Add(1) != a.k {
		return nil
	}
	c := &Crash{Point: p.name, Hit: a.k}
	if a.panics {
		panic(c)
	}
	return c
}

var (
	regMu  sync.Mutex
	points = map[string]*CrashPoint{}
)

// Register returns the crash point named name, creating it on first use.
// Registration is idempotent; typical use is a package-level var.
func Register(name string) *CrashPoint {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &CrashPoint{name: name}
	points[name] = p
	return p
}

// Get returns the registered point or nil.
func Get(name string) *CrashPoint {
	regMu.Lock()
	defer regMu.Unlock()
	return points[name]
}

// Points returns all registered crash point names, sorted — the fuzzer's
// enumeration surface.
func Points() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DisarmAll deactivates every registered point (test cleanup, and
// mandatory before re-opening a database after an injected crash: recovery
// traverses the same sites).
func DisarmAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range points {
		p.arm.Store(nil)
	}
}
