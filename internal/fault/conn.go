package fault

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Conn is the transport surface faults are injected into. It is
// structurally identical to live.Conn so a *FaultConn satisfies both.
type Conn interface {
	Send(m *core.Msg) error
	Recv() (*core.Msg, error)
	Close() error
}

// ErrKilled is returned by Send/Recv after an injected connection kill.
var ErrKilled = errors.New("fault: connection killed")

// Latency is an injected delay: Base plus a uniform draw in [0, Jitter).
type Latency struct {
	Base   time.Duration
	Jitter time.Duration
}

// ConnPlan is a seeded, per-direction fault plan for one connection. The
// zero plan injects nothing.
type ConnPlan struct {
	// Seed drives every random draw (jitter, kill probability); equal
	// seeds replay the same fault schedule against the same traffic.
	Seed int64

	// SendLatency/RecvLatency delay each message in that direction.
	SendLatency Latency
	RecvLatency Latency

	// One-shot kills: close the connection on the Nth outbound (inbound)
	// message; that message is lost. 0 disables.
	KillAfterSends int64
	KillAfterRecvs int64
	// KillAfterBytes kills once the summed Data payload of messages in
	// both directions exceeds the budget. 0 disables.
	KillAfterBytes int64

	// KillProb is a recurring fault: each message independently kills the
	// connection with this probability.
	KillProb float64
}

// FaultConn wraps a Conn and applies a ConnPlan. It additionally exposes a
// Partition toggle: while partitioned, messages in both directions are
// silently dropped (the connection stays open, mimicking a network that
// eats traffic rather than resetting).
type FaultConn struct {
	inner Conn
	plan  ConnPlan

	rngMu sync.Mutex
	rng   *rand.Rand

	sends, recvs, bytes atomic.Int64
	partitioned         atomic.Bool
	killed              atomic.Bool
}

// WrapConn applies plan to inner.
func WrapConn(inner Conn, plan ConnPlan) *FaultConn {
	return &FaultConn{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Partition toggles the partition: true drops all traffic until healed.
func (f *FaultConn) Partition(on bool) { f.partitioned.Store(on) }

// Killed reports whether an injected kill has fired.
func (f *FaultConn) Killed() bool { return f.killed.Load() }

// Kill closes the connection immediately (a scripted one-shot kill).
func (f *FaultConn) Kill() {
	if f.killed.CompareAndSwap(false, true) {
		f.inner.Close()
	}
}

// delayAndRoll draws the latency sleep and the kill roll under one rng
// acquisition, then sleeps outside the lock.
func (f *FaultConn) delayAndRoll(l Latency) (killRoll bool) {
	var d time.Duration
	f.rngMu.Lock()
	d = l.Base
	if l.Jitter > 0 {
		d += time.Duration(f.rng.Int63n(int64(l.Jitter)))
	}
	if f.plan.KillProb > 0 {
		killRoll = f.rng.Float64() < f.plan.KillProb
	}
	f.rngMu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return killRoll
}

// checkKill applies the message-count, byte-budget, and probabilistic kill
// rules for one message; it returns true if the connection just died.
func (f *FaultConn) checkKill(n int64, after int64, dataLen int, roll bool) bool {
	budget := f.plan.KillAfterBytes
	overBudget := budget > 0 && f.bytes.Add(int64(dataLen)) > budget
	if (after > 0 && n >= after) || overBudget || roll {
		f.Kill()
		return true
	}
	return false
}

func (f *FaultConn) Send(m *core.Msg) error {
	if f.killed.Load() {
		return ErrKilled
	}
	roll := f.delayAndRoll(f.plan.SendLatency)
	if f.checkKill(f.sends.Add(1), f.plan.KillAfterSends, len(m.Data), roll) {
		return ErrKilled
	}
	if f.partitioned.Load() {
		return nil // eaten by the network
	}
	return f.inner.Send(m)
}

func (f *FaultConn) Recv() (*core.Msg, error) {
	for {
		if f.killed.Load() {
			return nil, ErrKilled
		}
		m, err := f.inner.Recv()
		if err != nil {
			if f.killed.Load() {
				return nil, ErrKilled
			}
			return nil, err
		}
		roll := f.delayAndRoll(f.plan.RecvLatency)
		if f.checkKill(f.recvs.Add(1), f.plan.KillAfterRecvs, len(m.Data), roll) {
			return nil, ErrKilled
		}
		if f.partitioned.Load() {
			continue // eaten by the network
		}
		return m, nil
	}
}

func (f *FaultConn) Close() error {
	f.killed.Store(true)
	return f.inner.Close()
}

// Flush forwards batch-boundary flush hints to transports that buffer
// writes (the live TCP framing coalesces sends); fault injection must not
// strand frames in the wrapped transport's buffer.
func (f *FaultConn) Flush() error {
	if f.killed.Load() {
		return ErrKilled
	}
	if fl, ok := f.inner.(interface{ Flush() error }); ok {
		return fl.Flush()
	}
	return nil
}
