// Package benchjson records the perf trajectory of the experiment
// harness. Each invocation of cmd/figures with -benchjson appends one Run
// to a JSON file (BENCH_figures.json at the repo root by convention), so
// successive PRs can compare wall-clock, cells/sec, and parallel speedup
// against the recorded history.
//
// File format:
//
//	{"runs": [ { "timestamp": ..., "jobs": ..., "sweeps": [...] }, ... ]}
package benchjson

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Benchmark records one `go test -bench` measurement attached to a run
// (e.g. the allocation profile of a figure's cell grid, or the live
// system's commit throughput).
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// OpsPerSec and P99Ns record throughput-style measurements (e.g. the
	// live benchmark's committed txn/s and p99 commit latency).
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	P99Ns     float64 `json:"p99_ns,omitempty"`
	// TTFCNs is the recovery benchmark's time-to-first-commit: OpenServer
	// over a crashed database through the first post-restart commit ack.
	TTFCNs float64 `json:"ttfc_ns,omitempty"`
	// EarlyOpsPerSec/LateOpsPerSec record the reclustering benchmark's
	// interleaved false-sharing throughput before and after the recluster
	// round (late/early is the recovery ratio CI floors).
	EarlyOpsPerSec float64 `json:"early_ops_per_sec,omitempty"`
	LateOpsPerSec  float64 `json:"late_ops_per_sec,omitempty"`
}

// SweepBench is one sweep's timing within a run.
type SweepBench struct {
	ID          string  `json:"id"`
	Cells       int     `json:"cells"`
	WallSeconds float64 `json:"wall_seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// Run is one recorded harness invocation.
type Run struct {
	Timestamp      string       `json:"timestamp"` // RFC 3339
	GoVersion      string       `json:"go_version"`
	GOOS           string       `json:"goos"`
	GOARCH         string       `json:"goarch"`
	NumCPU         int          `json:"num_cpu"`
	GOMAXPROCS     int          `json:"gomaxprocs"`
	Jobs           int          `json:"jobs"`
	Quick          bool         `json:"quick"`
	Seed           int64        `json:"seed"`
	Only           string       `json:"only,omitempty"` // -only selection, if any
	Cells          int          `json:"cells"`
	WallSeconds    float64      `json:"wall_seconds"`
	CellsPerSec    float64      `json:"cells_per_sec"`
	SpeedupVsJobs1 float64      `json:"speedup_vs_jobs1,omitempty"`
	Sweeps         []SweepBench `json:"sweeps,omitempty"`
	// Benchmarks carries go-test benchmark measurements recorded
	// alongside harness runs (keyed by benchmark name), so allocation
	// trajectories live in the same history as wall-clock ones.
	Benchmarks map[string]Benchmark `json:"benchmarks,omitempty"`
	// Note labels what this run measured (e.g. "gob codec + per-commit
	// fsync baseline"), so before/after pairs read without git archaeology.
	Note string `json:"note,omitempty"`
}

// NewRun returns a Run stamped with the current time and host/toolchain
// metadata; the caller fills in the measurements.
func NewRun() Run {
	return Run{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

type file struct {
	Runs []Run `json:"runs"`
}

// Load reads the recorded runs; a missing file yields an empty history.
func Load(path string) ([]Run, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	var f file
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchjson: parsing %s: %w", path, err)
	}
	return f.Runs, nil
}

// Append adds run to the history at path, creating the file if needed.
func Append(path string, run Run) error {
	runs, err := Load(path)
	if err != nil {
		return err
	}
	runs = append(runs, run)
	data, err := json.MarshalIndent(file{Runs: runs}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Baseline returns the most recent recorded run with Jobs == 1 matching
// the given mode (quick flag, seed, and -only selection), or nil. It is
// the denominator for SpeedupVsJobs1.
func Baseline(runs []Run, quick bool, seed int64, only string) *Run {
	for i := len(runs) - 1; i >= 0; i-- {
		r := runs[i]
		if r.Jobs == 1 && r.Quick == quick && r.Seed == seed && r.Only == only &&
			r.WallSeconds > 0 {
			return &r
		}
	}
	return nil
}
