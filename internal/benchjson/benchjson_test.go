package benchjson

import (
	"path/filepath"
	"testing"
)

func TestAppendLoadBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	if runs, err := Load(path); err != nil || runs != nil {
		t.Fatalf("missing file: runs=%v err=%v", runs, err)
	}

	serial := NewRun()
	serial.Jobs = 1
	serial.Quick = true
	serial.Seed = 42
	serial.Cells = 664
	serial.WallSeconds = 120
	serial.CellsPerSec = float64(serial.Cells) / serial.WallSeconds
	serial.Sweeps = []SweepBench{{ID: "fig3", Cells: 40, WallSeconds: 9, CellsPerSec: 40.0 / 9}}
	serial.Benchmarks = map[string]Benchmark{
		"BenchmarkFig03HotColdLowLocality": {NsPerOp: 2.1e9, BytesPerOp: 5.8e7, AllocsPerOp: 399165},
	}
	if err := Append(path, serial); err != nil {
		t.Fatal(err)
	}

	parallel := NewRun()
	parallel.Jobs = 8
	parallel.Quick = true
	parallel.Seed = 42
	parallel.Cells = 664
	parallel.WallSeconds = 30
	if err := Append(path, parallel); err != nil {
		t.Fatal(err)
	}

	runs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[0].Jobs != 1 || runs[1].Jobs != 8 {
		t.Fatalf("run order corrupted: %+v", runs)
	}
	if runs[0].Sweeps[0].ID != "fig3" {
		t.Fatalf("sweep detail lost: %+v", runs[0])
	}
	if runs[0].GoVersion == "" || runs[0].Timestamp == "" || runs[0].NumCPU < 1 {
		t.Fatalf("metadata missing: %+v", runs[0])
	}
	if b := runs[0].Benchmarks["BenchmarkFig03HotColdLowLocality"]; b.AllocsPerOp != 399165 {
		t.Fatalf("benchmark detail lost: %+v", runs[0].Benchmarks)
	}

	base := Baseline(runs, true, 42, "")
	if base == nil || base.WallSeconds != 120 {
		t.Fatalf("baseline = %+v", base)
	}
	if Baseline(runs, false, 42, "") != nil {
		t.Fatal("baseline matched the wrong mode")
	}
	if Baseline(runs, true, 7, "") != nil {
		t.Fatal("baseline matched the wrong seed")
	}
	if Baseline(runs, true, 42, "fig3") != nil {
		t.Fatal("baseline matched the wrong selection")
	}
}
