package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBatchMeansBasics(t *testing.T) {
	var b BatchMeans
	if !math.IsNaN(b.Mean()) {
		t.Fatal("empty mean should be NaN")
	}
	for _, v := range []float64{10, 12, 8, 10} {
		b.Add(v)
	}
	if b.N() != 4 {
		t.Fatalf("N = %d", b.N())
	}
	mean, hw := b.CI90()
	if mean != 10 {
		t.Fatalf("mean = %v", mean)
	}
	// s = sqrt((0+4+4+0)/3) = 1.633; hw = t(3)*s/2 = 2.353*0.8165 = 1.921
	if math.Abs(hw-1.921) > 0.01 {
		t.Fatalf("half width = %v", hw)
	}
}

func TestBatchMeansSingleBatch(t *testing.T) {
	var b BatchMeans
	b.Add(5)
	mean, hw := b.CI90()
	if mean != 5 || !math.IsNaN(hw) {
		t.Fatalf("mean=%v hw=%v", mean, hw)
	}
}

func TestT90Table(t *testing.T) {
	if T90(1) != 6.314 || T90(10) != 1.812 || T90(30) != 1.697 {
		t.Fatal("t-table values wrong")
	}
	if T90(100) != 1.645 {
		t.Fatal("normal approximation not used for large df")
	}
	if !math.IsNaN(T90(0)) {
		t.Fatal("df=0 should be NaN")
	}
}

func TestBatchMeansCICoversTrueMean(t *testing.T) {
	// Frequentist sanity: the 90% CI should contain the true mean in
	// roughly 90% of repetitions.
	rng := rand.New(rand.NewSource(1))
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		var b BatchMeans
		for j := 0; j < 10; j++ {
			b.Add(5 + rng.NormFloat64())
		}
		mean, hw := b.CI90()
		if math.Abs(mean-5) <= hw {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.84 || frac > 0.96 {
		t.Fatalf("coverage = %.3f, want ~0.90", frac)
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		// Constrain magnitudes to keep the direct computation stable.
		var w Welford
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			clean = append(clean, x)
			w.Add(x)
		}
		if len(clean) == 0 {
			return w.N() == 0
		}
		sum := 0.0
		min, max := clean[0], clean[0]
		for _, x := range clean {
			sum += x
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		mean := sum / float64(len(clean))
		if math.Abs(w.Mean()-mean) > 1e-6*(1+math.Abs(mean)) {
			return false
		}
		if w.Min() != min || w.Max() != max {
			return false
		}
		if len(clean) >= 2 {
			ss := 0.0
			for _, x := range clean {
				ss += (x - mean) * (x - mean)
			}
			v := ss / float64(len(clean)-1)
			if math.Abs(w.Var()-v) > 1e-4*(1+v) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Var()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Fatal("empty Welford should be all NaN")
	}
}
