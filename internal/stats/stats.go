// Package stats provides the statistics machinery used by the simulation
// study: batch-means confidence intervals (the paper reports 90% CIs on
// response times computed by batch means) and running moments.
package stats

import "math"

// t90 holds two-sided 90% Student-t critical values (0.95 quantile) for
// df = 1..30; beyond that the normal approximation 1.645 is used.
var t90 = []float64{
	6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
	1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
	1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
}

// T90 returns the two-sided 90% Student-t critical value for the given
// degrees of freedom.
func T90(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df <= len(t90) {
		return t90[df-1]
	}
	return 1.645
}

// BatchMeans accumulates per-batch observations and produces a mean with a
// 90% confidence half-width.
type BatchMeans struct {
	batches []float64
}

// Add appends one batch observation.
func (b *BatchMeans) Add(v float64) { b.batches = append(b.batches, v) }

// N returns the number of batches.
func (b *BatchMeans) N() int { return len(b.batches) }

// Mean returns the grand mean over batches (NaN if empty).
func (b *BatchMeans) Mean() float64 {
	if len(b.batches) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range b.batches {
		sum += v
	}
	return sum / float64(len(b.batches))
}

// CI90 returns the grand mean and the 90% confidence half-width computed
// by the batch-means method.
func (b *BatchMeans) CI90() (mean, halfWidth float64) {
	n := len(b.batches)
	mean = b.Mean()
	if n < 2 {
		return mean, math.NaN()
	}
	ss := 0.0
	for _, v := range b.batches {
		d := v - mean
		ss += d * d
	}
	s := math.Sqrt(ss / float64(n-1))
	return mean, T90(n-1) * s / math.Sqrt(float64(n))
}

// Welford tracks running mean/variance/extremes of a stream.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (NaN if empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the sample variance (NaN if fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (NaN if empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation (NaN if empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}
