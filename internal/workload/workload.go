// Package workload generates the client reference strings for the paper's
// four sharing workloads (HOTCOLD, UNIFORM, HICON, PRIVATE) and the
// Interleaved PRIVATE false-sharing variant (Section 4.2 / Table 2).
//
// A transaction is a string of object references: TransPages distinct
// pages are drawn (hot region with probability HotProb, cold otherwise),
// and on each page a uniform number of distinct objects in
// [LocMin, LocMax] is referenced. Each referenced object is read; with the
// region's per-object write probability it is also updated. The reference
// order is either clustered (all references to a page together) or
// unclustered (references interleaved across pages).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Kind selects the sharing pattern.
type Kind int

const (
	HotCold Kind = iota
	Uniform
	HiCon
	Private
	InterleavedPrivate
)

var kindNames = [...]string{"HOTCOLD", "UNIFORM", "HICON", "PRIVATE", "INTERLEAVED-PRIVATE"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "Kind(?)"
	}
	return kindNames[k]
}

// Spec describes a workload for one simulation run.
type Spec struct {
	Kind        Kind
	DBPages     int
	ObjsPerPage int
	NumClients  int

	TransPages int // pages accessed per transaction
	LocMin     int // min objects referenced per page
	LocMax     int // max objects referenced per page
	Clustered  bool

	HotPages      int     // hot region size in pages (per client, or shared for HICON)
	HotProb       float64 // probability a page access goes to the hot region
	WriteProbHot  float64 // per-object update probability in the hot region
	WriteProbCold float64 // per-object update probability in the cold region
}

// Validate panics on inconsistent specs (fail fast at experiment setup).
func (s *Spec) Validate() {
	switch {
	case s.DBPages <= 0 || s.ObjsPerPage <= 0 || s.NumClients <= 0:
		panic("workload: sizes must be positive")
	case s.TransPages <= 0 || s.LocMin <= 0 || s.LocMax < s.LocMin || s.LocMax > s.ObjsPerPage:
		panic("workload: bad transaction shape")
	case s.Kind != Uniform && s.HotPages <= 0:
		panic("workload: hot region required")
	case (s.Kind == HotCold || s.Kind == HiCon) && s.HotPages >= s.DBPages:
		panic("workload: hot region exceeds database")
	}
	if s.Kind == HotCold || s.Kind == Private || s.Kind == InterleavedPrivate {
		if s.HotPages*s.NumClients > s.DBPages {
			panic(fmt.Sprintf("workload: %d clients x %d hot pages exceed %d DB pages",
				s.NumClients, s.HotPages, s.DBPages))
		}
	}
	if s.Kind == Private || s.Kind == InterleavedPrivate {
		if s.TransPages > s.HotPages {
			// The paper's footnote: 30-page transactions are incompatible
			// with 25-page PRIVATE hot regions (pages are drawn without
			// replacement).
			panic("workload: transaction larger than PRIVATE hot region")
		}
	}
}

// AvgObjectsPerTxn returns the expected transaction length in objects.
func (s *Spec) AvgObjectsPerTxn() float64 {
	return float64(s.TransPages) * float64(s.LocMin+s.LocMax) / 2
}

// Layout builds the physical layout for this spec, installing the
// Interleaved PRIVATE remap when required.
func (s *Spec) Layout() *core.Layout {
	l := core.NewLayout(s.DBPages, s.ObjsPerPage)
	if s.Kind == InterleavedPrivate {
		core.InterleavePairs(l, s.NumClients, func(c int) core.PageID {
			return core.PageID((c - 1) * s.HotPages)
		}, s.HotPages)
	}
	return l
}

// Ref is one object reference in a transaction's string.
type Ref struct {
	Obj   core.ObjID
	Write bool
}

// Generator produces transactions for one client.
type Generator struct {
	spec   Spec
	layout *core.Layout
	client int // 1-based
	rng    *rand.Rand

	hotStart, hotEnd int // logical page range [start, end)
}

// NewGenerator creates the generator for client c (1-based).
func NewGenerator(spec Spec, layout *core.Layout, client int, rng *rand.Rand) *Generator {
	spec.Validate()
	if client < 1 || client > spec.NumClients {
		panic("workload: client out of range")
	}
	g := &Generator{spec: spec, layout: layout, client: client, rng: rng}
	switch spec.Kind {
	case HotCold, Private, InterleavedPrivate:
		g.hotStart = (client - 1) * spec.HotPages
		g.hotEnd = g.hotStart + spec.HotPages
	case HiCon:
		g.hotStart, g.hotEnd = 0, spec.HotPages
	}
	return g
}

// hot reports whether logical page p lies in this client's hot range.
func (g *Generator) hot(p int) bool { return p >= g.hotStart && p < g.hotEnd }

// coldPage draws a page outside the hot range. For PRIVATE variants the
// cold region is the shared read-only second half of the database; for
// HOTCOLD/HICON it is the rest of the database.
func (g *Generator) coldPage() int {
	s := &g.spec
	switch s.Kind {
	case Uniform:
		return g.rng.Intn(s.DBPages)
	case HotCold:
		// "20% to the database as a whole": the cold draw may land in the
		// hot region too.
		return g.rng.Intn(s.DBPages)
	case Private, InterleavedPrivate:
		half := s.DBPages / 2
		return half + g.rng.Intn(s.DBPages-half)
	default: // HiCon: the rest of the database
		for {
			p := g.rng.Intn(s.DBPages)
			if !g.hot(p) {
				return p
			}
		}
	}
}

// NextTxn generates one transaction reference string.
func (g *Generator) NextTxn() []Ref {
	s := &g.spec
	type pageRefs struct {
		page int
		hot  bool
		objs []int // slots
	}
	chosen := make(map[int]bool, s.TransPages)
	pages := make([]pageRefs, 0, s.TransPages)
	for len(pages) < s.TransPages {
		var p int
		var isHot bool
		if s.Kind != Uniform && g.rng.Float64() < s.HotProb {
			p = g.hotStart + g.rng.Intn(s.HotPages)
			isHot = true
		} else {
			p = g.coldPage()
			isHot = g.hot(p)
		}
		if chosen[p] {
			continue // without replacement
		}
		chosen[p] = true
		n := s.LocMin + g.rng.Intn(s.LocMax-s.LocMin+1)
		slots := g.rng.Perm(s.ObjsPerPage)[:n]
		pages = append(pages, pageRefs{page: p, hot: isHot, objs: slots})
	}

	var refs []Ref
	for _, pr := range pages {
		wp := s.WriteProbCold
		if pr.hot {
			wp = s.WriteProbHot
		}
		for _, slot := range pr.objs {
			logical := pr.page*s.ObjsPerPage + slot
			refs = append(refs, Ref{
				Obj:   g.layout.Obj(logical),
				Write: g.rng.Float64() < wp,
			})
		}
	}
	if !s.Clustered {
		g.rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
	}
	return refs
}

// ---- Paper presets ----

// Locality selects the paper's two (TransSize, PageLocality) settings,
// both averaging 120 objects per transaction.
type Locality int

const (
	// LowLocality: 30 pages/txn, 1-7 objects per page (avg 4).
	LowLocality Locality = iota
	// HighLocality: 10 pages/txn, 8-16 objects per page (avg 12).
	HighLocality
)

func (l Locality) String() string {
	if l == LowLocality {
		return "low"
	}
	return "high"
}

func (l Locality) apply(s *Spec) {
	if l == LowLocality {
		s.TransPages, s.LocMin, s.LocMax = 30, 1, 7
	} else {
		s.TransPages, s.LocMin, s.LocMax = 10, 8, 16
	}
}

// Defaults shared by the presets (Table 1 sizing).
const (
	DefaultDBPages     = 1250
	DefaultObjsPerPage = 20
	DefaultNumClients  = 10
)

// HotColdSpec builds the HOTCOLD workload: 80% of each client's accesses
// go to its private 50-page hot region, 20% to the whole database.
func HotColdSpec(loc Locality, writeProb float64) Spec {
	s := Spec{
		Kind: HotCold, DBPages: DefaultDBPages, ObjsPerPage: DefaultObjsPerPage,
		NumClients: DefaultNumClients,
		HotPages:   50, HotProb: 0.8,
		WriteProbHot: writeProb, WriteProbCold: writeProb,
	}
	loc.apply(&s)
	return s
}

// UniformSpec builds the UNIFORM workload: accesses uniform over the
// database.
func UniformSpec(loc Locality, writeProb float64) Spec {
	s := Spec{
		Kind: Uniform, DBPages: DefaultDBPages, ObjsPerPage: DefaultObjsPerPage,
		NumClients:   DefaultNumClients,
		WriteProbHot: writeProb, WriteProbCold: writeProb,
	}
	loc.apply(&s)
	return s
}

// HiConSpec builds the HICON workload: all clients direct 80% of accesses
// to one shared hot region of 20% of the database.
func HiConSpec(loc Locality, writeProb float64) Spec {
	s := Spec{
		Kind: HiCon, DBPages: DefaultDBPages, ObjsPerPage: DefaultObjsPerPage,
		NumClients: DefaultNumClients,
		HotPages:   DefaultDBPages / 5, HotProb: 0.8,
		WriteProbHot: writeProb, WriteProbCold: writeProb,
	}
	loc.apply(&s)
	return s
}

// PrivateSpec builds the PRIVATE workload: 25-page private hot regions in
// the first half of the database (updates only there), with the second
// half a shared read-only cold region. Only the high-locality transaction
// shape is compatible (paper footnote); LowLocality selects the paper's
// alternative check of transSize=13, locality 8 (avg).
func PrivateSpec(loc Locality, writeProb float64) Spec {
	s := Spec{
		Kind: Private, DBPages: DefaultDBPages, ObjsPerPage: DefaultObjsPerPage,
		NumClients: DefaultNumClients,
		HotPages:   25, HotProb: 0.8,
		WriteProbHot: writeProb, WriteProbCold: 0,
	}
	if loc == HighLocality {
		loc.apply(&s)
	} else {
		s.TransPages, s.LocMin, s.LocMax = 13, 4, 12 // avg 8 objects/page
	}
	return s
}

// InterleavedPrivateSpec builds the Interleaved PRIVATE workload: PRIVATE
// with the hot objects of client pairs interleaved onto shared pages
// (extreme false sharing). Transactions are generated against the logical
// PRIVATE layout and remapped, yielding roughly transSize 20 and average
// locality 6 as in the paper.
func InterleavedPrivateSpec(writeProb float64) Spec {
	s := PrivateSpec(HighLocality, writeProb)
	s.Kind = InterleavedPrivate
	return s
}

// Scale multiplies the database and hot-region sizes by dbFactor and the
// transaction page count by txnFactor (the paper's Section 5.6.1 scaling:
// dbFactor 9, txnFactor 3).
func Scale(s Spec, dbFactor, txnFactor int) Spec {
	s.DBPages *= dbFactor
	if s.Kind != Uniform {
		s.HotPages *= dbFactor
	}
	s.TransPages *= txnFactor
	return s
}
