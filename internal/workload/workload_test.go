package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func gen(t *testing.T, s Spec, client int, seed int64) *Generator {
	t.Helper()
	return NewGenerator(s, s.Layout(), client, rand.New(rand.NewSource(seed)))
}

func TestTransactionShape(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"hotcold-low", HotColdSpec(LowLocality, 0.2)},
		{"hotcold-high", HotColdSpec(HighLocality, 0.2)},
		{"uniform-low", UniformSpec(LowLocality, 0.2)},
		{"hicon-high", HiConSpec(HighLocality, 0.2)},
		{"private-high", PrivateSpec(HighLocality, 0.2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := gen(t, tc.spec, 1, 7)
			for i := 0; i < 50; i++ {
				refs := g.NextTxn()
				pages := map[core.PageID]int{}
				seen := map[core.ObjID]bool{}
				for _, r := range refs {
					pages[r.Obj.Page]++
					if seen[r.Obj] {
						t.Fatalf("object %v referenced twice", r.Obj)
					}
					seen[r.Obj] = true
					if int(r.Obj.Page) >= tc.spec.DBPages || int(r.Obj.Slot) >= tc.spec.ObjsPerPage {
						t.Fatalf("reference %v out of bounds", r.Obj)
					}
				}
				if len(pages) != tc.spec.TransPages {
					t.Fatalf("txn touched %d pages, want %d", len(pages), tc.spec.TransPages)
				}
				for p, n := range pages {
					if n < tc.spec.LocMin || n > tc.spec.LocMax {
						t.Fatalf("page %d has %d refs, want [%d,%d]", p, n, tc.spec.LocMin, tc.spec.LocMax)
					}
				}
			}
		})
	}
}

func TestAverageTransactionLength(t *testing.T) {
	// Both paper settings must average ~120 objects per transaction.
	for _, loc := range []Locality{LowLocality, HighLocality} {
		s := HotColdSpec(loc, 0)
		if got := s.AvgObjectsPerTxn(); got != 120 {
			t.Fatalf("%v: AvgObjectsPerTxn = %v", loc, got)
		}
		g := gen(t, s, 1, 3)
		total := 0
		const txns = 400
		for i := 0; i < txns; i++ {
			total += len(g.NextTxn())
		}
		avg := float64(total) / txns
		if math.Abs(avg-120) > 3 {
			t.Fatalf("%v: empirical avg %.1f objects/txn, want ~120", loc, avg)
		}
	}
}

func TestHotColdSkew(t *testing.T) {
	s := HotColdSpec(LowLocality, 0)
	client := 3
	g := gen(t, s, client, 11)
	hotStart := core.PageID((client - 1) * s.HotPages)
	hotEnd := hotStart + core.PageID(s.HotPages)
	hot, total := 0, 0
	for i := 0; i < 200; i++ {
		for _, r := range g.NextTxn() {
			total++
			if r.Obj.Page >= hotStart && r.Obj.Page < hotEnd {
				hot++
			}
		}
	}
	frac := float64(hot) / float64(total)
	// 80% directed to the hot region plus ~4% of cold draws landing there
	// (cold is uniform over the whole database, hot region is 4% of it).
	if frac < 0.74 || frac < 0.80*0.9 || frac > 0.90 {
		t.Fatalf("hot fraction = %.3f, want ~0.81", frac)
	}
}

func TestHiConSharedSkew(t *testing.T) {
	s := HiConSpec(LowLocality, 0)
	// All clients share the same hot region [0, 250).
	for _, client := range []int{1, 5, 10} {
		g := gen(t, s, client, 13)
		hot, total := 0, 0
		for i := 0; i < 100; i++ {
			for _, r := range g.NextTxn() {
				total++
				if int(r.Obj.Page) < s.HotPages {
					hot++
				}
			}
		}
		frac := float64(hot) / float64(total)
		if frac < 0.7 || frac > 0.9 {
			t.Fatalf("client %d hot fraction = %.3f", client, frac)
		}
	}
}

func TestPrivateWritesOnlyInOwnRegion(t *testing.T) {
	s := PrivateSpec(HighLocality, 0.5)
	for _, client := range []int{1, 4, 10} {
		g := gen(t, s, client, 17)
		hotStart := core.PageID((client - 1) * s.HotPages)
		hotEnd := hotStart + core.PageID(s.HotPages)
		for i := 0; i < 100; i++ {
			for _, r := range g.NextTxn() {
				if r.Write && (r.Obj.Page < hotStart || r.Obj.Page >= hotEnd) {
					t.Fatalf("client %d wrote %v outside its private region [%d,%d)",
						client, r.Obj, hotStart, hotEnd)
				}
			}
		}
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	s := PrivateSpec(HighLocality, 1.0)
	written := map[core.ObjID]int{}
	for client := 1; client <= s.NumClients; client++ {
		g := gen(t, s, client, 19)
		for i := 0; i < 30; i++ {
			for _, r := range g.NextTxn() {
				if !r.Write {
					continue
				}
				if prev, ok := written[r.Obj]; ok && prev != client {
					t.Fatalf("object %v written by clients %d and %d", r.Obj, prev, client)
				}
				written[r.Obj] = client
			}
		}
	}
}

func TestWriteProbabilityZeroAndOne(t *testing.T) {
	g0 := gen(t, UniformSpec(LowLocality, 0), 1, 23)
	for _, r := range g0.NextTxn() {
		if r.Write {
			t.Fatal("write generated at probability 0")
		}
	}
	g1 := gen(t, UniformSpec(LowLocality, 1), 1, 23)
	for _, r := range g1.NextTxn() {
		if !r.Write {
			t.Fatal("read-only reference at probability 1")
		}
	}
}

func TestClusteredKeepsPagesContiguous(t *testing.T) {
	s := UniformSpec(HighLocality, 0.2)
	s.Clustered = true
	g := gen(t, s, 1, 29)
	for i := 0; i < 20; i++ {
		refs := g.NextTxn()
		seen := map[core.PageID]bool{}
		var cur core.PageID = -1
		for _, r := range refs {
			if r.Obj.Page != cur {
				if seen[r.Obj.Page] {
					t.Fatal("clustered transaction revisited a page")
				}
				seen[r.Obj.Page] = true
				cur = r.Obj.Page
			}
		}
	}
}

func TestUnclusteredInterleaves(t *testing.T) {
	s := UniformSpec(HighLocality, 0.2)
	g := gen(t, s, 1, 31)
	interleaved := false
	for i := 0; i < 20 && !interleaved; i++ {
		refs := g.NextTxn()
		last := map[core.PageID]int{}
		for idx, r := range refs {
			if prev, ok := last[r.Obj.Page]; ok && idx-prev > 1 {
				interleaved = true
			}
			last[r.Obj.Page] = idx
		}
	}
	if !interleaved {
		t.Fatal("unclustered reference strings never interleaved pages")
	}
}

func TestInterleavedPrivateFalseSharing(t *testing.T) {
	s := InterleavedPrivateSpec(0.5)
	layout := s.Layout()
	g1 := NewGenerator(s, layout, 1, rand.New(rand.NewSource(41)))
	g2 := NewGenerator(s, layout, 2, rand.New(rand.NewSource(43)))
	pages1 := map[core.PageID]bool{}
	pages2 := map[core.PageID]bool{}
	objs1 := map[core.ObjID]bool{}
	objs2 := map[core.ObjID]bool{}
	for i := 0; i < 60; i++ {
		for _, r := range g1.NextTxn() {
			if r.Write {
				pages1[r.Obj.Page] = true
				objs1[r.Obj] = true
			}
		}
		for _, r := range g2.NextTxn() {
			if r.Write {
				pages2[r.Obj.Page] = true
				objs2[r.Obj] = true
			}
		}
	}
	sharedPages := 0
	for p := range pages1 {
		if pages2[p] {
			sharedPages++
		}
	}
	if sharedPages == 0 {
		t.Fatal("paired clients never shared a page (interleaving broken)")
	}
	for o := range objs1 {
		if objs2[o] {
			t.Fatalf("object %v written by both clients (should be false sharing only)", o)
		}
	}
	// Objects split page halves: client 1 on top, client 2 on bottom.
	half := uint16(s.ObjsPerPage / 2)
	for o := range objs1 {
		if o.Slot >= half {
			t.Fatalf("client 1 hot object %v in bottom half", o)
		}
	}
	for o := range objs2 {
		if o.Slot < half {
			t.Fatalf("client 2 hot object %v in top half", o)
		}
	}
}

func TestScale(t *testing.T) {
	s := Scale(HotColdSpec(LowLocality, 0.1), 9, 3)
	if s.DBPages != 11250 || s.HotPages != 450 || s.TransPages != 90 {
		t.Fatalf("scaled spec: db=%d hot=%d txn=%d", s.DBPages, s.HotPages, s.TransPages)
	}
	s.Validate()
	g := gen(t, s, 10, 5)
	refs := g.NextTxn()
	pages := map[core.PageID]bool{}
	for _, r := range refs {
		pages[r.Obj.Page] = true
	}
	if len(pages) != 90 {
		t.Fatalf("scaled txn touched %d pages", len(pages))
	}
}

func TestValidatePanics(t *testing.T) {
	cases := map[string]Spec{
		"zero db":      {Kind: Uniform, ObjsPerPage: 20, NumClients: 1, TransPages: 1, LocMin: 1, LocMax: 1},
		"bad locality": func() Spec { s := UniformSpec(LowLocality, 0); s.LocMax = 50; return s }(),
		"hot too big":  func() Spec { s := HotColdSpec(LowLocality, 0); s.HotPages = 5000; return s }(),
		"private txn":  func() Spec { s := PrivateSpec(HighLocality, 0); s.TransPages = 30; return s }(),
	}
	for name, s := range cases {
		s := s
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			s.Validate()
		})
	}
}

func TestDeterministicGeneration(t *testing.T) {
	s := HotColdSpec(LowLocality, 0.3)
	g1 := gen(t, s, 2, 99)
	g2 := gen(t, s, 2, 99)
	for i := 0; i < 10; i++ {
		a, b := g1.NextTxn(), g2.NextTxn()
		if len(a) != len(b) {
			t.Fatal("lengths differ")
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("refs differ at %d: %v vs %v", j, a[j], b[j])
			}
		}
	}
}
