//go:build !linux

package live

// Reactor stub for platforms without epoll. ListenAndServe asks for a
// reactor, newReactor declines, and the server falls back cleanly to the
// goroutine-per-connection transport — same Conn semantics, just a
// per-session goroutine cost. The type exists so the Server struct and
// the registered-fds gauge compile unchanged.

import (
	"fmt"
	"net"
	"sync/atomic"
)

type reactor struct {
	fds atomic.Int64 // always 0: nothing ever registers
}

func newReactor(s *Server) (*reactor, error) {
	return nil, fmt.Errorf("live: reactor transport requires epoll (linux)")
}

func (r *reactor) stop()     {}
func (r *reactor) wait()     {}
func (r *reactor) shutdown() {}

// attachReactor is unreachable on this platform (newReactor never
// succeeds); close the connection defensively if it is ever called.
func (s *Server) attachReactor(r *reactor, c net.Conn) {
	c.Close()
}
