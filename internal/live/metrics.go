package live

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// msgKindLabels names the client->server message kinds for metric labels.
// Indexed by core.MsgKind (the client-originated prefix of the enum).
var msgKindLabels = [...]string{
	core.MReadReq:     "read",
	core.MWriteReq:    "write",
	core.MCommitReq:   "commit",
	core.MAbortReq:    "abort",
	core.MCallbackAck: "callback-ack",
	core.MDeescReply:  "deesc-reply",
}

// serverMetrics holds the live server's instrument handles, resolved once
// at startup so the hot paths never touch the registry's map (the record
// path is a few atomic adds).
type serverMetrics struct {
	reqs     [len(msgKindLabels)]*obs.Counter
	handleNs [len(msgKindLabels)]*obs.Histogram

	// Lock waits, measured from the engine's EvBlock to the eventual
	// EvGrant, split by granted granularity — the live analogue of the
	// paper's blocking-cost distinction between page and object locks.
	lockWaitPageNs *obs.Histogram
	lockWaitObjNs  *obs.Histogram

	// Engine-lock width, aggregated across shards: how long requests
	// wait for a shard's mutex and how long holders keep it. Hold covers
	// only the engine step, staging, and (for commits) the WAL frame
	// write — store reads and fsyncs show up in wait for other requests
	// if they ever creep back in. Per-shard views of the same
	// observations live on each engineShard under
	// oodb_live_shard_lock_{wait,hold}_ns{shard="i"}.
	engineLockWaitNs *obs.Histogram
	engineLockHoldNs *obs.Histogram

	// multiShardCommits counts commits whose write set spanned more than
	// one engine shard (they take several shard locks in canonical
	// order); crossShardDeadlocks counts victims aborted by the
	// cross-shard waits-for merge rather than a single shard's local
	// detector.
	multiShardCommits   *obs.Counter
	crossShardDeadlocks *obs.Counter

	// commitSyncWaitNs is the group-commit durability wait, kept out of
	// handleNs so commit handling latency reflects processing, not fsync
	// scheduling.
	commitSyncWaitNs *obs.Histogram

	callbackFanout *obs.Histogram
	leaseExpiries  *obs.Counter
	outboxDeposes  *obs.Counter

	walAppendNs  *obs.Histogram
	walFsyncNs   *obs.Histogram
	walBytes     *obs.Counter
	walRecords   *obs.Counter
	walSyncs     *obs.Counter
	walGroupSize *obs.Histogram

	checkpointNs *obs.Histogram
	checkpoints  *obs.Counter
	flushPages   *obs.Counter

	// Recovery counters are bumped once per OpenServer from the opening
	// replay's RecoveryStats (with a shared registry they accumulate
	// across restarts, which is the point: restarts are countable events).
	recoveryPagesReplayed *obs.Counter
	recoveryPagesSkipped  *obs.Counter
	recoveryDurationNs    *obs.Counter

	// Online reclustering: objects migrated (relocation entries applied by
	// committed migration txns), suspect pages the planner chose to split,
	// front-door redirects served for retired addresses, and requests
	// bounced off a mid-migration fence.
	reclusterMoves        *obs.Counter
	reclusterPagesSplit   *obs.Counter
	reclusterRedirects    *obs.Counter
	reclusterFenceBounces *obs.Counter

	// Reactor transport: epoll_wait returns that carried at least one
	// event (batches), events delivered across those batches, latency from
	// a cross-thread wakeup request (Kick, close) to the loop picking it
	// up, and sessions deposed because their pending write queue exceeded
	// the drain cap (a slow reader under the reactor's per-connection
	// byte-queue analogue of the outbox limit). The registered-fd count is
	// a FuncGauge (registerServerGauges).
	reactorBatches *obs.Counter
	reactorEvents  *obs.Counter
	reactorWakeNs  *obs.Histogram
	reactorDeposes *obs.Counter
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{}
	for k, label := range msgKindLabels {
		m.reqs[k] = reg.Counter(
			`oodb_server_requests_total{kind="`+label+`"}`,
			"client requests handled, by message kind")
		m.handleNs[k] = reg.Histogram(
			`oodb_server_handle_ns{kind="`+label+`"}`,
			"request handling latency, ns, by message kind (commit excludes the group-commit durability wait)")
	}
	m.engineLockWaitNs = reg.Histogram("oodb_live_engine_lock_wait_ns",
		"time spent waiting to acquire the server's engine lock, ns")
	m.engineLockHoldNs = reg.Histogram("oodb_live_engine_lock_hold_ns",
		"time the engine lock was held per acquisition, ns")
	m.commitSyncWaitNs = reg.Histogram("oodb_live_commit_sync_wait_ns",
		"commit durability (group-commit fsync) wait, off-lock, ns")
	m.multiShardCommits = reg.Counter("oodb_live_multi_shard_commits_total",
		"commits whose write set spanned more than one engine shard")
	m.crossShardDeadlocks = reg.Counter("oodb_live_cross_shard_deadlocks_total",
		"deadlock victims aborted by the cross-shard waits-for merge")
	m.lockWaitPageNs = reg.Histogram(`oodb_server_lock_wait_ns{granularity="page"}`,
		"time blocked requests waited before a grant, ns, by granted granularity")
	m.lockWaitObjNs = reg.Histogram(`oodb_server_lock_wait_ns{granularity="object"}`, "")
	m.callbackFanout = reg.Histogram("oodb_server_callback_fanout",
		"clients called back per callback round")
	m.leaseExpiries = reg.Counter("oodb_server_lease_expiries_total",
		"sessions disconnected for exceeding the callback deadline")
	m.outboxDeposes = reg.Counter("oodb_live_outbox_deposes_total",
		"sessions deposed for an overflowing outbox (client stopped reading)")
	m.walAppendNs = reg.Histogram("oodb_wal_append_ns",
		"WAL append latency (frame write; bodies are encoded off-lock), ns")
	m.walFsyncNs = reg.Histogram("oodb_wal_fsync_ns",
		"WAL fsync latency on commit, ns")
	m.walBytes = reg.Counter("oodb_wal_appended_bytes_total",
		"bytes appended to the WAL")
	m.walRecords = reg.Counter("oodb_wal_records_total",
		"commit records appended to the WAL")
	m.walSyncs = reg.Counter("oodb_wal_syncs_total",
		"WAL fsyncs issued (group commit: one sync can cover many records)")
	m.walGroupSize = reg.Histogram("oodb_live_wal_group_size",
		"commit records made durable per WAL fsync (group-commit batch size)")
	m.checkpointNs = reg.Histogram("oodb_checkpoint_ns",
		"checkpoint duration (store flush + log truncate), ns")
	m.checkpoints = reg.Counter("oodb_checkpoints_total", "checkpoints completed")
	m.flushPages = reg.Counter("oodb_store_flush_pages_total",
		"dirty pages written by store flushes")
	m.recoveryPagesReplayed = reg.Counter("oodb_live_recovery_pages_replayed_total",
		"distinct pages receiving at least one replayed WAL image at recovery")
	m.recoveryPagesSkipped = reg.Counter("oodb_live_recovery_pages_skipped_total",
		"distinct pages whose logged images were all below the checkpoint watermark at recovery")
	m.recoveryDurationNs = reg.Counter("oodb_live_recovery_duration_ns",
		"total wall time spent replaying the WAL at recovery, ns")
	m.reclusterMoves = reg.Counter("oodb_recluster_moves_total",
		"objects migrated to new placements by committed reclustering txns")
	m.reclusterPagesSplit = reg.Counter("oodb_recluster_pages_split_total",
		"false-sharing suspect pages the reclusterer split writers off of")
	m.reclusterRedirects = reg.Counter("oodb_recluster_redirects_total",
		"requests for retired addresses answered with an MRelocated redirect")
	m.reclusterFenceBounces = reg.Counter("oodb_recluster_fence_bounces_total",
		"requests bounced off a mid-migration fence (client retries shortly)")
	m.reactorBatches = reg.Counter("oodb_live_reactor_event_batches_total",
		"epoll_wait returns that delivered at least one event")
	m.reactorEvents = reg.Counter("oodb_live_reactor_events_total",
		"epoll events delivered to reactor loops")
	m.reactorWakeNs = reg.Histogram("oodb_live_reactor_wake_ns",
		"latency from a cross-thread loop wakeup request to the loop running it, ns")
	m.reactorDeposes = reg.Counter("oodb_live_reactor_deposes_total",
		"sessions deposed for a pending write queue over the drain cap (slow reader)")
	return m
}

// registerServerGauges exposes the server's instantaneous state. Engine
// gauges sum across shards taking ONE shard lock at a time, so a scrape
// may briefly contend with one shard but can never serialize the whole
// engine (the pre-shard gauges held the single engine lock, which meant
// a slow scrape stalled every commit; with shards that would have
// amplified to all-locks-at-once).
func (s *Server) registerServerGauges(reg *obs.Registry) {
	shardSum := func(read func(*core.ServerEngine) int64) func() int64 {
		return func() int64 {
			if s.closedFlag.Load() {
				return 0
			}
			var sum int64
			for _, sh := range s.shards {
				sh.mu.Lock()
				sum += read(sh.eng)
				sh.mu.Unlock()
			}
			return sum
		}
	}
	reg.FuncGauge("oodb_server_sessions", "attached client sessions",
		func() int64 { return int64(len(s.sessionMap())) })
	reg.FuncGauge("oodb_live_shards", "engine shards (page-hash partitions)",
		func() int64 { return int64(len(s.shards)) })
	reg.FuncGauge("oodb_live_reactor_fds", "sockets registered with the reactor's event loops",
		func() int64 {
			if r := s.reactor.Load(); r != nil {
				return r.fds.Load()
			}
			return 0
		})
	reg.FuncGauge("oodb_server_active_txns", "transactions the engine is tracking (multi-shard txns count once per shard)",
		shardSum(func(e *core.ServerEngine) int64 { return int64(e.ActiveTxns()) }))
	reg.FuncGauge("oodb_server_blocked_requests", "requests queued behind locks",
		shardSum(func(e *core.ServerEngine) int64 { return int64(e.BlockedRequests()) }))
	reg.FuncGauge("oodb_server_open_rounds", "callback rounds in flight",
		shardSum(func(e *core.ServerEngine) int64 { return int64(e.OpenRounds()) }))
	reg.FuncGauge("oodb_server_locked_pages", "pages with tracked lock state",
		shardSum(func(e *core.ServerEngine) int64 { return int64(e.Locks.LockedPages()) }))
	reg.FuncGauge("oodb_server_locking_txns", "transactions holding locks (multi-shard txns count once per shard)",
		shardSum(func(e *core.ServerEngine) int64 { return int64(e.Locks.LockingTxns()) }))
	reg.FuncGauge("oodb_server_copy_entries", "cached-copy registrations at the server",
		shardSum(func(e *core.ServerEngine) int64 { return int64(e.Copies.CopyCount()) }))
	reg.FuncGauge("oodb_wal_size_bytes", "current WAL length",
		func() int64 {
			if s.closedFlag.Load() {
				return 0
			}
			return s.wal.Len()
		})
	reg.FuncCounter("oodb_trace_dropped_total",
		"trace events dropped by the lossy ring", s.tracer.Dropped)
	reg.FuncGauge("oodb_recluster_table_size", "live relocation-table entries",
		func() int64 {
			if s.relocs == nil {
				return 0
			}
			return int64(len(s.relocs.view().m))
		})
}

// onEngineTrace receives every protocol event from one engine shard
// (under that shard's lock). It feeds the tracer and turns
// EvBlock->EvGrant pairs into lock-wait latency observations, keyed by
// the granted granularity. blockStart is global under bsMu: a
// transaction blocks on one shard but its terminal event (commit/abort
// owner step, or a dedup'd disconnect abort) may fire on another.
func (s *Server) onEngineTrace(sh *engineShard, kind obs.EventKind, txn core.TxnID, client core.ClientID, obj core.ObjID, extra int64) {
	switch kind {
	case obs.EvLockReq:
		// Heat sample: every read/write request that reached the engine,
		// by object. Disabled, this is one atomic load. The reclustering
		// planner's own traffic is excluded — its migrations touching a
		// page must not feed the very evidence that plans migrations.
		if int64(client) != s.internalID.Load() {
			s.heat.RecordAccess(int32(client), int32(obj.Page), int32(obj.Slot), extra == 1)
		}
	case obs.EvBlock:
		if int64(client) != s.internalID.Load() {
			s.heat.RecordBlock(int32(obj.Page))
		}
		s.bsMu.Lock()
		if _, ok := s.blockStart[txn]; !ok {
			s.blockStart[txn] = time.Now()
		}
		s.bsMu.Unlock()
		s.pokeDetector()
	case obs.EvGrant:
		s.bsMu.Lock()
		start, ok := s.blockStart[txn]
		if ok {
			delete(s.blockStart, txn)
		}
		s.bsMu.Unlock()
		if ok {
			wait := time.Since(start).Nanoseconds()
			if core.GrantLevel(extra) == core.GrantPage {
				s.metrics.lockWaitPageNs.Observe(wait)
			} else {
				s.metrics.lockWaitObjNs.Observe(wait)
			}
		}
	case obs.EvRound:
		s.metrics.callbackFanout.Observe(extra)
	case obs.EvRoundCancel:
		// The round died with this client's answer outstanding; retire
		// any callback deadline armed for it so the watchdog cannot
		// depose a client that owes nothing.
		if sess := s.sessionOf(client); sess != nil {
			sess.clearCB(extra)
		}
	case obs.EvCallbackAck:
		if extra == 1 {
			// A busy reply defers the conflict to the holder's commit —
			// with several shards that wait can be part of a cross-shard
			// cycle only the merged waits-for graph sees.
			s.pokeDetector()
		}
	case obs.EvCommit, obs.EvAbort, obs.EvDeadlock:
		s.bsMu.Lock()
		delete(s.blockStart, txn)
		s.bsMu.Unlock()
	}
	s.tracer.Emit(kind, int64(txn), int32(client), int32(obj.Page), int32(obj.Slot), extra)
}

// observeStage records one commit-stage latency into the stage histograms
// (with the txn as bucket exemplar) and, when tracing, into the per-txn
// trace (Slot carries the stage index, Extra the duration in ns) — so a
// p99 bucket's exemplar links to /trace?txn= and the trace shows where
// that transaction's time went.
func (s *Server) observeStage(st obs.CommitStage, txn core.TxnID, client core.ClientID, d time.Duration) {
	ns := d.Nanoseconds()
	s.spans.Observe(st, ns, int64(txn))
	s.tracer.Emit(obs.EvCommitStage, int64(txn), int32(client), 0, int32(st), ns)
}

// clientMetrics holds a live client's instrument handles. A nil
// *clientMetrics (no registry configured) disables collection; every
// method nil-checks.
type clientMetrics struct {
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	fetches     *obs.Counter
	commits     *obs.Counter
	aborts      *obs.Counter
	reconnects  *obs.Counter
	rttNs       *obs.Histogram
}

// newClientMetrics resolves the client-side instruments. The cache
// hit/miss counters carry the granularity the protocol caches at (objects
// under OS, pages otherwise), mirroring the paper's client buffer units.
func newClientMetrics(reg *obs.Registry, proto core.Protocol) *clientMetrics {
	if reg == nil {
		return nil
	}
	unit := "page"
	if proto == core.OS {
		unit = "object"
	}
	return &clientMetrics{
		cacheHits: reg.Counter(`oodb_client_cache_hits_total{kind="`+unit+`"}`,
			"reads/writes satisfied from the client cache, by cached unit"),
		cacheMisses: reg.Counter(`oodb_client_cache_misses_total{kind="`+unit+`"}`,
			"reads/writes that needed a server round trip, by cached unit"),
		fetches: reg.Counter("oodb_client_fetches_total",
			"data/permission fetches sent to the server"),
		commits: reg.Counter("oodb_client_commits_total", "transactions committed"),
		aborts: reg.Counter("oodb_client_aborts_total",
			"transactions aborted (victim notices and voluntary aborts)"),
		reconnects: reg.Counter("oodb_client_reconnects_total",
			"successful session re-registrations after a transport error"),
		rttNs: reg.Histogram("oodb_client_request_rtt_ns",
			"request round-trip time incl. blocking at the server, ns"),
	}
}

func (m *clientMetrics) hit() {
	if m != nil {
		m.cacheHits.Inc()
	}
}

func (m *clientMetrics) miss() {
	if m != nil {
		m.cacheMisses.Inc()
		m.fetches.Inc()
	}
}

func (m *clientMetrics) rtt(d time.Duration) {
	if m != nil {
		m.rttNs.Observe(d.Nanoseconds())
	}
}

func (m *clientMetrics) commit() {
	if m != nil {
		m.commits.Inc()
	}
}

func (m *clientMetrics) abort() {
	if m != nil {
		m.aborts.Inc()
	}
}

func (m *clientMetrics) reconnect() {
	if m != nil {
		m.reconnects.Inc()
	}
}
