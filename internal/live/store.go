// Package live is a real, runnable page-server OODBMS built on the same
// protocol core as the simulator: a goroutine-concurrent server with a
// file-backed page store and write-ahead log, clients with page caches and
// callback handling, and pluggable transports (in-process channels or
// TCP/gob). It implements all five granularity protocols; PS-AA (adaptive
// locking with adaptive callbacks) is the recommended default, as in the
// paper's conclusions.
package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
)

// latchShards is the page-latch shard count: pages hash onto a fixed set
// of RWMutexes, trading a little false sharing for a bounded footprint.
const latchShards = 64

// pageLatches synchronizes the off-lock payload path with commit
// installs: the server reads page/object payloads for staged grants
// without holding its engine lock, while commit processing (still under
// the engine lock) installs afterimages. Readers take the page's latch
// shared, installs take it exclusive — so a payload is never torn, and
// because installs also still run under the engine lock, a payload read
// under the latch is exactly the store state some engine step exposed.
type pageLatches [latchShards]sync.RWMutex

func (l *pageLatches) shard(p core.PageID) *sync.RWMutex {
	return &l[uint64(p)%latchShards]
}

// storeMagic identifies a store file.
const storeMagic = 0x0DB5_94AA

// Crash points on the store's flush path (see internal/fault): a crash
// with some pages written, and a crash after all writes but before the
// fsync. Both leave the WAL un-truncated, so replay must repair them.
var (
	cpFlushPartial = fault.Register("store.flush.partial")
	cpFlushPreSync = fault.Register("store.flush.pre-sync")
)

// Store is a fixed-page database file: a header page followed by DBPages
// pages of PageSize bytes, each page carrying ObjsPerPage fixed-size
// object slots and a trailing CRC. The whole database is mapped into an
// in-memory frame table (databases at the paper's scale are megabytes);
// Flush writes dirty frames back.
type Store struct {
	f           *os.File
	pageSize    int
	objsPerPage int
	numPages    int

	frames [][]byte
	dirty  []bool

	// latches synchronizes off-lock payload reads with commit installs
	// (see pageLatches). flushPages also takes each page's latch for the
	// copy + dirty-clear pair, which is what lets the fuzzy checkpoint
	// flush concurrently with installs; the open/create paths alone skip
	// it (nothing else can hold the store yet).
	latches pageLatches
}

// payload returns the per-page payload size (page minus CRC trailer).
func (s *Store) payload() int { return s.pageSize - 4 }

// ObjSize returns the fixed object slot size.
func (s *Store) ObjSize() int { return s.payload() / s.objsPerPage }

// NumPages returns the database size in pages.
func (s *Store) NumPages() int { return s.numPages }

// ObjsPerPage returns the page fan-out.
func (s *Store) ObjsPerPage() int { return s.objsPerPage }

// CreateStore creates (truncating) a store file with zeroed pages.
func CreateStore(path string, pageSize, objsPerPage, numPages int) (*Store, error) {
	if pageSize < 64 || objsPerPage <= 0 || numPages <= 0 {
		return nil, fmt.Errorf("live: bad store geometry %d/%d/%d", pageSize, objsPerPage, numPages)
	}
	if (pageSize-4)/objsPerPage == 0 {
		return nil, fmt.Errorf("live: page too small for %d objects", objsPerPage)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, pageSize: pageSize, objsPerPage: objsPerPage, numPages: numPages}
	s.frames = make([][]byte, numPages)
	s.dirty = make([]bool, numPages)
	for i := range s.frames {
		s.frames[i] = make([]byte, s.payload())
		s.dirty[i] = true
	}
	if err := s.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if err := s.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenStore opens an existing store file, verifying geometry and page
// checksums.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 20)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: reading store header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != storeMagic {
		f.Close()
		return nil, fmt.Errorf("live: %s is not a store file", path)
	}
	s := &Store{
		f:           f,
		pageSize:    int(binary.LittleEndian.Uint32(hdr[4:])),
		objsPerPage: int(binary.LittleEndian.Uint32(hdr[8:])),
		numPages:    int(binary.LittleEndian.Uint32(hdr[12:])),
	}
	s.frames = make([][]byte, s.numPages)
	s.dirty = make([]bool, s.numPages)
	buf := make([]byte, s.pageSize)
	for p := 0; p < s.numPages; p++ {
		if _, err := f.ReadAt(buf, int64(s.pageSize)*int64(p+1)); err != nil {
			f.Close()
			return nil, fmt.Errorf("live: reading page %d: %w", p, err)
		}
		want := binary.LittleEndian.Uint32(buf[s.payload():])
		if got := crc32.ChecksumIEEE(buf[:s.payload()]); got != want {
			f.Close()
			return nil, fmt.Errorf("live: page %d checksum mismatch (%08x != %08x)", p, got, want)
		}
		s.frames[p] = append([]byte(nil), buf[:s.payload()]...)
	}
	return s, nil
}

func (s *Store) writeHeader() error {
	hdr := make([]byte, 20)
	binary.LittleEndian.PutUint32(hdr[0:], storeMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.pageSize))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.objsPerPage))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(s.numPages))
	_, err := s.f.WriteAt(hdr, 0)
	return err
}

// checkPage validates a page id.
func (s *Store) checkPage(p core.PageID) error {
	if p < 0 || int(p) >= s.numPages {
		return fmt.Errorf("live: page %d out of range [0,%d)", p, s.numPages)
	}
	return nil
}

// checkObj validates an object id.
func (s *Store) checkObj(o core.ObjID) error {
	if err := s.checkPage(o.Page); err != nil {
		return err
	}
	if int(o.Slot) >= s.objsPerPage {
		return fmt.Errorf("live: slot %d out of range [0,%d)", o.Slot, s.objsPerPage)
	}
	return nil
}

// ReadPage returns a copy of page p's payload. Safe to call without the
// server lock: the page latch (shared) excludes concurrent installs.
func (s *Store) ReadPage(p core.PageID) ([]byte, error) {
	if err := s.checkPage(p); err != nil {
		return nil, err
	}
	l := s.latches.shard(p)
	l.RLock()
	out := append([]byte(nil), s.frames[p]...)
	l.RUnlock()
	return out, nil
}

// ReadObj returns a copy of object o's bytes. Safe to call without the
// server lock (see ReadPage).
func (s *Store) ReadObj(o core.ObjID) ([]byte, error) {
	if err := s.checkObj(o); err != nil {
		return nil, err
	}
	sz := s.ObjSize()
	off := int(o.Slot) * sz
	l := s.latches.shard(o.Page)
	l.RLock()
	out := append([]byte(nil), s.frames[o.Page][off:off+sz]...)
	l.RUnlock()
	return out, nil
}

// WriteObj installs an object afterimage (data must be at most ObjSize;
// shorter images are zero-padded). The exclusive page latch fences the
// bytes against concurrent off-lock payload readers.
func (s *Store) WriteObj(o core.ObjID, data []byte) error {
	if err := s.checkObj(o); err != nil {
		return err
	}
	sz := s.ObjSize()
	if len(data) > sz {
		return fmt.Errorf("live: object %v image %d bytes exceeds slot size %d", o, len(data), sz)
	}
	off := int(o.Slot) * sz
	l := s.latches.shard(o.Page)
	l.Lock()
	slot := s.frames[o.Page][off : off+sz]
	n := copy(slot, data)
	for i := n; i < sz; i++ {
		slot[i] = 0
	}
	s.dirty[o.Page] = true
	l.Unlock()
	return nil
}

// WritePage installs a full page payload.
func (s *Store) WritePage(p core.PageID, data []byte) error {
	if err := s.checkPage(p); err != nil {
		return err
	}
	if len(data) != s.payload() {
		return fmt.Errorf("live: page image %d bytes, want %d", len(data), s.payload())
	}
	l := s.latches.shard(p)
	l.Lock()
	copy(s.frames[p], data)
	s.dirty[p] = true
	l.Unlock()
	return nil
}

// flushPages writes dirty pages selected by owned (nil = all) back to the
// file with fresh checksums, without fsyncing. Each page's frame copy and
// dirty-flag clear happen together under its exclusive latch, so flushing
// runs concurrently with commit installs: an install that lands before
// the copy is flushed now, one that lands after re-dirties the page for
// the next flush. On a write error the page is re-marked dirty before
// returning — the flag may only go clean once the bytes are actually in
// the file, or a later checkpoint would truncate the WAL record that
// still covers them.
func (s *Store) flushPages(owned func(core.PageID) bool) (int, error) {
	buf := make([]byte, s.pageSize)
	wrote := 0
	for p := 0; p < s.numPages; p++ {
		pid := core.PageID(p)
		if owned != nil && !owned(pid) {
			continue
		}
		l := s.latches.shard(pid)
		l.Lock()
		if !s.dirty[p] {
			l.Unlock()
			continue
		}
		if wrote > 0 {
			if err := cpFlushPartial.Check(); err != nil {
				l.Unlock()
				return wrote, err
			}
		}
		copy(buf, s.frames[p])
		s.dirty[p] = false
		l.Unlock()
		binary.LittleEndian.PutUint32(buf[s.payload():], crc32.ChecksumIEEE(buf[:s.payload()]))
		if _, err := s.f.WriteAt(buf, int64(s.pageSize)*int64(p+1)); err != nil {
			l.Lock()
			s.dirty[p] = true
			l.Unlock()
			return wrote, err
		}
		wrote++
	}
	return wrote, nil
}

// Flush writes all dirty pages (with checksums) to the file and syncs.
func (s *Store) Flush() error {
	if _, err := s.flushPages(nil); err != nil {
		return err
	}
	if err := cpFlushPreSync.Check(); err != nil {
		return err
	}
	return s.f.Sync()
}

// FlushOwned flushes the dirty pages selected by owned and syncs, and
// returns how many pages it wrote. The fuzzy checkpoint calls it once per
// engine shard, so no single flush ever stalls the whole store.
//
// force, when non-nil, is the write-ahead hook: it runs after every
// selected page has been copied (and marked clean) under its latch but
// before the first byte reaches the file. The checkpoint passes a closure
// that forces the WAL durable through its current tail; any install
// captured in a copied image appended its record before the copy (the
// commit holds the page latch across install), so the force covers it —
// no page image can hit the store file ahead of the log records covering
// it, even with commits flowing during the flush. Pages are staged in
// memory between copy and write so a record appended DURING the write
// loop can never sneak into a written image uncovered. On any error every
// staged-but-unwritten page is re-marked dirty — the flag may only stay
// clean once the bytes are actually in the file, or a later checkpoint
// would truncate the WAL records that still cover them. When nothing in
// the selection was dirty, force and the fsync (and its crash point) are
// skipped — there is no write to lose.
func (s *Store) FlushOwned(owned func(core.PageID) bool, force func() error) (int, error) {
	type stagedPage struct {
		p   core.PageID
		buf []byte
	}
	var staged []stagedPage
	for p := 0; p < s.numPages; p++ {
		pid := core.PageID(p)
		if owned != nil && !owned(pid) {
			continue
		}
		l := s.latches.shard(pid)
		l.Lock()
		if !s.dirty[p] {
			l.Unlock()
			continue
		}
		buf := make([]byte, s.pageSize)
		copy(buf, s.frames[p])
		s.dirty[p] = false
		l.Unlock()
		binary.LittleEndian.PutUint32(buf[s.payload():], crc32.ChecksumIEEE(buf[:s.payload()]))
		staged = append(staged, stagedPage{pid, buf})
	}
	if len(staged) == 0 {
		return 0, nil
	}
	redirty := func(from int) {
		for _, sp := range staged[from:] {
			l := s.latches.shard(sp.p)
			l.Lock()
			s.dirty[sp.p] = true
			l.Unlock()
		}
	}
	if force != nil {
		if err := force(); err != nil {
			redirty(0)
			return 0, err
		}
	}
	wrote := 0
	for i, sp := range staged {
		if wrote > 0 {
			if err := cpFlushPartial.Check(); err != nil {
				redirty(i)
				return wrote, err
			}
		}
		if _, err := s.f.WriteAt(sp.buf, int64(s.pageSize)*int64(sp.p+1)); err != nil {
			redirty(i)
			return wrote, err
		}
		wrote++
	}
	if err := cpFlushPreSync.Check(); err != nil {
		return wrote, err
	}
	return wrote, s.f.Sync()
}

// syncFile fsyncs the store file (pairs with flushPages).
func (s *Store) syncFile() error { return s.f.Sync() }

// DirtyPages returns how many pages are dirty in memory (unflushed).
func (s *Store) DirtyPages() int {
	n := 0
	for _, d := range s.dirty {
		if d {
			n++
		}
	}
	return n
}

// Close flushes and closes the store.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// closeRaw closes the file without flushing — a dying process's view: the
// in-memory frame table is lost, disk keeps whatever the last completed
// flush (plus any partial one) left there.
func (s *Store) closeRaw() error { return s.f.Close() }

var _ io.Closer = (*Store)(nil)
