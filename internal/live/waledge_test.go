package live

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// walWithRecords writes n committed records and returns the log path plus
// the frame boundary offsets (offs[i] = file offset where record i ends).
func walWithRecords(t *testing.T, n int) (string, []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL scanned %d records", len(recs))
	}
	offs := make([]int64, n)
	for i := 0; i < n; i++ {
		rec := &walRecord{
			Txn:    core.TxnID(100 + i),
			Client: 1,
			Objs:   []core.ObjID{o(core.PageID(i), 0)},
			Images: [][]byte{{byte(i), 1, 2, 3}},
			Commit: true,
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		offs[i] = w.off
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, offs
}

func scanFile(t *testing.T, path string) ([]*walRecord, int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, off, err := scanWAL(f)
	if err != nil {
		t.Fatalf("scanWAL returned a hard error: %v", err)
	}
	return recs, off
}

func appendRaw(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

// A tail holding fewer than 8 header bytes is a torn header: the scan
// stops cleanly at the last whole record.
func TestScanWALTruncatedHeaderTail(t *testing.T) {
	path, offs := walWithRecords(t, 2)
	appendRaw(t, path, []byte{0xde, 0xad, 0xbe}) // 3 bytes: not even a header
	recs, off := scanFile(t, path)
	if len(recs) != 2 {
		t.Fatalf("scanned %d records, want 2", len(recs))
	}
	if off != offs[1] {
		t.Fatalf("resume offset %d, want %d (end of last whole record)", off, offs[1])
	}
	// Reopen-and-append recovers the torn tail: the next frame lands at
	// the clean offset and the garbage is overwritten or left past EOF.
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&walRecord{Txn: 999, Commit: true,
		Objs: []core.ObjID{o(5, 0)}, Images: [][]byte{{9}}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, _ = scanFile(t, path)
	if len(recs) != 3 || recs[2].Txn != 999 {
		t.Fatalf("append after torn tail: scanned %d records", len(recs))
	}
}

// A CRC mismatch mid-file stops the scan at the corrupted record — even
// if later frames are intact, their durability ordering can no longer be
// trusted, so they are deliberately discarded.
func TestScanWALCRCMismatchMidFile(t *testing.T) {
	path, offs := walWithRecords(t, 3)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside record 1's body (first byte past its header).
	if _, err := f.WriteAt([]byte{0xff}, offs[0]+8); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, off := scanFile(t, path)
	if len(recs) != 1 {
		t.Fatalf("scanned %d records past a CRC hole, want 1", len(recs))
	}
	if recs[0].Txn != 100 {
		t.Fatalf("surviving record Txn=%d, want 100", recs[0].Txn)
	}
	if off != offs[0] {
		t.Fatalf("resume offset %d, want %d", off, offs[0])
	}
}

// An absurd length field (beyond the 1<<28 sanity bound) is garbage, not
// an allocation request: the scan stops without trying to read 512MiB.
func TestScanWALOversizedLengthField(t *testing.T) {
	path, offs := walWithRecords(t, 1)
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], 1<<29)
	binary.LittleEndian.PutUint32(hdr[4:], 0xabad1dea)
	appendRaw(t, path, hdr)
	recs, off := scanFile(t, path)
	if len(recs) != 1 {
		t.Fatalf("scanned %d records, want 1", len(recs))
	}
	if off != offs[0] {
		t.Fatalf("resume offset %d, want %d", off, offs[0])
	}
}

// A zero-length frame (all-zero header, e.g. preallocated or zero-filled
// tail blocks) terminates the scan cleanly.
func TestScanWALZeroLengthFrame(t *testing.T) {
	path, offs := walWithRecords(t, 2)
	appendRaw(t, path, make([]byte, 8))
	recs, off := scanFile(t, path)
	if len(recs) != 2 {
		t.Fatalf("scanned %d records, want 2", len(recs))
	}
	if off != offs[1] {
		t.Fatalf("resume offset %d, want %d", off, offs[1])
	}
}
