package live

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

// walWithRecords writes n committed records and returns the log path plus
// the frame boundary offsets (offs[i] = file offset where record i ends).
func walWithRecords(t *testing.T, n int) (string, []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, scan, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.recs) != 0 {
		t.Fatalf("fresh WAL scanned %d records", len(scan.recs))
	}
	offs := make([]int64, n)
	for i := 0; i < n; i++ {
		rec := &walRecord{
			Txn:    core.TxnID(100 + i),
			Client: 1,
			Objs:   []core.ObjID{o(core.PageID(i), 0)},
			Images: [][]byte{{byte(i), 1, 2, 3}},
			Commit: true,
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		offs[i] = w.off
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path, offs
}

func scanFile(t *testing.T, path string) ([]*walRecord, int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	scan, err := scanWAL(f)
	if err != nil {
		t.Fatalf("scanWAL returned a hard error: %v", err)
	}
	return scan.recs, scan.off
}

func appendRaw(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

// A tail holding fewer than 8 header bytes is a torn header: the scan
// stops cleanly at the last whole record.
func TestScanWALTruncatedHeaderTail(t *testing.T) {
	path, offs := walWithRecords(t, 2)
	appendRaw(t, path, []byte{0xde, 0xad, 0xbe}) // 3 bytes: not even a header
	recs, off := scanFile(t, path)
	if len(recs) != 2 {
		t.Fatalf("scanned %d records, want 2", len(recs))
	}
	if off != offs[1] {
		t.Fatalf("resume offset %d, want %d (end of last whole record)", off, offs[1])
	}
	// Reopen-and-append recovers the torn tail: the next frame lands at
	// the clean offset and the garbage is overwritten or left past EOF.
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&walRecord{Txn: 999, Commit: true,
		Objs: []core.ObjID{o(5, 0)}, Images: [][]byte{{9}}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	recs, _ = scanFile(t, path)
	if len(recs) != 3 || recs[2].Txn != 999 {
		t.Fatalf("append after torn tail: scanned %d records", len(recs))
	}
}

// A CRC mismatch mid-file stops the scan at the corrupted record — even
// if later frames are intact, their durability ordering can no longer be
// trusted, so they are deliberately discarded.
func TestScanWALCRCMismatchMidFile(t *testing.T) {
	path, offs := walWithRecords(t, 3)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside record 1's body (first byte past its header).
	if _, err := f.WriteAt([]byte{0xff}, offs[0]+8); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, off := scanFile(t, path)
	if len(recs) != 1 {
		t.Fatalf("scanned %d records past a CRC hole, want 1", len(recs))
	}
	if recs[0].Txn != 100 {
		t.Fatalf("surviving record Txn=%d, want 100", recs[0].Txn)
	}
	if off != offs[0] {
		t.Fatalf("resume offset %d, want %d", off, offs[0])
	}
}

// An absurd length field (beyond the 1<<28 sanity bound) is garbage, not
// an allocation request: the scan stops without trying to read 512MiB.
func TestScanWALOversizedLengthField(t *testing.T) {
	path, offs := walWithRecords(t, 1)
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], 1<<29)
	binary.LittleEndian.PutUint32(hdr[4:], 0xabad1dea)
	appendRaw(t, path, hdr)
	recs, off := scanFile(t, path)
	if len(recs) != 1 {
		t.Fatalf("scanned %d records, want 1", len(recs))
	}
	if off != offs[0] {
		t.Fatalf("resume offset %d, want %d", off, offs[0])
	}
}

// TestScanWALBitFlipFuzz sprays random bit flips into the middle of one
// frame and requires the scan to degrade exactly one way: yield the clean
// prefix before the damaged frame and resume there — never a hard error,
// never a phantom record, never a poisoned earlier record. The seed is
// fixed, so a surviving trial stays surviving.
func TestScanWALBitFlipFuzz(t *testing.T) {
	path, offs := walWithRecords(t, 5)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(t.TempDir(), "fuzz.log")
	frameStart, frameEnd := offs[1], offs[2] // record index 2's frame
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 256; trial++ {
		buf := append([]byte(nil), orig...)
		for k, flips := 0, 1+rng.Intn(3); k < flips; k++ {
			pos := frameStart + rng.Int63n(frameEnd-frameStart)
			buf[pos] ^= 1 << uint(rng.Intn(8))
		}
		if bytes.Equal(buf, orig) {
			continue // flips cancelled each other out
		}
		if err := os.WriteFile(target, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, off := scanFile(t, target)
		if len(recs) != 2 || off != offs[1] {
			t.Fatalf("trial %d: scanned %d records to offset %d, want 2 records to %d",
				trial, len(recs), off, offs[1])
		}
		for i, rec := range recs {
			if rec.Txn != core.TxnID(100+i) {
				t.Fatalf("trial %d: surviving record %d has Txn %d", trial, i, rec.Txn)
			}
		}
	}
}

// TestScanWALCheckpointWatermark exercises the watermark frame end to
// end: scan picks the covered offset back up, prefix truncation shifts
// frame and coverage together (the delta encoding is what makes the
// watermark survive the very truncation it authorizes), and a corrupted
// watermark degrades to covered=0 — replay everything, conservatively.
func TestScanWALCheckpointWatermark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int64, 3)
	appendRec := func(i int) {
		t.Helper()
		if err := w.Append(&walRecord{Txn: core.TxnID(100 + i), Client: 1,
			Objs: []core.ObjID{o(core.PageID(i), 0)}, Images: [][]byte{{byte(i), 1}},
			Commit: true}); err != nil {
			t.Fatal(err)
		}
		offs[i] = w.off
	}
	appendRec(0)
	appendRec(1)
	ticket, gen, err := w.appendCheckpoint(offs[0]) // watermark covering record 0
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(ticket, gen); err != nil {
		t.Fatal(err)
	}
	wmStart := offs[1] // the watermark frame begins where record 1 ended
	appendRec(2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := scanWAL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.recs) != 3 || scan.covered != offs[0] {
		t.Fatalf("scan: %d records, covered=%d; want 3 records, covered=%d",
			len(scan.recs), scan.covered, offs[0])
	}

	// Truncate the covered prefix; the watermark must still decode — now to
	// covered=0, since nothing below it survives in the new file.
	w2, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.TruncatePrefix(offs[0]); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := scanFile(t, path)
	if len(recs) != 2 || recs[0].Txn != 101 || recs[1].Txn != 102 {
		t.Fatalf("post-truncation scan: %d records (first Txn %d), want records 101,102",
			len(recs), recs[0].Txn)
	}
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	scan2, err := scanWAL(f2)
	f2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if scan2.covered != 0 {
		t.Fatalf("post-truncation covered=%d, want 0", scan2.covered)
	}

	// A flipped bit inside the watermark body stops the scan at the frame:
	// earlier records survive, coverage resets to zero. Rebuild the
	// pre-truncation image in a second file and damage its watermark.
	path2 := filepath.Join(t.TempDir(), "wal2.log")
	w3, _, err := OpenWAL(path2)
	if err != nil {
		t.Fatal(err)
	}
	w = w3
	appendRec(0)
	appendRec(1)
	ticket, gen, err = w3.appendCheckpoint(offs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := w3.WaitDurable(ticket, gen); err != nil {
		t.Fatal(err)
	}
	appendRec(2)
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
	fw, err := os.OpenFile(path2, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.WriteAt([]byte{0xff}, wmStart+9); err != nil { // inside the watermark body
		t.Fatal(err)
	}
	fw.Close()
	recs, off := scanFile(t, path2)
	if len(recs) != 2 || off != wmStart {
		t.Fatalf("corrupt watermark: %d records to offset %d, want 2 records stopping at %d",
			len(recs), off, wmStart)
	}
	f3, err := os.Open(path2)
	if err != nil {
		t.Fatal(err)
	}
	scan3, err := scanWAL(f3)
	f3.Close()
	if err != nil {
		t.Fatal(err)
	}
	if scan3.covered != 0 {
		t.Fatalf("corrupt watermark left covered=%d, want 0 (replay everything)", scan3.covered)
	}
}

// A zero-length frame (all-zero header, e.g. preallocated or zero-filled
// tail blocks) terminates the scan cleanly.
func TestScanWALZeroLengthFrame(t *testing.T) {
	path, offs := walWithRecords(t, 2)
	appendRaw(t, path, make([]byte, 8))
	recs, off := scanFile(t, path)
	if len(recs) != 2 {
		t.Fatalf("scanned %d records, want 2", len(recs))
	}
	if off != offs[1] {
		t.Fatalf("resume offset %d, want %d", off, offs[1])
	}
}

// ForceTo is the checkpoint's write-ahead lever: it must make the log
// durable through the requested offset even when SyncOnCommit is off
// (commit acking policy and the WAL rule are separate contracts), so a
// crash after a force loses nothing below it.
func TestForceToMakesUnsyncedTailDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SyncOnCommit = false
	for i := 0; i < 3; i++ {
		if err := w.Append(&walRecord{Txn: core.TxnID(i + 1), Commit: true,
			Objs: []core.ObjID{o(core.PageID(i), 0)}, Images: [][]byte{{byte(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if w.synced != 0 {
		t.Fatalf("SyncOnCommit=false advanced synced to %d before any force", w.synced)
	}
	if err := w.ForceTo(w.tail()); err != nil {
		t.Fatal(err)
	}
	if got, want := w.synced, w.tail(); got < want {
		t.Fatalf("ForceTo left synced=%d, want >= %d", got, want)
	}
	w.crash() // discards the unsynced tail — which is now empty
	recs, _ := scanFile(t, path)
	if len(recs) != 3 {
		t.Fatalf("crash after ForceTo kept %d records, want 3", len(recs))
	}
}

// A directory-fsync failure inside TruncatePrefix must fail-stop the log:
// the rename's durability is unknown (a crash could resurrect the old
// inode), so acking any later commit against the new file would break
// acked-implies-durable. The injected failure must poison the log so no
// append after it can be acknowledged.
func TestTruncatePrefixDirSyncFailureFailsStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(&walRecord{Txn: core.TxnID(i + 1), Commit: true,
			Objs: []core.ObjID{o(core.PageID(i), 0)}, Images: [][]byte{{byte(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	limit := w.tail()
	if err := w.Append(&walRecord{Txn: 99, Commit: true,
		Objs: []core.ObjID{o(9, 0)}, Images: [][]byte{{9}}}); err != nil {
		t.Fatal(err)
	}
	defer fault.DisarmAll()
	fault.Get("wal.truncate.pre-dirsync").Arm(1)
	err = w.TruncatePrefix(limit)
	if err == nil || !fault.IsCrash(err) {
		t.Fatalf("TruncatePrefix returned %v, want injected dir-fsync crash", err)
	}
	if err := w.Append(&walRecord{Txn: 100, Commit: true,
		Objs: []core.ObjID{o(1, 0)}, Images: [][]byte{{1}}}); err == nil {
		t.Fatal("append acknowledged on a log whose truncation rename has unknown durability")
	}
	w.crash()
	// The renamed file holds the surviving tail record; recovery still
	// replays it (the fail-stop protects future acks, not past ones).
	recs, _ := scanFile(t, path)
	if len(recs) != 1 || recs[0].Txn != 99 {
		t.Fatalf("post-crash scan found %d records, want the surviving tail record", len(recs))
	}
}
