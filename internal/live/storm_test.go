package live

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// Connection storm: N thousand live sessions, most idle at any instant,
// activity skewed Zipf-style so a hot minority does the talking — the
// workload the reactor transport exists for. The per-process file
// descriptor limit (20k here, unraisable) cannot hold both ends of 10k+
// sockets comfortably alongside the store, so the benchmark runs the
// client fleet in a SECOND process: it re-execs this test binary with
// OODB_STORM_ADDR set, which wakes TestConnStormDriver below. The driver
// dials the sessions, reports READY, waits for GO, pushes the requested
// number of transactions through Zipf-chosen clients, and reports DONE.
//
// The benchmark process hosts only the server, so its goroutine count is
// a direct O(loops)-vs-O(sessions) measurement of the transport: under
// the reactor it must stay flat no matter how many sessions are parked.
//
// Transport selection is by OODB_TRANSPORT (the server option default),
// NOT by benchmark name — the name stays identical across transports so
// benchguard's -scale-base comparison lines the runs up.

const (
	stormHotPages = 64 // Zipf-read region shared by every session
	stormWorkers  = 64 // concurrently active sessions in the driver
)

func BenchmarkConnStorm(b *testing.B) {
	if runtime.GOOS != "linux" {
		b.Skip("storm benchmark sized for the linux CI container")
	}
	for _, sessions := range []int{1000, 5000, 10000} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			benchConnStorm(b, sessions)
		})
	}
}

func benchConnStorm(b *testing.B, sessions int) {
	srv, addr := startTCPServer(b, ServerOptions{
		Proto: core.PSAA, PageSize: 512, ObjsPerPage: 4,
		NumPages: stormHotPages + sessions, SyncWAL: false,
	})
	defer srv.Close()

	cmd := exec.Command(os.Args[0], "-test.run=^TestConnStormDriver$", "-test.v")
	cmd.Env = append(os.Environ(),
		"OODB_STORM_ADDR="+addr,
		"OODB_STORM_SESSIONS="+strconv.Itoa(sessions),
		"OODB_STORM_TXNS="+strconv.Itoa(b.N),
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		b.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
	}()

	lines := bufio.NewScanner(stdout)
	lines.Buffer(make([]byte, 64<<10), 64<<10)
	waitFor := func(prefix string, timeout time.Duration) string {
		deadline := time.Now().Add(timeout)
		for lines.Scan() {
			line := lines.Text()
			if strings.HasPrefix(line, prefix) {
				return line
			}
			if time.Now().After(deadline) {
				break
			}
		}
		b.Fatalf("driver never printed %q (scan err: %v)", prefix, lines.Err())
		return ""
	}
	waitFor("STORM_READY", 5*time.Minute)
	if got := srv.Sessions(); got != sessions {
		b.Fatalf("sessions attached = %d, want %d", got, sessions)
	}

	// Sample the server process's goroutine count while the storm runs;
	// the max is the O(loops)-vs-O(sessions) verdict.
	var maxGoroutines atomic.Int64
	maxGoroutines.Store(int64(runtime.NumGoroutine()))
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		for {
			select {
			case <-sampleStop:
				return
			case <-time.After(50 * time.Millisecond):
				if g := int64(runtime.NumGoroutine()); g > maxGoroutines.Load() {
					maxGoroutines.Store(g)
				}
			}
		}
	}()

	b.ResetTimer()
	start := time.Now()
	io.WriteString(stdin, "GO\n")
	done := waitFor("STORM_DONE", 10*time.Minute)
	elapsed := time.Since(start)
	b.StopTimer()
	close(sampleStop)
	sampleWG.Wait()

	if !strings.Contains(done, "errors=0") {
		b.Fatalf("driver reported failures: %s", done)
	}
	gmax := maxGoroutines.Load()
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "txn/s")
	b.ReportMetric(float64(gmax), "max-goroutines")
	if srv.Transport() == TransportReactor && sessions >= 1000 {
		// The whole point: server-side cost per parked session is zero
		// goroutines. Allow generous slack for shards, WAL, watchdogs,
		// accept machinery, and test plumbing — but nothing resembling
		// one-per-session.
		if limit := int64(200 + sessions/10); gmax >= limit {
			b.Fatalf("server reached %d goroutines for %d reactor sessions (limit %d); transport is O(sessions)",
				gmax, sessions, limit)
		}
	}
}

// TestConnStormDriver is the client half of BenchmarkConnStorm, woken
// only when the benchmark re-execs the test binary with OODB_STORM_ADDR
// set. It is a plain skip in a normal test run.
func TestConnStormDriver(t *testing.T) {
	addr := os.Getenv("OODB_STORM_ADDR")
	if addr == "" {
		t.Skip("driver half of BenchmarkConnStorm; spawned with OODB_STORM_ADDR set")
	}
	sessions, err := strconv.Atoi(os.Getenv("OODB_STORM_SESSIONS"))
	if err != nil || sessions <= 0 {
		t.Fatalf("bad OODB_STORM_SESSIONS: %v", err)
	}
	txns, err := strconv.Atoi(os.Getenv("OODB_STORM_TXNS"))
	if err != nil || txns <= 0 {
		t.Fatalf("bad OODB_STORM_TXNS: %v", err)
	}

	// Dial the fleet, a bounded number of handshakes in flight at once.
	clients := make([]*Client, sessions)
	var dialWG sync.WaitGroup
	dialSem := make(chan struct{}, 128)
	var dialErr atomic.Value
	for i := range clients {
		dialWG.Add(1)
		dialSem <- struct{}{}
		go func(i int) {
			defer dialWG.Done()
			defer func() { <-dialSem }()
			conn, err := DialRetry(addr, RetryPolicy{MaxAttempts: 10})
			if err != nil {
				dialErr.Store(fmt.Errorf("dial %d: %w", i, err))
				return
			}
			cl, err := Connect(conn, ClientOptions{CachePages: 32})
			if err != nil {
				dialErr.Store(fmt.Errorf("connect %d: %w", i, err))
				return
			}
			clients[i] = cl
		}(i)
	}
	dialWG.Wait()
	if err := dialErr.Load(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
	}()

	fmt.Println("STORM_READY")
	in := bufio.NewScanner(os.Stdin)
	for in.Scan() && in.Text() != "GO" {
	}

	// Zipf over session index: a hot few sessions carry most of the
	// traffic, the long tail sits parked — exactly the shape that makes
	// goroutine-per-connection expensive and a reactor cheap.
	var (
		next    atomic.Int64
		errs    atomic.Int64
		locks   = make([]sync.Mutex, sessions)
		workers sync.WaitGroup
	)
	val := make([]byte, 32)
	for w := 0; w < stormWorkers; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			rnd := rand.New(rand.NewSource(int64(w)*7919 + 1))
			zipf := rand.NewZipf(rnd, 1.2, 1, uint64(sessions-1))
			for next.Add(1) <= int64(txns) {
				idx := int(zipf.Uint64())
				if !locks[idx].TryLock() {
					idx = (idx + w) % sessions // hot collision: nudge to a neighbor
					if !locks[idx].TryLock() {
						next.Add(-1)
						continue
					}
				}
				if err := stormTxn(clients[idx], idx, rnd, val); err != nil {
					errs.Add(1)
				}
				locks[idx].Unlock()
			}
		}(w)
	}
	workers.Wait()
	fmt.Printf("STORM_DONE errors=%d\n", errs.Load())
	if n := errs.Load(); n > 0 {
		t.Fatalf("%d storm transactions failed", n)
	}
}

// stormTxn is one unit of storm work: a couple of reads from the shared
// hot region, and occasionally a write to the session's private page so
// commits carry real updates without cross-session callback storms.
func stormTxn(cl *Client, idx int, rnd *rand.Rand, val []byte) error {
	tx, err := cl.Begin()
	if err != nil {
		return err
	}
	for r := 0; r < 2; r++ {
		hot := core.PageID(rnd.Intn(stormHotPages))
		if _, err := tx.Read(o(hot, uint16(rnd.Intn(4)))); err != nil {
			tx.Abort()
			return err
		}
	}
	if rnd.Intn(8) == 0 {
		val[0] = byte(idx)
		if err := tx.Write(o(core.PageID(stormHotPages+idx), 0), val); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}
