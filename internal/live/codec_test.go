package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

// roundTrip encodes m, decodes the bytes, and fails the test unless the
// result is deeply equal (including nil-vs-empty slice identity).
func roundTrip(t *testing.T, m *core.Msg) {
	t.Helper()
	enc := appendMsg(nil, m)
	got, err := decodeMsg(enc)
	if err != nil {
		t.Fatalf("decode(%v): %v", m.Kind, err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch for %v:\n got %+v\nwant %+v", m.Kind, got, m)
	}
}

// TestMsgCodecRoundTrip covers every message kind with the field shapes
// the protocol actually sends, plus boundary values (negative ids, max
// slots, zero-length payloads).
func TestMsgCodecRoundTrip(t *testing.T) {
	msgs := []*core.Msg{
		{Kind: core.MReadReq, From: 1, Txn: 10, Req: 1, Obj: o(3, 2), WantData: true},
		{Kind: core.MWriteReq, From: 2, Txn: 11, Req: 2, Obj: o(0, 0), WantData: true,
			DroppedPages: []core.PageID{4, 5}, DroppedObjs: []core.ObjID{o(1, 1)}},
		{Kind: core.MCommitReq, From: 3, Txn: 12, Req: 3,
			Pages: []core.PageID{0, 1}, Objs: []core.ObjID{o(0, 1)},
			Updates: map[core.ObjID][]byte{o(0, 1): []byte("img"), o(1, 0): {}}},
		{Kind: core.MAbortReq, From: 4, Txn: 13, Req: 4,
			PurgedPages: []core.PageID{7}, PurgedObjs: []core.ObjID{o(7, 3)}},
		{Kind: core.MCallbackAck, From: 5, Txn: 14, Req: 5, Obj: o(2, 65535),
			Purged: true, Busy: true, BusyTxn: -9, Epoch: 1 << 40},
		{Kind: core.MDeescReply, From: 6, Txn: 15, Req: 6, Page: 9,
			DeescObjs: []core.ObjID{o(9, 0), o(9, 19)}},
		{Kind: core.MPageData, To: 1, Txn: 16, Req: 7, Page: 2, Grant: core.GrantPage,
			Unavail: []uint16{0, 65535}, Data: bytes.Repeat([]byte{0xAB}, 4096)},
		{Kind: core.MObjData, To: 2, Txn: 17, Req: 8, Obj: o(5, 5),
			Grant: core.GrantObject, Data: []byte("one object")},
		{Kind: core.MGrant, To: 3, Txn: 18, Req: 9, Obj: o(6, 6), Grant: core.GrantObject},
		{Kind: core.MCommitAck, To: 4, Txn: 19, Req: 10},
		{Kind: core.MAbortYou, To: 5, Txn: -20},
		{Kind: core.MCallback, To: 6, Txn: 21, Req: 11, Obj: o(8, 1),
			CB: core.CBAdaptive, BusyTxn: 3, Epoch: 99},
		{Kind: core.MDeescReq, To: 7, Txn: 22, Req: 12, Page: -1},
		{Kind: core.MHello, HelloID: 42, HelloPages: 1 << 20, HelloObjsPP: 20,
			HelloObjSize: 100, HelloProto: core.PSWT, HelloVariable: true},
		{}, // the zero message
	}
	seen := map[core.MsgKind]bool{}
	for _, m := range msgs {
		roundTrip(t, m)
		seen[m.Kind] = true
	}
	for k := core.MReadReq; k <= core.MHello; k++ {
		if !seen[k] {
			t.Errorf("no round-trip case for kind %v", k)
		}
	}
}

// TestMsgCodecNilVsEmpty pins the uvarint(len+1) prefix semantics: nil and
// empty collections must decode back to exactly what was sent, because
// some call sites distinguish "field absent" from "zero entries".
func TestMsgCodecNilVsEmpty(t *testing.T) {
	roundTrip(t, &core.Msg{Kind: core.MPageData, Data: nil, Unavail: nil, Updates: nil})
	roundTrip(t, &core.Msg{Kind: core.MPageData, Data: []byte{}, Unavail: []uint16{},
		Updates: map[core.ObjID][]byte{}})
	roundTrip(t, &core.Msg{Kind: core.MCommitReq,
		Pages: []core.PageID{}, Objs: []core.ObjID{},
		Updates: map[core.ObjID][]byte{o(0, 0): nil, o(0, 1): {}}})
}

// TestMsgCodecRejectsCorrupt checks the decoder's strictness: truncation,
// trailing garbage, and over-long length prefixes are errors, never
// silently skewed fields.
func TestMsgCodecRejectsCorrupt(t *testing.T) {
	enc := appendMsg(nil, &core.Msg{Kind: core.MPageData, Data: []byte("payload"),
		Unavail: []uint16{3}})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeMsg(enc[:cut]); err == nil {
			t.Fatalf("decode accepted truncation to %d/%d bytes", cut, len(enc))
		}
	}
	if _, err := decodeMsg(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
	// A length prefix claiming more elements than bytes remain must fail
	// without allocating the claimed size.
	huge := appendUint(nil, 1<<30)
	d := wireDecoder{b: huge}
	if _, isNil := d.length(); !isNil || d.err == nil {
		t.Fatal("oversized length prefix not rejected")
	}
}

// TestWALRecordCodecRoundTrip covers the WAL body codec, including nil
// and empty image lists.
func TestWALRecordCodecRoundTrip(t *testing.T) {
	recs := []*walRecord{
		{Txn: 7, Client: 2, Commit: true,
			Objs:   []core.ObjID{o(0, 1), o(3, 19)},
			Images: [][]byte{[]byte("aa"), []byte("bbbb")}},
		{Txn: -1, Client: 0, Commit: false, Objs: []core.ObjID{}, Images: [][]byte{}},
		{Txn: 1 << 50, Commit: true, Objs: nil, Images: nil},
		{Txn: 9, Commit: true, Objs: []core.ObjID{o(1, 0)}, Images: [][]byte{nil}},
	}
	for i, rec := range recs {
		body := appendWALRecord(nil, rec)
		got, err := decodeWALRecord(body)
		if err != nil {
			t.Fatalf("rec %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("rec %d mismatch:\n got %+v\nwant %+v", i, got, rec)
		}
	}
	if _, err := decodeWALRecord([]byte{0x00, 0x01}); err == nil {
		t.Fatal("non-binary body accepted")
	}
}

// TestWALGobMigration writes a log in the pre-binary format (gob bodies
// inside the same CRC frames) and checks that scanWAL still reads it, and
// that binary records appended after the old ones coexist in one scan —
// the one-shot migration read path.
func TestWALGobMigration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	old := []*walRecord{
		{Txn: 1, Client: 1, Commit: true, Objs: []core.ObjID{o(0, 0)},
			Images: [][]byte{[]byte("legacy-1")}},
		{Txn: 2, Client: 2, Commit: true, Objs: []core.ObjID{o(1, 3)},
			Images: [][]byte{[]byte("legacy-2")}},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range old {
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(rec); err != nil {
			t.Fatal(err)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(body.Len()))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body.Bytes()))
		f.Write(hdr[:])
		f.Write(body.Bytes())
	}
	f.Close()

	w, scan, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.recs) != len(old) {
		t.Fatalf("scanned %d legacy records, want %d", len(scan.recs), len(old))
	}
	for i := range old {
		if !reflect.DeepEqual(scan.recs[i], old[i]) {
			t.Fatalf("legacy rec %d mismatch: got %+v want %+v", i, scan.recs[i], old[i])
		}
	}
	// Append a binary record after the gob tail; a rescan sees both eras.
	newRec := &walRecord{Txn: 3, Client: 3, Commit: true,
		Objs: []core.ObjID{o(2, 2)}, Images: [][]byte{[]byte("binary-3")}}
	if err := w.Append(newRec); err != nil {
		t.Fatal(err)
	}
	w.Close()

	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	scan2, err := scanWAL(f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan2.recs) != 3 {
		t.Fatalf("rescan found %d records, want 3", len(scan2.recs))
	}
	if !reflect.DeepEqual(scan2.recs[2], newRec) {
		t.Fatalf("binary rec mismatch: got %+v want %+v", scan2.recs[2], newRec)
	}
}

// buildFuzzMsg derives a Msg from fuzz primitives. Collection presence is
// controlled by nilBits (bit set = nil) and lengths/elements by seed, so
// the fuzzer can explore nil, empty, and populated shapes for every field.
func buildFuzzMsg(kind uint8, from, to int32, txn, req, epoch int64, page int32,
	slot uint16, flags uint8, data, seed []byte, nilBits uint16) *core.Msg {
	m := &core.Msg{
		Kind: core.MsgKind(int(kind) % 14),
		From: core.ClientID(from), To: core.ClientID(to),
		Txn: core.TxnID(txn), Req: req,
		Page:     core.PageID(page),
		Obj:      core.ObjID{Page: core.PageID(page ^ 7), Slot: slot},
		WantData: flags&1 != 0, Purged: flags&2 != 0, Busy: flags&4 != 0,
		HelloVariable: flags&8 != 0,
		Grant:         core.GrantLevel(int(flags>>4) % 3),
		CB:            core.CallbackKind(int(flags>>6) % 3),
		BusyTxn:       core.TxnID(txn ^ req), Epoch: epoch,
		HelloID:      core.ClientID(to ^ 1),
		HelloPages:   page&0x7fffffff + 1,
		HelloObjsPP:  int32(slot) + 1,
		HelloObjSize: int32(kind) + 1,
		HelloProto:   core.Protocol(int(kind) % 6),
	}
	n := len(seed)
	has := func(bit int) bool { return nilBits&(1<<bit) == 0 }
	pageList := func(count int) []core.PageID {
		out := make([]core.PageID, count)
		for i := range out {
			out[i] = core.PageID(int32(seed[i]) - 128)
		}
		return out
	}
	objList := func(count int) []core.ObjID {
		out := make([]core.ObjID, count)
		for i := range out {
			out[i] = core.ObjID{Page: core.PageID(seed[i]), Slot: uint16(seed[i]) << 5}
		}
		return out
	}
	if has(0) {
		m.Unavail = make([]uint16, n%5)
		for i := range m.Unavail {
			m.Unavail[i] = uint16(seed[i]) * 257
		}
	}
	if has(1) {
		m.Pages = pageList(n % 4)
	}
	if has(2) {
		m.Objs = objList(n % 3)
	}
	if has(3) {
		m.PurgedPages = pageList(n % 2)
	}
	if has(4) {
		m.PurgedObjs = objList(n % 4)
	}
	if has(5) {
		m.DeescObjs = objList(n % 2)
	}
	if has(6) {
		m.DroppedPages = pageList(n % 3)
	}
	if has(7) {
		m.DroppedObjs = objList(n % 2)
	}
	if has(8) {
		m.Data = append([]byte{}, data...)
	}
	if has(9) {
		m.Updates = make(map[core.ObjID][]byte, n%3)
		for i := 0; i < n%3; i++ {
			var img []byte
			if seed[i]&1 == 0 {
				img = append([]byte{}, seed[:i]...)
			}
			m.Updates[core.ObjID{Page: core.PageID(i), Slot: uint16(seed[i])}] = img
		}
	}
	return m
}

// FuzzMsgCodec asserts decode(encode(m)) == m over fuzzer-driven message
// shapes: every MsgKind, every collection nil/empty/populated, boundary
// integers.
func FuzzMsgCodec(f *testing.F) {
	f.Add(uint8(0), int32(1), int32(2), int64(3), int64(4), int64(5), int32(6),
		uint16(7), uint8(0xFF), []byte("data"), []byte{1, 2, 3}, uint16(0))
	f.Add(uint8(6), int32(-1), int32(0), int64(-1), int64(1<<40), int64(-9), int32(-8),
		uint16(65535), uint8(0), []byte{}, []byte{}, uint16(0x3FF))
	f.Add(uint8(13), int32(9), int32(9), int64(0), int64(0), int64(0), int32(0),
		uint16(0), uint8(8), []byte(nil), []byte{255, 0, 128}, uint16(0x155))
	f.Fuzz(func(t *testing.T, kind uint8, from, to int32, txn, req, epoch int64,
		page int32, slot uint16, flags uint8, data, seed []byte, nilBits uint16) {
		m := buildFuzzMsg(kind, from, to, txn, req, epoch, page, slot, flags, data, seed, nilBits)
		enc := appendMsg(nil, m)
		got, err := decodeMsg(enc)
		if err != nil {
			t.Fatalf("decode(encode(m)): %v", err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
		}
	})
}

// FuzzMsgDecode throws raw bytes at the decoder: it must never panic or
// over-allocate, and anything it accepts must re-encode to an equivalent
// message (decoder/encoder agreement on the accepted language).
func FuzzMsgDecode(f *testing.F) {
	f.Add(appendMsg(nil, &core.Msg{Kind: core.MPageData, Data: []byte("x"),
		Unavail: []uint16{1}}))
	f.Add(appendMsg(nil, &core.Msg{Kind: core.MCommitReq,
		Updates: map[core.ObjID][]byte{o(1, 2): []byte("y")}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeMsg(raw)
		if err != nil {
			return
		}
		again, err := decodeMsg(appendMsg(nil, m))
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !reflect.DeepEqual(again, m) {
			t.Fatalf("re-encode changed message:\n got %+v\nwant %+v", again, m)
		}
	})
}
