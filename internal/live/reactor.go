//go:build linux

package live

// The reactor transport: every TCP session multiplexed onto a small set
// of epoll event loops, so the server's steady-state goroutine count is
// O(loops), not O(sessions). The goroutine-per-connection transport costs
// three goroutines per session (serve + writer + flusher) — fine at the
// paper's 32 clients, dead at the 10k-100k sessions a page server is
// supposed to hold (ROADMAP item 1).
//
// Topology: one epoll instance per loop, connections assigned round-robin
// at accept. Sockets are registered EPOLLIN|EPOLLET; each loop does
// non-blocking reads into a loop-owned scratch buffer, reassembles the
// 4-byte length-prefixed frames in a pooled per-connection buffer, and
// delivers messages straight into the server's handler (the receiver
// callback attach installed). Writes coalesce in a per-connection pending
// byte queue: session.pump encodes frames into it and tries one
// non-blocking drain; a short write arms EPOLLOUT and the loop finishes
// the drain when the socket opens up. A connection whose pending queue
// exceeds the drain cap is deposed — a reader this slow makes every
// queued byte dead weight, exactly the outbox-limit argument at the byte
// level.
//
// Edge-trigger invariants (DESIGN.md §17):
//   - reads always continue to EAGAIN (or requeue themselves) before the
//     loop moves on, so a level can never be stranded;
//   - EPOLLOUT is armed only after a write actually returned EAGAIN or
//     came up short, so the next writability EDGE is guaranteed to be
//     ahead of us, and a MOD re-reports a condition that already holds;
//   - cross-thread state changes (Kick, Close) reach the loop through an
//     op queue plus a self-pipe wakeup, never by touching epoll state the
//     loop believes it owns.
//
// Ownership: a connection belongs to exactly one loop, and its fd lives
// in that loop's map. Closes execute only on the owning loop (queued as
// ops), so an fd number can never be recycled while its old registration
// is still reachable — a stale event for a closed fd misses the map and
// is dropped. The per-connection processing flag is the belt to those
// suspenders: even if an event were ever delivered to two workers, one
// connection still could not occupy both.

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
)

const (
	// reactorScratch is each loop's read buffer: one syscall's worth of
	// inbound bytes, shared by every connection on the loop (reads are
	// loop-serialized, so one buffer suffices).
	reactorScratch = 64 << 10
	// reactorMaxReads bounds one connection's consecutive reads per pass.
	// Edge triggering obliges us to read to EAGAIN, but a firehose sender
	// must not starve the loop's other connections — past the bound the
	// connection requeues itself as an op and the loop round-robins.
	reactorMaxReads = 16
	// reactorPendingKeep caps the pending-queue capacity a connection
	// keeps pinned once drained (burst queues go back to the GC).
	reactorPendingKeep = 256 << 10
)

var errSlowReader = fmt.Errorf("live: reactor pending queue over drain cap (slow reader)")

// rbufPool recycles per-connection frame-reassembly buffers. A connection
// holds one only while a partial frame is in flight; between messages the
// buffer returns here, so 10k idle sessions pin no read memory at all.
var rbufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 16<<10)
	return &b
}}

func getRbuf() []byte {
	bp := rbufPool.Get().(*[]byte)
	return (*bp)[:0]
}

func putRbuf(b []byte) {
	if cap(b) == 0 || cap(b) > readBufKeep {
		return // oversized by a burst frame: let the GC take it
	}
	b = b[:0]
	rbufPool.Put(&b)
}

// reactor owns the loops and hands out connections.
type reactor struct {
	loops    []*rloop
	next     atomic.Uint32 // round-robin accept assignment
	drainCap int
	m        *serverMetrics
	onPanic  func(any)

	fds     atomic.Int64 // sockets registered across loops (gauge)
	stopped atomic.Bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
	downOne sync.Once // closes loop fds exactly once, after the loops exit
}

// newReactor builds and starts the server's event loops. Fails only when
// the platform shim does (non-Linux stub) or fd creation fails; the
// caller then falls back to the goroutine transport.
func newReactor(s *Server) (*reactor, error) {
	n := s.opts.ReactorLoops
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	r := &reactor{
		drainCap: s.opts.ReactorDrainCap,
		m:        s.metrics,
		onPanic:  s.panicDump,
		stopCh:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		l, err := newRloop(r)
		if err != nil {
			r.stop()
			r.wait()
			return nil, err
		}
		r.loops = append(r.loops, l)
	}
	for _, l := range r.loops {
		r.wg.Add(1)
		go l.run()
	}
	return r, nil
}

// stop signals every loop to exit. Non-blocking: safe under s.mu and
// from a loop goroutine itself (crashLocked may run on one).
func (r *reactor) stop() {
	if r.stopped.CompareAndSwap(false, true) {
		close(r.stopCh)
		for _, l := range r.loops {
			l.wakeup()
		}
	}
}

// wait joins the loops and then releases their epoll and wake-pipe fds.
// The fds close strictly after every producer of wakeups is gone (loops
// joined here; serve goroutines, the watchdog, and the planner joined by
// the caller), so no write can land on a recycled fd.
func (r *reactor) wait() {
	r.wg.Wait()
	r.downOne.Do(func() {
		for _, l := range r.loops {
			syscall.Close(l.ep)
			syscall.Close(l.wakeR)
			syscall.Close(l.wakeW)
		}
	})
}

// shutdown stops and joins. Idempotent.
func (r *reactor) shutdown() {
	r.stop()
	r.wait()
}

// takeover moves an accepted net.Conn's socket under reactor ownership:
// dup the fd out of the runtime netpoller, close the original, restore
// non-blocking mode (File() flips it off), and assign a loop. The socket
// is NOT yet registered with epoll — the caller attaches the session
// (installing the receiver) first, then calls register, so no event can
// beat the handlers.
func (r *reactor) takeover(c net.Conn) (*rconn, error) {
	tc, ok := c.(*net.TCPConn)
	if !ok {
		return nil, fmt.Errorf("live: reactor takeover needs a TCP conn, got %T", c)
	}
	f, err := tc.File()
	if err != nil {
		return nil, err
	}
	tc.Close()
	fd := int(f.Fd())
	if err := syscall.SetNonblock(fd, true); err != nil {
		f.Close()
		return nil, err
	}
	l := r.loops[int(r.next.Add(1))%len(r.loops)]
	return &rconn{loop: l, fd: fd, f: f, drainCap: r.drainCap}, nil
}

// ---- event loop ----

type ropKind uint8

const (
	opKick ropKind = iota // run the session pump
	opClose
	opRead // fairness requeue: resume a read pass
)

type rop struct {
	kind ropKind
	c    *rconn
	at   int64 // UnixNano at enqueue, for the wake-latency histogram
}

type rloop struct {
	r     *reactor
	ep    int
	wakeR int
	wakeW int

	// mu guards conns and ops. conns maps registered fds; inserts happen
	// on handshake goroutines, lookups and removals on the loop. The
	// mutex doubles as the memory fence publishing a connection's
	// handlers to the loop.
	mu    sync.Mutex
	conns map[int]*rconn
	ops   []rop

	wakeArmed atomic.Bool
	scratch   []byte
	events    []syscall.EpollEvent
	wakeBuf   [64]byte
}

func newRloop(r *reactor) (*rloop, error) {
	ep, err := epollCreate()
	if err != nil {
		return nil, err
	}
	wr, ww, err := wakePipe()
	if err != nil {
		syscall.Close(ep)
		return nil, err
	}
	l := &rloop{
		r: r, ep: ep, wakeR: wr, wakeW: ww,
		conns:   make(map[int]*rconn),
		scratch: make([]byte, reactorScratch),
		events:  make([]syscall.EpollEvent, 128),
	}
	if err := epollAdd(ep, wr, epIn); err != nil { // level-triggered wake
		syscall.Close(ep)
		syscall.Close(wr)
		syscall.Close(ww)
		return nil, err
	}
	return l, nil
}

// enqueue queues an op for the loop and wakes it.
func (l *rloop) enqueue(op rop) {
	l.mu.Lock()
	l.ops = append(l.ops, op)
	l.mu.Unlock()
	l.wakeup()
}

// wakeup pokes the loop's self-pipe; the armed flag coalesces storms of
// kicks into at most one in-flight byte.
func (l *rloop) wakeup() {
	if l.wakeArmed.CompareAndSwap(false, true) {
		var one [1]byte
		syscall.Write(l.wakeW, one[:]) // EAGAIN (pipe full) still wakes
	}
}

func (l *rloop) run() {
	defer l.r.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			// A handle-path panic on a loop is the same server bug it
			// would be on a serve goroutine: blackbox, then die.
			if l.r.onPanic != nil {
				l.r.onPanic(r)
			}
			panic(r)
		}
	}()
	for {
		n, err := epollWait(l.ep, l.events)
		if l.r.stopped.Load() {
			l.teardownAll()
			return
		}
		if err != nil {
			// The epoll fd itself failing is unrecoverable for this loop;
			// close its connections so their sessions detach.
			l.teardownAll()
			return
		}
		if n > 0 {
			l.r.m.reactorBatches.Inc()
			l.r.m.reactorEvents.Add(int64(n))
		}
		// Wake/ops first: closes queued for fds in this very batch must
		// win, so their stale events miss the map below.
		for i := 0; i < n; i++ {
			if int(l.events[i].Fd) == l.wakeR {
				l.drainWake()
				break
			}
		}
		l.runOps()
		for i := 0; i < n; i++ {
			ev := &l.events[i]
			fd := int(ev.Fd)
			if fd == l.wakeR {
				continue
			}
			l.mu.Lock()
			rc := l.conns[fd]
			l.mu.Unlock()
			if rc == nil {
				continue // closed (or recycled) underneath the batch
			}
			if ev.Events&(epIn|epErr|epHup) != 0 {
				// Errors and hangups surface through the read: it returns
				// 0 or the socket error, and fail() routes the detach.
				l.readable(rc)
			}
			if ev.Events&epOut != 0 {
				rc.writable()
			}
		}
		l.runOps() // ops enqueued by handlers during this batch
	}
}

func (l *rloop) drainWake() {
	// Clear the armed flag BEFORE draining ops (runOps follows): a
	// wakeup that CASes false->true after this point writes a fresh byte
	// and the next epoll_wait sees it; one that lost its CAS to us has
	// already appended its op, which this pass collects.
	l.wakeArmed.Store(false)
	for {
		n, err := syscall.Read(l.wakeR, l.wakeBuf[:])
		if n < len(l.wakeBuf) || err != nil {
			return
		}
	}
}

func (l *rloop) runOps() {
	l.mu.Lock()
	ops := l.ops
	l.ops = nil
	l.mu.Unlock()
	now := time.Now().UnixNano()
	for _, op := range ops {
		if op.at > 0 {
			l.r.m.reactorWakeNs.Observe(now - op.at)
		}
		switch op.kind {
		case opKick:
			op.c.kicked.Store(false)
			if pump := op.c.pump; pump != nil && !op.c.closed.Load() {
				pump()
			}
		case opClose:
			l.teardown(op.c)
		case opRead:
			l.readable(op.c)
		}
	}
}

// readable drains one connection's socket under the processing flag: if
// another worker (or a stale cross-loop event) already owns the
// connection, we record a repoll and leave — one connection never
// occupies two workers. The owner re-checks repoll after finishing, so
// the signal cannot be lost.
func (l *rloop) readable(rc *rconn) {
	if !rc.processing.CompareAndSwap(false, true) {
		rc.repoll.Store(true)
		return
	}
	for {
		rc.readPass(l)
		rc.processing.Store(false)
		if !rc.repoll.CompareAndSwap(true, false) {
			return
		}
		if !rc.processing.CompareAndSwap(false, true) {
			return // the flagger took over
		}
	}
}

// teardownAll closes every connection still owned by the loop (loop
// exit: reactor stop or epoll failure).
func (l *rloop) teardownAll() {
	l.mu.Lock()
	conns := make([]*rconn, 0, len(l.conns))
	for _, rc := range l.conns {
		conns = append(conns, rc)
	}
	l.mu.Unlock()
	for _, rc := range conns {
		rc.closed.Store(true)
		l.teardown(rc)
	}
}

// teardown executes a connection's close on its owning loop: unregister,
// release the fd, and deliver the terminal receiver callback (which
// detaches the session; detach on an already-removed session no-ops).
func (l *rloop) teardown(rc *rconn) {
	l.mu.Lock()
	_, present := l.conns[rc.fd]
	delete(l.conns, rc.fd)
	l.mu.Unlock()
	if !present {
		return // already torn down (close op + loop-exit sweep)
	}
	rc.wmu.Lock()
	if rc.registered {
		epollDel(l.ep, rc.fd)
		rc.registered = false
		l.r.fds.Add(-1)
	}
	rc.pending = nil
	rc.wmu.Unlock()
	rc.f.Close()
	if rc.rbuf != nil {
		putRbuf(rc.rbuf)
		rc.rbuf = nil
	}
	if rc.recv != nil {
		err := rc.termErr
		if err == nil {
			err = io.EOF
		}
		rc.recv(nil, err)
	}
}

// ---- connection ----

// rconn is one reactor-owned connection. It implements Conn (and
// asyncConn): Send appends a frame to the pending queue, Flush attempts a
// non-blocking drain, Recv reports that the connection is receiver-driven
// (the server never calls it on an async session).
type rconn struct {
	loop     *rloop
	fd       int
	f        *os.File // owns the dup'd fd; closed exactly once by teardown
	drainCap int

	// Handlers, installed by attach before epoll registration publishes
	// the connection to its loop.
	recv func(*core.Msg, error)
	pump func()

	// Read state, touched only inside the processing-flag section.
	rbuf       []byte
	processing atomic.Bool
	repoll     atomic.Bool

	// Write state under wmu: the pending byte queue [woff:], the
	// EPOLLOUT arming flag, and the sticky error.
	wmu        sync.Mutex
	pending    []byte
	woff       int
	wantW      bool
	registered bool
	werr       error

	kicked  atomic.Bool
	closed  atomic.Bool
	termErr error // written before the close op is enqueued
}

func (rc *rconn) SetHandlers(recv func(*core.Msg, error), pump func()) {
	rc.recv = recv
	rc.pump = pump
}

// Kick schedules the session pump on the owning loop. The CAS coalesces
// bursts — between the op being queued and run, further kicks are free.
func (rc *rconn) Kick() {
	if rc.closed.Load() {
		return
	}
	if rc.kicked.CompareAndSwap(false, true) {
		rc.loop.enqueue(rop{kind: opKick, c: rc, at: time.Now().UnixNano()})
	}
}

// register adds the socket to its loop's epoll set. Called after the
// session attached; any output already pumped (the hello) keeps EPOLLOUT
// armed from the start if its flush came up short.
func (rc *rconn) register() error {
	l := rc.loop
	l.mu.Lock()
	l.conns[rc.fd] = rc
	l.mu.Unlock()
	rc.wmu.Lock()
	events := epIn | epET
	if rc.wantW {
		events |= epOut
	}
	err := epollAdd(l.ep, rc.fd, events)
	if err == nil {
		rc.registered = true
	}
	rc.wmu.Unlock()
	if err != nil {
		l.mu.Lock()
		delete(l.conns, rc.fd)
		l.mu.Unlock()
		return err
	}
	rc.loop.r.fds.Add(1)
	return nil
}

// Send encodes m straight into the pending queue (single copy; the frame
// header is patched after the body lands). The actual syscall happens in
// Flush or on EPOLLOUT. Exceeding the drain cap deposes the connection:
// the error is returned AND the close is scheduled, so the pump stops and
// the session detaches.
func (rc *rconn) Send(m *core.Msg) error {
	rc.wmu.Lock()
	if rc.werr != nil {
		err := rc.werr
		rc.wmu.Unlock()
		return err
	}
	old := len(rc.pending)
	rc.pending = append(rc.pending, 0, 0, 0, 0)
	rc.pending = appendMsg(rc.pending, m)
	body := len(rc.pending) - old - 4
	if body > maxFrame {
		rc.pending = rc.pending[:old]
		rc.wmu.Unlock()
		return fmt.Errorf("live: message exceeds frame limit (%d bytes)", body)
	}
	binary.LittleEndian.PutUint32(rc.pending[old:], uint32(body))
	over := rc.drainCap > 0 && len(rc.pending)-rc.woff > rc.drainCap
	if over {
		rc.werr = errSlowReader
	}
	rc.wmu.Unlock()
	if over {
		rc.loop.r.m.reactorDeposes.Inc()
		rc.fail(errSlowReader)
		return errSlowReader
	}
	return nil
}

// Flush drains the pending queue with non-blocking writes; a short write
// arms EPOLLOUT and the loop finishes the job on the next writability
// edge.
func (rc *rconn) Flush() error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	return rc.flushLocked()
}

func (rc *rconn) flushLocked() error {
	if rc.werr != nil {
		return rc.werr
	}
	if rc.wantW {
		return nil // EPOLLOUT armed: the loop owns the drain
	}
	for rc.woff < len(rc.pending) {
		n, err := syscall.Write(rc.fd, rc.pending[rc.woff:])
		if n > 0 {
			rc.woff += n
		}
		switch err {
		case nil:
		case syscall.EAGAIN:
			rc.armWriteLocked()
			return nil
		case syscall.EINTR:
			// retry
		default:
			rc.werr = err
			rc.scheduleFail(err)
			return err
		}
	}
	// Fully drained: reset, and drop a burst-grown queue so an idle
	// session pins at most reactorPendingKeep.
	if cap(rc.pending) > reactorPendingKeep {
		rc.pending = nil
	} else {
		rc.pending = rc.pending[:0]
	}
	rc.woff = 0
	return nil
}

// armWriteLocked arms EPOLLOUT (edge-triggered) after a write actually
// hit EAGAIN — the only ordering under which the next edge is guaranteed
// to be ahead of us. Pre-registration the flag alone suffices; register
// folds it into the initial mask.
func (rc *rconn) armWriteLocked() {
	if rc.wantW {
		return
	}
	rc.wantW = true
	if rc.registered {
		epollMod(rc.loop.ep, rc.fd, epIn|epOut|epET)
	}
}

// writable finishes the drain on a writability edge and disarms EPOLLOUT
// once the queue empties.
func (rc *rconn) writable() {
	rc.wmu.Lock()
	if rc.werr != nil || rc.closed.Load() {
		rc.wmu.Unlock()
		return
	}
	rc.wantW = false
	err := rc.flushLocked() // re-arms on another short write
	if err == nil && !rc.wantW && rc.registered {
		epollMod(rc.loop.ep, rc.fd, epIn|epET)
	}
	rc.wmu.Unlock()
}

// readPass reads to EAGAIN (or the fairness bound), reassembling and
// delivering frames. Runs only under the processing flag.
func (rc *rconn) readPass(l *rloop) {
	for reads := 0; ; reads++ {
		if rc.closed.Load() {
			return
		}
		n, err := syscall.Read(rc.fd, l.scratch)
		if n > 0 {
			if rc.rbuf == nil {
				rc.rbuf = getRbuf()
			}
			rc.rbuf = append(rc.rbuf, l.scratch[:n]...)
			if derr := rc.deliver(); derr != nil {
				rc.fail(derr)
				return
			}
		}
		switch {
		case err == syscall.EAGAIN:
			return
		case err == syscall.EINTR:
			continue
		case err != nil:
			rc.fail(err)
			return
		case n == 0:
			rc.fail(io.EOF)
			return
		}
		if reads >= reactorMaxReads {
			// Fairness: let the loop's other connections run; resume via
			// an op (at=0: a self-requeue is not a cross-thread wake).
			l.enqueue(rop{kind: opRead, c: rc})
			return
		}
	}
}

// deliver parses complete frames out of rbuf and hands them to the
// receiver, then compacts. decodeMsg copies everything it keeps, so the
// buffer is reusable immediately.
func (rc *rconn) deliver() error {
	buf := rc.rbuf
	off := 0
	for {
		if len(buf)-off < 4 {
			break
		}
		n := binary.LittleEndian.Uint32(buf[off:])
		if n > maxFrame {
			return fmt.Errorf("live: frame length %d exceeds limit", n)
		}
		if len(buf)-off < 4+int(n) {
			break
		}
		m, err := decodeMsg(buf[off+4 : off+4+int(n)])
		if err != nil {
			return err
		}
		off += 4 + int(n)
		if rc.recv != nil {
			rc.recv(m, nil)
		}
		if rc.closed.Load() {
			break // the handler detached us; drop the rest
		}
	}
	if off > 0 {
		rest := copy(buf, buf[off:])
		rc.rbuf = buf[:rest]
	}
	if len(rc.rbuf) == 0 {
		putRbuf(rc.rbuf)
		rc.rbuf = nil
	}
	return nil
}

// Recv is never used on the server's async path; it exists to satisfy
// Conn.
func (rc *rconn) Recv() (*core.Msg, error) {
	return nil, fmt.Errorf("live: reactor conns are receiver-driven")
}

// Close schedules the connection's teardown on its owning loop.
func (rc *rconn) Close() error {
	rc.fail(fmt.Errorf("live: connection closed"))
	return nil
}

// fail records the terminal error and queues the close op. First caller
// wins; the loop delivers exactly one terminal receiver callback.
func (rc *rconn) fail(err error) {
	if !rc.closed.CompareAndSwap(false, true) {
		return
	}
	rc.termErr = err // published by the op-queue mutex
	rc.loop.enqueue(rop{kind: opClose, c: rc, at: time.Now().UnixNano()})
}

// scheduleFail is fail for callers already holding wmu (werr set there).
func (rc *rconn) scheduleFail(err error) {
	if !rc.closed.CompareAndSwap(false, true) {
		return
	}
	rc.termErr = err
	rc.loop.enqueue(rop{kind: opClose, c: rc, at: time.Now().UnixNano()})
}

// destroy releases an rconn that was never attached nor registered (the
// Attach-failed path: no session, no handlers, no ops in flight).
func (rc *rconn) destroy() {
	rc.closed.Store(true)
	rc.f.Close()
}

// attachReactor runs a handshaken connection on the reactor: take the fd
// over, attach the session (handlers installed inside), then register
// with epoll. Registration last means no event can arrive before the
// session exists; output staged in between (the hello) rides the initial
// event mask.
func (s *Server) attachReactor(r *reactor, c net.Conn) {
	rc, err := r.takeover(c)
	if err != nil {
		// Not a TCP socket or the dup failed; the goroutine transport
		// still serves this connection fine.
		s.attachGoroutine(c)
		return
	}
	if _, err := s.Attach(rc); err != nil {
		rc.destroy()
		return
	}
	if err := rc.register(); err != nil {
		rc.fail(err) // loop delivers the terminal callback -> detach
	}
}
