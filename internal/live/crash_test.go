package live

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

// livePoints are the crash points the commit/checkpoint script can fire;
// the fuzzer enumerates them and requires each to actually fire under the
// script. recover.mid-replay and recluster.mid-move are registered but
// absent here: they only traverse during recovery / migration commits,
// which TestCrashDuringRecovery (recovery_test.go) and
// TestReclusterMidMoveCrash (recluster_test.go) arm separately.
var livePoints = []string{
	"wal.append.pre-frame",
	"wal.append.torn-write",
	"wal.append.pre-sync",
	"wal.truncate.pre",
	"wal.truncate.pre-dirsync",
	"store.flush.partial",
	"store.flush.pre-sync",
	"checkpoint.mid",
	"checkpoint.pre-watermark",
	"checkpoint.post-watermark",
}

func TestCrashPointsRegistered(t *testing.T) {
	registered := map[string]bool{}
	for _, n := range fault.Points() {
		registered[n] = true
	}
	for _, n := range append([]string{"recover.mid-replay", "recluster.mid-move"}, livePoints...) {
		if !registered[n] {
			t.Errorf("crash point %q not registered", n)
		}
	}
}

// TestCrashRecoveryFuzz enumerates every live crash point x hit count,
// runs a scripted multi-client history of commits and checkpoints until
// the armed point fires a fail-stop crash, then recovers and checks:
//
//	(a) every acknowledged commit is durable,
//	(b) nothing but submitted afterimages is visible (and nothing older
//	    than the last ack), and
//	(c) recovery is idempotent: running it twice yields identical store
//	    bytes.
func TestCrashRecoveryFuzz(t *testing.T) {
	for _, point := range livePoints {
		for hit := int64(1); hit <= 2; hit++ {
			t.Run(fmt.Sprintf("%s/hit%d", point, hit), func(t *testing.T) {
				runCrashScript(t, point, hit)
			})
		}
	}
}

// seqVal encodes a commit sequence number as an object image (stored as
// seq+1 so a never-written zero object is distinguishable).
func seqVal(seq uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], seq+1)
	return buf[:]
}

func runCrashScript(t *testing.T, point string, hit int64) {
	const (
		dbPages  = 16
		objsPP   = 4
		commits  = 24
		ckptMod  = 3 // checkpoint every 3 commits
		fanout   = 3 // objects (pages) touched per commit
		nClients = 2
	)
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: objsPP, NumPages: dbPages,
		SyncWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i] = attachClient(t, srv)
	}
	defer fault.DisarmAll()

	// submitted[obj] lists the commit seqs whose commit message carried an
	// afterimage for obj; acked[obj] is the latest acknowledged seq.
	submitted := make(map[core.ObjID][]uint32)
	acked := make(map[core.ObjID]uint32) // seq+1; 0 = none acked

	fault.Get(point).Arm(hit)
	crashed := false
	for n := 0; n < commits && !crashed; n++ {
		cl := clients[n%nClients]
		seq := uint32(n)
		objs := make([]core.ObjID, 0, fanout)
		for j := 0; j < fanout; j++ {
			objs = append(objs, o(core.PageID((n+j)%dbPages), uint16(n%objsPP)))
		}
		err := func() error {
			tx, err := cl.Begin()
			if err != nil {
				return err
			}
			for _, obj := range objs {
				if err := tx.Write(obj, seqVal(seq)); err != nil {
					return err
				}
			}
			for _, obj := range objs {
				submitted[obj] = append(submitted[obj], seq)
			}
			return tx.Commit()
		}()
		switch {
		case err == nil:
			for _, obj := range objs {
				acked[obj] = seq + 1
			}
		case errors.Is(err, ErrClosed) || errors.Is(err, ErrDisconnected):
			crashed = true // server died under us
		default:
			t.Fatalf("commit %d: %v", n, err)
		}
		if !crashed && (n+1)%ckptMod == 0 {
			if err := srv.Checkpoint(); err != nil {
				if !fault.IsCrash(err) {
					t.Fatalf("checkpoint: %v", err)
				}
				crashed = true
			}
		}
		if srv.Failed() != nil {
			crashed = true
		}
	}
	if !crashed {
		t.Fatalf("crash point %s (hit %d) never fired during the script", point, hit)
	}
	if srv.Failed() == nil {
		t.Fatalf("server crashed without recording the injected fault")
	}
	for _, cl := range clients {
		cl.Close()
	}
	srv.Crash() // waits for goroutines; files already fail-stopped
	fault.DisarmAll()

	// (c) Idempotence: two recovery passes leave identical store bytes.
	first := recoverOnce(t, dir)
	second := recoverOnce(t, dir)
	if !bytes.Equal(first, second) {
		t.Fatalf("recovery is not idempotent: store bytes differ between passes")
	}

	// (a)+(b): reopen for real and audit every touched object.
	srv2, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: true})
	if err != nil {
		t.Fatalf("recovery reopen: %v", err)
	}
	defer srv2.Close()
	auditor := attachClient(t, srv2)
	defer auditor.Close()
	tx, err := auditor.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for obj, seqs := range submitted {
		got, err := tx.Read(obj)
		if err != nil {
			t.Fatal(err)
		}
		v := binary.LittleEndian.Uint32(got[:4]) // seq+1; 0 = never written
		if v == 0 {
			if acked[obj] != 0 {
				t.Fatalf("object %v: acked seq %d lost (object empty)", obj, acked[obj]-1)
			}
			continue
		}
		inSubmitted := false
		for _, s := range seqs {
			if s+1 == v {
				inSubmitted = true
				break
			}
		}
		if !inSubmitted {
			t.Fatalf("object %v: phantom value seq=%d never submitted", obj, v-1)
		}
		if v < acked[obj] {
			t.Fatalf("object %v: recovered seq %d older than acked seq %d", obj, v-1, acked[obj]-1)
		}
	}
	tx.Commit()
}

// recoverOnce replays the WAL against the on-disk store and returns the
// resulting store file bytes — without truncating the log, so a second
// call replays the same records again.
func recoverOnce(t *testing.T, dir string) []byte {
	t.Helper()
	st, err := OpenStore(filepath.Join(dir, "data.db"))
	if err != nil {
		t.Fatalf("recoverOnce: open store: %v", err)
	}
	wal, scan, err := OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		st.Close()
		t.Fatalf("recoverOnce: open wal: %v", err)
	}
	if _, err := replayRecords(st, scan, 1); err != nil {
		t.Fatalf("recoverOnce: replay: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("recoverOnce: close store: %v", err)
	}
	wal.Close()
	raw, err := os.ReadFile(filepath.Join(dir, "data.db"))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCheckpointCrashBetweenFlushAndTruncate pins the checkpoint ordering
// hazard (satellite of ISSUE 2): a crash after the store flush but before
// the log truncation must recover to exactly the committed state, because
// replaying the redundant log is idempotent.
func TestCheckpointCrashBetweenFlushAndTruncate(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 16, SyncWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := attachClient(t, srv)
	tx, _ := cl.Begin()
	if err := tx.Write(o(2, 1), []byte("pre-ckpt")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	defer fault.DisarmAll()
	fault.Get("checkpoint.mid").Arm(1)
	err = srv.Checkpoint()
	if !fault.IsCrash(err) {
		t.Fatalf("checkpoint returned %v, want injected crash", err)
	}
	cl.Close()
	srv.Crash()
	fault.DisarmAll()

	// The WAL must still hold the committed record (truncation never ran)…
	w, scan, err := OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if len(scan.recs) != 1 {
		t.Fatalf("WAL has %d records after mid-checkpoint crash, want 1", len(scan.recs))
	}
	if scan.covered != 0 {
		t.Fatalf("mid-checkpoint crash left a watermark covering %d bytes, want none", scan.covered)
	}

	// …and recovery (which replays it over the already-flushed store) must
	// land on the committed value, idempotently.
	b1, b2 := recoverOnce(t, dir), recoverOnce(t, dir)
	if !bytes.Equal(b1, b2) {
		t.Fatal("mid-checkpoint recovery not idempotent")
	}
	srv2, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cl2 := attachClient(t, srv2)
	defer cl2.Close()
	tx2, _ := cl2.Begin()
	got, err := tx2.Read(o(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("pre-ckpt")) {
		t.Fatalf("committed value lost across mid-checkpoint crash: %q", got[:10])
	}
	tx2.Commit()
}

// TestCheckpointForcesWALBeforeFlush pins the checkpoint's write-ahead
// rule. Commits fsync only after installing, so with SyncOnCommit off
// nothing here is durable in the log when the checkpoint starts — yet
// the flush is about to make page images durable in the store. If the
// checkpoint wrote pages without first forcing the WAL, a crash mid-flush
// would durably keep SOME pages of a transaction while the crash discards
// the log's unsynced tail: recovery then has no record to replay and the
// store shows a torn transaction. The fix forces the log through the
// watermark (and, per shard, through the post-copy tail) before any page
// write, so recovery must always see every pair whole.
func TestCheckpointForcesWALBeforeFlush(t *testing.T) {
	const pairs = 8
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 2 * pairs,
		Shards:  4, // 16 dirty pages over 4 shards: some shard flushes >= 2, so the partial-flush point must fire
		SyncWAL: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := attachClient(t, srv)
	// Each transaction writes the same sequence value to both pages of its
	// pair; atomicity means the two sides can never disagree.
	for k := 0; k < pairs; k++ {
		tx, err := cl.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []core.PageID{core.PageID(2 * k), core.PageID(2*k + 1)} {
			if err := tx.Write(o(p, 0), seqVal(uint32(k))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	defer fault.DisarmAll()
	fault.Get("store.flush.partial").Arm(1)
	err = srv.Checkpoint()
	if err == nil || !fault.IsCrash(err) {
		t.Fatalf("checkpoint returned %v, want injected mid-flush crash", err)
	}
	cl.Close()
	srv.Crash()
	fault.DisarmAll()

	srv2, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: false})
	if err != nil {
		t.Fatalf("recovery reopen: %v", err)
	}
	defer srv2.Close()
	auditor := attachClient(t, srv2)
	defer auditor.Close()
	tx, err := auditor.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < pairs; k++ {
		a, err := tx.Read(o(core.PageID(2*k), 0))
		if err != nil {
			t.Fatal(err)
		}
		b, err := tx.Read(o(core.PageID(2*k+1), 0))
		if err != nil {
			t.Fatal(err)
		}
		va := binary.LittleEndian.Uint32(a[:4])
		vb := binary.LittleEndian.Uint32(b[:4])
		if va != vb {
			t.Fatalf("transaction %d torn across the crash: page %d has seq %d, page %d has seq %d",
				k, 2*k, va, 2*k+1, vb)
		}
	}
	tx.Commit()
}
