package live

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// cpCheckpointMid crashes between the store flush and the log truncation —
// the checkpoint's ordering hazard. Recovery must replay the (now
// redundant) log idempotently.
var cpCheckpointMid = fault.Register("checkpoint.mid")

// ServerOptions configures a live server.
type ServerOptions struct {
	Proto       core.Protocol
	PageSize    int // default 4096
	ObjsPerPage int // default 20
	NumPages    int // default 1250
	// SyncWAL forces commits to wait for a WAL fsync before acking
	// (default true; tests disable it).
	SyncWAL bool
	// GroupCommitWindow makes the WAL's group-commit sync leader linger
	// this long before fsyncing, gathering more concurrent commits into
	// one sync. 0 (the default) syncs immediately; batching then comes
	// only from commits that arrive while an fsync is already in flight,
	// which keeps uncontended commit latency at a single fsync.
	GroupCommitWindow time.Duration
	// VariableObjects enables size-changing updates (Section 6.1): the
	// database uses slotted pages with overflow forwarding instead of
	// fixed slots. Requires the OS protocol (object transfer), since
	// clients no longer interpret raw page images.
	VariableObjects bool
	// OutboxLimit caps a session's staged outbound messages. A client
	// that stops draining its connection while callbacks and grants keep
	// arriving would otherwise grow server memory without bound; at the
	// cap the server deposes the session (disconnects it through the
	// normal departure path). 0 means the default (4096); negative
	// disables the cap.
	OutboxLimit int
	// CallbackTimeout bounds how long a client may sit on an outstanding
	// callback (including the deferred ack after a busy reply) before the
	// server declares it dead and disconnects it, so one silent client
	// cannot stall every writer of a page. 0 disables the deadline.
	CallbackTimeout time.Duration
	// Metrics, when set, is the registry the server publishes on; pass a
	// shared registry to aggregate several processes (e.g. oodbbench runs
	// server and clients in one registry). Nil: the server makes its own,
	// reachable via Server.Metrics().
	Metrics *obs.Registry
	// TraceBuf sizes the event-trace ring (obs.DefaultTraceBuf if 0).
	// Tracing starts disabled; switch it on via Server.Tracer().
	TraceBuf int
}

// objectStore abstracts the fixed-slot Store and the variable-size VStore.
type objectStore interface {
	ReadPage(p core.PageID) ([]byte, error)
	ReadObj(o core.ObjID) ([]byte, error)
	WriteObj(o core.ObjID, data []byte) error
	Flush() error
	Close() error
	closeRaw() error
	NumPages() int
	ObjsPerPage() int
	ObjSize() int
	DirtyPages() int
}

func (o *ServerOptions) defaults() {
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.ObjsPerPage == 0 {
		o.ObjsPerPage = 20
	}
	if o.NumPages == 0 {
		o.NumPages = 1250
	}
	if o.OutboxLimit == 0 {
		o.OutboxLimit = 4096
	}
}

// Server is the live page-server DBMS process: it owns the store and log,
// runs the protocol engine, and serves client sessions over transports.
type Server struct {
	opts   ServerOptions
	layout *core.Layout

	registry *obs.Registry
	metrics  *serverMetrics
	tracer   *obs.Tracer

	mu       sync.Mutex
	eng      *core.ServerEngine
	store    objectStore
	wal      *WAL
	sessions map[core.ClientID]*session
	nextID   core.ClientID
	closed   bool
	failed   error // injected crash that fail-stopped the server

	// blockStart records when each blocked transaction's queued request
	// first blocked (guarded by mu; feeds the lock-wait histograms).
	blockStart map[core.TxnID]time.Time

	// Callback-deadline watchdog (nil when CallbackTimeout == 0).
	watchStop chan struct{}
	watchDone chan struct{}

	wg sync.WaitGroup

	ln net.Listener // optional TCP listener
}

// session is one attached client. Outgoing messages are staged on the
// outbox while the server lock is held (fixing their order to match the
// engine's processing order) and shipped by a dedicated writer goroutine;
// per-session FIFO delivery is a correctness requirement of callback
// locking (a callback must never overtake the data reply it concerns).
//
// A staged entry may be reserved before its payload exists: data grants
// are pushed under the server lock with ready=false, and the payload is
// attached — and the entry marked ready — after the lock is released
// (see Server.stage / Server.attachPayloads). The writer ships only the
// maximal ready prefix, so reserved slots preserve FIFO order without
// holding the engine lock across store reads.
type session struct {
	id   core.ClientID
	conn Conn

	// cbDue maps an outstanding callback round id to its answer deadline.
	// Guarded by the server mutex (stage arms it, handle clears it, the
	// engine's round-cancel events retire it, the watchdog scans it — all
	// under Server.mu).
	cbDue map[int64]time.Time

	mu      sync.Mutex
	cond    *sync.Cond
	outbox  []*outEntry
	closed  bool
	dropped bool // outbox overflowed; the server is deposing this session
}

// outEntry is one staged outbound message. msg.Data and ready are written
// under session.mu (attachPayloads) before the writer reads them (also
// under session.mu), so the hand-off is properly fenced.
type outEntry struct {
	msg   core.Msg
	ready bool
}

func newSession(id core.ClientID, conn Conn) *session {
	s := &session{id: id, conn: conn, cbDue: make(map[int64]time.Time)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push stages one entry. It reports overflow the first time the outbox
// exceeds limit (limit <= 0: unbounded) — the caller must then depose
// the session, because an outbox this deep means the client stopped
// draining its connection and every staged byte is dead weight.
func (s *session) push(e *outEntry, limit int) (overflow bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.outbox = append(s.outbox, e)
	if limit > 0 && len(s.outbox) > limit && !s.dropped {
		s.dropped = true
		overflow = true
	}
	s.mu.Unlock()
	if e.ready {
		s.cond.Signal()
	}
	return overflow
}

// enqueue appends one ready (payload-complete) message.
func (s *session) enqueue(m core.Msg) {
	s.push(&outEntry{msg: m, ready: true}, 0)
}

// markReady publishes e's payload to the writer and wakes it.
func (s *session) markReady(e *outEntry) {
	s.mu.Lock()
	e.ready = true
	s.mu.Unlock()
	s.cond.Signal()
}

// close stops the writer.
func (s *session) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// writer ships the outbox's maximal ready prefix, in order. It parks
// while the head entry awaits its payload — later ready entries must not
// overtake it (FIFO).
func (s *session) writer() {
	for {
		s.mu.Lock()
		for !s.closed && (len(s.outbox) == 0 || !s.outbox[0].ready) {
			s.cond.Wait()
		}
		n := 0
		for n < len(s.outbox) && s.outbox[n].ready {
			n++
		}
		if n == 0 {
			// Closed with nothing shippable at the head; any still-staged
			// entries die with the connection.
			s.mu.Unlock()
			return
		}
		batch := s.outbox[:n:n]
		s.outbox = s.outbox[n:]
		s.mu.Unlock()
		for _, e := range batch {
			if err := s.conn.Send(&e.msg); err != nil {
				return // connection gone; serve() will detach
			}
		}
		// Batch boundary: push the coalesced frames out in one write
		// instead of waiting for the transport's idle flush.
		flushConn(s.conn)
	}
}

// OpenServer opens (creating if absent) the database in dir and recovers
// from the log. The directory holds "data.db" and "wal.log".
func OpenServer(dir string, opts ServerOptions) (*Server, error) {
	opts.defaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dataPath := filepath.Join(dir, "data.db")
	walPath := filepath.Join(dir, "wal.log")

	var store objectStore
	var err error
	exists := true
	if _, statErr := os.Stat(dataPath); errors.Is(statErr, os.ErrNotExist) {
		exists = false
	}
	if opts.VariableObjects {
		if opts.Proto != core.OS {
			return nil, fmt.Errorf("live: variable-size objects require the OS protocol (got %v): page images are not client-interpretable", opts.Proto)
		}
		if exists {
			store, err = OpenVStore(dataPath)
		} else {
			store, err = CreateVStore(dataPath, opts.PageSize, opts.ObjsPerPage, opts.NumPages)
		}
	} else if exists {
		store, err = OpenStore(dataPath)
	} else {
		store, err = CreateStore(dataPath, opts.PageSize, opts.ObjsPerPage, opts.NumPages)
	}
	if err != nil {
		return nil, err
	}
	if store.ObjsPerPage() != opts.ObjsPerPage || store.NumPages() != opts.NumPages {
		opts.ObjsPerPage = store.ObjsPerPage()
		opts.NumPages = store.NumPages()
	}

	// Redo recovery: one scan finds the append offset and yields the
	// records to replay; the flushed store then makes the log redundant.
	wal, recs, err := OpenWAL(walPath)
	if err != nil {
		store.Close()
		return nil, err
	}
	if _, err := replayRecords(store, recs); err != nil {
		store.Close()
		wal.Close()
		return nil, fmt.Errorf("live: recovery failed: %w", err)
	}
	if err := wal.Truncate(); err != nil {
		store.Close()
		wal.Close()
		return nil, err
	}
	wal.SyncOnCommit = opts.SyncWAL
	wal.GroupCommitWindow = opts.GroupCommitWindow

	layout := core.NewLayout(opts.NumPages, opts.ObjsPerPage)
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opts:       opts,
		layout:     layout,
		registry:   reg,
		metrics:    newServerMetrics(reg),
		tracer:     obs.NewTracer(opts.TraceBuf),
		eng:        core.NewServerEngine(opts.Proto, layout),
		store:      store,
		wal:        wal,
		sessions:   make(map[core.ClientID]*session),
		blockStart: make(map[core.TxnID]time.Time),
	}
	s.eng.Trace = s.onEngineTrace
	s.eng.RegisterMetrics(reg)
	s.registerServerGauges(reg)
	wal.metrics = s.metrics
	if opts.CallbackTimeout > 0 {
		s.watchStop = make(chan struct{})
		s.watchDone = make(chan struct{})
		go s.watchdog()
	}
	return s, nil
}

// watchdog periodically sweeps sessions for overdue callback answers and
// disconnects the offenders through the normal departure path (their
// callbacks are self-answered, copies dropped, transactions aborted).
func (s *Server) watchdog() {
	defer close(s.watchDone)
	interval := s.opts.CallbackTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-tick.C:
		}
		now := time.Now()
		var dead []core.ClientID
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		for id, sess := range s.sessions {
			for _, due := range sess.cbDue {
				if now.After(due) {
					dead = append(dead, id)
					break
				}
			}
		}
		s.mu.Unlock()
		for _, id := range dead {
			s.metrics.leaseExpiries.Inc()
			s.tracer.Emit(obs.EvLeaseExpiry, 0, int32(id), 0, 0, 0)
			s.detach(id)
		}
	}
}

// stopWatchdogLocked signals the watchdog; the caller holds s.mu.
func (s *Server) stopWatchdogLocked() {
	if s.watchStop != nil {
		select {
		case <-s.watchStop:
		default:
			close(s.watchStop)
		}
	}
}

// Proto returns the server's protocol.
func (s *Server) Proto() core.Protocol { return s.opts.Proto }

// Geometry returns (numPages, objsPerPage, objSize).
func (s *Server) Geometry() (int, int, int) {
	return s.store.NumPages(), s.store.ObjsPerPage(), s.store.ObjSize()
}

// Sessions returns the number of attached client sessions.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Stats returns a snapshot of the protocol engine statistics.
func (s *Server) Stats() core.ServerStats {
	return s.eng.Stats.Snapshot()
}

// Metrics returns the server's metrics registry. Collection (WriteHuman,
// WritePrometheus) must not run while holding the server lock: the
// instantaneous gauges take it.
func (s *Server) Metrics() *obs.Registry { return s.registry }

// Tracer returns the server's event tracer (disabled until SetEnabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Attach registers a new client session over conn and starts serving it.
// It returns the client id assigned to the session.
func (s *Server) Attach(conn Conn) (core.ClientID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("live: server closed")
	}
	s.nextID++
	id := s.nextID
	sess := newSession(id, conn)
	s.sessions[id] = sess
	s.wal.SetDemand(len(s.sessions))
	go sess.writer()
	s.mu.Unlock()

	// Handshake: tell the client its id, the geometry, and the protocol.
	pages, opp, objSize := s.Geometry()
	hello := &core.Msg{Kind: core.MHello, To: id, HelloID: id,
		HelloPages: int32(pages), HelloObjsPP: int32(opp), HelloObjSize: int32(objSize),
		HelloProto: s.opts.Proto, HelloVariable: s.opts.VariableObjects}
	sess.enqueue(*hello) // first message on the session, ahead of any grant

	s.wg.Add(1)
	go s.serve(sess)
	return id, nil
}

func (s *Server) detach(id core.ClientID) {
	held := s.lockEngine()
	sess, ok := s.sessions[id]
	if !ok || s.closed {
		s.mu.Unlock()
		return
	}
	delete(s.sessions, id)
	s.wal.SetDemand(len(s.sessions))
	// Clean up the ghost's protocol state; stage any grants this unblocks.
	staged, overflow := s.stage(s.eng.Disconnect(id))
	s.unlockEngine(held)
	sess.close()
	// Watchdog-initiated detaches must also unblock the serve goroutine,
	// which is parked in conn.Recv.
	sess.conn.Close()
	s.attachPayloads(staged)
	for _, oid := range overflow {
		s.detach(oid) // bounded: each recursion removes a session
	}
}

// serve pumps one session's incoming messages through the engine.
func (s *Server) serve(sess *session) {
	defer s.wg.Done()
	for {
		m, err := sess.conn.Recv()
		if err != nil {
			s.detach(sess.id)
			return
		}
		m.From = sess.id
		s.handle(m)
	}
}

// lockEngine acquires the engine lock, recording how long the caller
// waited for it, and returns the acquisition time for unlockEngine's
// hold observation. Together the two histograms make the critical
// section's width observable: hold should cover only the engine step and
// the WAL frame write, never store I/O or fsyncs.
func (s *Server) lockEngine() time.Time {
	t0 := time.Now()
	s.mu.Lock()
	t1 := time.Now()
	s.metrics.engineLockWaitNs.Observe(t1.Sub(t0).Nanoseconds())
	return t1
}

// unlockEngine records the hold time since lockEngine and releases.
func (s *Server) unlockEngine(acquired time.Time) {
	s.metrics.engineLockHoldNs.Observe(time.Since(acquired).Nanoseconds())
	s.mu.Unlock()
}

// handle runs one message through the engine under the server lock and
// dispatches the responses. Everything that does not need the engine's
// state — WAL body encoding, the commit fsync wait, store payload reads
// — happens outside the lock.
func (s *Server) handle(m *core.Msg) {
	kind := int(m.Kind)
	if kind < len(msgKindLabels) {
		s.metrics.reqs[kind].Inc()
	}
	start := time.Now()
	var syncWait time.Duration
	defer func() {
		if kind < len(msgKindLabels) {
			// The group-commit durability wait is fsync scheduling, not
			// processing; it is recorded separately (commitSyncWaitNs) so
			// handle latency stays honest.
			s.metrics.handleNs[kind].Observe((time.Since(start) - syncWait).Nanoseconds())
		}
	}()

	// Encode the commit's WAL frame before taking the lock: the record
	// body is a pure function of the request, and encoding is the
	// expensive half of an append.
	var rec *walRecord
	var frame []byte
	if m.Kind == core.MCommitReq && len(m.Updates) > 0 {
		rec = &walRecord{Txn: m.Txn, Client: m.From, Commit: true}
		for _, o := range sortedUpdateKeys(m.Updates) {
			rec.Objs = append(rec.Objs, o)
			rec.Images = append(rec.Images, m.Updates[o])
		}
		frame = encodeWALFrame(rec)
	}

	held := s.lockEngine()
	if s.closed {
		s.mu.Unlock()
		return
	}

	// Commit: log afterimages before the engine acks, then install. Only
	// the frame write (offset assignment) and the slot installs happen
	// under the server lock; the fsync wait does not — commits from other
	// sessions that arrive during the sync append behind us and ride the
	// next sync as a batch (group commit). Correctness notes:
	//
	//   - acked => durable: the engine only produces MCommitAck after
	//     WaitDurable returns, and a fail-stop during the sync kills the
	//     server before any ack escapes.
	//   - messages processed during our fsync window see the new store
	//     bytes but the OLD lock state — our updated objects stay
	//     write-locked (so unreadable/unwritable) until the engine
	//     processes the commit after the sync.
	//   - a reader that does observe committed-but-unacked bytes (other
	//     objects on an updated page) can never commit "ahead" of us:
	//     the WAL is sequential and synced is a prefix offset, so its
	//     record durable implies ours durable.
	//   - installs stay under the server lock (not just the page latch)
	//     so Checkpoint's flush-then-truncate cannot interleave with an
	//     install: a WAL record is only ever truncated after a store
	//     flush that covers its installs.
	if frame != nil {
		ticket, gen, err := s.wal.appendFrame(frame)
		if err != nil {
			if fault.IsCrash(err) {
				// Injected fail-stop: die before acking the undurable
				// commit; the client sees its connection drop instead.
				s.crashLocked(err)
				s.mu.Unlock()
				return
			}
			// Real log failure: crash loudly rather than ack an undurable
			// commit.
			panic(fmt.Sprintf("live: WAL append failed: %v", err))
		}
		for i, o := range rec.Objs {
			if err := s.store.WriteObj(o, rec.Images[i]); err != nil {
				panic(fmt.Sprintf("live: commit install failed: %v", err))
			}
		}
		s.unlockEngine(held)
		syncStart := time.Now()
		err = s.wal.WaitDurable(ticket, gen)
		syncWait = time.Since(syncStart)
		s.metrics.commitSyncWaitNs.Observe(syncWait.Nanoseconds())
		held = s.lockEngine()
		if err != nil {
			if !s.closed {
				if fault.IsCrash(err) {
					s.crashLocked(err)
				} else {
					panic(fmt.Sprintf("live: WAL sync failed: %v", err))
				}
			}
			s.mu.Unlock()
			return
		}
		if s.closed {
			// A concurrent crash (or shutdown) won the race: the sessions
			// are gone and no ack may escape.
			s.mu.Unlock()
			return
		}
	}

	staged, overflow := s.stage(s.eng.Handle(m))

	// Callback-deadline bookkeeping, after the engine step: any ack
	// proves the client is alive, and a busy reply defers the real
	// answer to the transaction's end — but only while its round is
	// still live. A busy ack racing a round cancellation (victim
	// aborted, requester disconnected) must not arm a lease the client
	// can never discharge.
	if m.Kind == core.MCallbackAck && s.opts.CallbackTimeout > 0 {
		if sess := s.sessions[m.From]; sess != nil {
			delete(sess.cbDue, m.Req)
			if m.Busy && s.eng.RoundLive(m.Req) {
				sess.cbDue[m.Req] = time.Now().Add(s.opts.CallbackTimeout)
			}
		}
	}

	s.unlockEngine(held)
	s.attachPayloads(staged)
	for _, id := range overflow {
		s.detach(id)
	}
}

// stagedPayload is a reserved outbox slot awaiting its payload.
type stagedPayload struct {
	sess *session
	e    *outEntry
}

// stage reserves outbox slots for the engine's outputs, in engine order
// (the wire order), under the server lock. Messages that need no store
// payload are ready immediately; data grants are staged unready and
// returned for attachPayloads to fill outside the lock. It also arms
// callback deadlines and reports sessions whose outbox overflowed (the
// caller must detach those after releasing the lock).
func (s *Server) stage(outs []core.Msg) (staged []stagedPayload, overflow []core.ClientID) {
	for _, om := range outs {
		sess := s.sessions[om.To]
		if sess == nil {
			continue // client departed; detach cleans its state up
		}
		e := &outEntry{msg: om}
		switch om.Kind {
		case core.MPageData, core.MObjData:
			staged = append(staged, stagedPayload{sess, e})
		case core.MCallback:
			if s.opts.CallbackTimeout > 0 {
				sess.cbDue[om.Req] = time.Now().Add(s.opts.CallbackTimeout)
			}
			e.ready = true
		default:
			e.ready = true
		}
		if sess.push(e, s.opts.OutboxLimit) {
			s.metrics.outboxDeposes.Inc()
			overflow = append(overflow, om.To)
		}
	}
	return staged, overflow
}

// attachPayloads reads the store payloads for slots stage reserved and
// publishes them to the session writers. It runs WITHOUT the server
// lock; the store's page latches (shared here, exclusive in commit
// installs) keep each copy untorn.
//
// The payload still matches the lock state at grant time: a conflicting
// writer can install new bytes for a granted object only after calling
// back every registered copy — and the copy was registered under the
// server lock when this grant was staged. The recipient answers that
// callback only after its client-side receive loop has consumed this
// very message, which the FIFO outbox orders behind nothing that hasn't
// been sent — so the install strictly follows this read. Slots the grant
// marked Unavail are the one exception: their bytes may move underneath
// us, but clients never read Unavail slots from a granted page.
func (s *Server) attachPayloads(staged []stagedPayload) {
	for _, sp := range staged {
		var data []byte
		var err error
		if sp.e.msg.Kind == core.MPageData {
			data, err = s.store.ReadPage(sp.e.msg.Page)
		} else {
			data, err = s.store.ReadObj(sp.e.msg.Obj)
		}
		if err != nil {
			panic(fmt.Sprintf("live: payload read failed: %v", err))
		}
		sp.e.msg.Data = data
		sp.sess.markReady(sp.e)
	}
}

func sortedUpdateKeys(m map[core.ObjID][]byte) []core.ObjID {
	keys := make([]core.ObjID, 0, len(m))
	for o := range m {
		keys = append(keys, o)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		return a.Page < b.Page || (a.Page == b.Page && a.Slot < b.Slot)
	})
	return keys
}

// ListenAndServe accepts TCP connections on addr until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		// Version handshake off the accept loop, so one slow or
		// wrong-protocol dialer cannot stall other accepts.
		go func(c net.Conn) {
			if err := acceptHandshake(c); err != nil {
				c.Close()
				return
			}
			if _, err := s.Attach(NewTCPConn(c)); err != nil {
				c.Close()
			}
		}(c)
	}
}

// Addr returns the TCP listen address, if listening.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Checkpoint flushes the store and truncates the log. The order is the
// crash-safety invariant: the log may only be truncated once every update
// it covers is durably in the store. A crash anywhere inside (exercised by
// the store.flush.* and checkpoint.mid crash points) leaves the log
// intact, and replaying it is idempotent.
func (s *Server) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		if s.failed != nil {
			return s.failed
		}
		return fmt.Errorf("live: server closed")
	}
	start := time.Now()
	dirty := s.store.DirtyPages()
	if err := s.store.Flush(); err != nil {
		if fault.IsCrash(err) {
			s.crashLocked(err)
		}
		return err
	}
	s.metrics.flushPages.Add(int64(dirty))
	if err := cpCheckpointMid.Check(); err != nil {
		s.crashLocked(err)
		return err
	}
	if err := s.wal.Truncate(); err != nil {
		if fault.IsCrash(err) {
			s.crashLocked(err)
		}
		return err
	}
	s.metrics.checkpointNs.Observe(time.Since(start).Nanoseconds())
	s.metrics.checkpoints.Inc()
	return nil
}

// crashLocked fail-stops the server as an injected crash dictates: every
// session drops, nothing is flushed, and WAL bytes that were never fsynced
// are discarded (they lived in the dying machine's page cache). The data
// directory is left exactly as a real crash would, ready for recovery by a
// fresh OpenServer. Caller holds s.mu.
func (s *Server) crashLocked(cause error) {
	if s.closed {
		return
	}
	s.closed = true
	s.failed = cause
	s.stopWatchdogLocked()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, sess := range s.sessions {
		sess.close()
		sess.conn.Close()
	}
	s.sessions = map[core.ClientID]*session{}
	s.wal.crash()
	s.store.closeRaw()
}

// Crash simulates fail-stop process death (for tests and the recovery
// fuzzer): connections drop and the in-memory store dies without a flush.
// Idempotent; returns the injected crash that already stopped the server,
// if any.
func (s *Server) Crash() error {
	s.mu.Lock()
	failed := s.failed
	s.crashLocked(errors.New("live: server crashed (simulated)"))
	s.mu.Unlock()
	s.wg.Wait()
	if s.watchDone != nil {
		<-s.watchDone
	}
	return failed
}

// Failed returns the injected crash that fail-stopped the server, or nil.
func (s *Server) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Close shuts the server down: sessions are closed, the store is flushed
// (making the log redundant), and files are closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.stopWatchdogLocked()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, sess := range s.sessions {
		sess.close()
		sess.conn.Close()
	}
	s.sessions = map[core.ClientID]*session{}
	s.mu.Unlock()

	s.wg.Wait()
	if s.watchDone != nil {
		<-s.watchDone
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	if err := s.store.Close(); err != nil {
		firstErr = err
	} else if err := s.wal.Truncate(); err != nil {
		// Only truncate once the store is durably flushed.
		firstErr = err
	}
	if err := s.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
