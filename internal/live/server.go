package live

import (
	"errors"
	"fmt"
	"math/bits"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// Checkpoint crash points. cpCheckpointMid crashes between the store
// flush and everything after it — the checkpoint's original ordering
// hazard: recovery must replay the (now redundant) log idempotently.
// The watermark pair brackets the fuzzy checkpoint's new commit point:
// pre-watermark dies with the flush done but unrecorded (recovery replays
// the whole log), post-watermark dies with the watermark durable but the
// prefix not yet truncated (recovery must skip the covered prefix and
// still come out byte-identical).
var (
	cpCheckpointMid    = fault.Register("checkpoint.mid")
	cpCheckpointPreWM  = fault.Register("checkpoint.pre-watermark")
	cpCheckpointPostWM = fault.Register("checkpoint.post-watermark")

	// cpReclusterMidMove crashes a migration commit after its WAL append
	// but before the installs and the relocation-table publish: the log
	// holds a relocation record (durable or not, depending on the sync
	// race) that relocs.db does not — recovery must reconstruct the table
	// from base + log either way.
	cpReclusterMidMove = fault.Register("recluster.mid-move")
)

// ServerOptions configures a live server.
type ServerOptions struct {
	Proto       core.Protocol
	PageSize    int // default 4096
	ObjsPerPage int // default 20
	NumPages    int // default 1250
	// Shards is the number of page-hash engine shards (rounded down to a
	// power of two, max 64). Commits whose write sets land on different
	// shards run the engine step concurrently on separate cores; the WAL
	// stays a single sequencer. 0 selects the default: the OODB_SHARDS
	// environment variable if set, else min(8, GOMAXPROCS). 1 disables
	// sharding (the pre-shard single-engine behavior).
	Shards int
	// RecoveryJobs is the number of parallel WAL replay workers used when
	// opening the database (fixed-slot stores only; the variable store
	// replays serially — see replayRecords). 0 selects the default: the
	// OODB_RECOVERY_JOBS environment variable if set, else
	// min(Shards, GOMAXPROCS).
	RecoveryJobs int
	// SyncWAL forces commits to wait for a WAL fsync before acking
	// (default true; tests disable it).
	SyncWAL bool
	// GroupCommitWindow makes the WAL's group-commit sync leader linger
	// this long before fsyncing, gathering more concurrent commits into
	// one sync. 0 (the default) syncs immediately; batching then comes
	// only from commits that arrive while an fsync is already in flight,
	// which keeps uncontended commit latency at a single fsync.
	GroupCommitWindow time.Duration
	// VariableObjects enables size-changing updates (Section 6.1): the
	// database uses slotted pages with overflow forwarding instead of
	// fixed slots. Requires the OS protocol (object transfer), since
	// clients no longer interpret raw page images.
	VariableObjects bool
	// OutboxLimit caps a session's staged outbound messages. A client
	// that stops draining its connection while callbacks and grants keep
	// arriving would otherwise grow server memory without bound; at the
	// cap the server deposes the session (disconnects it through the
	// normal departure path). 0 means the default (4096); negative
	// disables the cap.
	OutboxLimit int
	// CallbackTimeout bounds how long a client may sit on an outstanding
	// callback (including the deferred ack after a busy reply) before the
	// server declares it dead and disconnects it, so one silent client
	// cannot stall every writer of a page. 0 disables the deadline.
	CallbackTimeout time.Duration
	// Metrics, when set, is the registry the server publishes on; pass a
	// shared registry to aggregate several processes (e.g. oodbbench runs
	// server and clients in one registry). Nil: the server makes its own,
	// reachable via Server.Metrics().
	Metrics *obs.Registry
	// TraceBuf sizes the event-trace ring (obs.DefaultTraceBuf if 0,
	// honoring the OODB_TRACE_SIZE environment variable first). Tracing
	// starts disabled; switch it on via Server.Tracer().
	TraceBuf int
	// Heat starts the access-heat/contention collector enabled (it can
	// also be switched at runtime via Server.Heat() or the admin
	// /heatz/on|/heatz/off endpoints). False honors OODB_HEAT=1. Disabled,
	// the collector costs one atomic load per engine event.
	Heat bool
	// HeatEpoch is the heat collector's rotation period (sketch decay +
	// false-sharing score fold); default 10s.
	HeatEpoch time.Duration
	// HeatTopK sizes the heat sketches (obs.HeatOptions.TopK; default 32).
	HeatTopK int
	// BlackboxDir, when set, enables the flight recorder: on a serve-path
	// panic or an injected fail-stop the server dumps its trace ring, heat
	// snapshot, commit-stage spans, and metrics to a timestamped JSONL
	// file in this directory (see obs.FlightRecorder).
	BlackboxDir string
	// BlackboxMax bounds retained blackbox dumps (default 8).
	BlackboxMax int
	// Recluster enables online reclustering: the store is created with a
	// spare-page region past the user-visible geometry, and a background
	// planner consumes heat snapshots and migrates objects off
	// false-sharing pages into (near-)private spare pages via system
	// transactions. Implies Heat; honors OODB_RECLUSTER=1. Fixed-slot
	// stores only (the variable store relocates on its own terms). On a
	// pre-existing store created without reclustering there is no spare
	// region, so the planner stays inert.
	Recluster bool
	// ReclusterEvery is the planner's polling period (default 2s).
	ReclusterEvery time.Duration
	// ReclusterSpare overrides the spare-page count reserved at store
	// creation (default NumPages/8, clamped to [4, 256]).
	ReclusterSpare int
	// ReclusterMaxMoves caps object migrations per planner round
	// (default 64) — the pacing knob keeping migration a background
	// trickle.
	ReclusterMaxMoves int
	// Transport selects how ListenAndServe drives TCP sessions:
	// TransportGoroutine (the default) runs the classic
	// goroutine-per-connection loops (reader + writer + flusher per
	// session); TransportReactor multiplexes every session onto a small
	// set of epoll event loops — O(loops) goroutines regardless of the
	// session count, which is what lets one server hold 10k-100k
	// sessions. Empty honors OODB_TRANSPORT. On platforms without epoll
	// the reactor falls back to the goroutine transport at listen time.
	// In-process (Pipe) sessions are unaffected either way.
	Transport string
	// ReactorLoops is the reactor's event-loop worker count (0: the
	// OODB_REACTOR_LOOPS environment variable if set, else
	// min(8, GOMAXPROCS)).
	ReactorLoops int
	// ReactorDrainCap caps one reactor connection's pending outbound
	// bytes. A client that stops reading while grants and callbacks keep
	// coalescing into its queue is deposed at the cap instead of growing
	// server memory without bound — the byte-level analogue of
	// OutboxLimit. 0 means the default (8 MiB); negative disables the
	// cap.
	ReactorDrainCap int
}

// Transport values for ServerOptions.Transport (and OODB_TRANSPORT).
const (
	TransportGoroutine = "goroutine"
	TransportReactor   = "reactor"
)

// objectStore abstracts the fixed-slot Store and the variable-size VStore.
type objectStore interface {
	ReadPage(p core.PageID) ([]byte, error)
	ReadObj(o core.ObjID) ([]byte, error)
	WriteObj(o core.ObjID, data []byte) error
	Flush() error
	Close() error
	closeRaw() error
	NumPages() int
	ObjsPerPage() int
	ObjSize() int
	DirtyPages() int
}

func (o *ServerOptions) defaults() {
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.ObjsPerPage == 0 {
		o.ObjsPerPage = 20
	}
	if o.NumPages == 0 {
		o.NumPages = 1250
	}
	if o.OutboxLimit == 0 {
		o.OutboxLimit = 4096
	}
	if o.Shards == 0 {
		if v := os.Getenv("OODB_SHARDS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				o.Shards = n
			}
		}
	}
	if o.Shards == 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 8 {
			o.Shards = 8
		}
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.Shards > 64 {
		o.Shards = 64
	}
	// Round down to a power of two so shardOf is a mask, not a modulo.
	for o.Shards&(o.Shards-1) != 0 {
		o.Shards &= o.Shards - 1
	}
	if o.RecoveryJobs == 0 {
		if v := os.Getenv("OODB_RECOVERY_JOBS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				o.RecoveryJobs = n
			}
		}
	}
	if o.RecoveryJobs == 0 {
		o.RecoveryJobs = runtime.GOMAXPROCS(0)
		if o.RecoveryJobs > o.Shards {
			o.RecoveryJobs = o.Shards
		}
	}
	if o.RecoveryJobs < 1 {
		o.RecoveryJobs = 1
	}
	if o.TraceBuf == 0 {
		if v := os.Getenv("OODB_TRACE_SIZE"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				o.TraceBuf = n
			}
		}
	}
	if !o.Heat {
		if v := os.Getenv("OODB_HEAT"); v == "1" || v == "true" {
			o.Heat = true
		}
	}
	if o.HeatEpoch <= 0 {
		o.HeatEpoch = 10 * time.Second
	}
	if !o.Recluster {
		if v := os.Getenv("OODB_RECLUSTER"); v == "1" || v == "true" {
			o.Recluster = true
		}
	}
	if o.Transport == "" {
		o.Transport = os.Getenv("OODB_TRANSPORT")
	}
	if o.Transport == "" {
		o.Transport = TransportGoroutine
	}
	if o.ReactorLoops == 0 {
		if v := os.Getenv("OODB_REACTOR_LOOPS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				o.ReactorLoops = n
			}
		}
	}
	if o.ReactorLoops <= 0 {
		o.ReactorLoops = runtime.GOMAXPROCS(0)
		if o.ReactorLoops > 8 {
			o.ReactorLoops = 8
		}
	}
	if o.ReactorDrainCap == 0 {
		o.ReactorDrainCap = 8 << 20
	}
	if o.Recluster {
		o.Heat = true // the planner is blind without the collector
		if o.ReclusterEvery <= 0 {
			o.ReclusterEvery = 2 * time.Second
		}
		if o.ReclusterMaxMoves <= 0 {
			o.ReclusterMaxMoves = 64
		}
		if o.ReclusterSpare <= 0 {
			o.ReclusterSpare = o.NumPages / 8
			if o.ReclusterSpare < 4 {
				o.ReclusterSpare = 4
			}
			if o.ReclusterSpare > 256 {
				o.ReclusterSpare = 256
			}
		}
	}
}

// engineShard is one slice of the partitioned engine: a full protocol
// engine (lock table, copy table, queues, rounds) owning the pages that
// hash to it, under its own mutex. Commits whose write sets touch
// disjoint shards hold disjoint locks and run concurrently.
type engineShard struct {
	idx int
	mu  sync.Mutex
	eng *core.ServerEngine

	// Per-shard views of the engine-lock histograms (the aggregate pair
	// is also fed) — a hot shard shows up as one skewed series.
	lockWaitNs *obs.Histogram
	lockHoldNs *obs.Histogram
}

// Server is the live page-server DBMS process: it owns the store and log,
// runs the protocol engine (sharded by page hash), and serves client
// sessions over transports.
type Server struct {
	opts   ServerOptions
	layout *core.Layout

	registry *obs.Registry
	metrics  *serverMetrics
	tracer   *obs.Tracer
	heat     *obs.Heat
	spans    *obs.Spans
	flight   *obs.FlightRecorder // nil unless BlackboxDir is set

	// shards partitions the engine by page hash; shardMask is
	// len(shards)-1 (power of two). With one shard the system behaves
	// exactly like the pre-shard single-engine server.
	shards    []*engineShard
	shardMask uint32

	store objectStore
	wal   *WAL
	dir   string // database directory (relocs.db lives beside data.db)

	// Online-reclustering state. relocs is the authoritative redirect
	// table (nil when the store has no spare region and no relocations —
	// reclustering inert); fences gates requests for mid-migration
	// objects; userPages is the client-visible page count (physical minus
	// the spare region); internalID is the planner's session (0: none),
	// exempt from the front door and excluded from heat and user stats.
	relocs     *relocTable
	fences     *fenceSet
	userPages  int
	internalID atomic.Int64
	recl       *recluster // background planner; nil unless opts.Recluster

	// installMu orders commit installs against checkpoints, replacing
	// what the single engine lock used to guarantee: a commit holds it
	// shared around its WAL append + store installs; Checkpoint holds it
	// exclusive across flush + truncate. So a WAL record is only ever
	// truncated after a store flush that covers its installs, and a
	// flush/truncate pair never splits an append/install pair.
	// Lock order: shard locks -> installMu -> s.mu.
	installMu sync.RWMutex

	// ckptMu serializes checkpoints: the fuzzy checkpoint releases
	// installMu between capturing its watermark and truncating the log,
	// so without this two overlapping checkpoints could interleave their
	// flush/watermark/truncate steps.
	ckptMu sync.Mutex

	// recovery is what the opening replay did (see RecoveryStats).
	recovery RecoveryStats

	// sessions is copy-on-write: readers (stage, routing, the watchdog,
	// gauges) load the map lock-free; Attach/detach/close replace it
	// under s.mu.
	sessions atomic.Pointer[map[core.ClientID]*session]

	// closedFlag mirrors closed for lock-free checks on hot/failure
	// paths. Set (under s.mu) before the store and log are torn down.
	closedFlag atomic.Bool

	mu     sync.Mutex // admin state below
	nextID core.ClientID
	closed bool
	failed error // injected crash that fail-stopped the server

	// blockStart records when each blocked transaction's queued request
	// first blocked (feeds the lock-wait histograms). Global across
	// shards — a transaction blocks on one shard but may finish via an
	// owner step on another — under its own small mutex.
	bsMu       sync.Mutex
	blockStart map[core.TxnID]time.Time

	// Callback-deadline watchdog (nil when CallbackTimeout == 0).
	watchStop chan struct{}
	watchDone chan struct{}

	// Heat-epoch rotation ticker.
	heatStop chan struct{}
	heatDone chan struct{}

	// Cross-shard deadlock detector (nil when len(shards) == 1; local
	// per-shard detection is complete then). See deadlock.go.
	dlPoke chan struct{}
	dlStop chan struct{}
	dlDone chan struct{}

	wg sync.WaitGroup

	ln net.Listener // optional TCP listener

	// reactor is the epoll transport driving TCP sessions when
	// Transport == TransportReactor (nil until ListenAndServe, and on
	// platforms where the reactor is unsupported). transport is the
	// transport actually in effect for TCP sessions, set at listen time
	// (it records the fallback when the reactor is unavailable); guarded
	// by s.mu.
	reactor   atomic.Pointer[reactor]
	transport string
}

// shardIdx maps a page to its owning shard index. The multiplicative
// hash decorrelates the low page bits (clients allocate contiguous
// regions) before masking.
func (s *Server) shardIdx(p core.PageID) int {
	if s.shardMask == 0 {
		return 0
	}
	h := uint32(p) * 2654435761
	return int((h >> 16) & s.shardMask)
}

func (s *Server) shardOf(p core.PageID) *engineShard {
	return s.shards[s.shardIdx(p)]
}

// NumShards returns the number of engine shards.
func (s *Server) NumShards() int { return len(s.shards) }

// sessionMap returns the current copy-on-write session map (never nil).
func (s *Server) sessionMap() map[core.ClientID]*session {
	return *s.sessions.Load()
}

// sessionOf returns the attached session for id, or nil.
func (s *Server) sessionOf(id core.ClientID) *session {
	return (*s.sessions.Load())[id]
}

// session is one attached client. Outgoing messages are staged on the
// outbox while the owning shard's lock is held (fixing their order to
// match the engine's processing order) and shipped by a dedicated writer
// goroutine; per-session FIFO delivery is a correctness requirement of
// callback locking (a callback must never overtake the data reply it
// concerns). All messages about one page are produced under that page's
// shard lock, so per-page wire order still matches engine order.
//
// A staged entry may be reserved before its payload exists: data grants
// are pushed under the shard lock with ready=false, and the payload is
// attached — and the entry marked ready — after the lock is released
// (see Server.stage / Server.attachPayloads). The writer ships only the
// maximal ready prefix, so reserved slots preserve FIFO order without
// holding the engine lock across store reads.
type session struct {
	id   core.ClientID
	conn Conn

	// cbDue maps an outstanding callback round id to its answer deadline.
	// cbMu guards the map itself (rounds from different shards share it,
	// and the watchdog scans it); arm-vs-cancel ordering for any one
	// round is already serialized by that round's shard lock.
	cbMu  sync.Mutex
	cbDue map[int64]time.Time

	// txnShards (write-grant footprint) and txnLastReq (shard of the most
	// recent read/write request) route commits and aborts to the shards
	// holding the transaction's state. Touched only by the goroutine
	// delivering this session's messages — the serve goroutine, or for
	// async sessions the one event loop that owns the connection — so
	// unguarded.
	txnShards  map[core.TxnID]uint64
	txnLastReq map[core.TxnID]uint64

	// async marks a reactor-driven session: no writer goroutine; ready
	// outbox entries are drained by pump, scheduled on the connection's
	// event loop via asyncConn.Kick. Set before the session is published,
	// read-only after.
	async bool

	mu      sync.Mutex
	cond    *sync.Cond
	outbox  []*outEntry
	pumping bool // async: a pump is mid-batch; keeps drains FIFO
	closed  bool
	dropped bool // outbox overflowed; the server is deposing this session
}

// outEntry is one staged outbound message. msg.Data and ready are written
// under session.mu (attachPayloads) before the writer reads them (also
// under session.mu), so the hand-off is properly fenced.
type outEntry struct {
	msg   core.Msg
	ready bool
}

func newSession(id core.ClientID, conn Conn) *session {
	s := &session{id: id, conn: conn, cbDue: make(map[int64]time.Time)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// armCB sets the answer deadline for callback round id.
func (s *session) armCB(id int64, due time.Time) {
	s.cbMu.Lock()
	s.cbDue[id] = due
	s.cbMu.Unlock()
}

// clearCB retires the deadline for round id, if armed.
func (s *session) clearCB(id int64) {
	s.cbMu.Lock()
	delete(s.cbDue, id)
	s.cbMu.Unlock()
}

// overdue reports whether any armed callback deadline has passed.
func (s *session) overdue(now time.Time) bool {
	s.cbMu.Lock()
	defer s.cbMu.Unlock()
	for _, due := range s.cbDue {
		if now.After(due) {
			return true
		}
	}
	return false
}

// push stages one entry. It reports overflow the first time the outbox
// exceeds limit (limit <= 0: unbounded) — the caller must then depose
// the session, because an outbox this deep means the client stopped
// draining its connection and every staged byte is dead weight.
func (s *session) push(e *outEntry, limit int) (overflow bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.outbox = append(s.outbox, e)
	if limit > 0 && len(s.outbox) > limit && !s.dropped {
		s.dropped = true
		overflow = true
	}
	s.mu.Unlock()
	if e.ready {
		s.wake()
	}
	return overflow
}

// wake tells the shipper that ready output exists: the parked writer
// goroutine for sync sessions, the connection's event loop for async
// ones. Kick is a non-blocking atomic flip (plus at most one pipe write),
// so callers may hold shard locks.
func (s *session) wake() {
	if !s.async {
		s.cond.Signal()
		return
	}
	if ac, ok := s.conn.(asyncConn); ok {
		ac.Kick()
	}
}

// enqueue appends one ready (payload-complete) message.
func (s *session) enqueue(m core.Msg) {
	s.push(&outEntry{msg: m, ready: true}, 0)
}

// markReady publishes e's payload to the writer and wakes it.
func (s *session) markReady(e *outEntry) {
	s.mu.Lock()
	e.ready = true
	s.mu.Unlock()
	s.wake()
}

// close stops the writer.
func (s *session) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// writer ships the outbox's maximal ready prefix, in order. It parks
// while the head entry awaits its payload — later ready entries must not
// overtake it (FIFO).
func (s *session) writer() {
	for {
		s.mu.Lock()
		for !s.closed && (len(s.outbox) == 0 || !s.outbox[0].ready) {
			s.cond.Wait()
		}
		n := 0
		for n < len(s.outbox) && s.outbox[n].ready {
			n++
		}
		if n == 0 {
			// Closed with nothing shippable at the head; any still-staged
			// entries die with the connection.
			s.mu.Unlock()
			return
		}
		batch := s.outbox[:n:n]
		s.outbox = s.outbox[n:]
		s.mu.Unlock()
		for _, e := range batch {
			if err := s.conn.Send(&e.msg); err != nil {
				return // connection gone; serve() will detach
			}
		}
		// Batch boundary: push the coalesced frames out in one write
		// instead of waiting for the transport's idle flush.
		flushConn(s.conn)
	}
}

// pump is the async (reactor) analogue of writer: it ships the outbox's
// maximal ready prefix, then returns instead of parking. The connection's
// event loop calls it whenever Kick signaled staged output. The pumping
// flag admits one drainer at a time, so FIFO holds even if a stray kick
// ever raced the owning loop; entries that become ready mid-batch are
// picked up by the re-check (their Kick may find pumping set, but this
// drainer clears the flag only after looking again).
func (s *session) pump() {
	s.mu.Lock()
	for {
		if s.pumping || s.closed {
			s.mu.Unlock()
			return
		}
		n := 0
		for n < len(s.outbox) && s.outbox[n].ready {
			n++
		}
		if n == 0 {
			s.mu.Unlock()
			return
		}
		batch := s.outbox[:n:n]
		s.outbox = s.outbox[n:]
		s.pumping = true
		s.mu.Unlock()
		ok := true
		for _, e := range batch {
			if err := s.conn.Send(&e.msg); err != nil {
				ok = false // conn deposed/failed; its close path detaches us
				break
			}
		}
		if ok {
			flushConn(s.conn)
		}
		s.mu.Lock()
		s.pumping = false
		if !ok {
			s.mu.Unlock()
			return
		}
	}
}

// OpenServer opens (creating if absent) the database in dir and recovers
// from the log. The directory holds "data.db" and "wal.log".
func OpenServer(dir string, opts ServerOptions) (*Server, error) {
	opts.defaults()
	if opts.Transport != TransportGoroutine && opts.Transport != TransportReactor {
		return nil, fmt.Errorf("live: unknown transport %q (want %q or %q)",
			opts.Transport, TransportGoroutine, TransportReactor)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dataPath := filepath.Join(dir, "data.db")
	walPath := filepath.Join(dir, "wal.log")

	var store objectStore
	var err error
	exists := true
	if _, statErr := os.Stat(dataPath); errors.Is(statErr, os.ErrNotExist) {
		exists = false
	}
	if opts.Recluster && opts.VariableObjects {
		return nil, fmt.Errorf("live: reclustering requires the fixed-slot store (the variable store relocates objects on its own terms)")
	}
	var relocs *relocTable
	if opts.VariableObjects {
		if opts.Proto != core.OS {
			return nil, fmt.Errorf("live: variable-size objects require the OS protocol (got %v): page images are not client-interpretable", opts.Proto)
		}
		if exists {
			store, err = OpenVStore(dataPath)
		} else {
			store, err = CreateVStore(dataPath, opts.PageSize, opts.ObjsPerPage, opts.NumPages)
		}
	} else if exists {
		store, err = OpenStore(dataPath)
	} else if opts.Recluster {
		// Reclustering reserves a spare region past the user-visible
		// geometry: migrations allocate destination slots there. The spare
		// count persists in relocs.db (written before the store can take a
		// commit), and clients are told only the user page count.
		store, err = CreateStore(dataPath, opts.PageSize, opts.ObjsPerPage, opts.NumPages+opts.ReclusterSpare)
		if err == nil {
			relocs = newRelocTable(int32(opts.ReclusterSpare))
			if err = relocs.save(dir); err != nil {
				store.Close()
			}
		}
	} else {
		store, err = CreateStore(dataPath, opts.PageSize, opts.ObjsPerPage, opts.NumPages)
	}
	if err != nil {
		return nil, err
	}
	if relocs == nil && !opts.VariableObjects {
		relocs, err = loadRelocTable(dir)
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	if store.ObjsPerPage() != opts.ObjsPerPage || store.NumPages() != opts.NumPages {
		opts.ObjsPerPage = store.ObjsPerPage()
		opts.NumPages = store.NumPages()
	}
	userPages := opts.NumPages
	if relocs != nil {
		userPages -= int(relocs.spare)
		if userPages <= 0 {
			store.Close()
			return nil, fmt.Errorf("live: %s claims %d spare pages but the store has only %d", relocFile, relocs.spare, opts.NumPages)
		}
	}

	// Redo recovery: one scan finds the append offset, the checkpoint
	// watermark, and the records to replay; the flushed store then makes
	// the log redundant. A crash anywhere in here (the recover.mid-replay
	// and store.flush.* crash points) leaves the log intact for the next
	// attempt — replay is idempotent, so recovering a half-recovered
	// store lands on the same bytes.
	wal, scan, err := OpenWAL(walPath)
	if err != nil {
		store.Close()
		return nil, err
	}
	recov, err := replayRecords(store, scan, opts.RecoveryJobs)
	if err != nil {
		store.Close()
		wal.Close()
		return nil, fmt.Errorf("live: recovery failed: %w", err)
	}
	// Relocation replay: fold every logged migration into the table, in
	// log order, and make the result durable BEFORE the log is truncated.
	// Records below a checkpoint watermark are already in the relocs.db
	// base (the checkpoint snapshots the table at its watermark), so
	// re-applying them is idempotent over that base.
	for _, rec := range scan.recs {
		if len(rec.Relocs) == 0 {
			continue
		}
		if relocs == nil {
			store.Close()
			wal.Close()
			return nil, fmt.Errorf("live: WAL holds relocation records but %s is missing", relocFile)
		}
		relocs.applyAll(rec.Relocs)
	}
	if relocs != nil && relocs.size() > 0 {
		if err := relocs.save(dir); err != nil {
			store.Close()
			wal.Close()
			return nil, err
		}
	}
	if err := wal.Truncate(); err != nil {
		store.Close()
		wal.Close()
		return nil, err
	}
	wal.SyncOnCommit = opts.SyncWAL
	wal.GroupCommitWindow = opts.GroupCommitWindow

	layout := core.NewLayout(opts.NumPages, opts.ObjsPerPage)
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opts:       opts,
		layout:     layout,
		registry:   reg,
		metrics:    newServerMetrics(reg),
		tracer:     obs.NewTracer(opts.TraceBuf),
		heat:       obs.NewHeat(obs.HeatOptions{TopK: opts.HeatTopK}),
		spans:      obs.NewSpans(reg),
		flight:     obs.NewFlightRecorder(opts.BlackboxDir, opts.BlackboxMax),
		store:      store,
		wal:        wal,
		dir:        dir,
		relocs:     relocs,
		userPages:  userPages,
		recovery:   recov,
		blockStart: make(map[core.TxnID]time.Time),
	}
	if relocs != nil {
		s.fences = newFenceSet()
	}
	s.heat.SetEnabled(opts.Heat)
	s.heat.RegisterMetrics(reg)
	s.metrics.recoveryPagesReplayed.Add(int64(recov.PagesReplayed))
	s.metrics.recoveryPagesSkipped.Add(int64(recov.PagesSkipped))
	s.metrics.recoveryDurationNs.Add(recov.DurationNs)
	empty := make(map[core.ClientID]*session)
	s.sessions.Store(&empty)

	nsh := opts.Shards
	s.shards = make([]*engineShard, nsh)
	s.shardMask = uint32(nsh - 1)
	for i := 0; i < nsh; i++ {
		sh := &engineShard{idx: i, eng: core.NewServerEngine(opts.Proto, layout)}
		if nsh > 1 {
			// Stripe round ids (shard i issues i+1, i+1+n, ...): clients
			// key callback acks and deadlines by round id with no notion
			// of shards, so ids must be globally unique.
			sh.eng.ConfigureRoundIDs(int64(i+1), int64(nsh))
		}
		sh.eng.Trace = func(kind obs.EventKind, txn core.TxnID, client core.ClientID, obj core.ObjID, extra int64) {
			s.onEngineTrace(sh, kind, txn, client, obj, extra)
		}
		// FuncCounters registered by every shard under the same names sum
		// at collection time.
		sh.eng.RegisterMetrics(reg)
		label := strconv.Itoa(i)
		sh.lockWaitNs = reg.Histogram(obs.Labeled("oodb_live_shard_lock_wait_ns", "shard", label),
			"time spent waiting for one engine shard's lock, ns, by shard")
		sh.lockHoldNs = reg.Histogram(obs.Labeled("oodb_live_shard_lock_hold_ns", "shard", label),
			"time one engine shard's lock was held per acquisition, ns, by shard")
		s.shards[i] = sh
	}
	s.registerServerGauges(reg)
	wal.metrics = s.metrics
	if opts.CallbackTimeout > 0 {
		s.watchStop = make(chan struct{})
		s.watchDone = make(chan struct{})
		go s.watchdog()
	}
	s.heatStop = make(chan struct{})
	s.heatDone = make(chan struct{})
	go s.heatLoop()
	if nsh > 1 {
		s.dlPoke = make(chan struct{}, 1)
		s.dlStop = make(chan struct{})
		s.dlDone = make(chan struct{})
		go s.deadlockLoop()
	}
	if opts.Recluster && s.relocs != nil && s.relocs.spare > 0 {
		if err := s.startRecluster(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// watchdog periodically sweeps sessions for overdue callback answers and
// disconnects the offenders through the normal departure path (their
// callbacks are self-answered, copies dropped, transactions aborted).
func (s *Server) watchdog() {
	defer close(s.watchDone)
	interval := s.opts.CallbackTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-tick.C:
		}
		if s.closedFlag.Load() {
			return
		}
		now := time.Now()
		var dead []core.ClientID
		for id, sess := range s.sessionMap() {
			if sess.overdue(now) {
				dead = append(dead, id)
			}
		}
		for _, id := range dead {
			s.metrics.leaseExpiries.Inc()
			s.tracer.Emit(obs.EvLeaseExpiry, 0, int32(id), 0, 0, 0)
			s.detach(id)
		}
	}
}

// heatLoop rotates the heat collector's epoch on a fixed period so
// sketches decay and false-sharing scores fold while the collector is on.
// Rotation on a disabled (empty) collector is a few empty-map walks.
func (s *Server) heatLoop() {
	defer close(s.heatDone)
	tick := time.NewTicker(s.opts.HeatEpoch)
	defer tick.Stop()
	for {
		select {
		case <-s.heatStop:
			return
		case <-tick.C:
		}
		if s.closedFlag.Load() {
			return
		}
		s.heat.Rotate()
	}
}

// stopHeatLocked signals the heat rotation loop; the caller holds s.mu.
func (s *Server) stopHeatLocked() {
	if s.heatStop != nil {
		select {
		case <-s.heatStop:
		default:
			close(s.heatStop)
		}
	}
}

// stopWatchdogLocked signals the watchdog; the caller holds s.mu.
func (s *Server) stopWatchdogLocked() {
	if s.watchStop != nil {
		select {
		case <-s.watchStop:
		default:
			close(s.watchStop)
		}
	}
}

// stopDetectorLocked signals the cross-shard deadlock detector; the
// caller holds s.mu.
func (s *Server) stopDetectorLocked() {
	if s.dlStop != nil {
		select {
		case <-s.dlStop:
		default:
			close(s.dlStop)
		}
	}
}

// Proto returns the server's protocol.
func (s *Server) Proto() core.Protocol { return s.opts.Proto }

// Geometry returns the client-visible (numPages, objsPerPage, objSize).
// With reclustering the store carries a spare region past numPages that
// only migrations address; clients reach it solely through redirects.
func (s *Server) Geometry() (int, int, int) {
	return s.userPages, s.store.ObjsPerPage(), s.store.ObjSize()
}

// Sessions returns the number of attached client sessions.
func (s *Server) Sessions() int {
	return len(s.sessionMap())
}

// Stats returns a snapshot of the protocol engine statistics, summed
// across shards.
func (s *Server) Stats() core.ServerStats {
	var sum core.ServerStats
	for _, sh := range s.shards {
		sum.Add(sh.eng.Stats.Snapshot())
	}
	return sum
}

// Metrics returns the server's metrics registry. Collection takes the
// shard locks one at a time (never all at once), so a scrape can stall
// one shard briefly but cannot serialize the engine.
func (s *Server) Metrics() *obs.Registry { return s.registry }

// Tracer returns the server's event tracer (disabled until SetEnabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// TraceBufSize returns the trace ring's configured capacity.
func (s *Server) TraceBufSize() int {
	if s.opts.TraceBuf > 0 {
		return s.opts.TraceBuf
	}
	return obs.DefaultTraceBuf
}

// Heat returns the server's access-heat collector (disabled until
// SetEnabled or ServerOptions.Heat/OODB_HEAT).
func (s *Server) Heat() *obs.Heat { return s.heat }

// Spans returns the commit-stage span recorder.
func (s *Server) Spans() *obs.Spans { return s.spans }

// FlightDump writes a blackbox dump (trace ring + heat snapshot + spans +
// metrics) with the given reason and returns its path. A no-op returning
// "" when no BlackboxDir is configured. Use it from audit failures; the
// server triggers it itself on serve-path panics and injected fail-stops.
func (s *Server) FlightDump(reason string) (string, error) {
	return s.flight.Dump(reason, s.tracer, s.heat, s.spans, s.registry)
}

// Attach registers a new client session over conn and starts serving it.
// It returns the client id assigned to the session.
func (s *Server) Attach(conn Conn) (core.ClientID, error) {
	return s.attach(conn, false)
}

// attachInternal registers the reclustering planner's session: its hello
// advertises the PHYSICAL page count (the spare region included, since
// migrations write there directly), it bypasses the relocation front
// door, and every shard engine marks it a system client so its commits
// and aborts stay out of user-facing stats. One at a time.
func (s *Server) attachInternal(conn Conn) (core.ClientID, error) {
	return s.attach(conn, true)
}

func (s *Server) attach(conn Conn, internal bool) (core.ClientID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("live: server closed")
	}
	s.nextID++
	id := s.nextID
	sess := newSession(id, conn)
	if ac, ok := conn.(asyncConn); ok {
		// Reactor-driven session: no writer or serve goroutines. Inbound
		// frames arrive as receiver callbacks on the connection's event
		// loop (one loop owns a connection, so handle calls stay
		// serialized exactly like a serve goroutine's); outbound entries
		// are drained by pump on that same loop. Handlers are installed
		// before the session is published and before the socket is
		// registered with epoll, so no callback can beat them.
		sess.async = true
		ac.SetHandlers(
			func(m *core.Msg, err error) {
				if err != nil {
					s.detach(sess.id)
					return
				}
				m.From = sess.id
				s.handle(sess, m, time.Now())
			},
			sess.pump,
		)
	}
	old := *s.sessions.Load()
	next := make(map[core.ClientID]*session, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = sess
	s.sessions.Store(&next)
	s.wal.SetDemand(len(next))
	if !sess.async {
		go sess.writer()
	}
	s.mu.Unlock()

	pages, opp, objSize := s.Geometry()
	if internal {
		pages = s.store.NumPages()
		for _, sh := range s.shards {
			held := s.lockShard(sh)
			sh.eng.SetSystemClient(id, true)
			s.unlockShard(sh, held)
		}
		s.internalID.Store(int64(id))
	}

	// Handshake: tell the client its id, the geometry, and the protocol.
	hello := &core.Msg{Kind: core.MHello, To: id, HelloID: id,
		HelloPages: int32(pages), HelloObjsPP: int32(opp), HelloObjSize: int32(objSize),
		HelloProto: s.opts.Proto, HelloVariable: s.opts.VariableObjects}
	sess.enqueue(*hello) // first message on the session, ahead of any grant

	if !sess.async {
		s.wg.Add(1)
		go s.serve(sess)
	}
	return id, nil
}

// detach removes a session and sweeps every shard for its protocol
// state. The session leaves the map before the sweep, so its serve
// goroutine's alive checks (under shard locks) fail from then on — no
// message it already received can recreate engine state after the sweep
// passed its shard (ghost resurrection).
func (s *Server) detach(id core.ClientID) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	old := *s.sessions.Load()
	sess, ok := old[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	next := make(map[core.ClientID]*session, len(old)-1)
	for k, v := range old {
		if k != id {
			next[k] = v
		}
	}
	s.sessions.Store(&next)
	s.wal.SetDemand(len(next))
	s.mu.Unlock()

	sess.close()
	// Watchdog-initiated detaches must also unblock the serve goroutine,
	// which is parked in conn.Recv.
	sess.conn.Close()

	// Clean up the ghost's protocol state on every shard; stage any
	// grants this unblocks. The shared seen set counts a transaction
	// holding locks on several shards as ONE abort.
	seen := make(map[core.TxnID]bool)
	var staged []stagedPayload
	var overflow []core.ClientID
	for _, sh := range s.shards {
		held := s.lockShard(sh)
		st, ov := s.stage(sh.eng.DisconnectDedup(id, seen))
		s.unlockShard(sh, held)
		staged = append(staged, st...)
		overflow = append(overflow, ov...)
	}
	s.bsMu.Lock()
	for t := range seen {
		delete(s.blockStart, t)
	}
	s.bsMu.Unlock()
	s.attachPayloads(staged)
	for _, oid := range overflow {
		s.detach(oid) // bounded: each recursion removes a session
	}
}

// panicDump writes the flight-recorder blackbox for a handling-path
// panic — the process is going down, so the dump comes first. Poisoning
// closedFlag makes the registry's shard-summing gauges short-circuit, so
// the dump cannot deadlock on a lock the panicking goroutine may hold.
// Shared by the serve goroutines and the reactor's event loops.
func (s *Server) panicDump(r any) {
	s.closedFlag.Store(true)
	s.flight.Dump(fmt.Sprintf("panic: %v", r), s.tracer, s.heat, s.spans, s.registry)
}

// serve pumps one session's incoming messages through the engine.
func (s *Server) serve(sess *session) {
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			s.panicDump(r)
			panic(r)
		}
	}()
	for {
		m, err := sess.conn.Recv()
		if err != nil {
			s.detach(sess.id)
			return
		}
		m.From = sess.id
		s.handle(sess, m, time.Now())
	}
}

// lockShard acquires one shard's lock, recording how long the caller
// waited for it, and returns the acquisition time for unlockShard's
// hold observation. Together the two histograms make the critical
// section's width observable: hold should cover only the engine step and
// staging, never store I/O or fsyncs.
func (s *Server) lockShard(sh *engineShard) time.Time {
	t0 := time.Now()
	sh.mu.Lock()
	t1 := time.Now()
	w := t1.Sub(t0).Nanoseconds()
	s.metrics.engineLockWaitNs.Observe(w)
	sh.lockWaitNs.Observe(w)
	return t1
}

// unlockShard records the hold time since lockShard and releases.
func (s *Server) unlockShard(sh *engineShard, acquired time.Time) {
	h := time.Since(acquired).Nanoseconds()
	s.metrics.engineLockHoldNs.Observe(h)
	sh.lockHoldNs.Observe(h)
	sh.mu.Unlock()
}

// handle runs one message through the engine shard(s) that own it and
// dispatches the responses. Everything that does not need engine state —
// WAL body encoding, the commit fsync wait, store payload reads —
// happens outside the shard locks. recvAt is when serve read the message
// off the transport (the commit-stage queue span starts there).
func (s *Server) handle(sess *session, m *core.Msg, recvAt time.Time) {
	kind := int(m.Kind)
	if kind < len(msgKindLabels) {
		s.metrics.reqs[kind].Inc()
	}
	start := time.Now()
	var syncWait time.Duration
	defer func() {
		if kind < len(msgKindLabels) {
			// The group-commit durability wait is fsync scheduling, not
			// processing; it is recorded separately (commitSyncWaitNs) so
			// handle latency stays honest.
			s.metrics.handleNs[kind].Observe((time.Since(start) - syncWait).Nanoseconds())
		}
	}()

	nsh := len(s.shards)

	// Piggybacked cache evictions touch arbitrary pages; with several
	// shards, strip them off the message and apply each to its owning
	// shard first (the single engine applies them inside Handle).
	if nsh > 1 && (len(m.DroppedPages) > 0 || len(m.DroppedObjs) > 0) {
		s.applyDroppedSharded(m)
	}

	// Encode the commit's WAL frame before taking any lock: the record
	// body is a pure function of the request, and encoding is the
	// expensive half of an append.
	// Relocations on a commit are the planner's privilege: they arrive
	// only over the in-process internal session (the wire codec does not
	// carry them), and anything else claiming some is stripped.
	if len(m.Relocs) > 0 && int64(m.From) != s.internalID.Load() {
		m.Relocs = nil
	}

	var rec *walRecord
	var frame []byte
	var queueDur, encodeDur time.Duration
	if m.Kind == core.MCommitReq && len(m.Updates) > 0 {
		encStart := time.Now()
		queueDur = encStart.Sub(recvAt)
		rec = &walRecord{Txn: m.Txn, Client: m.From, Commit: true, Relocs: m.Relocs}
		view := s.relocs.view()
		for _, o := range sortedUpdateKeys(m.Updates) {
			img := m.Updates[o]
			if to, ok := view.lookup(o); ok {
				// A blind write to a retired address (a PS page grant taken
				// before the move allows writes with no further request):
				// install at the object's current placement, where readers
				// are redirected. The engine's finish step still sees the
				// original address — that is where the locks live.
				o = to
			}
			rec.Objs = append(rec.Objs, o)
			rec.Images = append(rec.Images, img)
		}
		frame = encodeWALFrame(rec)
		encodeDur = time.Since(encStart)
	}

	if m.Kind == core.MCommitReq || m.Kind == core.MAbortReq {
		syncWait = s.finishTxnMsg(sess, m, rec, frame, queueDur, encodeDur)
		return
	}

	var sh *engineShard
	switch m.Kind {
	case core.MReadReq, core.MWriteReq:
		sh = s.shardOf(m.Obj.Page)
		if nsh > 1 {
			// Record the routing so the transaction's commit/abort visits
			// exactly the shards holding its state: write grants pin their
			// shard for good; the last request marks where a cancelled
			// request's residue (an aborted victim's record) may live.
			if m.Kind == core.MWriteReq {
				if sess.txnShards == nil {
					sess.txnShards = make(map[core.TxnID]uint64)
				}
				sess.txnShards[m.Txn] |= 1 << uint(sh.idx)
			}
			if sess.txnLastReq == nil {
				sess.txnLastReq = make(map[core.TxnID]uint64)
			}
			sess.txnLastReq[m.Txn] = 1 << uint(sh.idx)
		}
	case core.MCallbackAck, core.MDeescReply:
		sh = s.shardOf(m.Page)
	default:
		sh = s.shards[0]
	}
	s.engineStep(sess, sh, m)
}

// engineStep runs one message through a single shard's engine under its
// lock: alive check, engine dispatch, staging, callback-deadline
// bookkeeping; then payload attachment and overflow deposes off-lock.
func (s *Server) engineStep(sess *session, sh *engineShard, m *core.Msg) {
	held := s.lockShard(sh)
	if s.sessionOf(sess.id) != sess {
		// The session was detached (watchdog, overflow, close) and its
		// shard sweep serializes on this lock: processing a straggler
		// message now would recreate engine state nothing will ever
		// clean up.
		s.unlockShard(sh, held)
		return
	}

	// Relocation front door. A user read/write of a fenced (mid-migration)
	// object bounces with an empty MRelocated (retry shortly) so a
	// migration's lock request never chases a growing FIFO queue; a
	// request for a retired address answers with a redirect to its current
	// placement. Both checks run under the object's shard lock — the same
	// lock a migration commit holds while installing its relocations and
	// lifting its fences — so a request observes either the complete
	// pre-move state or the complete post-move state. The planner's own
	// session bypasses the door (it addresses spare slots directly), and
	// disabled reclustering costs one nil check.
	if s.relocs != nil && (m.Kind == core.MReadReq || m.Kind == core.MWriteReq) &&
		int64(m.From) != s.internalID.Load() {
		if s.fences.blocked(m.Obj) {
			s.unlockShard(sh, held)
			s.metrics.reclusterFenceBounces.Inc()
			sess.enqueue(core.Msg{Kind: core.MRelocated, To: m.From, Req: m.Req, Txn: m.Txn, Obj: m.Obj})
			return
		}
		if to, ok := s.relocs.view().lookup(m.Obj); ok {
			s.unlockShard(sh, held)
			s.metrics.reclusterRedirects.Inc()
			sess.enqueue(core.Msg{Kind: core.MRelocated, To: m.From, Req: m.Req, Txn: m.Txn,
				Obj: m.Obj, Objs: []core.ObjID{to}})
			return
		}
	}

	staged, overflow := s.stage(sh.eng.Handle(m))

	// Callback-deadline bookkeeping, after the engine step: any ack
	// proves the client is alive, and a busy reply defers the real
	// answer to the transaction's end — but only while its round is
	// still live. A busy ack racing a round cancellation (victim
	// aborted, requester disconnected) must not arm a lease the client
	// can never discharge.
	if m.Kind == core.MCallbackAck && s.opts.CallbackTimeout > 0 {
		sess.clearCB(m.Req)
		if m.Busy && sh.eng.RoundLive(m.Req) {
			sess.armCB(m.Req, time.Now().Add(s.opts.CallbackTimeout))
		}
	}

	s.unlockShard(sh, held)
	s.attachPayloads(staged)
	for _, id := range overflow {
		s.detach(id)
	}
}

// finishTxnMsg handles MCommitReq/MAbortReq: compute which shards hold
// the transaction's state, make the commit durable, then run the finish
// step on each shard.
//
// Durability and ordering (the invariants the old single-lock commit
// path guaranteed, restated for shards):
//
//   - acked => durable: the owner shard only produces MCommitAck after
//     WaitDurable returns, and a fail-stop during the sync kills the
//     server before any ack escapes. A failed or torn append poisons
//     the WAL (see appendFrame), so no later append can pave over a
//     tear and get acknowledged ahead of recovery's stopping point.
//   - the append + installs happen under ALL the write set's shard
//     locks (ascending order — canonical, so two multi-shard commits
//     cannot deadlock), with the transaction's engine write locks still
//     held. Two commits racing on the same object are therefore
//     serialized: the second cannot append/install until the first's
//     engine release — which happens after the first's install — so
//     WAL order matches install order per object.
//   - messages processed during our fsync window see the new store
//     bytes but the OLD lock state — our updated objects stay
//     write-locked (so unreadable/unwritable) until each shard
//     processes its slice of the commit after the sync.
//   - a reader that does observe committed-but-unacked bytes (other
//     objects on an updated page) can never commit "ahead" of us: the
//     WAL is sequential and synced is a prefix offset, so its record
//     durable implies ours durable.
//   - installs happen under installMu (shared) so Checkpoint's
//     flush-then-truncate (exclusive) cannot interleave with an
//     append/install pair: a WAL record is only ever truncated after a
//     store flush that covers its installs.
//
// It returns the group-commit durability wait so handle can keep the
// commit's handleNs honest (processing time, not fsync scheduling).
func (s *Server) finishTxnMsg(sess *session, m *core.Msg, rec *walRecord, frame []byte, queueDur, encodeDur time.Duration) (syncWait time.Duration) {
	mask := s.txnMask(sess, m)
	if rec != nil && len(s.shards) > 1 {
		// Relocation-aware installs may land on pages the request never
		// named (a translated blind write, or a migration's destination):
		// their shards' locks must be part of the append+install's
		// canonical set too.
		for _, o := range rec.Objs {
			mask |= 1 << uint(s.shardIdx(o.Page))
		}
	}

	if frame != nil {
		s.observeStage(obs.StageQueue, m.Txn, m.From, queueDur)
		s.observeStage(obs.StageEncode, m.Txn, m.From, encodeDur)
		ticket, gen, ok := s.appendAndInstall(sess, mask, rec, frame)
		if !ok {
			return
		}
		syncStart := time.Now()
		err := s.wal.WaitDurable(ticket, gen)
		syncWait = time.Since(syncStart)
		s.metrics.commitSyncWaitNs.Observe(syncWait.Nanoseconds())
		s.observeStage(obs.StageSyncWait, m.Txn, m.From, syncWait)
		if err != nil {
			if fault.IsCrash(err) || errors.Is(err, errWALCrashed) {
				// Injected fail-stop: die before acking the undurable
				// commit; the client sees its connection drop instead.
				s.crash(err)
				return
			}
			panic(fmt.Sprintf("live: WAL sync failed: %v", err))
		}
		if s.closedFlag.Load() {
			// A concurrent crash (or shutdown) won the race: the sessions
			// are gone and no ack may escape.
			return
		}
	}

	ackStart := time.Now()
	if bits.OnesCount64(mask) == 1 {
		// Single-shard finish (the overwhelming common case, and the
		// only case with one shard): the full engine dispatch on the
		// owning shard — identical to the unsharded path.
		s.engineStep(sess, s.shards[bits.TrailingZeros64(mask)], m)
	} else {
		s.multiShardFinish(sess, m, mask)
	}
	if frame != nil {
		s.observeStage(obs.StageAck, m.Txn, m.From, time.Since(ackStart))
	}
	return
}

// txnMask computes the set of shards a commit/abort must visit, as a
// bitmask: the recorded write-grant footprint, the shard of the last
// outstanding request (aborts: a cancelled victim's record lives
// there), and the shards of every page the message itself names. Zero
// (read-only finish with nothing recorded) falls back to shard 0.
func (s *Server) txnMask(sess *session, m *core.Msg) uint64 {
	if len(s.shards) == 1 {
		return 1
	}
	var mask uint64
	if sess.txnShards != nil {
		mask = sess.txnShards[m.Txn]
		delete(sess.txnShards, m.Txn)
	}
	if sess.txnLastReq != nil {
		if m.Kind == core.MAbortReq {
			mask |= sess.txnLastReq[m.Txn]
		}
		delete(sess.txnLastReq, m.Txn)
	}
	for _, p := range m.Pages {
		mask |= 1 << uint(s.shardIdx(p))
	}
	for o := range m.Updates {
		mask |= 1 << uint(s.shardIdx(o.Page))
	}
	for _, o := range m.Objs {
		mask |= 1 << uint(s.shardIdx(o.Page))
	}
	for _, p := range m.PurgedPages {
		mask |= 1 << uint(s.shardIdx(p))
	}
	for _, o := range m.PurgedObjs {
		mask |= 1 << uint(s.shardIdx(o.Page))
	}
	if mask == 0 {
		mask = 1
	}
	return mask
}

// appendAndInstall makes one commit's WAL append and store installs
// atomic with respect to the write set's shards: all of mask's shard
// locks are taken in ascending (canonical) order, the session's
// liveness is checked, and the frame write + object installs happen
// under them plus installMu (shared). ok=false means the commit was
// dropped (session detached — nothing was logged or installed) or the
// server crashed underneath it.
func (s *Server) appendAndInstall(sess *session, mask uint64, rec *walRecord, frame []byte) (ticket, gen int64, ok bool) {
	type heldShard struct {
		sh *engineShard
		at time.Time
	}
	lockStart := time.Now()
	var held []heldShard
	for rest := mask; rest != 0; rest &= rest - 1 {
		sh := s.shards[bits.TrailingZeros64(rest)]
		held = append(held, heldShard{sh, s.lockShard(sh)})
	}
	unlockAll := func() {
		for i := len(held) - 1; i >= 0; i-- {
			s.unlockShard(held[i].sh, held[i].at)
		}
	}

	if s.sessionOf(sess.id) != sess {
		// Detached while the request was in flight. Drop before logging
		// anything: the disconnect sweep has (or will have) released the
		// transaction's locks, and a stale install racing a successor
		// writer would reorder committed bytes.
		unlockAll()
		return 0, 0, false
	}

	s.installMu.RLock()
	locked := time.Now()
	s.observeStage(obs.StageLockWait, rec.Txn, rec.Client, locked.Sub(lockStart))
	ticket, gen, err := s.wal.appendFrame(frame)
	if err != nil {
		s.installMu.RUnlock()
		unlockAll()
		if fault.IsCrash(err) || errors.Is(err, errWALCrashed) {
			s.crash(err)
			return 0, 0, false
		}
		panic(fmt.Sprintf("live: WAL append failed: %v", err))
	}
	appended := time.Now()
	s.observeStage(obs.StageAppend, rec.Txn, rec.Client, appended.Sub(locked))
	if len(rec.Relocs) > 0 {
		if err := cpReclusterMidMove.Check(); err != nil {
			s.installMu.RUnlock()
			unlockAll()
			s.crash(err)
			return 0, 0, false
		}
	}
	for i, o := range rec.Objs {
		if err := s.store.WriteObj(o, rec.Images[i]); err != nil {
			if s.closedFlag.Load() {
				// A concurrent commit's injected crash closed the store
				// under us; the server is already fail-stopped.
				s.installMu.RUnlock()
				unlockAll()
				return 0, 0, false
			}
			panic(fmt.Sprintf("live: commit install failed: %v", err))
		}
	}
	if len(rec.Relocs) > 0 {
		// Publish the relocations and lift the fences while the write
		// set's shard locks (and installMu) are still held: a front-door
		// check for any moved object serializes on its shard lock, and a
		// checkpoint's relocs.db snapshot serializes on installMu, so
		// redirects become visible atomically with the installed bytes
		// and the table never runs ahead of the log.
		s.relocs.applyAll(rec.Relocs)
		froms := make([]core.ObjID, len(rec.Relocs))
		for i, r := range rec.Relocs {
			froms[i] = r.From
		}
		s.fences.remove(froms)
		s.metrics.reclusterMoves.Add(int64(len(rec.Relocs)))
	}
	s.observeStage(obs.StageInstall, rec.Txn, rec.Client, time.Since(appended))
	s.installMu.RUnlock()
	unlockAll()
	return ticket, gen, true
}

// multiShardFinish runs a commit/abort's engine step on every shard in
// mask, ascending, one lock at a time. The highest shard is the owner:
// it counts the transaction's outcome, emits the trace event, and (for
// commits) sends the MCommitAck — last, so every other shard has
// already released the transaction's locks when the client learns the
// outcome. Per-shard message slices are subset to that shard's pages.
func (s *Server) multiShardFinish(sess *session, m *core.Msg, mask uint64) {
	isCommit := m.Kind == core.MCommitReq
	if isCommit {
		s.metrics.multiShardCommits.Inc()
	}
	owner := 63 - bits.LeadingZeros64(mask)
	var staged []stagedPayload
	var overflow []core.ClientID
	for rest := mask; rest != 0; rest &= rest - 1 {
		i := bits.TrailingZeros64(rest)
		sh := s.shards[i]
		sub := s.subsetFinishMsg(m, i, isCommit)
		held := s.lockShard(sh)
		var outs []core.Msg
		if isCommit {
			outs = sh.eng.HandleCommitShard(sub, i == owner)
		} else {
			outs = sh.eng.HandleAbortShard(sub, i == owner)
		}
		st, ov := s.stage(outs)
		s.unlockShard(sh, held)
		staged = append(staged, st...)
		overflow = append(overflow, ov...)
	}
	s.bsMu.Lock()
	delete(s.blockStart, m.Txn)
	s.bsMu.Unlock()
	s.attachPayloads(staged)
	for _, id := range overflow {
		s.detach(id)
	}
}

// subsetFinishMsg copies m with its page-keyed slices filtered to shard
// idx. Pages is passed whole for commits (a foreign page holds no locks
// on this shard and contributes nothing to merge accounting); Objs and
// the Purged lists must be subset because their lengths feed counters
// and their pages feed copy-table dereg.
func (s *Server) subsetFinishMsg(m *core.Msg, idx int, isCommit bool) *core.Msg {
	sub := *m
	if isCommit {
		if len(m.Objs) > 0 {
			sub.Objs = nil
			for _, o := range m.Objs {
				if s.shardIdx(o.Page) == idx {
					sub.Objs = append(sub.Objs, o)
				}
			}
		}
		return &sub
	}
	if len(m.PurgedPages) > 0 {
		sub.PurgedPages = nil
		for _, p := range m.PurgedPages {
			if s.shardIdx(p) == idx {
				sub.PurgedPages = append(sub.PurgedPages, p)
			}
		}
	}
	if len(m.PurgedObjs) > 0 {
		sub.PurgedObjs = nil
		for _, o := range m.PurgedObjs {
			if s.shardIdx(o.Page) == idx {
				sub.PurgedObjs = append(sub.PurgedObjs, o)
			}
		}
	}
	return &sub
}

// applyDroppedSharded strips m's piggybacked cache evictions and applies
// each to the shard owning its page.
func (s *Server) applyDroppedSharded(m *core.Msg) {
	type group struct {
		pages []core.PageID
		objs  []core.ObjID
	}
	groups := make([]group, len(s.shards))
	for _, p := range m.DroppedPages {
		i := s.shardIdx(p)
		groups[i].pages = append(groups[i].pages, p)
	}
	for _, o := range m.DroppedObjs {
		i := s.shardIdx(o.Page)
		groups[i].objs = append(groups[i].objs, o)
	}
	for i := range groups {
		g := &groups[i]
		if len(g.pages) == 0 && len(g.objs) == 0 {
			continue
		}
		sh := s.shards[i]
		held := s.lockShard(sh)
		sh.eng.ApplyDropped(m.From, g.pages, g.objs)
		s.unlockShard(sh, held)
	}
	m.DroppedPages, m.DroppedObjs = nil, nil
}

// stagedPayload is a reserved outbox slot awaiting its payload.
type stagedPayload struct {
	sess *session
	e    *outEntry
}

// stage reserves outbox slots for the engine's outputs, in engine order
// (the wire order), under the emitting shard's lock. Messages that need
// no store payload are ready immediately; data grants are staged unready
// and returned for attachPayloads to fill outside the lock. It also arms
// callback deadlines and reports sessions whose outbox overflowed (the
// caller must detach those after releasing the lock).
func (s *Server) stage(outs []core.Msg) (staged []stagedPayload, overflow []core.ClientID) {
	sessions := s.sessionMap()
	for _, om := range outs {
		sess := sessions[om.To]
		if sess == nil {
			continue // client departed; detach cleans its state up
		}
		e := &outEntry{msg: om}
		switch om.Kind {
		case core.MPageData, core.MObjData:
			if om.Kind == core.MPageData && s.relocs != nil {
				// A granted page may carry retired (moved-away-from) slots:
				// mark them unavailable so the client's cached copy routes
				// their reads back to the server, which redirects. Staged
				// under the emitting shard's lock, so the marks match the
				// relocation state the grant was decided under.
				if ret := s.relocs.view().retiredSlots(om.Page); len(ret) > 0 {
					e.msg.Unavail = append(append([]uint16(nil), e.msg.Unavail...), ret...)
				}
			}
			staged = append(staged, stagedPayload{sess, e})
		case core.MCallback:
			if s.opts.CallbackTimeout > 0 {
				sess.armCB(om.Req, time.Now().Add(s.opts.CallbackTimeout))
			}
			e.ready = true
		default:
			e.ready = true
		}
		if sess.push(e, s.opts.OutboxLimit) {
			s.metrics.outboxDeposes.Inc()
			overflow = append(overflow, om.To)
		}
	}
	return staged, overflow
}

// attachPayloads reads the store payloads for slots stage reserved and
// publishes them to the session writers. It runs WITHOUT any shard
// lock; the store's page latches (shared here, exclusive in commit
// installs) keep each copy untorn.
//
// The payload still matches the lock state at grant time: a conflicting
// writer can install new bytes for a granted object only after calling
// back every registered copy — and the copy was registered under the
// page's shard lock when this grant was staged. The recipient answers
// that callback only after its client-side receive loop has consumed
// this very message, which the FIFO outbox orders behind nothing that
// hasn't been sent — so the install strictly follows this read. Slots
// the grant marked Unavail are the one exception: their bytes may move
// underneath us, but clients never read Unavail slots from a granted
// page.
func (s *Server) attachPayloads(staged []stagedPayload) {
	for _, sp := range staged {
		var data []byte
		var err error
		if sp.e.msg.Kind == core.MPageData {
			data, err = s.store.ReadPage(sp.e.msg.Page)
		} else {
			data, err = s.store.ReadObj(sp.e.msg.Obj)
		}
		if err != nil {
			if s.closedFlag.Load() {
				return // crashed underneath us; sessions are gone anyway
			}
			panic(fmt.Sprintf("live: payload read failed: %v", err))
		}
		sp.e.msg.Data = data
		sp.sess.markReady(sp.e)
	}
}

func sortedUpdateKeys(m map[core.ObjID][]byte) []core.ObjID {
	keys := make([]core.ObjID, 0, len(m))
	for o := range m {
		keys = append(keys, o)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		return a.Page < b.Page || (a.Page == b.Page && a.Slot < b.Slot)
	})
	return keys
}

// ListenAndServe accepts TCP connections on addr until Close. The
// per-session machinery behind each accepted socket is chosen by
// ServerOptions.Transport; the handshake always runs on a short-lived
// goroutine per accept (bounded by handshakeTimeout), so a slowloris
// dialer that never sends its version byte cannot stall other accepts
// under either transport.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	attach := s.attachGoroutine
	transport := TransportGoroutine
	if s.opts.Transport == TransportReactor {
		if r, rerr := newReactor(s); rerr == nil {
			s.reactor.Store(r)
			attach = func(c net.Conn) { s.attachReactor(r, c) }
			transport = TransportReactor
		}
		// else: no epoll on this platform — fall back cleanly to the
		// goroutine transport; Conn semantics are identical.
	}
	s.mu.Lock()
	if s.closed {
		// Close already ran: it cannot have seen this listener or
		// reactor, so tear them down here.
		s.mu.Unlock()
		ln.Close()
		if r := s.reactor.Load(); r != nil {
			r.shutdown()
		}
		return nil
	}
	s.ln = ln
	s.transport = transport
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		// Version handshake off the accept loop, so one slow or
		// wrong-protocol dialer cannot stall other accepts.
		go func(c net.Conn) {
			if err := acceptHandshake(c); err != nil {
				c.Close()
				return
			}
			attach(c)
		}(c)
	}
}

// attachGoroutine runs a handshaken connection on the classic
// goroutine-per-connection transport.
func (s *Server) attachGoroutine(c net.Conn) {
	if _, err := s.Attach(NewTCPConn(c)); err != nil {
		c.Close()
	}
}

// Transport reports the transport in effect for TCP sessions: the
// configured one, or the goroutine fallback when the reactor is
// unsupported on this platform. Before ListenAndServe it reports the
// configured transport.
func (s *Server) Transport() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.transport != "" {
		return s.transport
	}
	return s.opts.Transport
}

// Addr returns the TCP listen address, if listening.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// RecoveryStats reports what the opening replay did: records and pages
// replayed vs skipped below the checkpoint watermark, worker count, and
// wall time.
func (s *Server) RecoveryStats() RecoveryStats { return s.recovery }

// Checkpoint makes the store cover a prefix of the log, then discards
// that prefix. The crash-safety invariant is the same as the old
// stop-world version — the log may only lose a record once every install
// it covers is durably in the store — but the world barely stops:
//
//  1. Take installMu exclusively just long enough to read the log tail W
//     (no I/O under the lock). Commits hold installMu shared across their
//     append+install pair, so every record below W has fully installed:
//     its pages are dirty in memory (or already on disk).
//  2. Force the WAL durable through W (ForceTo). This is the write-ahead
//     rule: commits fsync only in WaitDurable, AFTER installing, so a
//     record below W can be installed yet not yet durable — and no page
//     image may reach the store file before the records covering it are
//     on disk, or a crash would durably keep partial effects of a
//     transaction whose record died in the log's unsynced tail.
//  3. Flush one engine shard's pages at a time (FlushOwned), each page
//     under its own latch. Commits keep flowing: an install racing the
//     flush either lands before the page's copy (flushed now) or after
//     (re-dirties the page for the next checkpoint — and its record sits
//     at or above W, surviving the truncation). Records appended after W
//     can land in copied images too, so each FlushOwned re-forces the WAL
//     through its current tail between copying its pages and writing them
//     (the force hook) — the same write-ahead rule, extended to the
//     commits that flowed during the checkpoint.
//  4. Append a watermark frame ("records ending below W are in the
//     store") and wait for its durability.
//  5. Truncate the prefix below W (TruncatePrefix; rename + dir fsync).
//
// A crash before 4 leaves the log intact (forced at least as far as any
// flushed page's records) and replay is idempotent; a crash between 4
// and 5 leaves the watermark, and recovery skips the covered prefix; a
// crash inside 5 leaves either the old or the new log file, never a torn
// one (the checkpoint.* and store.flush.* crash points exercise each
// window). The variable store keeps the stop-world flush — its installs
// relocate objects across pages, so only a flush with installs excluded
// sees a stable layout — but gains the same WAL force (to W, which with
// installs excluded covers everything installed) and watermark + prefix
// truncation.
func (s *Server) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.mu.Lock()
	if s.closed {
		failed := s.failed
		s.mu.Unlock()
		if failed != nil {
			return failed
		}
		return fmt.Errorf("live: server closed")
	}
	s.mu.Unlock()
	start := time.Now()

	var watermark int64
	var relocSnap []byte
	flushed := 0
	if st, fixed := s.store.(*Store); fixed {
		s.installMu.Lock()
		watermark = s.wal.tail()
		if s.relocs != nil {
			// Snapshot the relocation table at the watermark, under
			// installMu exclusive: migrations apply their relocations under
			// installMu shared (with their append), so this snapshot covers
			// exactly the records below W — never a relocation whose record
			// (and installs) could die unsynced with the crash.
			relocSnap = s.relocs.encode()
		}
		s.installMu.Unlock()
		if err := s.wal.ForceTo(watermark); err != nil {
			if fault.IsCrash(err) {
				s.crash(err)
			}
			return err
		}
		// Per-shard write-ahead hook: re-force through the tail read after
		// the shard's pages were copied, covering commits that installed
		// while earlier shards flushed (see FlushOwned).
		force := func() error { return s.wal.ForceTo(s.wal.tail()) }
		for i := range s.shards {
			n, err := st.FlushOwned(func(p core.PageID) bool { return s.shardIdx(p) == i }, force)
			if err != nil {
				if fault.IsCrash(err) {
					s.crash(err)
				}
				return err
			}
			flushed += n
		}
	} else {
		s.installMu.Lock()
		watermark = s.wal.tail()
		if s.relocs != nil {
			relocSnap = s.relocs.encode()
		}
		// Installs are excluded for the whole stop-world flush, so forcing
		// through W covers every record that could be in a flushed page.
		err := s.wal.ForceTo(watermark)
		if err == nil {
			flushed = s.store.DirtyPages()
			err = s.store.Flush()
		}
		s.installMu.Unlock()
		if err != nil {
			if fault.IsCrash(err) {
				s.crash(err)
			}
			return err
		}
	}
	s.metrics.flushPages.Add(int64(flushed))
	if relocSnap != nil {
		// The watermark retires the log prefix holding these relocations'
		// records; the base file must cover them first (write-ahead for
		// the side file).
		if err := writeRelocFile(s.dir, relocSnap); err != nil {
			if fault.IsCrash(err) {
				s.crash(err)
			}
			return err
		}
	}
	if err := cpCheckpointMid.Check(); err != nil {
		s.crash(err)
		return err
	}
	if err := cpCheckpointPreWM.Check(); err != nil {
		s.crash(err)
		return err
	}
	ticket, gen, err := s.wal.appendCheckpoint(watermark)
	if err != nil {
		if fault.IsCrash(err) {
			s.crash(err)
		}
		return err
	}
	if err := s.wal.WaitDurable(ticket, gen); err != nil {
		if fault.IsCrash(err) {
			s.crash(err)
		}
		return err
	}
	if err := cpCheckpointPostWM.Check(); err != nil {
		s.crash(err)
		return err
	}
	if err := s.wal.TruncatePrefix(watermark); err != nil {
		if fault.IsCrash(err) {
			s.crash(err)
		}
		return err
	}
	s.metrics.checkpointNs.Observe(time.Since(start).Nanoseconds())
	s.metrics.checkpoints.Inc()
	return nil
}

// crash fail-stops the server (s.mu taken here).
func (s *Server) crash(cause error) {
	s.mu.Lock()
	s.crashLocked(cause)
	s.mu.Unlock()
}

// crashLocked fail-stops the server as an injected crash dictates: every
// session drops, nothing is flushed, and WAL bytes that were never fsynced
// are discarded (they lived in the dying machine's page cache). The data
// directory is left exactly as a real crash would, ready for recovery by a
// fresh OpenServer. Caller holds s.mu.
func (s *Server) crashLocked(cause error) {
	if s.closed {
		return
	}
	s.closed = true
	s.closedFlag.Store(true)
	s.failed = cause
	s.stopWatchdogLocked()
	s.stopDetectorLocked()
	s.stopHeatLocked()
	s.stopReclusterLocked()
	if s.ln != nil {
		s.ln.Close()
	}
	if r := s.reactor.Load(); r != nil {
		r.stop() // signal only: crashLocked may run ON a loop goroutine
	}
	for _, sess := range s.sessionMap() {
		sess.close()
		sess.conn.Close()
	}
	empty := make(map[core.ClientID]*session)
	s.sessions.Store(&empty)
	s.wal.crash()
	s.store.closeRaw()
	// Blackbox last, with closedFlag set: the shard-summing gauges
	// short-circuit to 0, so the dump reads only atomics and the trace
	// ring and cannot deadlock on engine state the crash interrupted.
	s.flight.Dump("fail-stop: "+cause.Error(), s.tracer, s.heat, s.spans, s.registry)
}

// Crash simulates fail-stop process death (for tests and the recovery
// fuzzer): connections drop and the in-memory store dies without a flush.
// Idempotent; returns the injected crash that already stopped the server,
// if any.
func (s *Server) Crash() error {
	s.mu.Lock()
	failed := s.failed
	s.crashLocked(errors.New("live: server crashed (simulated)"))
	s.mu.Unlock()
	s.wg.Wait()
	if r := s.reactor.Load(); r != nil {
		r.shutdown()
	}
	if s.watchDone != nil {
		<-s.watchDone
	}
	if s.dlDone != nil {
		<-s.dlDone
	}
	if s.heatDone != nil {
		<-s.heatDone
	}
	if s.recl != nil {
		<-s.recl.done
	}
	return failed
}

// Failed returns the injected crash that fail-stopped the server, or nil.
func (s *Server) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Close shuts the server down: sessions are closed, the store is flushed
// (making the log redundant), and files are closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// A crash may have signaled the reactor without waiting for its
		// loops (crashLocked can run on one); join them here so a crash
		// followed by Close leaks nothing.
		if r := s.reactor.Load(); r != nil {
			r.shutdown()
		}
		return nil
	}
	s.closed = true
	s.closedFlag.Store(true)
	s.stopWatchdogLocked()
	s.stopDetectorLocked()
	s.stopHeatLocked()
	s.stopReclusterLocked()
	if s.ln != nil {
		s.ln.Close()
	}
	for _, sess := range s.sessionMap() {
		sess.close()
		sess.conn.Close()
	}
	empty := make(map[core.ClientID]*session)
	s.sessions.Store(&empty)
	s.mu.Unlock()

	s.wg.Wait()
	// Join the reactor loops before tearing the store and WAL down: a
	// loop may be mid-handle (the async analogue of a serve goroutine),
	// and acked work must land before files close.
	if r := s.reactor.Load(); r != nil {
		r.shutdown()
	}
	if s.watchDone != nil {
		<-s.watchDone
	}
	if s.dlDone != nil {
		<-s.dlDone
	}
	if s.heatDone != nil {
		<-s.heatDone
	}
	if s.recl != nil {
		<-s.recl.done
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	if s.relocs != nil {
		// The clean-shutdown contract makes the log redundant; that now
		// includes its relocation records, so the side file must be
		// current before the truncate below.
		if err := s.relocs.save(s.dir); err != nil {
			firstErr = err
		}
	}
	if err := s.store.Close(); err != nil {
		if firstErr == nil {
			firstErr = err
		}
	} else if err := s.wal.Truncate(); err != nil && firstErr == nil {
		// Only truncate once the store is durably flushed.
		firstErr = err
	}
	if err := s.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
