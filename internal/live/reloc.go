package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// The relocation table is the server-authoritative record of online
// reclustering: old object address -> current physical address. The front
// door consults it on every read/write request (via a copy-on-write
// snapshot, so the hot path is one atomic load and a map probe), and
// clients learn redirects lazily through MRelocated replies.
//
// Durability: every migration commit carries its relocations in the WAL
// record (walFormatBinary2), so the table is always reconstructible from
// relocs.db (the checkpoint-time base image) plus the WAL suffix. The
// side file is written atomically (tmp + rename + dir fsync, CRC-framed)
// at store creation, at every checkpoint BEFORE the watermark retires the
// covered records, and at clean shutdown. It also records the spare-page
// count — the pages past the user-visible geometry that migrations
// allocate destinations from.

const (
	relocMagic   = 0x4352_4C4F // "ORLC"
	relocVersion = 1
	relocFile    = "relocs.db"
)

// relocView is one immutable copy-on-write snapshot of the table: the
// redirect map for the front door, plus a per-page index of retired
// (moved-away-from) slots so page grants can mark them Unavail without
// scanning the whole map.
type relocView struct {
	m       map[core.ObjID]core.ObjID
	retired map[core.PageID][]uint16
}

// relocTable maps retired object addresses to their current placement,
// with chain compression: every stored mapping is terminal (from ->
// final), so lookups never walk. Writers hold mu; the request hot path
// reads the published snapshot instead.
type relocTable struct {
	mu    sync.Mutex
	m     map[core.ObjID]core.ObjID
	spare int32 // spare (non-user-addressable) pages in the store

	snap atomic.Pointer[relocView]
}

func newRelocTable(spare int32) *relocTable {
	t := &relocTable{m: make(map[core.ObjID]core.ObjID), spare: spare}
	t.publish()
	return t
}

// publish installs a fresh copy-on-write snapshot of the table. Callers
// batch applies and publish once per commit install.
func (t *relocTable) publish() {
	v := &relocView{
		m:       make(map[core.ObjID]core.ObjID, len(t.m)),
		retired: make(map[core.PageID][]uint16),
	}
	for k, to := range t.m {
		v.m[k] = to
		v.retired[k.Page] = append(v.retired[k.Page], k.Slot)
	}
	t.snap.Store(v)
}

// view returns the current snapshot for lock-free lookups. Nil-receiver
// safe: a server without reclustering state sees an empty view.
func (t *relocTable) view() *relocView {
	if t == nil {
		return nil
	}
	return t.snap.Load()
}

// lookup resolves o through the view (nil-safe).
func (v *relocView) lookup(o core.ObjID) (core.ObjID, bool) {
	if v == nil || len(v.m) == 0 {
		return core.ObjID{}, false
	}
	to, ok := v.m[o]
	return to, ok
}

// retiredSlots returns the moved-away-from slots on page p (nil-safe).
func (v *relocView) retiredSlots(p core.PageID) []uint16 {
	if v == nil {
		return nil
	}
	return v.retired[p]
}

// apply records from -> to under mu WITHOUT publishing (the caller
// publishes after its batch, while still holding whatever makes the batch
// atomic to readers). Chains compress eagerly: if to is itself relocated
// the terminal address is stored, and every mapping ending at from is
// rewritten to to — so the invariant "stored mappings are terminal" holds
// and apply order only matters between entries that chain.
func (t *relocTable) apply(from, to core.ObjID) {
	if final, ok := t.m[to]; ok {
		to = final
	}
	if from == to {
		delete(t.m, from)
		return
	}
	t.m[from] = to
	for k, v := range t.m {
		if v == from {
			t.m[k] = to
		}
	}
}

// applyAll batches apply + publish under mu (recovery and tests; the
// commit path holds mu across apply and publish itself for install-order
// control).
func (t *relocTable) applyAll(relocs []core.RelocEntry) {
	if len(relocs) == 0 {
		return
	}
	t.mu.Lock()
	for _, r := range relocs {
		t.apply(r.From, r.To)
	}
	t.publish()
	t.mu.Unlock()
}

// len returns the number of live relocations.
func (t *relocTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// entries returns a copy of the table (admin view / persistence).
func (t *relocTable) entries() []core.RelocEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]core.RelocEntry, 0, len(t.m))
	for k, v := range t.m {
		out = append(out, core.RelocEntry{From: k, To: v})
	}
	return out
}

// maxSpareSlot returns the highest destination (page, slot) at or above
// userPages, or (0, false) if none — the restart cursor for the spare
// allocator.
func (t *relocTable) maxSpareSlot(userPages core.PageID) (core.ObjID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best core.ObjID
	found := false
	for _, v := range t.m {
		if v.Page < userPages {
			continue
		}
		if !found || v.Page > best.Page || (v.Page == best.Page && v.Slot > best.Slot) {
			best = v
			found = true
		}
	}
	return best, found
}

// encode serializes the table (CRC-framed) for writeRelocFile. Checkpoint
// calls it at watermark capture (under installMu exclusive) so the saved
// base covers exactly the records below the watermark; the file write
// itself happens later, off the lock.
func (t *relocTable) encode() []byte {
	t.mu.Lock()
	buf := make([]byte, 0, 20+12*len(t.m))
	buf = binary.LittleEndian.AppendUint32(buf, relocMagic)
	buf = binary.LittleEndian.AppendUint32(buf, relocVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.spare))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.m)))
	// Entries are sorted by source address so identical tables encode to
	// identical bytes — the shard-equivalence tests diff relocs.db
	// directly, and deterministic output costs nothing at this size.
	keys := make([]core.ObjID, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Page != keys[j].Page {
			return keys[i].Page < keys[j].Page
		}
		return keys[i].Slot < keys[j].Slot
	})
	for _, k := range keys {
		v := t.m[k]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(k.Page))
		buf = binary.LittleEndian.AppendUint16(buf, k.Slot)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Page))
		buf = binary.LittleEndian.AppendUint16(buf, v.Slot)
	}
	t.mu.Unlock()
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// save writes the table's current contents atomically to dir/relocs.db.
func (t *relocTable) save(dir string) error {
	return writeRelocFile(dir, t.encode())
}

// writeRelocFile atomically replaces dir/relocs.db with buf (tmp + rename
// + directory fsync, the WAL truncation's discipline).
func writeRelocFile(dir string, buf []byte) error {
	path := filepath.Join(dir, relocFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable, same discipline as the WAL's
	// truncation: without the directory fsync a crash can resurrect the
	// old file.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// loadRelocTable reads dir/relocs.db. A missing file yields (nil, 0, nil):
// the store predates reclustering (or was created without it), so there
// are no spare pages and no redirects. A present-but-corrupt file is an
// error — fail-stop beats silently dropping redirects, which would serve
// stale bytes at retired addresses.
func loadRelocTable(dir string) (*relocTable, error) {
	buf, err := os.ReadFile(filepath.Join(dir, relocFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(buf) < 20 {
		return nil, fmt.Errorf("live: %s: truncated (%d bytes)", relocFile, len(buf))
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("live: %s: checksum mismatch", relocFile)
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != relocMagic {
		return nil, fmt.Errorf("live: %s: bad magic %#x", relocFile, m)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != relocVersion {
		return nil, fmt.Errorf("live: %s: unsupported version %d", relocFile, v)
	}
	spare := int32(binary.LittleEndian.Uint32(body[8:]))
	count := binary.LittleEndian.Uint32(body[12:])
	if int(count)*12 != len(body)-16 {
		return nil, fmt.Errorf("live: %s: entry count %d does not match size", relocFile, count)
	}
	t := newRelocTable(spare)
	off := 16
	for i := uint32(0); i < count; i++ {
		from := core.ObjID{
			Page: core.PageID(binary.LittleEndian.Uint32(body[off:])),
			Slot: binary.LittleEndian.Uint16(body[off+4:]),
		}
		to := core.ObjID{
			Page: core.PageID(binary.LittleEndian.Uint32(body[off+6:])),
			Slot: binary.LittleEndian.Uint16(body[off+10:]),
		}
		t.m[from] = to
		off += 12
	}
	t.publish()
	return t, nil
}

// fenceSet tracks objects mid-migration. While an object is fenced, the
// front door bounces new user reads/writes of it with an empty MRelocated
// (retry shortly) so a migration's lock acquisition cannot chase an
// ever-growing FIFO queue. Entries carry their install time: the front
// door ignores (and sweeps) fences older than fenceTTL, so a planner that
// dies between fence and commit cannot black-hole an object forever —
// the migration txn itself would have timed out or aborted by then.
type fenceSet struct {
	n  atomic.Int64 // fast-path emptiness check
	mu sync.Mutex
	m  map[core.ObjID]time.Time
}

// fenceTTL bounds how long an orphaned fence can bounce requests.
const fenceTTL = 2 * time.Second

func newFenceSet() *fenceSet { return &fenceSet{m: make(map[core.ObjID]time.Time)} }

func (f *fenceSet) add(objs []core.ObjID) {
	f.mu.Lock()
	now := time.Now()
	for _, o := range objs {
		if _, ok := f.m[o]; !ok {
			f.n.Add(1)
		}
		f.m[o] = now
	}
	f.mu.Unlock()
}

func (f *fenceSet) remove(objs []core.ObjID) {
	f.mu.Lock()
	for _, o := range objs {
		if _, ok := f.m[o]; ok {
			delete(f.m, o)
			f.n.Add(-1)
		}
	}
	f.mu.Unlock()
}

// blocked reports whether o is actively fenced; stale fences are swept on
// the way.
func (f *fenceSet) blocked(o core.ObjID) bool {
	if f == nil || f.n.Load() == 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	at, ok := f.m[o]
	if !ok {
		return false
	}
	if time.Since(at) > fenceTTL {
		delete(f.m, o)
		f.n.Add(-1)
		return false
	}
	return true
}
