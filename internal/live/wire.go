package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Conn is a bidirectional, ordered message channel between one client and
// the server. Both in-process and TCP transports implement it.
type Conn interface {
	// Send transmits one message. Safe for concurrent use. Sends may be
	// buffered; the transport guarantees timely delivery without an
	// explicit flush.
	Send(m *core.Msg) error
	// Recv blocks for the next message. Single consumer.
	Recv() (*core.Msg, error)
	// Close tears the connection down; pending Recv returns an error.
	Close() error
}

// flusher is the optional fast-path a buffered transport exposes: callers
// that know a batch boundary (e.g. the server's session writer after
// draining its outbox) can force the coalesced bytes out immediately
// instead of waiting for the idle flush.
type flusher interface {
	Flush() error
}

// flushConn flushes c if its transport buffers writes.
func flushConn(c Conn) {
	if f, ok := c.(flusher); ok {
		f.Flush()
	}
}

// asyncConn is the push-mode transport contract the reactor conns
// implement. Instead of a goroutine parked in Recv, the owner installs a
// receiver callback (invoked once per inbound message, or once with a
// terminal error) and a pump callback that drains the owner's outbox into
// Send/Flush. Kick schedules the pump on the transport's event loop; it is
// non-blocking and safe to call under any lock, so the server can request
// output from inside the engine without doing wire work there.
type asyncConn interface {
	Conn
	SetHandlers(recv func(m *core.Msg, err error), pump func())
	Kick()
}

// ---- In-process transport ----

// chanConn is one endpoint of an in-process connection.
type chanConn struct {
	in   chan *core.Msg
	out  chan *core.Msg
	once *sync.Once // shared: either side's Close tears down both
	done chan struct{}
}

// Pipe creates a connected in-process transport pair (client end, server
// end). The buffer keeps senders from blocking under normal operation.
func Pipe() (Conn, Conn) {
	a2b := make(chan *core.Msg, 1024)
	b2a := make(chan *core.Msg, 1024)
	done := make(chan struct{})
	once := new(sync.Once)
	a := &chanConn{in: b2a, out: a2b, done: done, once: once}
	b := &chanConn{in: a2b, out: b2a, done: done, once: once}
	return a, b
}

func (c *chanConn) Send(m *core.Msg) error {
	// Check done first: a two-way select picks randomly when the buffer
	// has room AND the pipe is closed, which would make Send on a dead
	// connection succeed nondeterministically.
	select {
	case <-c.done:
		return fmt.Errorf("live: connection closed")
	default:
	}
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return fmt.Errorf("live: connection closed")
	}
}

func (c *chanConn) Recv() (*core.Msg, error) {
	// Drain first: a message that was successfully Sent before Close must
	// be delivered, not eaten by the racing closure — and the drain must
	// keep winning on every call until the queue is empty, so a burst of
	// queued messages (e.g. a commit ack plus callback fan-out) all land.
	select {
	case m := <-c.in:
		return m, nil
	default:
	}
	select {
	case m := <-c.in:
		return m, nil
	case <-c.done:
		// done closed while we were waiting: one more drain pass picks up
		// anything that raced in ahead of the close.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, fmt.Errorf("live: connection closed")
		}
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// ---- TCP binary transport ----

// wireVersion is the one-byte protocol version a client presents at
// connect time; the server rejects mismatches at accept, before any
// framing is attempted, so codec changes fail fast instead of
// desynchronizing mid-stream.
const wireVersion byte = 1

// handshakeTimeout bounds both sides of the version handshake: how long
// the server waits for the version byte of a freshly accepted connection,
// and how long a dialer waits for its handshake write to go through. A
// variable (not a const) so tests can shorten it.
var handshakeTimeout = 5 * time.Second

// tcpConn frames messages with the binary codec (codec.go) over a
// net.Conn. Writes coalesce in a bufio.Writer and are flushed by a
// dedicated goroutine when the sender goes idle, so back-to-back sends
// (callback fan-outs, grant bursts) share syscalls.
type tcpConn struct {
	c  net.Conn
	br *bufio.Reader

	// readBuf is the reusable frame buffer and hdrIn the reusable header
	// scratch (a local array would escape through io.ReadFull and cost an
	// allocation per message); decodeMsg copies everything it keeps, so
	// neither buffer escapes. Single consumer (Recv contract), so both are
	// unguarded.
	readBuf []byte
	hdrIn   [4]byte

	sendMu  sync.Mutex
	bw      *bufio.Writer
	hdrOut  [4]byte
	sendErr error // sticky: first write/flush failure poisons the conn

	flushWake chan struct{} // cap 1: signal "bytes are buffered"
	closeOnce sync.Once
	done      chan struct{}
}

// NewTCPConn wraps an established net.Conn (version handshake already
// done, if any).
func NewTCPConn(c net.Conn) Conn {
	t := &tcpConn{
		c:         c,
		br:        bufio.NewReaderSize(c, 64<<10),
		bw:        bufio.NewWriterSize(c, 64<<10),
		flushWake: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	go t.flushLoop()
	return t
}

// Dial connects to a live server at addr and presents the wire version.
func Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, err
	}
	// The handshake write gets the same deadline the server applies to the
	// handshake read: a black-holed server (SYN accepted, nothing drained,
	// send buffer full) must fail the dial so DialRetry's backoff runs,
	// not hang the dialer forever.
	c.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	if _, err := c.Write([]byte{wireVersion}); err != nil {
		c.Close()
		return nil, fmt.Errorf("live: handshake write: %w", err)
	}
	c.SetWriteDeadline(time.Time{})
	return NewTCPConn(c), nil
}

// acceptHandshake validates a freshly accepted connection's version byte.
func acceptHandshake(c net.Conn) error {
	c.SetReadDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetReadDeadline(time.Time{})
	var v [1]byte
	if _, err := io.ReadFull(c, v[:]); err != nil {
		return fmt.Errorf("live: handshake read: %w", err)
	}
	if v[0] != wireVersion {
		return fmt.Errorf("live: wire version %d, want %d", v[0], wireVersion)
	}
	return nil
}

func (t *tcpConn) Send(m *core.Msg) error {
	bp := encBufPool.Get().(*[]byte)
	body := appendMsg((*bp)[:0], m)
	var err error
	if len(body) > maxFrame {
		err = fmt.Errorf("live: message exceeds frame limit (%d bytes)", len(body))
	} else {
		t.sendMu.Lock()
		if err = t.sendErr; err == nil {
			binary.LittleEndian.PutUint32(t.hdrOut[:], uint32(len(body)))
			if _, err = t.bw.Write(t.hdrOut[:]); err == nil {
				_, err = t.bw.Write(body)
			}
			if err != nil {
				t.sendErr = err
			}
		}
		t.sendMu.Unlock()
	}
	*bp = body
	encBufPool.Put(bp)
	if err != nil {
		return err
	}
	// Wake the idle flusher; a pending wake already covers us.
	select {
	case t.flushWake <- struct{}{}:
	default:
	}
	return nil
}

// Flush forces buffered frames out now (batch boundary hint).
func (t *tcpConn) Flush() error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if t.sendErr != nil {
		return t.sendErr
	}
	if err := t.bw.Flush(); err != nil {
		t.sendErr = err
		return err
	}
	return nil
}

// flushLoop writes buffered frames whenever the senders go idle. While a
// flush's syscall is in flight, further Sends append to the buffer behind
// sendMu; the next wake flushes them all at once — that lag is the write
// coalescing.
func (t *tcpConn) flushLoop() {
	for {
		select {
		case <-t.flushWake:
		case <-t.done:
			return
		}
		t.sendMu.Lock()
		if t.sendErr == nil {
			if err := t.bw.Flush(); err != nil {
				t.sendErr = err
			}
		}
		t.sendMu.Unlock()
	}
}

// readBufKeep caps how much frame buffer a connection keeps pinned
// between messages. Frames above the cap (a large VStore fetch, a page
// burst) use a transient buffer the GC reclaims, so one big message does
// not bloat an otherwise idle session forever — at 100k sessions a pinned
// megabyte each is the whole machine.
const readBufKeep = 64 << 10

func (t *tcpConn) Recv() (*core.Msg, error) {
	if _, err := io.ReadFull(t.br, t.hdrIn[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(t.hdrIn[:])
	if n > maxFrame {
		return nil, fmt.Errorf("live: frame length %d exceeds limit", n)
	}
	var buf []byte
	if n > readBufKeep {
		buf = make([]byte, n) // transient: decodeMsg copies what it keeps
	} else {
		if cap(t.readBuf) < int(n) {
			t.readBuf = make([]byte, n)
		}
		buf = t.readBuf[:n]
	}
	if _, err := io.ReadFull(t.br, buf); err != nil {
		return nil, err
	}
	return decodeMsg(buf)
}

func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() { close(t.done) })
	// Push out anything still buffered (e.g. a final abort notice) before
	// tearing the socket down.
	t.sendMu.Lock()
	if t.sendErr == nil {
		t.bw.Flush()
	}
	t.sendMu.Unlock()
	return t.c.Close()
}

// RetryPolicy shapes connection retries: capped exponential backoff with
// uniform jitter. The zero value selects the defaults below.
type RetryPolicy struct {
	// MaxAttempts bounds the number of dial attempts; <= 0 means retry
	// forever (reconnects) or the default 5 (DialRetry).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 10ms); each failure
	// doubles it up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// jitterSeq decorrelates the seeds of jitter sources created in the same
// clock tick. An atomic counter, not the global rand: a reconnect storm of
// thousands of clients must not serialize on one mutex while computing the
// very jitter meant to spread them out.
var jitterSeq atomic.Int64

// newJitterRand returns a cheap private source for one retry loop's
// jitter draws. Unsynchronized by construction — each DialRetry or
// reconnect loop owns its own — so a thousand concurrent backoffs never
// contend.
func newJitterRand() *rand.Rand {
	seed := uint64(time.Now().UnixNano()) ^ (uint64(jitterSeq.Add(1)) * 0x9e3779b97f4a7c15)
	return rand.New(rand.NewSource(int64(seed)))
}

// jittered spreads a backoff step over [d/2, d) so that a herd of clients
// reconnecting after one server hiccup does not re-dial in lockstep. The
// caller supplies its own source (newJitterRand) to keep the draw
// lock-free.
func (p RetryPolicy) jittered(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rng.Int63n(half))
}

// DialRetry connects to a live server at addr, retrying transient dial
// failures under the given policy (zero value: 5 attempts, 10ms..1s
// backoff).
func DialRetry(addr string, policy RetryPolicy) (Conn, error) {
	policy = policy.withDefaults()
	attempts := policy.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	delay := policy.BaseDelay
	rng := newJitterRand()
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(policy.jittered(rng, delay))
			if delay *= 2; delay > policy.MaxDelay {
				delay = policy.MaxDelay
			}
		}
		conn, err := Dial(addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("live: dial %s: %w", addr, lastErr)
}
