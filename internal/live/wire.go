package live

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// Conn is a bidirectional, ordered message channel between one client and
// the server. Both in-process and TCP transports implement it.
type Conn interface {
	// Send transmits one message. Safe for concurrent use.
	Send(m *core.Msg) error
	// Recv blocks for the next message. Single consumer.
	Recv() (*core.Msg, error)
	// Close tears the connection down; pending Recv returns an error.
	Close() error
}

// ---- In-process transport ----

// chanConn is one endpoint of an in-process connection.
type chanConn struct {
	in   chan *core.Msg
	out  chan *core.Msg
	once *sync.Once // shared: either side's Close tears down both
	done chan struct{}
}

// Pipe creates a connected in-process transport pair (client end, server
// end). The buffer keeps senders from blocking under normal operation.
func Pipe() (Conn, Conn) {
	a2b := make(chan *core.Msg, 1024)
	b2a := make(chan *core.Msg, 1024)
	done := make(chan struct{})
	once := new(sync.Once)
	a := &chanConn{in: b2a, out: a2b, done: done, once: once}
	b := &chanConn{in: a2b, out: b2a, done: done, once: once}
	return a, b
}

func (c *chanConn) Send(m *core.Msg) error {
	select {
	case c.out <- m:
		return nil
	case <-c.done:
		return fmt.Errorf("live: connection closed")
	}
}

func (c *chanConn) Recv() (*core.Msg, error) {
	select {
	case m := <-c.in:
		return m, nil
	case <-c.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return nil, fmt.Errorf("live: connection closed")
		}
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// ---- TCP/gob transport ----

// tcpConn frames messages with encoding/gob over a net.Conn.
type tcpConn struct {
	c      net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	sendMu sync.Mutex
}

// NewTCPConn wraps an established net.Conn.
func NewTCPConn(c net.Conn) Conn {
	return &tcpConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// Dial connects to a live server at addr.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c), nil
}

// RetryPolicy shapes connection retries: capped exponential backoff with
// uniform jitter. The zero value selects the defaults below.
type RetryPolicy struct {
	// MaxAttempts bounds the number of dial attempts; <= 0 means retry
	// forever (reconnects) or the default 5 (DialRetry).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 10ms); each failure
	// doubles it up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// jittered spreads a backoff step over [d/2, d) so that a herd of clients
// reconnecting after one server hiccup does not re-dial in lockstep.
func (p RetryPolicy) jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half))
}

// DialRetry connects to a live server at addr, retrying transient dial
// failures under the given policy (zero value: 5 attempts, 10ms..1s
// backoff).
func DialRetry(addr string, policy RetryPolicy) (Conn, error) {
	policy = policy.withDefaults()
	attempts := policy.MaxAttempts
	if attempts <= 0 {
		attempts = 5
	}
	delay := policy.BaseDelay
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(policy.jittered(delay))
			if delay *= 2; delay > policy.MaxDelay {
				delay = policy.MaxDelay
			}
		}
		conn, err := Dial(addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("live: dial %s: %w", addr, lastErr)
}

func (t *tcpConn) Send(m *core.Msg) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	return t.enc.Encode(m)
}

func (t *tcpConn) Recv() (*core.Msg, error) {
	var m core.Msg
	if err := t.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }
