package live

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// contendServer drives two clients into write-write conflict on the same
// page so lock waits, blocks, and callbacks all actually happen, with the
// WAL fsyncing per commit.
func contendServer(t *testing.T, srv *Server) {
	t.Helper()
	c1 := attachClient(t, srv)
	defer c1.Close()
	c2 := attachClient(t, srv)
	defer c2.Close()

	var wg sync.WaitGroup
	for i, cl := range []*Client{c1, c2} {
		i, cl := i, cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				tx, err := cl.Begin()
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				err = tx.Write(o(1, uint16(i)), []byte{byte(n)})
				if err == nil {
					err = tx.Write(o(2, 0), []byte{byte(n)}) // shared hot object
				}
				if err == nil {
					err = tx.Commit()
				}
				if err != nil && err != ErrAborted {
					t.Errorf("txn: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerMetricsUnderContention(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32, SyncWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Tracer().SetEnabled(true)
	contendServer(t, srv)

	reg := srv.Metrics()
	for _, name := range []string{
		`oodb_server_requests_total{kind="write"}`,
		`oodb_server_requests_total{kind="commit"}`,
		"oodb_engine_commits_total",
		"oodb_engine_write_requests_total",
		"oodb_wal_records_total",
		"oodb_wal_appended_bytes_total",
	} {
		if v := reg.CounterValue(name); v == 0 {
			t.Errorf("%s = 0, want > 0", name)
		}
	}
	if s := reg.HistogramSnapshot("oodb_wal_fsync_ns"); s.Count == 0 {
		t.Error("oodb_wal_fsync_ns empty despite SyncWAL")
	}
	if s := reg.HistogramSnapshot(`oodb_server_handle_ns{kind="commit"}`); s.Count == 0 {
		t.Error("commit handle latency histogram empty")
	}
	// Two writers on one hot object must have blocked at least once; the
	// lock-wait histograms split by granularity, so accept either.
	blocks := srv.Stats().Blocks
	pw := reg.HistogramSnapshot(`oodb_server_lock_wait_ns{granularity="page"}`)
	ow := reg.HistogramSnapshot(`oodb_server_lock_wait_ns{granularity="object"}`)
	if blocks > 0 && pw.Count+ow.Count == 0 {
		t.Errorf("engine blocked %d times but no lock-wait observations", blocks)
	}

	// Tracing was on: commits and lock requests must be in the ring.
	evs := srv.Tracer().Last(0)
	if len(evs) == 0 {
		t.Fatal("tracer captured nothing")
	}
	kinds := map[obs.EventKind]bool{}
	for _, e := range evs {
		kinds[e.Kind] = true
	}
	for _, k := range []obs.EventKind{obs.EvBegin, obs.EvLockReq, obs.EvCommit} {
		if !kinds[k] {
			t.Errorf("no %v event traced", k)
		}
	}

	// Checkpoint instrumentation.
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if v := reg.CounterValue("oodb_checkpoints_total"); v != 1 {
		t.Errorf("checkpoints = %d, want 1", v)
	}
	if v := reg.CounterValue("oodb_store_flush_pages_total"); v == 0 {
		t.Error("no flushed pages counted")
	}
}

func TestClientMetrics(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()

	reg := obs.NewRegistry()
	cEnd, sEnd := Pipe()
	if _, err := srv.Attach(sEnd); err != nil {
		t.Fatal(err)
	}
	cl, err := Connect(cEnd, ClientOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(o(1, 0)); err != nil { // miss: cold cache
		t.Fatal(err)
	}
	if _, err := tx.Read(o(1, 1)); err != nil { // hit: same page
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if v := reg.CounterValue(`oodb_client_cache_misses_total{kind="page"}`); v == 0 {
		t.Error("no cache misses counted")
	}
	if v := reg.CounterValue(`oodb_client_cache_hits_total{kind="page"}`); v == 0 {
		t.Error("no cache hits counted")
	}
	if v := reg.CounterValue("oodb_client_commits_total"); v != 1 {
		t.Errorf("commits = %d, want 1", v)
	}
	if s := reg.HistogramSnapshot("oodb_client_request_rtt_ns"); s.Count == 0 {
		t.Error("rtt histogram empty")
	}
}

func TestAdminEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32, SyncWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Tracer().SetEnabled(true)
	contendServer(t, srv)

	admin, err := ServeAdmin(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	metrics := get("/metrics")
	// Valid exposition format: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(metrics, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed metrics line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE oodb_engine_commits_total counter",
		"# TYPE oodb_wal_fsync_ns histogram",
		`oodb_wal_fsync_ns_bucket{le="+Inf"}`,
		"oodb_server_sessions 0", // both test clients disconnected already
		`oodb_server_requests_total{kind="commit"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The fsync histogram must be non-empty under commit load.
	if strings.Contains(metrics, "oodb_wal_fsync_ns_count 0") {
		t.Error("/metrics shows empty fsync histogram under load")
	}

	statusz := get("/statusz")
	for _, want := range []string{"protocol:", "engine:", "commits="} {
		if !strings.Contains(statusz, want) {
			t.Errorf("/statusz missing %q:\n%s", want, statusz)
		}
	}

	tr := get("/trace?n=10")
	lines := strings.Split(strings.TrimRight(tr, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("/trace returned nothing")
	}
	if len(lines) > 10 {
		t.Errorf("/trace?n=10 returned %d lines", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"seq":`) {
			t.Errorf("bad trace line %q", l)
		}
	}

	// Runtime trace toggling.
	get("/trace/off")
	if srv.Tracer().Enabled() {
		t.Error("/trace/off did not disable tracing")
	}
	get("/trace/on")
	if !srv.Tracer().Enabled() {
		t.Error("/trace/on did not enable tracing")
	}

	// pprof endpoints respond.
	if pp := get("/debug/pprof/cmdline"); pp == "" {
		t.Error("pprof cmdline empty")
	}
	resp, err := http.Get(fmt.Sprintf("%s/debug/pprof/profile?seconds=1", base))
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(prof) == 0 {
		t.Errorf("pprof profile: status %d, %d bytes", resp.StatusCode, len(prof))
	}
}

// TestGaugesCollectWithoutDeadlock exercises concurrent collection while
// the data path is busy (the gauges take s.mu).
func TestGaugesCollectWithoutDeadlock(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		contendServer(t, srv)
	}()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case <-done:
			return
		case <-deadline:
			t.Fatal("collection deadlocked against the data path")
		default:
		}
		var sb strings.Builder
		if err := srv.Metrics().WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}
