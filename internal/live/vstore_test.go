package live

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func newVStore(t *testing.T) *VStore {
	t.Helper()
	s, err := CreateVStore(filepath.Join(t.TempDir(), "v.db"), 512, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestVStoreBasicReadWrite(t *testing.T) {
	s := newVStore(t)
	if got, err := s.ReadVObj(0, 0); err != nil || got != nil {
		t.Fatalf("unwritten object = %v, %v", got, err)
	}
	if err := s.WriteVObj(0, 0, []byte("short")); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadVObj(0, 0)
	if err != nil || !bytes.Equal(got, []byte("short")) {
		t.Fatalf("got %q, %v", got, err)
	}
	// Exact length preserved (no padding).
	if len(got) != 5 {
		t.Fatalf("length %d, want 5", len(got))
	}
}

func TestVStoreGrowShrinkInPage(t *testing.T) {
	s := newVStore(t)
	o := []byte("initial value")
	if err := s.WriteVObj(2, 3, o); err != nil {
		t.Fatal(err)
	}
	grown := bytes.Repeat([]byte("x"), 100)
	if err := s.WriteVObj(2, 3, grown); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.ReadVObj(2, 3); !bytes.Equal(got, grown) {
		t.Fatal("grown value wrong")
	}
	if s.IsForwarded(2, 3) {
		t.Fatal("in-page growth should not forward")
	}
	if err := s.WriteVObj(2, 3, []byte("t")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.ReadVObj(2, 3); !bytes.Equal(got, []byte("t")) {
		t.Fatal("shrunk value wrong")
	}
}

func TestVStoreCompactionReclaimsHoles(t *testing.T) {
	s := newVStore(t)
	// Fill all slots of page 1 with mid-size values, then grow each in
	// turn: without compaction the heap would exhaust immediately.
	max := s.MaxObjSize()
	per := (max - 32) / s.ObjsPerPage()
	for i := 0; i < s.ObjsPerPage(); i++ {
		if err := s.WriteVObj(1, i, bytes.Repeat([]byte{byte(i)}, per)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < s.ObjsPerPage(); i++ {
			v := bytes.Repeat([]byte{byte(round*16 + i)}, per)
			if err := s.WriteVObj(1, i, v); err != nil {
				t.Fatalf("round %d slot %d: %v", round, i, err)
			}
		}
	}
	for i := 0; i < s.ObjsPerPage(); i++ {
		got, _ := s.ReadVObj(1, i)
		if len(got) != per || got[0] != byte(5*16+i) {
			t.Fatalf("slot %d corrupted after compaction churn", i)
		}
	}
	if s.OverflowPages() != 0 {
		t.Fatalf("compaction churn spilled to overflow (%d pages)", s.OverflowPages())
	}
}

func TestVStoreOverflowForwarding(t *testing.T) {
	s := newVStore(t)
	// Occupy most of page 4, then grow one object beyond what fits.
	big := bytes.Repeat([]byte("A"), s.MaxObjSize()*3/4)
	if err := s.WriteVObj(4, 0, big); err != nil {
		t.Fatal(err)
	}
	huge := bytes.Repeat([]byte("B"), s.MaxObjSize()/2)
	if err := s.WriteVObj(4, 1, huge); err != nil {
		t.Fatal(err)
	}
	if !s.IsForwarded(4, 1) {
		t.Fatal("second object should be forwarded")
	}
	if got, _ := s.ReadVObj(4, 1); !bytes.Equal(got, huge) {
		t.Fatal("forwarded value wrong")
	}
	if got, _ := s.ReadVObj(4, 0); !bytes.Equal(got, big) {
		t.Fatal("resident value damaged by forwarding")
	}
	if s.OverflowPages() == 0 {
		t.Fatal("no overflow pages allocated")
	}
	// Shrinking the forwarded object brings it home again.
	if err := s.WriteVObj(4, 1, []byte("small again")); err != nil {
		t.Fatal(err)
	}
	if s.IsForwarded(4, 1) {
		t.Fatal("shrunk object should return to its home page")
	}
	if got, _ := s.ReadVObj(4, 1); !bytes.Equal(got, []byte("small again")) {
		t.Fatal("shrunk value wrong")
	}
}

func TestVStoreRejectsOversize(t *testing.T) {
	s := newVStore(t)
	if err := s.WriteVObj(0, 0, make([]byte, s.MaxObjSize()+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
	if err := s.WriteVObj(99, 0, []byte("x")); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestVStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.db")
	s, err := CreateVStore(path, 512, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("Z"), s.MaxObjSize()/2)
	s.WriteVObj(0, 0, []byte("inline"))
	s.WriteVObj(1, 0, bytes.Repeat([]byte("Y"), s.MaxObjSize()*3/4))
	s.WriteVObj(1, 1, big) // forwarded
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenVStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, _ := s2.ReadVObj(0, 0); !bytes.Equal(got, []byte("inline")) {
		t.Fatal("inline object lost")
	}
	if got, _ := s2.ReadVObj(1, 1); !bytes.Equal(got, big) {
		t.Fatal("forwarded object lost")
	}
	if !s2.IsForwarded(1, 1) {
		t.Fatal("forwarding not persisted")
	}
}

// TestVStoreRandomizedChurn runs random variable-size writes across the
// store and checks every object against a shadow map, exercising resize,
// compaction, forwarding, and un-forwarding together.
func TestVStoreRandomizedChurn(t *testing.T) {
	s := newVStore(t)
	rng := rand.New(rand.NewSource(3))
	shadow := make(map[[2]int][]byte)
	for step := 0; step < 3000; step++ {
		p, sl := rng.Intn(s.NumPages()), rng.Intn(s.ObjsPerPage())
		var size int
		switch rng.Intn(4) {
		case 0:
			size = rng.Intn(16) // tiny
		case 1:
			size = 16 + rng.Intn(64)
		case 2:
			size = 64 + rng.Intn(s.MaxObjSize()/4)
		default:
			size = rng.Intn(s.MaxObjSize() + 1) // anything up to max
		}
		val := make([]byte, size)
		for i := range val {
			val[i] = byte(rng.Intn(256))
		}
		if err := s.WriteVObj(p, sl, val); err != nil {
			t.Fatalf("step %d write(%d.%d, %dB): %v", step, p, sl, size, err)
		}
		shadow[[2]int{p, sl}] = val

		// Spot-check a random object every step.
		q, qs := rng.Intn(s.NumPages()), rng.Intn(s.ObjsPerPage())
		want := shadow[[2]int{q, qs}]
		got, err := s.ReadVObj(q, qs)
		if err != nil {
			t.Fatalf("step %d read: %v", step, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("step %d: object %d.%d mismatch (len %d vs %d)", step, q, qs, len(got), len(want))
		}
	}
	// Full audit + persistence round trip.
	for k, want := range shadow {
		got, err := s.ReadVObj(k[0], k[1])
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("final audit: object %v mismatch (%v)", k, err)
		}
	}
	t.Logf("churn done: %d overflow pages", s.OverflowPages())
}

// TestVStoreForwardedGrowsAgain grows an already-forwarded object so its
// overflow placement no longer fits: the slow path must free the old
// placement, allocate a new one, and leave the home page's neighbors
// untouched.
func TestVStoreForwardedGrowsAgain(t *testing.T) {
	s := newVStore(t)
	big := bytes.Repeat([]byte("A"), s.MaxObjSize()*3/4)
	if err := s.WriteVObj(4, 0, big); err != nil {
		t.Fatal(err)
	}
	sizes := []int{s.MaxObjSize() / 2, s.MaxObjSize() * 7 / 10, s.MaxObjSize()}
	for i, n := range sizes {
		v := bytes.Repeat([]byte{byte('B' + i)}, n)
		if err := s.WriteVObj(4, 1, v); err != nil {
			t.Fatalf("grow step %d (%dB): %v", i, n, err)
		}
		if !s.IsForwarded(4, 1) {
			t.Fatalf("grow step %d: object should stay forwarded", i)
		}
		if got, _ := s.ReadVObj(4, 1); !bytes.Equal(got, v) {
			t.Fatalf("grow step %d: value wrong", i)
		}
		if got, _ := s.ReadVObj(4, 0); !bytes.Equal(got, big) {
			t.Fatalf("grow step %d: neighbor damaged", i)
		}
	}
	// Shrink home again: the final overflow placement must be freed too
	// (churn below would otherwise leak pages without bound).
	before := s.OverflowPages()
	for i := 0; i < 50; i++ {
		if err := s.WriteVObj(4, 1, []byte("home")); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteVObj(4, 1, bytes.Repeat([]byte("C"), s.MaxObjSize())); err != nil {
			t.Fatal(err)
		}
	}
	if s.OverflowPages() > before+1 {
		t.Fatalf("forward/unforward churn leaked overflow pages: %d -> %d", before, s.OverflowPages())
	}
}

// TestVStoreConcurrentReadersDuringForwarding runs readers against a
// writer that pushes one object back and forth across the forwarding
// threshold (forcing overflow allocs, frees, and home-page compaction).
// Readers must only ever observe complete values — one of the two the
// writer alternates — and the victim's neighbor must never be damaged.
// Run under -race this also proves the narrowed page latches cover the
// multi-page forwarding paths.
func TestVStoreConcurrentReadersDuringForwarding(t *testing.T) {
	s := newVStore(t)
	small := bytes.Repeat([]byte("s"), 24)
	huge := bytes.Repeat([]byte("H"), s.MaxObjSize()/2)
	neighbor := bytes.Repeat([]byte("N"), s.MaxObjSize()*3/4)
	if err := s.WriteVObj(4, 0, neighbor); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteVObj(4, 1, small); err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Sprintf(format, args...):
		default:
		}
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !done.Load() {
				got, err := s.ReadVObj(4, 1)
				if err != nil {
					report("reader: %v", err)
					return
				}
				if !bytes.Equal(got, small) && !bytes.Equal(got, huge) {
					report("reader saw torn value (len %d)", len(got))
					return
				}
				if got, _ := s.ReadVObj(4, 0); !bytes.Equal(got, neighbor) {
					report("neighbor damaged during forwarding churn")
					return
				}
				s.IsForwarded(4, 1) // exercise the probe path too
			}
		}()
	}
	for i := 0; i < 400; i++ {
		v := small
		if i%2 == 0 {
			v = huge
		}
		if err := s.WriteVObj(4, 1, v); err != nil {
			t.Fatalf("writer step %d: %v", i, err)
		}
	}
	done.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestVStoreParallelDisjointPages churns every page from its own
// goroutine — the common case the per-page latches are built for. Each
// goroutine audits only its own page, so any cross-page interference
// (compaction bleeding into a neighbor, slot directory races) shows up
// as a value mismatch or a race report.
func TestVStoreParallelDisjointPages(t *testing.T) {
	s := newVStore(t)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for p := 0; p < s.NumPages(); p++ {
		wg.Add(1)
		go func(page int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(page)))
			shadow := make(map[int][]byte)
			for step := 0; step < 400; step++ {
				sl := rng.Intn(s.ObjsPerPage())
				val := bytes.Repeat([]byte{byte(page*16 + sl)}, 1+rng.Intn(s.MaxObjSize()/2))
				if err := s.WriteVObj(page, sl, val); err != nil {
					select {
					case errs <- fmt.Sprintf("page %d step %d: %v", page, step, err):
					default:
					}
					return
				}
				shadow[sl] = val
				q := rng.Intn(s.ObjsPerPage())
				got, err := s.ReadVObj(page, q)
				if err != nil || !bytes.Equal(got, shadow[q]) {
					select {
					case errs <- fmt.Sprintf("page %d slot %d mismatch at step %d (%v)", page, q, step, err):
					default:
					}
					return
				}
			}
		}(p)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func TestVStoreChurnSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.db")
	s, err := CreateVStore(path, 512, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	shadow := make(map[[2]int][]byte)
	for step := 0; step < 500; step++ {
		p, sl := rng.Intn(8), rng.Intn(8)
		val := []byte(fmt.Sprintf("step-%d-%s", step, bytes.Repeat([]byte("x"), rng.Intn(200))))
		if err := s.WriteVObj(p, sl, val); err != nil {
			t.Fatal(err)
		}
		shadow[[2]int{p, sl}] = val
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenVStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for k, want := range shadow {
		got, err := s2.ReadVObj(k[0], k[1])
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("object %v lost across reopen", k)
		}
	}
}
