package live

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// twoShardPages returns two pages < numPages that hash to different
// shards on srv (the test precondition for every cross-shard scenario).
func twoShardPages(t *testing.T, srv *Server, numPages int) (core.PageID, core.PageID) {
	t.Helper()
	for a := 0; a < numPages; a++ {
		for b := a + 1; b < numPages; b++ {
			if srv.shardIdx(core.PageID(a)) != srv.shardIdx(core.PageID(b)) {
				return core.PageID(a), core.PageID(b)
			}
		}
	}
	t.Fatalf("no two pages in [0,%d) hash to different shards", numPages)
	return 0, 0
}

func TestShardDefaultsNormalization(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {5, 4}, {8, 8}, {9, 8}, {100, 64}, {-3, 1},
	}
	for _, c := range cases {
		o := ServerOptions{Shards: c.in}
		o.defaults()
		if o.Shards != c.want {
			t.Errorf("Shards %d normalized to %d, want %d", c.in, o.Shards, c.want)
		}
	}
	t.Setenv("OODB_SHARDS", "4")
	o := ServerOptions{}
	o.defaults()
	if o.Shards != 4 {
		t.Errorf("OODB_SHARDS=4 with Shards=0 gave %d shards, want 4", o.Shards)
	}
}

// runShardWorkload runs one deterministic single-client workload against
// a fresh server with the given shard count and returns the final
// data.db bytes and the engine stats.
func runShardWorkload(t *testing.T, shards int) ([]byte, core.ServerStats) {
	t.Helper()
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		SyncWAL: false, Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.NumShards(); got != shards {
		t.Fatalf("NumShards = %d, want %d", got, shards)
	}
	c := attachClient(t, srv)

	for i := 0; i < 40; i++ {
		tx, err := c.Begin()
		if err != nil {
			t.Fatal(err)
		}
		// Each txn touches several pages scattered across the shard
		// space, including multi-page (multi-shard) write sets.
		for j := 0; j < 3; j++ {
			obj := o(core.PageID((i*3+j*7)%32), uint16(j%4))
			if _, err := tx.Read(obj); err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(obj, []byte(fmt.Sprintf("v%d-%d", i, j))); err != nil {
				t.Fatal(err)
			}
		}
		if i%5 == 4 {
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	st := srv.Stats()
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "data.db"))
	if err != nil {
		t.Fatal(err)
	}
	return data, st
}

// TestShardsEquivalence runs the same deterministic workload unsharded
// and with 8 shards: the resulting database bytes and protocol
// statistics must be identical. This is the shards=1 regression anchor —
// sharding must change scheduling only, never outcomes.
func TestShardsEquivalence(t *testing.T) {
	data1, st1 := runShardWorkload(t, 1)
	data8, st8 := runShardWorkload(t, 8)
	if !bytes.Equal(data1, data8) {
		t.Fatalf("data.db differs between 1 and 8 shards (%d vs %d bytes)", len(data1), len(data8))
	}
	if st1 != st8 {
		t.Fatalf("engine stats differ:\n 1 shard: %+v\n 8 shards: %+v", st1, st8)
	}
	if st1.Commits == 0 || st1.Aborts == 0 {
		t.Fatalf("workload exercised nothing: %+v", st1)
	}
}

// TestMultiShardCommit spans one write set across two shards: the commit
// must take both shard locks, install durably, leave every shard
// quiesced, and count once.
func TestMultiShardCommit(t *testing.T) {
	dir := t.TempDir()
	open := func() *Server {
		srv, err := OpenServer(dir, ServerOptions{
			Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
			SyncWAL: true, Shards: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	srv := open()
	pa, pb := twoShardPages(t, srv, 32)
	c := attachClient(t, srv)

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o(pa, 0), []byte("cross-a")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o(pb, 0), []byte("cross-b")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Metrics().CounterValue("oodb_live_multi_shard_commits_total"); got != 1 {
		t.Fatalf("multi_shard_commits = %d, want 1", got)
	}
	for _, sh := range srv.shards {
		sh.mu.Lock()
		q := sh.eng.Quiesced()
		sh.mu.Unlock()
		if !q {
			t.Fatalf("shard %d not quiesced after multi-shard commit", sh.idx)
		}
	}
	c.Close()

	// Simulated fail-stop: the acked multi-shard commit must survive
	// recovery (acked => durable does not weaken across shards).
	srv.Crash()
	srv = open()
	defer srv.Close()
	c2 := attachClient(t, srv)
	defer c2.Close()
	tx2, err := c2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		obj core.ObjID
		val string
	}{{o(pa, 0), "cross-a"}, {o(pb, 0), "cross-b"}} {
		got, err := tx2.Read(want.obj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, []byte(want.val)) {
			t.Fatalf("after recovery %v = %q, want %q", want.obj, got[:8], want.val)
		}
	}
	tx2.Commit()
}

// TestMultiShardAbort aborts a write set spanning two shards: both
// shards must drop the transaction's state (locks released, no residue).
func TestMultiShardAbort(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		SyncWAL: false, Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pa, pb := twoShardPages(t, srv, 32)
	c := attachClient(t, srv)
	defer c.Close()

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o(pa, 1), []byte("doomed-a")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o(pb, 1), []byte("doomed-b")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for _, sh := range srv.shards {
			sh.mu.Lock()
			q := sh.eng.Quiesced()
			sh.mu.Unlock()
			if !q {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shards still hold transaction state after a multi-shard abort")
		}
		time.Sleep(time.Millisecond)
	}

	// The aborted values must not be visible.
	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx2.Read(o(pa, 1))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(got, []byte("doomed-a")) {
		t.Fatal("aborted write became visible")
	}
	tx2.Commit()
}

// TestCrossShardDeadlock builds the two-transaction cycle whose edges
// live on different shards — invisible to both local detectors — and
// requires the merged waits-for pass to abort exactly one victim.
func TestCrossShardDeadlock(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PS, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		SyncWAL: false, Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pa, pb := twoShardPages(t, srv, 32)
	c1 := attachClient(t, srv)
	defer c1.Close()
	c2 := attachClient(t, srv)
	defer c2.Close()

	// Under PS (pure page locking), crossed writes on two pages block
	// each writer behind the other's cached copy: t1 waits on pb's
	// shard, t2 on pa's shard.
	tx1, _ := c1.Begin()
	tx2, _ := c2.Begin()
	if _, err := tx1.Read(o(pa, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Read(o(pb, 0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := tx1.Write(o(pb, 1), []byte("a")); err != nil {
			errs[0] = err
			return
		}
		errs[0] = tx1.Commit()
	}()
	go func() {
		defer wg.Done()
		if err := tx2.Write(o(pa, 1), []byte("b")); err != nil {
			errs[1] = err
			return
		}
		errs[1] = tx2.Commit()
	}()
	wg.Wait()
	aborts := 0
	for _, err := range errs {
		if errors.Is(err, ErrAborted) {
			aborts++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if aborts != 1 {
		t.Fatalf("aborts = %d, want exactly 1 (errs: %v)", aborts, errs)
	}
	if got := srv.Metrics().CounterValue("oodb_live_cross_shard_deadlocks_total"); got != 1 {
		t.Fatalf("cross_shard_deadlocks = %d, want 1", got)
	}
}

// TestCheckDeadlocksDeterministic drives the detector directly: with the
// cycle quiesced, CheckDeadlocks must pick the same victim the engines'
// local rule would — the highest transaction id on the cycle — and a
// second pass must find nothing.
func TestCheckDeadlocksDeterministic(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PS, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		SyncWAL: false, Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pa, pb := twoShardPages(t, srv, 32)
	c1 := attachClient(t, srv)
	defer c1.Close()
	c2 := attachClient(t, srv)
	defer c2.Close()

	tx1, _ := c1.Begin()
	tx2, _ := c2.Begin()
	id1, id2 := lastTxnID(c1), lastTxnID(c2)
	if _, err := tx1.Read(o(pa, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Read(o(pb, 0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	var err1, err2 error
	go func() { defer wg.Done(); err1 = tx1.Write(o(pb, 1), []byte("a")) }()
	go func() { defer wg.Done(); err2 = tx2.Write(o(pa, 1), []byte("b")) }()
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()

	// Drive detection passes until something dies (the background loop
	// may beat an explicit pass to the kill — either way exactly one
	// transaction aborts).
	deadline := time.Now().Add(10 * time.Second)
	n := 0
	for n == 0 && time.Now().Before(deadline) {
		select {
		case <-waitDone:
		default:
		}
		if n = srv.CheckDeadlocks(); n > 0 {
			break
		}
		select {
		case <-waitDone:
			deadline = time.Time{} // writers finished; stop probing
		case <-time.After(time.Millisecond):
		}
	}
	<-waitDone
	aborts := 0
	for _, err := range []error{err1, err2} {
		if errors.Is(err, ErrAborted) {
			aborts++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if aborts != 1 {
		t.Fatalf("aborts = %d, want exactly 1", aborts)
	}
	if n > 1 {
		t.Fatalf("CheckDeadlocks aborted %d victims for one cycle", n)
	}
	// Determinism: the victim rule kills the highest transaction id on
	// the cycle, on whichever shard it is parked.
	victimIsTx1 := errors.Is(err1, ErrAborted)
	if (id1 > id2) != victimIsTx1 {
		t.Fatalf("victim rule picked wrong: ids (%d, %d), tx1 aborted=%v", id1, id2, victimIsTx1)
	}
	if srv.CheckDeadlocks() != 0 {
		t.Fatal("second detection pass found victims in an empty graph")
	}
	if victimIsTx1 {
		tx2.Commit()
	} else {
		tx1.Commit()
	}
}

// lastTxnID reads the id Begin just assigned on c.
func lastTxnID(c *Client) core.TxnID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastTxn
}

// TestScrapeDoesNotSerializeEngine holds one shard's lock (a stand-in
// for a slow scrape or a long engine step there) and proves commits on
// other shards still complete: metric collection and hot paths take
// shard locks one at a time, so nothing ever wedges the whole engine.
func TestScrapeDoesNotSerializeEngine(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		SyncWAL: false, Shards: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pa, pb := twoShardPages(t, srv, 32)
	c := attachClient(t, srv)
	defer c.Close()

	// Hold pb's shard hostage.
	blocked := srv.shardOf(pb)
	blocked.mu.Lock()
	done := make(chan error, 1)
	go func() {
		tx, err := c.Begin()
		if err != nil {
			done <- err
			return
		}
		if err := tx.Write(o(pa, 0), []byte("free")); err != nil {
			done <- err
			return
		}
		done <- tx.Commit()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("commit on free shard failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		blocked.mu.Unlock()
		t.Fatal("commit on a free shard stalled behind an unrelated shard lock")
	}
	blocked.mu.Unlock()

	// And a scrape while everything is unlocked terminates promptly.
	var buf bytes.Buffer
	srv.Metrics().WritePrometheus(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty metrics exposition")
	}
}
