package live

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// reclusterServer opens a server with online reclustering enabled but
// fully quiescent: the planner ticker and heat rotation are parked on
// hour-long periods, so tests drive rounds (and epochs) explicitly.
func reclusterServer(t *testing.T, dir string, shards int) *Server {
	t.Helper()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		Shards: shards, SyncWAL: true,
		Recluster: true, ReclusterEvery: time.Hour, ReclusterSpare: 4,
		HeatEpoch: time.Hour,
	})
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	return srv
}

// migrate runs one fabricated move group through the planner's migration
// path (fence, system txn, relocation commit), failing the test on error.
func migrate(t *testing.T, srv *Server, g obs.MoveGroup) int {
	t.Helper()
	n, err := migrateErr(srv, g)
	if err != nil {
		t.Fatalf("migrateGroup: %v", err)
	}
	return n
}

func migrateErr(srv *Server, g obs.MoveGroup) (int, error) {
	srv.recl.mu.Lock()
	defer srv.recl.mu.Unlock()
	return srv.recl.migrateGroup(g)
}

// seedPage commits distinct values into every slot of page p and returns
// them. One user commit.
func seedPage(t *testing.T, cl *Client, p core.PageID) [][]byte {
	t.Helper()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([][]byte, 4)
	for s := 0; s < 4; s++ {
		vals[s] = []byte(fmt.Sprintf("seed-%d-%d", p, s))
		if err := tx.Write(o(p, uint16(s)), vals[s]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return vals
}

func readOne(t *testing.T, cl *Client, obj core.ObjID) []byte {
	t.Helper()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx.Read(obj)
	if err != nil {
		t.Fatalf("read %v: %v", obj, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return got
}

func writeOne(t *testing.T, cl *Client, obj core.ObjID, val []byte) {
	t.Helper()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(obj, val); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestReclusterMigrateRedirectsClients is the core tentpole contract:
// after a migration, every client operation addressed at the old object
// id transparently lands on the new placement — reads return the moved
// value, writes update it — and the migration's system transactions never
// pollute the user-facing commit statistics.
func TestReclusterMigrateRedirectsClients(t *testing.T) {
	srv := reclusterServer(t, t.TempDir(), 1)
	defer srv.Close()
	c1 := attachClient(t, srv)
	defer c1.Close()

	vals := seedPage(t, c1, 3)
	userCommits := int64(1)

	moved := migrate(t, srv, obs.MoveGroup{Page: 3, Writer: 7, Slots: []uint16{0, 1}})
	if moved != 2 {
		t.Fatalf("migrated %d objects, want 2", moved)
	}
	st := srv.ReclusterStatus(true)
	if !st.Enabled || st.UserPages != 32 || st.SparePages != 4 || st.Relocated != 2 {
		t.Fatalf("unexpected recluster status %+v", st)
	}
	// The destinations must be spare pages holding the moved bytes.
	for _, e := range st.Entries {
		if int(e.To.Page) < 32 {
			t.Fatalf("relocation %v -> %v targets a user page", e.From, e.To)
		}
		got, err := srv.store.ReadObj(e.To)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, vals[e.From.Slot]) {
			t.Fatalf("spare slot %v holds %q, want %q", e.To, got[:12], vals[e.From.Slot])
		}
	}

	// A fresh client (no aliases) reads through the redirect.
	c2 := attachClient(t, srv)
	defer c2.Close()
	for s := 0; s < 4; s++ {
		got := readOne(t, c2, o(3, uint16(s)))
		if !bytes.HasPrefix(got, vals[s]) {
			t.Fatalf("slot %d reads %q after migration, want %q", s, got[:12], vals[s])
		}
	}

	// A write addressed at the old id updates the new placement, and the
	// original writer (whose cached copy the migration called back) sees it.
	writeOne(t, c2, o(3, 0), []byte("updated-3-0"))
	userCommits++
	if got := readOne(t, c1, o(3, 0)); !bytes.HasPrefix(got, []byte("updated-3-0")) {
		t.Fatalf("original client reads %q after redirected write", got[:12])
	}

	// System transactions (one per migrated group) are invisible in Stats:
	// only the user update commits count.
	if got := srv.Stats().Commits; got != userCommits {
		t.Fatalf("Stats().Commits = %d, want %d user commits (migration txns must not count)", got, userCommits)
	}
	if got := srv.metrics.reclusterMoves.Value(); got != int64(moved) {
		t.Fatalf("oodb_recluster_moves_total = %d, want %d", got, moved)
	}
}

// TestReclusterFenceBounceAndRetry pins the fence protocol: a request for
// a fenced object is bounced with an empty MRelocated, the client backs
// off and retries, and once the fence lifts the request completes against
// the current placement.
func TestReclusterFenceBounceAndRetry(t *testing.T) {
	srv := reclusterServer(t, t.TempDir(), 1)
	defer srv.Close()
	c1 := attachClient(t, srv)
	defer c1.Close()
	vals := seedPage(t, c1, 5)

	srv.fences.add([]core.ObjID{o(5, 0)})
	done := make(chan []byte, 1)
	c2 := attachClient(t, srv)
	defer c2.Close()
	go func() {
		done <- readOne(t, c2, o(5, 0))
	}()
	// Hold the fence long enough that the reader provably bounced.
	time.Sleep(30 * time.Millisecond)
	select {
	case got := <-done:
		t.Fatalf("read of fenced object completed while fenced: %q", got[:10])
	default:
	}
	srv.fences.remove([]core.ObjID{o(5, 0)})
	select {
	case got := <-done:
		if !bytes.HasPrefix(got, vals[0]) {
			t.Fatalf("post-fence read = %q, want %q", got[:10], vals[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never completed after fence lifted")
	}
	if srv.metrics.reclusterFenceBounces.Value() == 0 {
		t.Fatal("fence bounce counter never moved")
	}
}

// reclusterCopyDir clones a crashed recluster database (store, log and
// relocation side file) for independent recovery attempts.
func reclusterCopyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for _, name := range []string{"data.db", "wal.log", relocFile} {
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestReclusterRecoveryReplaysRelocations crashes the server after
// migrations (without a checkpoint, so relocs.db on disk is still the
// empty creation-time image — the relocation records live only in the
// WAL) and drives the double-crash matrix over that state: recovery must
// rebuild the table from the logged relocations even when recovery itself
// is crashed and restarted, at any worker count. It also pins the
// fail-stop: a WAL holding relocation records with the side file missing
// is a refused open, and the rebuilt table is saved BEFORE the log
// truncation retires the records.
func TestReclusterRecoveryReplaysRelocations(t *testing.T) {
	dir := t.TempDir()
	srv := reclusterServer(t, dir, 1)
	c1 := attachClient(t, srv)
	vals := seedPage(t, c1, 3)
	if n := migrate(t, srv, obs.MoveGroup{Page: 3, Writer: 1, Slots: []uint16{0, 1}}); n != 2 {
		t.Fatalf("migrated %d, want 2", n)
	}
	// A post-migration user write through the redirect must also survive.
	writeOne(t, c1, o(3, 0), []byte("post-move"))
	c1.Close()
	srv.Crash()

	// Fail-stop: relocation records in the log, side file gone.
	broken := reclusterCopyDir(t, dir)
	if err := os.Remove(filepath.Join(broken, relocFile)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenServer(broken, ServerOptions{Proto: core.PSAA, SyncWAL: true, Recluster: true}); err == nil {
		t.Fatal("OpenServer succeeded with relocation records but no relocs.db")
	}

	verify := func(t *testing.T, dir string) {
		srv2 := reclusterServer(t, dir, 1)
		defer srv2.Close()
		if got := srv2.ReclusterStatus(false).Relocated; got != 2 {
			t.Fatalf("recovered relocation table has %d entries, want 2", got)
		}
		cl := attachClient(t, srv2)
		defer cl.Close()
		if got := readOne(t, cl, o(3, 0)); !bytes.HasPrefix(got, []byte("post-move")) {
			t.Fatalf("slot 0 after recovery = %q, want post-move value", got[:10])
		}
		for s := 1; s < 4; s++ {
			if got := readOne(t, cl, o(3, uint16(s))); !bytes.HasPrefix(got, vals[s]) {
				t.Fatalf("slot %d after recovery = %q, want %q", s, got[:10], vals[s])
			}
		}
	}

	// Double-crash matrix: re-crash recovery at every point that can fire
	// while relocation records are in the log, then recover for real.
	points := []struct {
		name string
		hit  int64
	}{
		{"recover.mid-replay", 1},
		{"recover.mid-replay", 2},
		{"wal.truncate.pre", 1},
	}
	defer fault.DisarmAll()
	for _, pt := range points {
		for _, jobs := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/hit%d/jobs%d", pt.name, pt.hit, jobs), func(t *testing.T) {
				cp := reclusterCopyDir(t, dir)
				fault.Get(pt.name).Arm(pt.hit)
				_, err := OpenServer(cp, ServerOptions{
					Proto: core.PSAA, SyncWAL: true, Recluster: true, RecoveryJobs: jobs,
					ReclusterEvery: time.Hour, HeatEpoch: time.Hour,
				})
				fault.DisarmAll()
				if err == nil {
					t.Fatalf("OpenServer survived armed crash point %s", pt.name)
				}
				if !fault.IsCrash(err) {
					t.Fatalf("OpenServer failed with %v, want injected crash", err)
				}
				verify(t, cp)
			})
		}
	}

	// Real recovery on the original state: table rebuilt, redirects live.
	t.Run("clean-recovery", func(t *testing.T) { verify(t, dir) })

	// Recovery saved relocs.db before truncating the log (the records are
	// gone now), so a crash right after reopening — before any checkpoint
	// or clean shutdown could save the table — must still know the
	// redirects from the side file alone.
	srv3 := reclusterServer(t, dir, 1)
	srv3.Crash()
	t.Run("post-truncation-crash", func(t *testing.T) { verify(t, dir) })
}

// TestReclusterMidMoveCrash arms the recluster.mid-move crash point: the
// migration's WAL record is appended but the commit dies before its
// installs, its fsync and the table publish. The unsynced record is lost
// with the crash (commits only sync after installing), so recovery must
// show the migration never happened at all — objects at their original
// homes, an empty relocation table, and the spare region fully reusable
// by a post-recovery migration. No half-moved state is acceptable.
func TestReclusterMidMoveCrash(t *testing.T) {
	dir := t.TempDir()
	srv := reclusterServer(t, dir, 1)
	c1 := attachClient(t, srv)
	vals := seedPage(t, c1, 3)

	defer fault.DisarmAll()
	fault.Get("recluster.mid-move").Arm(1)
	if _, err := migrateErr(srv, obs.MoveGroup{Page: 3, Writer: 1, Slots: []uint16{0, 1}}); err == nil {
		t.Fatal("migration survived armed recluster.mid-move")
	}
	if srv.Failed() == nil {
		t.Fatal("server did not fail-stop on the injected crash")
	}
	c1.Close()
	srv.Crash()
	fault.DisarmAll()

	srv2 := reclusterServer(t, dir, 1)
	defer srv2.Close()
	if got := srv2.ReclusterStatus(false).Relocated; got != 0 {
		t.Fatalf("mid-move crash leaked %d relocation entries, want 0 (atomic abort)", got)
	}
	c2 := attachClient(t, srv2)
	defer c2.Close()
	for s := 0; s < 4; s++ {
		if got := readOne(t, c2, o(3, uint16(s))); !bytes.HasPrefix(got, vals[s]) {
			t.Fatalf("slot %d = %q after mid-move crash, want %q", s, got[:10], vals[s])
		}
	}

	// The aborted move left no trace, so the same plan must now succeed.
	if n := migrate(t, srv2, obs.MoveGroup{Page: 3, Writer: 1, Slots: []uint16{0, 1}}); n != 2 {
		t.Fatalf("post-recovery migration moved %d, want 2", n)
	}
	for s := 0; s < 4; s++ {
		if got := readOne(t, c2, o(3, uint16(s))); !bytes.HasPrefix(got, vals[s]) {
			t.Fatalf("slot %d = %q after post-recovery migration, want %q", s, got[:10], vals[s])
		}
	}
}

// runReclusterWorkload executes a fixed script — user commits and aborts,
// two fabricated migrations, post-migration redirected traffic — and
// returns the resulting database bytes, relocation file bytes and stats.
func runReclusterWorkload(t *testing.T, shards int) (data, relocs []byte, st core.ServerStats) {
	t.Helper()
	dir := t.TempDir()
	srv := reclusterServer(t, dir, shards)
	cl := attachClient(t, srv)

	for i := 0; i < 12; i++ {
		tx, err := cl.Begin()
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			obj := o(core.PageID((i*3+j*7)%32), uint16(j%4))
			if _, err := tx.Read(obj); err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(obj, []byte(fmt.Sprintf("v%d-%d", i, j))); err != nil {
				t.Fatal(err)
			}
		}
		if i%5 == 4 {
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	if n := migrate(t, srv, obs.MoveGroup{Page: 1, Writer: 3, Slots: []uint16{0, 1}}); n != 2 {
		t.Fatalf("group 1 moved %d, want 2", n)
	}
	if n := migrate(t, srv, obs.MoveGroup{Page: 2, Writer: 5, Slots: []uint16{2, 3}}); n != 2 {
		t.Fatalf("group 2 moved %d, want 2", n)
	}
	writeOne(t, cl, o(1, 0), []byte("post-a"))
	writeOne(t, cl, o(2, 3), []byte("post-b"))
	if got := readOne(t, cl, o(1, 1)); len(got) == 0 {
		t.Fatal("empty read through redirect")
	}

	st = srv.Stats()
	cl.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "data.db"))
	if err != nil {
		t.Fatal(err)
	}
	relocs, err = os.ReadFile(filepath.Join(dir, relocFile))
	if err != nil {
		t.Fatal(err)
	}
	return data, relocs, st
}

// TestReclusterShardsEquivalence is the sharding anchor extended to the
// reclustering paths: the same script (including migrations and
// redirected writes) on 1 and 8 shards must produce byte-identical store
// and relocation files and identical protocol statistics.
func TestReclusterShardsEquivalence(t *testing.T) {
	d1, r1, s1 := runReclusterWorkload(t, 1)
	d8, r8, s8 := runReclusterWorkload(t, 8)
	if !bytes.Equal(d1, d8) {
		t.Fatalf("data.db differs between 1 and 8 shards (%d vs %d bytes)", len(d1), len(d8))
	}
	if !bytes.Equal(r1, r8) {
		t.Fatalf("relocs.db differs between 1 and 8 shards (%d vs %d bytes)", len(r1), len(r8))
	}
	if s1 != s8 {
		t.Fatalf("engine stats differ:\n 1 shard: %+v\n 8 shards: %+v", s1, s8)
	}
	if s1.Commits == 0 || s1.Aborts == 0 {
		t.Fatalf("workload exercised nothing: %+v", s1)
	}
}

// TestReclusterSpareExhaustion fills the whole spare region (4 pages x 4
// slots) and verifies the planner degrades gracefully: it moves what fits
// and a further group moves nothing, without error.
func TestReclusterSpareExhaustion(t *testing.T) {
	srv := reclusterServer(t, t.TempDir(), 1)
	defer srv.Close()
	cl := attachClient(t, srv)
	defer cl.Close()
	for p := core.PageID(1); p <= 5; p++ {
		seedPage(t, cl, p)
	}
	total := 0
	for p := core.PageID(1); p <= 4; p++ {
		total += migrate(t, srv, obs.MoveGroup{Page: int32(p), Writer: 1, Slots: []uint16{0, 1, 2, 3}})
	}
	if total != 16 {
		t.Fatalf("moved %d objects before exhaustion, want 16", total)
	}
	if n := migrate(t, srv, obs.MoveGroup{Page: 5, Writer: 1, Slots: []uint16{0, 1, 2, 3}}); n != 0 {
		t.Fatalf("exhausted spare region still moved %d objects", n)
	}
	if got := srv.ReclusterStatus(false).Relocated; got != 16 {
		t.Fatalf("relocation table has %d entries, want 16", got)
	}
	// Everything must still read correctly through the redirects.
	for p := core.PageID(1); p <= 4; p++ {
		for s := uint16(0); s < 4; s++ {
			want := fmt.Sprintf("seed-%d-%d", p, s)
			if got := readOne(t, cl, o(p, s)); !bytes.HasPrefix(got, []byte(want)) {
				t.Fatalf("object %d.%d = %q, want %q", p, s, got[:12], want)
			}
		}
	}
}

// TestReclusterVariableObjectsRejected: the spare-region design assumes
// the fixed-slot store; combining it with variable-size objects must be a
// refused configuration, not a corrupted one.
func TestReclusterVariableObjectsRejected(t *testing.T) {
	_, err := OpenServer(t.TempDir(), ServerOptions{
		Proto: core.OS, PageSize: 256, ObjsPerPage: 4, NumPages: 16,
		VariableObjects: true, Recluster: true,
	})
	if err == nil {
		t.Fatal("OpenServer accepted Recluster together with VariableObjects")
	}
}

// TestReclusterEndToEndHeatPlan drives the full pipeline with nothing
// fabricated: two clients interleave writes to disjoint slot halves of
// shared pages (textbook false sharing), the heat collector scores the
// pages, one epoch rotation folds the evidence, and ReclusterNow plans
// and executes real migrations that a fresh client then reads through.
func TestReclusterEndToEndHeatPlan(t *testing.T) {
	srv := reclusterServer(t, t.TempDir(), 1)
	defer srv.Close()
	cA := attachClient(t, srv)
	defer cA.Close()
	cB := attachClient(t, srv)
	defer cB.Close()

	const sharedPages = 4
	want := make(map[core.ObjID][]byte)
	for round := 0; round < 20; round++ {
		for p := core.PageID(0); p < sharedPages; p++ {
			for _, w := range []struct {
				cl    *Client
				slots []uint16
			}{{cA, []uint16{0, 1}}, {cB, []uint16{2, 3}}} {
				tx, err := w.cl.Begin()
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range w.slots {
					val := []byte(fmt.Sprintf("r%d-p%d-s%d", round, p, s))
					if err := tx.Write(o(p, s), val); err != nil {
						t.Fatal(err)
					}
					want[o(p, s)] = val
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Close the epoch: the fully-disjoint writer masks fold into a decayed
	// score of 0.5, exactly the suspect threshold.
	srv.heat.Rotate()
	moved, err := srv.ReclusterNow()
	if err != nil {
		t.Fatalf("ReclusterNow: %v", err)
	}
	if moved == 0 {
		sn := srv.heat.Snapshot()
		t.Fatalf("planner moved nothing; suspects=%d threshold=%.2f", len(sn.Suspects()), sn.Threshold)
	}
	if srv.metrics.reclusterPagesSplit.Value() == 0 {
		t.Fatal("pages-split counter never moved")
	}

	// Every object — moved or not — still reads its last committed value.
	fresh := attachClient(t, srv)
	defer fresh.Close()
	for obj, val := range want {
		if got := readOne(t, fresh, obj); !bytes.HasPrefix(got, val) {
			t.Fatalf("object %v = %q after reclustering, want %q", obj, got[:12], val)
		}
	}
}
