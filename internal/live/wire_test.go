package live

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// TestWireVersionMismatch: a connection presenting the wrong version byte
// must be rejected at accept time — the server closes it before any frame
// exchange, so a stale client fails fast instead of desynchronizing.
func TestWireVersionMismatch(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	var addr string
	for i := 0; i < 1000; i++ {
		if addr = srv.Addr(); addr != "" {
			break
		}
		sleepMs(5)
	}
	if addr == "" {
		t.Fatal("server never listened")
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{wireVersion + 1}); err != nil {
		t.Fatal(err)
	}
	// The server must close without sending anything (no MHello frame).
	buf := make([]byte, 1)
	if n, err := raw.Read(buf); err != io.EOF {
		t.Fatalf("read after bad handshake: n=%d err=%v, want EOF", n, err)
	}

	// A correct handshake on the same server still works.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Connect(conn, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
}

// TestChanConnCloseDrain: messages sent before Close must all be
// delivered, in order, before Recv reports the closure — a burst (commit
// ack plus callback fan-out) racing a teardown must not lose its tail.
func TestChanConnCloseDrain(t *testing.T) {
	a, b := Pipe()
	const n = 10
	for i := 0; i < n; i++ {
		if err := b.Send(&core.Msg{Kind: core.MGrant, Req: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	for i := 0; i < n; i++ {
		m, err := a.Recv()
		if err != nil {
			t.Fatalf("Recv %d after close: %v", i, err)
		}
		if m.Req != int64(i) {
			t.Fatalf("Recv %d: got Req %d", i, m.Req)
		}
	}
	if _, err := a.Recv(); err == nil {
		t.Fatal("Recv past the drained queue succeeded")
	}
}

// TestTCPConnFraming round-trips representative messages through the real
// framing (header, coalesced writes, idle flush) over a socket pair.
func TestTCPConnFraming(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := NewTCPConn(c1), NewTCPConn(<-accepted)
	defer t1.Close()
	defer t2.Close()

	msgs := []*core.Msg{
		{Kind: core.MPageData, Txn: 1, Data: make([]byte, 4096), Unavail: []uint16{2}},
		{Kind: core.MGrant, Txn: 2, Obj: o(1, 1)},
		{Kind: core.MCommitReq, Txn: 3, Updates: map[core.ObjID][]byte{o(0, 0): []byte("v")}},
	}
	// Send a burst without explicit flushes: the idle flusher must push
	// them out, in order.
	for _, m := range msgs {
		if err := t1.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := t2.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Txn != want.Txn || len(got.Data) != len(want.Data) {
			t.Fatalf("Recv %d: got %+v want %+v", i, got, want)
		}
	}

	// Oversized messages are refused at Send, not silently truncated.
	if err := t1.Send(&core.Msg{Data: make([]byte, maxFrame+1)}); err == nil {
		t.Fatal("oversized Send succeeded")
	}
}

// TestDialNeverReadsServer: Dial's handshake write carries a deadline so
// a black-holed server cannot hang the dialer — and the deadline is
// CLEARED afterwards, so a long-lived connection's later writes are not
// poisoned by a stale timer.
func TestDialNeverReadsServer(t *testing.T) {
	saved := handshakeTimeout
	handshakeTimeout = 200 * time.Millisecond
	defer func() { handshakeTimeout = saved }()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c // parked: nothing reads until the test says so
	}()

	start := time.Now()
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("Dial against a never-reads server: %v", err)
	}
	defer conn.Close()
	if el := time.Since(start); el > 3*handshakeTimeout {
		t.Fatalf("Dial took %v; handshake write deadline not applied", el)
	}

	// Let the handshake deadline expire, then write. If Dial forgot to
	// clear the deadline this Send/Flush fails with a timeout even though
	// the peer is now draining.
	time.Sleep(handshakeTimeout + 50*time.Millisecond)
	srvEnd := <-accepted
	defer srvEnd.Close()
	go io.Copy(io.Discard, srvEnd)
	if err := conn.Send(&core.Msg{Kind: core.MPageData, Data: make([]byte, 8192)}); err != nil {
		t.Fatalf("Send after handshake deadline elapsed: %v", err)
	}
	if err := conn.(flusher).Flush(); err != nil {
		t.Fatalf("Flush after handshake deadline elapsed: %v (stale write deadline?)", err)
	}
}

// TestRecvReleasesLargeReadBuf: one huge frame must not pin a
// frame-sized buffer on the connection for its whole lifetime; Recv
// reads oversized frames through a transient buffer and keeps readBuf
// capped at readBufKeep.
func TestRecvReleasesLargeReadBuf(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sender, receiver := NewTCPConn(c1), NewTCPConn(<-accepted)
	defer sender.Close()
	defer receiver.Close()

	big := &core.Msg{Kind: core.MPageData, Txn: 7, Data: make([]byte, 256<<10)}
	if err := sender.Send(big); err != nil {
		t.Fatal(err)
	}
	got, err := receiver.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != len(big.Data) {
		t.Fatalf("round-tripped %d bytes, want %d", len(got.Data), len(big.Data))
	}
	tc := receiver.(*tcpConn)
	if cap(tc.readBuf) > readBufKeep {
		t.Fatalf("readBuf pinned at %d bytes after a %d-byte frame; must stay <= %d",
			cap(tc.readBuf), len(big.Data), readBufKeep)
	}

	// Small frames after the big one still work (the transient path must
	// not desynchronize the stream).
	if err := sender.Send(&core.Msg{Kind: core.MGrant, Txn: 8}); err != nil {
		t.Fatal(err)
	}
	if m, err := receiver.Recv(); err != nil || m.Txn != 8 {
		t.Fatalf("small frame after big: m=%+v err=%v", m, err)
	}
}

// TestJitteredSpread: backoff jitter must stay in [d/2, d) and two
// independently created sources must not draw in lockstep (the global
// locked source is gone; each retry loop owns a private one).
func TestJitteredSpread(t *testing.T) {
	var p RetryPolicy
	rng := newJitterRand()
	const d = 100 * time.Millisecond
	for i := 0; i < 2000; i++ {
		j := p.jittered(rng, d)
		if j < d/2 || j >= d {
			t.Fatalf("draw %d: %v outside [%v, %v)", i, j, d/2, d)
		}
	}

	a, b := newJitterRand(), newJitterRand()
	same := 0
	for i := 0; i < 16; i++ {
		if p.jittered(a, d) == p.jittered(b, d) {
			same++
		}
	}
	if same == 16 {
		t.Fatal("two jitter sources produced identical sequences; seeds not decorrelated")
	}
}
