package live

import (
	"io"
	"net"
	"testing"

	"repro/internal/core"
)

// TestWireVersionMismatch: a connection presenting the wrong version byte
// must be rejected at accept time — the server closes it before any frame
// exchange, so a stale client fails fast instead of desynchronizing.
func TestWireVersionMismatch(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	var addr string
	for i := 0; i < 1000; i++ {
		if addr = srv.Addr(); addr != "" {
			break
		}
		sleepMs(5)
	}
	if addr == "" {
		t.Fatal("server never listened")
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{wireVersion + 1}); err != nil {
		t.Fatal(err)
	}
	// The server must close without sending anything (no MHello frame).
	buf := make([]byte, 1)
	if n, err := raw.Read(buf); err != io.EOF {
		t.Fatalf("read after bad handshake: n=%d err=%v, want EOF", n, err)
	}

	// A correct handshake on the same server still works.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Connect(conn, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
}

// TestChanConnCloseDrain: messages sent before Close must all be
// delivered, in order, before Recv reports the closure — a burst (commit
// ack plus callback fan-out) racing a teardown must not lose its tail.
func TestChanConnCloseDrain(t *testing.T) {
	a, b := Pipe()
	const n = 10
	for i := 0; i < n; i++ {
		if err := b.Send(&core.Msg{Kind: core.MGrant, Req: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	for i := 0; i < n; i++ {
		m, err := a.Recv()
		if err != nil {
			t.Fatalf("Recv %d after close: %v", i, err)
		}
		if m.Req != int64(i) {
			t.Fatalf("Recv %d: got Req %d", i, m.Req)
		}
	}
	if _, err := a.Recv(); err == nil {
		t.Fatal("Recv past the drained queue succeeded")
	}
}

// TestTCPConnFraming round-trips representative messages through the real
// framing (header, coalesced writes, idle flush) over a socket pair.
func TestTCPConnFraming(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := NewTCPConn(c1), NewTCPConn(<-accepted)
	defer t1.Close()
	defer t2.Close()

	msgs := []*core.Msg{
		{Kind: core.MPageData, Txn: 1, Data: make([]byte, 4096), Unavail: []uint16{2}},
		{Kind: core.MGrant, Txn: 2, Obj: o(1, 1)},
		{Kind: core.MCommitReq, Txn: 3, Updates: map[core.ObjID][]byte{o(0, 0): []byte("v")}},
	}
	// Send a burst without explicit flushes: the idle flusher must push
	// them out, in order.
	for _, m := range msgs {
		if err := t1.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := t2.Recv()
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Txn != want.Txn || len(got.Data) != len(want.Data) {
			t.Fatalf("Recv %d: got %+v want %+v", i, got, want)
		}
	}

	// Oversized messages are refused at Send, not silently truncated.
	if err := t1.Send(&core.Msg{Data: make([]byte, maxFrame+1)}); err == nil {
		t.Fatal("oversized Send succeeded")
	}
}
