package live

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// attachFaulty attaches a client to srv through a FaultConn so tests can
// inject latency, kills, and partitions on the client<->server link.
func attachFaulty(t *testing.T, srv *Server, plan fault.ConnPlan, opts ClientOptions) (*Client, *fault.FaultConn) {
	t.Helper()
	cEnd, sEnd := Pipe()
	if _, err := srv.Attach(sEnd); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	fc := fault.WrapConn(cEnd, plan)
	cl, err := Connect(fc, opts)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return cl, fc
}

// TestRequestTimeoutSurfaced: a server that never answers must not hang a
// client with a RequestTimeout — the round trip surfaces ErrTimeout.
func TestRequestTimeoutSurfaced(t *testing.T) {
	cEnd, sEnd := Pipe()
	// Hand-rolled hello; the "server" then goes silent forever.
	if err := sEnd.Send(&core.Msg{
		Kind: core.MHello, HelloID: 1, HelloPages: 8, HelloObjsPP: 4,
		HelloObjSize: 32, HelloProto: core.PSAA,
	}); err != nil {
		t.Fatal(err)
	}
	cl, err := Connect(cEnd, ClientOptions{RequestTimeout: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = tx.Read(o(0, 0))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Read on a silent server returned %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v, want ~60ms", d)
	}
	// The transaction is poisoned: reuse reports the terminal error.
	if err := tx.Commit(); !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrDisconnected) {
		t.Fatalf("poisoned txn Commit returned %v", err)
	}
}

// holdAckConn wraps a Conn to reproduce a narrow timeout race: the first
// commit ack is held until ackGate closes (simulating a reply sitting in
// the transport buffer past the client's request timeout), and the
// subsequent transport error is held until errGate closes (keeping the
// recv loop from reconnecting until the test has probed Begin). Recv is
// only ever called from the client's single recv loop.
type holdAckConn struct {
	Conn
	ackGate <-chan struct{}
	errGate <-chan struct{}
	held    bool
}

func (h *holdAckConn) Recv() (*core.Msg, error) {
	m, err := h.Conn.Recv()
	if err != nil {
		<-h.errGate
		return m, err
	}
	if !h.held && m.Kind == core.MCommitAck {
		h.held = true
		<-h.ackGate
	}
	return m, err
}

// TestBeginAfterCommitTimeoutRace: a commit whose ack arrives just after
// the request timeout fired (so the waiter is released with the reply,
// not a disconnect) must still leave the client reusable — the next
// Begin blocks behind the reconnect instead of failing with
// "transaction already active".
func TestBeginAfterCommitTimeoutRace(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	redial := func() (Conn, error) {
		cEnd, sEnd := Pipe()
		if _, err := srv.Attach(sEnd); err != nil {
			return nil, err
		}
		return cEnd, nil
	}
	cEnd, sEnd := Pipe()
	if _, err := srv.Attach(sEnd); err != nil {
		t.Fatal(err)
	}
	ackGate := make(chan struct{})
	errGate := make(chan struct{})
	hc := &holdAckConn{Conn: cEnd, ackGate: ackGate, errGate: errGate}
	cl, err := Connect(hc, ClientOptions{
		RequestTimeout: 100 * time.Millisecond,
		Redial:         redial,
		Retry:          RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o(0, 0), []byte("racy")); err != nil {
		t.Fatal(err)
	}
	// Release the ack well after the 100ms request timeout has torn the
	// connection down; the recv loop then delivers it as a normal reply.
	go func() {
		time.Sleep(500 * time.Millisecond)
		close(ackGate)
	}()
	if err := tx.Commit(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Commit returned %v, want ErrTimeout", err)
	}

	// The recv loop is still parked on errGate, so the reconnect has not
	// started. Begin must wait for it, not report an active transaction.
	beginErr := make(chan error, 1)
	go func() {
		tx2, err := cl.Begin()
		if err == nil {
			tx2.Abort()
		}
		beginErr <- err
	}()
	select {
	case err := <-beginErr:
		t.Fatalf("Begin returned early with %v; want it to block until the session is replaced", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(errGate) // let the recv loop observe the dead conn and redial
	select {
	case err := <-beginErr:
		if err != nil {
			t.Fatalf("Begin after commit-timeout race: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Begin still blocked after reconnect")
	}
}

// TestClientReconnectAfterKill: a killed transport aborts the in-flight
// transaction locally, then the client re-dials (fresh session, cold
// cache) and the next transaction succeeds against durable state.
func TestClientReconnectAfterKill(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	redial := func() (Conn, error) {
		cEnd, sEnd := Pipe()
		if _, err := srv.Attach(sEnd); err != nil {
			return nil, err
		}
		return cEnd, nil
	}
	cl, fc := attachFaulty(t, srv, fault.ConnPlan{}, ClientOptions{
		RequestTimeout: time.Second,
		Redial:         redial,
		Retry:          RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	defer cl.Close()
	firstID := cl.ID()

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o(3, 0), []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// In-flight transaction at kill time must fail locally, not hang.
	tx2, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Write(o(4, 0), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	fc.Kill()
	// The commit must round-trip (the txn has updates), so the dead
	// transport is observed and the txn fails locally instead of hanging.
	err = tx2.Commit()
	if !errors.Is(err, ErrDisconnected) && !errors.Is(err, ErrTimeout) {
		t.Fatalf("commit across kill returned %v, want ErrDisconnected/ErrTimeout", err)
	}

	// Next Begin waits out the reconnect and runs on a fresh session.
	tx3, err := cl.Begin()
	if err != nil {
		t.Fatalf("Begin after reconnect: %v", err)
	}
	got, err := tx3.Read(o(3, 0))
	if err != nil {
		t.Fatalf("read after reconnect: %v", err)
	}
	if string(got[:7]) != "durable" {
		t.Fatalf("read %q after reconnect, want the committed value", got[:7])
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if cl.ID() == firstID {
		t.Fatal("reconnect kept the old session id; expected a fresh server-assigned id")
	}
	// The dead session is eventually swept server-side.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("server still holds %d sessions after reconnect", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCallbackDeadlineUnsticksCluster is the acceptance scenario: a client
// holding a cached copy goes silent (partitioned), and a writer's commit
// must still make progress because the server deposes the silent client
// after CallbackTimeout.
func TestCallbackDeadlineUnsticksCluster(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		CallbackTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	holder, fcA := attachFaulty(t, srv, fault.ConnPlan{}, ClientOptions{})
	// Cache page 4 at the holder, then cut it off from the world.
	tx, err := holder.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(o(4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	fcA.Partition(true)

	writer := attachClient(t, srv)
	defer writer.Close()
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		tx, err := writer.Begin()
		if err != nil {
			done <- err
			return
		}
		if err := tx.Write(o(4, 0), []byte("took over")); err != nil {
			done <- err
			return
		}
		done <- tx.Commit()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("writer commit failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer stuck behind a partitioned cache holder; callback deadline did not fire")
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Logf("writer finished in %v (no callback conflict?)", d)
	}
	// The silent holder was deposed.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("partitioned holder still attached (%d sessions)", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
	holder.Close()
}

// TestCallbackBusyLeaseExpires: a client that answers "busy" proves it is
// alive and renews its lease once — but if it then stalls without ever
// finishing the transaction, the lease runs out and the writer proceeds.
func TestCallbackBusyLeaseExpires(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		CallbackTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	holder := attachClient(t, srv)
	htx, err := holder.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Hold the object in an ACTIVE read: the writer's callback gets an
	// automatic busy reply (deferred until commit — which never comes).
	// Note a held write lock would be a plain lock-queue wait, which the
	// callback lease deliberately does not cover.
	if _, err := htx.Read(o(5, 1)); err != nil {
		t.Fatal(err)
	}

	writer := attachClient(t, srv)
	defer writer.Close()
	done := make(chan error, 1)
	go func() {
		tx, err := writer.Begin()
		if err != nil {
			done <- err
			return
		}
		if err := tx.Write(o(5, 1), []byte("patience")); err != nil {
			done <- err
			return
		}
		done <- tx.Commit()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("writer commit failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("busy-then-stalled holder blocked the writer forever")
	}
	// The stalled holder's session was torn down; its transaction is gone.
	err = htx.Commit()
	if err == nil {
		t.Fatal("stalled holder commit succeeded after being deposed")
	}
	holder.Close()
}

// TestChaosSoakLive drives concurrent clients through a fault-ridden
// transport — random latency, message kills, and rolling partitions —
// with request and callback deadlines armed, then audits coherence:
// every counter must satisfy acked <= value <= acked + unknown.
func TestChaosSoakLive(t *testing.T) {
	const (
		nClients = 4
		txnsEach = 30
		hotPages = 8
		hotSlots = 2
	)
	dir := t.TempDir()
	srv, err := OpenServer(filepath.Join(dir, "db"), ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		CallbackTimeout: 200 * time.Millisecond,
		Heat:            true, // races heat recording against real chaos traffic
		BlackboxDir:     filepath.Join(dir, "blackbox"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Chaos runs with tracing on: a coherence failure below dumps the
	// protocol history of the implicated page.
	srv.Tracer().SetEnabled(true)

	var seedCtr atomic.Int64
	plan := func() fault.ConnPlan {
		return fault.ConnPlan{
			Seed:        1000 + seedCtr.Add(1), // vary per attempt: same-seed redials would re-kill at the same message
			SendLatency: fault.Latency{Base: 20 * time.Microsecond, Jitter: 150 * time.Microsecond},
			RecvLatency: fault.Latency{Base: 20 * time.Microsecond, Jitter: 150 * time.Microsecond},
			KillProb:    0.002,
		}
	}
	// Current faulty conn per client slot, for the partition injector.
	var fcMu sync.Mutex
	fcs := make([]*fault.FaultConn, nClients)

	mkConn := func(slot int) (Conn, error) {
		cEnd, sEnd := Pipe()
		if _, err := srv.Attach(sEnd); err != nil {
			return nil, err
		}
		fc := fault.WrapConn(cEnd, plan())
		fcMu.Lock()
		fcs[slot] = fc
		fcMu.Unlock()
		return fc, nil
	}

	clients := make([]*Client, nClients)
	for i := 0; i < nClients; i++ {
		conn, err := mkConn(i)
		if err != nil {
			t.Fatal(err)
		}
		slot := i
		clients[i], err = Connect(conn, ClientOptions{
			RequestTimeout: 250 * time.Millisecond,
			Redial:         func() (Conn, error) { return mkConn(slot) },
			Retry:          RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Rolling partitions: brief (20ms) cuts, well under CallbackTimeout,
	// so most heal before the server deposes anyone — but not all.
	partStop := make(chan struct{})
	var partWG sync.WaitGroup
	partWG.Add(1)
	go func() {
		defer partWG.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-partStop:
				return
			case <-time.After(40 * time.Millisecond):
			}
			fcMu.Lock()
			fc := fcs[rng.Intn(nClients)]
			fcMu.Unlock()
			if fc == nil || fc.Killed() {
				continue
			}
			fc.Partition(true)
			time.Sleep(20 * time.Millisecond)
			fc.Partition(false)
		}
	}()

	type audit struct {
		acked   map[core.ObjID]uint64
		unknown map[core.ObjID]uint64
	}
	audits := make([]audit, nClients)
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			cl := clients[slot]
			a := audit{acked: map[core.ObjID]uint64{}, unknown: map[core.ObjID]uint64{}}
			rng := rand.New(rand.NewSource(int64(7 + slot)))
			for n := 0; n < txnsEach; n++ {
				tx, err := cl.Begin()
				if err != nil {
					t.Errorf("client %d: Begin: %v", slot, err)
					break
				}
				o1 := o(core.PageID(rng.Intn(hotPages)), uint16(rng.Intn(hotSlots)))
				o2 := o(core.PageID(rng.Intn(hotPages)), uint16(rng.Intn(hotSlots)))
				inc := func(obj core.ObjID) error {
					return tx.Update(obj, func(old []byte) []byte {
						v := binary.LittleEndian.Uint64(old[:8])
						out := make([]byte, len(old))
						copy(out, old)
						binary.LittleEndian.PutUint64(out[:8], v+1)
						return out
					})
				}
				objs := []core.ObjID{o1}
				if o2 != o1 {
					objs = append(objs, o2)
				}
				opErr := error(nil)
				for _, obj := range objs {
					if opErr = inc(obj); opErr != nil {
						break
					}
				}
				if opErr != nil {
					// The txn never reached commit: definitely not applied.
					tx.Abort()
					continue
				}
				switch err := tx.Commit(); {
				case err == nil:
					for _, obj := range objs {
						a.acked[obj]++
					}
				case errors.Is(err, ErrAborted):
					// Definitely not committed.
				case errors.Is(err, ErrTimeout), errors.Is(err, ErrDisconnected), errors.Is(err, ErrClosed):
					// Outcome unknown: the ack may have died in transit.
					for _, obj := range objs {
						a.unknown[obj]++
					}
				default:
					t.Errorf("client %d: commit: %v", slot, err)
				}
			}
			audits[slot] = a
		}(i)
	}

	soakDone := make(chan struct{})
	go func() { wg.Wait(); close(soakDone) }()
	select {
	case <-soakDone:
	case <-time.After(90 * time.Second):
		t.Fatal("chaos soak stalled: liveness violated")
	}
	close(partStop)
	partWG.Wait()
	for _, cl := range clients {
		cl.Close()
	}

	// Merge per-worker audits and verify with a clean client.
	acked := map[core.ObjID]uint64{}
	unknown := map[core.ObjID]uint64{}
	for _, a := range audits {
		for k, v := range a.acked {
			acked[k] += v
		}
		for k, v := range a.unknown {
			unknown[k] += v
		}
	}
	totalAcked := uint64(0)
	auditor := attachClient(t, srv)
	defer auditor.Close()
	tx, err := auditor.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < hotPages; p++ {
		for s := 0; s < hotSlots; s++ {
			obj := o(core.PageID(p), uint16(s))
			got, err := tx.Read(obj)
			if err != nil {
				t.Fatal(err)
			}
			v := binary.LittleEndian.Uint64(got[:8])
			lo, hi := acked[obj], acked[obj]+unknown[obj]
			if v < lo || v > hi {
				t.Errorf("object %v: counter=%d outside [acked=%d, acked+unknown=%d]\nlast protocol events for page %d:\n%s",
					obj, v, lo, hi, obj.Page,
					obs.FormatEvents(srv.Tracer().ForPage(int32(obj.Page), 50)))
			}
			totalAcked += acked[obj]
		}
	}
	tx.Commit()
	if t.Failed() {
		// Audit failure: persist the full post-mortem (trace ring, heat
		// snapshot, spans, metrics) as a blackbox for offline analysis.
		if path, err := srv.FlightDump("chaos audit failure"); err == nil && path != "" {
			t.Logf("flight recorder blackbox: %s", path)
		}
	}
	if totalAcked == 0 {
		t.Fatal("chaos soak committed nothing; faults too aggressive to be a meaningful test")
	}
	if sn := srv.Heat().Snapshot(); sn.Reads+sn.Writes == 0 {
		t.Error("heat collector idle across the whole chaos soak")
	}
	t.Logf("chaos soak: %d acked increments, %d unknown-outcome commits", totalAcked, func() (u uint64) {
		for _, v := range unknown {
			u += v
		}
		return
	}())
}
