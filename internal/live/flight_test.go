package live

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestBlackboxOnInjectedFailStop arms a WAL crash point, drives commits
// into it, and checks the fail-stop left a parseable blackbox behind: a
// header naming the cause plus trace, heat, spans, and metrics sections.
func TestBlackboxOnInjectedFailStop(t *testing.T) {
	dir := t.TempDir()
	bbDir := filepath.Join(dir, "blackbox")
	srv, err := OpenServer(filepath.Join(dir, "db"), ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 16,
		SyncWAL: true, Heat: true, BlackboxDir: bbDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Tracer().SetEnabled(true)
	cl := attachClient(t, srv)
	defer fault.DisarmAll()

	fault.Get("wal.append.pre-sync").Arm(3)
	crashed := false
	for n := 0; n < 32 && !crashed; n++ {
		tx, err := cl.Begin()
		if err == nil {
			if err = tx.Write(o(core.PageID(n%16), 0), []byte{byte(n)}); err == nil {
				err = tx.Commit()
			}
		}
		if errors.Is(err, ErrClosed) || errors.Is(err, ErrDisconnected) {
			crashed = true
		} else if err != nil && err != ErrAborted {
			t.Fatalf("commit %d: %v", n, err)
		}
		if srv.Failed() != nil {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("injected crash point never fired")
	}
	cl.Close()
	srv.Crash()
	fault.DisarmAll()

	matches, err := filepath.Glob(filepath.Join(bbDir, "blackbox-*.jsonl"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one blackbox dump, got %v (err %v)", matches, err)
	}
	f, err := os.Open(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	types := map[string]int{}
	var reason string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("unparseable blackbox line %q: %v", sc.Text(), err)
		}
		typ, _ := line["type"].(string)
		types[typ]++
		if typ == "header" {
			reason, _ = line["reason"].(string)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"header", "trace", "heat", "spans", "metrics"} {
		if types[want] == 0 {
			t.Errorf("blackbox missing %q section (got %v)", want, types)
		}
	}
	if !strings.Contains(reason, "fail-stop") || !strings.Contains(reason, "injected crash") {
		t.Errorf("header reason %q does not name the injected fail-stop", reason)
	}
}

// TestHeatLiveEndToEnd drives a contended live workload with the heat
// collector on and checks the full surface: snapshot contents, the
// /heatz and /spanz endpoints, the page= trace filter, and a manual
// flight dump (the chaos-audit hook).
func TestHeatLiveEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(filepath.Join(dir, "db"), ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		SyncWAL: true, Heat: true, BlackboxDir: filepath.Join(dir, "blackbox"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Tracer().SetEnabled(true)
	contendServer(t, srv)

	sn := srv.Heat().Snapshot()
	if !sn.Enabled || sn.Reads+sn.Writes == 0 {
		t.Fatalf("heat collector idle under load: %+v", sn)
	}
	hot := map[int32]bool{}
	for _, e := range sn.TopPages {
		hot[e.Page] = true
	}
	// contendServer hammers pages 1 and 2; both must rank.
	if !hot[1] || !hot[2] {
		t.Fatalf("top pages %v missing the contended pages 1,2", sn.TopPages)
	}
	if len(sn.Contended) == 0 {
		t.Error("no contended pages despite write-write conflicts")
	}

	// Commit-stage spans saw every commit, and stages carry exemplars.
	spans := srv.Spans().Snapshot()
	for _, s := range spans.Stages {
		if s.Count == 0 {
			t.Errorf("stage %q recorded nothing", s.Stage)
		}
	}

	admin, err := ServeAdmin(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if h := get("/heatz"); !strings.Contains(h, "top pages") {
		t.Errorf("/heatz human form:\n%s", h)
	}
	var heatJSON struct {
		TopPages []struct {
			Page int32 `json:"page"`
		} `json:"top_pages"`
	}
	if err := json.Unmarshal([]byte(get("/heatz?format=json")), &heatJSON); err != nil {
		t.Fatalf("/heatz json: %v", err)
	}
	if len(heatJSON.TopPages) == 0 {
		t.Error("/heatz json has no top pages")
	}
	var spanJSON struct {
		Stages []struct {
			Stage string `json:"stage"`
			Count int64  `json:"count"`
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(get("/spanz?format=json")), &spanJSON); err != nil {
		t.Fatalf("/spanz json: %v", err)
	}
	if len(spanJSON.Stages) != 7 {
		t.Errorf("/spanz stages = %d, want 7", len(spanJSON.Stages))
	}
	if sp := get("/spanz"); !strings.Contains(sp, "fsync-wait") {
		t.Errorf("/spanz human form:\n%s", sp)
	}

	// Runtime heat toggling round-trips.
	get("/heatz/off")
	if srv.Heat().Enabled() {
		t.Error("/heatz/off did not disable collection")
	}
	get("/heatz/on")
	if !srv.Heat().Enabled() {
		t.Error("/heatz/on did not enable collection")
	}

	// page= filter: every returned event names page 2.
	for _, line := range strings.Split(strings.TrimRight(get("/trace?page=2&n=50"), "\n"), "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Page int32 `json:"page"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev.Page != 2 {
			t.Fatalf("page filter leaked event %q", line)
		}
	}

	// /statusz reports the heat and blackbox state.
	statusz := get("/statusz")
	for _, want := range []string{"heat:", "blackbox:", "endpoints:"} {
		if !strings.Contains(statusz, want) {
			t.Errorf("/statusz missing %q", want)
		}
	}

	// Manual flight dump (what the chaos audit failure path calls).
	path, err := srv.FlightDump("manual: audit hook test")
	if err != nil || path == "" {
		t.Fatalf("FlightDump: %q, %v", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"reason":"manual: audit hook test"`) {
		t.Error("manual dump lost its reason")
	}
}
