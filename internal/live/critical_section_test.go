package live

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestOutboxOverflowDeposesSlowConsumer wedges a session's reader: the
// raw client floods read requests but never drains replies, so the
// session writer blocks on the transport and the staged outbox grows.
// The server must depose the session at the configured bound instead of
// buffering grants without limit.
func TestOutboxOverflowDeposesSlowConsumer(t *testing.T) {
	const limit = 32
	reg := obs.NewRegistry()
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 64, ObjsPerPage: 4, NumPages: 4096,
		OutboxLimit: limit, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cEnd, sEnd := Pipe()
	id, err := srv.Attach(sEnd)
	if err != nil {
		t.Fatal(err)
	}
	// Flood: distinct pages so every request produces a fresh data grant.
	// The in-process transport buffers 1024 messages; past that the
	// session writer blocks mid-send and the outbox accumulates until the
	// server cuts the session loose.
	txn := core.TxnID(0x424200) | core.TxnID(id)
	for i := 0; i < 4000; i++ {
		m := &core.Msg{Kind: core.MReadReq, From: id, Txn: txn, Req: int64(i + 1),
			Obj: o(core.PageID(i%4096), 0), Page: core.PageID(i % 4096)}
		if err := cEnd.Send(m); err != nil {
			break // deposed: the server closed the pipe under us
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("wedged session never deposed: %d sessions, outbox deposes=%d",
				srv.Sessions(), reg.CounterValue("oodb_live_outbox_deposes_total"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.CounterValue("oodb_live_outbox_deposes_total"); got < 1 {
		t.Fatalf("oodb_live_outbox_deposes_total = %d, want >= 1", got)
	}
}

// TestBusyLeaseClearedOnRoundCancel pins the callback-lease lifecycle: a
// busy reply arms a deadline that is only discharged at transaction end —
// but if the callback round itself is cancelled (here: the requesting
// writer times out and disconnects), the lease must be retired with it.
// A lingering lease would depose the blameless holder at expiry.
func TestBusyLeaseClearedOnRoundCancel(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		CallbackTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	holder := attachClient(t, srv)
	defer holder.Close()
	htx, err := holder.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := htx.Read(o(5, 1)); err != nil {
		t.Fatal(err)
	}

	// The writer's callback reaches the holder, which answers busy
	// (active reader), arming the lease. Then the writer gives up: its
	// request deadline tears the connection down and the server drops the
	// session — and with it the open callback round.
	wConn, wsEnd := Pipe()
	if _, err := srv.Attach(wsEnd); err != nil {
		t.Fatal(err)
	}
	writer, err := Connect(wConn, ClientOptions{RequestTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	wtx, err := writer.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := wtx.Write(o(5, 1), []byte("gone")); err == nil {
		t.Fatal("writer write succeeded against a busy holder; wanted a timeout")
	}

	// Wait past the holder's lease expiry. With the round cancelled there
	// is no outstanding callback, so the watchdog must leave the holder
	// alone.
	time.Sleep(600 * time.Millisecond)
	if n := srv.Sessions(); n != 1 {
		t.Fatalf("sessions = %d after lease window; holder was deposed despite the cancelled round", n)
	}
	if err := htx.Commit(); err != nil {
		t.Fatalf("holder commit: %v", err)
	}
}

// TestStoreLatchTornReadSoak hammers one Store with concurrent commit
// installs and off-lock payload reads. Every write is a full slot of one
// repeated byte, so any torn read — a payload observed mid-install —
// shows up as a mixed-byte object. Run under -race this also proves the
// page-latch coverage of the off-lock read path.
func TestStoreLatchTornReadSoak(t *testing.T) {
	const (
		pages   = 16
		writers = 4
		readers = 4
		iters   = 3000
	)
	s, err := CreateStore(filepath.Join(t.TempDir(), "s.db"), 256, 4, pages)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sz := s.ObjSize()

	// Seed every slot so readers never see the zero page as "torn".
	for p := 0; p < pages; p++ {
		for sl := 0; sl < 4; sl++ {
			if err := s.WriteObj(o(core.PageID(p), uint16(sl)), bytes.Repeat([]byte{1}, sz)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				oid := o(core.PageID(i%pages), uint16((w+i)%4))
				val := bytes.Repeat([]byte{byte(1 + (w*iters+i)%250)}, sz)
				if err := s.WriteObj(oid, val); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := core.PageID((r + i) % pages)
				if i%2 == 0 {
					got, err := s.ReadObj(o(p, uint16(i%4)))
					if err != nil {
						errc <- err
						return
					}
					if !uniform(got) {
						errc <- fmt.Errorf("torn object read on page %d: %v", p, got)
						return
					}
				} else {
					page, err := s.ReadPage(p)
					if err != nil {
						errc <- err
						return
					}
					for sl := 0; sl < 4; sl++ {
						if !uniform(page[sl*sz : (sl+1)*sz]) {
							errc <- fmt.Errorf("torn page read on page %d slot %d", p, sl)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestVStoreLatchTornReadSoak is the variable-object twin: WriteVObj can
// compact a page, relocate overflow chains, and grow the frame table, so
// the VStore serializes with a store-wide lock rather than page latches.
// Writers vary object sizes to force those structural paths while readers
// check for torn payloads.
func TestVStoreLatchTornReadSoak(t *testing.T) {
	const (
		pages   = 16
		writers = 4
		readers = 4
		iters   = 1500
	)
	s, err := CreateVStore(filepath.Join(t.TempDir(), "v.db"), 256, 4, pages)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for p := 0; p < pages; p++ {
		for sl := 0; sl < 4; sl++ {
			if err := s.WriteVObj(p, sl, bytes.Repeat([]byte{1}, 8)); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := 4 + (w*iters+i)%40 // size churn drives compaction
				val := bytes.Repeat([]byte{byte(1 + (w*iters+i)%250)}, n)
				if err := s.WriteVObj(i%pages, (w+i)%4, val); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, err := s.ReadVObj((r+i)%pages, i%4)
				if err != nil {
					errc <- err
					return
				}
				if !uniform(got) {
					errc <- fmt.Errorf("torn variable-object read: %v", got)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// uniform reports whether every byte of b equals the first.
func uniform(b []byte) bool {
	for _, c := range b {
		if c != b[0] {
			return false
		}
	}
	return len(b) > 0
}
