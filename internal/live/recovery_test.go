package live

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// copyDBDir clones a database directory (store + log) into a fresh temp
// dir, so one crashed state can seed many independent recovery attempts.
func copyDBDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	for _, name := range []string{"data.db", "wal.log"} {
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestParallelReplayMatchesSerial is the determinism contract behind
// -recovery-jobs: partitioned replay must leave the store byte-identical
// to a serial replay, for any worker count, including non-powers of two.
// The log deliberately rewrites the same objects many times so that any
// ordering mistake between workers would surface as a stale afterimage.
func TestParallelReplayMatchesSerial(t *testing.T) {
	const (
		numPages = 32
		objsPP   = 4
		records  = 300
		fanout   = 4
	)
	tpl := t.TempDir()
	st, err := CreateStore(filepath.Join(tpl, "data.db"), 256, objsPP, numPages)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	w, _, err := OpenWAL(filepath.Join(tpl, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	w.SyncOnCommit = false
	rng := rand.New(rand.NewSource(11))
	want := make(map[core.ObjID][]byte) // final image per object
	for i := 0; i < records; i++ {
		objs := make([]core.ObjID, fanout)
		imgs := make([][]byte, fanout)
		for j := range objs {
			objs[j] = o(core.PageID(rng.Intn(numPages)), uint16(rng.Intn(objsPP)))
			img := make([]byte, 8)
			binary.LittleEndian.PutUint32(img[0:], uint32(i))
			binary.LittleEndian.PutUint32(img[4:], uint32(j))
			imgs[j] = img
		}
		if err := w.Append(&walRecord{Txn: core.TxnID(i + 1), Client: 1,
			Objs: objs, Images: imgs, Commit: true}); err != nil {
			t.Fatal(err)
		}
		// Later records overwrite earlier ones; within one record the last
		// image for a repeated object wins, same as the engine's install.
		for j, obj := range objs {
			want[obj] = imgs[j]
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var serial []byte
	for _, jobs := range []int{1, 2, 3, 4} {
		dir := copyDBDir(t, tpl)
		st, err := OpenStore(filepath.Join(dir, "data.db"))
		if err != nil {
			t.Fatal(err)
		}
		wal, scan, err := OpenWAL(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		stats, err := replayRecords(st, scan, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: replay: %v", jobs, err)
		}
		if stats.Jobs != jobs || stats.Records != records || stats.RecordsSkipped != 0 {
			t.Fatalf("jobs=%d: stats %+v", jobs, stats)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		wal.Close()
		raw, err := os.ReadFile(filepath.Join(dir, "data.db"))
		if err != nil {
			t.Fatal(err)
		}
		if jobs == 1 {
			serial = raw
		} else if !bytes.Equal(raw, serial) {
			t.Fatalf("jobs=%d: store bytes differ from serial replay", jobs)
		}
	}

	// End to end: a server opened with parallel recovery serves exactly the
	// last committed image of every object.
	dir := copyDBDir(t, tpl)
	srv, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, RecoveryJobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.RecoveryStats(); got.Jobs != 4 || got.Records != records {
		t.Fatalf("server recovery stats %+v, want Jobs=4 Records=%d", got, records)
	}
	cl := attachClient(t, srv)
	defer cl.Close()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for obj, img := range want {
		got, err := tx.Read(obj)
		if err != nil {
			t.Fatalf("read %v: %v", obj, err)
		}
		if !bytes.HasPrefix(got, img) {
			t.Fatalf("object %v: got %x, want prefix %x", obj, got[:8], img)
		}
	}
	tx.Commit()
}

// TestCrashDuringRecovery proves recovery itself is crash-safe: a second
// crash while replaying, while flushing replayed pages, or just before
// the post-recovery log truncation must leave the log intact, and the
// next recovery must land on exactly the same store bytes as a recovery
// that never crashed. Each crash point runs under both serial and
// parallel replay.
func TestCrashDuringRecovery(t *testing.T) {
	const (
		numPages = 16
		objsPP   = 4
		commits  = 12
		fanout   = 3
	)
	// Build one crashed state: commits go to the durable log, then the
	// server dies without checkpointing — the store is still empty and the
	// log holds everything.
	tpl := t.TempDir()
	srv, err := OpenServer(tpl, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: objsPP, NumPages: numPages,
		SyncWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := attachClient(t, srv)
	acked := make(map[core.ObjID]uint32) // seq+1 of the last acked write
	for n := 0; n < commits; n++ {
		tx, err := cl.Begin()
		if err != nil {
			t.Fatal(err)
		}
		objs := make([]core.ObjID, 0, fanout)
		for j := 0; j < fanout; j++ {
			objs = append(objs, o(core.PageID((n+j)%numPages), uint16(n%objsPP)))
		}
		for _, obj := range objs {
			if err := tx.Write(obj, seqVal(uint32(n))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		for _, obj := range objs {
			acked[obj] = uint32(n) + 1
		}
	}
	cl.Close()
	srv.Crash()

	// Reference: what a clean, uninterrupted recovery produces.
	ref := recoverOnce(t, copyDBDir(t, tpl))

	points := []struct {
		name string
		hit  int64
	}{
		{"recover.mid-replay", 1},
		{"recover.mid-replay", 2},
		{"store.flush.partial", 1},
		{"store.flush.pre-sync", 1},
		{"wal.truncate.pre", 1}, // post-replay truncation: replay done, log not yet retired
	}
	defer fault.DisarmAll()
	for _, pt := range points {
		for _, jobs := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/hit%d/jobs%d", pt.name, pt.hit, jobs), func(t *testing.T) {
				dir := copyDBDir(t, tpl)
				fault.Get(pt.name).Arm(pt.hit)
				_, err := OpenServer(dir, ServerOptions{
					Proto: core.PSAA, SyncWAL: true, RecoveryJobs: jobs,
				})
				fault.DisarmAll()
				if err == nil {
					t.Fatalf("OpenServer survived armed crash point %s", pt.name)
				}
				if !fault.IsCrash(err) {
					t.Fatalf("OpenServer failed with %v, want injected crash", err)
				}

				// The log must still replay to the reference bytes — twice,
				// because a recovery can itself be re-crashed.
				if got := recoverOnce(t, dir); !bytes.Equal(got, ref) {
					t.Fatal("recovery after a mid-recovery crash diverged from a clean recovery")
				}
				if got := recoverOnce(t, dir); !bytes.Equal(got, ref) {
					t.Fatal("third recovery pass diverged")
				}

				// And a real reopen must serve every acked write.
				srv2, err := OpenServer(dir, ServerOptions{
					Proto: core.PSAA, SyncWAL: true, RecoveryJobs: jobs,
				})
				if err != nil {
					t.Fatalf("reopen after mid-recovery crash: %v", err)
				}
				defer srv2.Close()
				auditor := attachClient(t, srv2)
				defer auditor.Close()
				tx, err := auditor.Begin()
				if err != nil {
					t.Fatal(err)
				}
				for obj, want := range acked {
					got, err := tx.Read(obj)
					if err != nil {
						t.Fatal(err)
					}
					if v := binary.LittleEndian.Uint32(got[:4]); v != want {
						t.Fatalf("object %v: seq %d, want acked seq %d", obj, int64(v)-1, int64(want)-1)
					}
				}
				tx.Commit()
			})
		}
	}
}

// TestFuzzyCheckpointConcurrentCommits checkpoints while committers are
// running full tilt: the fuzzy checkpoint must neither block them out nor
// lose any acked write, and once the writers drain, a final checkpoint
// must shrink the log to just its watermark frame.
func TestFuzzyCheckpointConcurrentCommits(t *testing.T) {
	const (
		nClients       = 3
		commitsPerClnt = 20
		pagesPerClient = 16
		objsPP         = 4
	)
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: objsPP,
		NumPages: nClients * pagesPerClient, SyncWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i] = attachClient(t, srv)
	}

	var mu sync.Mutex
	want := make(map[core.ObjID][]byte)
	errs := make([]error, nClients)
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := clients[c]
			for j := 0; j < commitsPerClnt; j++ {
				obj := o(core.PageID(c*pagesPerClient+j%pagesPerClient), uint16(j%objsPP))
				val := seqVal(uint32(c*commitsPerClnt + j))
				tx, err := cl.Begin()
				if err != nil {
					errs[c] = err
					return
				}
				if err := tx.Write(obj, val); err != nil {
					errs[c] = err
					return
				}
				if err := tx.Commit(); err != nil {
					errs[c] = err
					return
				}
				mu.Lock()
				want[obj] = val // clients own disjoint pages, so last-in-goroutine wins
				mu.Unlock()
			}
		}(c)
	}
	// Checkpoint repeatedly while the committers run: with the fuzzy
	// per-shard flush this never stops the world, and must never fail.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
			if err := srv.Checkpoint(); err != nil {
				t.Errorf("checkpoint under load: %v", err)
				running = false
			}
			time.Sleep(time.Millisecond)
		}
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Quiesced: one more checkpoint retires every record, leaving only the
	// watermark frame in the log.
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := srv.wal.Len(); n > 32 {
		t.Fatalf("log holds %d bytes after a quiesced checkpoint, want just the watermark frame", n)
	}

	// Crash and recover: everything acked survives, through whatever mix of
	// store flushes and log records the fuzzy checkpoints left behind.
	for _, cl := range clients {
		cl.Close()
	}
	srv.Crash()
	srv2, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	auditor := attachClient(t, srv2)
	defer auditor.Close()
	tx, err := auditor.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for obj, val := range want {
		got, err := tx.Read(obj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, val) {
			t.Fatalf("object %v: got %x, want %x", obj, got[:4], val)
		}
	}
	tx.Commit()
}

// TestRecoverySkipsCheckpointCoveredPrefix pins the watermark payoff: a
// crash after the watermark is durable but before the log is truncated
// leaves a log whose prefix is already in the store. Recovery must skip
// that prefix (counted, and visible in the metrics) and replay only what
// came after.
func TestRecoverySkipsCheckpointCoveredPrefix(t *testing.T) {
	const prefixCommits = 5
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 16, SyncWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := attachClient(t, srv)
	for i := 0; i < prefixCommits; i++ {
		tx, err := cl.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(o(core.PageID(i), 0), seqVal(uint32(i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Crash between the watermark append and the prefix truncation: the
	// store is flushed and the watermark durable, but all 5 records remain.
	defer fault.DisarmAll()
	fault.Get("checkpoint.post-watermark").Arm(1)
	if err := srv.Checkpoint(); !fault.IsCrash(err) {
		t.Fatalf("checkpoint returned %v, want injected crash", err)
	}
	cl.Close()
	srv.Crash()
	fault.DisarmAll()

	// More commits arrive after the (crashed) checkpoint — simulated by
	// appending straight to the surviving log, past the watermark.
	w, scan, err := OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.recs) != prefixCommits || scan.covered == 0 {
		t.Fatalf("surviving log: %d records, covered=%d; want %d records under a watermark",
			len(scan.recs), scan.covered, prefixCommits)
	}
	for i := 0; i < 2; i++ {
		if err := w.Append(&walRecord{Txn: core.TxnID(1000 + i), Client: 1,
			Objs:   []core.ObjID{o(core.PageID(8+i), 0)},
			Images: [][]byte{seqVal(uint32(100 + i))}, Commit: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	stats := srv2.RecoveryStats()
	if stats.RecordsSkipped != prefixCommits || stats.Records != 2 {
		t.Fatalf("recovery stats %+v, want %d skipped / 2 replayed", stats, prefixCommits)
	}
	if stats.PagesSkipped != prefixCommits || stats.PagesReplayed != 2 {
		t.Fatalf("recovery stats %+v, want %d pages skipped / 2 replayed", stats, prefixCommits)
	}
	if v := srv2.Metrics().CounterValue("oodb_live_recovery_pages_replayed_total"); v != 2 {
		t.Fatalf("oodb_live_recovery_pages_replayed_total = %d, want 2", v)
	}
	if v := srv2.Metrics().CounterValue("oodb_live_recovery_pages_skipped_total"); v != prefixCommits {
		t.Fatalf("oodb_live_recovery_pages_skipped_total = %d, want %d", v, prefixCommits)
	}

	// Both the skipped prefix and the replayed tail must be readable.
	auditor := attachClient(t, srv2)
	defer auditor.Close()
	tx, err := auditor.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < prefixCommits; i++ {
		got, err := tx.Read(o(core.PageID(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, seqVal(uint32(i))) {
			t.Fatalf("checkpointed object on page %d lost", i)
		}
	}
	for i := 0; i < 2; i++ {
		got, err := tx.Read(o(core.PageID(8+i), 0))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, seqVal(uint32(100+i))) {
			t.Fatalf("post-watermark object on page %d lost", 8+i)
		}
	}
	tx.Commit()
}
