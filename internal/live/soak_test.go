package live

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestRandomizedSoak hammers a live server with concurrent clients doing
// random reads and read-modify-write counters under every protocol, then
// audits the final state: each object holds exactly the number of
// increments that committed against it.
func TestRandomizedSoak(t *testing.T) {
	for _, proto := range core.AllProtocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			srv, _ := testServer(t, proto)
			defer srv.Close()
			// Soak with tracing and heat collection on: the ring gives a
			// protocol-level post-mortem when the audit finds a lost
			// update, and both double as race tests against real traffic.
			srv.Tracer().SetEnabled(true)
			srv.Heat().SetEnabled(true)

			const (
				clients  = 5
				txnsEach = 40
				dbPages  = 32
				objsPP   = 4
			)
			// committed[obj] counts increments from committed transactions.
			var mu sync.Mutex
			committed := make(map[core.ObjID]uint32)

			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				cl := attachClient(t, srv)
				defer cl.Close()
				wg.Add(1)
				go func(i int, cl *Client) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000 + i)))
					for n := 0; n < txnsEach; {
						tx, err := cl.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						var incs []core.ObjID
						err = func() error {
							for k := 0; k < 6; k++ {
								obj := o(core.PageID(rng.Intn(dbPages)), uint16(rng.Intn(objsPP)))
								if rng.Intn(3) == 0 {
									if err := tx.Update(obj, func(old []byte) []byte {
										v := binary.LittleEndian.Uint32(old[:4])
										var buf [4]byte
										binary.LittleEndian.PutUint32(buf[:], v+1)
										return buf[:]
									}); err != nil {
										return err
									}
									incs = append(incs, obj)
								} else if _, err := tx.Read(obj); err != nil {
									return err
								}
							}
							return nil
						}()
						if err == nil {
							err = tx.Commit()
						}
						switch {
						case err == nil:
							mu.Lock()
							for _, obj := range incs {
								committed[obj]++
							}
							mu.Unlock()
							n++
						case errors.Is(err, ErrAborted):
							// retry with a fresh random transaction
						default:
							t.Errorf("%v", err)
							return
						}
					}
				}(i, cl)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			// Audit: read every object and compare with the committed count.
			auditor := attachClient(t, srv)
			defer auditor.Close()
			tx, err := auditor.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < dbPages; p++ {
				for s := 0; s < objsPP; s++ {
					obj := o(core.PageID(p), uint16(s))
					got, err := tx.Read(obj)
					if err != nil {
						t.Fatal(err)
					}
					want := committed[obj]
					if v := binary.LittleEndian.Uint32(got[:4]); v != want {
						t.Fatalf("object %v = %d, want %d (lost/phantom updates)\nlast protocol events for page %d:\n%s",
							obj, v, want, obj.Page,
							obs.FormatEvents(srv.Tracer().ForPage(int32(obj.Page), 50)))
					}
				}
			}
			tx.Commit()
			if sn := srv.Heat().Snapshot(); sn.Reads+sn.Writes == 0 {
				t.Error("heat collector idle across the soak")
			}
		})
	}
}

// TestRecoveryUnderLoad crashes the server (no store flush) after a burst
// of committed transactions and verifies every acknowledged commit
// survives recovery.
func TestRecoveryUnderLoad(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32, SyncWAL: false})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 4
	type write struct {
		obj core.ObjID
		val string
	}
	var mu sync.Mutex
	acked := make(map[core.ObjID]string) // last committed value per object (per-object writers disjoint)

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cl := attachClient(t, srv)
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			defer cl.Close()
			// Each goroutine owns a disjoint slice of objects: no aborts.
			for n := 0; n < 25; n++ {
				obj := o(core.PageID(i*8+n%8), uint16(n%4))
				val := fmt.Sprintf("c%d-n%d", i, n)
				tx, err := cl.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Write(obj, []byte(val)); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				acked[obj] = val
				mu.Unlock()
			}
		}(i, cl)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Crash: sync the WAL, drop everything else on the floor.
	srv.mu.Lock()
	srv.wal.f.Sync()
	srv.store.(*Store).f.Close()
	srv.wal.f.Close()
	srv.closed = true
	srv.mu.Unlock()

	srv2, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: false})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer srv2.Close()
	cl := attachClient(t, srv2)
	defer cl.Close()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for obj, want := range acked {
		got, err := tx.Read(obj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, []byte(want)) {
			t.Fatalf("object %v lost after crash: got %q want %q", obj, got[:12], want)
		}
	}
	tx.Commit()
}
