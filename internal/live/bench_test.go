package live

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// BenchmarkHeatDisabled measures the cost a disabled heat collector adds
// to every traced access: it must stay a nil-check plus one atomic load
// (same discipline as the disabled tracer), since the live server calls
// RecordAccess on every engine lock request.
func BenchmarkHeatDisabled(b *testing.B) {
	h := obs.NewHeat(obs.HeatOptions{})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int32(0)
		for pb.Next() {
			h.RecordAccess(1, i&1023, i%20, i&3 == 0)
			i++
		}
	})
}

// BenchmarkHeatEnabled measures the enabled recording path (shard hash,
// TryLock, sketch update) under parallel load — the cost an operator buys
// by turning /heatz on.
func BenchmarkHeatEnabled(b *testing.B) {
	h := obs.NewHeat(obs.HeatOptions{})
	h.SetEnabled(true)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int32(0)
		for pb.Next() {
			h.RecordAccess(1, i&1023, i%20, i&3 == 0)
			i++
		}
	})
	if h.Dropped() == int64(b.N) {
		b.Fatal("every sample dropped; benchmark measured nothing")
	}
}

// startTCPServer opens a server on a loopback listener and returns it with
// its dial address.
func startTCPServer(b *testing.B, opts ServerOptions) (*Server, string) {
	b.Helper()
	dir := b.TempDir()
	srv, err := OpenServer(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	go srv.ListenAndServe("127.0.0.1:0")
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == "" {
		if time.Now().After(deadline) {
			b.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	return srv, srv.Addr()
}

// BenchmarkLiveCommit measures end-to-end commit throughput over real TCP
// with N concurrent clients and a durable (fsynced) WAL — the live-system
// hot path the wire codec and group commit optimize. Each client updates
// objects in a private page region, so the measurement is the data plane
// (codec, WAL, fsync scheduling), not lock contention. Reported metrics:
// txn/s (aggregate committed throughput) and p99-commit-ns (per-commit
// latency tail).
func BenchmarkLiveCommit(b *testing.B) {
	for _, nc := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("clients=%d", nc), func(b *testing.B) {
			benchLiveCommit(b, nc)
		})
	}
}

func benchLiveCommit(b *testing.B, nClients int) {
	const pagesPerClient = 16
	srv, addr := startTCPServer(b, ServerOptions{
		Proto: core.PSAA, PageSize: 4096, ObjsPerPage: 20,
		NumPages: nClients * pagesPerClient, SyncWAL: true,
	})
	defer srv.Close()

	clients := make([]*Client, nClients)
	for i := range clients {
		conn, err := Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		cl, err := Connect(conn, ClientOptions{})
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = cl
		defer cl.Close()
	}

	var next atomic.Int64
	lats := make([][]int64, nClients)
	val := make([]byte, 64)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				if n >= int64(b.N) {
					return
				}
				tx, err := cl.Begin()
				if err != nil {
					b.Error(err)
					return
				}
				obj := o(core.PageID(i*pagesPerClient+int(n)%pagesPerClient), uint16(n%20))
				if err := tx.Write(obj, val); err != nil {
					b.Error(err)
					return
				}
				start := time.Now()
				if err := tx.Commit(); err != nil {
					b.Error(err)
					return
				}
				lats[i] = append(lats[i], time.Since(start).Nanoseconds())
			}
		}(i, cl)
	}
	wg.Wait()
	b.StopTimer()

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		b.ReportMetric(float64(all[(len(all)-1)*99/100]), "p99-commit-ns")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "txn/s")
}

// BenchmarkLiveMixed is the read-heavy mixed workload: 32 clients over
// TCP share a 64-page read region while each also owns a private write
// region. Client caches are deliberately tiny (8 pages) so most reads
// miss and fetch from the server — the workload that hammers route()'s
// payload path. ~90% of transactions are 4-object read-only txns against
// the shared region; ~10% additionally commit one private-page update
// through the durable WAL.
func BenchmarkLiveMixed(b *testing.B) {
	const (
		nClients    = 32
		sharedPages = 64
		privPages   = 4
	)
	srv, addr := startTCPServer(b, ServerOptions{
		Proto: core.PSAA, PageSize: 4096, ObjsPerPage: 20,
		NumPages: sharedPages + nClients*privPages, SyncWAL: true,
	})
	defer srv.Close()

	clients := make([]*Client, nClients)
	for i := range clients {
		conn, err := Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		cl, err := Connect(conn, ClientOptions{CachePages: 8})
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = cl
		defer cl.Close()
	}

	var next atomic.Int64
	val := make([]byte, 64)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
			for {
				n := next.Add(1) - 1
				if n >= int64(b.N) {
					return
				}
				tx, err := cl.Begin()
				if err != nil {
					b.Error(err)
					return
				}
				for r := 0; r < 4; r++ {
					obj := o(core.PageID(rng.Intn(sharedPages)), uint16(rng.Intn(20)))
					if _, err := tx.Read(obj); err != nil {
						b.Error(err)
						return
					}
				}
				if n%10 == 0 {
					obj := o(core.PageID(sharedPages+i*privPages+int(n)%privPages), uint16(n%20))
					if err := tx.Write(obj, val); err != nil {
						b.Error(err)
						return
					}
				}
				if err := tx.Commit(); err != nil {
					b.Error(err)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "txn/s")
}

// BenchmarkLiveCommitLargeWriteSet commits one transaction with a
// 2000-object write set (100 pages x 20 slots) per iteration. The WAL is
// not fsynced so the measurement isolates commit-request processing —
// this is the benchmark that exposes a quadratic sortedUpdateKeys.
func BenchmarkLiveCommitLargeWriteSet(b *testing.B) {
	const (
		nPages  = 100
		objsPP  = 20
		objSize = 24 // fits the 31-byte slot cap at PageSize 640 / 20 objs
	)
	srv, addr := startTCPServer(b, ServerOptions{
		Proto: core.PSAA, PageSize: 640, ObjsPerPage: objsPP,
		NumPages: nPages, SyncWAL: false,
	})
	defer srv.Close()

	conn, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := Connect(conn, ClientOptions{CachePages: nPages})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	val := make([]byte, objSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := cl.Begin()
		if err != nil {
			b.Fatal(err)
		}
		for p := 0; p < nPages; p++ {
			for s := 0; s < objsPP; s++ {
				if err := tx.Write(o(core.PageID(p), uint16(s)), val); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// tcpPair returns both ends of one established loopback TCP connection,
// so the wire benchmarks exercise the same socket path production uses.
func tcpPair(b *testing.B) (net.Conn, net.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		b.Fatal(r.err)
	}
	return c1, r.c
}

// gobConn is the pre-binary-codec transport (a gob stream straight over
// the socket), kept here as a reference implementation so every wire
// benchmark publishes the old/new comparison on the same harness.
type gobConn struct {
	c   net.Conn
	dec *gob.Decoder

	mu  sync.Mutex
	enc *gob.Encoder
}

func newGobConn(c net.Conn) Conn {
	return &gobConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (g *gobConn) Send(m *core.Msg) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.enc.Encode(m)
}

func (g *gobConn) Recv() (*core.Msg, error) {
	m := new(core.Msg)
	if err := g.dec.Decode(m); err != nil {
		return nil, err
	}
	return m, nil
}

func (g *gobConn) Close() error { return g.c.Close() }

// benchWireRoundTrip pumps b.N copies of m through a transport over a
// loopback TCP connection, measuring the full encode+frame+decode path
// (allocs/op is the wire-path allocation cost the binary codec cuts).
// Each benchmark runs twice: codec=binary (the live transport) and
// codec=gob (the replaced one, for the recorded before/after).
func benchWireRoundTrip(b *testing.B, m *core.Msg) {
	for _, tc := range []struct {
		name string
		mk   func(net.Conn) Conn
	}{
		{"codec=binary", NewTCPConn},
		{"codec=gob", newGobConn},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c1, c2 := tcpPair(b)
			t1, t2 := tc.mk(c1), tc.mk(c2)
			defer t1.Close()
			defer t2.Close()
			b.ReportAllocs()
			b.ResetTimer()
			errCh := make(chan error, 1)
			go func() {
				for i := 0; i < b.N; i++ {
					if err := t1.Send(m); err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}()
			for i := 0; i < b.N; i++ {
				if _, err := t2.Recv(); err != nil {
					b.Fatal(err)
				}
			}
			if err := <-errCh; err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkWirePageData is the server->client data path: a full 4KiB page
// grant with a couple of unavailable slots.
func BenchmarkWirePageData(b *testing.B) {
	benchWireRoundTrip(b, &core.Msg{
		Kind: core.MPageData, To: 3, Txn: 77, Req: 12,
		Page: 9, Grant: core.GrantPage,
		Unavail: []uint16{1, 7},
		Data:    make([]byte, 4096),
	})
}

// BenchmarkWireCommitMsg is the client->server commit path: four object
// afterimages plus the page list and a piggybacked drop notice.
func BenchmarkWireCommitMsg(b *testing.B) {
	updates := make(map[core.ObjID][]byte)
	for i := 0; i < 4; i++ {
		updates[core.ObjID{Page: core.PageID(i), Slot: uint16(i)}] = make([]byte, 100)
	}
	benchWireRoundTrip(b, &core.Msg{
		Kind: core.MCommitReq, From: 2, Txn: 1234567, Req: 99,
		Pages:        []core.PageID{0, 1, 2, 3},
		Updates:      updates,
		DroppedPages: []core.PageID{11},
	})
}

// BenchmarkWireControl is the smallest message class (acks, grants):
// framing overhead floor.
func BenchmarkWireControl(b *testing.B) {
	benchWireRoundTrip(b, &core.Msg{
		Kind: core.MCallbackAck, From: 4, Txn: 42, Req: 7, Purged: true,
		Obj: core.ObjID{Page: 3, Slot: 2}, Epoch: 5,
	})
}

// BenchmarkVStoreWriteParallel measures the variable-object store's
// install path under multi-core load: each goroutine rewrites same-size
// objects on its own page, so every write fits in place and never touches
// another page. This is the case the per-page write latch targets — with
// a store-wide exclusive latch the writers serialize even though their
// pages are disjoint. Recorded before/after in DESIGN.md §16.
func BenchmarkVStoreWriteParallel(b *testing.B) {
	const (
		pageSize = 4096
		objsPP   = 8
		numPages = 256
	)
	s, err := CreateVStore(b.TempDir()+"/v.db", pageSize, objsPP, numPages)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	// Pre-place every object so the steady state is the in-place rewrite.
	for p := 0; p < numPages; p++ {
		for sl := 0; sl < objsPP; sl++ {
			if err := s.WriteVObj(p, sl, val); err != nil {
				b.Fatal(err)
			}
		}
	}
	var pageCtr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		page := int(pageCtr.Add(1)-1) % numPages
		slot := 0
		for pb.Next() {
			if err := s.WriteVObj(page, slot, val); err != nil {
				b.Error(err)
				return
			}
			slot = (slot + 1) % objsPP
		}
	})
}

// BenchmarkVStoreMixedParallel is the contention shape the live server
// produces: most goroutines read (off the server lock, as route() does)
// while a minority installs. Reads on disjoint pages must not stall
// behind in-place installs.
func BenchmarkVStoreMixedParallel(b *testing.B) {
	const (
		pageSize = 4096
		objsPP   = 8
		numPages = 256
	)
	s, err := CreateVStore(b.TempDir()+"/v.db", pageSize, objsPP, numPages)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 100)
	for p := 0; p < numPages; p++ {
		for sl := 0; sl < objsPP; sl++ {
			if err := s.WriteVObj(p, sl, val); err != nil {
				b.Fatal(err)
			}
		}
	}
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := int(ctr.Add(1) - 1)
		page := id % numPages
		writer := id%4 == 0
		slot := 0
		for pb.Next() {
			if writer {
				if err := s.WriteVObj(page, slot, val); err != nil {
					b.Error(err)
					return
				}
			} else {
				if _, err := s.ReadVObj(page, slot); err != nil {
					b.Error(err)
					return
				}
			}
			slot = (slot + 1) % objsPP
		}
	})
}

// BenchmarkReclusterRecovery measures the throughput an interleaved-
// PRIVATE workload recovers when online reclustering engages. Two
// writers share every page but own disjoint slot halves — the classic
// false-sharing shape. Under PS (pure page-level locking, the protocol
// where the paper's problem bites hardest) each writer's commit revokes
// the other's cached copy, so every transaction pays a page re-fetch
// plus a callback round even though no object is ever shared. The
// driver alternates transactions between the two clients from one
// goroutine: clients on separate machines interleave at the server in
// exactly this way, and a free-running 2-goroutine driver on a small
// CPU count would instead quantize into scheduler bursts that hide the
// ping-pong. The "early" phase measures steady state in the shared
// regime; then one heat rotation and one recluster round split every
// suspect page (each writer's slots migrate to writer-private spare
// pages); the "late" phase measures the split layout, where pages stay
// cached across transactions and callbacks vanish. Reported metrics:
// early-txn/s, late-txn/s, and recovery-ratio (late/early — the number
// CI's benchguard floors).
func BenchmarkReclusterRecovery(b *testing.B) {
	const (
		sharedPages = 8
		objsPP      = 8
		half        = objsPP / 2
		nWriters    = 2
	)
	dir := b.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PS, PageSize: 4096, ObjsPerPage: objsPP,
		NumPages: 32, SyncWAL: false,
		Recluster: true, ReclusterEvery: time.Hour, HeatEpoch: time.Hour,
		ReclusterSpare: 8, ReclusterMaxMoves: sharedPages * half * nWriters,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	clients := make([]*Client, nWriters)
	for i := range clients {
		cEnd, sEnd := Pipe()
		if _, err := srv.Attach(sEnd); err != nil {
			b.Fatal(err)
		}
		cl, err := Connect(cEnd, ClientOptions{CachePages: sharedPages + 8})
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = cl
		defer cl.Close()
	}

	val := make([]byte, 64)
	// phase runs n committed read-modify-write transactions, alternating
	// writers, and returns txn/s. k/sharedPages decorrelates slot from
	// page so every writer sweeps its whole half of every page.
	phase := func(n int) float64 {
		start := time.Now()
		for i := 0; i < n; i++ {
			w := i % nWriters
			k := i / nWriters
			obj := o(core.PageID(k%sharedPages), uint16(w*half+(k/sharedPages)%half))
			tx, err := clients[w].Begin()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tx.Read(obj); err != nil {
				b.Fatal(err)
			}
			if err := tx.Write(obj, val); err != nil {
				b.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		return float64(n) / time.Since(start).Seconds()
	}

	phase(nWriters * sharedPages * half) // warm caches, populate every slot
	b.ResetTimer()
	early := phase(b.N)
	b.StopTimer()

	// Guarantee the heat sketch holds this epoch's evidence even at tiny
	// b.N, then plan and migrate off the rotated snapshot.
	phase(8 * sharedPages)
	srv.heat.Rotate()
	moved, err := srv.ReclusterNow()
	if err != nil {
		b.Fatal(err)
	}
	if moved == 0 {
		b.Fatal("recluster round moved nothing; recovery ratio would measure noise")
	}
	phase(8 * sharedPages) // untimed: clients learn their redirect aliases

	b.StartTimer()
	late := phase(b.N)
	b.StopTimer()
	b.ReportMetric(early, "early-txn/s")
	b.ReportMetric(late, "late-txn/s")
	b.ReportMetric(late/early, "recovery-ratio")
	b.ReportMetric(float64(moved), "moved")
}

// BenchmarkRecovery measures instant restart on a crashed database: a
// store whose log still holds every commit (no checkpoint retired any of
// it). Each iteration clones that state, opens a server over it, and runs
// one commit — the moment the database is really back. Reported metrics:
// "txn/s" is logged records applied per second of the apply+write-back
// phase, the part -recovery-jobs parallelizes (the trailing fsync is
// device-bound and serial, so including it would only measure the disk);
// "ttfc-ns" is time-to-first-commit, OpenServer through the first
// post-restart commit ack. CI runs this twice (OODB_RECOVERY_JOBS=1 vs 4)
// and guards the txn/s ratio.
func BenchmarkRecovery(b *testing.B) {
	const (
		numPages = 1024
		objsPP   = 8
		pageSize = 2048
		records  = 8192
		fanout   = 4
	)
	tpl := b.TempDir()
	st, err := CreateStore(tpl+"/data.db", pageSize, objsPP, numPages)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	w, _, err := OpenWAL(tpl + "/wal.log")
	if err != nil {
		b.Fatal(err)
	}
	w.SyncOnCommit = false
	rng := rand.New(rand.NewSource(7))
	objSize := (pageSize - 4) / objsPP
	for i := 0; i < records; i++ {
		objs := make([]core.ObjID, fanout)
		imgs := make([][]byte, fanout)
		for j := range objs {
			objs[j] = o(core.PageID(rng.Intn(numPages)), uint16(rng.Intn(objsPP)))
			img := make([]byte, objSize)
			rng.Read(img)
			imgs[j] = img
		}
		if err := w.Append(&walRecord{Txn: core.TxnID(i + 1), Client: 1,
			Objs: objs, Images: imgs, Commit: true}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	dataImg, err := os.ReadFile(tpl + "/data.db")
	if err != nil {
		b.Fatal(err)
	}
	walImg, err := os.ReadFile(tpl + "/wal.log")
	if err != nil {
		b.Fatal(err)
	}

	var applied, applyNs, ttfcNs int64
	firstImg := make([]byte, objSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		if err := os.WriteFile(dir+"/data.db", dataImg, 0o644); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(dir+"/wal.log", walImg, 0o644); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		start := time.Now()
		srv, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: false})
		if err != nil {
			b.Fatal(err)
		}
		cEnd, sEnd := Pipe()
		if _, err := srv.Attach(sEnd); err != nil {
			b.Fatal(err)
		}
		cl, err := Connect(cEnd, ClientOptions{})
		if err != nil {
			b.Fatal(err)
		}
		tx, err := cl.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.Write(o(0, 0), firstImg); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		ttfcNs += time.Since(start).Nanoseconds()
		b.StopTimer()

		stats := srv.RecoveryStats()
		applied += int64(stats.Records)
		applyNs += stats.ApplyNs
		cl.Close()
		srv.Close()
		b.StartTimer()
	}
	b.StopTimer()
	if applyNs < 1 {
		applyNs = 1
	}
	b.ReportMetric(float64(applied)/(float64(applyNs)/1e9), "txn/s")
	b.ReportMetric(float64(ttfcNs)/float64(b.N), "ttfc-ns")
}
