package live

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"repro/internal/core"
)

// VStore is the variable-size object store the paper's Section 6.1 calls
// for: objects can grow and shrink across updates. Pages use a slotted
// layout (slot directory + heap), are compacted in place when fragmented,
// and an object that no longer fits its home page is moved to an overflow
// region with a forwarding pointer left in the home slot (the standard
// technique the paper cites from [Astr76]). Reads always resolve through
// the home slot, so object identity never changes.
//
// Page layout (payload = pageSize - 4-byte CRC trailer):
//
//	[0:2]   heapStart (offset of the lowest heap byte used)
//	[2:..]  slot directory: objsPerPage entries of (off uint16, len uint16)
//	        off == 0xFFFF: slot empty (never written)
//	        len == fwdLen: slot holds an 8-byte forwarding pointer
//	[heapStart:] object bytes, allocated downward from the end
//
// The overflow region starts at page numPages and grows as needed; each
// overflow page uses the same layout. Forwarded objects occupy exactly one
// overflow slot and never forward twice (a grown-again object is relocated
// within the overflow region).
type VStore struct {
	f           *os.File
	pageSize    int
	objsPerPage int
	numPages    int // home pages; overflow pages live beyond

	// Page latching, hash-sharded like the fixed-slot Store's. The common
	// operations are page-local — a payload read, an in-place rewrite, a
	// home-page compaction — and take only the home page's latch (shared
	// for readers, exclusive for installs), so traffic on disjoint pages
	// never serializes. A write that must touch more than its home page
	// (forwarding to the overflow region, freeing or relocating an
	// overflow placement, growing the frames slice) instead acquires all
	// latch shards in index order, which excludes every page-local
	// operation at once; overflow pages therefore mutate only under the
	// full sweep, and a reader chasing a forward pointer needs no second
	// latch — its shared home latch already excludes any writer that
	// could reach the target.
	latches pageLatches

	frames [][]byte // encoded page payloads, including overflow pages
	dirty  []bool
}

func (s *VStore) latch(page int) *sync.RWMutex {
	return s.latches.shard(core.PageID(page))
}

// lockAll acquires every latch shard exclusively, in index order (the
// fixed order makes concurrent sweeps deadlock-free). It fences the whole
// store for the multi-page write paths.
func (s *VStore) lockAll() {
	for i := range s.latches {
		s.latches[i].Lock()
	}
}

func (s *VStore) unlockAll() {
	for i := len(s.latches) - 1; i >= 0; i-- {
		s.latches[i].Unlock()
	}
}

const (
	slotEmpty = 0xFFFF
	fwdLen    = 0xFFFF // directory len marking a forwarding pointer
	fwdBytes  = 8      // encoded forward pointer: page uint32, slot uint16, pad
	vMagic    = 0x0DB5_94AB
)

func (s *VStore) payload() int { return s.pageSize - 4 }
func (s *VStore) dirSize() int { return 2 + 4*s.objsPerPage }

// MaxObjSize is the largest storable object: the page heap minus the
// per-slot forward-pointer reservation (every other slot must always be
// able to hold at least a forwarding pointer, or an overflow could become
// unrecordable).
func (s *VStore) MaxObjSize() int {
	return s.payload() - s.dirSize() - fwdBytes*(s.objsPerPage-1)
}

// NumPages returns the number of home pages.
func (s *VStore) NumPages() int { return s.numPages }

// ObjsPerPage returns the per-page slot count.
func (s *VStore) ObjsPerPage() int { return s.objsPerPage }

// CreateVStore creates (truncating) a variable-object store.
func CreateVStore(path string, pageSize, objsPerPage, numPages int) (*VStore, error) {
	s := &VStore{pageSize: pageSize, objsPerPage: objsPerPage, numPages: numPages}
	if pageSize < 64 || objsPerPage <= 0 || numPages <= 0 || s.MaxObjSize() < 16 {
		return nil, fmt.Errorf("live: bad vstore geometry %d/%d/%d", pageSize, objsPerPage, numPages)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	s.f = f
	s.frames = make([][]byte, numPages)
	s.dirty = make([]bool, numPages)
	for i := range s.frames {
		s.frames[i] = s.emptyPage()
		s.dirty[i] = true
	}
	if err := s.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	if err := s.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenVStore opens an existing variable-object store, verifying checksums.
func OpenVStore(path string) (*VStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 24)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("live: reading vstore header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != vMagic {
		f.Close()
		return nil, fmt.Errorf("live: %s is not a vstore file", path)
	}
	s := &VStore{
		f:           f,
		pageSize:    int(binary.LittleEndian.Uint32(hdr[4:])),
		objsPerPage: int(binary.LittleEndian.Uint32(hdr[8:])),
		numPages:    int(binary.LittleEndian.Uint32(hdr[12:])),
	}
	totalPages := int(binary.LittleEndian.Uint32(hdr[16:]))
	s.frames = make([][]byte, totalPages)
	s.dirty = make([]bool, totalPages)
	buf := make([]byte, s.pageSize)
	for p := 0; p < totalPages; p++ {
		if _, err := f.ReadAt(buf, int64(s.pageSize)*int64(p+1)); err != nil {
			f.Close()
			return nil, fmt.Errorf("live: reading vstore page %d: %w", p, err)
		}
		want := binary.LittleEndian.Uint32(buf[s.payload():])
		if got := crc32.ChecksumIEEE(buf[:s.payload()]); got != want {
			f.Close()
			return nil, fmt.Errorf("live: vstore page %d checksum mismatch", p)
		}
		s.frames[p] = append([]byte(nil), buf[:s.payload()]...)
	}
	return s, nil
}

func (s *VStore) writeHeader() error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], vMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.pageSize))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.objsPerPage))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(s.numPages))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(s.frames)))
	_, err := s.f.WriteAt(hdr, 0)
	return err
}

// emptyPage builds a fresh payload: empty directory, heap at the end.
func (s *VStore) emptyPage() []byte {
	b := make([]byte, s.payload())
	binary.LittleEndian.PutUint16(b[0:], uint16(s.payload()))
	for i := 0; i < s.objsPerPage; i++ {
		binary.LittleEndian.PutUint16(b[2+4*i:], slotEmpty)
	}
	return b
}

// ---- Slot directory accessors ----

func (s *VStore) slotAt(frame []byte, slot int) (off, ln int) {
	off = int(binary.LittleEndian.Uint16(frame[2+4*slot:]))
	ln = int(binary.LittleEndian.Uint16(frame[2+4*slot+2:]))
	return off, ln
}

func (s *VStore) setSlot(frame []byte, slot, off, ln int) {
	binary.LittleEndian.PutUint16(frame[2+4*slot:], uint16(off))
	binary.LittleEndian.PutUint16(frame[2+4*slot+2:], uint16(ln))
}

func (s *VStore) heapStart(frame []byte) int { return int(binary.LittleEndian.Uint16(frame[0:])) }
func (s *VStore) setHeapStart(frame []byte, v int) {
	binary.LittleEndian.PutUint16(frame[0:], uint16(v))
}

// usedBytes sums live object bytes on a page (for compaction decisions).
func (s *VStore) usedBytes(frame []byte) int {
	n := 0
	for i := 0; i < s.objsPerPage; i++ {
		off, ln := s.slotAt(frame, i)
		if off == slotEmpty {
			continue
		}
		if ln == fwdLen {
			n += fwdBytes
		} else {
			n += ln
		}
	}
	return n
}

// compact rewrites the heap contiguously, reclaiming holes.
func (s *VStore) compact(p int) {
	old := s.frames[p]
	fresh := s.emptyPage()
	heap := s.payload()
	for i := 0; i < s.objsPerPage; i++ {
		off, ln := s.slotAt(old, i)
		if off == slotEmpty {
			continue
		}
		size := ln
		if ln == fwdLen {
			size = fwdBytes
		}
		heap -= size
		copy(fresh[heap:], old[off:off+size])
		s.setSlot(fresh, i, heap, ln)
	}
	s.setHeapStart(fresh, heap)
	s.frames[p] = fresh
	s.dirty[p] = true
}

// freeSpace returns contiguous free bytes; afterCompact also counts holes.
func (s *VStore) freeSpace(p int, afterCompact bool) int {
	frame := s.frames[p]
	if afterCompact {
		return s.payload() - s.dirSize() - s.usedBytes(frame)
	}
	return s.heapStart(frame) - s.dirSize()
}

// reservedBytes computes the page's committed capacity excluding one slot:
// each slot accounts for its placement (value or pointer), floored at
// fwdBytes so that any slot can always be converted to a forward pointer.
func (s *VStore) reservedBytes(frame []byte, except int) int {
	total := 0
	for i := 0; i < s.objsPerPage; i++ {
		if i == except {
			continue
		}
		off, ln := s.slotAt(frame, i)
		size := 0
		if off != slotEmpty {
			if ln == fwdLen {
				size = fwdBytes
			} else {
				size = ln
			}
		}
		if size < fwdBytes {
			size = fwdBytes
		}
		total += size
	}
	return total
}

// fitsInline reports whether a value of n bytes may be placed inline in
// the given home slot without violating the per-slot pointer reservation.
func (s *VStore) fitsInline(p, slot, n int) bool {
	eff := n
	if eff < fwdBytes {
		eff = fwdBytes
	}
	return s.reservedBytes(s.frames[p], slot)+eff <= s.payload()-s.dirSize()
}

// allocInPage reserves n heap bytes on page p (compacting if that helps)
// and returns the offset, or -1 if the page cannot hold them.
func (s *VStore) allocInPage(p, n int) int {
	if s.freeSpace(p, false) < n {
		if s.freeSpace(p, true) < n {
			return -1
		}
		s.compact(p)
	}
	frame := s.frames[p]
	off := s.heapStart(frame) - n
	s.setHeapStart(frame, off)
	return off
}

// ---- Object operations ----

func (s *VStore) checkHome(o objAddr) error {
	if o.page < 0 || o.page >= s.numPages || o.slot < 0 || o.slot >= s.objsPerPage {
		return fmt.Errorf("live: object %d.%d out of range", o.page, o.slot)
	}
	return nil
}

// objAddr is an internal (page, slot) pair that may address overflow pages.
type objAddr struct{ page, slot int }

func (s *VStore) readFwd(frame []byte, off int) objAddr {
	return objAddr{
		page: int(binary.LittleEndian.Uint32(frame[off:])),
		slot: int(binary.LittleEndian.Uint16(frame[off+4:])),
	}
}

func (s *VStore) writeFwd(frame []byte, off int, a objAddr) {
	binary.LittleEndian.PutUint32(frame[off:], uint32(a.page))
	binary.LittleEndian.PutUint16(frame[off+4:], uint16(a.slot))
	binary.LittleEndian.PutUint16(frame[off+6:], 0)
}

// ReadVObj returns the current bytes of the object (nil if never
// written). Safe to call without the server lock: the shared home latch
// excludes same-page installs, and the multi-page writers (which are the
// only ones that can touch an overflow target) hold every latch shard.
func (s *VStore) ReadVObj(page, slot int) ([]byte, error) {
	home := objAddr{page, slot}
	if err := s.checkHome(home); err != nil {
		return nil, err
	}
	l := s.latch(home.page)
	l.RLock()
	defer l.RUnlock()
	frame := s.frames[home.page]
	off, ln := s.slotAt(frame, home.slot)
	if off == slotEmpty {
		return nil, nil
	}
	if ln == fwdLen {
		tgt := s.readFwd(frame, off)
		tFrame := s.frames[tgt.page]
		tOff, tLn := s.slotAt(tFrame, tgt.slot)
		if tOff == slotEmpty || tLn == fwdLen {
			return nil, fmt.Errorf("live: dangling forward pointer %d.%d -> %d.%d", page, slot, tgt.page, tgt.slot)
		}
		return append([]byte(nil), tFrame[tOff:tOff+tLn]...), nil
	}
	return append([]byte(nil), frame[off:off+ln]...), nil
}

// IsForwarded reports whether the object currently lives in the overflow
// region (diagnostics and tests).
func (s *VStore) IsForwarded(page, slot int) bool {
	l := s.latch(page)
	l.RLock()
	defer l.RUnlock()
	off, ln := s.slotAt(s.frames[page], slot)
	return off != slotEmpty && ln == fwdLen
}

// WriteVObj installs a new value for the object, relocating as needed.
// The common case — the object is not forwarded and the new value fits
// its home page (in place or after a home-page compaction) — runs under
// only the home page's exclusive latch, so installs on disjoint pages
// proceed in parallel. Anything that must touch a second page (forwarded
// source or target, overflow allocation or free, frame table growth)
// falls through to the full latch sweep, which fences every page at
// once.
func (s *VStore) WriteVObj(page, slot int, data []byte) error {
	home := objAddr{page, slot}
	if err := s.checkHome(home); err != nil {
		return err
	}
	if len(data) > s.MaxObjSize() {
		return fmt.Errorf("live: object %d bytes exceeds max %d", len(data), s.MaxObjSize())
	}

	// Fast path: home-page-only writes under the page latch.
	l := s.latch(home.page)
	l.Lock()
	frame := s.frames[home.page]
	off, ln := s.slotAt(frame, home.slot)
	if off == slotEmpty || ln != fwdLen { // no overflow placement to free
		if off != slotEmpty && len(data) <= ln {
			copy(frame[off:], data)
			s.setSlot(frame, home.slot, off, len(data))
			s.dirty[home.page] = true
			l.Unlock()
			return nil
		}
		// fitsInline excludes the home slot from the reservation, so the
		// decision is the same whether the old placement is dropped before
		// or after — and keeping it until we commit to this path means the
		// slow path below sees an untouched page if we bail.
		if s.fitsInline(home.page, home.slot, len(data)) {
			s.setSlot(frame, home.slot, slotEmpty, 0)
			newOff := s.allocInPage(home.page, len(data))
			if newOff < 0 {
				l.Unlock()
				return fmt.Errorf("live: internal: reservation admitted %dB but page %d is full", len(data), home.page)
			}
			frame = s.frames[home.page] // compaction may have replaced it
			copy(frame[newOff:], data)
			s.setSlot(frame, home.slot, newOff, len(data))
			s.dirty[home.page] = true
			l.Unlock()
			return nil
		}
	}
	l.Unlock()

	// Slow path: forwarded placement or overflow required. Re-reads the
	// slot under the full latch sweep — nothing decided above is trusted.
	s.lockAll()
	defer s.unlockAll()
	frame = s.frames[home.page]
	off, ln = s.slotAt(frame, home.slot)

	// Drop any existing placement first (the heap hole is reclaimed by a
	// later compaction) and remember a forwarded target for freeing.
	var oldFwd *objAddr
	if off != slotEmpty && ln == fwdLen {
		a := s.readFwd(frame, off)
		oldFwd = &a
	}

	// Try in place: exact or smaller fits the current placement directly.
	if off != slotEmpty && ln != fwdLen && len(data) <= ln {
		copy(frame[off:], data)
		s.setSlot(frame, home.slot, off, len(data))
		s.dirty[home.page] = true
		if oldFwd != nil {
			s.freeSlot(*oldFwd)
		}
		return nil
	}

	// Allocate in the home page if the reservation discipline allows it.
	s.setSlot(frame, home.slot, slotEmpty, 0) // free old placement for compaction
	if s.fitsInline(home.page, home.slot, len(data)) {
		newOff := s.allocInPage(home.page, len(data))
		if newOff < 0 {
			return fmt.Errorf("live: internal: reservation admitted %dB but page %d is full", len(data), home.page)
		}
		frame = s.frames[home.page] // compaction may have replaced it
		copy(frame[newOff:], data)
		s.setSlot(frame, home.slot, newOff, len(data))
		s.dirty[home.page] = true
		if oldFwd != nil {
			s.freeSlot(*oldFwd)
		}
		return nil
	}

	// Overflow: place the value in the overflow region and leave a
	// forwarding pointer at home.
	if oldFwd != nil {
		s.freeSlot(*oldFwd)
	}
	tgt, err := s.allocOverflow(len(data))
	if err != nil {
		return err
	}
	tFrame := s.frames[tgt.page]
	tOff, _ := s.slotAt(tFrame, tgt.slot)
	copy(tFrame[tOff:], data)
	s.dirty[tgt.page] = true

	frame = s.frames[home.page]
	fOff := s.allocInPage(home.page, fwdBytes)
	if fOff < 0 {
		return fmt.Errorf("live: page %d cannot hold a forward pointer", home.page)
	}
	frame = s.frames[home.page]
	s.writeFwd(frame, fOff, tgt)
	s.setSlot(frame, home.slot, fOff, fwdLen)
	s.dirty[home.page] = true
	return nil
}

// freeSlot releases an overflow placement.
func (s *VStore) freeSlot(a objAddr) {
	frame := s.frames[a.page]
	s.setSlot(frame, a.slot, slotEmpty, 0)
	s.dirty[a.page] = true
}

// allocOverflow finds (or creates) an overflow page with a free slot and
// enough space, reserving the bytes and returning the address.
func (s *VStore) allocOverflow(n int) (objAddr, error) {
	for p := s.numPages; p < len(s.frames); p++ {
		slot := s.freeSlotIn(p)
		if slot < 0 {
			continue
		}
		if off := s.allocInPage(p, n); off >= 0 {
			s.setSlot(s.frames[p], slot, off, n)
			s.dirty[p] = true
			return objAddr{p, slot}, nil
		}
	}
	// Grow the overflow region.
	p := len(s.frames)
	if p >= 1<<31 {
		return objAddr{}, fmt.Errorf("live: overflow region exhausted")
	}
	s.frames = append(s.frames, s.emptyPage())
	s.dirty = append(s.dirty, true)
	off := s.allocInPage(p, n)
	s.setSlot(s.frames[p], 0, off, n)
	return objAddr{p, 0}, nil
}

func (s *VStore) freeSlotIn(p int) int {
	frame := s.frames[p]
	for i := 0; i < s.objsPerPage; i++ {
		if off, _ := s.slotAt(frame, i); off == slotEmpty {
			return i
		}
	}
	return -1
}

// OverflowPages returns the current overflow region size (diagnostics).
func (s *VStore) OverflowPages() int {
	// Any one shared shard synchronizes with the frame-growth path, which
	// holds every shard exclusively.
	s.latches[0].RLock()
	defer s.latches[0].RUnlock()
	return len(s.frames) - s.numPages
}

// Flush writes dirty pages with checksums and syncs. It traverses the
// same crash points as Store.Flush (see internal/fault). Unlike the
// fixed-slot store there is no per-page incremental flush and no parallel
// replay: installs can compact a page, relocate an object to an overflow
// frame, or grow the file, so page contents depend on global apply order
// and only a stop-world flush (the checkpoint holds installMu exclusive)
// sees a consistent layout. Dirty flags clear only after the page's bytes
// are in the file — a write error must leave the page dirty, or a later
// checkpoint would truncate WAL records that still cover it.
func (s *VStore) Flush() error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	buf := make([]byte, s.pageSize)
	wrote := false
	for p := range s.frames {
		if !s.dirty[p] {
			continue
		}
		if wrote {
			if err := cpFlushPartial.Check(); err != nil {
				return err
			}
		}
		copy(buf, s.frames[p])
		binary.LittleEndian.PutUint32(buf[s.payload():], crc32.ChecksumIEEE(s.frames[p]))
		if _, err := s.f.WriteAt(buf, int64(s.pageSize)*int64(p+1)); err != nil {
			return err
		}
		s.dirty[p] = false
		wrote = true
	}
	if err := cpFlushPreSync.Check(); err != nil {
		return err
	}
	return s.f.Sync()
}

// ---- objectStore adapter (live server integration) ----

// ReadPage is unsupported: variable-object databases ship objects by
// value (OS protocol); raw page images are server-internal.
func (s *VStore) ReadPage(p core.PageID) ([]byte, error) {
	return nil, fmt.Errorf("live: page shipping unsupported with variable-size objects")
}

// ReadObj resolves the object through its home slot. Objects never
// written return a zero-length value.
func (s *VStore) ReadObj(o core.ObjID) ([]byte, error) {
	b, err := s.ReadVObj(int(o.Page), int(o.Slot))
	if err != nil {
		return nil, err
	}
	if b == nil {
		b = []byte{}
	}
	return b, nil
}

// WriteObj installs an afterimage, relocating the object as needed.
func (s *VStore) WriteObj(o core.ObjID, data []byte) error {
	return s.WriteVObj(int(o.Page), int(o.Slot), data)
}

// ObjSize reports the maximum object size (the advertised write limit).
func (s *VStore) ObjSize() int { return s.MaxObjSize() }

// DirtyPages returns how many pages are dirty in memory (unflushed).
func (s *VStore) DirtyPages() int {
	n := 0
	for _, d := range s.dirty {
		if d {
			n++
		}
	}
	return n
}

// Close flushes and closes.
func (s *VStore) Close() error {
	if err := s.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// closeRaw closes without flushing (simulated process death).
func (s *VStore) closeRaw() error { return s.f.Close() }
