package live

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// startTransportServer opens a server with the given transport on a
// loopback listener and waits for it to publish an address. On platforms
// without epoll the reactor request falls back to goroutine-per-conn;
// tests that need reactor-specific behavior check srv.Transport() and
// skip on the fallback.
func startTransportServer(t *testing.T, opts ServerOptions) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := OpenServer(dir, opts)
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	go srv.ListenAndServe("127.0.0.1:0")
	deadline := time.Now().Add(5 * time.Second)
	var addr string
	for addr = srv.Addr(); addr == ""; addr = srv.Addr() {
		if time.Now().After(deadline) {
			srv.Close()
			t.Fatal("server never started listening")
		}
		time.Sleep(time.Millisecond)
	}
	return srv, addr
}

// TestReactorTransportCommit: the reactor transport must be semantically
// invisible — the same commit/read-back flow as TestTCPTransport, with
// visibility across two clients, just with sessions owned by event loops
// instead of serve goroutines.
func TestReactorTransportCommit(t *testing.T) {
	srv, addr := startTransportServer(t, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		SyncWAL: false, Transport: TransportReactor,
	})
	defer srv.Close()

	dial := func() *Client {
		conn, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := Connect(conn, ClientOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	c1 := dial()
	defer c1.Close()
	c2 := dial()
	defer c2.Close()

	tx, err := c1.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o(1, 2), []byte("via reactor")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := c2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tx2.Read(o(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("via reactor")) {
		t.Fatalf("read back %q", got)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestReactorManyClients: concurrent commits from many clients, each in a
// private page region, all multiplexed over a handful of event loops.
// Exercises handler/pump interleaving under -race.
func TestReactorManyClients(t *testing.T) {
	const nClients = 16
	srv, addr := startTransportServer(t, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4,
		NumPages: nClients, SyncWAL: false, Transport: TransportReactor,
	})
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			cl, err := Connect(conn, ClientOptions{})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			page := core.PageID(i)
			for rep := 0; rep < 5; rep++ {
				tx, err := cl.Begin()
				if err != nil {
					errs <- fmt.Errorf("client %d begin: %w", i, err)
					return
				}
				if err := tx.Write(o(page, uint16(rep%4)), []byte{byte(i), byte(rep)}); err != nil {
					errs <- fmt.Errorf("client %d write: %w", i, err)
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("client %d commit: %w", i, err)
					return
				}
			}
			tx, err := cl.Begin()
			if err != nil {
				errs <- err
				return
			}
			got, err := tx.Read(o(page, 0))
			if err != nil {
				errs <- fmt.Errorf("client %d read back: %w", i, err)
				return
			}
			if got[0] != byte(i) {
				errs <- fmt.Errorf("client %d read %d, want %d", i, got[0], i)
				return
			}
			tx.Commit()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// countGoroutines settles the runtime before sampling so freshly dead
// goroutines don't inflate the count.
func countGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		time.Sleep(10 * time.Millisecond)
		runtime.Gosched()
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// TestReactorGoroutineCountIdleSessions: the whole point of the reactor
// — N idle sessions must cost O(loops) server goroutines, not O(N).
// Each raw Dial conn costs exactly one CLIENT-side goroutine (its
// flushLoop), so with the reactor the total process delta stays near N;
// the goroutine transport would add 3 more per session (serve, writer,
// server-side flushLoop).
func TestReactorGoroutineCountIdleSessions(t *testing.T) {
	const nConns = 200
	srv, addr := startTransportServer(t, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 8,
		SyncWAL: false, Transport: TransportReactor,
	})
	defer srv.Close()
	if srv.Transport() != TransportReactor {
		t.Skipf("reactor unavailable on this platform (fell back to %q)", srv.Transport())
	}

	before := countGoroutines()
	conns := make([]Conn, 0, nConns)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < nConns; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Sessions() != nConns {
		if time.Now().After(deadline) {
			t.Fatalf("sessions = %d, want %d", srv.Sessions(), nConns)
		}
		time.Sleep(5 * time.Millisecond)
	}

	after := countGoroutines()
	// Allow the client-side flushLoops (one per conn) plus generous slack
	// for loops, accept machinery, and runtime noise — but nowhere near
	// the 3-per-session the goroutine transport would add.
	serverSide := after - before - nConns
	if serverSide > nConns/2 {
		t.Fatalf("goroutines grew by %d for %d sessions (%d beyond client cost); server side is not O(loops)",
			after-before, nConns, serverSide)
	}
	t.Logf("goroutines: %d -> %d for %d idle sessions", before, after, nConns)
}

// TestReactorSlowReaderDeposed: a session that requests pages but never
// drains its socket must be deposed once its pending-write queue passes
// ReactorDrainCap — not allowed to pin queue memory forever.
func TestReactorSlowReaderDeposed(t *testing.T) {
	const nPages = 2048 // 8 MiB of page data, well past kernel buffering
	srv, addr := startTransportServer(t, ServerOptions{
		Proto: core.PSAA, PageSize: 4096, ObjsPerPage: 4, NumPages: nPages,
		SyncWAL: false, Transport: TransportReactor,
		ReactorDrainCap: 32 << 10,
		OutboxLimit:     -1, // the reactor's byte cap must be the depose path under test
	})
	defer srv.Close()
	if srv.Transport() != TransportReactor {
		t.Skipf("reactor unavailable on this platform (fell back to %q)", srv.Transport())
	}

	// Raw dial so the client's receive buffer can be pinned small — the
	// kernel must not absorb the whole reply stream on our behalf.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.(*net.TCPConn).SetReadBuffer(4096)
	if _, err := nc.Write([]byte{wireVersion}); err != nil {
		t.Fatal(err)
	}
	conn := NewTCPConn(nc)
	defer conn.Close()
	// Read the hello, then go silent on the receive side while requesting
	// page after page. Each first read of a page ships ~4 KiB of data;
	// once the kernel socket buffers fill, replies land in the reactor's
	// pending queue and blow past the 32 KiB cap.
	if _, err := conn.Recv(); err != nil {
		t.Fatalf("hello: %v", err)
	}
	deposed := func() bool {
		return srv.Sessions() == 0 &&
			srv.Metrics().CounterValue("oodb_live_reactor_deposes_total") >= 1
	}
	fl := conn.(flusher)
	for i := 0; i < nPages && !deposed(); i++ {
		m := &core.Msg{Kind: core.MReadReq, Txn: 999,
			Obj: o(core.PageID(i), 0), Page: core.PageID(i)}
		if err := conn.Send(m); err != nil {
			break // server already cut us off
		}
		if i%64 == 63 {
			if err := fl.Flush(); err != nil {
				break
			}
		}
	}
	fl.Flush()
	deadline := time.Now().Add(15 * time.Second)
	for !deposed() {
		if time.Now().After(deadline) {
			t.Fatalf("slow reader never deposed: sessions=%d deposes=%d",
				srv.Sessions(), srv.Metrics().CounterValue("oodb_live_reactor_deposes_total"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSlowlorisAccept: connections that never send their version byte
// must neither delay other handshakes nor outlive handshakeTimeout —
// under both transports, since the accept path is shared.
func TestSlowlorisAccept(t *testing.T) {
	saved := handshakeTimeout
	handshakeTimeout = 300 * time.Millisecond
	defer func() { handshakeTimeout = saved }()

	for _, transport := range []string{TransportGoroutine, TransportReactor} {
		t.Run(transport, func(t *testing.T) {
			srv, addr := startTransportServer(t, ServerOptions{
				Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 8,
				SyncWAL: false, Transport: transport,
			})
			defer srv.Close()

			// Open silent connections that hold the handshake hostage.
			const nSilent = 5
			silent := make([]net.Conn, 0, nSilent)
			defer func() {
				for _, c := range silent {
					c.Close()
				}
			}()
			for i := 0; i < nSilent; i++ {
				c, err := net.Dial("tcp", addr)
				if err != nil {
					t.Fatal(err)
				}
				silent = append(silent, c)
			}

			// Honest clients must get through while the silent conns dangle.
			start := time.Now()
			const nGood = 3
			for i := 0; i < nGood; i++ {
				conn, err := Dial(addr)
				if err != nil {
					t.Fatalf("honest dial %d: %v", i, err)
				}
				cl, err := Connect(conn, ClientOptions{})
				if err != nil {
					t.Fatalf("honest connect %d: %v", i, err)
				}
				defer cl.Close()
				tx, err := cl.Begin()
				if err != nil {
					t.Fatal(err)
				}
				if err := tx.Write(o(0, 0), []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if el := time.Since(start); el > 5*time.Second {
				t.Fatalf("honest handshakes took %v behind slowloris conns", el)
			}

			// The silent conns must be cut loose once handshakeTimeout
			// passes — the server closes them, so a read sees EOF/reset.
			for i, c := range silent {
				c.SetReadDeadline(time.Now().Add(10 * handshakeTimeout))
				var b [1]byte
				if _, err := c.Read(b[:]); err == nil {
					t.Fatalf("silent conn %d got data, want close", i)
				} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
					t.Fatalf("silent conn %d still open %v after handshake timeout", i, 10*handshakeTimeout)
				}
			}
			if n := srv.Sessions(); n != nGood {
				t.Fatalf("sessions = %d, want %d (silent conns must not become sessions)", n, nGood)
			}
		})
	}
}
