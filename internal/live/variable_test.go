package live

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

func variableServer(t *testing.T) *Server {
	t.Helper()
	srv, err := OpenServer(t.TempDir(), ServerOptions{
		Proto: core.OS, PageSize: 512, ObjsPerPage: 8, NumPages: 16,
		SyncWAL: false, VariableObjects: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestVariableObjectsRequireOS(t *testing.T) {
	_, err := OpenServer(t.TempDir(), ServerOptions{
		Proto: core.PSAA, VariableObjects: true,
	})
	if err == nil || !strings.Contains(err.Error(), "OS protocol") {
		t.Fatalf("err = %v, want OS-protocol requirement", err)
	}
}

func TestVariableObjectsEndToEnd(t *testing.T) {
	srv := variableServer(t)
	c1 := attachClient(t, srv)
	defer c1.Close()
	c2 := attachClient(t, srv)
	defer c2.Close()

	if !c1.variable || c1.objSize < 256 {
		t.Fatalf("handshake: variable=%v max=%d", c1.variable, c1.objSize)
	}

	// Values of wildly different sizes, growing and shrinking.
	tx, _ := c1.Begin()
	small := []byte("v1")
	if err := tx.Write(o(0, 0), small); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := c2.Begin()
	got, err := tx2.Read(o(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, small) {
		t.Fatalf("exact value not preserved: %q (len %d)", got, len(got))
	}
	tx2.Commit()

	// Grow past what several fixed slots could hold.
	big := bytes.Repeat([]byte("G"), c1.objSize*3/4)
	tx3, _ := c1.Begin()
	if err := tx3.Write(o(0, 0), big); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	tx4, _ := c2.Begin()
	if got, _ := tx4.Read(o(0, 0)); !bytes.Equal(got, big) {
		t.Fatal("grown value lost or padded")
	}
	tx4.Commit()

	// Oversize writes rejected client-side.
	tx5, _ := c1.Begin()
	if err := tx5.Write(o(0, 1), make([]byte, c1.objSize+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
	tx5.Abort()
}

func TestVariableObjectsForwardingUnderLoad(t *testing.T) {
	srv := variableServer(t)
	cl := attachClient(t, srv)
	defer cl.Close()

	// Fill one page's objects until some must forward, then verify all.
	want := make(map[uint16][]byte)
	for s := uint16(0); s < 8; s++ {
		val := bytes.Repeat([]byte{byte('a' + s)}, 60+int(s)*40)
		tx, _ := cl.Begin()
		if err := tx.Write(o(3, s), val); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		want[s] = val
	}
	vs := srv.store.(*VStore)
	forwarded := 0
	for s := 0; s < 8; s++ {
		if vs.IsForwarded(3, s) {
			forwarded++
		}
	}
	if forwarded == 0 {
		t.Fatal("expected some forwarding under this fill pattern")
	}
	checker := attachClient(t, srv)
	defer checker.Close()
	tx, _ := checker.Begin()
	for s, val := range want {
		got, err := tx.Read(o(3, s))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("slot %d: got %d bytes want %d", s, len(got), len(val))
		}
	}
	tx.Commit()
}

func TestVariableObjectsRecovery(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.OS, PageSize: 512, ObjsPerPage: 8, NumPages: 16,
		SyncWAL: false, VariableObjects: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := attachClient(t, srv)
	values := map[core.ObjID][]byte{
		o(1, 0): []byte("tiny"),
		o(1, 1): bytes.Repeat([]byte("M"), 150),
		o(2, 0): bytes.Repeat([]byte("L"), 300),
	}
	for obj, val := range values {
		tx, _ := cl.Begin()
		if err := tx.Write(obj, val); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without flushing the store.
	cl.Close()
	srv.mu.Lock()
	srv.wal.f.Sync()
	srv.wal.f.Close()
	srv.closed = true
	srv.mu.Unlock()

	srv2, err := OpenServer(dir, ServerOptions{Proto: core.OS, VariableObjects: true, SyncWAL: false})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer srv2.Close()
	c2 := attachClient(t, srv2)
	defer c2.Close()
	tx, _ := c2.Begin()
	for obj, val := range values {
		got, err := tx.Read(obj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("object %v: got %d bytes want %d after recovery", obj, len(got), len(val))
		}
	}
	tx.Commit()
}

func TestVariableObjectsConcurrentResizers(t *testing.T) {
	srv := variableServer(t)
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		cl := attachClient(t, srv)
		defer cl.Close()
		go func(i int, cl *Client) {
			for n := 0; n < 30; n++ {
				size := 10 + (n*37+i*91)%300
				val := bytes.Repeat([]byte{byte('0' + i)}, size)
				for {
					tx, err := cl.Begin()
					if err != nil {
						done <- err
						return
					}
					err = tx.Write(o(core.PageID(5+i), uint16(n%8)), val)
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						break
					}
					if !errors.Is(err, ErrAborted) {
						done <- fmt.Errorf("client %d: %w", i, err)
						return
					}
				}
			}
			done <- nil
		}(i, cl)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
