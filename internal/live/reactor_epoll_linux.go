package live

// The raw epoll shim under the reactor (reactor.go). Stdlib syscall only:
// the container bakes in no extra modules, and the handful of calls the
// reactor needs — create, ctl, wait, plus a self-pipe for cross-thread
// wakeups — have had stable wrappers in package syscall since Go 1.0.

import "syscall"

const (
	epIn  = uint32(syscall.EPOLLIN)
	epOut = uint32(syscall.EPOLLOUT)
	epErr = uint32(syscall.EPOLLERR)
	epHup = uint32(syscall.EPOLLHUP)
	// EPOLLET is declared as 0x80000000, which overflows int32 in some
	// syscall packages' typed views; mask through uint32 explicitly.
	epET = uint32(1) << 31
)

// epollCreate returns a new epoll instance.
func epollCreate() (int, error) {
	return syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
}

// epollAdd registers fd for events (ORed EPOLL* bits above). The event's
// data carries the fd itself; conns are resolved through the owning
// loop's map, so a stale event for a recycled fd simply misses.
func epollAdd(ep, fd int, events uint32) error {
	ev := syscall.EpollEvent{Events: events, Fd: int32(fd)}
	return syscall.EpollCtl(ep, syscall.EPOLL_CTL_ADD, fd, &ev)
}

// epollMod rearms fd with a new event mask. Under edge triggering a MOD
// also re-reports a condition that already holds, which is exactly what
// the write path wants when it arms EPOLLOUT after a short write.
func epollMod(ep, fd int, events uint32) error {
	ev := syscall.EpollEvent{Events: events, Fd: int32(fd)}
	return syscall.EpollCtl(ep, syscall.EPOLL_CTL_MOD, fd, &ev)
}

// epollDel unregisters fd.
func epollDel(ep, fd int) error {
	return syscall.EpollCtl(ep, syscall.EPOLL_CTL_DEL, fd, nil)
}

// epollWait blocks for events, retrying EINTR (profiling signals land on
// the loop threads constantly under -test.cpuprofile).
func epollWait(ep int, events []syscall.EpollEvent) (int, error) {
	for {
		n, err := syscall.EpollWait(ep, events, -1)
		if err == syscall.EINTR {
			continue
		}
		return n, err
	}
}

// wakePipe builds the loop's self-pipe: both ends non-blocking, so a
// wakeup write when the pipe is full (wake already pending) is a no-op
// rather than a stall.
func wakePipe() (r, w int, err error) {
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		return 0, 0, err
	}
	return p[0], p[1], nil
}
