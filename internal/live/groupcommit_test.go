package live

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// TestGroupCommitBatching drives concurrent committers through a durable
// WAL with a linger window and checks that fsyncs are actually shared:
// fewer syncs than commit records, and the group-size histogram saw
// batches.
func TestGroupCommitBatching(t *testing.T) {
	const nClients, perClient = 4, 10
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 32,
		SyncWAL: true, GroupCommitWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		cl := attachClient(t, srv)
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			for n := 0; n < perClient; n++ {
				tx, err := cl.Begin()
				if err != nil {
					t.Errorf("client %d begin: %v", i, err)
					return
				}
				// Private page region: measure the durability path, not
				// lock contention.
				if err := tx.Write(o(core.PageID(i*4+n%4), 0), []byte{byte(n)}); err != nil {
					t.Errorf("client %d write: %v", i, err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("client %d commit: %v", i, err)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()

	reg := srv.Metrics()
	records := reg.CounterValue("oodb_wal_records_total")
	syncs := reg.CounterValue("oodb_wal_syncs_total")
	if records != nClients*perClient {
		t.Errorf("wal records = %d, want %d", records, nClients*perClient)
	}
	if syncs == 0 {
		t.Error("no WAL fsyncs despite SyncWAL")
	}
	if syncs >= records {
		t.Errorf("syncs=%d >= records=%d: group commit never batched", syncs, records)
	}
	if snap := reg.HistogramSnapshot("oodb_live_wal_group_size"); snap.Count == 0 {
		t.Error("oodb_live_wal_group_size never observed")
	}
}

// TestGroupCommitSyncDisabled pins the SyncWAL=false bypass: commits are
// acknowledged without any fsync (the test-speed configuration must not
// pay for group commit's machinery).
func TestGroupCommitSyncDisabled(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 16,
		SyncWAL: false, GroupCommitWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := attachClient(t, srv)
	defer cl.Close()
	for n := 0; n < 5; n++ {
		tx, err := cl.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Write(o(core.PageID(n), 0), []byte{byte(n)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	reg := srv.Metrics()
	if got := reg.CounterValue("oodb_wal_records_total"); got != 5 {
		t.Errorf("wal records = %d, want 5", got)
	}
	if got := reg.CounterValue("oodb_wal_syncs_total"); got != 0 {
		t.Errorf("wal syncs = %d with SyncWAL=false, want 0", got)
	}
}

// TestGroupCommitAckedDurableUnderConcurrency is the batched-sync version
// of the crash audit: several clients commit concurrently (sharing
// fsyncs via the linger window) while a crash point inside the
// append/sync sequence is armed. After recovery, every acknowledged
// commit must be durable and nothing unsubmitted may appear — i.e. the
// group-commit leader must never let a follower's ack escape before the
// fsync that covers it.
func TestGroupCommitAckedDurableUnderConcurrency(t *testing.T) {
	for _, tc := range []struct {
		point string
		hit   int64
	}{
		{"wal.append.pre-sync", 3},
		{"wal.append.pre-sync", 7},
		{"wal.append.torn-write", 3},
		{"wal.append.pre-frame", 5},
	} {
		t.Run(fmt.Sprintf("%s/hit%d", tc.point, tc.hit), func(t *testing.T) {
			runConcurrentCrash(t, tc.point, tc.hit)
		})
	}
}

func runConcurrentCrash(t *testing.T, point string, hit int64) {
	const nClients, maxCommits = 3, 40
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 16,
		SyncWAL: true, GroupCommitWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fault.DisarmAll()
	fault.Get(point).Arm(hit)

	// Each client owns one object; the indices are disjoint, so plain
	// slices are race-free (joined by wg.Wait before reading).
	acked := make([]uint32, nClients)     // seq+1 of the last acknowledged commit
	submitted := make([]uint32, nClients) // seq+1 of the last submitted commit
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		cl := attachClient(t, srv)
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			defer cl.Close()
			for n := uint32(0); n < maxCommits; n++ {
				tx, err := cl.Begin()
				if err != nil {
					return // server crashed under us
				}
				if err := tx.Write(o(core.PageID(i), 0), seqVal(n)); err != nil {
					return
				}
				submitted[i] = n + 1
				if err := tx.Commit(); err != nil {
					return
				}
				acked[i] = n + 1
			}
		}(i, cl)
	}
	wg.Wait()
	if srv.Failed() == nil {
		t.Fatalf("crash point %s (hit %d) never fired", point, hit)
	}
	srv.Crash()
	fault.DisarmAll()

	srv2, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: true})
	if err != nil {
		t.Fatalf("recovery reopen: %v", err)
	}
	defer srv2.Close()
	auditor := attachClient(t, srv2)
	defer auditor.Close()
	tx, err := auditor.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nClients; i++ {
		got, err := tx.Read(o(core.PageID(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		v := binary.LittleEndian.Uint32(got[:4]) // seq+1; 0 = never written
		if v < acked[i] {
			t.Errorf("client %d: recovered seq %d older than acked seq %d",
				i, int64(v)-1, int64(acked[i])-1)
		}
		if v > submitted[i] {
			t.Errorf("client %d: phantom seq %d never submitted", i, v-1)
		}
	}
	tx.Commit()
}
