package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrAborted is returned by transaction operations when the transaction
// was chosen as a deadlock victim; the caller should retry it.
var ErrAborted = errors.New("live: transaction aborted (deadlock victim)")

// ErrClosed is returned after the connection is gone.
var ErrClosed = errors.New("live: client closed")

// Client is a live Client DBMS process: it caches pages (or objects under
// OS), holds the protocol state machine, answers callbacks concurrently
// with the running transaction, and exposes a transactional API.
//
// A Client supports one active transaction at a time (like the paper's
// model); open several Clients for concurrency.
type Client struct {
	conn  Conn
	id    core.ClientID
	proto core.Protocol

	numPages    int
	objsPerPage int
	objSize     int
	variable    bool // variable-size objects (OS protocol + VStore server)

	mu       sync.Mutex
	cs       *core.ClientState
	pageData map[core.PageID][]byte
	objData  map[core.ObjID][]byte
	pending  map[int64]*pendingReq
	nextReq  int64
	lastTxn  core.TxnID
	txn      *Txn
	closed   bool
	recvErr  error
}

// pendingReq is one outstanding request. The receive loop runs apply under
// the client lock the moment the reply arrives — atomically with respect
// to callbacks and de-escalation requests, which may only be answered
// after the reply's effects (grants, recorded writes) are installed — and
// then signals done.
type pendingReq struct {
	apply func(rep *core.Msg)
	done  chan reqOutcome
}

type reqOutcome int

const (
	reqOK reqOutcome = iota
	reqAborted
	reqClosed
)

// ClientOptions tunes a client.
type ClientOptions struct {
	// CachePages is the cache capacity in pages (objects x fan-out under
	// OS). Default: 25% of the database, as in the paper.
	CachePages int
}

// Connect performs the handshake over conn and returns a ready client.
func Connect(conn Conn, opts ClientOptions) (*Client, error) {
	hello, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("live: handshake: %w", err)
	}
	if hello.Kind != core.MHello {
		return nil, fmt.Errorf("live: handshake: unexpected %v", hello.Kind)
	}
	c := &Client{
		conn:        conn,
		id:          hello.HelloID,
		proto:       hello.HelloProto,
		numPages:    int(hello.HelloPages),
		objsPerPage: int(hello.HelloObjsPP),
		objSize:     int(hello.HelloObjSize),
		variable:    hello.HelloVariable,
		pageData:    make(map[core.PageID][]byte),
		objData:     make(map[core.ObjID][]byte),
		pending:     make(map[int64]*pendingReq),
	}
	cap := opts.CachePages
	if cap <= 0 {
		cap = c.numPages / 4
	}
	if c.proto == core.OS {
		cap *= c.objsPerPage
	}
	c.cs = core.NewClientState(c.id, c.proto, cap)
	go c.recvLoop()
	return c, nil
}

// ID returns the server-assigned client id.
func (c *Client) ID() core.ClientID { return c.id }

// Proto returns the protocol negotiated with the server.
func (c *Client) Proto() core.Protocol { return c.proto }

// ObjSize returns the fixed object size.
func (c *Client) ObjSize() int { return c.objSize }

// Geometry returns (numPages, objsPerPage).
func (c *Client) Geometry() (int, int) { return c.numPages, c.objsPerPage }

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	c.failPending()
	c.mu.Unlock()
	return c.conn.Close()
}

// failPending marks the client closed and releases all waiters (mu held).
func (c *Client) failPending() {
	c.closed = true
	for _, pr := range c.pending {
		pr.done <- reqClosed
	}
	c.pending = map[int64]*pendingReq{}
}

// recvLoop dispatches server messages: callbacks and de-escalations are
// handled immediately (concurrently with the running transaction), and
// replies are applied in arrival order under the client lock, so that a
// later callback or de-escalation request always observes the effects of
// the grants that preceded it on the wire.
func (c *Client) recvLoop() {
	for {
		m, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.recvErr = err
			c.failPending()
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		switch m.Kind {
		case core.MCallback:
			reply, _ := c.cs.HandleCallback(m)
			c.cleanupPage(m.Page)
			c.send(reply)
			c.mu.Unlock()
		case core.MDeescReq:
			c.send(c.cs.HandleDeescReq(m))
			c.mu.Unlock()
		case core.MAbortYou:
			pr := c.pending[m.Req]
			delete(c.pending, m.Req)
			// Roll the transaction back right here so subsequent messages
			// see consistent state; the waiter just learns the outcome.
			for _, am := range c.cs.Abort() {
				am := am
				c.send(&am)
				c.cleanupPage(am.Page)
			}
			c.txn = nil
			c.mu.Unlock()
			if pr != nil {
				pr.done <- reqAborted
			}
		default:
			pr := c.pending[m.Req]
			delete(c.pending, m.Req)
			if pr != nil && pr.apply != nil {
				pr.apply(m)
			}
			c.mu.Unlock()
			if pr != nil {
				pr.done <- reqOK
			}
		}
	}
}

// send transmits a message with drop notices attached. Callers hold c.mu,
// which also serializes the wire order with the state mutations that
// produced the message.
func (c *Client) send(m *core.Msg) {
	pages, objs := c.cs.Cache.TakeDropped()
	m.DroppedPages, m.DroppedObjs = pages, objs
	for _, p := range pages {
		delete(c.pageData, p)
	}
	for _, o := range objs {
		delete(c.objData, o)
	}
	_ = c.conn.Send(m)
}

// cleanupPage frees page bytes if the protocol state no longer caches the
// page.
func (c *Client) cleanupPage(p core.PageID) {
	if !c.cs.Cache.HasPage(p) {
		delete(c.pageData, p)
	}
}

// Begin starts a transaction. It blocks until any previous transaction on
// this client finishes.
func (c *Client) Begin() (*Txn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.txn != nil {
		return nil, errors.New("live: transaction already active on this client")
	}
	// Transaction ids must be unique across clients and roughly
	// start-ordered (the deadlock victim policy aborts the youngest):
	// nanosecond timestamp with the low byte replaced by the client id.
	// Unique for up to 255 clients per server.
	id := core.TxnID(time.Now().UnixNano())&^0xff | core.TxnID(c.id&0xff)
	if id <= c.lastTxn {
		id = c.lastTxn + 0x100
	}
	c.lastTxn = id
	c.cs.Begin(id)
	c.txn = &Txn{c: c}
	return c.txn, nil
}

// Txn is one transaction's handle. Its methods must be called from a
// single goroutine.
type Txn struct {
	c    *Client
	done bool
}

// roundTrip sends m and waits for its reply; apply runs under c.mu in the
// receive loop the moment the reply arrives. The caller must hold c.mu;
// the lock is released while waiting and reacquired before returning.
func (c *Client) roundTrip(m *core.Msg, apply func(rep *core.Msg)) error {
	if c.closed {
		return ErrClosed
	}
	c.nextReq++
	m.Req = c.nextReq
	m.Txn = c.cs.Txn
	m.From = c.id
	pr := &pendingReq{apply: apply, done: make(chan reqOutcome, 1)}
	c.pending[m.Req] = pr
	c.send(m)
	c.mu.Unlock()
	out := <-pr.done
	c.mu.Lock()
	switch out {
	case reqAborted:
		return ErrAborted
	case reqClosed:
		return ErrClosed
	}
	return nil
}

func (t *Txn) check() error {
	if t.done {
		return errors.New("live: transaction finished")
	}
	if t.c.closed {
		return ErrClosed
	}
	return nil
}

// finishIfAborted marks the transaction done on an abort outcome.
func (t *Txn) finishIfAborted(err error) error {
	if errors.Is(err, ErrAborted) || errors.Is(err, ErrClosed) {
		t.done = true
	}
	return err
}

func (c *Client) checkObjID(o core.ObjID) error {
	if int(o.Page) < 0 || int(o.Page) >= c.numPages || int(o.Slot) >= c.objsPerPage {
		return fmt.Errorf("live: object %v out of range", o)
	}
	return nil
}

// Read returns the current value of object o under this transaction.
func (t *Txn) Read(o core.ObjID) ([]byte, error) {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := c.checkObjID(o); err != nil {
		return nil, err
	}
	if m := c.cs.NeedForRead(o); m != nil {
		var val []byte
		err := c.roundTrip(m, func(rep *core.Msg) {
			// Runs in the receive loop: install the data, record the read,
			// and snapshot the value before any later callback can touch it.
			c.applyReply(rep)
			c.cs.RecordRead(o)
			val = c.objBytes(o)
		})
		if err != nil {
			return nil, t.finishIfAborted(err)
		}
		return val, nil
	}
	c.cs.RecordRead(o)
	return c.objBytes(o), nil
}

// Write installs a new value for object o (at most ObjSize bytes; shorter
// values are zero-padded). Writes replace the whole object, so no prior
// read is required — a blind write under the object's write lock is
// serializable even if the local copy was stale.
func (t *Txn) Write(o core.ObjID, data []byte) error {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	if err := c.checkObjID(o); err != nil {
		return err
	}
	if len(data) > c.objSize {
		return fmt.Errorf("live: value %d bytes exceeds object size %d", len(data), c.objSize)
	}
	c.cs.StartWrite(o)
	if m := c.cs.NeedForWrite(o); m != nil {
		err := c.roundTrip(m, func(rep *core.Msg) {
			c.applyReply(rep)
			c.cs.RecordWrite(o)
			c.setObjBytes(o, data)
		})
		return t.finishIfAborted(err)
	}
	c.cs.RecordWrite(o)
	c.setObjBytes(o, data)
	return nil
}

// Update is a read-modify-write convenience: it reads o, applies fn, and
// writes the result.
func (t *Txn) Update(o core.ObjID, fn func(old []byte) []byte) error {
	old, err := t.Read(o)
	if err != nil {
		return err
	}
	return t.Write(o, fn(old))
}

// Commit makes the transaction's updates durable and visible.
func (t *Txn) Commit() error {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	updates := c.collectUpdates()
	if len(updates) > 0 {
		m := c.cs.BuildCommit()
		m.Updates = updates
		err := c.roundTrip(m, func(rep *core.Msg) {
			if rep.Kind != core.MCommitAck {
				panic(fmt.Sprintf("live: unexpected commit reply %v", rep.Kind))
			}
			// Discharge deferred callbacks on the receive path so the acks
			// stay ordered with the transaction's end.
			for _, ack := range c.cs.OnCommitAck() {
				ack := ack
				c.send(&ack)
				c.cleanupPage(ack.Page)
			}
		})
		if err != nil {
			return t.finishIfAborted(err)
		}
		t.done = true
		c.txn = nil
		return nil
	}
	// Read-only: commit locally (cached copies are read permission).
	for _, ack := range c.cs.OnCommitAck() {
		ack := ack
		c.send(&ack)
		c.cleanupPage(ack.Page)
	}
	t.done = true
	c.txn = nil
	return nil
}

// Abort voluntarily rolls the transaction back.
func (t *Txn) Abort() error {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		return nil
	}
	for _, am := range c.cs.Abort() {
		am := am
		c.send(&am)
		c.cleanupPage(am.Page)
	}
	t.done = true
	c.txn = nil
	return nil
}

// collectUpdates builds the afterimage map for the commit message.
func (c *Client) collectUpdates() map[core.ObjID][]byte {
	updates := make(map[core.ObjID][]byte)
	if c.proto == core.OS {
		for _, o := range c.cs.Cache.DirtyObjs() {
			updates[o] = append([]byte(nil), c.objData[o]...)
		}
		return updates
	}
	for _, p := range c.cs.Cache.DirtyPages() {
		cp := c.cs.Cache.Page(p)
		for slot := range cp.Dirty {
			o := core.ObjID{Page: p, Slot: slot}
			updates[o] = append([]byte(nil), c.objSlice(p, slot)...)
		}
	}
	return updates
}

// applyReply installs a data/grant reply, merging the incoming page with
// local uncommitted updates.
func (c *Client) applyReply(m *core.Msg) {
	switch m.Kind {
	case core.MPageData:
		// Preserve locally dirty object bytes across the install.
		var saved map[uint16][]byte
		if cp := c.cs.Cache.Page(m.Page); cp != nil && len(cp.Dirty) > 0 {
			saved = make(map[uint16][]byte, len(cp.Dirty))
			for slot := range cp.Dirty {
				saved[slot] = append([]byte(nil), c.objSlice(m.Page, slot)...)
			}
		}
		c.cs.OnReply(m)
		buf := append([]byte(nil), m.Data...)
		c.pageData[m.Page] = buf
		for slot, bytes := range saved {
			copy(buf[int(slot)*c.objSize:], bytes)
		}
	case core.MObjData:
		c.cs.OnReply(m)
		c.objData[m.Obj] = append([]byte(nil), m.Data...)
	case core.MGrant:
		c.cs.OnReply(m)
	default:
		panic(fmt.Sprintf("live: unexpected reply %v", m.Kind))
	}
}

// objSlice returns the in-place byte slice of an object within its cached
// page buffer.
func (c *Client) objSlice(p core.PageID, slot uint16) []byte {
	buf := c.pageData[p]
	if buf == nil {
		panic(fmt.Sprintf("live: page %d bytes missing", p))
	}
	off := int(slot) * c.objSize
	return buf[off : off+c.objSize]
}

// objBytes returns a copy of object o's current bytes from the cache.
func (c *Client) objBytes(o core.ObjID) []byte {
	if c.proto == core.OS {
		return append([]byte(nil), c.objData[o]...)
	}
	return append([]byte(nil), c.objSlice(o.Page, o.Slot)...)
}

// setObjBytes installs new object bytes in the cache (zero-padded).
func (c *Client) setObjBytes(o core.ObjID, data []byte) {
	if c.proto == core.OS {
		if c.variable {
			// Size-changing updates: store the exact value.
			c.objData[o] = append([]byte(nil), data...)
			return
		}
		buf := make([]byte, c.objSize)
		copy(buf, data)
		c.objData[o] = buf
		return
	}
	slot := c.objSlice(o.Page, o.Slot)
	n := copy(slot, data)
	for i := n; i < len(slot); i++ {
		slot[i] = 0
	}
}
