package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// ErrAborted is returned by transaction operations when the transaction
// was chosen as a deadlock victim; the caller should retry it.
var ErrAborted = errors.New("live: transaction aborted (deadlock victim)")

// ErrClosed is returned after the connection is gone.
var ErrClosed = errors.New("live: client closed")

// ErrTimeout is returned when a request exceeds the client's
// RequestTimeout. The connection is torn down (the reply may still be in
// flight, so the session's state is no longer trustworthy); with a Redial
// policy the client reconnects as a fresh session. A timed-out Commit has
// an UNKNOWN outcome: it may or may not have become durable.
var ErrTimeout = errors.New("live: request deadline exceeded")

// ErrDisconnected is returned for operations whose transaction was
// aborted locally because the connection to the server was lost. Like
// ErrTimeout, a Commit outcome is unknown. The client itself stays usable
// if a Redial policy is configured.
var ErrDisconnected = errors.New("live: connection lost; transaction aborted locally")

// Client is a live Client DBMS process: it caches pages (or objects under
// OS), holds the protocol state machine, answers callbacks concurrently
// with the running transaction, and exposes a transactional API.
//
// A Client supports one active transaction at a time (like the paper's
// model); open several Clients for concurrency.
type Client struct {
	conn  Conn
	id    core.ClientID
	proto core.Protocol
	opts  ClientOptions
	met   *clientMetrics // nil when no registry configured

	numPages    int
	objsPerPage int
	objSize     int
	cacheCap    int  // protocol-units cache capacity (survives reconnects)
	variable    bool // variable-size objects (OS protocol + VStore server)

	mu           sync.Mutex
	cond         *sync.Cond // signals reconnect completion / closure
	cs           *core.ClientState
	pageData     map[core.PageID][]byte
	objData      map[core.ObjID][]byte
	pending      map[int64]*pendingReq
	nextReq      int64
	lastTxn      core.TxnID
	txn          *Txn
	closed       bool
	reconnecting bool
	recvErr      error
	closeCh      chan struct{}

	// aliases caches relocation redirects learned from MRelocated replies:
	// original address -> current placement (guarded by mu). Entries are
	// hints — the server re-redirects if one goes stale — and are dropped
	// on reconnect with the rest of the session state.
	aliases map[core.ObjID]core.ObjID
}

// pendingReq is one outstanding request. The receive loop runs apply under
// the client lock the moment the reply arrives — atomically with respect
// to callbacks and de-escalation requests, which may only be answered
// after the reply's effects (grants, recorded writes) are installed — and
// then signals done.
type pendingReq struct {
	apply func(rep *core.Msg)
	done  chan reqOutcome
}

type reqOutcome int

const (
	reqOK reqOutcome = iota
	reqAborted
	reqClosed
	reqDisconnected
)

// ClientOptions tunes a client.
type ClientOptions struct {
	// CachePages is the cache capacity in pages (objects x fan-out under
	// OS). Default: 25% of the database, as in the paper.
	CachePages int

	// RequestTimeout bounds each Read/Write/Commit round trip (and the
	// connection handshake). On expiry the operation returns ErrTimeout
	// and the connection is torn down — a stalled or partitioned server
	// can no longer hang the caller. 0 disables deadlines.
	RequestTimeout time.Duration

	// Redial, when set, enables automatic reconnection: after a transport
	// error the client aborts the in-flight transaction locally, re-dials
	// with capped exponential backoff + jitter, and re-registers as a
	// fresh session with a cold cache. Begin blocks while a reconnect is
	// in progress.
	Redial func() (Conn, error)

	// Retry shapes the reconnect backoff (zero value: defaults).
	Retry RetryPolicy

	// Metrics, when set, publishes client-side counters (cache hit/miss,
	// fetches, aborts, reconnects) and the request RTT histogram on the
	// given registry. Nil disables collection at the cost of one nil
	// check per operation.
	Metrics *obs.Registry
}

// Connect performs the handshake over conn and returns a ready client.
func Connect(conn Conn, opts ClientOptions) (*Client, error) {
	hello, err := recvHello(conn, opts.RequestTimeout)
	if err != nil {
		return nil, fmt.Errorf("live: handshake: %w", err)
	}
	c := &Client{
		conn:        conn,
		id:          hello.HelloID,
		proto:       hello.HelloProto,
		opts:        opts,
		numPages:    int(hello.HelloPages),
		objsPerPage: int(hello.HelloObjsPP),
		objSize:     int(hello.HelloObjSize),
		variable:    hello.HelloVariable,
		pageData:    make(map[core.PageID][]byte),
		objData:     make(map[core.ObjID][]byte),
		pending:     make(map[int64]*pendingReq),
		closeCh:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	cap := opts.CachePages
	if cap <= 0 {
		cap = c.numPages / 4
	}
	if c.proto == core.OS {
		cap *= c.objsPerPage
	}
	c.cacheCap = cap
	c.cs = core.NewClientState(c.id, c.proto, cap)
	c.met = newClientMetrics(opts.Metrics, c.proto)
	go c.recvLoop()
	return c, nil
}

// recvHello waits for the server's hello, bounded by timeout (0: forever).
func recvHello(conn Conn, timeout time.Duration) (*core.Msg, error) {
	var hello *core.Msg
	var err error
	if timeout <= 0 {
		hello, err = conn.Recv()
	} else {
		type result struct {
			m   *core.Msg
			err error
		}
		ch := make(chan result, 1)
		go func() {
			m, e := conn.Recv()
			ch <- result{m, e}
		}()
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case r := <-ch:
			hello, err = r.m, r.err
		case <-t.C:
			conn.Close()
			return nil, ErrTimeout
		}
	}
	if err != nil {
		return nil, err
	}
	if hello.Kind != core.MHello {
		return nil, fmt.Errorf("unexpected %v", hello.Kind)
	}
	return hello, nil
}

// ID returns the server-assigned client id.
func (c *Client) ID() core.ClientID { return c.id }

// Proto returns the protocol negotiated with the server.
func (c *Client) Proto() core.Protocol { return c.proto }

// ObjSize returns the fixed object size.
func (c *Client) ObjSize() int { return c.objSize }

// Geometry returns (numPages, objsPerPage).
func (c *Client) Geometry() (int, int) { return c.numPages, c.objsPerPage }

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	conn := c.conn
	if !c.closed {
		close(c.closeCh)
	}
	c.failPending()
	c.mu.Unlock()
	return conn.Close()
}

// failPending marks the client closed and releases all waiters (mu held).
func (c *Client) failPending() {
	c.closed = true
	for _, pr := range c.pending {
		pr.done <- reqClosed
	}
	c.pending = map[int64]*pendingReq{}
	c.cond.Broadcast()
}

// recvLoop dispatches server messages: callbacks and de-escalations are
// handled immediately (concurrently with the running transaction), and
// replies are applied in arrival order under the client lock, so that a
// later callback or de-escalation request always observes the effects of
// the grants that preceded it on the wire.
//
// On a transport error the loop either fails the client permanently or —
// with a Redial policy — reconnects and carries on with the new session.
func (c *Client) recvLoop() {
	conn := c.conn
	for {
		m, err := conn.Recv()
		if err != nil {
			if nc := c.reconnect(err); nc != nil {
				conn = nc
				continue
			}
			return
		}
		c.mu.Lock()
		switch m.Kind {
		case core.MCallback:
			reply, _ := c.cs.HandleCallback(m)
			c.cleanupPage(m.Page)
			c.send(reply)
			c.mu.Unlock()
		case core.MDeescReq:
			c.send(c.cs.HandleDeescReq(m))
			c.mu.Unlock()
		case core.MAbortYou:
			c.met.abort()
			pr := c.pending[m.Req]
			delete(c.pending, m.Req)
			// Roll the transaction back right here so subsequent messages
			// see consistent state; the waiter just learns the outcome.
			for _, am := range c.cs.Abort() {
				am := am
				c.send(&am)
				c.cleanupPage(am.Page)
			}
			c.txn = nil
			c.mu.Unlock()
			if pr != nil {
				pr.done <- reqAborted
			}
		default:
			pr := c.pending[m.Req]
			delete(c.pending, m.Req)
			if pr != nil && pr.apply != nil {
				pr.apply(m)
			}
			c.mu.Unlock()
			if pr != nil {
				pr.done <- reqOK
			}
		}
	}
}

// reconnect handles a transport error from conn: without a Redial policy
// it fails the client permanently; with one it aborts the in-flight
// transaction locally, then re-dials with capped exponential backoff and
// jitter until it re-registers as a fresh session (cold cache, new client
// id). It returns the new connection, or nil if the client is done.
func (c *Client) reconnect(cause error) Conn {
	c.mu.Lock()
	if c.closed || c.opts.Redial == nil {
		c.recvErr = cause
		c.failPending()
		c.mu.Unlock()
		return nil
	}
	c.reconnecting = true
	// Abort the in-flight transaction locally: the server will abort its
	// half when it notices the dead session, and our session state is
	// unusable anyway.
	if c.txn != nil {
		c.txn.done = true
		c.txn.failed = ErrDisconnected
		c.txn = nil
	}
	for _, pr := range c.pending {
		pr.done <- reqDisconnected
	}
	c.pending = map[int64]*pendingReq{}
	old := c.conn
	c.mu.Unlock()
	old.Close()

	policy := c.opts.Retry.withDefaults()
	delay := policy.BaseDelay
	rng := newJitterRand() // private source: reconnect storms must not share a lock
	for attempt := 1; policy.MaxAttempts <= 0 || attempt <= policy.MaxAttempts; attempt++ {
		t := time.NewTimer(policy.jittered(rng, delay))
		select {
		case <-c.closeCh:
			t.Stop()
			return nil
		case <-t.C:
		}
		if delay *= 2; delay > policy.MaxDelay {
			delay = policy.MaxDelay
		}
		conn, err := c.opts.Redial()
		if err != nil {
			continue
		}
		hello, err := recvHello(conn, c.opts.RequestTimeout)
		if err != nil {
			conn.Close()
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return nil
		}
		c.met.reconnect()
		// Fresh session: new id, cold cache, clean protocol state.
		c.conn = conn
		c.id = hello.HelloID
		c.cs = core.NewClientState(c.id, c.proto, c.cacheCap)
		c.pageData = make(map[core.PageID][]byte)
		c.objData = make(map[core.ObjID][]byte)
		c.aliases = nil
		c.reconnecting = false
		c.cond.Broadcast()
		c.mu.Unlock()
		return conn
	}
	c.mu.Lock()
	c.recvErr = cause
	c.failPending()
	c.mu.Unlock()
	return nil
}

// send transmits a message with drop notices attached. Callers hold c.mu,
// which also serializes the wire order with the state mutations that
// produced the message. The transport error is returned so paths that
// complete purely locally (read-only commit) can still notice a dead
// connection; most callers rely on the receive loop for that instead.
func (c *Client) send(m *core.Msg) error {
	pages, objs := c.cs.Cache.TakeDropped()
	m.DroppedPages, m.DroppedObjs = pages, objs
	for _, p := range pages {
		delete(c.pageData, p)
	}
	for _, o := range objs {
		delete(c.objData, o)
	}
	return c.conn.Send(m)
}

// cleanupPage frees page bytes if the protocol state no longer caches the
// page.
func (c *Client) cleanupPage(p core.PageID) {
	if !c.cs.Cache.HasPage(p) {
		delete(c.pageData, p)
	}
}

// Begin starts a transaction. It blocks until any previous transaction on
// this client finishes.
func (c *Client) Begin() (*Txn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.reconnecting && !c.closed {
		c.cond.Wait()
	}
	if c.closed {
		return nil, ErrClosed
	}
	if c.txn != nil {
		return nil, errors.New("live: transaction already active on this client")
	}
	// Transaction ids must be unique across clients and roughly
	// start-ordered (the deadlock victim policy aborts the youngest):
	// nanosecond timestamp with the low byte replaced by the client id.
	// Unique for up to 255 clients per server.
	id := core.TxnID(time.Now().UnixNano())&^0xff | core.TxnID(c.id&0xff)
	if id <= c.lastTxn {
		id = c.lastTxn + 0x100
	}
	c.lastTxn = id
	c.cs.Begin(id)
	c.txn = &Txn{c: c}
	return c.txn, nil
}

// Txn is one transaction's handle. Its methods must be called from a
// single goroutine.
type Txn struct {
	c      *Client
	done   bool
	failed error // terminal error (disconnect/timeout) to surface on reuse

	// relocs rides on the commit of a reclustering migration (set only by
	// the in-process planner; the server strips it from anyone else): the
	// relocation entries the commit installs atomically with its images.
	relocs []core.RelocEntry
}

// roundTrip sends m and waits for its reply; apply runs under c.mu in the
// receive loop the moment the reply arrives. The caller must hold c.mu;
// the lock is released while waiting and reacquired before returning.
//
// With a RequestTimeout configured the wait is bounded: on expiry the
// connection is torn down (triggering reconnect, if configured) and the
// caller gets ErrTimeout once the teardown has released the waiter.
func (c *Client) roundTrip(m *core.Msg, apply func(rep *core.Msg)) error {
	if c.closed {
		return ErrClosed
	}
	c.nextReq++
	m.Req = c.nextReq
	m.Txn = c.cs.Txn
	m.From = c.id
	pr := &pendingReq{apply: apply, done: make(chan reqOutcome, 1)}
	c.pending[m.Req] = pr
	conn := c.conn
	start := time.Now()
	c.send(m)
	c.mu.Unlock()
	var out reqOutcome
	timedOut := false
	if c.opts.RequestTimeout > 0 {
		t := time.NewTimer(c.opts.RequestTimeout)
		select {
		case out = <-pr.done:
			t.Stop()
		case <-t.C:
			// Kill the (stalled) connection; the recv loop notices and
			// fails or replaces the session, releasing every waiter.
			timedOut = true
			conn.Close()
			out = <-pr.done
		}
	} else {
		out = <-pr.done
	}
	c.met.rtt(time.Since(start))
	c.mu.Lock()
	switch {
	case timedOut:
		// We tore the connection down, but the reply may have raced in
		// first (transports drain buffered messages on close), in which
		// case the waiter was released with reqOK and the recv loop has
		// not yet seen the transport error. The session is doomed either
		// way: park new Begins behind the reconnect and finish the active
		// transaction now, so the client is reusable the moment the recv
		// loop replaces (or permanently fails) the session. Skip if the
		// recv loop already swapped in a fresh connection.
		if c.conn == conn && !c.closed {
			c.reconnecting = true
			if c.txn != nil {
				c.txn.done = true
				c.txn.failed = ErrTimeout
				c.txn = nil
			}
		}
		return ErrTimeout
	case out == reqAborted:
		return ErrAborted
	case out == reqClosed:
		return ErrClosed
	case out == reqDisconnected:
		return ErrDisconnected
	}
	return nil
}

func (t *Txn) check() error {
	if t.failed != nil {
		return t.failed
	}
	if t.done {
		return errors.New("live: transaction finished")
	}
	if t.c.closed {
		return ErrClosed
	}
	return nil
}

// finishIfAborted marks the transaction done on a terminal outcome.
func (t *Txn) finishIfAborted(err error) error {
	switch {
	case errors.Is(err, ErrAborted) || errors.Is(err, ErrClosed):
		t.done = true
	case errors.Is(err, ErrTimeout) || errors.Is(err, ErrDisconnected):
		t.done = true
		t.failed = err
	}
	return err
}

func (c *Client) checkObjID(o core.ObjID) error {
	if int(o.Page) < 0 || int(o.Page) >= c.numPages || int(o.Slot) >= c.objsPerPage {
		return fmt.Errorf("live: object %v out of range", o)
	}
	return nil
}

// resolveAlias maps a user address through the relocation hints (mu held).
func (c *Client) resolveAlias(o core.ObjID) core.ObjID {
	if to, ok := c.aliases[o]; ok {
		return to
	}
	return o
}

// learnAlias records that the object the caller knows as orig currently
// lives at to (mu held). Keyed by the original address, so chains collapse
// to one hop no matter how many times the object moves.
func (c *Client) learnAlias(orig, to core.ObjID) {
	if c.aliases == nil {
		c.aliases = make(map[core.ObjID]core.ObjID)
	}
	c.aliases[orig] = to
}

// Fence-busy retry: a request bounced off a mid-migration fence backs off
// briefly and retries. Migrations commit in milliseconds and orphaned
// fences expire after fenceTTL at the server, so the window is bounded;
// exceeding it means something is genuinely wedged.
const relocRetryLimit = 500

func relocBackoff(attempt int) time.Duration {
	d := 100 * time.Microsecond * time.Duration(attempt+1)
	if d > 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

// fenceWait sleeps off a fence bounce without holding the client lock (the
// receive loop needs it for callbacks), then revalidates the transaction.
func (t *Txn) fenceWait(attempt int) error {
	c := t.c
	if attempt >= relocRetryLimit {
		return fmt.Errorf("live: object fenced by a migration for too long")
	}
	c.mu.Unlock()
	time.Sleep(relocBackoff(attempt))
	c.mu.Lock()
	return t.check()
}

// relocReply inspects a roundTrip reply for the relocation front door's
// answers: a redirect (retry at the returned address) or a fence bounce
// (empty Objs: back off and retry in place). Runs in the receive loop
// under c.mu, before applyReply would reject the unexpected kind.
func relocReply(rep *core.Msg, redirect *core.ObjID, isRedirect, fenced *bool) bool {
	if rep.Kind != core.MRelocated {
		return false
	}
	if len(rep.Objs) > 0 {
		*redirect = rep.Objs[0]
		*isRedirect = true
	} else {
		*fenced = true
	}
	return true
}

// Read returns the current value of object o under this transaction. If o
// was migrated by the reclusterer the server answers with a redirect; the
// client follows it (caching the alias) transparently.
func (t *Txn) Read(o core.ObjID) ([]byte, error) {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := c.checkObjID(o); err != nil {
		return nil, err
	}
	target := c.resolveAlias(o)
	for attempt := 0; ; attempt++ {
		if m := c.cs.NeedForRead(target); m != nil {
			c.met.miss()
			var val []byte
			var redirect core.ObjID
			var isRedirect, fenced bool
			cur := target
			err := c.roundTrip(m, func(rep *core.Msg) {
				if relocReply(rep, &redirect, &isRedirect, &fenced) {
					return
				}
				// Runs in the receive loop: install the data, record the read,
				// and snapshot the value before any later callback can touch it.
				c.applyReply(rep)
				c.cs.RecordRead(cur)
				val = c.objBytes(cur)
			})
			if err != nil {
				return nil, t.finishIfAborted(err)
			}
			if fenced {
				if err := t.fenceWait(attempt); err != nil {
					return nil, err
				}
				continue
			}
			if isRedirect {
				c.learnAlias(o, redirect)
				target = redirect
				continue
			}
			return val, nil
		}
		c.met.hit()
		c.cs.RecordRead(target)
		return c.objBytes(target), nil
	}
}

// Write installs a new value for object o (at most ObjSize bytes; shorter
// values are zero-padded). Writes replace the whole object, so no prior
// read is required — a blind write under the object's write lock is
// serializable even if the local copy was stale. Redirects are followed
// like Read's.
func (t *Txn) Write(o core.ObjID, data []byte) error {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	if err := c.checkObjID(o); err != nil {
		return err
	}
	if len(data) > c.objSize {
		return fmt.Errorf("live: value %d bytes exceeds object size %d", len(data), c.objSize)
	}
	target := c.resolveAlias(o)
	for attempt := 0; ; attempt++ {
		c.cs.StartWrite(target)
		if m := c.cs.NeedForWrite(target); m != nil {
			c.met.miss()
			var redirect core.ObjID
			var isRedirect, fenced bool
			cur := target
			err := c.roundTrip(m, func(rep *core.Msg) {
				if relocReply(rep, &redirect, &isRedirect, &fenced) {
					return
				}
				c.applyReply(rep)
				c.cs.RecordWrite(cur)
				c.setObjBytes(cur, data)
			})
			if err != nil {
				return t.finishIfAborted(err)
			}
			if fenced {
				if err := t.fenceWait(attempt); err != nil {
					return err
				}
				continue
			}
			if isRedirect {
				c.learnAlias(o, redirect)
				target = redirect
				continue
			}
			return nil
		}
		c.met.hit()
		c.cs.RecordWrite(target)
		c.setObjBytes(target, data)
		return nil
	}
}

// Update is a read-modify-write convenience: it reads o, applies fn, and
// writes the result.
func (t *Txn) Update(o core.ObjID, fn func(old []byte) []byte) error {
	old, err := t.Read(o)
	if err != nil {
		return err
	}
	return t.Write(o, fn(old))
}

// Commit makes the transaction's updates durable and visible.
func (t *Txn) Commit() error {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	updates := c.collectUpdates()
	if len(updates) > 0 {
		m := c.cs.BuildCommit()
		m.Updates = updates
		m.Relocs = t.relocs
		err := c.roundTrip(m, func(rep *core.Msg) {
			if rep.Kind != core.MCommitAck {
				panic(fmt.Sprintf("live: unexpected commit reply %v", rep.Kind))
			}
			// Discharge deferred callbacks on the receive path so the acks
			// stay ordered with the transaction's end.
			for _, ack := range c.cs.OnCommitAck() {
				ack := ack
				c.send(&ack)
				c.cleanupPage(ack.Page)
			}
		})
		if err != nil {
			return t.finishIfAborted(err)
		}
		c.met.commit()
		t.done = true
		c.txn = nil
		return nil
	}
	// Read-only: commit locally (cached copies are read permission).
	// The deferred callback acks double as a liveness probe: if the
	// server already tore this session down (e.g. deposed us for a stale
	// callback), our read permissions were revoked mid-transaction and
	// the commit must not report success. Without this check the outcome
	// would depend on whether the receive loop noticed the dead
	// connection first.
	var sendErr error
	for _, ack := range c.cs.OnCommitAck() {
		ack := ack
		if err := c.send(&ack); err != nil {
			sendErr = err
		}
		c.cleanupPage(ack.Page)
	}
	if sendErr != nil && c.opts.Redial == nil && !c.closed {
		c.recvErr = sendErr
		c.failPending()
	}
	if c.closed {
		c.met.abort()
		t.done = true
		c.txn = nil
		return ErrClosed
	}
	c.met.commit()
	t.done = true
	c.txn = nil
	return nil
}

// Abort voluntarily rolls the transaction back.
func (t *Txn) Abort() error {
	c := t.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		return nil
	}
	for _, am := range c.cs.Abort() {
		am := am
		c.send(&am)
		c.cleanupPage(am.Page)
	}
	c.met.abort()
	t.done = true
	c.txn = nil
	return nil
}

// collectUpdates builds the afterimage map for the commit message.
func (c *Client) collectUpdates() map[core.ObjID][]byte {
	updates := make(map[core.ObjID][]byte)
	if c.proto == core.OS {
		for _, o := range c.cs.Cache.DirtyObjs() {
			updates[o] = append([]byte(nil), c.objData[o]...)
		}
		return updates
	}
	for _, p := range c.cs.Cache.DirtyPages() {
		cp := c.cs.Cache.Page(p)
		for slot := range cp.Dirty {
			o := core.ObjID{Page: p, Slot: slot}
			updates[o] = append([]byte(nil), c.objSlice(p, slot)...)
		}
	}
	return updates
}

// applyReply installs a data/grant reply, merging the incoming page with
// local uncommitted updates.
func (c *Client) applyReply(m *core.Msg) {
	switch m.Kind {
	case core.MPageData:
		// Preserve locally dirty object bytes across the install.
		var saved map[uint16][]byte
		if cp := c.cs.Cache.Page(m.Page); cp != nil && len(cp.Dirty) > 0 {
			saved = make(map[uint16][]byte, len(cp.Dirty))
			for slot := range cp.Dirty {
				saved[slot] = append([]byte(nil), c.objSlice(m.Page, slot)...)
			}
		}
		c.cs.OnReply(m)
		buf := append([]byte(nil), m.Data...)
		c.pageData[m.Page] = buf
		for slot, bytes := range saved {
			copy(buf[int(slot)*c.objSize:], bytes)
		}
	case core.MObjData:
		c.cs.OnReply(m)
		c.objData[m.Obj] = append([]byte(nil), m.Data...)
	case core.MGrant:
		c.cs.OnReply(m)
	default:
		panic(fmt.Sprintf("live: unexpected reply %v", m.Kind))
	}
}

// objSlice returns the in-place byte slice of an object within its cached
// page buffer.
func (c *Client) objSlice(p core.PageID, slot uint16) []byte {
	buf := c.pageData[p]
	if buf == nil {
		panic(fmt.Sprintf("live: page %d bytes missing", p))
	}
	off := int(slot) * c.objSize
	return buf[off : off+c.objSize]
}

// objBytes returns a copy of object o's current bytes from the cache.
func (c *Client) objBytes(o core.ObjID) []byte {
	if c.proto == core.OS {
		return append([]byte(nil), c.objData[o]...)
	}
	return append([]byte(nil), c.objSlice(o.Page, o.Slot)...)
}

// setObjBytes installs new object bytes in the cache (zero-padded).
func (c *Client) setObjBytes(o core.ObjID, data []byte) {
	if c.proto == core.OS {
		if c.variable {
			// Size-changing updates: store the exact value.
			c.objData[o] = append([]byte(nil), data...)
			return
		}
		buf := make([]byte, c.objSize)
		copy(buf, data)
		c.objData[o] = buf
		return
	}
	slot := c.objSlice(o.Page, o.Slot)
	n := copy(slot, data)
	for i := n; i < len(slot); i++ {
		slot[i] = 0
	}
}
