package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// recluster is the online-reclustering planner: a background goroutine
// that consumes the heat collector's false-sharing evidence and migrates
// objects off suspect pages into (near-)private spare pages, as small
// system transactions through the ordinary client API. Each migration
// rides the full commit machinery — engine locks like any writer, a WAL
// record (with the relocations attached), callback rounds invalidating
// client copies — so it needs no new concurrency control; it is just a
// very polite client that happens to be allowed to write spare pages and
// to attach relocation entries to its commits.
type recluster struct {
	s   *Server
	cli *Client

	stopCh chan struct{}
	done   chan struct{}

	// mu serializes rounds: the ticker loop and ReclusterNow (tests, the
	// /reclusterz admin trigger) must not interleave migrations.
	mu  sync.Mutex
	cur spareCursor
}

// spareCursor allocates destination slots in the spare region. Each
// writer gets its own open page (near-private placement: the point of the
// split is that no two disjoint writers share a destination page); a new
// page comes off the never-used cursor when a writer's open page fills.
// Retired spare slots are not reused — the region is sized for the
// store's lifetime of planned moves, and exhaustion just stops planning.
type spareCursor struct {
	next core.PageID // next never-used spare page
	phys core.PageID // one past the last spare page
	opp  int
	open map[int32]*openSparePage
}

type openSparePage struct {
	page core.PageID
	next uint16
}

func (c *spareCursor) alloc(writer int32) (core.ObjID, bool) {
	op := c.open[writer]
	if op == nil || int(op.next) >= c.opp {
		if c.next >= c.phys {
			return core.ObjID{}, false
		}
		op = &openSparePage{page: c.next}
		c.next++
		c.open[writer] = op
	}
	o := core.ObjID{Page: op.page, Slot: op.next}
	op.next++
	return o, true
}

// startRecluster attaches the planner's in-process session and starts the
// background loop. Called from OpenServer once the engine is up; the
// server must have a relocation table with a spare region.
func (s *Server) startRecluster() error {
	cliConn, srvConn := Pipe()
	if _, err := s.attachInternal(srvConn); err != nil {
		return err
	}
	cli, err := Connect(cliConn, ClientOptions{
		CachePages:     8,
		RequestTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}
	r := &recluster{
		s:      s,
		cli:    cli,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
		cur: spareCursor{
			next: core.PageID(s.userPages),
			phys: core.PageID(s.store.NumPages()),
			opp:  s.store.ObjsPerPage(),
			open: make(map[int32]*openSparePage),
		},
	}
	// Restart cursor: never re-allocate a spare slot some earlier
	// incarnation already moved an object into. Partially-filled open
	// pages are abandoned (their writers are forgotten across restarts
	// anyway); only never-used pages are handed out.
	if top, ok := s.relocs.maxSpareSlot(core.PageID(s.userPages)); ok && top.Page >= r.cur.next {
		r.cur.next = top.Page + 1
	}
	s.recl = r
	go r.loop()
	return nil
}

// stopReclusterLocked signals the planner loop; the caller holds s.mu.
func (s *Server) stopReclusterLocked() {
	if s.recl != nil {
		select {
		case <-s.recl.stopCh:
		default:
			close(s.recl.stopCh)
		}
	}
}

func (r *recluster) loop() {
	defer close(r.done)
	defer r.cli.Close()
	tick := time.NewTicker(r.s.opts.ReclusterEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-tick.C:
		}
		if r.s.closedFlag.Load() {
			return
		}
		if _, err := r.runRound(); terminal(err) {
			return
		}
		// Transient failures (deadlock victim, a fenced straggler, spare
		// exhaustion) just wait for the next tick — the backoff IS the
		// pacing period.
	}
}

// terminal reports whether the planner's session is unusable for good.
func terminal(err error) bool {
	return errors.Is(err, ErrClosed) || errors.Is(err, ErrDisconnected) ||
		errors.Is(err, ErrTimeout)
}

// ReclusterNow runs one synchronous planning + migration round and
// returns the number of objects moved. Tests and the /reclusterz admin
// endpoint use it for determinism; the background loop calls the same
// round off its ticker.
func (s *Server) ReclusterNow() (int, error) {
	s.mu.Lock()
	r := s.recl
	closed := s.closed
	s.mu.Unlock()
	if r == nil {
		return 0, fmt.Errorf("live: reclustering not enabled")
	}
	if closed {
		return 0, fmt.Errorf("live: server closed")
	}
	return r.runRound()
}

// runRound snapshots the heat evidence, plans a bounded batch of moves,
// and migrates group by group. A group that aborts (deadlock victim —
// migrations are the youngest transactions, so they lose every tie) is
// skipped this round; its page stays a suspect and is replanned later.
func (r *recluster) runRound() (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.s

	sn := s.heat.Snapshot()
	view := s.relocs.view()
	groups := obs.PlanMoves(sn, obs.PlanOptions{
		MaxMoves:    s.opts.ReclusterMaxMoves,
		UserPages:   int32(s.userPages),
		ObjsPerPage: s.store.ObjsPerPage(),
		// Already-migrated slots must not eat the round's budget: their heat
		// evidence outlives the move, and replanning them would stall paced
		// rounds before partially-split pages finish.
		Exclude: func(page int32, slot uint16) bool {
			_, gone := view.lookup(core.ObjID{Page: core.PageID(page), Slot: slot})
			return gone
		},
	})
	if len(groups) == 0 {
		return 0, nil
	}

	moved := 0
	split := make(map[int32]bool)
	for _, g := range groups {
		n, err := r.migrateGroup(g)
		moved += n
		if n > 0 {
			split[g.Page] = true
		}
		if terminal(err) {
			s.metrics.reclusterPagesSplit.Add(int64(len(split)))
			return moved, err
		}
	}
	s.metrics.reclusterPagesSplit.Add(int64(len(split)))
	return moved, nil
}

// migrateGroup moves one writer's exclusive slots off one suspect page:
//
//  1. fence the source addresses, so new user requests bounce-and-retry
//     instead of queueing behind the migration's lock requests (FIFO
//     grant order would otherwise let the queue grow under the fence),
//  2. run one system transaction that rewrites each source object in
//     place (taking its write lock and driving the normal callback
//     invalidation) and writes the value to its spare destination,
//  3. commit with the relocation entries attached: the server installs
//     the images, publishes the relocations, and lifts the fences — all
//     under the write set's shard locks, atomically for the front door.
//
// Any failure aborts the transaction and lifts the fences; the objects
// stay where they were and the page is replanned from fresher heat.
func (r *recluster) migrateGroup(g obs.MoveGroup) (int, error) {
	s := r.s
	view := s.relocs.view()
	opp := s.store.ObjsPerPage()

	type move struct{ from, to core.ObjID }
	var moves []move
	for _, slot := range g.Slots {
		if int(slot) >= opp {
			continue
		}
		from := core.ObjID{Page: core.PageID(g.Page), Slot: slot}
		if _, gone := view.lookup(from); gone {
			continue // already migrated; stale evidence
		}
		to, ok := r.cur.alloc(g.Writer)
		if !ok {
			break // spare region exhausted; move what we can
		}
		moves = append(moves, move{from, to})
	}
	if len(moves) == 0 {
		return 0, nil
	}

	fenced := make([]core.ObjID, len(moves))
	for i, mv := range moves {
		fenced[i] = mv.from
	}
	s.fences.add(fenced)
	committed := false
	defer func() {
		if !committed {
			// The commit path lifts fences on success; every other exit
			// must lift them here or users bounce until the TTL sweep.
			s.fences.remove(fenced)
		}
	}()

	tx, err := r.cli.Begin()
	if err != nil {
		return 0, err
	}
	abort := func(err error) (int, error) {
		tx.Abort()
		return 0, err
	}
	relocs := make([]core.RelocEntry, 0, len(moves))
	for _, mv := range moves {
		// Rewriting the source in place takes its write lock (calling back
		// every cached copy) and puts the source address in the commit's
		// write set, so the relocation installs under the source's shard
		// lock; the destination write carries the bytes to their new home.
		val, err := tx.Read(mv.from)
		if err != nil {
			return abort(err)
		}
		if err := tx.Write(mv.from, val); err != nil {
			return abort(err)
		}
		if err := tx.Write(mv.to, val); err != nil {
			return abort(err)
		}
		relocs = append(relocs, core.RelocEntry{From: mv.from, To: mv.to})
	}
	tx.relocs = relocs
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	committed = true
	return len(moves), nil
}

// ReclusterStatus is the admin view of the reclustering subsystem.
type ReclusterStatus struct {
	Enabled    bool              `json:"enabled"`
	UserPages  int               `json:"user_pages"`
	SparePages int               `json:"spare_pages"`
	Relocated  int               `json:"relocated"`
	Entries    []core.RelocEntry `json:"entries,omitempty"`
}

// ReclusterStatus reports the relocation table and geometry split.
// withEntries includes the full table (admin views cap it themselves).
func (s *Server) ReclusterStatus(withEntries bool) ReclusterStatus {
	st := ReclusterStatus{UserPages: s.userPages}
	if s.relocs == nil {
		return st
	}
	st.Enabled = s.recl != nil
	st.SparePages = int(s.relocs.spare)
	st.Relocated = s.relocs.size()
	if withEntries {
		st.Entries = s.relocs.entries()
	}
	return st
}
