package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// The live system uses a redo-only write-ahead log. The server is
// no-steal with respect to the durable store (uncommitted updates are
// installed only in memory at commit processing and flushed by
// checkpoints) and no-force (commits do not flush data pages); durability
// comes from logging every committed transaction's object afterimages
// before acknowledging the commit. Recovery replays committed records in
// log order. This matches the paper's steal/no-force WAL assumption from
// the server's perspective while keeping undo unnecessary.
//
// Commit durability is group-committed: Append (under the server lock)
// only writes the frame; WaitDurable — called WITHOUT the server lock —
// makes it durable. The first waiter becomes the sync leader and fsyncs
// once for every record written so far; commits that arrive while that
// fsync is in flight write their frames and ride the NEXT sync as a
// batch (leader/follower). Because the log is sequential and `synced` is
// a prefix offset, a durable record implies every earlier record is
// durable too — so a transaction that reads another's committed-but-not-
// yet-acked data can never become durable ahead of it.

// Crash points on the log's durability boundaries (see internal/fault).
var (
	cpWALPreFrame = fault.Register("wal.append.pre-frame")
	cpWALTornTail = fault.Register("wal.append.torn-write")
	cpWALPreSync  = fault.Register("wal.append.pre-sync")
	cpWALTruncate = fault.Register("wal.truncate.pre")
)

// errWALCrashed is the sticky error waiters see after a fail-stop crash
// discarded the unsynced tail.
var errWALCrashed = errors.New("live: WAL crashed")

// adaptiveLinger is how long the sync leader waits for followers when
// group commit is starved (see shouldLinger). A few CPU-bound commit
// round-trips fit in this window, which is enough to seed a batch; from
// there batching is self-reinforcing (a bigger batch means a longer
// fsync, which collects an even bigger batch behind it).
const adaptiveLinger = 200 * time.Microsecond

// SetDemand updates the concurrency hint (see the demand field).
func (w *WAL) SetDemand(n int) { w.demand.Store(int32(n)) }

// walRecord is one logged transaction.
type walRecord struct {
	Txn    core.TxnID
	Client core.ClientID
	Objs   []core.ObjID
	Images [][]byte
	Commit bool // always true today; reserved for future undo records
}

// WAL is an append-only redo log with length+CRC framing and group
// commit.
type WAL struct {
	f *os.File

	// SyncOnCommit forces commits to wait for an fsync (durable but slow;
	// tests turn it off). Set before serving; not data-race guarded.
	SyncOnCommit bool
	// GroupCommitWindow, when > 0, makes the sync leader linger that long
	// before fsyncing so more followers can join the batch. 0 selects the
	// adaptive policy: linger adaptiveLinger when the demand hint says
	// other sessions could commit concurrently, sync immediately
	// otherwise — so a lone committer keeps one-fsync latency.
	GroupCommitWindow time.Duration

	// demand is the host's concurrency hint (the live server keeps it at
	// its session count). Group commit without a linger is bistable: a
	// solo fsync is fast, which shrinks the window in which other commits
	// can append behind it, which keeps every fsync solo — the system
	// locks into one fsync per commit even with dozens of committers.
	// Lingering only when demand > 1 breaks that feedback loop without
	// taxing single-session latency.
	demand atomic.Int32

	// mu guards the offsets and group-commit state below. Append and
	// Truncate additionally run under the server lock; WaitDurable does
	// not (that is the point of group commit).
	mu   sync.Mutex
	cond *sync.Cond
	off  int64
	// synced is the offset known to be durable (fsynced). A simulated
	// crash discards everything past it, modeling lost page-cache writes.
	synced int64
	// gen counts truncations; a ticket from an older generation is
	// durable by definition (truncation follows a store flush covering
	// every installed update).
	gen int64
	// syncing marks an fsync in flight (its owner is the leader).
	syncing bool
	// syncErr is sticky: once an fsync fails (or a crash is injected) no
	// later commit may be acknowledged.
	syncErr error
	// recsSinceSync counts records appended since the last sync target
	// snapshot — the next batch's size.
	recsSinceSync int
	// batchEMA is an exponential moving average of recent batch sizes in
	// 1/16ths (fixed point), used by shouldLinger to detect starvation.
	batchEMA int

	// metrics, when set, observes append/fsync latency and log growth.
	metrics *serverMetrics
}

// Len returns the current log length in bytes (the append offset).
func (w *WAL) Len() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// OpenWAL opens (or creates) the log at path, positioned for appending
// after the last valid record. It returns the records found by that scan
// so recovery can replay them without re-reading the file.
func OpenWAL(path string) (*WAL, []*walRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, SyncOnCommit: true}
	w.cond = sync.NewCond(&w.mu)
	recs, off, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w.off = off
	w.synced = off // on-disk bytes are durable by definition
	return w, recs, nil
}

// encodeWALFrame encodes rec into a complete length+CRC frame. It takes
// no locks, so the server encodes commit bodies before entering its
// critical section — only the offset assignment and the frame write
// (appendFrame) remain serialized.
func encodeWALFrame(rec *walRecord) []byte {
	bp := encBufPool.Get().(*[]byte)
	body := appendWALRecord((*bp)[:0], rec)
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	*bp = body
	encBufPool.Put(bp)
	return frame
}

// append encodes and writes one committed transaction's frame without
// syncing — the convenience path (tests, tools). The server's commit path
// calls encodeWALFrame off-lock and appendFrame under its lock.
func (w *WAL) append(rec *walRecord) (ticket, gen int64, err error) {
	return w.appendFrame(encodeWALFrame(rec))
}

// appendFrame writes a pre-encoded frame without syncing. The returned
// (ticket, gen) identify the durability point to wait on. Appends from
// different sessions serialize on w.mu (the sharded server no longer
// wraps them in one global lock); the log stays a single sequencer.
func (w *WAL) appendFrame(frame []byte) (ticket, gen int64, err error) {
	if err := cpWALPreFrame.Check(); err != nil {
		return 0, 0, err
	}
	start := time.Now()

	w.mu.Lock()
	defer w.mu.Unlock()
	// A failed or torn append poisons the log. Without this, a concurrent
	// committer could append over the torn tail left by a "dead" process
	// and get its commit acknowledged, while recovery — correctly —
	// stops at the tear and never replays it.
	if w.syncErr != nil {
		return 0, 0, w.syncErr
	}
	if err := cpWALTornTail.Check(); err != nil {
		// Simulate a torn write: half the frame reaches the file before
		// the process dies. Recovery must stop at the previous record.
		w.f.WriteAt(frame[:len(frame)/2], w.off)
		w.syncErr = err
		w.cond.Broadcast()
		return 0, 0, err
	}
	if _, err := w.f.WriteAt(frame, w.off); err != nil {
		w.syncErr = err
		w.cond.Broadcast()
		return 0, 0, err
	}
	w.off += int64(len(frame))
	w.recsSinceSync++
	if w.metrics != nil {
		w.metrics.walAppendNs.Observe(time.Since(start).Nanoseconds())
		w.metrics.walBytes.Add(int64(len(frame)))
		w.metrics.walRecords.Inc()
	}
	return w.off, w.gen, nil
}

// WaitDurable blocks until the record ending at ticket (from append) is
// durable: fsynced, covered by a newer generation (truncated after a
// store flush), or — with SyncOnCommit off — immediately. The first
// waiter leads the fsync; arrivals during an in-flight fsync ride the
// next one as a batch. Must NOT be called with the server lock held.
func (w *WAL) WaitDurable(ticket, gen int64) error {
	// The pre-sync crash point models dying between the frame write and
	// its fsync; checked per commit (as the old inline path did), whether
	// or not this commit ends up leading the sync.
	if err := cpWALPreSync.Check(); err != nil {
		return err
	}
	if !w.SyncOnCommit {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.gen != gen || w.synced >= ticket {
			return nil
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.leadSync()
	}
}

// leadSync runs one group fsync as the leader. Called with w.mu held;
// releases it around the sleep/fsync and reacquires before returning.
// shouldLinger reports whether the sync leader should wait for followers
// before fsyncing (mu held). Lingering is a trade: it grows the batch but
// stalls the disk, collapsing the append/fsync pipeline into lockstep —
// at moderate concurrency the pipeline alone batches well and the linger
// only hurts. So linger only when batching is starved relative to the
// offered concurrency: the recent average batch has captured less than a
// quarter of the sessions that could commit together. That is exactly the
// degenerate regime group commit falls into on its own (a solo fsync is
// fast, so nobody appends behind it, so the next fsync is solo too); one
// lingered sync re-seeds the batch and the check switches back off.
func (w *WAL) shouldLinger() bool {
	d := int(w.demand.Load())
	return d > 1 && w.batchEMA < d*16/4
}

func (w *WAL) leadSync() {
	w.syncing = true
	linger := w.GroupCommitWindow
	if linger == 0 && w.shouldLinger() {
		linger = adaptiveLinger
	}
	if linger > 0 {
		// Linger so concurrent committers can append into this batch.
		w.mu.Unlock()
		time.Sleep(linger)
		w.mu.Lock()
	}
	target, batch, tgen := w.off, w.recsSinceSync, w.gen
	w.recsSinceSync = 0
	if w.batchEMA == 0 {
		w.batchEMA = batch * 16
	} else {
		w.batchEMA += (batch*16 - w.batchEMA) / 4
	}
	w.mu.Unlock()

	start := time.Now()
	err := w.f.Sync()
	dur := time.Since(start)

	w.mu.Lock()
	w.syncing = false
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = err
		}
	} else {
		if w.gen == tgen && target > w.synced {
			w.synced = target
		}
		if w.metrics != nil {
			w.metrics.walFsyncNs.Observe(dur.Nanoseconds())
			w.metrics.walSyncs.Inc()
			if batch > 0 {
				w.metrics.walGroupSize.Observe(int64(batch))
			}
		}
	}
	w.cond.Broadcast()
}

// Append logs one committed transaction's afterimages and (with
// SyncOnCommit) waits for durability — the non-grouped convenience used
// by tests and tools; the server's commit path calls append/WaitDurable
// separately so the fsync wait happens outside the server lock.
func (w *WAL) Append(rec *walRecord) error {
	ticket, gen, err := w.append(rec)
	if err != nil {
		return err
	}
	return w.WaitDurable(ticket, gen)
}

// Truncate discards the log (after a checkpoint made it redundant).
// Every in-flight committer from the old generation is released as
// durable: truncation only happens after a store flush that covers all
// installed updates.
func (w *WAL) Truncate() error {
	if err := cpWALTruncate.Check(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.off = 0
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = 0
	w.gen++
	w.recsSinceSync = 0
	w.cond.Broadcast()
	return nil
}

// Close closes the log file.
func (w *WAL) Close() error { return w.f.Close() }

// crash closes the log as a dying process would: bytes written but never
// fsynced are discarded (the OS page cache died with the machine), and
// every waiting committer is released with an error so no crash-raced
// commit gets acknowledged.
func (w *WAL) crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f.Truncate(w.synced)
	w.f.Close()
	if w.syncErr == nil {
		w.syncErr = errWALCrashed
	}
	w.cond.Broadcast()
}

// scanWAL reads every valid record from the start of the file, stopping at
// the first torn/invalid frame (crash tail). Bodies are binary
// (walFormatBinary, codec.go); bodies from logs written before the binary
// codec fall back to gob — the one-shot migration read path: recovery
// replays them, and the post-recovery truncation retires the old format.
func scanWAL(f *os.File) ([]*walRecord, int64, error) {
	var recs []*walRecord
	var off int64
	hdr := make([]byte, 8)
	for {
		if _, err := f.ReadAt(hdr, off); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, off, nil
			}
			return nil, 0, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > 1<<28 {
			return recs, off, nil // torn or garbage tail
		}
		body := make([]byte, n)
		if _, err := f.ReadAt(body, off+8); err != nil {
			return recs, off, nil // torn tail
		}
		if crc32.ChecksumIEEE(body) != want {
			return recs, off, nil
		}
		rec, err := decodeWALRecord(body)
		if err != nil {
			// Legacy gob body (pre-binary-codec log): migrate on read.
			var grec walRecord
			if gob.NewDecoder(bytes.NewReader(body)).Decode(&grec) != nil {
				return recs, off, nil
			}
			rec = &grec
		}
		recs = append(recs, rec)
		off += int64(8 + n)
	}
}

// replayRecords applies committed records (in log order) to the store and
// flushes it. Replay is idempotent: records are object afterimages, so
// applying them over an already-recovered store rewrites the same bytes.
func replayRecords(store objectStore, recs []*walRecord) (int, error) {
	for _, rec := range recs {
		if !rec.Commit {
			continue
		}
		if len(rec.Objs) != len(rec.Images) {
			return 0, fmt.Errorf("live: malformed WAL record for txn %d", rec.Txn)
		}
		for i, o := range rec.Objs {
			if err := store.WriteObj(o, rec.Images[i]); err != nil {
				return 0, err
			}
		}
	}
	if err := store.Flush(); err != nil {
		return 0, err
	}
	return len(recs), nil
}

// Recover replays the committed records in the log at walPath against the
// store. It shares one scan with the WAL it returns open (positioned for
// appending); callers own closing it. Missing log: fresh empty WAL.
func Recover(store objectStore, walPath string) (*WAL, int, error) {
	w, recs, err := OpenWAL(walPath)
	if err != nil {
		return nil, 0, err
	}
	n, err := replayRecords(store, recs)
	if err != nil {
		w.Close()
		return nil, 0, err
	}
	return w, n, nil
}
