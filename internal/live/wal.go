package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// The live system uses a redo-only write-ahead log. The server is
// no-steal with respect to the durable store (uncommitted updates are
// installed only in memory at commit processing and flushed by
// checkpoints) and no-force (commits do not flush data pages); durability
// comes from logging every committed transaction's object afterimages
// before acknowledging the commit. Recovery replays committed records in
// log order. This matches the paper's steal/no-force WAL assumption from
// the server's perspective while keeping undo unnecessary.

// Crash points on the log's durability boundaries (see internal/fault).
var (
	cpWALPreFrame = fault.Register("wal.append.pre-frame")
	cpWALTornTail = fault.Register("wal.append.torn-write")
	cpWALPreSync  = fault.Register("wal.append.pre-sync")
	cpWALTruncate = fault.Register("wal.truncate.pre")
)

// walRecord is one logged transaction.
type walRecord struct {
	Txn    core.TxnID
	Client core.ClientID
	Objs   []core.ObjID
	Images [][]byte
	Commit bool // always true today; reserved for future undo records
}

// WAL is an append-only redo log with length+CRC framing.
type WAL struct {
	f   *os.File
	off int64
	// synced is the offset known to be durable (fsynced). A simulated
	// crash discards everything past it, modeling lost page-cache writes.
	synced int64
	// SyncOnCommit forces an fsync per appended record (durable but slow;
	// tests turn it off).
	SyncOnCommit bool
	// metrics, when set, observes append/fsync latency and log growth.
	metrics *serverMetrics
}

// Len returns the current log length in bytes (the append offset).
func (w *WAL) Len() int64 { return w.off }

// OpenWAL opens (or creates) the log at path, positioned for appending
// after the last valid record. It returns the records found by that scan
// so recovery can replay them without re-reading the file.
func OpenWAL(path string) (*WAL, []*walRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, SyncOnCommit: true}
	recs, off, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	w.off = off
	w.synced = off // on-disk bytes are durable by definition
	return w, recs, nil
}

// Append logs one committed transaction's afterimages.
func (w *WAL) Append(rec *walRecord) error {
	if err := cpWALPreFrame.Check(); err != nil {
		return err
	}
	start := time.Now()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return err
	}
	frame := make([]byte, 8+body.Len())
	binary.LittleEndian.PutUint32(frame[0:], uint32(body.Len()))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body.Bytes()))
	copy(frame[8:], body.Bytes())
	if err := cpWALTornTail.Check(); err != nil {
		// Simulate a torn write: half the frame reaches the file before
		// the process dies. Recovery must stop at the previous record.
		w.f.WriteAt(frame[:len(frame)/2], w.off)
		return err
	}
	if _, err := w.f.WriteAt(frame, w.off); err != nil {
		return err
	}
	w.off += int64(len(frame))
	if w.metrics != nil {
		w.metrics.walAppendNs.Observe(time.Since(start).Nanoseconds())
		w.metrics.walBytes.Add(int64(len(frame)))
		w.metrics.walRecords.Inc()
	}
	if err := cpWALPreSync.Check(); err != nil {
		return err
	}
	if w.SyncOnCommit {
		syncStart := time.Now()
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.synced = w.off
		if w.metrics != nil {
			w.metrics.walFsyncNs.Observe(time.Since(syncStart).Nanoseconds())
		}
	}
	return nil
}

// Truncate discards the log (after a checkpoint made it redundant).
func (w *WAL) Truncate() error {
	if err := cpWALTruncate.Check(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.off = 0
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = 0
	return nil
}

// Close closes the log file.
func (w *WAL) Close() error { return w.f.Close() }

// crash closes the log as a dying process would: bytes written but never
// fsynced are discarded (the OS page cache died with the machine).
func (w *WAL) crash() {
	w.f.Truncate(w.synced)
	w.f.Close()
}

// scanWAL reads every valid record from the start of the file, stopping at
// the first torn/invalid frame (crash tail).
func scanWAL(f *os.File) ([]*walRecord, int64, error) {
	var recs []*walRecord
	var off int64
	hdr := make([]byte, 8)
	for {
		if _, err := f.ReadAt(hdr, off); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, off, nil
			}
			return nil, 0, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > 1<<28 {
			return recs, off, nil // torn or garbage tail
		}
		body := make([]byte, n)
		if _, err := f.ReadAt(body, off+8); err != nil {
			return recs, off, nil // torn tail
		}
		if crc32.ChecksumIEEE(body) != want {
			return recs, off, nil
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return recs, off, nil
		}
		recs = append(recs, &rec)
		off += int64(8 + n)
	}
}

// replayRecords applies committed records (in log order) to the store and
// flushes it. Replay is idempotent: records are object afterimages, so
// applying them over an already-recovered store rewrites the same bytes.
func replayRecords(store objectStore, recs []*walRecord) (int, error) {
	for _, rec := range recs {
		if !rec.Commit {
			continue
		}
		if len(rec.Objs) != len(rec.Images) {
			return 0, fmt.Errorf("live: malformed WAL record for txn %d", rec.Txn)
		}
		for i, o := range rec.Objs {
			if err := store.WriteObj(o, rec.Images[i]); err != nil {
				return 0, err
			}
		}
	}
	if err := store.Flush(); err != nil {
		return 0, err
	}
	return len(recs), nil
}

// Recover replays the committed records in the log at walPath against the
// store. It shares one scan with the WAL it returns open (positioned for
// appending); callers own closing it. Missing log: fresh empty WAL.
func Recover(store objectStore, walPath string) (*WAL, int, error) {
	w, recs, err := OpenWAL(walPath)
	if err != nil {
		return nil, 0, err
	}
	n, err := replayRecords(store, recs)
	if err != nil {
		w.Close()
		return nil, 0, err
	}
	return w, n, nil
}
