package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// The live system uses a redo-only write-ahead log. The server is
// no-steal with respect to the durable store (uncommitted updates are
// installed only in memory at commit processing and flushed by
// checkpoints) and no-force (commits do not flush data pages); durability
// comes from logging every committed transaction's object afterimages
// before acknowledging the commit. Recovery replays committed records in
// log order. This matches the paper's steal/no-force WAL assumption from
// the server's perspective while keeping undo unnecessary.
//
// Commit durability is group-committed: Append (under the server lock)
// only writes the frame; WaitDurable — called WITHOUT the server lock —
// makes it durable. The first waiter becomes the sync leader and fsyncs
// once for every record written so far; commits that arrive while that
// fsync is in flight write their frames and ride the NEXT sync as a
// batch (leader/follower). Because the log is sequential and `synced` is
// a prefix offset, a durable record implies every earlier record is
// durable too — so a transaction that reads another's committed-but-not-
// yet-acked data can never become durable ahead of it.

// Crash points on the log's durability boundaries (see internal/fault).
// cpRecoverMidReplay fires inside replay itself: recovery is the one code
// path that must survive its own crash (the double-crash suites arm it
// and recover twice).
var (
	cpWALPreFrame      = fault.Register("wal.append.pre-frame")
	cpWALTornTail      = fault.Register("wal.append.torn-write")
	cpWALPreSync       = fault.Register("wal.append.pre-sync")
	cpWALTruncate      = fault.Register("wal.truncate.pre")
	cpWALDirSync       = fault.Register("wal.truncate.pre-dirsync")
	cpRecoverMidReplay = fault.Register("recover.mid-replay")
)

// errWALCrashed is the sticky error waiters see after a fail-stop crash
// discarded the unsynced tail.
var errWALCrashed = errors.New("live: WAL crashed")

// adaptiveLinger is how long the sync leader waits for followers when
// group commit is starved (see shouldLinger). A few CPU-bound commit
// round-trips fit in this window, which is enough to seed a batch; from
// there batching is self-reinforcing (a bigger batch means a longer
// fsync, which collects an even bigger batch behind it).
const adaptiveLinger = 200 * time.Microsecond

// SetDemand updates the concurrency hint (see the demand field).
func (w *WAL) SetDemand(n int) { w.demand.Store(int32(n)) }

// walRecord is one logged transaction.
type walRecord struct {
	Txn    core.TxnID
	Client core.ClientID
	Objs   []core.ObjID
	Images [][]byte
	Commit bool // always true today; reserved for future undo records
	// Relocs, on a reclustering migration commit, records the old->new
	// placements this transaction installs. Recovery replays them into the
	// relocation table serially in log order (chain compression makes the
	// apply order significant), after the image replay.
	Relocs []core.RelocEntry
}

// WAL is an append-only redo log with length+CRC framing and group
// commit.
type WAL struct {
	f    *os.File
	path string

	// SyncOnCommit forces commits to wait for an fsync (durable but slow;
	// tests turn it off). Set before serving; not data-race guarded.
	SyncOnCommit bool
	// GroupCommitWindow, when > 0, makes the sync leader linger that long
	// before fsyncing so more followers can join the batch. 0 selects the
	// adaptive policy: linger adaptiveLinger when the demand hint says
	// other sessions could commit concurrently, sync immediately
	// otherwise — so a lone committer keeps one-fsync latency.
	GroupCommitWindow time.Duration

	// demand is the host's concurrency hint (the live server keeps it at
	// its session count). Group commit without a linger is bistable: a
	// solo fsync is fast, which shrinks the window in which other commits
	// can append behind it, which keeps every fsync solo — the system
	// locks into one fsync per commit even with dozens of committers.
	// Lingering only when demand > 1 breaks that feedback loop without
	// taxing single-session latency.
	demand atomic.Int32

	// mu guards the offsets and group-commit state below. Append and
	// Truncate additionally run under the server lock; WaitDurable does
	// not (that is the point of group commit).
	mu   sync.Mutex
	cond *sync.Cond
	// Offsets are LOGICAL: monotonically increasing over the log's whole
	// life, never reset by a prefix truncation. base is the logical offset
	// of the current file's first byte — TruncatePrefix advances it instead
	// of rebasing off/synced, so group-commit tickets (logical offsets)
	// issued before a checkpoint's truncation stay valid through it.
	base int64
	off  int64
	// synced is the offset known to be durable (fsynced). A simulated
	// crash discards everything past it, modeling lost page-cache writes.
	synced int64
	// gen counts truncations; a ticket from an older generation is
	// durable by definition (truncation follows a store flush covering
	// every installed update).
	gen int64
	// syncing marks an fsync in flight (its owner is the leader).
	syncing bool
	// syncErr is sticky: once an fsync fails (or a crash is injected) no
	// later commit may be acknowledged.
	syncErr error
	// recsSinceSync counts records appended since the last sync target
	// snapshot — the next batch's size.
	recsSinceSync int
	// batchEMA is an exponential moving average of recent batch sizes in
	// 1/16ths (fixed point), used by shouldLinger to detect starvation.
	batchEMA int

	// metrics, when set, observes append/fsync latency and log growth.
	metrics *serverMetrics
}

// Len returns the bytes currently in the log file (the physical length,
// which a prefix truncation shrinks even though logical offsets march on).
func (w *WAL) Len() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off - w.base
}

// tail returns the logical append offset — the watermark candidate for a
// checkpoint: every record appended so far ends at or below it.
func (w *WAL) tail() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// OpenWAL opens (or creates) the log at path, positioned for appending
// after the last valid record. It returns the scan (records plus the
// checkpoint watermark) so recovery can replay without re-reading the
// file. Any bytes past the last valid frame — a torn tail or a corrupt
// frame — are physically cut off before the first append, so stale
// garbage can never sit under (and re-corrupt) future frames.
func OpenWAL(path string) (*WAL, *walScan, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, SyncOnCommit: true}
	w.cond = sync.NewCond(&w.mu)
	scan, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > scan.off {
		if err := f.Truncate(scan.off); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	w.off = scan.off
	w.synced = scan.off // on-disk bytes are durable by definition
	return w, scan, nil
}

// encodeWALFrame encodes rec into a complete length+CRC frame. It takes
// no locks, so the server encodes commit bodies before entering its
// critical section — only the offset assignment and the frame write
// (appendFrame) remain serialized.
func encodeWALFrame(rec *walRecord) []byte {
	bp := encBufPool.Get().(*[]byte)
	body := appendWALRecord((*bp)[:0], rec)
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	*bp = body
	encBufPool.Put(bp)
	return frame
}

// append encodes and writes one committed transaction's frame without
// syncing — the convenience path (tests, tools). The server's commit path
// calls encodeWALFrame off-lock and appendFrame under its lock.
func (w *WAL) append(rec *walRecord) (ticket, gen int64, err error) {
	return w.appendFrame(encodeWALFrame(rec))
}

// appendFrame writes a pre-encoded frame without syncing. The returned
// (ticket, gen) identify the durability point to wait on. Appends from
// different sessions serialize on w.mu (the sharded server no longer
// wraps them in one global lock); the log stays a single sequencer.
func (w *WAL) appendFrame(frame []byte) (ticket, gen int64, err error) {
	if err := cpWALPreFrame.Check(); err != nil {
		return 0, 0, err
	}
	start := time.Now()

	w.mu.Lock()
	defer w.mu.Unlock()
	// A failed or torn append poisons the log. Without this, a concurrent
	// committer could append over the torn tail left by a "dead" process
	// and get its commit acknowledged, while recovery — correctly —
	// stops at the tear and never replays it.
	if w.syncErr != nil {
		return 0, 0, w.syncErr
	}
	if err := cpWALTornTail.Check(); err != nil {
		// Simulate a torn write: half the frame reaches the file before
		// the process dies. Recovery must stop at the previous record.
		w.f.WriteAt(frame[:len(frame)/2], w.off-w.base)
		w.syncErr = err
		w.cond.Broadcast()
		return 0, 0, err
	}
	if _, err := w.f.WriteAt(frame, w.off-w.base); err != nil {
		w.syncErr = err
		w.cond.Broadcast()
		return 0, 0, err
	}
	w.off += int64(len(frame))
	w.recsSinceSync++
	if w.metrics != nil {
		w.metrics.walAppendNs.Observe(time.Since(start).Nanoseconds())
		w.metrics.walBytes.Add(int64(len(frame)))
		w.metrics.walRecords.Inc()
	}
	return w.off, w.gen, nil
}

// WaitDurable blocks until the record ending at ticket (from append) is
// durable: fsynced, covered by a newer generation (truncated after a
// store flush), or — with SyncOnCommit off — immediately. The first
// waiter leads the fsync; arrivals during an in-flight fsync ride the
// next one as a batch. Must NOT be called with the server lock held.
func (w *WAL) WaitDurable(ticket, gen int64) error {
	// The pre-sync crash point models dying between the frame write and
	// its fsync; checked per commit (as the old inline path did), whether
	// or not this commit ends up leading the sync.
	if err := cpWALPreSync.Check(); err != nil {
		return err
	}
	if !w.SyncOnCommit {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.gen != gen || w.synced >= ticket {
			return nil
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.leadSync()
	}
}

// leadSync runs one group fsync as the leader. Called with w.mu held;
// releases it around the sleep/fsync and reacquires before returning.
// shouldLinger reports whether the sync leader should wait for followers
// before fsyncing (mu held). Lingering is a trade: it grows the batch but
// stalls the disk, collapsing the append/fsync pipeline into lockstep —
// at moderate concurrency the pipeline alone batches well and the linger
// only hurts. So linger only when batching is starved relative to the
// offered concurrency: the recent average batch has captured less than a
// quarter of the sessions that could commit together. That is exactly the
// degenerate regime group commit falls into on its own (a solo fsync is
// fast, so nobody appends behind it, so the next fsync is solo too); one
// lingered sync re-seeds the batch and the check switches back off.
func (w *WAL) shouldLinger() bool {
	d := int(w.demand.Load())
	return d > 1 && w.batchEMA < d*16/4
}

func (w *WAL) leadSync() {
	w.syncing = true
	linger := w.GroupCommitWindow
	if linger == 0 && w.shouldLinger() {
		linger = adaptiveLinger
	}
	if linger > 0 {
		// Linger so concurrent committers can append into this batch.
		w.mu.Unlock()
		time.Sleep(linger)
		w.mu.Lock()
	}
	target, batch, tgen := w.off, w.recsSinceSync, w.gen
	// Capture the handle under mu: TruncatePrefix swaps w.f (it waits for
	// syncing to clear first, so the swap never races this sync — but the
	// pointer read must still happen before mu is released).
	f := w.f
	w.recsSinceSync = 0
	if w.batchEMA == 0 {
		w.batchEMA = batch * 16
	} else {
		w.batchEMA += (batch*16 - w.batchEMA) / 4
	}
	w.mu.Unlock()

	start := time.Now()
	err := f.Sync()
	dur := time.Since(start)

	w.mu.Lock()
	w.syncing = false
	if err != nil {
		if w.syncErr == nil {
			w.syncErr = err
		}
	} else {
		if w.gen == tgen && target > w.synced {
			w.synced = target
		}
		if w.metrics != nil {
			w.metrics.walFsyncNs.Observe(dur.Nanoseconds())
			w.metrics.walSyncs.Inc()
			if batch > 0 {
				w.metrics.walGroupSize.Observe(int64(batch))
			}
		}
	}
	w.cond.Broadcast()
}

// ForceTo makes the log durable through the logical offset limit — the
// write-ahead half of the checkpoint's WAL rule: no page image may reach
// the store file before the log records covering its installs are on
// disk. Unlike WaitDurable it ignores SyncOnCommit (commit acking policy
// and the WAL rule are separate contracts: a checkpoint that persists
// pages must persist their covering records even when commits do not
// wait for fsyncs) and takes no ticket generation: a full truncation
// only follows a store flush covering every install, so a limit from an
// older generation is already covered.
func (w *WAL) ForceTo(limit int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	gen := w.gen
	for {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.gen != gen || w.synced >= limit {
			return nil
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.leadSync()
	}
}

// Append logs one committed transaction's afterimages and (with
// SyncOnCommit) waits for durability — the non-grouped convenience used
// by tests and tools; the server's commit path calls append/WaitDurable
// separately so the fsync wait happens outside the server lock.
func (w *WAL) Append(rec *walRecord) error {
	ticket, gen, err := w.append(rec)
	if err != nil {
		return err
	}
	return w.WaitDurable(ticket, gen)
}

// appendCheckpoint logs a checkpoint watermark frame: every record frame
// ending at or below covered (a logical offset from tail()) has been
// flushed to the store, so recovery may skip it. The body encodes the
// DISTANCE from this frame's start back to covered, not an absolute
// offset — a later prefix truncation shifts the frame and the region it
// covers by the same amount, so a scan recomputes the same boundary in
// file offsets no matter how much prefix has been cut. The returned
// (ticket, gen) feed WaitDurable like any append.
func (w *WAL) appendCheckpoint(covered int64) (ticket, gen int64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.syncErr != nil {
		return 0, 0, w.syncErr
	}
	if covered < w.base {
		covered = w.base
	}
	if covered > w.off {
		covered = w.off
	}
	body := appendCheckpointBody(nil, w.off-covered)
	frame := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(body))
	copy(frame[8:], body)
	if _, err := w.f.WriteAt(frame, w.off-w.base); err != nil {
		w.syncErr = err
		w.cond.Broadcast()
		return 0, 0, err
	}
	w.off += int64(len(frame))
	if w.metrics != nil {
		w.metrics.walBytes.Add(int64(len(frame)))
	}
	return w.off, w.gen, nil
}

// waitNotSyncing parks until no group fsync is in flight (mu held). The
// truncation paths replace or shrink w.f; doing that under a concurrent
// leader's fsync would either race the handle or feed the leader an error
// that poisons the log.
func (w *WAL) waitNotSyncing() {
	for w.syncing {
		w.cond.Wait()
	}
}

// Truncate discards the whole log (after a checkpoint or clean shutdown
// made it redundant). Every in-flight committer from the old generation
// is released as durable: truncation only happens after a store flush
// that covers all installed updates. The file shrinks in place — no
// rename, so no directory fsync is needed (contrast TruncatePrefix).
func (w *WAL) Truncate() error {
	if err := cpWALTruncate.Check(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waitNotSyncing()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.off = 0
	w.base = 0
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.synced = 0
	w.gen++
	w.recsSinceSync = 0
	w.cond.Broadcast()
	return nil
}

// TruncatePrefix discards the log prefix below the logical offset limit —
// the watermark a completed checkpoint flushed. The surviving tail is
// copied into a fresh file that replaces the log by rename; the new file
// is fsynced before the rename and the directory after it, so a crash at
// any step leaves either the old complete log or the new complete one on
// disk, never a half-cut file. Logical offsets are untouched (base moves
// instead), so group-commit tickets issued before the truncation stay
// valid, and since everything in the new file is fsynced the whole log
// comes out durable (synced catches up to off).
func (w *WAL) TruncatePrefix(limit int64) error {
	if err := cpWALTruncate.Check(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waitNotSyncing()
	if w.syncErr != nil {
		return w.syncErr
	}
	if limit > w.off {
		limit = w.off
	}
	if limit <= w.base {
		return nil // nothing below the watermark survives in this file
	}
	tail := make([]byte, w.off-limit)
	if _, err := w.f.ReadAt(tail, limit-w.base); err != nil && !(errors.Is(err, io.EOF) && len(tail) == 0) {
		return err
	}
	tmpPath := w.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if len(tail) > 0 {
		if _, err := tmp.WriteAt(tail, 0); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		return fail(err)
	}
	w.f.Close()
	w.f = tmp
	w.base = limit
	// The rename is not durable until its directory entry is fsynced:
	// until then a crash can resurrect the old inode, and any commit acked
	// against the new one would be silently lost with it. So the durability
	// bookkeeping (synced catching up to off — everything in the new file
	// was fsynced before the rename) waits for the directory fsync, and a
	// failure there is fatal to the log — the same fail-stop policy as an
	// append or fsync error — not a returnable hiccup the server could
	// keep committing past.
	derr := cpWALDirSync.Check()
	if derr == nil {
		derr = syncDir(filepath.Dir(w.path))
	}
	if derr != nil {
		if w.syncErr == nil {
			w.syncErr = derr
		}
		w.cond.Broadcast()
		return derr
	}
	if w.off > w.synced {
		w.synced = w.off
	}
	w.cond.Broadcast()
	return nil
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close fsyncs and closes the log. Without the sync, a clean shutdown
// could leave tail records only in the page cache — records a crash right
// after would silently drop, making "clean shutdown then restart" and
// "crash then recover" diverge.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil && w.syncErr == nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// crash closes the log as a dying process would: bytes written but never
// fsynced are discarded (the OS page cache died with the machine), and
// every waiting committer is released with an error so no crash-raced
// commit gets acknowledged.
func (w *WAL) crash() {
	w.mu.Lock()
	defer w.mu.Unlock()
	// A prefix truncation that failed its directory fsync leaves base past
	// synced (the catch-up waits for the fsync). The new file's content was
	// fsynced before the rename, so none of it is losable — truncate only
	// when synced still points inside this file.
	if keep := w.synced - w.base; keep >= 0 {
		w.f.Truncate(keep)
	}
	w.f.Close()
	if w.syncErr == nil {
		w.syncErr = errWALCrashed
	}
	w.cond.Broadcast()
}

// walScan is the result of one pass over the log: the committed records,
// where each one's frame ends, and the checkpoint watermark — the file
// prefix whose effects a completed checkpoint already flushed to the
// store (0 when no watermark frame survived).
type walScan struct {
	recs    []*walRecord
	ends    []int64 // ends[i]: file offset one past recs[i]'s frame
	covered int64   // records ending at or below this offset are in the store
	off     int64   // append offset: end of the last valid frame
}

// scanWAL reads every valid frame from the start of the file, stopping at
// the first torn/invalid one (crash tail): a bad length, a short body, or
// a CRC mismatch all end the scan without poisoning the valid prefix —
// a flipped bit in frame k yields exactly frames 0..k-1. Record bodies
// are binary (walFormatBinary, codec.go); bodies from logs written before
// the binary codec fall back to gob — the one-shot migration read path:
// recovery replays them, and the post-recovery truncation retires the old
// format. Checkpoint watermark frames (walFormatCheckpoint) advance
// covered instead of yielding a record.
func scanWAL(f *os.File) (*walScan, error) {
	scan := &walScan{}
	hdr := make([]byte, 8)
	for {
		if _, err := f.ReadAt(hdr, scan.off); err != nil {
			if errors.Is(err, io.EOF) {
				return scan, nil
			}
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || n > 1<<28 {
			return scan, nil // torn or garbage tail
		}
		body := make([]byte, n)
		if _, err := f.ReadAt(body, scan.off+8); err != nil {
			return scan, nil // torn tail
		}
		if crc32.ChecksumIEEE(body) != want {
			return scan, nil
		}
		if body[0] == walFormatCheckpoint {
			delta, ok := decodeCheckpointBody(body)
			if !ok {
				return scan, nil
			}
			if c := scan.off - delta; c > scan.covered {
				scan.covered = c
			}
			scan.off += int64(8 + n)
			continue
		}
		rec, err := decodeWALRecord(body)
		if err != nil {
			// Legacy gob body (pre-binary-codec log): migrate on read.
			var grec walRecord
			if gob.NewDecoder(bytes.NewReader(body)).Decode(&grec) != nil {
				return scan, nil
			}
			rec = &grec
		}
		scan.recs = append(scan.recs, rec)
		scan.off += int64(8 + n)
		scan.ends = append(scan.ends, scan.off)
	}
}

// RecoveryStats reports what one recovery replay did.
type RecoveryStats struct {
	Records        int   // committed records replayed
	RecordsSkipped int   // records below the checkpoint watermark (already in the store)
	PagesReplayed  int   // distinct pages that received at least one replayed image
	PagesSkipped   int   // distinct pages whose logged images were all below the watermark
	Jobs           int   // replay workers used
	ApplyNs        int64 // wall time of the image-apply + page-write phase (the part that parallelizes)
	DurationNs     int64 // total replay wall time including the final fsync
}

// replayRecords applies committed records to the store in log order and
// flushes it. Replay is idempotent: records are object afterimages, so
// applying them over an already-(partially-)recovered store rewrites the
// same bytes — which is what makes a crash DURING recovery harmless.
// Records wholly below the scan's checkpoint watermark are skipped: a
// completed checkpoint already flushed their effects (skipping is an
// optimization, not a correctness requirement, so a conservative
// watermark only costs time).
//
// With jobs > 1 and the fixed-slot store, the apply phase is partitioned
// by page hash across workers. Partitions own disjoint page sets and each
// worker applies its writes in log order, so the result is byte-identical
// to a serial replay: writes to different pages land in disjoint bytes,
// and writes to the same page are ordered by the one worker that owns it.
// The page write-back (checksum + pwrite) is partitioned the same way,
// leaving only the final fsync serial. The variable store always replays
// serially: its installs relocate objects across overflow frames, so the
// resulting layout depends on global apply order.
func replayRecords(store objectStore, scan *walScan, jobs int) (RecoveryStats, error) {
	start := time.Now()
	var st RecoveryStats

	// Partition the scan into skipped and live records up front — counts
	// must not depend on how far a failed replay got, and a malformed
	// record should abort before any write, not after half of them.
	appliedPages := make(map[core.PageID]struct{})
	skippedPages := make(map[core.PageID]struct{})
	var live []*walRecord
	for i, rec := range scan.recs {
		if !rec.Commit {
			continue
		}
		if len(rec.Objs) != len(rec.Images) {
			return st, fmt.Errorf("live: malformed WAL record for txn %d", rec.Txn)
		}
		if scan.ends[i] <= scan.covered {
			st.RecordsSkipped++
			for _, o := range rec.Objs {
				skippedPages[o.Page] = struct{}{}
			}
			continue
		}
		st.Records++
		live = append(live, rec)
		for _, o := range rec.Objs {
			appliedPages[o.Page] = struct{}{}
		}
	}
	st.PagesReplayed = len(appliedPages)
	for p := range skippedPages {
		if _, ok := appliedPages[p]; !ok {
			st.PagesSkipped++
		}
	}

	fs, fixed := store.(*Store)
	if jobs < 1 || !fixed {
		jobs = 1
	}
	st.Jobs = jobs

	applyStart := time.Now()
	var err error
	if fixed {
		if jobs == 1 {
			err = replaySerial(store, live)
			if err == nil {
				_, err = fs.flushPages(nil)
			}
		} else {
			err = replayParallel(fs, live, jobs)
		}
		st.ApplyNs = time.Since(applyStart).Nanoseconds()
		if err == nil {
			if err = cpFlushPreSync.Check(); err == nil {
				err = fs.syncFile()
			}
		}
	} else {
		err = replaySerial(store, live)
		st.ApplyNs = time.Since(applyStart).Nanoseconds()
		if err == nil {
			err = store.Flush()
		}
	}
	if err != nil {
		return st, err
	}
	st.DurationNs = time.Since(start).Nanoseconds()
	return st, nil
}

// replaySerial applies live records' images in log order.
func replaySerial(store objectStore, live []*walRecord) error {
	for _, rec := range live {
		for i, o := range rec.Objs {
			if err := cpRecoverMidReplay.Check(); err != nil {
				return err
			}
			if err := store.WriteObj(o, rec.Images[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// replayPart maps a page to its replay partition — the same multiplicative
// hash the engine shards use, reduced mod jobs (which need not be a power
// of two).
func replayPart(p core.PageID, jobs int) int {
	h := uint32(p) * 2654435761
	return int((h >> 16) % uint32(jobs))
}

// replayParallel runs the partitioned apply + page write-back (no fsync;
// the caller owns that). Each worker finishes applying its partition's
// images before writing that partition's dirty pages back, and no other
// worker touches those pages, so per-partition ordering is exactly the
// serial order.
func replayParallel(store *Store, live []*walRecord, jobs int) error {
	type write struct {
		o   core.ObjID
		img []byte
	}
	parts := make([][]write, jobs)
	for _, rec := range live {
		for i, o := range rec.Objs {
			j := replayPart(o.Page, jobs)
			parts[j] = append(parts[j], write{o, rec.Images[i]})
		}
	}
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for j := range parts {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for _, wr := range parts[j] {
				if err := cpRecoverMidReplay.Check(); err != nil {
					errs[j] = err
					return
				}
				if err := store.WriteObj(wr.o, wr.img); err != nil {
					errs[j] = err
					return
				}
			}
			_, errs[j] = store.flushPages(func(p core.PageID) bool {
				return replayPart(p, jobs) == j
			})
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Recover replays the committed records in the log at walPath against the
// store with jobs parallel workers (1 = serial). It shares one scan with
// the WAL it returns open (positioned for appending); callers own closing
// it. Missing log: fresh empty WAL.
func Recover(store objectStore, walPath string, jobs int) (*WAL, RecoveryStats, error) {
	w, scan, err := OpenWAL(walPath)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	st, err := replayRecords(store, scan, jobs)
	if err != nil {
		w.Close()
		return nil, st, err
	}
	return w, st, nil
}
