package live

import (
	"sort"
	"time"

	"repro/internal/core"
)

// Cross-shard deadlock detection.
//
// Each engine shard runs the synchronous per-request detector it always
// had, which is complete for cycles whose every edge lives on one shard
// (a dependency on a transaction blocked elsewhere dead-ends in the
// local graph, so sharding introduces no false positives there). A cycle
// whose edges span shards — T1 blocked on shard A waiting for T2, T2
// blocked on shard B waiting for T1 — is invisible to both locals, so a
// background pass merges the per-shard waits-for graphs and hunts cycles
// in the union.
//
// The merged graph is a snapshot assembled one shard lock at a time, so
// it can be stale: an edge may have dissolved (grant, abort) by the time
// the cycle is found. Genuine deadlock edges, however, are stable — no
// one dissolves them but us — so the detector confirms each candidate
// with a second snapshot and only aborts victims found by both. That
// keeps detection deterministic for a quiesced cycle (same victim rule
// as the engines: highest transaction id on the cycle dies) and makes a
// false abort impossible for any cycle that is actually a deadlock.

// dlInterval is the background sweep period. Pokes from EvBlock and
// busy callback acks make real cycles resolve much faster; the ticker
// is the backstop for pokes lost to a full channel.
const dlInterval = 50 * time.Millisecond

// pokeDetector nudges the cross-shard detector (non-blocking; a full
// channel means a sweep is already pending). No-op with one shard.
func (s *Server) pokeDetector() {
	if s.dlPoke == nil {
		return
	}
	select {
	case s.dlPoke <- struct{}{}:
	default:
	}
}

// deadlockLoop runs the cross-shard sweeps until the server stops.
func (s *Server) deadlockLoop() {
	defer close(s.dlDone)
	tick := time.NewTicker(dlInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.dlStop:
			return
		case <-s.dlPoke:
		case <-tick.C:
		}
		if s.closedFlag.Load() {
			return
		}
		s.CheckDeadlocks()
	}
}

// dlSnapshot is one merged waits-for graph: edges unions every shard's
// local graph; home records which shard each blocked transaction is
// parked on (where its queued request — and therefore its abort — lives).
type dlSnapshot struct {
	edges map[core.TxnID][]core.TxnID
	home  map[core.TxnID]*engineShard
}

// collectWaitGraph merges the shards' waits-for graphs, one lock at a
// time. Never holds two shard locks at once: a skewed-in-time snapshot
// is fine (see the confirmation pass), serializing the engine is not.
func (s *Server) collectWaitGraph() dlSnapshot {
	snap := dlSnapshot{
		edges: make(map[core.TxnID][]core.TxnID),
		home:  make(map[core.TxnID]*engineShard),
	}
	for _, sh := range s.shards {
		held := s.lockShard(sh)
		sh.eng.WaitGraph(func(t core.TxnID, deps []core.TxnID) {
			snap.edges[t] = append(snap.edges[t], deps...)
			// A transaction has at most one queued request system-wide
			// (clients are synchronous), so at most one shard reports it
			// blocked.
			snap.home[t] = sh
		})
		s.unlockShard(sh, held)
	}
	return snap
}

// findVictims returns the victims the engines' own rule would pick,
// deterministically: walk transactions in ascending id order, and for
// each cycle found abort the highest id on it; repeat on the graph minus
// the dead until no cycle remains.
func findVictims(edges map[core.TxnID][]core.TxnID) []core.TxnID {
	starts := make([]core.TxnID, 0, len(edges))
	for t := range edges {
		starts = append(starts, t)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	dead := make(map[core.TxnID]bool)
	var victims []core.TxnID
	for {
		found := false
		for _, start := range starts {
			if dead[start] {
				continue
			}
			if cyc := findCycle(start, edges, dead); cyc != nil {
				victim := cyc[0]
				for _, t := range cyc {
					if t > victim {
						victim = t
					}
				}
				dead[victim] = true
				victims = append(victims, victim)
				found = true
				break // restart: the kill may have broken other cycles
			}
		}
		if !found {
			return victims
		}
	}
}

// findCycle DFSes from start and returns one cycle through it (the
// node set of the cycle), or nil. dead transactions are skipped.
func findCycle(start core.TxnID, edges map[core.TxnID][]core.TxnID, dead map[core.TxnID]bool) []core.TxnID {
	var path []core.TxnID
	onPath := make(map[core.TxnID]int)
	visited := make(map[core.TxnID]bool)
	var dfs func(t core.TxnID) []core.TxnID
	dfs = func(t core.TxnID) []core.TxnID {
		if i, ok := onPath[t]; ok {
			return append([]core.TxnID(nil), path[i:]...)
		}
		if visited[t] || dead[t] {
			return nil
		}
		visited[t] = true
		onPath[t] = len(path)
		path = append(path, t)
		for _, d := range edges[t] {
			if dead[d] {
				continue
			}
			if cyc := dfs(d); cyc != nil {
				return cyc
			}
		}
		delete(onPath, t)
		path = path[:len(path)-1]
		return nil
	}
	return dfs(start)
}

// CheckDeadlocks runs one cross-shard detection pass and returns how
// many victims it aborted. Exported for tests; normal operation runs it
// from the background loop. Safe to call with one shard (finds nothing
// the local detector didn't).
func (s *Server) CheckDeadlocks() int {
	first := s.collectWaitGraph()
	candidates := findVictims(first.edges)
	if len(candidates) == 0 {
		return 0
	}

	// Confirmation pass: re-snapshot and keep only victims both passes
	// agree on. A transaction on a real deadlock cycle is still blocked
	// on the same edges; one that was merely slow has moved on.
	second := s.collectWaitGraph()
	confirmed := findVictims(second.edges)
	inFirst := make(map[core.TxnID]bool, len(candidates))
	for _, t := range candidates {
		inFirst[t] = true
	}

	aborted := 0
	var staged []stagedPayload
	var overflow []core.ClientID
	for _, t := range confirmed {
		if !inFirst[t] {
			continue
		}
		sh := second.home[t]
		if sh == nil {
			continue
		}
		held := s.lockShard(sh)
		outs, ok := sh.eng.AbortDeadlockVictim(t)
		var st []stagedPayload
		var ov []core.ClientID
		if ok {
			st, ov = s.stage(outs)
		}
		s.unlockShard(sh, held)
		if !ok {
			continue // resolved between snapshot and abort; nothing died
		}
		aborted++
		s.metrics.crossShardDeadlocks.Inc()
		s.bsMu.Lock()
		delete(s.blockStart, t)
		s.bsMu.Unlock()
		staged = append(staged, st...)
		overflow = append(overflow, ov...)
	}
	s.attachPayloads(staged)
	for _, id := range overflow {
		s.detach(id)
	}
	return aborted
}
