package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"repro/internal/obs"
)

// AdminHandler serves the server's observability surface:
//
//	/metrics              Prometheus text exposition of the registry
//	/statusz              one-page human-readable server status
//	/trace?n=&txn=&page=  last n trace events as JSONL (txn/page filter)
//	/trace/on, /trace/off  switch event tracing at runtime
//	/heatz?format=json    heat snapshot: top-K hot pages/objects, contended
//	                      pages, false-sharing suspects (human by default)
//	/heatz/on, /heatz/off  switch heat collection at runtime
//	/spanz?format=json    commit-stage latency spans with p99 exemplar txns
//	/reclusterz?format=json  online-reclustering status: geometry split and
//	                      the relocation table; ?run=1 triggers one round
//	/debug/pprof/*        the standard Go profiling endpoints
//
// The handlers collect metrics without the server lock (the gauges take
// it themselves), so serving traffic never stalls the data path.
func AdminHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.registry.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		pages, opp, objSize := s.Geometry()
		st := s.Stats()
		fmt.Fprintf(w, "oodbserver status @ %s\n\n", time.Now().Format(time.RFC3339))
		fmt.Fprintf(w, "protocol:  %v\n", s.Proto())
		fmt.Fprintf(w, "geometry:  %d pages x %d objs x %d B\n", pages, opp, objSize)
		fmt.Fprintf(w, "shards:    %d engine shards on GOMAXPROCS=%d\n", s.NumShards(), runtime.GOMAXPROCS(0))
		fmt.Fprintf(w, "sessions:  %d\n", s.Sessions())
		fmt.Fprintf(w, "tracing:   enabled=%v dropped=%d ring=%d\n", s.tracer.Enabled(), s.tracer.Dropped(), s.TraceBufSize())
		fmt.Fprintf(w, "heat:      enabled=%v epochs=%d dropped=%d\n", s.heat.Enabled(), s.heat.Epochs(), s.heat.Dropped())
		if s.flight != nil {
			fmt.Fprintf(w, "blackbox:  %s\n", s.flight.Dir())
		}
		fmt.Fprintf(w, "endpoints: /metrics | /statusz | /trace?n=<count>&txn=<id>&page=<id> (+/trace/on,/trace/off)\n")
		fmt.Fprintf(w, "           /heatz?format=json (+/heatz/on,/heatz/off) | /spanz?format=json | /reclusterz | /debug/pprof/*\n\n")
		fmt.Fprintf(w, "engine: reads=%d writes=%d commits=%d aborts=%d blocks=%d deadlocks=%d\n",
			st.ReadReqs, st.WriteReqs, st.Commits, st.Aborts, st.Blocks, st.Deadlocks)
		fmt.Fprintf(w, "        rounds=%d callbacks=%d busy=%d deesc=%d pageX=%d objX=%d\n\n",
			st.Rounds, st.Callbacks, st.BusyReplies, st.Deescalations, st.PageGrants, st.ObjGrants)
		s.registry.WriteHuman(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			n, _ = strconv.Atoi(v)
		}
		var txn int64
		if v := r.URL.Query().Get("txn"); v != "" {
			txn, _ = strconv.ParseInt(v, 10, 64)
		}
		hasPage := false
		var page int64
		if v := r.URL.Query().Get("page"); v != "" {
			page, _ = strconv.ParseInt(v, 10, 32)
			hasPage = true
		}
		var filter func(*obs.Event) bool
		if txn != 0 || hasPage {
			filter = func(e *obs.Event) bool {
				return (txn == 0 || e.Txn == txn) && (!hasPage || e.Page == int32(page))
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		s.tracer.WriteJSONLFiltered(w, n, filter)
	})
	mux.HandleFunc("/trace/on", func(w http.ResponseWriter, r *http.Request) {
		s.tracer.SetEnabled(true)
		fmt.Fprintln(w, "tracing on")
	})
	mux.HandleFunc("/trace/off", func(w http.ResponseWriter, r *http.Request) {
		s.tracer.SetEnabled(false)
		fmt.Fprintln(w, "tracing off")
	})
	mux.HandleFunc("/heatz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			s.heat.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.heat.WriteHuman(w)
	})
	mux.HandleFunc("/heatz/on", func(w http.ResponseWriter, r *http.Request) {
		s.heat.SetEnabled(true)
		fmt.Fprintln(w, "heat collection on")
	})
	mux.HandleFunc("/heatz/off", func(w http.ResponseWriter, r *http.Request) {
		s.heat.SetEnabled(false)
		fmt.Fprintln(w, "heat collection off")
	})
	mux.HandleFunc("/reclusterz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("run") == "1" {
			moved, err := s.ReclusterNow()
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			fmt.Fprintf(w, "recluster round complete: %d objects moved\n", moved)
			return
		}
		st := s.ReclusterStatus(true)
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(st)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "online reclustering: enabled=%v\n", st.Enabled)
		fmt.Fprintf(w, "geometry: %d user pages + %d spare\n", st.UserPages, st.SparePages)
		fmt.Fprintf(w, "relocations: %d live entries\n", st.Relocated)
		max := 64
		for i, e := range st.Entries {
			if i >= max {
				fmt.Fprintf(w, "  ... %d more\n", len(st.Entries)-max)
				break
			}
			fmt.Fprintf(w, "  (%d,%d) -> (%d,%d)\n", e.From.Page, e.From.Slot, e.To.Page, e.To.Slot)
		}
		fmt.Fprintf(w, "trigger a round: /reclusterz?run=1\n")
	})
	mux.HandleFunc("/spanz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			s.spans.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.spans.WriteHuman(w)
	})
	// pprof on a private mux: registering on http.DefaultServeMux would
	// leak the profiler onto any other server in the process.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is a running admin HTTP endpoint.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts the admin endpoint on addr (e.g. ":6060") and serves
// until Close. It returns once the listener is bound, so the caller can
// read Addr immediately.
func ServeAdmin(s *Server, addr string) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &AdminServer{ln: ln, srv: &http.Server{Handler: AdminHandler(s)}}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the admin endpoint.
func (a *AdminServer) Close() error { return a.srv.Close() }
