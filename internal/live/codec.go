package live

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Binary wire codec for core.Msg (and WAL records): every field is
// encoded explicitly — no reflection — so the live data plane pays a few
// varint appends per message instead of encoding/gob's type negotiation
// and allocation churn.
//
// Frame layout (TCP transport):
//
//	[4-byte little-endian body length][body]
//
// The body is the field sequence below, in struct order. Integers are
// varints (zigzag for signed), bools are packed into one flags byte, and
// every slice/map is length-prefixed with uvarint(len+1) so that nil
// (0) and empty (1) round-trip distinguishably — protocol code treats
// "no notices" (nil) and "zero notices" (empty) identically, but the
// codec must not silently canonicalize one into the other.
//
// The layout is versioned by the one-byte connection handshake
// (wireVersion in wire.go), not per message: bumping the codec bumps the
// handshake byte.

// maxFrame bounds a frame body; anything larger is corruption, not a
// message (the largest legitimate message is one page + control fields).
const maxFrame = 1 << 28

// encBufPool recycles encode buffers across Send calls; buffers grow to
// the largest message seen (typically one page + overhead) and stay
// there.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

func appendInt(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }
func appendUint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// appendBytes encodes a byte slice, distinguishing nil from empty.
func appendBytes(b, s []byte) []byte {
	if s == nil {
		return appendUint(b, 0)
	}
	b = appendUint(b, uint64(len(s))+1)
	return append(b, s...)
}

func appendPageIDs(b []byte, ps []core.PageID) []byte {
	if ps == nil {
		return appendUint(b, 0)
	}
	b = appendUint(b, uint64(len(ps))+1)
	for _, p := range ps {
		b = appendInt(b, int64(p))
	}
	return b
}

func appendObjID(b []byte, o core.ObjID) []byte {
	b = appendInt(b, int64(o.Page))
	return appendUint(b, uint64(o.Slot))
}

func appendObjIDs(b []byte, os []core.ObjID) []byte {
	if os == nil {
		return appendUint(b, 0)
	}
	b = appendUint(b, uint64(len(os))+1)
	for _, o := range os {
		b = appendObjID(b, o)
	}
	return b
}

func appendU16s(b []byte, vs []uint16) []byte {
	if vs == nil {
		return appendUint(b, 0)
	}
	b = appendUint(b, uint64(len(vs))+1)
	for _, v := range vs {
		b = appendUint(b, uint64(v))
	}
	return b
}

func appendUpdates(b []byte, m map[core.ObjID][]byte) []byte {
	if m == nil {
		return appendUint(b, 0)
	}
	b = appendUint(b, uint64(len(m))+1)
	for o, v := range m {
		b = appendObjID(b, o)
		b = appendBytes(b, v)
	}
	return b
}

// appendMsg encodes m onto b and returns the extended buffer.
func appendMsg(b []byte, m *core.Msg) []byte {
	b = appendInt(b, int64(m.Kind))
	b = appendInt(b, int64(m.From))
	b = appendInt(b, int64(m.To))
	b = appendInt(b, int64(m.Txn))
	b = appendInt(b, m.Req)
	b = appendInt(b, int64(m.Page))
	b = appendObjID(b, m.Obj)

	var flags byte
	if m.WantData {
		flags |= 1 << 0
	}
	if m.Purged {
		flags |= 1 << 1
	}
	if m.Busy {
		flags |= 1 << 2
	}
	if m.HelloVariable {
		flags |= 1 << 3
	}
	b = append(b, flags)

	b = appendInt(b, int64(m.Grant))
	b = appendInt(b, int64(m.CB))
	b = appendInt(b, int64(m.BusyTxn))
	b = appendInt(b, m.Epoch)

	b = appendU16s(b, m.Unavail)
	b = appendPageIDs(b, m.Pages)
	b = appendObjIDs(b, m.Objs)
	b = appendPageIDs(b, m.PurgedPages)
	b = appendObjIDs(b, m.PurgedObjs)
	b = appendObjIDs(b, m.DeescObjs)
	b = appendPageIDs(b, m.DroppedPages)
	b = appendObjIDs(b, m.DroppedObjs)
	b = appendBytes(b, m.Data)
	b = appendUpdates(b, m.Updates)

	b = appendInt(b, int64(m.HelloID))
	b = appendInt(b, int64(m.HelloPages))
	b = appendInt(b, int64(m.HelloObjsPP))
	b = appendInt(b, int64(m.HelloObjSize))
	b = appendInt(b, int64(m.HelloProto))
	return b
}

// wireDecoder consumes an encoded body with sticky error tracking; the
// caller checks err once at the end. Decoded slices never alias the
// input, so frame read buffers can be reused.
type wireDecoder struct {
	b   []byte
	off int
	err error
}

func (d *wireDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("live: decode: "+format, args...)
	}
}

func (d *wireDecoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wireDecoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *wireDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// length reads a uvarint(len+1) prefix: isNil means the collection was
// nil. The count is sanity-bounded by the remaining bytes (every element
// takes at least one byte), so corrupt input cannot demand huge
// allocations.
func (d *wireDecoder) length() (n int, isNil bool) {
	v := d.uint()
	if d.err != nil || v == 0 {
		return 0, true
	}
	n = int(v - 1)
	if n < 0 || n > len(d.b)-d.off {
		d.fail("length %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return 0, true
	}
	return n, false
}

func (d *wireDecoder) bytes() []byte {
	n, isNil := d.length()
	if isNil {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[d.off:])
	d.off += n
	return out
}

func (d *wireDecoder) pageIDs() []core.PageID {
	n, isNil := d.length()
	if isNil {
		return nil
	}
	out := make([]core.PageID, n)
	for i := range out {
		out[i] = core.PageID(d.int())
	}
	return out
}

func (d *wireDecoder) objID() core.ObjID {
	p := d.int()
	s := d.uint()
	if s > 0xffff {
		d.fail("slot %d exceeds uint16", s)
	}
	return core.ObjID{Page: core.PageID(p), Slot: uint16(s)}
}

func (d *wireDecoder) objIDs() []core.ObjID {
	n, isNil := d.length()
	if isNil {
		return nil
	}
	out := make([]core.ObjID, n)
	for i := range out {
		out[i] = d.objID()
	}
	return out
}

func (d *wireDecoder) u16s() []uint16 {
	n, isNil := d.length()
	if isNil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		v := d.uint()
		if v > 0xffff {
			d.fail("uint16 overflow: %d", v)
			return out
		}
		out[i] = uint16(v)
	}
	return out
}

func (d *wireDecoder) updates() map[core.ObjID][]byte {
	n, isNil := d.length()
	if isNil {
		return nil
	}
	out := make(map[core.ObjID][]byte, n)
	for i := 0; i < n && d.err == nil; i++ {
		o := d.objID()
		out[o] = d.bytes()
	}
	return out
}

// decodeMsg decodes one frame body. It rejects truncated input and
// trailing garbage, so a framing bug surfaces as a decode error rather
// than silent field skew.
func decodeMsg(b []byte) (*core.Msg, error) {
	d := wireDecoder{b: b}
	m := &core.Msg{}
	m.Kind = core.MsgKind(d.int())
	m.From = core.ClientID(d.int())
	m.To = core.ClientID(d.int())
	m.Txn = core.TxnID(d.int())
	m.Req = d.int()
	m.Page = core.PageID(d.int())
	m.Obj = d.objID()

	flags := d.byte()
	m.WantData = flags&(1<<0) != 0
	m.Purged = flags&(1<<1) != 0
	m.Busy = flags&(1<<2) != 0
	m.HelloVariable = flags&(1<<3) != 0

	m.Grant = core.GrantLevel(d.int())
	m.CB = core.CallbackKind(d.int())
	m.BusyTxn = core.TxnID(d.int())
	m.Epoch = d.int()

	m.Unavail = d.u16s()
	m.Pages = d.pageIDs()
	m.Objs = d.objIDs()
	m.PurgedPages = d.pageIDs()
	m.PurgedObjs = d.objIDs()
	m.DeescObjs = d.objIDs()
	m.DroppedPages = d.pageIDs()
	m.DroppedObjs = d.objIDs()
	m.Data = d.bytes()
	m.Updates = d.updates()

	m.HelloID = core.ClientID(d.int())
	m.HelloPages = int32(d.int())
	m.HelloObjsPP = int32(d.int())
	m.HelloObjSize = int32(d.int())
	m.HelloProto = core.Protocol(d.int())

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("live: decode: %d trailing bytes", len(b)-d.off)
	}
	return m, nil
}

// ---- WAL record codec ----

// walFormatBinary is the first body byte of a binary-encoded WAL record.
// Pre-binary logs framed gob bodies, which begin with a gob message
// length — scanWAL uses this byte to pick the decoder (see the migration
// path there).
const walFormatBinary = 0xB1

// walFormatBinary2 marks a record that additionally carries relocation
// entries (online reclustering). Records without relocations keep the
// 0xB1 layout, so logs written by a reclustering server stay readable by
// the 0xB1 decoder right up to the first migration commit.
const walFormatBinary2 = 0xB2

// appendWALRecord encodes rec onto b (the CRC-framed WAL body).
func appendWALRecord(b []byte, rec *walRecord) []byte {
	format := byte(walFormatBinary)
	if len(rec.Relocs) > 0 {
		format = walFormatBinary2
	}
	b = append(b, format)
	b = appendInt(b, int64(rec.Txn))
	b = appendInt(b, int64(rec.Client))
	var flags byte
	if rec.Commit {
		flags |= 1
	}
	b = append(b, flags)
	b = appendObjIDs(b, rec.Objs)
	if rec.Images == nil {
		b = appendUint(b, 0)
	} else {
		b = appendUint(b, uint64(len(rec.Images))+1)
		for _, img := range rec.Images {
			b = appendBytes(b, img)
		}
	}
	if format == walFormatBinary2 {
		b = appendUint(b, uint64(len(rec.Relocs)))
		for _, r := range rec.Relocs {
			b = appendObjID(b, r.From)
			b = appendObjID(b, r.To)
		}
	}
	return b
}

// walFormatCheckpoint is the first body byte of a checkpoint watermark
// frame (WAL.appendCheckpoint): not a transaction record but a scan-time
// marker saying every frame ending delta bytes before this frame's start
// is already flushed to the store. Encoding the distance rather than an
// absolute offset keeps the marker valid across prefix truncations — the
// frame and the region it covers shift together.
const walFormatCheckpoint = 0xC9

// appendCheckpointBody encodes a watermark body onto b.
func appendCheckpointBody(b []byte, delta int64) []byte {
	b = append(b, walFormatCheckpoint)
	return appendUint(b, uint64(delta))
}

// decodeCheckpointBody decodes a watermark body's delta; ok is false for
// malformed bodies (the scan then treats the frame as tail corruption).
func decodeCheckpointBody(b []byte) (delta int64, ok bool) {
	if len(b) == 0 || b[0] != walFormatCheckpoint {
		return 0, false
	}
	v, n := binary.Uvarint(b[1:])
	if n <= 0 || 1+n != len(b) || v > 1<<62 {
		return 0, false
	}
	return int64(v), true
}

// decodeWALRecord decodes a binary WAL body; it returns an error for
// non-binary (e.g. legacy gob) bodies so the caller can fall back.
func decodeWALRecord(b []byte) (*walRecord, error) {
	if len(b) == 0 || (b[0] != walFormatBinary && b[0] != walFormatBinary2) {
		return nil, fmt.Errorf("live: not a binary WAL record")
	}
	format := b[0]
	d := wireDecoder{b: b, off: 1}
	rec := &walRecord{}
	rec.Txn = core.TxnID(d.int())
	rec.Client = core.ClientID(d.int())
	rec.Commit = d.byte()&1 != 0
	rec.Objs = d.objIDs()
	if n, isNil := d.length(); !isNil {
		rec.Images = make([][]byte, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			rec.Images = append(rec.Images, d.bytes())
		}
	}
	if format == walFormatBinary2 {
		n := d.uint()
		if d.err == nil && n > uint64(len(b)) {
			d.fail("reloc count %d exceeds body", n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			from := d.objID()
			to := d.objID()
			rec.Relocs = append(rec.Relocs, core.RelocEntry{From: from, To: to})
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("live: WAL record: %d trailing bytes", len(b)-d.off)
	}
	return rec, nil
}
