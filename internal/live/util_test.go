package live

import (
	"os"
	"testing"
	"time"
)

func readFile(path string) ([]byte, error)   { return os.ReadFile(path) }
func writeFile(path string, b []byte) error  { return os.WriteFile(path, b, 0o644) }
func openFile(path string) (*os.File, error) { return os.Open(path) }

func sleepMs(ms int) { time.Sleep(time.Duration(ms) * time.Millisecond) }

// timeoutChan returns a channel that fires after a generous deadline.
func timeoutChan(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(10 * time.Second)
}
