package live

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
)

func testServer(t *testing.T, proto core.Protocol) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{
		Proto: proto, PageSize: 256, ObjsPerPage: 4, NumPages: 32, SyncWAL: false,
	})
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	return srv, dir
}

func attachClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	cEnd, sEnd := Pipe()
	if _, err := srv.Attach(sEnd); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	cl, err := Connect(cEnd, ClientOptions{})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return cl
}

func o(p core.PageID, s uint16) core.ObjID { return core.ObjID{Page: p, Slot: s} }

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.db")
	s, err := CreateStore(path, 256, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteObj(o(3, 2), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.ReadObj(o(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("hello")) {
		t.Fatalf("got %q", got)
	}
	if len(got) != s2.ObjSize() {
		t.Fatalf("object size %d, want %d", len(got), s2.ObjSize())
	}
}

func TestStoreRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.db")
	s, err := CreateStore(path, 256, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.WriteObj(o(1, 1), []byte("data"))
	s.Close()
	// Flip a byte inside page 1's payload.
	raw, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[256*2+10] ^= 0xff
	if err := writeFile(path, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("corrupted store opened without error")
	}
}

func TestStoreBoundsChecks(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateStore(filepath.Join(dir, "s.db"), 256, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.ReadPage(99); err == nil {
		t.Fatal("out-of-range page read succeeded")
	}
	if err := s.WriteObj(o(0, 9), nil); err == nil {
		t.Fatal("out-of-range slot write succeeded")
	}
	if err := s.WriteObj(o(0, 0), make([]byte, 1000)); err == nil {
		t.Fatal("oversize object write succeeded")
	}
}

func TestBasicCommitAndVisibility(t *testing.T) {
	for _, proto := range core.AllProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			srv, _ := testServer(t, proto)
			defer srv.Close()
			c1 := attachClient(t, srv)
			defer c1.Close()
			c2 := attachClient(t, srv)
			defer c2.Close()

			tx, err := c1.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(o(0, 0), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			tx2, err := c2.Begin()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tx2.Read(o(0, 0))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, []byte("v1")) {
				t.Fatalf("c2 read %q", got[:8])
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWriteVisibilityAfterCallback(t *testing.T) {
	for _, proto := range core.AllProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			srv, _ := testServer(t, proto)
			defer srv.Close()
			c1 := attachClient(t, srv)
			defer c1.Close()
			c2 := attachClient(t, srv)
			defer c2.Close()

			// c2 caches the object, idle.
			tx2, _ := c2.Begin()
			if _, err := tx2.Read(o(1, 1)); err != nil {
				t.Fatal(err)
			}
			tx2.Commit()

			// c1 updates it (callback revokes c2's copy).
			tx1, _ := c1.Begin()
			if err := tx1.Write(o(1, 1), []byte("new")); err != nil {
				t.Fatal(err)
			}
			if err := tx1.Commit(); err != nil {
				t.Fatal(err)
			}

			// c2 must see the new value.
			tx2b, _ := c2.Begin()
			got, err := tx2b.Read(o(1, 1))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, []byte("new")) {
				t.Fatalf("stale read: %q", got[:8])
			}
			tx2b.Commit()
		})
	}
}

func TestUpdateHelper(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	c := attachClient(t, srv)
	defer c.Close()
	for i := 0; i < 5; i++ {
		tx, _ := c.Begin()
		err := tx.Update(o(2, 0), func(old []byte) []byte {
			return []byte{old[0] + 1}
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := c.Begin()
	got, _ := tx.Read(o(2, 0))
	if got[0] != 5 {
		t.Fatalf("counter = %d, want 5", got[0])
	}
	tx.Commit()
}

func TestVoluntaryAbortRollsBack(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	c := attachClient(t, srv)
	defer c.Close()

	tx, _ := c.Begin()
	if err := tx.Write(o(0, 1), []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := c.Begin()
	got, err := tx2.Read(o(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatalf("aborted write visible: %q", got)
		}
	}
	tx2.Commit()
}

func TestRecoveryReplaysCommitted(t *testing.T) {
	dir := t.TempDir()
	srv, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, PageSize: 256, ObjsPerPage: 4, NumPages: 16, SyncWAL: false})
	if err != nil {
		t.Fatal(err)
	}
	c := attachClient(t, srv)
	tx, _ := c.Begin()
	tx.Write(o(5, 3), []byte("durable"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: the store was never flushed; only the WAL has the
	// update. Abandon the server without Close.
	c.Close()
	srv.mu.Lock()
	srv.wal.f.Sync()
	srv.store.(*Store).f.Close() // drop in-memory state without flushing
	srv.wal.f.Close()
	srv.closed = true
	srv.mu.Unlock()

	srv2, err := OpenServer(dir, ServerOptions{Proto: core.PSAA, SyncWAL: false})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer srv2.Close()
	c2 := attachClient(t, srv2)
	defer c2.Close()
	tx2, _ := c2.Begin()
	got, err := tx2.Read(o(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("durable")) {
		t.Fatalf("lost committed update: %q", got[:8])
	}
	tx2.Commit()
}

func TestDeadlockVictimGetsErrAborted(t *testing.T) {
	srv, _ := testServer(t, core.PS)
	defer srv.Close()
	c1 := attachClient(t, srv)
	defer c1.Close()
	c2 := attachClient(t, srv)
	defer c2.Close()

	// Classic crossed writes under page locking: c1 reads page 0 and
	// writes page 1; c2 reads page 1 and writes page 0.
	tx1, _ := c1.Begin()
	tx2, _ := c2.Begin()
	if _, err := tx1.Read(o(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Read(o(1, 0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := tx1.Write(o(1, 1), []byte("a")); err != nil {
			errs[0] = err
			return
		}
		errs[0] = tx1.Commit()
	}()
	go func() {
		defer wg.Done()
		if err := tx2.Write(o(0, 1), []byte("b")); err != nil {
			errs[1] = err
			return
		}
		errs[1] = tx2.Commit()
	}()
	wg.Wait()
	aborts := 0
	for _, err := range errs {
		if errors.Is(err, ErrAborted) {
			aborts++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if aborts != 1 {
		t.Fatalf("aborts = %d, want exactly 1 (errs: %v)", aborts, errs)
	}
}

func TestConcurrentCountersSerializable(t *testing.T) {
	for _, proto := range core.AllProtocols {
		t.Run(proto.String(), func(t *testing.T) {
			srv, _ := testServer(t, proto)
			defer srv.Close()

			const clients = 4
			const perClient = 25
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				cl := attachClient(t, srv)
				defer cl.Close()
				wg.Add(1)
				go func(cl *Client) {
					defer wg.Done()
					for n := 0; n < perClient; {
						tx, err := cl.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						err = tx.Update(o(0, 0), func(old []byte) []byte {
							v := uint32(old[0]) | uint32(old[1])<<8
							v++
							return []byte{byte(v), byte(v >> 8)}
						})
						if err == nil {
							err = tx.Commit()
						}
						if err == nil {
							n++
							continue
						}
						if !errors.Is(err, ErrAborted) {
							t.Errorf("unexpected error: %v", err)
							return
						}
						// Deadlock victim: retry.
					}
				}(cl)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			checker := attachClient(t, srv)
			defer checker.Close()
			tx, _ := checker.Begin()
			got, err := tx.Read(o(0, 0))
			if err != nil {
				t.Fatal(err)
			}
			tx.Commit()
			v := uint32(got[0]) | uint32(got[1])<<8
			if v != clients*perClient {
				t.Fatalf("counter = %d, want %d (lost updates!)", v, clients*perClient)
			}
		})
	}
}

func TestConcurrentDistinctObjectsOnePage(t *testing.T) {
	// Fine-grained sharing: four clients each increment their own object
	// on the SAME page. Under PS this serializes; under the hybrid
	// protocols it interleaves — either way no update may be lost.
	for _, proto := range []core.Protocol{core.PS, core.PSOO, core.PSOA, core.PSAA, core.PSWT} {
		t.Run(proto.String(), func(t *testing.T) {
			srv, _ := testServer(t, proto)
			defer srv.Close()
			const clients = 4
			const perClient = 20
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				cl := attachClient(t, srv)
				defer cl.Close()
				slot := uint16(i)
				wg.Add(1)
				go func(cl *Client) {
					defer wg.Done()
					for n := 0; n < perClient; {
						tx, err := cl.Begin()
						if err != nil {
							t.Error(err)
							return
						}
						err = tx.Update(o(3, slot), func(old []byte) []byte {
							return []byte{old[0] + 1}
						})
						if err == nil {
							err = tx.Commit()
						}
						if err == nil {
							n++
						} else if !errors.Is(err, ErrAborted) {
							t.Errorf("unexpected error: %v", err)
							return
						}
					}
				}(cl)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			checker := attachClient(t, srv)
			defer checker.Close()
			tx, _ := checker.Begin()
			for s := uint16(0); s < clients; s++ {
				got, err := tx.Read(o(3, s))
				if err != nil {
					t.Fatal(err)
				}
				if got[0] != perClient {
					t.Fatalf("slot %d = %d, want %d", s, got[0], perClient)
				}
			}
			tx.Commit()
		})
	}
}

func TestTCPTransport(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	go srv.ListenAndServe("127.0.0.1:0")
	// Wait for the listener.
	var addr string
	for i := 0; i < 1000; i++ {
		if addr = srv.Addr(); addr != "" {
			break
		}
		sleepMs(5)
	}
	if addr == "" {
		t.Fatal("server never listened")
	}
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Connect(conn, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(o(0, 0), []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := cl.Begin()
	got, err := tx2.Read(o(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("over tcp")) {
		t.Fatalf("got %q", got[:10])
	}
	tx2.Commit()
}

func TestClientDisconnectReleasesState(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	c1 := attachClient(t, srv)
	c2 := attachClient(t, srv)
	defer c2.Close()

	// c1 caches a page then vanishes mid-transaction.
	tx1, _ := c1.Begin()
	if _, err := tx1.Read(o(4, 0)); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// c2's write would need a callback to c1; the disconnect must have
	// cleaned its copies so this completes rather than hanging.
	done := make(chan error, 1)
	go func() {
		tx2, err := c2.Begin()
		if err != nil {
			done <- err
			return
		}
		if err := tx2.Write(o(4, 0), []byte("x")); err != nil {
			done <- err
			return
		}
		done <- tx2.Commit()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-timeoutChan(t):
		t.Fatal("write hung after client disconnect")
	}
}

func TestServerStatsExposed(t *testing.T) {
	srv, _ := testServer(t, core.PSAA)
	defer srv.Close()
	c := attachClient(t, srv)
	defer c.Close()
	tx, _ := c.Begin()
	tx.Write(o(0, 0), []byte("x"))
	tx.Commit()
	st := srv.Stats()
	if st.WriteReqs == 0 || st.Commits == 0 {
		t.Fatalf("stats not counted: %+v", st)
	}
}

func TestWALTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	w.SyncOnCommit = false
	rec := &walRecord{Txn: 1, Client: 1, Commit: true,
		Objs: []core.ObjID{o(0, 0)}, Images: [][]byte{[]byte("a")}}
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	// Append garbage simulating a torn write.
	if _, err := w.f.WriteAt([]byte{0xde, 0xad, 0xbe}, w.off); err != nil {
		t.Fatal(err)
	}
	w.Close()

	f, _ := openFile(path)
	scan, err := scanWAL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.recs) != 1 || scan.recs[0].Txn != 1 {
		t.Fatalf("recovered %d records", len(scan.recs))
	}
}
