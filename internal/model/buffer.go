package model

import (
	"container/list"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sim"
)

// serverBuf is the server buffer pool: an LRU page table over the
// configured number of frames. Misses read from a uniformly chosen disk
// (charging DiskOverheadInst); dirty evictions write back asynchronously.
type serverBuf struct {
	eng   *sim.Engine
	cpu   *sim.CPU
	disks []*sim.Disk
	rng   *rand.Rand
	ioCPU float64 // DiskOverheadInst

	capacity int
	frames   map[core.PageID]*frame
	lru      *list.List
	fetching map[core.PageID][]func()

	// Stats.
	Hits, Misses, Writebacks int64
}

type frame struct {
	elem  *list.Element
	dirty bool
}

func newServerBuf(eng *sim.Engine, cpu *sim.CPU, disks []*sim.Disk, rng *rand.Rand,
	capacity int, ioCPU float64) *serverBuf {
	return &serverBuf{
		eng: eng, cpu: cpu, disks: disks, rng: rng, ioCPU: ioCPU,
		capacity: capacity,
		frames:   make(map[core.PageID]*frame),
		lru:      list.New(),
		fetching: make(map[core.PageID][]func()),
	}
}

func (b *serverBuf) disk() *sim.Disk { return b.disks[b.rng.Intn(len(b.disks))] }

// ensure runs fn once page p is resident, fetching it from disk first if
// needed. Concurrent requests for the same page share one fetch.
func (b *serverBuf) ensure(p core.PageID, fn func()) {
	if f := b.frames[p]; f != nil {
		b.Hits++
		b.lru.MoveToFront(f.elem)
		fn()
		return
	}
	if waiters, ok := b.fetching[p]; ok {
		b.fetching[p] = append(waiters, fn)
		return
	}
	b.Misses++
	b.fetching[p] = []func(){fn}
	b.evictOne()
	b.cpu.UseSystem(b.ioCPU, func() {
		b.disk().IO(func() {
			// Install the frame unless a commit installed it meanwhile.
			if b.frames[p] == nil {
				f := &frame{}
				f.elem = b.lru.PushFront(p)
				b.frames[p] = f
			}
			waiters := b.fetching[p]
			delete(b.fetching, p)
			for _, w := range waiters {
				w()
			}
		})
	})
}

// install places a page shipped by a committing client into the pool (no
// read needed) and marks it dirty.
func (b *serverBuf) install(p core.PageID) {
	if f := b.frames[p]; f != nil {
		f.dirty = true
		b.lru.MoveToFront(f.elem)
		return
	}
	b.evictOne()
	f := &frame{dirty: true}
	f.elem = b.lru.PushFront(p)
	b.frames[p] = f
}

// installObj applies an object-granularity commit install (OS): the home
// page must be resident, so a miss costs a read ("installation read").
func (b *serverBuf) installObj(p core.PageID) {
	b.ensure(p, func() {
		if f := b.frames[p]; f != nil {
			f.dirty = true
		}
	})
}

// evictOne frees a frame if the pool is full, writing back dirty victims
// asynchronously.
func (b *serverBuf) evictOne() {
	for b.lru.Len()+len(b.fetching) >= b.capacity {
		e := b.lru.Back()
		if e == nil {
			return
		}
		p := e.Value.(core.PageID)
		f := b.frames[p]
		b.lru.Remove(e)
		delete(b.frames, p)
		if f.dirty {
			b.Writebacks++
			b.cpu.UseSystem(b.ioCPU, func() {
				b.disk().IO(nil)
			})
		}
	}
}

// Resident returns the number of resident pages (diagnostics).
func (b *serverBuf) Resident() int { return b.lru.Len() }
