package model

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// system is one assembled simulation: engine, network, server, clients.
type system struct {
	cfg    Config
	eng    *sim.Engine
	net    *sim.Network
	server *server
	client []*client

	layout  *core.Layout
	nextTxn core.TxnID
	oracle  *oracle // non-nil in Verify mode

	measuring  bool
	batchLen   float64
	curBatch   int
	batchCount int64 // commits in the current batch

	res *Results
}

// Results reports one simulation run.
type Results struct {
	Proto    core.Protocol
	Workload string

	Throughput   float64 // committed txns per second
	ThroughputCI float64 // 90% half-width (batch means)
	RespTime     stats.Welford

	Commits       int64
	Aborts        int64 // transaction restarts (deadlock victims)
	Messages      int64
	MsgBytes      int64
	MsgsPerCommit float64

	MsgByKind map[core.MsgKind]int64

	Deadlocks     int64
	Callbacks     int64
	BusyReplies   int64
	Deescalations int64
	PageGrants    int64
	ObjGrants     int64
	Blocks        int64

	ServerCPUUtil float64
	ClientCPUUtil float64 // mean over clients
	DiskUtil      float64 // mean over disks
	NetUtil       float64

	ServerBufHits, ServerBufMisses, ServerWritebacks int64
	ClientEvictions                                  int64

	batches stats.BatchMeans
}

// Run executes one simulation and returns its results.
func Run(cfg Config) *Results {
	if cfg.NumClients != cfg.Workload.NumClients {
		panic("model: NumClients mismatch between config and workload")
	}
	if cfg.Batches < 2 {
		panic("model: need at least 2 batches")
	}
	sys := build(cfg)
	sys.eng.Run(cfg.Warmup)
	sys.startMeasurement()
	sys.eng.Run(cfg.Warmup + cfg.Measure)
	sys.finish()
	return sys.res
}

func build(cfg Config) *system {
	layout := cfg.Layout
	if layout == nil {
		layout = cfg.Workload.Layout()
	}
	eng := sim.NewEngine()
	sys := &system{
		cfg:    cfg,
		eng:    eng,
		net:    sim.NewNetwork(eng, cfg.NetworkMbps),
		layout: layout,
		res: &Results{
			Proto:     cfg.Proto,
			Workload:  cfg.Workload.Kind.String(),
			MsgByKind: make(map[core.MsgKind]int64),
		},
	}
	if cfg.Verify {
		sys.oracle = newOracle(sys)
	}
	serverRng := rand.New(rand.NewSource(cfg.Seed))
	scpu := sim.NewCPU(eng, cfg.ServerMIPS)
	disks := make([]*sim.Disk, cfg.NumDisks)
	for i := range disks {
		disks[i] = sim.NewDisk(eng, rand.New(rand.NewSource(cfg.Seed+int64(1000+i))), cfg.MinDiskTime, cfg.MaxDiskTime)
	}
	sys.server = &server{
		sys:   sys,
		eng:   core.NewServerEngine(cfg.Proto, sys.layout),
		cpu:   scpu,
		disks: disks,
		buf:   newServerBuf(eng, scpu, disks, serverRng, cfg.ServerBufPages, cfg.DiskOverheadInst),
	}
	if cfg.Metrics != nil {
		sys.server.eng.RegisterMetrics(cfg.Metrics)
		if cfg.Heat != nil {
			cfg.Heat.RegisterMetrics(cfg.Metrics)
		}
	}
	if heat := cfg.Heat; heat != nil {
		// Feed the collector from the engine's trace hook with the same
		// event mapping the live server uses (metrics.go onEngineTrace):
		// lock requests are accesses, blocks are contention.
		sys.server.eng.Trace = func(kind obs.EventKind, txn core.TxnID, client core.ClientID, obj core.ObjID, extra int64) {
			switch kind {
			case obs.EvLockReq:
				heat.RecordAccess(int32(client), int32(obj.Page), int32(obj.Slot), extra == 1)
			case obs.EvBlock:
				heat.RecordBlock(int32(obj.Page))
			}
		}
	}
	sys.client = make([]*client, cfg.NumClients)
	for i := 0; i < cfg.NumClients; i++ {
		id := core.ClientID(i + 1)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(77+i)*104729))
		cl := &client{
			sys: sys,
			id:  id,
			cs:  core.NewClientState(id, cfg.Proto, cfg.ClientCacheCapacity()),
			cpu: sim.NewCPU(eng, cfg.ClientMIPS),
			gen: workload.NewGenerator(cfg.Workload, sys.layout, i+1, rng),
			rng: rng,
		}
		sys.client[i] = cl
		eng.Go(fmt.Sprintf("client-%d", id), cl.run)
	}
	return sys
}

func (sys *system) startMeasurement() {
	sys.measuring = true
	sys.batchLen = sys.cfg.Measure / float64(sys.cfg.Batches)
	// Close the warmup heat epoch so measured traffic dominates the
	// decayed sketches and false-sharing scores.
	sys.cfg.Heat.Rotate()
}

func (sys *system) flushBatch() {
	sys.res.batches.Add(float64(sys.batchCount) / sys.batchLen)
	sys.batchCount = 0
	sys.curBatch++
}

// recordCommit tallies a committed transaction.
func (sys *system) recordCommit(respTime float64) {
	if !sys.measuring {
		return
	}
	idx := int((sys.eng.Now() - sys.cfg.Warmup) / sys.batchLen)
	if idx > sys.cfg.Batches-1 {
		idx = sys.cfg.Batches - 1
	}
	for sys.curBatch < idx {
		sys.flushBatch()
	}
	sys.batchCount++
	sys.res.Commits++
	sys.res.RespTime.Add(respTime)
}

func (sys *system) recordAbort() {
	if sys.measuring {
		sys.res.Aborts++
	}
}

func (sys *system) recordMsg(m *core.Msg, size int) {
	if !sys.measuring {
		return
	}
	sys.res.Messages++
	sys.res.MsgBytes += int64(size)
	sys.res.MsgByKind[m.Kind]++
}

func (sys *system) finish() {
	// Fold the measured epoch's false-sharing evidence into the decayed
	// scores before results are read.
	sys.cfg.Heat.Rotate()
	r := sys.res
	// Close out every remaining batch (empty ones included).
	for sys.curBatch < sys.cfg.Batches-1 {
		sys.flushBatch()
	}
	sys.flushBatch()
	r.Throughput, r.ThroughputCI = r.batches.CI90()
	if r.Commits > 0 {
		r.MsgsPerCommit = float64(r.Messages) / float64(r.Commits)
	}

	st := sys.server.eng.Stats.Snapshot()
	r.Deadlocks = st.Deadlocks
	r.Callbacks = st.Callbacks
	r.BusyReplies = st.BusyReplies
	r.Deescalations = st.Deescalations
	r.PageGrants = st.PageGrants
	r.ObjGrants = st.ObjGrants
	r.Blocks = st.Blocks

	elapsed := sys.eng.Now()
	r.ServerCPUUtil = sys.server.cpu.Utilization(elapsed)
	for _, c := range sys.client {
		r.ClientCPUUtil += c.cpu.Utilization(elapsed)
		r.ClientEvictions += c.cs.Cache.Evictions
	}
	r.ClientCPUUtil /= float64(len(sys.client))
	for _, d := range sys.server.disks {
		r.DiskUtil += d.Utilization(elapsed)
	}
	r.DiskUtil /= float64(len(sys.server.disks))
	r.NetUtil = sys.net.Utilization(elapsed)
	r.ServerBufHits = sys.server.buf.Hits
	r.ServerBufMisses = sys.server.buf.Misses
	r.ServerWritebacks = sys.server.buf.Writebacks
}

// newTxnID hands out globally monotonic transaction ids (the deadlock
// victim policy aborts the youngest, i.e. highest id, in a cycle).
func (sys *system) newTxnID() core.TxnID {
	sys.nextTxn++
	return sys.nextTxn
}

// toServer ships a client->server message: send CPU at the client, wire
// time, receive CPU at the server, then protocol handling.
func (sys *system) toServer(from *client, m core.Msg) {
	m.From = from.id
	m.DroppedPages, m.DroppedObjs = from.cs.Cache.TakeDropped()
	size := sys.cfg.msgSize(&m)
	sys.recordMsg(&m, size)
	cost := sys.cfg.msgCPUCost(size)
	from.cpu.UseSystem(cost, func() {
		sys.net.Transmit(size, func() {
			sys.server.cpu.UseSystem(cost, func() {
				sys.server.handle(m)
			})
		})
	})
}

// toClient enqueues a server->client message on the destination's ordered
// delivery queue (emission order per client is preserved end to end, as on
// a real session connection).
func (sys *system) toClient(m core.Msg) {
	if m.To == core.NoClient {
		panic("model: server message without destination")
	}
	dst := sys.client[m.To-1]
	dst.outQ = append(dst.outQ, m)
	if !dst.outBusy {
		dst.outBusy = true
		sys.pumpClient(dst)
	}
}

// pumpClient ships the next queued message to a client: buffer fetch for
// data replies, send CPU, wire, receive CPU, delivery, then the next.
func (sys *system) pumpClient(dst *client) {
	if len(dst.outQ) == 0 {
		dst.outBusy = false
		return
	}
	m := dst.outQ[0]
	dst.outQ = dst.outQ[1:]
	ship := func() {
		size := sys.cfg.msgSize(&m)
		sys.recordMsg(&m, size)
		cost := sys.cfg.msgCPUCost(size)
		sys.server.cpu.UseSystem(cost, func() {
			sys.net.Transmit(size, func() {
				dst.cpu.UseSystem(cost, func() {
					dst.deliver(m)
					sys.pumpClient(dst)
				})
			})
		})
	}
	switch m.Kind {
	case core.MPageData, core.MObjData:
		sys.server.buf.ensure(m.Page, ship)
	default:
		ship()
	}
}
