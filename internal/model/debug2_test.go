package model

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestPSUniformStall reproduces the isolated throughput collapse seen in
// fig6 (PS, UNIFORM low locality, wp=0.10, seed 42).
func TestPSUniformStall(t *testing.T) {
	if testing.Short() {
		t.Skip("long probe")
	}
	w := workload.UniformSpec(workload.LowLocality, 0.10)
	cfg := DefaultConfig(core.PS, w)
	cfg.Seed = 42
	sys := build(cfg)
	last := int64(-1)
	for tm := 10.0; tm <= 150; tm += 10 {
		sys.eng.Run(tm)
		se := sys.server.eng
		if se.Stats.Commits.Load() == last {
			t.Logf("STALLED at t=%.0f: commits=%d events=%d", tm, se.Stats.Commits.Load(), sys.eng.Pending())
			t.Logf("state:\n%s", se.DumpState())
			for _, cl := range sys.client {
				t.Logf("client %d: txn=%d pendingCB=%d mbox=%d", cl.id, cl.cs.Txn, cl.cs.PendingCallbacks(), cl.mbox.Len())
			}
			return
		}
		last = se.Stats.Commits.Load()
	}
	t.Logf("no stall: commits=%d", last)
}

// TestPSUniformCycleTrap re-runs the stalling configuration with a hook
// that sweeps the waits-for graph after every server engine event,
// trapping the exact message whose handling left an undetected cycle.
func TestPSUniformCycleTrap(t *testing.T) {
	if testing.Short() {
		t.Skip("long probe")
	}
	w := workload.UniformSpec(workload.LowLocality, 0.10)
	cfg := DefaultConfig(core.PS, w)
	cfg.Seed = 42
	sys := build(cfg)
	type logEntry struct {
		at  float64
		msg string
	}
	var recent []logEntry
	trapped := false
	sys.server.eng.DebugCheckLog = func(start core.TxnID, waits []core.TxnID, victim core.TxnID) {
		recent = append(recent, logEntry{sys.eng.Now(), fmt.Sprintf(
			"  [check from=%d waits=%v victim=%d]", start, waits, victim)})
	}
	sys.server.debugHook = func(m *core.Msg) {
		if trapped {
			return
		}
		recent = append(recent, logEntry{sys.eng.Now(), fmt.Sprintf(
			"%v from=%d txn=%d obj=%v page=%d busy=%v busyTxn=%d purged=%v req=%d",
			m.Kind, m.From, m.Txn, m.Obj, m.Page, m.Busy, m.BusyTxn, m.Purged, m.Req)})
		if len(recent) > 40 {
			recent = recent[1:]
		}
		if cyc := sys.server.eng.FindAnyCycle(); cyc != nil {
			trapped = true
			t.Logf("cycle %v at t=%.6f (last msg: %s)", cyc, sys.eng.Now(), recent[len(recent)-1].msg)
			for _, e := range recent {
				t.Logf("  %.6f %s", e.at, e.msg)
			}
		}
	}
	sys.eng.Run(40)
	if !trapped {
		t.Log("no undetected cycle")
	}
}
