package model

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// shortConfig shrinks the run for tests: small DB, short horizon.
func shortConfig(proto core.Protocol, w workload.Spec) Config {
	cfg := DefaultConfig(proto, w)
	cfg.Warmup = 3
	cfg.Measure = 12
	cfg.Batches = 4
	return cfg
}

func smallHotCold(writeProb float64) workload.Spec {
	w := workload.HotColdSpec(workload.LowLocality, writeProb)
	w.DBPages = 250
	w.HotPages = 20
	w.NumClients = 5
	w.TransPages = 10
	return w
}

func TestRunAllProtocolsSmoke(t *testing.T) {
	for _, proto := range core.AllProtocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			res := Run(shortConfig(proto, smallHotCold(0.1)))
			if res.Commits == 0 {
				t.Fatal("no transactions committed")
			}
			if res.Throughput <= 0 {
				t.Fatalf("throughput = %v", res.Throughput)
			}
			if res.Messages == 0 {
				t.Fatal("no messages recorded")
			}
			t.Logf("%s: tput=%.2f ±%.2f commits=%d aborts=%d msgs/commit=%.1f resp=%.3fs",
				proto, res.Throughput, res.ThroughputCI, res.Commits, res.Aborts,
				res.MsgsPerCommit, res.RespTime.Mean())
		})
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := shortConfig(core.PSAA, smallHotCold(0.2))
	a := Run(cfg)
	b := Run(cfg)
	if a.Commits != b.Commits || a.Messages != b.Messages || a.Aborts != b.Aborts {
		t.Fatalf("non-deterministic: commits %d/%d msgs %d/%d aborts %d/%d",
			a.Commits, b.Commits, a.Messages, b.Messages, a.Aborts, b.Aborts)
	}
	if a.Throughput != b.Throughput {
		t.Fatalf("non-deterministic throughput: %v vs %v", a.Throughput, b.Throughput)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := shortConfig(core.PS, smallHotCold(0.1))
	a := Run(cfg)
	cfg.Seed = 99
	b := Run(cfg)
	if a.Commits == b.Commits && a.Messages == b.Messages {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestReadOnlyWorkloadHasNoCallbacks(t *testing.T) {
	w := smallHotCold(0)
	for _, proto := range core.Protocols {
		res := Run(shortConfig(proto, w))
		if res.Callbacks != 0 || res.Deadlocks != 0 || res.Aborts != 0 {
			t.Fatalf("%v: callbacks=%d deadlocks=%d aborts=%d on read-only workload",
				proto, res.Callbacks, res.Deadlocks, res.Aborts)
		}
	}
}

func TestPSAAOutperformsPSOnFalseSharing(t *testing.T) {
	// Under heavy false sharing (low locality, updates spread across many
	// pages), PS should suffer page-level contention PS-AA avoids. This is
	// the paper's central claim; the smoke version just checks both run.
	w := smallHotCold(0.3)
	ps := Run(shortConfig(core.PS, w))
	aa := Run(shortConfig(core.PSAA, w))
	t.Logf("PS tput=%.2f (aborts %d), PS-AA tput=%.2f (aborts %d)",
		ps.Throughput, ps.Aborts, aa.Throughput, aa.Aborts)
	if ps.Commits == 0 || aa.Commits == 0 {
		t.Fatal("runs did not progress")
	}
}
