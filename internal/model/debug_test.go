package model

import (
	"testing"

	"repro/internal/core"
)

// TestPSDebugState runs a short PS simulation and dumps internal state to
// diagnose stalls: how many transactions are blocked, rounds open, etc.
func TestPSDebugState(t *testing.T) {
	cfg := shortConfig(core.PS, smallHotCold(0.1))
	sys := build(cfg)
	sys.eng.Run(5)
	se := sys.server.eng
	t.Logf("t=5s: txns=%d blockedReqs=%d rounds=%d commits(server)=%d locks empty=%v",
		se.ActiveTxns(), se.BlockedRequests(), se.OpenRounds(), se.Stats.Commits.Load(), se.Locks.Empty())
	t.Logf("stats: reads=%d writes=%d callbacks=%d busy=%d deadlocks=%d aborts=%d blocks=%d",
		se.Stats.ReadReqs.Load(), se.Stats.WriteReqs.Load(), se.Stats.Callbacks.Load(), se.Stats.BusyReplies.Load(),
		se.Stats.Deadlocks.Load(), se.Stats.Aborts.Load(), se.Stats.Blocks.Load())
	t.Logf("engine: pending events=%d procs=%d", sys.eng.Pending(), sys.eng.Procs())
	for _, cl := range sys.client {
		t.Logf("client %d: txn=%d pendingCB=%d mbox=%d cacheLen=%d",
			cl.id, cl.cs.Txn, cl.cs.PendingCallbacks(), cl.mbox.Len(), cl.cs.Cache.Len())
	}
	if se.Stats.Commits.Load() == 0 && se.Stats.ReadReqs.Load() > 0 {
		t.Log("STALL CONFIRMED")
	}
	t.Logf("server state:\n%s", se.DumpState())
}
