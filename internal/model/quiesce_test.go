package model

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestDrainLeavesServerQuiesced runs a bounded number of transactions per
// client under every protocol, lets the system drain completely, and
// checks that the server engine retains no locks, rounds, queues, or
// transaction records — i.e. no protocol state leaks.
func TestDrainLeavesServerQuiesced(t *testing.T) {
	for _, proto := range core.AllProtocols {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			w := workload.UniformSpec(workload.LowLocality, 0.25)
			w.DBPages = 200
			w.NumClients = 6
			w.TransPages = 8
			cfg := DefaultConfig(proto, w)
			cfg.TxnLimit = 40
			cfg.Verify = true
			cfg.Warmup, cfg.Measure, cfg.Batches = 1, 1000, 2

			sys := build(cfg)
			sys.startMeasurement()
			// Run until the event queue drains (all clients done).
			end := sys.eng.Run(cfg.Warmup + cfg.Measure)
			if sys.eng.Procs() != 0 {
				t.Fatalf("%d client processes still alive at t=%.2f (stall)", sys.eng.Procs(), end)
			}
			se := sys.server.eng
			if !se.Quiesced() {
				t.Fatalf("server not quiesced:\n%s", se.DumpState())
			}
			if got := int(se.Stats.Commits.Load()); got > 6*40 {
				t.Fatalf("server saw %d commits, more than the %d issued", got, 6*40)
			}
			// Every client's cache must be consistent with the copy table:
			// cached (page-granularity) implies registered, minus pending
			// drop notices (none remain after a commit drained them... they
			// may remain if the final message preceded the last eviction).
			for _, cl := range sys.client {
				drops := map[core.PageID]bool{}
				dp, _ := cl.cs.Cache.TakeDropped()
				for _, p := range dp {
					drops[p] = true
				}
				if proto == core.OS || proto == core.PSOO || proto == core.PSWT {
					continue // object-granularity registration
				}
				for _, p := range cl.cs.Cache.ResidentPages() {
					if !se.Copies.HasPageCopy(cl.id, p) {
						t.Fatalf("client %d caches page %d but it is not registered", cl.id, p)
					}
				}
				_ = drops
			}
		})
	}
}

// TestDrainHighContention drains a HICON run (heaviest abort traffic) and
// checks quiescence plus commit accounting.
func TestDrainHighContention(t *testing.T) {
	if testing.Short() {
		t.Skip("longer drain")
	}
	w := workload.HiConSpec(workload.HighLocality, 0.5)
	w.DBPages = 120
	w.HotPages = 10
	w.NumClients = 8
	w.TransPages = 5
	for _, proto := range []core.Protocol{core.PS, core.PSAA} {
		cfg := DefaultConfig(proto, w)
		cfg.TxnLimit = 30
		cfg.Verify = true
		cfg.Warmup, cfg.Measure, cfg.Batches = 1, 2000, 2
		sys := build(cfg)
		sys.startMeasurement()
		sys.eng.Run(cfg.Warmup + cfg.Measure)
		if sys.eng.Procs() != 0 {
			t.Fatalf("%v: stalled with %d live procs:\n%s", proto, sys.eng.Procs(),
				sys.server.eng.DumpState())
		}
		if !sys.server.eng.Quiesced() {
			t.Fatalf("%v: not quiesced:\n%s", proto, sys.server.eng.DumpState())
		}
	}
}
