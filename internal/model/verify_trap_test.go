package model

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestCoherenceTrap reproduces a stale read under verification and prints
// the recent protocol events for the affected page.
func TestCoherenceTrap(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	w := workload.HiConSpec(workload.HighLocality, 0.5)
	w.DBPages = 120
	w.HotPages = 10
	w.NumClients = 8
	w.TransPages = 5
	cfg := DefaultConfig(core.PSAA, w)
	cfg.TxnLimit = 30
	cfg.Warmup, cfg.Measure, cfg.Batches = 1, 2000, 2
	cfg.Verify = true

	sys := build(cfg)
	var trace []string
	sys.oracle.TraceFn = func() []string { return trace }
	cl6 := sys.client[3]
	cl6.debugDeliver = func(m *core.Msg) {
		trace = append(trace, fmt.Sprintf(
			"t=%.6f DELIVER->4 %v obj=%v page=%d grant=%v req=%d cb=%v unavail=%v | touched4=%v txn=%d",
			sys.eng.Now(), m.Kind, m.Obj, m.Page, m.Grant, m.Req, m.CB, m.Unavail,
			cl6.cs.Active() && cl6.cs.Cache.HasPage(4), cl6.cs.Txn))
	}
	lastReg, lastCached := false, false
	sys.server.debugHook = func(m *core.Msg) {
		reg := sys.server.eng.Copies.HasPageCopy(4, 4)
		cached := cl6.cs.Cache.HasPage(4)
		interesting := m.Page == 4 || m.Obj.Page == 4 || m.From == 4 ||
			reg != lastReg || cached != lastCached
		for _, dp := range m.DroppedPages {
			if dp == 4 {
				interesting = true
			}
		}
		for _, pp := range m.PurgedPages {
			if pp == 4 {
				interesting = true
			}
		}
		if interesting {
			trace = append(trace, fmt.Sprintf(
				"t=%.6f %v from=%d txn=%d obj=%v page=%d busy=%v/%d purged=%v grant=%v req=%d drop=%v aborted=%v deesc=%v | reg(4,4)=%v cached=%v",
				sys.eng.Now(), m.Kind, m.From, m.Txn, m.Obj, m.Page, m.Busy, m.BusyTxn,
				m.Purged, m.Grant, m.Req, m.DroppedPages, m.PurgedPages, m.DeescObjs, reg, cached))
			if len(trace) > 2000 {
				trace = trace[1:]
			}
		}
		lastReg, lastCached = reg, cached
	}
	defer func() {
		if r := recover(); r != nil {
			t.Logf("panic: %v", r)
			for _, e := range trace {
				t.Log(e)
			}
			t.Logf("server engine page-9 state:\n%s", sys.server.eng.DumpState())
		}
	}()
	sys.eng.Run(cfg.Warmup + cfg.Measure)
	t.Log("no stale read in this run")
}
