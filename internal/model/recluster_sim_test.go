package model

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// interleavedWithSpare shrinks the Interleaved PRIVATE workload to one
// client pair and appends an empty spare region: HotProb 1 keeps every
// access inside the interleaved hot pages, so pages [2*HotPages, DBPages)
// carry no traffic and are free destinations for the planner's moves —
// the same role the live server's reserved spare region plays.
func interleavedWithSpare() workload.Spec {
	w := workload.InterleavedPrivateSpec(0.5)
	w.NumClients = 2
	w.HotPages = 10
	w.DBPages = 2*10 + 10
	w.HotProb = 1.0
	return w
}

// TestSimReclusterRecoversInterleavedThroughput is the deterministic
// reproduction of the tentpole effect: under PS, the Interleaved PRIVATE
// placement makes the client pair ping-pong page write locks they never
// truly conflict on; splitting the pages along the heat collector's
// writer evidence must recover most of that throughput. The sim's version
// of a migration is a layout rewrite between two same-seed runs
// (Config.Layout + RemapWithMoves), so the measured delta is purely the
// placement change.
func TestSimReclusterRecoversInterleavedThroughput(t *testing.T) {
	spec := interleavedWithSpare()
	userPages := 2 * spec.HotPages // suspects live here; the rest is spare

	// Size both tiers to hold the whole (tiny) database: with buffer
	// misses out of the way, page-lock ping-pong is the bottleneck — the
	// regime the reclusterer exists for — and the run commits enough
	// transactions for the write evidence to cover the hot slots.
	mkcfg := func() Config {
		cfg := shortConfig(core.PS, spec)
		cfg.ClientBufPages = spec.DBPages
		cfg.ServerBufPages = spec.DBPages
		cfg.Warmup = 5
		cfg.Measure = 120
		return cfg
	}

	heat := obs.NewHeat(obs.HeatOptions{TopK: 32})
	heat.SetEnabled(true)
	cfg := mkcfg()
	cfg.Heat = heat
	before := Run(cfg)
	if before.Commits == 0 {
		t.Fatal("interleaved run committed nothing")
	}

	sn := heat.Snapshot()
	groups := obs.PlanMoves(sn, obs.PlanOptions{
		MaxMoves:    spec.DBPages * spec.ObjsPerPage, // no pacing: split everything at once
		UserPages:   int32(userPages),
		ObjsPerPage: spec.ObjsPerPage,
	})
	moved := obs.PlannedObjects(groups)
	// Every hot page hosts both writers' disjoint halves, so the planner
	// should implicate most of the region (evidence covers the slots the
	// run actually wrote, not necessarily all of them).
	if pages := len(groups); pages < userPages/2 {
		t.Fatalf("planner split only %d of %d shared pages (moved %d): %+v",
			pages, userPages, moved, groups)
	}
	for _, g := range groups {
		if int(g.Page) >= userPages {
			t.Fatalf("planned a move off spare page %d: %+v", g.Page, g)
		}
	}

	cfg2 := mkcfg()
	cfg2.Layout = RemapWithMoves(spec.Layout(), groups, userPages)
	after := Run(cfg2)

	t.Logf("PS interleaved: %.1f -> %.1f txn/s after splitting %d pages (%d objects moved)",
		before.Throughput, after.Throughput, len(groups), moved)
	if after.Throughput < 1.5*before.Throughput {
		t.Fatalf("reclustered layout recovered only %.2fx (%.1f -> %.1f txn/s), want >= 1.5x",
			after.Throughput/before.Throughput, before.Throughput, after.Throughput)
	}
	// The split removes page-lock ping-pong, it does not add work: blocks
	// and callbacks must drop, not merely shift.
	if after.Blocks >= before.Blocks {
		t.Errorf("blocks did not drop: %d -> %d", before.Blocks, after.Blocks)
	}
	if after.Callbacks > before.Callbacks {
		t.Errorf("callbacks grew: %d -> %d", before.Callbacks, after.Callbacks)
	}
}

// TestRemapWithMovesIsPermutation pins the rewrite's core invariant: the
// result maps the logical space onto the physical space bijectively, with
// exactly the planned slots relocated.
func TestRemapWithMovesIsPermutation(t *testing.T) {
	spec := workload.InterleavedPrivateSpec(0.5)
	l := spec.Layout()
	groups := []obs.MoveGroup{
		{Page: 0, Writer: 2, Slots: []uint16{10, 11, 12}},
		{Page: 1, Writer: 2, Slots: []uint16{10}},
		{Page: 2, Writer: 4, Slots: []uint16{15}},
	}
	out := RemapWithMoves(l, groups, l.NumPages-2)

	seen := make(map[core.ObjID]int, out.NumObjects())
	for i := 0; i < out.NumObjects(); i++ {
		id := out.Obj(i)
		if prev, dup := seen[id]; dup {
			t.Fatalf("physical slot %v backs logicals %d and %d", id, prev, i)
		}
		seen[id] = i
	}
	// Writers 2 and 4 must not share a destination page (the whole point
	// of the split), and each consumed spare page must host only movers
	// from one group's writer.
	spare := core.PageID(l.NumPages - 2)
	writerPage := make(map[core.PageID]int32)
	for _, g := range groups {
		for _, slot := range g.Slots {
			from := core.ObjID{Page: core.PageID(g.Page), Slot: slot}
			logical := -1
			for i := 0; i < l.NumObjects(); i++ {
				if l.Obj(i) == from {
					logical = i
					break
				}
			}
			got := out.Obj(logical)
			if got.Page < spare {
				t.Fatalf("moved object %v still below the spare region: %v", from, got)
			}
			if w, ok := writerPage[got.Page]; ok && w != g.Writer {
				t.Fatalf("writers %d and %d share destination page %d", w, g.Writer, got.Page)
			}
			writerPage[got.Page] = g.Writer
		}
	}
}
