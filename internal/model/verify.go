package model

import (
	"fmt"

	"repro/internal/core"
)

// oracle implements the simulator's verification mode (Config.Verify): it
// shadows every object with the transaction id of its last committed
// writer and checks the central callback-locking invariant — an object
// that is locally readable in a client cache is always the current
// committed version (unless the reader itself has an uncommitted update).
//
// Versions advance when a client sends its commit message: from that
// instant the commit is irrevocable, and no other client can read the
// updated objects until the server has processed the commit and released
// the locks, so the bump cannot race a legal read.
type oracle struct {
	sys      *system
	versions map[core.ObjID]core.TxnID
	// view[c][o] is the version client c's cache holds for o.
	view map[core.ClientID]map[core.ObjID]core.TxnID
	// snaps holds per-reply version snapshots taken when the server engine
	// emitted a data reply, keyed by (client, request id).
	snaps map[snapKey]map[core.ObjID]core.TxnID

	Checks int64

	// TraceFn, when set by diagnostics, supplies context lines included in
	// a stale-read panic.
	TraceFn func() []string
}

type snapKey struct {
	to  core.ClientID
	req int64
}

func newOracle(sys *system) *oracle {
	return &oracle{
		sys:      sys,
		versions: make(map[core.ObjID]core.TxnID),
		view:     make(map[core.ClientID]map[core.ObjID]core.TxnID),
		snaps:    make(map[snapKey]map[core.ObjID]core.TxnID),
	}
}

func (o *oracle) clientView(c core.ClientID) map[core.ObjID]core.TxnID {
	v := o.view[c]
	if v == nil {
		v = make(map[core.ObjID]core.TxnID)
		o.view[c] = v
	}
	return v
}

// snapshotReply records the versions a data reply carries, at emission
// time (before buffering/transport delays).
func (o *oracle) snapshotReply(m *core.Msg) {
	switch m.Kind {
	case core.MPageData:
		snap := make(map[core.ObjID]core.TxnID)
		unavail := make(map[uint16]bool, len(m.Unavail))
		for _, s := range m.Unavail {
			unavail[s] = true
		}
		for s := 0; s < o.sys.layout.ObjsPerPage; s++ {
			if !unavail[uint16(s)] {
				obj := core.ObjID{Page: m.Page, Slot: uint16(s)}
				snap[obj] = o.versions[obj]
			}
		}
		o.snaps[snapKey{m.To, m.Req}] = snap
	case core.MObjData:
		o.snaps[snapKey{m.To, m.Req}] = map[core.ObjID]core.TxnID{m.Obj: o.versions[m.Obj]}
	}
}

// applyReply merges a consumed reply's snapshot into the client's view.
// Slots the client has dirty locally keep the client's own pending view.
func (o *oracle) applyReply(cl *client, m *core.Msg) {
	snap := o.snaps[snapKey{cl.id, m.Req}]
	if snap == nil {
		return
	}
	delete(o.snaps, snapKey{cl.id, m.Req})
	view := o.clientView(cl.id)
	for obj, v := range snap {
		view[obj] = v
	}
}

// checkRead validates a read reference that was (or just became) locally
// satisfiable.
func (o *oracle) checkRead(cl *client, obj core.ObjID, ownWrite bool) {
	o.Checks++
	if ownWrite {
		return
	}
	cur := o.versions[obj]
	got := o.clientView(cl.id)[obj]
	if got != cur {
		msg := fmt.Sprintf(
			"model: STALE READ at client %d txn %d: object %v cached version %d, committed version %d (t=%.6f, proto %v)",
			cl.id, cl.cs.Txn, obj, got, cur, o.sys.eng.Now(), o.sys.cfg.Proto)
		if o.TraceFn != nil {
			for _, line := range o.TraceFn() {
				msg += "\n  " + line
			}
		}
		panic(msg)
	}
}

// commit advances versions for a committing transaction's write set and
// refreshes the committer's own view.
func (o *oracle) commit(cl *client, writeSet []core.ObjID, txn core.TxnID) {
	view := o.clientView(cl.id)
	for _, obj := range writeSet {
		o.versions[obj] = txn
		view[obj] = txn
	}
}
