package model

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// client drives one workstation: the transaction-source loop runs as a
// simulation process, while callbacks and de-escalation requests are
// handled event-style on arrival (the Client DBMS process serves them
// concurrently with the running transaction, as in the paper's model).
type client struct {
	sys *system
	id  core.ClientID
	cs  *core.ClientState
	cpu *sim.CPU
	gen *workload.Generator
	rng *rand.Rand

	mbox    sim.Mailbox[core.Msg] // replies to the transaction's requests
	nextReq int64

	// outQ/outBusy implement in-order server->client delivery: a message
	// (and its buffer fetch, if it carries data) must be fully delivered
	// before the next one to the same client starts. Without this a
	// callback could overtake a data reply delayed by a disk read and
	// revoke an object the client has not yet installed — a stale read.
	outQ    []core.Msg
	outBusy bool

	// debugDeliver, when set (tests only), observes every message
	// delivered to this client before it is processed.
	debugDeliver func(m *core.Msg)
}

// deliver routes an arrived server message (receive CPU already charged).
func (cl *client) deliver(m core.Msg) {
	if cl.debugDeliver != nil {
		cl.debugDeliver(&m)
	}
	switch m.Kind {
	case core.MCallback:
		reply, _ := cl.cs.HandleCallback(&m)
		cl.sys.toServer(cl, *reply)
	case core.MDeescReq:
		cl.sys.toServer(cl, *cl.cs.HandleDeescReq(&m))
	default:
		if !m.Kind.IsReply() {
			panic(fmt.Sprintf("model: client %d received %v", cl.id, m.Kind))
		}
		cl.mbox.Send(m)
	}
}

// run is the transaction source: an endless stream of transactions,
// resubmitted with the same reference string after an abort.
func (cl *client) run(p *sim.Proc) {
	for done := 0; cl.sys.cfg.TxnLimit <= 0 || done < cl.sys.cfg.TxnLimit; done++ {
		refs := cl.gen.NextTxn()
		start := p.Now()
		for {
			if cl.runTxn(p, refs) {
				break
			}
			cl.sys.recordAbort()
		}
		cl.sys.recordCommit(p.Now() - start)
		if cl.sys.cfg.ThinkTime > 0 {
			p.Hold(cl.sys.cfg.ThinkTime)
		}
	}
}

// runTxn executes one transaction attempt; false means it was aborted (as
// a deadlock victim) and must be resubmitted.
func (cl *client) runTxn(p *sim.Proc, refs []workload.Ref) bool {
	cfg := &cl.sys.cfg
	cl.cs.Begin(cl.sys.newTxnID())
	for _, ref := range refs {
		if ref.Write {
			cl.cs.StartWrite(ref.Obj)
			if m := cl.cs.NeedForWrite(ref.Obj); m != nil {
				rep, ok := cl.request(p, m)
				if !ok {
					return false
				}
				cl.applyReply(p, &rep)
			}
			// Under page-granularity copy tracking the grant can be
			// data-less while our copy of the object went stale (an
			// adaptive callback marked it); fetch the page before writing.
			if cl.cs.NeedsRefetch(ref.Obj) {
				rm := cl.cs.NeedForRead(ref.Obj)
				rep, ok := cl.request(p, rm)
				if !ok {
					return false
				}
				cl.applyReply(p, &rep)
			}
			cl.verifyRead(ref.Obj)
			cl.cs.RecordWrite(ref.Obj)
			cl.cpu.UseUserP(p, 2*cfg.ObjInst)
		} else {
			if m := cl.cs.NeedForRead(ref.Obj); m != nil {
				rep, ok := cl.request(p, m)
				if !ok {
					return false
				}
				cl.applyReply(p, &rep)
			}
			cl.verifyRead(ref.Obj)
			cl.cs.RecordRead(ref.Obj)
			cl.cpu.UseUserP(p, cfg.ObjInst)
		}
	}
	// Commit. Read-only transactions (no updates) commit locally under
	// callback locking: cached copies are read permission.
	if len(cl.cs.Cache.DirtyPages()) > 0 || len(cl.cs.Cache.DirtyObjs()) > 0 {
		m := cl.cs.BuildCommit()
		if cl.sys.oracle != nil {
			// The commit is irrevocable once sent: advance the oracle.
			cl.sys.oracle.commit(cl, cl.cs.WriteSetObjs(), cl.cs.Txn)
		}
		rep, ok := cl.request(p, m)
		if !ok {
			panic("model: commit request aborted")
		}
		if rep.Kind != core.MCommitAck {
			panic(fmt.Sprintf("model: commit reply %v", rep.Kind))
		}
	}
	for _, ack := range cl.cs.OnCommitAck() {
		cl.sys.toServer(cl, ack)
	}
	return true
}

// applyReply installs a data/grant reply; a client-side copy merge charges
// CopyMergeInst per merged object. The local state is updated *before* any
// CPU charge so a concurrent de-escalation request sees the new write.
func (cl *client) applyReply(p *sim.Proc, rep *core.Msg) {
	merged := cl.cs.OnReply(rep)
	if cl.sys.oracle != nil {
		cl.sys.oracle.applyReply(cl, rep)
	}
	if merged > 0 {
		cl.cpu.UseSystemP(p, float64(merged)*cl.sys.cfg.CopyMergeInst)
	}
}

// verifyRead checks the coherence oracle for a locally-satisfiable access.
func (cl *client) verifyRead(obj core.ObjID) {
	if cl.sys.oracle == nil {
		return
	}
	readable := cl.cs.Cache.Readable(obj)
	if cl.sys.cfg.Proto == core.OS {
		readable = cl.cs.Cache.HasObj(obj)
	}
	if readable {
		cl.sys.oracle.checkRead(cl, obj, cl.cs.Wrote(obj))
	}
}

// request sends a request and parks until its reply arrives. ok is false
// when the reply is an abort notification (the transaction has been
// cleaned up and must restart).
func (cl *client) request(p *sim.Proc, m *core.Msg) (core.Msg, bool) {
	cl.nextReq++
	m.Req = cl.nextReq
	m.Txn = cl.cs.Txn
	cl.sys.toServer(cl, *m)
	rep := cl.mbox.Recv(p)
	if rep.Kind == core.MAbortYou {
		for _, am := range cl.cs.Abort() {
			cl.sys.toServer(cl, am)
		}
		return rep, false
	}
	if rep.Req != m.Req {
		panic(fmt.Sprintf("model: client %d reply mismatch: got %d want %d", cl.id, rep.Req, m.Req))
	}
	return rep, true
}
