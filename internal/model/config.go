// Package model is the simulated page-server/object-server OODBMS of
// Section 4 of the paper: one server plus NumClients client workstations
// connected by a LAN, driven by the protocol state machines in
// internal/core on top of the discrete-event engine in internal/sim.
package model

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Config carries the system and overhead parameters of Table 1 plus the
// workload and run control. All instruction costs are in instructions;
// times in seconds; sizes in bytes.
type Config struct {
	Proto core.Protocol

	NumClients int

	ClientMIPS float64
	ServerMIPS float64

	// Buffer sizes in pages. The paper sets them as fractions of the
	// database (25% client, 50% server); DefaultConfig computes that.
	ClientBufPages int
	ServerBufPages int

	NumDisks    int
	MinDiskTime float64
	MaxDiskTime float64

	NetworkMbps float64

	PageSize    int
	ObjsPerPage int
	DBPages     int

	FixedMsgInst    float64 // per message
	PerByteMsgInst  float64 // per byte (paper: 10,000 per 4KB page)
	ControlMsgBytes int

	LockInst         float64 // per lock/unlock pair
	RegisterCopyInst float64 // per copy register/unregister
	DiskOverheadInst float64 // CPU cost to initiate a disk I/O
	CopyMergeInst    float64 // per differing object when merging copies

	ObjInst   float64 // client CPU per object read (doubled for writes)
	ThinkTime float64 // delay between transactions at a client

	Workload workload.Spec

	// Run control.
	Seed    int64
	Warmup  float64 // seconds of virtual time discarded
	Measure float64 // seconds of measured virtual time
	Batches int     // batch count for confidence intervals

	// Verify enables the coherence oracle: every locally-satisfied read is
	// checked against the globally last-committed version of the object,
	// panicking on a stale read. Test/validation use; adds overhead.
	Verify bool

	// TxnLimit, if positive, stops each client after that many commits so
	// the system drains; tests then assert the server quiesced (no locks,
	// rounds, queues, or transactions left behind).
	TxnLimit int

	// Metrics, when set, receives the engine's oodb_engine_* counters —
	// the same names the live server publishes, so one dashboard reads
	// both systems.
	Metrics *obs.Registry

	// Heat, when set (and enabled), samples the simulated server's access
	// stream: every read/write request reaching the engine and every lock
	// conflict feed the collector exactly as the live server's trace hook
	// does. Rotation is deterministic: once when measurement starts and
	// once at the end of the run.
	Heat *obs.Heat

	// Layout, when set, overrides Workload.Layout() as the physical object
	// placement. Reclustering experiments use it to rerun the identical
	// logical workload against a split layout derived from a previous
	// run's heat evidence (see RemapWithMoves).
	Layout *core.Layout
}

// DefaultConfig returns the Table 1 settings with the given protocol and
// workload. Reconstructed values (see DESIGN.md §3): LockInst 300,
// RegisterCopyInst 300, DiskOverheadInst 5000, ObjInst 10000.
func DefaultConfig(proto core.Protocol, w workload.Spec) Config {
	cfg := Config{
		Proto:      proto,
		NumClients: w.NumClients,

		ClientMIPS: 15,
		ServerMIPS: 30,

		ClientBufPages: w.DBPages / 4,
		ServerBufPages: w.DBPages / 2,

		NumDisks:    2,
		MinDiskTime: 0.010,
		MaxDiskTime: 0.030,

		NetworkMbps: 80,

		PageSize:    4096,
		ObjsPerPage: w.ObjsPerPage,
		DBPages:     w.DBPages,

		FixedMsgInst:    20000,
		PerByteMsgInst:  10000.0 / 4096.0,
		ControlMsgBytes: 256,

		LockInst:         300,
		RegisterCopyInst: 300,
		DiskOverheadInst: 5000,
		CopyMergeInst:    300,

		ObjInst:   10000,
		ThinkTime: 0,

		Workload: w,

		Seed:    1,
		Warmup:  30,
		Measure: 120,
		Batches: 8,
	}
	return cfg
}

// ObjSize returns the object size implied by the page size and fan-out.
func (c *Config) ObjSize() int { return c.PageSize / c.ObjsPerPage }

// ClientCacheCapacity returns the client cache capacity in the protocol's
// caching unit (pages, or objects for OS).
func (c *Config) ClientCacheCapacity() int {
	if c.Proto == core.OS {
		return c.ClientBufPages * c.ObjsPerPage
	}
	return c.ClientBufPages
}

// msgSize returns the wire size of a message under this config.
func (c *Config) msgSize(m *core.Msg) int {
	return m.SizeBytes(c.ControlMsgBytes, c.PageSize, c.ObjSize())
}

// msgCPUCost returns the CPU instructions to send or receive a message of
// the given size.
func (c *Config) msgCPUCost(size int) float64 {
	return c.FixedMsgInst + c.PerByteMsgInst*float64(size)
}
