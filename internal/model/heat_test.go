package model

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
)

// smallPrivate shrinks the PRIVATE-family workloads for tests while
// keeping the structural invariant (per-client 25-page hot regions in the
// first half of the database).
func smallPrivate(kind workload.Kind, writeProb float64) workload.Spec {
	var w workload.Spec
	if kind == workload.InterleavedPrivate {
		w = workload.InterleavedPrivateSpec(writeProb)
	} else {
		w = workload.PrivateSpec(workload.HighLocality, writeProb)
	}
	w.NumClients = 4
	w.DBPages = 250
	return w
}

// runWithHeat runs one short simulation with a heat collector attached and
// returns the final snapshot.
func runWithHeat(t *testing.T, w workload.Spec) *obs.HeatSnapshot {
	t.Helper()
	heat := obs.NewHeat(obs.HeatOptions{TopK: 32})
	heat.SetEnabled(true)
	cfg := shortConfig(core.PSAA, w)
	cfg.Heat = heat
	cfg.Metrics = obs.NewRegistry()
	res := Run(cfg)
	if res.Commits == 0 {
		t.Fatalf("no commits for %v", w.Kind)
	}
	sn := heat.Snapshot()
	if sn.Reads+sn.Writes == 0 {
		t.Fatal("heat collector saw no accesses")
	}
	return sn
}

// TestFalseSharingDetectorPairedWorkloads is the acceptance pairing: the
// Interleaved PRIVATE workload (client pairs updating disjoint objects
// co-resident on shared pages — the paper's Section 5.5 pathology) must
// raise false-sharing scores past the suspect threshold, while plain
// PRIVATE (each hot page has exactly one writer) must stay clean.
func TestFalseSharingDetectorPairedWorkloads(t *testing.T) {
	interleaved := runWithHeat(t, smallPrivate(workload.InterleavedPrivate, 0.2))
	private := runWithHeat(t, smallPrivate(workload.Private, 0.2))

	sus := interleaved.Suspects()
	if len(sus) == 0 {
		t.Fatalf("interleaved PRIVATE produced no false-sharing suspects (fs=%+v)", interleaved.FalseSharing)
	}
	// Interleaved hot pages live in the first half of the database and
	// carry exactly two writers (a client pair). Every suspect must look
	// like that, and the scores must clear the threshold.
	half := int32(250 / 2)
	for _, s := range sus {
		if s.Score < interleaved.Threshold {
			t.Errorf("suspect page %d score %.2f below threshold %.2f", s.Page, s.Score, interleaved.Threshold)
		}
		if s.Page >= half {
			t.Errorf("suspect page %d outside the private region", s.Page)
		}
		if s.Writers != 2 {
			t.Errorf("suspect page %d has %d writers, want the client pair", s.Page, s.Writers)
		}
	}
	// The pathology is region-wide, not a single unlucky page.
	if len(sus) < 5 {
		t.Errorf("only %d suspects; interleaving should implicate much of the hot region", len(sus))
	}

	if got := private.Suspects(); len(got) != 0 {
		t.Fatalf("plain PRIVATE flagged false sharing: %+v", got)
	}
	// Plain PRIVATE pages have a single writer each, so no page should
	// even carry a score.
	for _, fs := range private.FalseSharing {
		if fs.Score > 0 {
			t.Errorf("page %d scored %.2f under plain PRIVATE", fs.Page, fs.Score)
		}
	}
}

// TestHeatMetricsThroughSim checks the sim publishes the same
// oodb_heat_* families as the live server, with plausible values.
func TestHeatMetricsThroughSim(t *testing.T) {
	heat := obs.NewHeat(obs.HeatOptions{})
	heat.SetEnabled(true)
	reg := obs.NewRegistry()
	cfg := shortConfig(core.PS, smallHotCold(0.2))
	cfg.Heat = heat
	cfg.Metrics = reg
	Run(cfg)
	reads := reg.CounterValue(`oodb_heat_accesses_total{op="read"}`)
	writes := reg.CounterValue(`oodb_heat_accesses_total{op="write"}`)
	if reads == 0 || writes == 0 {
		t.Fatalf("heat counters empty: reads=%d writes=%d", reads, writes)
	}
	// Deterministic rotation: once at measurement start, once at finish.
	if got := reg.CounterValue("oodb_heat_epochs_total"); got != 2 {
		t.Fatalf("epochs = %d, want 2", got)
	}
	// The engine counters share the registry (one dashboard, two systems).
	if reg.CounterValue("oodb_engine_commits_total") == 0 {
		t.Fatal("engine metrics absent from shared registry")
	}
}
