package model

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestDefaultSizeTiming measures wall-clock cost of a paper-sized run so
// the experiment harness durations can be chosen sensibly. Skipped in
// -short mode.
func TestDefaultSizeTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("timing probe")
	}
	w := workload.HotColdSpec(workload.LowLocality, 0.1)
	cfg := DefaultConfig(core.PSAA, w)
	cfg.Warmup = 10
	cfg.Measure = 30
	start := time.Now()
	res := Run(cfg)
	t.Logf("40s virtual took %v wall; tput=%.2f ±%.2f commits=%d msgs=%d",
		time.Since(start), res.Throughput, res.ThroughputCI, res.Commits, res.Messages)
}
