package model

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// server drives the core.ServerEngine with simulated resources: every
// incoming message is handled by the protocol engine, the lock/copy/merge
// work is charged to the server CPU, and the engine's outgoing messages
// are dispatched (fetching pages from the buffer pool for data-carrying
// replies).
type server struct {
	sys   *system
	eng   *core.ServerEngine
	cpu   *sim.CPU
	disks []*sim.Disk
	buf   *serverBuf

	// debugHook, when set (tests only), runs after every engine event
	// with the message just handled.
	debugHook func(m *core.Msg)
}

// handle processes one arrived client message (receive CPU has already
// been charged by the transport).
func (s *server) handle(m core.Msg) {
	// Commit installs: updated pages arrive with the commit message and are
	// installed into the buffer pool (dirty); object-granularity commits
	// (OS) require the home page to be resident first. Installation is
	// asynchronous with respect to lock release, as with a WAL no-force
	// scheme durability comes from the log, not the data pages.
	if m.Kind == core.MCommitReq {
		for _, p := range m.Pages {
			s.buf.install(p)
		}
		for _, o := range m.Objs {
			s.buf.installObj(o.Page)
		}
	}

	outs := s.eng.Handle(&m)
	msgs := make([]core.Msg, len(outs))
	copy(msgs, outs)
	if s.sys.oracle != nil {
		// Snapshot the versions each data reply logically carries at the
		// moment the engine emitted it.
		for i := range msgs {
			s.sys.oracle.snapshotReply(&msgs[i])
		}
	}
	if s.debugHook != nil {
		s.debugHook(&m)
	}

	// Charge the bookkeeping the engine just performed as one system CPU
	// request. The responses are enqueued on the per-client delivery
	// queues immediately — their wire order must equal the engine's
	// emission order — and their send-CPU jobs line up behind this cost
	// job in the server CPU's FIFO, so the timing effect is preserved.
	cost := float64(s.eng.Locks.TakeOps())*s.sys.cfg.LockInst +
		float64(s.eng.Copies.TakeOps())*s.sys.cfg.RegisterCopyInst +
		float64(s.eng.TakeMergeObjs())*s.sys.cfg.CopyMergeInst
	if cost > 0 {
		s.cpu.UseSystem(cost, nil)
	}
	s.dispatch(msgs)
}

// dispatch hands the engine's outgoing messages to the per-client ordered
// delivery queues (which perform the buffer fetches for data replies).
func (s *server) dispatch(msgs []core.Msg) {
	for i := range msgs {
		s.sys.toClient(msgs[i])
	}
}
