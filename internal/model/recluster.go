package model

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// This file is the simulation side of online reclustering: the live
// server migrates objects at runtime, while the simulator — whose layout
// is immutable for a run — models the same decision as a layout rewrite
// between two runs. A reclustering experiment is therefore three
// deterministic steps: run the interleaved workload with a heat collector
// attached, feed the final snapshot to obs.PlanMoves, and rerun the
// identical logical workload with Config.Layout set to the remapped
// placement. Both runs share seeds, so the throughput delta is exactly
// the placement effect.

// RemapWithMoves returns a new layout in which every planned MoveGroup
// has been applied to l: each group's slots leave their false-sharing
// suspect page for per-writer destination pages allocated from the spare
// region starting at page spareStart, mirroring the live reclusterer's
// placement policy (each writer fills its own open spare page, so no two
// disjoint writers ever share a destination). The rewrite is a
// permutation: the logical objects previously placed on the consumed
// spare slots take over the vacated suspect slots, keeping every physical
// slot backed by exactly one logical object.
//
// Panics if the spare region [spareStart, l.NumPages) cannot hold the
// planned moves — experiments size it up front — or if a group names a
// physical slot that no logical object currently occupies.
func RemapWithMoves(l *core.Layout, groups []obs.MoveGroup, spareStart int) *core.Layout {
	opp := l.ObjsPerPage
	remap := make([]core.ObjID, l.NumObjects())
	inverse := make(map[core.ObjID]int, l.NumObjects())
	for i := range remap {
		remap[i] = l.Obj(i)
		inverse[remap[i]] = i
	}

	type openPage struct {
		page core.PageID
		next int
	}
	open := make(map[int32]*openPage)
	nextSpare := core.PageID(spareStart)
	for _, g := range groups {
		for _, slot := range g.Slots {
			from := core.ObjID{Page: core.PageID(g.Page), Slot: slot}
			logical, ok := inverse[from]
			if !ok {
				panic(fmt.Sprintf("model: no logical object at %v", from))
			}
			op := open[g.Writer]
			if op == nil || op.next >= opp {
				if int(nextSpare) >= l.NumPages {
					panic("model: spare region exhausted; grow DBPages past spareStart")
				}
				op = &openPage{page: nextSpare}
				nextSpare++
				open[g.Writer] = op
			}
			to := core.ObjID{Page: op.page, Slot: uint16(op.next)}
			op.next++
			displaced, ok := inverse[to]
			if !ok {
				panic(fmt.Sprintf("model: no logical object at spare slot %v", to))
			}
			// Swap: the mover takes the spare slot; whatever logical object
			// was mapped there inherits the vacated suspect slot.
			remap[logical], remap[displaced] = to, from
			inverse[to], inverse[from] = logical, displaced
		}
	}

	out := core.NewLayout(l.NumPages, l.ObjsPerPage)
	out.SetRemap(remap)
	return out
}
