package model

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestCoherenceOracleAllProtocols runs every protocol under a contentious
// workload with the coherence oracle armed: any locally-satisfied read of
// a stale object panics. This is the deepest correctness check of the
// cache-consistency machinery.
func TestCoherenceOracleAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	mk := func(name string, w workload.Spec) func(t *testing.T) {
		return func(t *testing.T) {
			for _, proto := range core.AllProtocols {
				proto := proto
				t.Run(proto.String(), func(t *testing.T) {
					cfg := DefaultConfig(proto, w)
					cfg.Warmup, cfg.Measure, cfg.Batches = 2, 10, 4
					cfg.Verify = true
					res := Run(cfg)
					if res.Commits == 0 {
						t.Fatal("no commits")
					}
				})
			}
		}
	}
	small := func(w workload.Spec) workload.Spec {
		w.DBPages = 200
		w.NumClients = 6
		w.TransPages = 8
		if w.Kind == workload.HotCold || w.Kind == workload.HiCon {
			w.HotPages = 16
		}
		return w
	}
	t.Run("uniform-contended", mk("u", small(workload.UniformSpec(workload.LowLocality, 0.3))))
	t.Run("hicon-extreme", mk("h", small(workload.HiConSpec(workload.HighLocality, 0.5))))
	t.Run("hotcold", mk("hc", func() workload.Spec {
		w := small(workload.HotColdSpec(workload.LowLocality, 0.2))
		return w
	}()))
}

// TestCoherenceOracleLongUniform is a longer soak on the adaptive
// protocols, where the lock-granularity transitions are trickiest.
func TestCoherenceOracleLongUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	w := workload.UniformSpec(workload.HighLocality, 0.4)
	w.DBPages = 150
	w.NumClients = 8
	w.TransPages = 6
	for _, proto := range []core.Protocol{core.PSOA, core.PSAA} {
		cfg := DefaultConfig(proto, w)
		cfg.Warmup, cfg.Measure, cfg.Batches = 2, 40, 4
		cfg.Verify = true
		cfg.Seed = 1234
		res := Run(cfg)
		t.Logf("%v: commits=%d aborts=%d deesc=%d", proto, res.Commits, res.Aborts, res.Deescalations)
	}
}
