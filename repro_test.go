package repro

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func testCluster(t *testing.T, proto Protocol, clients int) *Cluster {
	t.Helper()
	c, err := NewCluster(t.TempDir(), ClusterOptions{
		Proto: proto, Clients: clients, NumPages: 64, ObjsPerPage: 8, PageSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterQuickstartFlow(t *testing.T) {
	c := testCluster(t, PSAA, 2)
	tx, err := c.Client(0).Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(Obj(1, 2), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := c.Client(1).Begin()
	v, err := tx2.Read(Obj(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v, []byte("payload")) {
		t.Fatalf("read %q", v)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterAttachClient(t *testing.T) {
	c := testCluster(t, PS, 1)
	extra, err := c.AttachClient()
	if err != nil {
		t.Fatal(err)
	}
	tx, err := extra.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(Obj(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if c.NumClients() != 2 {
		t.Fatalf("NumClients = %d", c.NumClients())
	}
}

func TestAllProtocolsThroughFacade(t *testing.T) {
	for _, proto := range []Protocol{PS, OS, PSOO, PSOA, PSAA} {
		c := testCluster(t, proto, 2)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cl := c.Client(i)
				for n := 0; n < 10; {
					tx, err := cl.Begin()
					if err != nil {
						t.Error(err)
						return
					}
					err = tx.Update(Obj(2, uint16(i)), func(old []byte) []byte {
						return []byte{old[0] + 1}
					})
					if err == nil {
						err = tx.Commit()
					}
					if err == nil {
						n++
					} else if !errors.Is(err, ErrAborted) {
						t.Errorf("%v: %v", proto, err)
						return
					}
				}
			}(i)
		}
		wg.Wait()
	}
}

func TestSimulateFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	w := HotColdWorkload(LowLocality, 0.1)
	w.DBPages, w.HotPages, w.NumClients, w.TransPages = 250, 20, 5, 10
	cfg := DefaultSimConfig(PSAA, w)
	cfg.Warmup, cfg.Measure, cfg.Batches = 2, 8, 4
	res := Simulate(cfg)
	if res.Commits == 0 || res.Throughput <= 0 {
		t.Fatalf("simulation produced nothing: %+v", res)
	}
}
