// Command figures regenerates every table and figure of the paper's
// evaluation section (Figures 3-14 plus the Section 5.6.2 parameter-space
// checks), writing text tables and CSV series under an output directory.
//
// Usage:
//
//	figures [-out figures] [-only fig3,fig9] [-quick] [-seed N] [-clients]
//	        [-jobs N] [-benchjson BENCH_figures.json]
//
// Full mode uses the recorded experiment durations (30s warmup + 120s
// measured virtual time per run); -quick cuts both for a fast smoke pass.
//
// Every (sweep, write-probability, protocol) cell is an independent
// deterministic simulation, so all cells of all selected sweeps are
// dispatched together on a worker pool (-jobs, default GOMAXPROCS).
// Outputs are byte-identical for every worker count, including -jobs 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/benchjson"
	"repro/internal/experiments"
)

func main() {
	outDir := flag.String("out", "figures", "output directory")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "short runs (smoke mode)")
	seed := flag.Int64("seed", 42, "simulation seed")
	clients := flag.Bool("clients", false, "also run the client-scaling experiment")
	detail := flag.Bool("detail", true, "write per-run detail files")
	jobs := flag.Int("jobs", 0, "simulation worker count (0 = GOMAXPROCS)")
	benchPath := flag.String("benchjson", "", "append wall-clock/speedup record to this JSON file")
	flag.Parse()

	opts := experiments.DefaultOpts()
	if *quick {
		opts = experiments.QuickOpts()
	}
	opts.Seed = *seed
	opts.Jobs = *jobs

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	// Figure 5 is analytic.
	if want("fig5") {
		probs := []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}
		txt := experiments.RenderFig5(probs)
		fmt.Println(txt)
		write(*outDir, "fig5.txt", txt)
		write(*outDir, "fig5.csv", experiments.Fig5CSV(probs))
	}

	var sweeps []*experiments.Sweep
	all := experiments.Catalogue()
	if *clients {
		all = append(all, experiments.ClientScalingSweep(0.1, []int{1, 5, 10, 15, 20, 25})...)
	}
	for _, s := range all {
		if want(s.ID) {
			sweeps = append(sweeps, s)
		}
	}
	if len(selected) > 0 {
		known := map[string]bool{"fig5": true, "tab1": true}
		valid := make([]string, 0, len(all)+2)
		valid = append(valid, "fig5", "tab1")
		for _, s := range all {
			known[s.ID] = true
			valid = append(valid, s.ID)
		}
		for id := range selected {
			if !known[id] {
				fatal(fmt.Errorf("unknown -only id %q; valid ids: %s", id, strings.Join(valid, ", ")))
			}
		}
	}

	// All cells of all selected sweeps fan out over one worker pool;
	// progress goes through a single renderer so concurrent completions
	// never garble the \r status line.
	prog := &progressRenderer{out: os.Stderr}
	report := experiments.RunSweeps(sweeps, opts, experiments.Hooks{
		Cell: prog.cell,
		SweepDone: func(t experiments.SweepTiming) {
			prog.line(fmt.Sprintf("%s done: %d cells in %v",
				t.ID, t.Cells, t.Wall.Round(time.Millisecond)))
		},
	})
	prog.clear()

	for _, ce := range report.Errors {
		fmt.Fprintf(os.Stderr, "figures: %v\n%s", ce, ce.Stack)
	}

	for _, res := range report.Results {
		s := res.Sweep
		txt := res.Render()
		fmt.Println(txt)
		write(*outDir, s.ID+".txt", txt)
		write(*outDir, s.ID+".csv", res.CSV())
		if *detail {
			write(*outDir, s.ID+"_detail.txt", res.Detail())
		}
	}
	fmt.Fprintf(os.Stderr, "all experiments done: %d cells on %d workers in %v (%.2f cells/sec); outputs in %s/\n",
		report.Cells, report.Jobs, report.Wall.Round(time.Second),
		cellsPerSec(report.Cells, report.Wall), *outDir)

	if *benchPath != "" {
		if err := recordBench(*benchPath, report, *quick, *seed, *only); err != nil {
			fatal(err)
		}
	}

	// Table 1 / Table 2 are parameter tables; emit them for completeness.
	if want("tab1") || len(selected) == 0 {
		write(*outDir, "tab1.txt", table1())
	}

	if len(report.Errors) > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d cell(s) failed\n", len(report.Errors))
		os.Exit(1)
	}
}

// progressRenderer serializes all status output on one \r-overwritten
// line, so concurrently-finishing sweeps never interleave mid-line.
type progressRenderer struct {
	mu     sync.Mutex
	out    *os.File
	active bool // a status line is currently displayed
}

func (r *progressRenderer) cell(done, total int, msg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.out, "\r%-70s", fmt.Sprintf("[%d/%d] %s", done, total, msg))
	r.active = true
}

// line prints a persistent line, replacing any status line in place.
func (r *progressRenderer) line(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.out, "\r%-70s\n", s)
	r.active = false
}

func (r *progressRenderer) clear() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active {
		fmt.Fprintf(r.out, "\r%-70s\r", "")
		r.active = false
	}
}

func cellsPerSec(cells int, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(cells) / wall.Seconds()
}

// recordBench appends this run to the perf-trajectory file, computing
// speedup against the most recent recorded -jobs 1 run of the same mode.
func recordBench(path string, report *experiments.Report, quick bool, seed int64, only string) error {
	run := benchjson.NewRun()
	run.Jobs = report.Jobs
	run.Quick = quick
	run.Seed = seed
	run.Only = only
	run.Cells = report.Cells
	run.WallSeconds = report.Wall.Seconds()
	run.CellsPerSec = cellsPerSec(report.Cells, report.Wall)
	for _, t := range report.Timings {
		run.Sweeps = append(run.Sweeps, benchjson.SweepBench{
			ID:          t.ID,
			Cells:       t.Cells,
			WallSeconds: t.Wall.Seconds(),
			CellsPerSec: cellsPerSec(t.Cells, t.Wall),
		})
	}
	history, err := benchjson.Load(path)
	if err != nil {
		return err
	}
	if base := benchjson.Baseline(history, quick, seed, only); base != nil && run.WallSeconds > 0 {
		run.SpeedupVsJobs1 = base.WallSeconds / run.WallSeconds
		fmt.Fprintf(os.Stderr, "speedup vs recorded -jobs 1 run: %.2fx\n", run.SpeedupVsJobs1)
	}
	return benchjson.Append(path, run)
}

func table1() string {
	return `Table 1 — system and overhead parameter settings (see DESIGN.md §3)
ClientCPU          15 MIPS
ServerCPU          30 MIPS
ClientBufSize      25% of DB
ServerBufSize      50% of DB
ServerDisks        2
Min/MaxDiskTime    10/30 ms
NetworkBandwidth   80 Mbps
NumClients         10
PageSize           4096 bytes
DatabaseSize       1250 pages
ObjectsPerPage     20
FixedMsgInst       20000
PerByteMsgInst     10000 per 4KB
ControlMsgSize     256 bytes
LockInst           300  [reconstructed]
RegisterCopyInst   300
DiskOverheadInst   5000 [reconstructed]
CopyMergeInst      300 per object
ObjInst            10000 per object read, x2 for writes [reconstructed]
`
}

func write(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
