// Command figures regenerates every table and figure of the paper's
// evaluation section (Figures 3-14 plus the Section 5.6.2 parameter-space
// checks), writing text tables and CSV series under an output directory.
//
// Usage:
//
//	figures [-out figures] [-only fig3,fig9] [-quick] [-seed N] [-clients]
//
// Full mode uses the recorded experiment durations (30s warmup + 120s
// measured virtual time per run); -quick cuts both for a fast smoke pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	outDir := flag.String("out", "figures", "output directory")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "short runs (smoke mode)")
	seed := flag.Int64("seed", 42, "simulation seed")
	clients := flag.Bool("clients", false, "also run the client-scaling experiment")
	detail := flag.Bool("detail", true, "write per-run detail files")
	flag.Parse()

	opts := experiments.DefaultOpts()
	if *quick {
		opts = experiments.QuickOpts()
	}
	opts.Seed = *seed

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	// Figure 5 is analytic.
	if want("fig5") {
		probs := []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}
		txt := experiments.RenderFig5(probs)
		fmt.Println(txt)
		write(*outDir, "fig5.txt", txt)
		write(*outDir, "fig5.csv", experiments.Fig5CSV(probs))
	}

	sweeps := experiments.Catalogue()
	if *clients {
		sweeps = append(sweeps, experiments.ClientScalingSweep(0.1, []int{1, 5, 10, 15, 20, 25})...)
	}
	start := time.Now()
	for _, s := range sweeps {
		if !want(s.ID) {
			continue
		}
		sStart := time.Now()
		res := s.Run(opts, func(msg string) {
			fmt.Fprintf(os.Stderr, "\r%-60s", msg)
		})
		fmt.Fprintf(os.Stderr, "\r%-60s\n", fmt.Sprintf("%s done in %v", s.ID, time.Since(sStart).Round(time.Millisecond)))
		txt := res.Render()
		fmt.Println(txt)
		write(*outDir, s.ID+".txt", txt)
		write(*outDir, s.ID+".csv", res.CSV())
		if *detail {
			write(*outDir, s.ID+"_detail.txt", res.Detail())
		}
	}
	fmt.Fprintf(os.Stderr, "all experiments done in %v; outputs in %s/\n",
		time.Since(start).Round(time.Second), *outDir)

	// Table 1 / Table 2 are parameter tables; emit them for completeness.
	if want("tab1") || len(selected) == 0 {
		write(*outDir, "tab1.txt", table1())
	}
}

func table1() string {
	return `Table 1 — system and overhead parameter settings (see DESIGN.md §3)
ClientCPU          15 MIPS
ServerCPU          30 MIPS
ClientBufSize      25% of DB
ServerBufSize      50% of DB
ServerDisks        2
Min/MaxDiskTime    10/30 ms
NetworkBandwidth   80 Mbps
NumClients         10
PageSize           4096 bytes
DatabaseSize       1250 pages
ObjectsPerPage     20
FixedMsgInst       20000
PerByteMsgInst     10000 per 4KB
ControlMsgSize     256 bytes
LockInst           300  [reconstructed]
RegisterCopyInst   300
DiskOverheadInst   5000 [reconstructed]
CopyMergeInst      300 per object
ObjInst            10000 per object read, x2 for writes [reconstructed]
`
}

func write(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
