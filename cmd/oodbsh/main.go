// Command oodbsh is an interactive shell for a live OODBMS: connect to a
// TCP server (or open an in-process one) and run transactions by hand.
//
//	oodbsh -addr 127.0.0.1:7090            # remote server
//	oodbsh -dir ./mydb -proto PS-AA        # embedded server
//
// Commands:
//
//	begin                 start a transaction
//	get <page>.<slot>     read an object (implicit begin)
//	put <page>.<slot> <text>   write an object (implicit begin)
//	commit | abort        end the transaction
//	stats                 server protocol counters (embedded mode only)
//	help | quit
//
// Reads and writes inside one begin/commit block are one serializable
// transaction; deadlock victims are reported and must be retried.
package main

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oodbsh:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var (
		addr  string
		dir   = "oodbsh-data"
		proto = "PS-AA"
		pages = 256
	)
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-addr":
			i++
			addr = args[i]
		case "-dir":
			i++
			dir = args[i]
		case "-proto":
			i++
			proto = args[i]
		case "-pages":
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("bad -pages: %w", err)
			}
			pages = n
		case "-h", "-help", "--help":
			fmt.Println("usage: oodbsh [-addr host:port | -dir path -proto P -pages N]")
			return nil
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}

	var client *repro.Client
	var statsFn func() core.ServerStats
	var metrics *repro.MetricsRegistry
	if addr != "" {
		c, err := repro.Dial(addr)
		if err != nil {
			return err
		}
		client = c
		fmt.Printf("connected to %s (protocol %v)\n", addr, c.Proto())
	} else {
		p, ok := core.ParseProtocol(proto)
		if !ok {
			return fmt.Errorf("unknown protocol %q", proto)
		}
		metrics = repro.NewMetricsRegistry()
		cluster, err := repro.NewCluster(dir, repro.ClusterOptions{
			Proto: p, Clients: 1, NumPages: pages, Metrics: metrics,
		})
		if err != nil {
			return err
		}
		defer cluster.Close()
		client = cluster.Client(0)
		statsFn = cluster.Server().Stats
		np, opp := client.Geometry()
		fmt.Printf("opened %s: %v, %d pages x %d objects (%d B each)\n",
			dir, p, np, opp, client.ObjSize())
	}
	defer client.Close()
	return repl(os.Stdin, os.Stdout, client, statsFn, metrics)
}

// repl runs the command loop; split out for testing.
func repl(in *os.File, out *os.File, client *repro.Client, statsFn func() core.ServerStats, metrics *repro.MetricsRegistry) error {
	var tx *repro.Txn
	ensureTx := func() (*repro.Txn, error) {
		if tx != nil {
			return tx, nil
		}
		t, err := client.Begin()
		if err != nil {
			return nil, err
		}
		tx = t
		fmt.Fprintln(out, "(transaction started)")
		return tx, nil
	}
	endTx := func() { tx = nil }

	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(out, "> ")
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			if tx != nil {
				tx.Abort()
			}
			return nil
		case "help":
			fmt.Fprintln(out, "begin | get p.s | put p.s text | commit | abort | stats | quit")
		case "begin":
			if _, err := ensureTx(); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		case "get":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: get <page>.<slot>")
				break
			}
			obj, err := parseObj(fields[1])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			t, err := ensureTx()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			v, err := t.Read(obj)
			if errors.Is(err, repro.ErrAborted) {
				fmt.Fprintln(out, "deadlock victim: transaction aborted, retry")
				endTx()
				break
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "%v = %q\n", obj, strings.TrimRight(string(v), "\x00"))
		case "put":
			if len(fields) < 3 {
				fmt.Fprintln(out, "usage: put <page>.<slot> <text>")
				break
			}
			obj, err := parseObj(fields[1])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			t, err := ensureTx()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			val := strings.Join(fields[2:], " ")
			err = t.Write(obj, []byte(val))
			if errors.Is(err, repro.ErrAborted) {
				fmt.Fprintln(out, "deadlock victim: transaction aborted, retry")
				endTx()
				break
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				break
			}
			fmt.Fprintf(out, "%v <- %q (uncommitted)\n", obj, val)
		case "commit":
			if tx == nil {
				fmt.Fprintln(out, "no transaction")
				break
			}
			err := tx.Commit()
			endTx()
			if err != nil {
				fmt.Fprintln(out, "commit failed:", err)
			} else {
				fmt.Fprintln(out, "committed")
			}
		case "abort":
			if tx == nil {
				fmt.Fprintln(out, "no transaction")
				break
			}
			tx.Abort()
			endTx()
			fmt.Fprintln(out, "aborted")
		case "stats":
			if statsFn == nil {
				fmt.Fprintln(out, "stats only available in embedded mode")
				break
			}
			st := statsFn()
			fmt.Fprintf(out, "reads=%d writes=%d commits=%d aborts=%d callbacks=%d busy=%d deesc=%d pageX=%d objX=%d deadlocks=%d\n",
				st.ReadReqs, st.WriteReqs, st.Commits, st.Aborts, st.Callbacks,
				st.BusyReplies, st.Deescalations, st.PageGrants, st.ObjGrants, st.Deadlocks)
			if metrics != nil {
				fmt.Fprintln(out, "--- metrics ---")
				metrics.WriteHuman(out)
			}
		default:
			fmt.Fprintf(out, "unknown command %q (try help)\n", fields[0])
		}
		fmt.Fprint(out, "> ")
	}
	return sc.Err()
}

func parseObj(s string) (repro.ObjID, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return repro.ObjID{}, fmt.Errorf("want <page>.<slot>, got %q", s)
	}
	p, err := strconv.Atoi(s[:dot])
	if err != nil {
		return repro.ObjID{}, err
	}
	sl, err := strconv.Atoi(s[dot+1:])
	if err != nil {
		return repro.ObjID{}, err
	}
	return repro.Obj(repro.PageID(p), uint16(sl)), nil
}
