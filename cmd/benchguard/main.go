// Command benchguard compares `go test -bench -benchmem` output on stdin
// against the latest recorded baseline in a benchjson file and exits
// non-zero on regression. CI uses it to keep the simulator's hot path
// allocation-free growth honest, and the live data plane's throughput
// guarded:
//
//	go test -bench Fig03 -benchmem -run '^$' . | benchguard -baseline BENCH_figures.json -max-regress 5
//	go test -bench Wire -benchmem -run '^$' ./internal/live/ | benchguard -baseline BENCH_live.json -max-regress 5 -max-slower 40
//
// -max-regress bounds the allocs/op increase (allocation counts are
// deterministic, so the tolerance is tight). -max-slower bounds the
// ns/op increase; 0 disables it (wall-clock is noisy across CI hosts, so
// callers opt in with a loose bound). -max-tps-drop bounds the txn/s
// decrease against the baseline; 0 disables it (used to keep the
// disabled-telemetry commit path from quietly taxing throughput).
//
// Baselines are compared like-for-like on core count: a run benched at
// GOMAXPROCS=4 must not be judged against numbers recorded at
// GOMAXPROCS=1 (the sharded engine makes the two genuinely different
// machines). -gomaxprocs N restricts the baseline to runs recorded at N;
// the default (0) uses this process's GOMAXPROCS. -gomaxprocs -1 accepts
// any recorded run (the pre-shard behavior).
//
// Multi-core scaling is guarded directly, without a recorded baseline:
//
//	GOMAXPROCS=1 go test -bench 'LiveCommit/clients=32' ... | tee /tmp/1core.txt
//	GOMAXPROCS=4 go test -bench 'LiveCommit/clients=32' ... | benchguard -scale-base /tmp/1core.txt -min-scale 1.8
//
// compares the txn/s of every benchmark present in both outputs and
// fails if current/base < min-scale; both runs happen on the same host
// in the same CI job, so the ratio is noise-resistant in a way absolute
// numbers are not.
//
// Reclustering's throughput recovery is guarded the same baseline-free
// way: benchmarks that report both "early-txn/s" and "late-txn/s" (the
// interleaved false-sharing workload before and after a recluster round)
// are checked with
//
//	go test -bench ReclusterRecovery -run '^$' ./internal/live/ | benchguard -min-recovery-ratio 1.5
//
// which fails if late/early falls below the floor for any such
// benchmark. Both phases run in the same process on the same host, so
// like -scale-base the ratio needs no recorded baseline.
//
// -record FILE appends stdin's parsed measurements to a benchjson file
// (stamped with this process's GOMAXPROCS/NumCPU and -note), so the run
// that passed the guard becomes the next baseline candidate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/benchjson"
)

// benchFile mirrors the slice of the benchjson file that benchguard
// reads: runs, each optionally carrying a benchmarks map.
type benchFile struct {
	Runs []struct {
		Timestamp  string `json:"timestamp"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		Benchmarks map[string]struct {
			NsPerOp     float64 `json:"ns_per_op"`
			BytesPerOp  float64 `json:"bytes_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
			OpsPerSec   float64 `json:"ops_per_sec"`
			P99Ns       float64 `json:"p99_ns"`
			TTFCNs      float64 `json:"ttfc_ns"`
		} `json:"benchmarks"`
	} `json:"runs"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	nsPerOp   float64
	bytesOp   float64
	allocs    float64 // -1 when the line had no -benchmem columns
	opsPerSec float64 // the live benches' "txn/s" ReportMetric column
	p99Ns     float64 // "p99-commit-ns"
	ttfcNs    float64 // "ttfc-ns": the recovery bench's time-to-first-commit
	earlyTPS  float64 // "early-txn/s": throughput before reclustering engages
	lateTPS   float64 // "late-txn/s": throughput after the recluster round
	procs     int     // the -N name suffix: the run's GOMAXPROCS
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_figures.json", "baseline file")
	maxRegress := flag.Float64("max-regress", 5.0, "max allowed allocs/op regression, percent")
	maxSlower := flag.Float64("max-slower", 0, "max allowed ns/op regression, percent (0 disables)")
	maxTPSDrop := flag.Float64("max-tps-drop", 0, "max allowed txn/s drop vs baseline, percent (0 disables)")
	gomaxprocs := flag.Int("gomaxprocs", 0,
		"only compare against baseline runs recorded at this GOMAXPROCS (0 = this process's; -1 = any)")
	scaleBase := flag.String("scale-base", "",
		"bench output file to compute txn/s scaling against (skips the -baseline comparison)")
	minScale := flag.Float64("min-scale", 0,
		"with -scale-base: fail if current txn/s / base txn/s < this for any shared benchmark")
	minRecovery := flag.Float64("min-recovery-ratio", 0,
		"fail if late-txn/s / early-txn/s < this for any benchmark reporting both "+
			"(skips the -baseline comparison; the ratio is within-run, like -scale-base)")
	record := flag.String("record", "",
		"append stdin's parsed measurements to this benchjson file after the checks pass")
	note := flag.String("note", "", "label recorded with -record (what changed)")
	flag.Parse()

	current, err := parseBenchOutput(os.Stdin, true)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results on stdin (did the bench run?)"))
	}

	failed := false
	switch {
	case *minRecovery > 0:
		failed = checkRecovery(current, *minRecovery)
	case *scaleBase != "":
		failed = checkScaling(*scaleBase, current, *minScale)
	default:
		failed = checkBaseline(*baselinePath, current, *maxRegress, *maxSlower, *maxTPSDrop, *gomaxprocs)
	}
	if !failed && *record != "" {
		if err := recordRuns(*record, current, *note); err != nil {
			fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkBaseline compares current against the latest recorded like-for-like
// run in the benchjson file; returns true on regression.
func checkBaseline(path string, current map[string]measurement, maxRegress, maxSlower, maxTPSDrop float64, procsWant int) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", path, err))
	}
	if procsWant == 0 {
		procsWant = runtime.GOMAXPROCS(0)
	}
	// Latest matching run that recorded a given benchmark wins. Runs
	// recorded before the gomaxprocs field existed (0) always match, so
	// old baselines keep guarding until like-for-like ones land.
	baseAllocs := map[string]float64{}
	baseNs := map[string]float64{}
	baseTPS := map[string]float64{}
	matched := 0
	for _, run := range bf.Runs {
		if procsWant > 0 && run.GOMAXPROCS != 0 && run.GOMAXPROCS != procsWant {
			continue
		}
		matched++
		for name, b := range run.Benchmarks {
			baseAllocs[name] = b.AllocsPerOp
			baseNs[name] = b.NsPerOp
			baseTPS[name] = b.OpsPerSec
		}
	}
	if len(baseAllocs) == 0 {
		fatal(fmt.Errorf("no benchmark baselines in %s (runs matching gomaxprocs=%d: %d)",
			path, procsWant, matched))
	}

	failed := false
	for name, m := range current {
		base, ok := baseAllocs[name]
		if !ok {
			fmt.Printf("benchguard: %s: no baseline, skipping (%.0f allocs/op now)\n", name, m.allocs)
			continue
		}
		if m.allocs >= 0 {
			deltaPct := (m.allocs - base) / base * 100
			status := "ok"
			if deltaPct > maxRegress {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("benchguard: %-50s %10.0f allocs/op (baseline %.0f, %+.2f%%) %s\n",
				name, m.allocs, base, deltaPct, status)
		}
		if maxSlower > 0 {
			if bns := baseNs[name]; bns > 0 && m.nsPerOp > 0 {
				deltaPct := (m.nsPerOp - bns) / bns * 100
				status := "ok"
				if deltaPct > maxSlower {
					status = "FAIL"
					failed = true
				}
				fmt.Printf("benchguard: %-50s %10.0f ns/op     (baseline %.0f, %+.2f%%) %s\n",
					name, m.nsPerOp, bns, deltaPct, status)
			}
		}
		if maxTPSDrop > 0 {
			if btps := baseTPS[name]; btps > 0 && m.opsPerSec > 0 {
				dropPct := (btps - m.opsPerSec) / btps * 100
				status := "ok"
				if dropPct > maxTPSDrop {
					status = "FAIL"
					failed = true
				}
				fmt.Printf("benchguard: %-50s %10.0f txn/s     (baseline %.0f, %+.2f%%) %s\n",
					name, m.opsPerSec, btps, -dropPct, status)
			}
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr,
			"benchguard: regression beyond allowed bounds (allocs/op > %.1f%%, ns/op > %.1f%%, or txn/s drop > %.1f%%)\n",
			maxRegress, maxSlower, maxTPSDrop)
	}
	return failed
}

// checkScaling compares current txn/s against the bench output recorded
// in baseFile (same benchmarks, different GOMAXPROCS) and fails when the
// ratio falls below minScale; returns true on failure.
func checkScaling(baseFile string, current map[string]measurement, minScale float64) bool {
	f, err := os.Open(baseFile)
	if err != nil {
		fatal(err)
	}
	base, err := parseBenchOutput(f, false)
	f.Close()
	if err != nil {
		fatal(err)
	}
	failed := false
	compared := 0
	for name, cur := range current {
		b, ok := base[name]
		if !ok || b.opsPerSec <= 0 || cur.opsPerSec <= 0 {
			continue
		}
		compared++
		ratio := cur.opsPerSec / b.opsPerSec
		status := "ok"
		if ratio < minScale {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: %-50s %9.0f txn/s at GOMAXPROCS=%d vs %.0f at GOMAXPROCS=%d: %.2fx (want >= %.2fx) %s\n",
			name, cur.opsPerSec, cur.procs, b.opsPerSec, b.procs, ratio, minScale, status)
	}
	if compared == 0 {
		fatal(fmt.Errorf("no shared txn/s benchmarks between stdin and %s", baseFile))
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: multi-core scaling below %.2fx\n", minScale)
	}
	return failed
}

// checkRecovery verifies the reclustering throughput-recovery floor:
// every benchmark reporting both early-txn/s and late-txn/s must show
// late/early >= minRatio; returns true on failure. Both phases ran in
// the same process, so no recorded baseline is consulted.
func checkRecovery(current map[string]measurement, minRatio float64) bool {
	failed := false
	compared := 0
	for name, m := range current {
		if m.earlyTPS <= 0 || m.lateTPS <= 0 {
			continue
		}
		compared++
		ratio := m.lateTPS / m.earlyTPS
		status := "ok"
		if ratio < minRatio {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: %-50s %9.0f -> %.0f txn/s after reclustering: %.2fx (want >= %.2fx) %s\n",
			name, m.earlyTPS, m.lateTPS, ratio, minRatio, status)
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmarks reporting early-txn/s and late-txn/s on stdin"))
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: reclustering throughput recovery below %.2fx\n", minRatio)
	}
	return failed
}

// recordRuns appends the parsed measurements as one benchjson run.
func recordRuns(path string, current map[string]measurement, note string) error {
	run := benchjson.NewRun()
	run.Note = note
	run.Benchmarks = make(map[string]benchjson.Benchmark, len(current))
	for name, m := range current {
		b := benchjson.Benchmark{
			NsPerOp:        m.nsPerOp,
			OpsPerSec:      m.opsPerSec,
			P99Ns:          m.p99Ns,
			TTFCNs:         m.ttfcNs,
			EarlyOpsPerSec: m.earlyTPS,
			LateOpsPerSec:  m.lateTPS,
		}
		if m.allocs >= 0 {
			b.AllocsPerOp = m.allocs
			b.BytesPerOp = m.bytesOp
		}
		run.Benchmarks[name] = b
	}
	if err := benchjson.Append(path, run); err != nil {
		return err
	}
	fmt.Printf("benchguard: recorded %d benchmarks to %s (gomaxprocs=%d)\n",
		len(run.Benchmarks), path, run.GOMAXPROCS)
	return nil
}

// parseBenchOutput extracts "BenchmarkName-N  iters  X ns/op ..." lines
// (including ReportMetric columns like "txn/s" and "p99-commit-ns"),
// keyed by the benchmark name with the -GOMAXPROCS suffix stripped
// (baselines are recorded without it); the suffix itself is kept as the
// measurement's procs.
func parseBenchOutput(f io.Reader, echo bool) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Println(line) // echo so CI logs keep the raw bench output
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		m := measurement{allocs: -1}
		for i := 1; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			bad := func(what string) error {
				return fmt.Errorf("bad %s in %q: %w", what, line, err)
			}
			switch fields[i] {
			case "allocs/op":
				if err != nil {
					return nil, bad("allocs/op")
				}
				m.allocs = v
			case "ns/op":
				if err != nil {
					return nil, bad("ns/op")
				}
				m.nsPerOp = v
			case "B/op":
				if err != nil {
					return nil, bad("B/op")
				}
				m.bytesOp = v
			case "txn/s":
				if err != nil {
					return nil, bad("txn/s")
				}
				m.opsPerSec = v
			case "p99-commit-ns":
				if err != nil {
					return nil, bad("p99-commit-ns")
				}
				m.p99Ns = v
			case "ttfc-ns":
				if err != nil {
					return nil, bad("ttfc-ns")
				}
				m.ttfcNs = v
			case "early-txn/s":
				if err != nil {
					return nil, bad("early-txn/s")
				}
				m.earlyTPS = v
			case "late-txn/s":
				if err != nil {
					return nil, bad("late-txn/s")
				}
				m.lateTPS = v
			}
		}
		if m.allocs < 0 && m.nsPerOp == 0 {
			continue // not a result line
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the -GOMAXPROCS suffix iff numeric.
			if procs, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
				m.procs = procs
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
