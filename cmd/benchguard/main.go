// Command benchguard compares `go test -bench -benchmem` output on stdin
// against the latest recorded baseline in a benchjson file and exits
// non-zero on regression. CI uses it to keep the simulator's hot path
// allocation-free growth honest, and the live data plane's throughput
// guarded:
//
//	go test -bench Fig03 -benchmem -run '^$' . | benchguard -baseline BENCH_figures.json -max-regress 5
//	go test -bench Wire -benchmem -run '^$' ./internal/live/ | benchguard -baseline BENCH_live.json -max-regress 5 -max-slower 40
//
// -max-regress bounds the allocs/op increase (allocation counts are
// deterministic, so the tolerance is tight). -max-slower bounds the
// ns/op increase; 0 disables it (wall-clock is noisy across CI hosts, so
// callers opt in with a loose bound).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchFile mirrors the slice of the benchjson file that benchguard
// reads: runs, each optionally carrying a benchmarks map.
type benchFile struct {
	Runs []struct {
		Timestamp  string `json:"timestamp"`
		Benchmarks map[string]struct {
			NsPerOp     float64 `json:"ns_per_op"`
			BytesPerOp  float64 `json:"bytes_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	} `json:"runs"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	nsPerOp float64
	allocs  float64 // -1 when the line had no -benchmem columns
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_figures.json", "baseline file")
	maxRegress := flag.Float64("max-regress", 5.0, "max allowed allocs/op regression, percent")
	maxSlower := flag.Float64("max-slower", 0, "max allowed ns/op regression, percent (0 disables)")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}
	// Latest run that recorded a given benchmark wins.
	baseAllocs := map[string]float64{}
	baseNs := map[string]float64{}
	for _, run := range bf.Runs {
		for name, b := range run.Benchmarks {
			baseAllocs[name] = b.AllocsPerOp
			baseNs[name] = b.NsPerOp
		}
	}
	if len(baseAllocs) == 0 {
		fatal(fmt.Errorf("no benchmark baselines in %s", *baselinePath))
	}

	current, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results on stdin (did the bench run?)"))
	}

	failed := false
	for name, m := range current {
		base, ok := baseAllocs[name]
		if !ok {
			fmt.Printf("benchguard: %s: no baseline, skipping (%.0f allocs/op now)\n", name, m.allocs)
			continue
		}
		if m.allocs >= 0 {
			deltaPct := (m.allocs - base) / base * 100
			status := "ok"
			if deltaPct > *maxRegress {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("benchguard: %-50s %10.0f allocs/op (baseline %.0f, %+.2f%%) %s\n",
				name, m.allocs, base, deltaPct, status)
		}
		if *maxSlower > 0 {
			if bns := baseNs[name]; bns > 0 && m.nsPerOp > 0 {
				deltaPct := (m.nsPerOp - bns) / bns * 100
				status := "ok"
				if deltaPct > *maxSlower {
					status = "FAIL"
					failed = true
				}
				fmt.Printf("benchguard: %-50s %10.0f ns/op     (baseline %.0f, %+.2f%%) %s\n",
					name, m.nsPerOp, bns, deltaPct, status)
			}
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr,
			"benchguard: regression beyond allowed bounds (allocs/op > %.1f%% or ns/op > %.1f%%)\n",
			*maxRegress, *maxSlower)
		os.Exit(1)
	}
}

// parseBenchOutput extracts "BenchmarkName-N  iters  X ns/op  Y B/op  Z
// allocs/op" lines, keyed by the benchmark name with the -GOMAXPROCS
// suffix stripped (baselines are recorded without it).
func parseBenchOutput(f *os.File) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo so CI logs keep the raw bench output
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		m := measurement{allocs: -1}
		for i := 1; i < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			switch fields[i] {
			case "allocs/op":
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
				}
				m.allocs = v
			case "ns/op":
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
				}
				m.nsPerOp = v
			}
		}
		if m.allocs < 0 && m.nsPerOp == 0 {
			continue // not a result line
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the -GOMAXPROCS suffix iff numeric.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
