// Command benchguard compares `go test -bench -benchmem` output on stdin
// against the latest recorded baseline in BENCH_figures.json and exits
// non-zero if any benchmark's allocs/op regressed by more than the
// allowed percentage. CI uses it to keep the simulator's hot path
// allocation-free growth honest:
//
//	go test -bench Fig03 -benchmem -run '^$' . | benchguard -baseline BENCH_figures.json -max-regress 5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchFile mirrors the slice of BENCH_figures.json that benchguard reads:
// runs, each optionally carrying a benchmarks map.
type benchFile struct {
	Runs []struct {
		Timestamp  string `json:"timestamp"`
		Benchmarks map[string]struct {
			NsPerOp     float64 `json:"ns_per_op"`
			BytesPerOp  float64 `json:"bytes_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	} `json:"runs"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_figures.json", "baseline file")
	maxRegress := flag.Float64("max-regress", 5.0, "max allowed allocs/op regression, percent")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}
	// Latest run that recorded benchmarks wins.
	baseline := map[string]float64{}
	for _, run := range bf.Runs {
		for name, b := range run.Benchmarks {
			baseline[name] = b.AllocsPerOp
		}
	}
	if len(baseline) == 0 {
		fatal(fmt.Errorf("no benchmark baselines in %s", *baselinePath))
	}

	current, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results on stdin (did the bench run?)"))
	}

	failed := false
	for name, allocs := range current {
		base, ok := baseline[name]
		if !ok {
			fmt.Printf("benchguard: %s: no baseline, skipping (%.0f allocs/op now)\n", name, allocs)
			continue
		}
		deltaPct := (allocs - base) / base * 100
		status := "ok"
		if deltaPct > *maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("benchguard: %-40s %10.0f allocs/op (baseline %.0f, %+.2f%%) %s\n",
			name, allocs, base, deltaPct, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: allocs/op regressed more than %.1f%%\n", *maxRegress)
		os.Exit(1)
	}
}

// parseBenchOutput extracts "BenchmarkName-N  iters  X ns/op  Y B/op  Z
// allocs/op" lines, keyed by the benchmark name with the -GOMAXPROCS
// suffix stripped (baselines are recorded without it).
func parseBenchOutput(f *os.File) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo so CI logs keep the raw bench output
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		var allocs float64 = -1
		for i := 1; i < len(fields); i++ {
			if fields[i] == "allocs/op" && i > 0 {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
				}
				allocs = v
			}
		}
		if allocs < 0 {
			continue // bench line without -benchmem columns
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the -GOMAXPROCS suffix iff numeric.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = allocs
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
