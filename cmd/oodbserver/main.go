// Command oodbserver runs a live page-server OODBMS over TCP.
//
// Usage:
//
//	oodbserver -dir /var/lib/oodb -addr :7090 -proto PS-AA -pages 1250
//
// Clients connect with repro.Dial (or cmd/oodbbench). The database is
// created on first start and recovered from the write-ahead log on every
// start.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/live"
)

func main() {
	dir := flag.String("dir", "oodb-data", "database directory")
	addr := flag.String("addr", "127.0.0.1:7090", "TCP listen address")
	proto := flag.String("proto", "PS-AA", "PS | OS | PS-OO | PS-OA | PS-AA")
	pages := flag.Int("pages", 1250, "database size in pages (creation only)")
	objsPerPage := flag.Int("objs", 20, "objects per page (creation only)")
	pageSize := flag.Int("pagesize", 4096, "page size in bytes (creation only)")
	noSync := flag.Bool("nosync", false, "do not fsync the WAL per commit (unsafe)")
	flag.Parse()

	p, ok := core.ParseProtocol(*proto)
	if !ok {
		fatal(fmt.Errorf("unknown protocol %q", *proto))
	}
	srv, err := live.OpenServer(*dir, live.ServerOptions{
		Proto: p, PageSize: *pageSize, ObjsPerPage: *objsPerPage, NumPages: *pages,
		SyncWAL: !*noSync,
	})
	if err != nil {
		fatal(err)
	}
	np, opp, osz := srv.Geometry()
	fmt.Printf("oodbserver: %s on %s — %d pages x %d objects (%d B each)\n",
		p, *addr, np, opp, osz)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\noodbserver: shutting down")
		st := srv.Stats()
		fmt.Printf("stats: reads=%d writes=%d commits=%d aborts=%d callbacks=%d deadlocks=%d\n",
			st.ReadReqs, st.WriteReqs, st.Commits, st.Aborts, st.Callbacks, st.Deadlocks)
		srv.Close()
		os.Exit(0)
	}()

	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oodbserver:", err)
	os.Exit(1)
}
